#ifndef SDELTA_SHARD_ROUTER_H_
#define SDELTA_SHARD_ROUTER_H_

#include <cstddef>
#include <vector>

#include "core/summary_table.h"
#include "relational/table.h"

namespace sdelta::shard {

/// Routes rows of one view's key space to shards by hashing the group
/// key. The routing invariant (DESIGN.md §15): the shard of a row is a
/// pure function of its group-key *values*, so every row of a group —
/// summary rows and summary-delta rows alike — lands on the same shard
/// and no per-group state ever crosses shards.
///
/// The hash reuses the view's 128-bit packed-key codec: keys that pack
/// hash through PackedKeyHash; keys that escape the codec (or whole
/// views that never pack) hash the boxed GroupKey through GroupKeyHash.
/// A packed key and a boxed key are never Value-equal (see
/// relational/packed_key.h), so the two paths can't split one group.
///
/// The router borrows the view's codec; construct one per use — it is
/// two pointers and a count — rather than storing it across summary-
/// table reallocation.
class ShardRouter {
 public:
  ShardRouter(const core::SummaryTable& view, size_t num_shards);

  size_t num_shards() const { return num_shards_; }

  /// Shard of row `row` of `rows` (a physical summary relation or a
  /// summary-delta: anything whose leading columns are the view's
  /// group-by columns).
  size_t ShardOfRow(const rel::Table& rows, size_t row) const;

  /// Splits `rows` into num_shards() tables (schema and name preserved),
  /// each keeping its rows in input order.
  std::vector<rel::Table> Partition(const rel::Table& rows) const;

 private:
  const rel::PackedKeyCodec* codec_;  // borrowed from the view
  std::vector<size_t> group_idx_;     // 0..num_group_columns-1
  size_t num_shards_;
};

}  // namespace sdelta::shard

#endif  // SDELTA_SHARD_ROUTER_H_
