#include "shard/router.h"

#include <numeric>

#include "relational/group_key.h"
#include "relational/packed_key.h"

namespace sdelta::shard {

ShardRouter::ShardRouter(const core::SummaryTable& view, size_t num_shards)
    : codec_(&view.codec()),
      group_idx_(view.num_group_columns()),
      num_shards_(num_shards == 0 ? 1 : num_shards) {
  std::iota(group_idx_.begin(), group_idx_.end(), size_t{0});
}

size_t ShardRouter::ShardOfRow(const rel::Table& rows, size_t row) const {
  if (codec_->packable()) {
    rel::PackedKey key;
    // kIntern: routing runs single-threaded before the per-shard
    // refresh fan-out, and a delta can legitimately carry a string the
    // pool dictionary has not seen (a brand-new group).
    const rel::PackedKeyCodec::ColumnarEncode enc = codec_->EncodeColumns(
        rows, group_idx_, row, rel::PackedKeyCodec::StringMode::kIntern, &key);
    if (enc == rel::PackedKeyCodec::ColumnarEncode::kPacked) {
      return rel::PackedKeyHash{}(key) % num_shards_;
    }
  }
  rel::GroupKey key;
  key.reserve(group_idx_.size());
  for (size_t c : group_idx_) key.push_back(rows.ValueAt(row, c));
  return rel::GroupKeyHash{}(key) % num_shards_;
}

std::vector<rel::Table> ShardRouter::Partition(const rel::Table& rows) const {
  std::vector<std::vector<size_t>> picks(num_shards_);
  for (size_t r = 0; r < rows.NumRows(); ++r) {
    picks[ShardOfRow(rows, r)].push_back(r);
  }
  std::vector<rel::Table> parts;
  parts.reserve(num_shards_);
  for (size_t s = 0; s < num_shards_; ++s) {
    rel::Table part(rows.schema(), rows.name());
    part.Reserve(picks[s].size());
    part.AppendGather(rows, picks[s]);
    parts.push_back(std::move(part));
  }
  return parts;
}

}  // namespace sdelta::shard
