#ifndef SDELTA_SHARD_SHARDED_MAINTENANCE_H_
#define SDELTA_SHARD_SHARDED_MAINTENANCE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/summary_table.h"
#include "obs/metrics.h"
#include "shard/router.h"
#include "warehouse/warehouse.h"

namespace sdelta::shard {

/// Runs the warehouse's batch cycle with the refresh phase partitioned
/// by group key: each view's summary table is split into num_shards
/// disjoint slices (ShardRouter decides membership), propagate runs
/// once as usual, and the batch's summary-deltas are routed so each
/// (view, shard) slice refreshes independently — no cross-shard merge,
/// because a group's summary row and every delta row for it hash to the
/// same shard, and MIN/MAX recomputation rebuilds a group from the
/// shared read-only base tables without consulting any other shard.
///
/// Each shard advances its own epoch counter per batch; since every
/// batch touches every shard's pipeline exactly once, the per-shard
/// epochs stay in lockstep and compose into one consistent snapshot:
/// ComposeView() concatenates a view's slices and canonicalizes the row
/// order (core::CanonicalizeRows), so the composed table is
/// byte-identical at every shard count x thread count.
///
/// Ownership: the warehouse's own summary tables go stale while a
/// ShardedMaintenance drives batches (the slices are authoritative).
/// SyncIntoWarehouse() writes the composed views back — call it before
/// anything that reads warehouse summaries directly (checkpointing,
/// DDL, rematerialization); call Repartition() after DDL changed the
/// view set.
///
/// Metrics (per batch): counter shard.delta_rows.<s> (delta rows routed
/// to shard s; summed over shards this equals propagate.delta_rows by
/// construction), counter shard.batches, gauges shard.count,
/// shard.epoch.<s>, shard.rows.<s>.
class ShardedMaintenance {
 public:
  /// `warehouse` must outlive this object and already have its summary
  /// tables defined. Builds the slices by partitioning the warehouse's
  /// current summary rows. num_shards == 0 is normalized to 1.
  ShardedMaintenance(warehouse::Warehouse* warehouse, size_t num_shards,
                     obs::MetricsRegistry* metrics = nullptr);

  size_t num_shards() const { return num_shards_; }
  size_t num_views() const { return slices_.size(); }

  /// One batch: shared propagate + apply-base (Warehouse's shell), then
  /// per-(view, shard) slice refreshes — fanned out on the warehouse's
  /// pool when it has one. The report is shaped exactly like
  /// Warehouse::RunBatch's (per-view totals folded in shard order).
  warehouse::BatchReport RunBatch(const core::ChangeSet& changes);

  /// The composed (all shards, canonical row order) physical relation
  /// of view `view_index` (index into the warehouse's vlattice views).
  rel::Table ComposeView(size_t view_index) const;

  /// Writes every composed view back into the warehouse's summary
  /// tables, so persistence / DDL / direct queries see current rows.
  void SyncIntoWarehouse();

  /// Rebuilds the slices from the warehouse's current views and summary
  /// rows (after DDL or an external LoadFrom). Shard epochs persist.
  void Repartition();

  uint64_t shard_epoch(size_t s) const { return shard_epoch_[s]; }
  /// Summary rows currently resident in shard s (all views).
  size_t ShardRows(size_t s) const;
  /// Delta rows routed to shard s in the most recent batch / in total.
  uint64_t last_delta_rows(size_t s) const { return last_delta_rows_[s]; }
  uint64_t total_delta_rows(size_t s) const { return total_delta_rows_[s]; }
  const core::SummaryTable& slice(size_t view_index, size_t s) const {
    return slices_[view_index][s];
  }

 private:
  void RefreshShards(const lattice::LatticePropagateResult& deltas,
                     core::RefreshOptions ropts,
                     warehouse::BatchReport* report);
  void EmitGauges();

  warehouse::Warehouse* wh_;
  size_t num_shards_;
  obs::MetricsRegistry* metrics_;
  std::vector<std::vector<core::SummaryTable>> slices_;  // [view][shard]
  std::vector<uint64_t> shard_epoch_;
  std::vector<uint64_t> last_delta_rows_;
  std::vector<uint64_t> total_delta_rows_;
};

}  // namespace sdelta::shard

#endif  // SDELTA_SHARD_SHARDED_MAINTENANCE_H_
