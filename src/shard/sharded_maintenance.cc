#include "shard/sharded_maintenance.h"

#include <utility>

#include "core/refresh.h"
#include "exec/thread_pool.h"

namespace sdelta::shard {

ShardedMaintenance::ShardedMaintenance(warehouse::Warehouse* warehouse,
                                       size_t num_shards,
                                       obs::MetricsRegistry* metrics)
    : wh_(warehouse),
      num_shards_(num_shards == 0 ? 1 : num_shards),
      metrics_(metrics) {
  Repartition();
}

void ShardedMaintenance::Repartition() {
  const lattice::VLattice& lat = wh_->vlattice();
  slices_.clear();
  slices_.reserve(lat.views.size());
  for (size_t v = 0; v < lat.views.size(); ++v) {
    std::vector<core::SummaryTable> row;
    row.reserve(num_shards_);
    for (size_t s = 0; s < num_shards_; ++s) {
      row.emplace_back(lat.views[v], wh_->catalog());
    }
    slices_.push_back(std::move(row));
    ShardRouter router(slices_[v][0], num_shards_);
    std::vector<rel::Table> parts =
        router.Partition(wh_->summary(slices_[v][0].name()).ToTable());
    for (size_t s = 0; s < num_shards_; ++s) {
      slices_[v][s].LoadFrom(parts[s]);
    }
  }
  // Epochs survive a repartition (it is a re-slicing of the same state,
  // not a restart); only a shard-count change resets them.
  if (shard_epoch_.size() != num_shards_) {
    shard_epoch_.assign(num_shards_, 0);
    last_delta_rows_.assign(num_shards_, 0);
    total_delta_rows_.assign(num_shards_, 0);
  }
  EmitGauges();
}

warehouse::BatchReport ShardedMaintenance::RunBatch(
    const core::ChangeSet& changes) {
  return wh_->RunBatchWithRefresh(
      changes, [this](const lattice::LatticePropagateResult& deltas,
                      core::RefreshOptions ropts,
                      warehouse::BatchReport* report) {
        RefreshShards(deltas, std::move(ropts), report);
      });
}

void ShardedMaintenance::RefreshShards(
    const lattice::LatticePropagateResult& deltas, core::RefreshOptions ropts,
    warehouse::BatchReport* report) {
  const size_t num_views = slices_.size();
  const size_t num_shards = num_shards_;

  // Route every view's summary-delta. Runs on the batch thread: the
  // router may intern brand-new group strings into pool dictionaries.
  std::vector<std::vector<rel::Table>> parts(num_views);
  std::vector<uint64_t> routed(num_shards, 0);
  for (size_t v = 0; v < num_views; ++v) {
    ShardRouter router(slices_[v][0], num_shards);
    parts[v] = router.Partition(deltas.deltas[v]);
    for (size_t s = 0; s < num_shards; ++s) {
      routed[s] += parts[v][s].NumRows();
    }
  }

  // Per-shard pipelines: every (view, shard) slice refreshes
  // independently. Slices touch disjoint state and base tables are
  // read-only here (apply-base already ran), so tasks don't interact.
  report->views.resize(num_views);
  std::vector<std::vector<core::RefreshStats>> stats(
      num_views, std::vector<core::RefreshStats>(num_shards));
  auto refresh_slice = [&](size_t v, size_t s) {
    stats[v][s] =
        core::Refresh(wh_->catalog(), slices_[v][s], parts[v][s], ropts);
  };
  if (wh_->pool() != nullptr) {
    exec::TaskGroup group(wh_->pool());
    for (size_t v = 0; v < num_views; ++v) {
      for (size_t s = 0; s < num_shards; ++s) {
        group.Spawn([&refresh_slice, v, s] { refresh_slice(v, s); });
      }
    }
    group.Wait();
  } else {
    for (size_t v = 0; v < num_views; ++v) {
      for (size_t s = 0; s < num_shards; ++s) refresh_slice(v, s);
    }
  }

  // Fold per-view reports in (view, shard) order so the report is
  // identical regardless of task scheduling.
  for (size_t v = 0; v < num_views; ++v) {
    warehouse::ViewBatchReport& vr = report->views[v];
    vr.view = slices_[v][0].name();
    vr.delta_rows = deltas.deltas[v].NumRows();
    for (size_t s = 0; s < num_shards; ++s) vr.refresh += stats[v][s];
  }

  // Every batch runs every shard's pipeline exactly once, so per-shard
  // epochs advance in lockstep and a set of equal epochs is a
  // consistent cut.
  for (size_t s = 0; s < num_shards; ++s) {
    ++shard_epoch_[s];
    last_delta_rows_[s] = routed[s];
    total_delta_rows_[s] += routed[s];
    if (metrics_ != nullptr) {
      metrics_->Add("shard.delta_rows." + std::to_string(s), routed[s]);
    }
  }
  if (metrics_ != nullptr) {
    metrics_->Add("shard.batches");
    EmitGauges();
  }
}

rel::Table ShardedMaintenance::ComposeView(size_t view_index) const {
  const std::vector<core::SummaryTable>& row = slices_[view_index];
  rel::Table out(row[0].schema(), row[0].name());
  size_t total = 0;
  for (const core::SummaryTable& slice : row) total += slice.NumRows();
  out.Reserve(total);
  for (const core::SummaryTable& slice : row) {
    out.AppendColumnsFrom(slice.ToTable());
  }
  return core::CanonicalizeRows(out);
}

void ShardedMaintenance::SyncIntoWarehouse() {
  for (size_t v = 0; v < slices_.size(); ++v) {
    wh_->summary_mutable(slices_[v][0].name()).LoadFrom(ComposeView(v));
  }
}

size_t ShardedMaintenance::ShardRows(size_t s) const {
  size_t total = 0;
  for (const std::vector<core::SummaryTable>& row : slices_) {
    total += row[s].NumRows();
  }
  return total;
}

void ShardedMaintenance::EmitGauges() {
  if (metrics_ == nullptr) return;
  metrics_->Set("shard.count", static_cast<double>(num_shards_));
  for (size_t s = 0; s < num_shards_; ++s) {
    metrics_->Set("shard.epoch." + std::to_string(s),
                  static_cast<double>(shard_epoch_[s]));
    metrics_->Set("shard.rows." + std::to_string(s),
                  static_cast<double>(ShardRows(s)));
  }
}

}  // namespace sdelta::shard
