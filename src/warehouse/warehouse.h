#ifndef SDELTA_WAREHOUSE_WAREHOUSE_H_
#define SDELTA_WAREHOUSE_WAREHOUSE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/maintenance.h"
#include "core/summary_table.h"
#include "exec/thread_pool.h"
#include "lattice/answer.h"
#include "lattice/explain.h"
#include "lattice/plan.h"
#include "lattice/vlattice.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/catalog.h"

namespace sdelta::warehouse {

/// Per-view numbers from one batch window.
struct ViewBatchReport {
  std::string view;
  size_t delta_rows = 0;
  core::RefreshStats refresh;
};

/// Timing split for one nightly batch (paper §6): propagate runs while
/// the warehouse is still answering queries; apply-base + refresh are
/// the batch window during which readers are locked out.
///
/// The batch-level numbers are *derived from* the obs::MetricsRegistry
/// the pipeline writes to (the caller's via Options::metrics, or a
/// batch-local scratch registry) — RunBatch keeps no parallel counters.
struct BatchReport {
  double propagate_seconds = 0;
  double apply_base_seconds = 0;
  double refresh_seconds = 0;
  core::PropagateStats propagate;
  std::vector<ViewBatchReport> views;
  /// Per-plan-step execution records from the propagate phase, parallel
  /// to Warehouse::plan().steps — the actuals side of EXPLAIN ANALYZE.
  std::vector<lattice::StepExecution> step_execs;
  /// Shared-subplan execution records from the batch's MQO plan (empty
  /// when mqo_enabled is off or the batch had no sharing), plus the
  /// batch's MQO counters — the shell's `mqo` report and the shared
  /// actuals of EXPLAIN ANALYZE.
  std::vector<lattice::SharedExecution> shared_execs;
  lattice::MqoStats mqo;

  double maintenance_seconds() const {
    return propagate_seconds + refresh_seconds;
  }
  core::RefreshStats TotalRefresh() const;
};

/// The top-level facade: a catalog of base tables plus a set of
/// maintained summary tables arranged in a V-lattice, with the paper's
/// propagate/refresh batch cycle.
///
/// Typical use:
///   Warehouse wh(MakeRetailCatalog());
///   wh.DefineSummaryTables(RetailSummaryTables());
///   BatchReport r = wh.RunBatch(MakeUpdateGeneratingChanges(...));
class Warehouse {
 public:
  struct Options {
    /// Extend views with FD-determined dimension attributes so the
    /// lattice grows fuller (§5.2/§5.3; gives Figure 8 for the retail
    /// views). Affects the *schema* of extended summary tables.
    bool lattice_friendly = true;
    /// Propagate through the D-lattice (§5.4/§5.5). false = the paper's
    /// "w/o lattice" baseline: every summary-delta from base changes.
    bool use_lattice = true;
    core::PropagateOptions propagate;
    core::RefreshOptions refresh;
    /// Observability sinks (src/obs/), threaded through every pipeline
    /// stage (plan choice, propagate, refresh, answer). Null = disabled;
    /// the off path costs one branch per instrumentation site. Dump a
    /// captured trace with obs::WriteChromeTrace / obs::ExportJson.
    obs::Tracer* tracer = nullptr;
    obs::MetricsRegistry* metrics = nullptr;
    /// Execution contexts for the parallel engine: 0 = one per hardware
    /// thread, 1 = the exact legacy serial path (no pool, no exec.*
    /// metrics), n > 1 = the calling thread plus n-1 pool workers.
    /// Results are byte-identical at every setting (see operators.h for
    /// the determinism contract and its double-SUM caveat).
    size_t num_threads = 0;
  };

  explicit Warehouse(rel::Catalog catalog) : Warehouse(std::move(catalog), Options()) {}
  Warehouse(rel::Catalog catalog, Options options);

  rel::Catalog& catalog() { return catalog_; }
  const rel::Catalog& catalog() const { return catalog_; }
  const Options& options() const { return options_; }

  /// Re-targets the span sink for subsequent batches (RunBatch reads it
  /// per call). The service's profiler uses this to own a private
  /// maintenance-path tracer it can fold and clear per batch.
  void SetTracer(obs::Tracer* tracer) { options_.tracer = tracer; }

  /// Resolved execution-context count (>= 1).
  size_t num_threads() const { return num_threads_; }
  /// The engine's pool; null when num_threads() == 1.
  exec::ThreadPool* pool() const { return pool_.get(); }

  /// Registers and materializes the given summary tables; builds the
  /// V-lattice and the maintenance plan. Call once. With
  /// materialize = false the summary tables are left empty — callers
  /// restoring a snapshot load rows via summary_mutable().LoadFrom().
  void DefineSummaryTables(const std::vector<core::ViewDef>& views,
                           bool materialize = true);

  /// Adds one more summary table to the maintained set — the evolving
  /// partially-materialized lattice of §3.4 in operation. The
  /// lattice-friendly extension, V-lattice, and plan are rebuilt; the
  /// new table (and any existing table whose physical schema changed
  /// because the extension now carries extra attributes) is materialized
  /// from its cheapest parent when possible; untouched tables keep their
  /// rows.
  void AddSummaryTable(const core::ViewDef& view);
  /// SQL-text convenience (the paper's CREATE VIEW dialect).
  void AddSummaryTable(const std::string& sql);

  /// Removes a summary table by name; the remaining views re-link
  /// through the rebuilt lattice (edges spliced past the removed node).
  void DropSummaryTable(const std::string& name);

  size_t NumSummaryTables() const { return summaries_.size(); }
  /// The maintained views exactly as the user declared them — what a
  /// restore (LoadWarehouse) or a replica bootstrap must pass to end up
  /// with this warehouse's summary set.
  const std::vector<core::ViewDef>& defined_views() const {
    return defined_views_;
  }
  const core::SummaryTable& summary(const std::string& name) const;
  core::SummaryTable& summary_mutable(const std::string& name);
  const lattice::VLattice& vlattice() const { return lattice_; }
  const lattice::MaintenancePlan& plan() const { return plan_; }

  /// One nightly batch: propagate all summary-deltas (outside the batch
  /// window), apply the change set to the base tables, refresh every
  /// summary table (inside the window).
  BatchReport RunBatch(const core::ChangeSet& changes);

  /// The refresh phase of a batch, owned by the caller: receives the
  /// propagated summary-deltas (parallel to vlattice().views), the
  /// resolved refresh options (tracer/metrics wired, parent_span set
  /// when a pool will run the phase's tasks), and must fill
  /// report->views. The sharded pipeline (src/shard/) substitutes
  /// per-shard slice refreshes here while reusing the batch shell.
  using RefreshPhase =
      std::function<void(const lattice::LatticePropagateResult& deltas,
                         core::RefreshOptions ropts, BatchReport* report)>;

  /// RunBatch with a caller-owned refresh phase: propagate, apply-base,
  /// then `refresh_phase` — with identical timing, tracing, and metric
  /// accounting to RunBatch (which is this with the default phase).
  BatchReport RunBatchWithRefresh(const core::ChangeSet& changes,
                                  const RefreshPhase& refresh_phase);

  /// EXPLAIN: the annotated maintenance-plan tree for a change set —
  /// per-step source (after dimension-delta edge gating), wave, and
  /// estimated input/delta cardinalities. Pure; executes nothing.
  lattice::ExplainResult Explain(const core::ChangeSet& changes) const;

  /// EXPLAIN ANALYZE: runs the full batch (this *is* RunBatch — base and
  /// summary tables are mutated) and returns the tree annotated with
  /// actual cardinalities, operator accounting, and the refresh outcome
  /// classes each step fed. The default renderings are byte-identical
  /// across thread counts. `report` (optional) receives the batch report.
  lattice::ExplainResult ExplainAnalyze(const core::ChangeSet& changes,
                                        BatchReport* report = nullptr);

  /// The paper's propagate-only measurement: computes every
  /// summary-delta (with or without the lattice, per options) without
  /// touching base tables or summary tables. Returns elapsed seconds.
  double PropagateOnly(const core::ChangeSet& changes,
                       core::PropagateStats* stats = nullptr) const;

  /// The rematerialization baseline: applies the change set to the base
  /// tables and recomputes every summary table from scratch, exploiting
  /// the lattice (children recomputed from parents) when enabled.
  /// Returns elapsed seconds of the recomputation.
  double RematerializeAll(const core::ChangeSet& changes);

  /// Answers an ad-hoc aggregate query from the cheapest summary table
  /// that derives it (falling back to base-table evaluation). The query
  /// is a ViewDef describing SELECT/FROM/WHERE/GROUP BY, or SQL text in
  /// the paper's dialect ("SELECT region, SUM(qty) AS q FROM pos, stores
  /// WHERE pos.storeID = stores.storeID GROUP BY region").
  lattice::AnswerResult Query(const core::ViewDef& query) const;
  lattice::AnswerResult Query(const std::string& sql) const;

 private:
  /// Rebuilds extension/lattice/plan/summaries from defined_views_,
  /// preserving rows of tables whose physical schema is unchanged and
  /// materializing the rest (from a parent when the plan allows).
  void Rebuild(bool materialize);

  rel::Catalog catalog_;
  Options options_;
  size_t num_threads_ = 1;
  /// Workers = num_threads_ - 1: the thread calling into the warehouse
  /// is itself an execution context (TaskGroup::Wait helps run tasks).
  std::unique_ptr<exec::ThreadPool> pool_;
  std::vector<core::ViewDef> defined_views_;  // as the user declared them
  lattice::VLattice lattice_;
  lattice::MaintenancePlan plan_;
  std::vector<core::SummaryTable> summaries_;  // parallel to lattice_.views
};

}  // namespace sdelta::warehouse

#endif  // SDELTA_WAREHOUSE_WAREHOUSE_H_
