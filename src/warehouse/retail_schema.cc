#include "warehouse/retail_schema.h"

#include <random>

namespace sdelta::warehouse {

using rel::Schema;
using rel::Table;
using rel::Value;
using rel::ValueType;

rel::Catalog MakeRetailCatalog(const RetailConfig& config) {
  rel::Catalog catalog;
  std::mt19937_64 rng(config.seed);

  Schema stores_schema;
  stores_schema.AddColumn("storeID", ValueType::kInt64);
  stores_schema.AddColumn("city", ValueType::kString);
  stores_schema.AddColumn("region", ValueType::kString);
  Table stores(stores_schema, "stores");
  for (size_t s = 0; s < config.num_stores; ++s) {
    // Stores map onto cities round-robin; cities map onto regions
    // round-robin, keeping city -> region functional.
    const size_t city = s % config.num_cities;
    const size_t region = city % config.num_regions;
    stores.Insert({Value::Int64(static_cast<int64_t>(s + 1)),
                   Value::String("city" + std::to_string(city)),
                   Value::String("region" + std::to_string(region))});
  }
  catalog.AddTable(std::move(stores));

  Schema items_schema;
  items_schema.AddColumn("itemID", ValueType::kInt64);
  items_schema.AddColumn("name", ValueType::kString);
  items_schema.AddColumn("category", ValueType::kString);
  items_schema.AddColumn("cost", ValueType::kDouble);
  Table items(items_schema, "items");
  std::uniform_real_distribution<double> cost_dist(0.5, 100.0);
  for (size_t i = 0; i < config.num_items; ++i) {
    const size_t category = i % config.num_categories;
    items.Insert({Value::Int64(static_cast<int64_t>(i + 1)),
                  Value::String("item" + std::to_string(i + 1)),
                  Value::String("cat" + std::to_string(category)),
                  Value::Double(cost_dist(rng))});
  }
  catalog.AddTable(std::move(items));

  Schema pos_schema;
  pos_schema.AddColumn("storeID", ValueType::kInt64);
  pos_schema.AddColumn("itemID", ValueType::kInt64);
  pos_schema.AddColumn("date", ValueType::kInt64);
  pos_schema.AddColumn("qty", ValueType::kInt64);
  pos_schema.AddColumn("price", ValueType::kDouble);
  Table pos(pos_schema, "pos");
  pos.Reserve(config.num_pos_rows);
  std::uniform_int_distribution<int64_t> store_dist(
      1, static_cast<int64_t>(config.num_stores));
  std::uniform_int_distribution<int64_t> item_dist(
      1, static_cast<int64_t>(config.num_items));
  std::uniform_int_distribution<int64_t> date_dist(
      1, static_cast<int64_t>(config.num_dates));
  std::uniform_int_distribution<int64_t> qty_dist(1, 10);
  std::uniform_real_distribution<double> price_dist(1.0, 500.0);
  for (size_t r = 0; r < config.num_pos_rows; ++r) {
    pos.Insert({Value::Int64(store_dist(rng)), Value::Int64(item_dist(rng)),
                Value::Int64(date_dist(rng)), Value::Int64(qty_dist(rng)),
                Value::Double(price_dist(rng))});
  }
  pos.EnableRowIndex();
  catalog.AddTable(std::move(pos));

  catalog.DeclareForeignKey("pos", "storeID", "stores", "storeID");
  catalog.DeclareForeignKey("pos", "itemID", "items", "itemID");
  catalog.DeclareFunctionalDependency("stores", "storeID", "city");
  catalog.DeclareFunctionalDependency("stores", "city", "region");
  catalog.DeclareFunctionalDependency("items", "itemID", "category");
  return catalog;
}

std::vector<core::ViewDef> RetailSummaryTables() {
  using rel::Expression;
  std::vector<core::ViewDef> views;

  core::ViewDef sid;
  sid.name = "SID_sales";
  sid.fact_table = "pos";
  sid.group_by = {"storeID", "itemID", "date"};
  sid.aggregates = {rel::CountStar("TotalCount"),
                    rel::Sum(Expression::Column("qty"), "TotalQuantity")};
  views.push_back(sid);

  core::ViewDef scd;
  scd.name = "sCD_sales";
  scd.fact_table = "pos";
  scd.joins = {core::DimensionJoin{"stores", "storeID", "storeID"}};
  scd.group_by = {"city", "date"};
  scd.aggregates = {rel::CountStar("TotalCount"),
                    rel::Sum(Expression::Column("qty"), "TotalQuantity")};
  views.push_back(scd);

  core::ViewDef sic;
  sic.name = "SiC_sales";
  sic.fact_table = "pos";
  sic.joins = {core::DimensionJoin{"items", "itemID", "itemID"}};
  sic.group_by = {"storeID", "category"};
  sic.aggregates = {rel::CountStar("TotalCount"),
                    rel::Min(Expression::Column("date"), "EarliestSale"),
                    rel::Sum(Expression::Column("qty"), "TotalQuantity")};
  views.push_back(sic);

  core::ViewDef sr;
  sr.name = "sR_sales";
  sr.fact_table = "pos";
  sr.joins = {core::DimensionJoin{"stores", "storeID", "storeID"}};
  sr.group_by = {"region"};
  sr.aggregates = {rel::CountStar("TotalCount"),
                   rel::Sum(Expression::Column("qty"), "TotalQuantity")};
  views.push_back(sr);

  return views;
}

}  // namespace sdelta::warehouse
