#ifndef SDELTA_WAREHOUSE_WORKLOAD_H_
#define SDELTA_WAREHOUSE_WORKLOAD_H_

#include <cstdint>

#include "core/delta.h"
#include "relational/catalog.h"

namespace sdelta::warehouse {

/// The paper's two change classes for the pos fact table (§6):
///
/// *Update-generating changes*: an equal number of insertions and
/// deletions over existing date/store/item values — they mostly cause
/// in-place updates of existing summary-table tuples. `change_size`
/// rows total (half deletions of existing pos rows, half fresh
/// insertions over existing value combinations).
core::ChangeSet MakeUpdateGeneratingChanges(const rel::Catalog& catalog,
                                            size_t change_size,
                                            uint64_t seed);

/// *Insertion-generating changes*: insertions over NEW dates (beyond any
/// date currently in pos) with existing store/item values — they cause
/// pure inserts into the summary tables that group by date and updates
/// into the others.
core::ChangeSet MakeInsertionGeneratingChanges(const rel::Catalog& catalog,
                                               size_t change_size,
                                               uint64_t seed);

/// Dimension-table changes (paper §4.1.4): reassigns `count` random items
/// to different categories, expressed as an items delta (delete old row,
/// insert updated row).
core::ChangeSet MakeItemRecategorization(const rel::Catalog& catalog,
                                         size_t count, uint64_t seed);

/// *Backfill changes*: insertions of late-arriving historical rows with
/// dates EARLIER than anything in pos — every touched group's MIN(date)
/// is beaten, the worst case for Figure 7's conservative recompute rule
/// and the best case for the untainted-delta optimization.
core::ChangeSet MakeBackfillChanges(const rel::Catalog& catalog,
                                    size_t change_size, uint64_t seed);

}  // namespace sdelta::warehouse

#endif  // SDELTA_WAREHOUSE_WORKLOAD_H_
