#include "warehouse/persistence.h"

#include <array>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "relational/csv.h"

namespace sdelta::warehouse {

namespace fs = std::filesystem;

namespace {

const char* TypeName(rel::ValueType t) {
  switch (t) {
    case rel::ValueType::kInt64: return "int64";
    case rel::ValueType::kDouble: return "double";
    case rel::ValueType::kString: return "string";
    case rel::ValueType::kNull: return "null";
  }
  return "?";
}

rel::ValueType ParseType(const std::string& name) {
  if (name == "int64") return rel::ValueType::kInt64;
  if (name == "double") return rel::ValueType::kDouble;
  if (name == "string") return rel::ValueType::kString;
  throw std::runtime_error("manifest: unknown column type '" + name + "'");
}

/// manifest schema syntax: name:type,name:type,...
std::string SerializeSchema(const rel::Schema& schema) {
  std::string out;
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    if (i > 0) out += ",";
    out += schema.column(i).name;
    out += ":";
    out += TypeName(schema.column(i).type);
  }
  return out;
}

rel::Schema DeserializeSchema(const std::string& text) {
  rel::Schema schema;
  std::istringstream in(text);
  std::string part;
  while (std::getline(in, part, ',')) {
    const size_t colon = part.rfind(':');
    if (colon == std::string::npos) {
      throw std::runtime_error("manifest: bad schema entry '" + part + "'");
    }
    schema.AddColumn(part.substr(0, colon),
                     ParseType(part.substr(colon + 1)));
  }
  return schema;
}

void WriteTableCsv(const rel::Table& table, const fs::path& path) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("cannot write " + path.string());
  }
  rel::WriteCsv(table, out);
}

rel::Table ReadTableCsv(const rel::Schema& schema, const fs::path& path,
                        const std::string& name) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot read " + path.string());
  }
  return rel::ReadCsv(schema, in, name);
}

}  // namespace

void SaveCatalog(const rel::Catalog& catalog, const std::string& dir) {
  fs::create_directories(fs::path(dir) / "tables");
  std::ofstream manifest(fs::path(dir) / "manifest.txt");
  if (!manifest) {
    throw std::runtime_error("cannot write manifest under " + dir);
  }
  for (const std::string& name : catalog.TableNames()) {
    const rel::Table& table = catalog.GetTable(name);
    manifest << "table " << name << " "
             << SerializeSchema(table.schema())
             << (table.row_index_enabled() ? " indexed" : "") << "\n";
    WriteTableCsv(table, fs::path(dir) / "tables" / (name + ".csv"));
  }
  for (const rel::ForeignKey& fk : catalog.foreign_keys()) {
    manifest << "fk " << fk.fact_table << " " << fk.fact_column << " "
             << fk.dim_table << " " << fk.dim_column << "\n";
  }
  for (const rel::FunctionalDependency& fd :
       catalog.functional_dependencies()) {
    manifest << "fd " << fd.table << " " << fd.determinant << " "
             << fd.dependent << "\n";
  }
}

rel::Catalog LoadCatalog(const std::string& dir) {
  std::ifstream manifest(fs::path(dir) / "manifest.txt");
  if (!manifest) {
    throw std::runtime_error("missing manifest under " + dir);
  }
  rel::Catalog catalog;
  std::string line;
  // Foreign keys / FDs may reference tables declared later; collect and
  // apply after all tables load.
  std::vector<std::array<std::string, 4>> fks;
  std::vector<std::array<std::string, 3>> fds;
  while (std::getline(manifest, line)) {
    if (line.empty()) continue;
    std::istringstream in(line);
    std::string kind;
    in >> kind;
    if (kind == "table") {
      std::string name;
      std::string schema_text;
      std::string flag;
      in >> name >> schema_text >> flag;
      rel::Schema schema = DeserializeSchema(schema_text);
      rel::Table table = ReadTableCsv(
          schema, fs::path(dir) / "tables" / (name + ".csv"), name);
      if (flag == "indexed") table.EnableRowIndex();
      catalog.AddTable(std::move(table));
    } else if (kind == "fk") {
      std::array<std::string, 4> fk;
      in >> fk[0] >> fk[1] >> fk[2] >> fk[3];
      fks.push_back(std::move(fk));
    } else if (kind == "fd") {
      std::array<std::string, 3> fd;
      in >> fd[0] >> fd[1] >> fd[2];
      fds.push_back(std::move(fd));
    } else if (kind == "summary") {
      // consumed by LoadWarehouse; ignore here
    } else {
      throw std::runtime_error("manifest: unknown entry '" + kind + "'");
    }
  }
  for (const auto& fk : fks) {
    catalog.DeclareForeignKey(fk[0], fk[1], fk[2], fk[3]);
  }
  for (const auto& fd : fds) {
    catalog.DeclareFunctionalDependency(fd[0], fd[1], fd[2]);
  }
  return catalog;
}

void SaveWarehouse(const Warehouse& warehouse, const std::string& dir) {
  SaveCatalog(warehouse.catalog(), dir);
  fs::create_directories(fs::path(dir) / "summaries");
  std::ofstream manifest(fs::path(dir) / "manifest.txt", std::ios::app);
  for (const core::AugmentedView& av : warehouse.vlattice().views) {
    const core::SummaryTable& summary = warehouse.summary(av.name());
    manifest << "summary " << av.name() << "\n";
    WriteTableCsv(summary.ToTable(),
                  fs::path(dir) / "summaries" / (av.name() + ".csv"));
  }
}

Warehouse LoadWarehouse(const std::string& dir,
                        const std::vector<core::ViewDef>& views,
                        Warehouse::Options options) {
  Warehouse warehouse(LoadCatalog(dir), options);
  warehouse.DefineSummaryTables(views, /*materialize=*/false);
  for (size_t i = 0; i < warehouse.NumSummaryTables(); ++i) {
    const core::AugmentedView& av = warehouse.vlattice().views[i];
    core::SummaryTable& summary = warehouse.summary_mutable(av.name());
    const fs::path path = fs::path(dir) / "summaries" / (av.name() + ".csv");
    rel::Table rows = ReadTableCsv(summary.schema(), path, av.name());
    summary.LoadFrom(rows);
  }
  return warehouse;
}

}  // namespace sdelta::warehouse
