#include "warehouse/workload.h"

#include <random>
#include <unordered_set>

namespace sdelta::warehouse {

using rel::Row;
using rel::Table;
using rel::Value;

namespace {

/// Distinct values of an int64 column, for sampling "existing" values.
std::vector<int64_t> DistinctInt64(const Table& t, const std::string& col) {
  const size_t idx = t.schema().Resolve(col);
  std::unordered_set<int64_t> seen;
  for (size_t r = 0; r < t.NumRows(); ++r) {
    const Value v = t.ValueAt(r, idx);
    if (!v.is_null()) seen.insert(v.as_int64());
  }
  return std::vector<int64_t>(seen.begin(), seen.end());
}

int64_t MaxInt64(const Table& t, const std::string& col) {
  const size_t idx = t.schema().Resolve(col);
  int64_t max = 0;
  for (size_t r = 0; r < t.NumRows(); ++r) {
    const Value v = t.ValueAt(r, idx);
    if (!v.is_null() && v.as_int64() > max) {
      max = v.as_int64();
    }
  }
  return max;
}

}  // namespace

core::ChangeSet MakeUpdateGeneratingChanges(const rel::Catalog& catalog,
                                            size_t change_size,
                                            uint64_t seed) {
  const Table& pos = catalog.GetTable("pos");
  std::mt19937_64 rng(seed);

  core::ChangeSet changes;
  changes.fact_table = "pos";
  changes.fact = core::DeltaSet(pos.schema());

  const size_t num_deletions = std::min(change_size / 2, pos.NumRows());
  const size_t num_insertions = change_size - num_deletions;

  // Deletions: sample distinct existing row positions.
  std::unordered_set<size_t> picked;
  std::uniform_int_distribution<size_t> pos_dist(0, pos.NumRows() - 1);
  while (picked.size() < num_deletions) {
    picked.insert(pos_dist(rng));
  }
  for (size_t p : picked) {
    changes.fact.deletions.Insert(pos.RowAt(p));
  }

  // Insertions: existing store/item/date values, fresh qty/price.
  const std::vector<int64_t> stores = DistinctInt64(pos, "storeID");
  const std::vector<int64_t> items = DistinctInt64(pos, "itemID");
  const std::vector<int64_t> dates = DistinctInt64(pos, "date");
  std::uniform_int_distribution<size_t> s_dist(0, stores.size() - 1);
  std::uniform_int_distribution<size_t> i_dist(0, items.size() - 1);
  std::uniform_int_distribution<size_t> d_dist(0, dates.size() - 1);
  std::uniform_int_distribution<int64_t> qty_dist(1, 10);
  std::uniform_real_distribution<double> price_dist(1.0, 500.0);
  for (size_t k = 0; k < num_insertions; ++k) {
    changes.fact.insertions.Insert(
        {Value::Int64(stores[s_dist(rng)]), Value::Int64(items[i_dist(rng)]),
         Value::Int64(dates[d_dist(rng)]), Value::Int64(qty_dist(rng)),
         Value::Double(price_dist(rng))});
  }
  return changes;
}

core::ChangeSet MakeInsertionGeneratingChanges(const rel::Catalog& catalog,
                                               size_t change_size,
                                               uint64_t seed) {
  const Table& pos = catalog.GetTable("pos");
  std::mt19937_64 rng(seed);

  core::ChangeSet changes;
  changes.fact_table = "pos";
  changes.fact = core::DeltaSet(pos.schema());

  const std::vector<int64_t> stores = DistinctInt64(pos, "storeID");
  const std::vector<int64_t> items = DistinctInt64(pos, "itemID");
  const int64_t first_new_date = MaxInt64(pos, "date") + 1;
  // New data lands on a handful of fresh dates (a nightly batch covers
  // one day, occasionally a few).
  const int64_t num_new_dates = 3;

  std::uniform_int_distribution<size_t> s_dist(0, stores.size() - 1);
  std::uniform_int_distribution<size_t> i_dist(0, items.size() - 1);
  std::uniform_int_distribution<int64_t> d_dist(first_new_date,
                                                first_new_date +
                                                    num_new_dates - 1);
  std::uniform_int_distribution<int64_t> qty_dist(1, 10);
  std::uniform_real_distribution<double> price_dist(1.0, 500.0);
  for (size_t k = 0; k < change_size; ++k) {
    changes.fact.insertions.Insert(
        {Value::Int64(stores[s_dist(rng)]), Value::Int64(items[i_dist(rng)]),
         Value::Int64(d_dist(rng)), Value::Int64(qty_dist(rng)),
         Value::Double(price_dist(rng))});
  }
  return changes;
}

core::ChangeSet MakeBackfillChanges(const rel::Catalog& catalog,
                                    size_t change_size, uint64_t seed) {
  const Table& pos = catalog.GetTable("pos");
  std::mt19937_64 rng(seed);

  core::ChangeSet changes;
  changes.fact_table = "pos";
  changes.fact = core::DeltaSet(pos.schema());

  const std::vector<int64_t> stores = DistinctInt64(pos, "storeID");
  const std::vector<int64_t> items = DistinctInt64(pos, "itemID");
  // All backfilled dates sort strictly before every existing date (day
  // numbers are >= 1; backfill uses 0 and below).
  std::uniform_int_distribution<size_t> s_dist(0, stores.size() - 1);
  std::uniform_int_distribution<size_t> i_dist(0, items.size() - 1);
  std::uniform_int_distribution<int64_t> d_dist(-30, 0);
  std::uniform_int_distribution<int64_t> qty_dist(1, 10);
  std::uniform_real_distribution<double> price_dist(1.0, 500.0);
  for (size_t k = 0; k < change_size; ++k) {
    changes.fact.insertions.Insert(
        {Value::Int64(stores[s_dist(rng)]), Value::Int64(items[i_dist(rng)]),
         Value::Int64(d_dist(rng)), Value::Int64(qty_dist(rng)),
         Value::Double(price_dist(rng))});
  }
  return changes;
}

core::ChangeSet MakeItemRecategorization(const rel::Catalog& catalog,
                                         size_t count, uint64_t seed) {
  const Table& items = catalog.GetTable("items");
  std::mt19937_64 rng(seed);

  core::ChangeSet changes;
  changes.fact_table = "pos";
  changes.fact = core::DeltaSet(catalog.GetTable("pos").schema());
  core::DeltaSet items_delta(items.schema());

  const size_t category_idx = items.schema().Resolve("category");
  std::unordered_set<size_t> picked;
  std::uniform_int_distribution<size_t> row_dist(0, items.NumRows() - 1);
  count = std::min(count, items.NumRows());
  while (picked.size() < count) {
    picked.insert(row_dist(rng));
  }
  for (size_t p : picked) {
    Row old_row = items.RowAt(p);
    Row new_row = old_row;
    new_row[category_idx] = Value::String(
        old_row[category_idx].as_string() + "_moved");
    items_delta.deletions.Insert(std::move(old_row));
    items_delta.insertions.Insert(std::move(new_row));
  }
  changes.dimensions.emplace("items", std::move(items_delta));
  return changes;
}

}  // namespace sdelta::warehouse
