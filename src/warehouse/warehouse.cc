#include "warehouse/warehouse.h"

#include <stdexcept>

#include "core/rematerialize.h"
#include "core/sql_parser.h"

namespace sdelta::warehouse {

core::RefreshStats BatchReport::TotalRefresh() const {
  core::RefreshStats total;
  for (const ViewBatchReport& v : views) total += v.refresh;
  return total;
}

Warehouse::Warehouse(rel::Catalog catalog, Options options)
    : catalog_(std::move(catalog)),
      options_(options),
      num_threads_(exec::ThreadPool::ResolveThreads(options.num_threads)) {
  // The calling thread is an execution context (TaskGroup::Wait helps),
  // so n threads of parallelism need n-1 pool workers. num_threads == 1
  // keeps pool_ null: every operator takes its exact legacy serial path.
  if (num_threads_ > 1) {
    pool_ = std::make_unique<exec::ThreadPool>(num_threads_ - 1);
  }
}

namespace {

/// Folds the pool-stat delta across a phase into exec.* metrics.
/// exec.tasks and exec.morsels are counters and depend only on the work
/// decomposition (identical for every num_threads > 1); the busy-time
/// split varies with scheduling, so it feeds gauges only. Utilization is
/// reported per execution context: one exec.worker_utilization.<i> gauge
/// per pool worker plus exec.helper_utilization for the calling thread's
/// help-while-waiting time, each a busy fraction of the elapsed phase.
void DrainExecStats(const exec::PoolStats& before, const exec::PoolStats& after,
                    double elapsed_seconds, size_t num_threads,
                    obs::MetricsRegistry& m) {
  m.Add("exec.tasks", after.tasks_scheduled - before.tasks_scheduled);
  m.Add("exec.morsels", after.morsels_scheduled - before.morsels_scheduled);
  const double busy =
      static_cast<double>(after.busy_ns - before.busy_ns) * 1e-9;
  m.Set("exec.busy_seconds", busy);
  if (elapsed_seconds <= 0) return;
  m.Set("exec.pool_utilization",
        busy / (elapsed_seconds * static_cast<double>(num_threads)));
  for (size_t i = 0; i < after.worker_busy_ns.size(); ++i) {
    const uint64_t b0 =
        i < before.worker_busy_ns.size() ? before.worker_busy_ns[i] : 0;
    m.Set("exec.worker_utilization." + std::to_string(i),
          static_cast<double>(after.worker_busy_ns[i] - b0) * 1e-9 /
              elapsed_seconds);
  }
  m.Set("exec.helper_utilization",
        static_cast<double>(after.helper_busy_ns - before.helper_busy_ns) *
            1e-9 / elapsed_seconds);
}

}  // namespace

void Warehouse::DefineSummaryTables(const std::vector<core::ViewDef>& views,
                                    bool materialize) {
  if (!summaries_.empty()) {
    throw std::logic_error("summary tables already defined");
  }
  defined_views_ = views;
  Rebuild(materialize);
}

void Warehouse::AddSummaryTable(const core::ViewDef& view) {
  core::ValidateView(catalog_, view);
  for (const core::ViewDef& existing : defined_views_) {
    if (existing.name == view.name) {
      throw std::invalid_argument("summary table " + view.name +
                                  " already defined");
    }
  }
  defined_views_.push_back(view);
  Rebuild(/*materialize=*/true);
}

void Warehouse::AddSummaryTable(const std::string& sql) {
  AddSummaryTable(core::ParseViewDef(catalog_, sql));
}

void Warehouse::DropSummaryTable(const std::string& name) {
  for (size_t i = 0; i < defined_views_.size(); ++i) {
    if (defined_views_[i].name == name) {
      defined_views_.erase(defined_views_.begin() + i);
      Rebuild(/*materialize=*/true);
      return;
    }
  }
  throw std::invalid_argument("unknown summary table: " + name);
}

void Warehouse::Rebuild(bool materialize) {
  obs::TraceSpan span(options_.tracer, "warehouse.Rebuild");
  std::vector<core::ViewDef> defs =
      options_.lattice_friendly
          ? lattice::MakeLatticeFriendly(catalog_, defined_views_)
          : defined_views_;
  std::vector<core::AugmentedView> augmented;
  augmented.reserve(defs.size());
  for (const core::ViewDef& d : defs) {
    augmented.push_back(core::AugmentForSelfMaintenance(catalog_, d));
  }

  // Stash the previous tables so unchanged views keep their rows.
  std::vector<core::SummaryTable> old = std::move(summaries_);
  summaries_.clear();

  lattice_ = lattice::BuildVLattice(catalog_, std::move(augmented));
  lattice::PlanOptions plan_options;
  plan_options.use_lattice = options_.use_lattice;
  plan_options.tracer = options_.tracer;
  plan_options.metrics = options_.metrics;
  plan_ = lattice::ChoosePlan(catalog_, lattice_, plan_options);
  summaries_.reserve(lattice_.views.size());
  for (const core::AugmentedView& v : lattice_.views) {
    summaries_.emplace_back(v, catalog_);
  }
  if (!materialize) return;

  // Plan order guarantees parents are filled before children, so a new
  // view can be built from a parent's (preserved or fresh) rows.
  for (const lattice::PlanStep& step : plan_.steps) {
    core::SummaryTable& table = summaries_[step.view];
    const core::SummaryTable* previous = nullptr;
    for (const core::SummaryTable& o : old) {
      if (o.name() == table.name() && o.schema() == table.schema()) {
        previous = &o;
      }
    }
    if (previous != nullptr) {
      table.LoadFrom(previous->ToTable());
      continue;
    }
    if (step.edge.has_value()) {
      const lattice::VLatticeEdge& edge = lattice_.edges[*step.edge];
      core::RematerializeFromParent(catalog_, edge.recipe,
                                    summaries_[edge.parent].ToTable(),
                                    table);
    } else {
      table.MaterializeFrom(catalog_);
    }
  }
}

const core::SummaryTable& Warehouse::summary(const std::string& name) const {
  for (const core::SummaryTable& s : summaries_) {
    if (s.name() == name) return s;
  }
  throw std::invalid_argument("unknown summary table: " + name);
}

core::SummaryTable& Warehouse::summary_mutable(const std::string& name) {
  for (core::SummaryTable& s : summaries_) {
    if (s.name() == name) return s;
  }
  throw std::invalid_argument("unknown summary table: " + name);
}

BatchReport Warehouse::RunBatch(const core::ChangeSet& changes) {
  return RunBatchWithRefresh(
      changes, [this](const lattice::LatticePropagateResult& deltas,
                      core::RefreshOptions ropts, BatchReport* report) {
        report->views.resize(summaries_.size());
        // Refresh every view, one per-view report slot so the report
        // order matches the serial loop regardless of scheduling. Views
        // are independent: each refresh mutates only its own summary
        // table and reads the (already updated) base tables.
        auto refresh_view = [&](size_t i) {
          ViewBatchReport& vr = report->views[i];
          vr.view = summaries_[i].name();
          vr.delta_rows = deltas.deltas[i].NumRows();
          vr.refresh =
              core::Refresh(catalog_, summaries_[i], deltas.deltas[i], ropts);
        };
        if (pool_ != nullptr) {
          exec::TaskGroup group(pool_.get());
          for (size_t i = 0; i < summaries_.size(); ++i) {
            group.Spawn([&refresh_view, i] { refresh_view(i); });
          }
          group.Wait();
        } else {
          for (size_t i = 0; i < summaries_.size(); ++i) refresh_view(i);
        }
      });
}

BatchReport Warehouse::RunBatchWithRefresh(const core::ChangeSet& changes,
                                           const RefreshPhase& refresh_phase) {
  // The pipeline always writes into a registry — the caller's when one
  // is attached, else a batch-local scratch — and the report is read
  // back out of it, so there is exactly one set of counters.
  obs::MetricsRegistry scratch;
  obs::MetricsRegistry& m =
      options_.metrics != nullptr ? *options_.metrics : scratch;
  obs::Tracer* tracer = options_.tracer;

  core::PropagateOptions popts = options_.propagate;
  popts.tracer = tracer;
  popts.metrics = &m;
  popts.pool = pool_.get();
  core::RefreshOptions ropts = options_.refresh;
  ropts.tracer = tracer;
  ropts.metrics = &m;

  // A shared registry accumulates across batches; the report is the
  // delta over this batch.
  const uint64_t scanned0 = m.counter("propagate.rows_scanned");
  const uint64_t delta0 = m.counter("propagate.delta_rows");
  const uint64_t preagg0 = m.counter("propagate.preaggregated");

  obs::TraceSpan batch(tracer, "warehouse.RunBatch");
  BatchReport report;

  const exec::PoolStats exec0 =
      pool_ != nullptr ? pool_->StatsSnapshot() : exec::PoolStats{};
  core::Stopwatch batch_sw;

  core::Stopwatch sw;
  lattice::LatticePropagateResult deltas =
      lattice::PropagateAll(catalog_, lattice_, plan_, changes, popts);
  m.Set("batch.propagate_seconds", sw.ElapsedSeconds());
  report.step_execs = std::move(deltas.step_execs);
  report.shared_execs = std::move(deltas.shared_execs);
  report.mqo = deltas.mqo;

  sw.Reset();
  {
    obs::TraceSpan apply(tracer, "batch.apply_base");
    core::ApplyChangeSet(catalog_, changes);
  }
  m.Set("batch.apply_base_seconds", sw.ElapsedSeconds());

  sw.Reset();
  {
    obs::TraceSpan refresh_span(tracer, "refresh");
    // Pool workers have no open spans; parent refresh.view explicitly.
    if (pool_ != nullptr) ropts.parent_span = refresh_span.id();
    refresh_phase(deltas, ropts, &report);
  }
  m.Set("batch.refresh_seconds", sw.ElapsedSeconds());

  report.propagate_seconds = m.gauge("batch.propagate_seconds");
  report.apply_base_seconds = m.gauge("batch.apply_base_seconds");
  report.refresh_seconds = m.gauge("batch.refresh_seconds");
  report.propagate.prepared_tuples =
      m.counter("propagate.rows_scanned") - scanned0;
  report.propagate.delta_groups = m.counter("propagate.delta_rows") - delta0;
  report.propagate.preaggregated =
      m.counter("propagate.preaggregated") > preagg0;
  m.Observe("batch.maintenance_seconds", report.maintenance_seconds());
  // Batch-wide key-encoding health: share of key operations that took
  // the packed fast path (100% on the retail schema), and the total
  // dictionary population backing string key columns.
  const double key_packed = static_cast<double>(m.counter("key.packed_rows"));
  const double key_fallback =
      static_cast<double>(m.counter("key.fallback_rows"));
  if (key_packed + key_fallback > 0) {
    m.Set("key.packed_ratio", key_packed / (key_packed + key_fallback));
  }
  m.Set("dict.entries",
        static_cast<double>(catalog_.dictionaries().TotalEntries()));
  // Columnar storage health: resident bytes across base tables and the
  // mean rows delivered per column batch this run (vectorization grain).
  size_t table_bytes = 0;
  for (const std::string& tn : catalog_.TableNames()) {
    table_bytes += catalog_.GetTable(tn).ApproxBytes();
  }
  m.Set("table.bytes", static_cast<double>(table_bytes));
  uint64_t batch_rows = 0;
  uint64_t batches = 0;
  for (const char* op : {"select", "project", "hash_join", "group_by"}) {
    batch_rows += m.counter(std::string("op.") + op + ".rows_in");
    batches += m.counter(std::string("op.") + op + ".batches");
  }
  if (batches > 0) {
    m.Set("columnar.batch_rows",
          static_cast<double>(batch_rows) / static_cast<double>(batches));
  }
  if (pool_ != nullptr) {
    m.Set("exec.threads", static_cast<double>(num_threads_));
    DrainExecStats(exec0, pool_->StatsSnapshot(), batch_sw.ElapsedSeconds(),
                   num_threads_, m);
  }
  return report;
}

lattice::ExplainResult Warehouse::Explain(
    const core::ChangeSet& changes) const {
  if (options_.propagate.mqo_enabled) {
    const lattice::MqoPlan mqo =
        lattice::BuildMqoPlan(catalog_, lattice_, plan_, changes);
    return lattice::BuildExplain(catalog_, lattice_, plan_, changes, &mqo);
  }
  return lattice::BuildExplain(catalog_, lattice_, plan_, changes);
}

lattice::ExplainResult Warehouse::ExplainAnalyze(const core::ChangeSet& changes,
                                                 BatchReport* report) {
  // Estimates read the pre-change catalog (distinct counts, fan-in), so
  // the tree is built before RunBatch applies the change set. The MQO
  // plan is rebuilt here from the same inputs PropagateAll uses, so the
  // annotations match what the batch executes.
  lattice::ExplainResult explain = Explain(changes);
  BatchReport batch = RunBatch(changes);
  lattice::AttachActuals(batch.step_execs, batch.shared_execs, &explain);
  for (const ViewBatchReport& vr : batch.views) {
    if (lattice::ExplainStep* step = explain.FindStep(vr.view)) {
      step->has_refresh = true;
      step->refresh = vr.refresh;
    }
  }
  if (report != nullptr) *report = std::move(batch);
  return explain;
}

double Warehouse::PropagateOnly(const core::ChangeSet& changes,
                                core::PropagateStats* stats) const {
  core::PropagateOptions popts = options_.propagate;
  popts.tracer = options_.tracer;
  popts.metrics = options_.metrics;
  popts.pool = pool_.get();
  obs::TraceSpan span(options_.tracer, "warehouse.PropagateOnly");
  const exec::PoolStats exec0 =
      pool_ != nullptr ? pool_->StatsSnapshot() : exec::PoolStats{};
  core::Stopwatch sw;
  lattice::LatticePropagateResult deltas =
      lattice::PropagateAll(catalog_, lattice_, plan_, changes, popts);
  const double elapsed = sw.ElapsedSeconds();
  if (options_.metrics != nullptr) {
    options_.metrics->Observe("propagate.seconds", elapsed);
    if (pool_ != nullptr) {
      options_.metrics->Set("exec.threads", static_cast<double>(num_threads_));
      DrainExecStats(exec0, pool_->StatsSnapshot(), elapsed, num_threads_,
                     *options_.metrics);
    }
  }
  if (stats != nullptr) *stats = deltas.totals;
  return elapsed;
}

double Warehouse::RematerializeAll(const core::ChangeSet& changes) {
  obs::TraceSpan span(options_.tracer, "warehouse.RematerializeAll");
  {
    obs::TraceSpan apply(options_.tracer, "batch.apply_base");
    core::ApplyChangeSet(catalog_, changes);
  }
  core::Stopwatch sw;
  const double elapsed = [&] {
    if (!options_.use_lattice) {
      for (core::SummaryTable& s : summaries_) {
        obs::TraceSpan step(options_.tracer, s.name());
        step.Attr("source", "base");
        core::Rematerialize(catalog_, s);
      }
      return sw.ElapsedSeconds();
    }
    // Recompute along the plan: tops from base, children from their
    // parent's fresh rows via the V-lattice edge query (Theorem 5.1).
    for (const lattice::PlanStep& step : plan_.steps) {
      obs::TraceSpan step_span(options_.tracer,
                               summaries_[step.view].name());
      if (step.edge.has_value()) {
        const lattice::VLatticeEdge& edge = lattice_.edges[*step.edge];
        step_span.Attr("source", summaries_[edge.parent].name());
        core::RematerializeFromParent(catalog_, edge.recipe,
                                      summaries_[edge.parent].ToTable(),
                                      summaries_[step.view]);
      } else {
        step_span.Attr("source", "base");
        core::Rematerialize(catalog_, summaries_[step.view]);
      }
    }
    return sw.ElapsedSeconds();
  }();
  if (options_.metrics != nullptr) {
    options_.metrics->Add("rematerialize.runs");
    options_.metrics->Observe("rematerialize.seconds", elapsed);
  }
  return elapsed;
}

lattice::AnswerResult Warehouse::Query(const core::ViewDef& query) const {
  std::vector<const core::SummaryTable*> summaries;
  summaries.reserve(summaries_.size());
  for (const core::SummaryTable& s : summaries_) summaries.push_back(&s);
  return lattice::AnswerQuery(catalog_, lattice_, summaries, query,
                              options_.tracer, options_.metrics);
}

lattice::AnswerResult Warehouse::Query(const std::string& sql) const {
  return Query(core::ParseQuery(catalog_, sql));
}

}  // namespace sdelta::warehouse
