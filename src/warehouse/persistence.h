#ifndef SDELTA_WAREHOUSE_PERSISTENCE_H_
#define SDELTA_WAREHOUSE_PERSISTENCE_H_

#include <string>
#include <vector>

#include "warehouse/warehouse.h"

namespace sdelta::warehouse {

/// Directory-based snapshots.
///
/// Layout:
///   <dir>/manifest.txt        — table schemas, foreign keys, FDs,
///                                summary-table names
///   <dir>/tables/<name>.csv   — base tables
///   <dir>/summaries/<name>.csv — materialized summary rows (physical)
///
/// View *definitions* are code, not data: LoadWarehouse takes the same
/// ViewDef list the warehouse was created with and verifies the saved
/// summary schemas still match (a changed definition fails loudly
/// rather than serving stale rows).

/// Saves the catalog's base tables and metadata under `dir` (created if
/// needed; existing files are overwritten).
void SaveCatalog(const rel::Catalog& catalog, const std::string& dir);

/// Restores a catalog saved by SaveCatalog. Throws std::runtime_error
/// on missing/corrupt files.
rel::Catalog LoadCatalog(const std::string& dir);

/// Saves the full warehouse: catalog plus every summary table's rows.
void SaveWarehouse(const Warehouse& warehouse, const std::string& dir);

/// Restores a warehouse snapshot: loads the catalog, defines the given
/// summary tables WITHOUT rematerializing, and loads their saved rows.
/// The definitions must produce the same summary schemas as at save
/// time (checked).
Warehouse LoadWarehouse(const std::string& dir,
                        const std::vector<core::ViewDef>& views,
                        Warehouse::Options options = {});

}  // namespace sdelta::warehouse

#endif  // SDELTA_WAREHOUSE_PERSISTENCE_H_
