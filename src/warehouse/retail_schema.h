#ifndef SDELTA_WAREHOUSE_RETAIL_SCHEMA_H_
#define SDELTA_WAREHOUSE_RETAIL_SCHEMA_H_

#include <cstdint>
#include <vector>

#include "core/view_def.h"
#include "relational/catalog.h"

namespace sdelta::warehouse {

/// Sizing knobs for the synthetic retail warehouse of paper §2/§6.
struct RetailConfig {
  size_t num_stores = 100;
  size_t num_cities = 30;
  size_t num_regions = 5;
  size_t num_items = 1000;
  size_t num_categories = 20;
  /// Distinct sale dates in the initial load; encoded as int64 day
  /// numbers 1..num_dates. Insertion-generating change sets use day
  /// numbers above this.
  size_t num_dates = 365;
  size_t num_pos_rows = 100000;
  uint64_t seed = 42;
};

/// Builds the paper's retail star schema with synthetic data:
///   pos(storeID, itemID, date, qty, price)     — fact, duplicates legal
///   stores(storeID, city, region)              — storeID -> city -> region
///   items(itemID, name, category, cost)        — itemID -> category
/// Foreign keys and the dimension-hierarchy functional dependencies are
/// declared on the catalog; the pos table has its row index enabled so
/// deferred deletions apply in O(1).
rel::Catalog MakeRetailCatalog(const RetailConfig& config = {});

/// The four summary tables of Figure 1:
///   SID_sales(storeID, itemID, date,  COUNT(*), SUM(qty))
///   sCD_sales(city, date,             COUNT(*), SUM(qty))    [joins stores]
///   SiC_sales(storeID, category,      COUNT(*), MIN(date), SUM(qty))
///                                                            [joins items]
///   sR_sales(region,                  COUNT(*), SUM(qty))    [joins stores]
std::vector<core::ViewDef> RetailSummaryTables();

}  // namespace sdelta::warehouse

#endif  // SDELTA_WAREHOUSE_RETAIL_SCHEMA_H_
