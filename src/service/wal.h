#ifndef SDELTA_SERVICE_WAL_H_
#define SDELTA_SERVICE_WAL_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/delta.h"
#include "relational/catalog.h"

namespace sdelta::service {

/// Write-ahead log for ingest durability (DESIGN.md §9).
///
/// File layout:
///   header:  "SDWAL1\n" (7 bytes) + u8 version (1) + u64 first_seq
///   record:  u64 seq + u32 payload_len + u32 crc + payload
/// where crc = crc32(seq bytes + payload_len bytes + payload), so a
/// corrupted sequence number or length field is detected, not just a
/// corrupted payload.
///
/// The payload is a self-describing binary ChangeSet (fact-table name,
/// fact insert/delete rows, per-dimension deltas; values carry a type
/// tag). All integers are little-endian, written byte-by-byte so the
/// format is host-order independent.
///
/// Durability contract: Append returns only after the record is written
/// to the stream (and fsync'd when `sync` is on), so an acknowledged
/// change set survives a crash. Recovery replays every record with
/// seq > the checkpoint's last applied sequence; a torn tail record
/// (short payload or CRC mismatch) terminates replay cleanly — it was
/// never acknowledged. Before appending to a log whose scan reported
/// tail_truncated, the caller must truncate the file to the report's
/// valid_bytes: bytes written after the garbage tail would be invisible
/// to the next recovery scan.

/// CRC-32 (IEEE 802.3 polynomial, the zlib crc32) over a byte buffer.
uint32_t Crc32(const uint8_t* data, size_t size);

/// Serializes a change set to the WAL payload encoding (exposed for
/// tests; the encoding is deterministic — identical change sets produce
/// identical bytes).
std::vector<uint8_t> EncodeChangeSet(const core::ChangeSet& changes);

/// Decodes a WAL payload. Schemas are resolved against `catalog` (the
/// table names in the payload must exist). Throws std::runtime_error on
/// malformed payloads (wrong arity, unknown table, truncated buffer).
core::ChangeSet DecodeChangeSet(const rel::Catalog& catalog,
                                const std::vector<uint8_t>& payload);

/// One replayed WAL record.
struct WalRecord {
  uint64_t seq = 0;
  core::ChangeSet changes;
};

/// Result of scanning a WAL file.
struct WalReplayReport {
  uint64_t first_seq = 1;     ///< header first_seq (next expected record)
  uint64_t records = 0;       ///< records decoded successfully
  uint64_t last_seq = 0;      ///< seq of the last good record (0 if none)
  uint64_t valid_bytes = 0;   ///< file offset just past the last intact
                              ///< record (header size if none; 0 when the
                              ///< file is missing, empty, or its header
                              ///< itself is torn)
  bool tail_truncated = false;  ///< a torn/corrupt record ended the scan
};

/// Appender. Opens (creating if absent) the log at `path`; an existing
/// log is appended to. `first_seq` is written into the header when the
/// file is created fresh.
class WalWriter {
 public:
  /// `sync` = fsync after every append (durability); off for benches.
  WalWriter(std::string path, uint64_t first_seq, bool sync);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record; returns the bytes written (record framing +
  /// payload). Throws std::runtime_error on IO failure.
  size_t Append(uint64_t seq, const core::ChangeSet& changes);

  /// Truncates the log: the file is replaced by an empty log whose
  /// header says the next record is `first_seq` (checkpoint commit).
  /// The fresh header is written to a side file and rename(2)-d into
  /// place, so a crash mid-reset leaves either the old complete log or
  /// the new empty one — never a header-less file.
  void Reset(uint64_t first_seq);

  const std::string& path() const { return path_; }

  /// The /healthz "WAL writable" check: the log fd is open and no
  /// append has failed since. Append failures throw to the producer
  /// AND latch this false — a scrape can see the wedged log even if
  /// every producer swallowed its exception.
  bool healthy() const { return fd_ >= 0 && !append_failed_; }

 private:
  void OpenOrCreate(uint64_t first_seq);

  std::string path_;
  bool sync_ = true;
  int fd_ = -1;
  std::atomic<bool> append_failed_{false};
};

/// Scans the log at `path`, invoking `fn` for every intact record with
/// seq > `after_seq` in file order. Returns the scan report. A missing
/// or zero-length file is an empty log (0 records); a file shorter than
/// the header is a torn creation (empty, tail_truncated = true). A torn
/// or CRC-corrupt record stops the scan (tail_truncated = true);
/// everything before it is replayed, and the caller must truncate the
/// file to valid_bytes before appending to it.
WalReplayReport ReplayWal(const std::string& path, const rel::Catalog& catalog,
                          uint64_t after_seq,
                          const std::function<void(WalRecord)>& fn);

}  // namespace sdelta::service

#endif  // SDELTA_SERVICE_WAL_H_
