#include "service/versioned.h"

#include <algorithm>
#include <stdexcept>

#include "core/maintenance.h"
#include "core/sql_parser.h"
#include "lattice/derives.h"

namespace sdelta::service {

std::vector<std::string> ReadSnapshot::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(epoch_->views.size());
  for (const auto& v : epoch_->views) names.push_back(v->name());
  return names;
}

const core::SummaryTable& ReadSnapshot::view(const std::string& name) const {
  for (const auto& v : epoch_->views) {
    if (v->name() == name) return *v;
  }
  throw std::invalid_argument("snapshot: unknown summary table '" + name +
                              "'");
}

lattice::AnswerResult ReadSnapshot::Query(const core::ViewDef& query) const {
  const Epoch& epoch = *epoch_;
  // Request correlation: every snapshot query takes the next request id
  // so its span, metrics, and any SlowQuery event share one handle.
  ServiceObs* obs = epoch.obs;
  const uint64_t request_id =
      obs != nullptr
          ? obs->next_request_id.fetch_add(1, std::memory_order_relaxed) + 1
          : 0;
  obs::TraceSpan span(obs != nullptr ? obs->tracer : nullptr,
                      "service.query");
  span.Attr("request_id", request_id);
  span.Attr("epoch", epoch.number);
  span.Attr("query", query.name);
  core::Stopwatch sw;
  const core::AugmentedView augmented =
      core::AugmentForSelfMaintenance(*epoch.catalog, query);
  // Reject base fallback up front: the epoch's fact tables are
  // schema-only, so AnswerQuery's base path would answer from zero rows.
  bool derivable = false;
  for (const core::AugmentedView& v : epoch.lattice->views) {
    if (lattice::ComputeDerivation(*epoch.catalog, augmented, v).has_value()) {
      derivable = true;
      break;
    }
  }
  if (!derivable) {
    throw std::runtime_error(
        "snapshot query '" + query.name +
        "' derives from no pinned summary table; base-table queries must go "
        "to the live warehouse");
  }
  std::vector<const core::SummaryTable*> summaries;
  summaries.reserve(epoch.views.size());
  for (const auto& v : epoch.views) summaries.push_back(v.get());
  lattice::AnswerResult result =
      lattice::AnswerQuery(*epoch.catalog, *epoch.lattice, summaries, query,
                           /*tracer=*/nullptr, epoch.metrics);
  const double elapsed = sw.ElapsedSeconds();
  if (obs != nullptr) {
    if (obs->metrics != nullptr) obs->metrics->Add("service.snapshot_queries");
    span.Attr("source_view", result.source_view);
    if (obs->events != nullptr &&
        elapsed > obs->slow_query_threshold_seconds) {
      obs->events->Record(obs::EventType::kSlowQuery, /*batch_id=*/0,
                          request_id, /*seq=*/0, elapsed, query.name);
      if (obs->metrics != nullptr) obs->metrics->Add("service.slow_queries");
    }
  }
  return result;
}

lattice::AnswerResult ReadSnapshot::Query(const std::string& sql) const {
  return Query(core::ParseQuery(*epoch_->catalog, sql));
}

ReadSnapshot VersionedTables::Pin() const {
  std::scoped_lock lock(mu_);
  return ReadSnapshot(current_);
}

std::shared_ptr<const Epoch> VersionedTables::Current() const {
  std::scoped_lock lock(mu_);
  return current_;
}

double VersionedTables::Install(std::shared_ptr<const Epoch> next) {
  // The reader-visible batch window: everything before this point built
  // `next` off to the side; everything readers can observe flips in one
  // pointer assignment under the pin mutex.
  core::Stopwatch sw;
  {
    std::scoped_lock lock(mu_);
    current_ = std::move(next);
  }
  return sw.ElapsedSeconds();
}

std::shared_ptr<const rel::Catalog> MakeReaderCatalog(
    const rel::Catalog& writer, const std::vector<std::string>& fact_tables) {
  auto out = std::make_shared<rel::Catalog>();
  for (const std::string& name : writer.TableNames()) {
    const rel::Table& table = writer.GetTable(name);
    const bool is_fact = std::find(fact_tables.begin(), fact_tables.end(),
                                   name) != fact_tables.end();
    if (is_fact) {
      out->AddTable(rel::Table(table.schema(), name));
    } else {
      out->AddTable(table);  // rows copied: epoch-consistent join input
    }
  }
  for (const rel::ForeignKey& fk : writer.foreign_keys()) {
    out->DeclareForeignKey(fk.fact_table, fk.fact_column, fk.dim_table,
                           fk.dim_column);
  }
  for (const rel::FunctionalDependency& fd :
       writer.functional_dependencies()) {
    out->DeclareFunctionalDependency(fd.table, fd.determinant, fd.dependent);
  }
  return out;
}

}  // namespace sdelta::service
