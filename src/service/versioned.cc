#include "service/versioned.h"

#include <algorithm>
#include <stdexcept>

#include "core/maintenance.h"
#include "core/sql_parser.h"
#include "lattice/derives.h"

namespace sdelta::service {

std::vector<std::string> ReadSnapshot::ViewNames() const {
  std::vector<std::string> names;
  names.reserve(epoch_->views.size());
  for (const auto& v : epoch_->views) names.push_back(v->name());
  return names;
}

const core::SummaryTable& ReadSnapshot::view(const std::string& name) const {
  for (const auto& v : epoch_->views) {
    if (v->name() == name) return *v;
  }
  throw std::invalid_argument("snapshot: unknown summary table '" + name +
                              "'");
}

lattice::AnswerResult ReadSnapshot::Query(const core::ViewDef& query) const {
  const Epoch& epoch = *epoch_;
  const core::AugmentedView augmented =
      core::AugmentForSelfMaintenance(*epoch.catalog, query);
  // Reject base fallback up front: the epoch's fact tables are
  // schema-only, so AnswerQuery's base path would answer from zero rows.
  bool derivable = false;
  for (const core::AugmentedView& v : epoch.lattice->views) {
    if (lattice::ComputeDerivation(*epoch.catalog, augmented, v).has_value()) {
      derivable = true;
      break;
    }
  }
  if (!derivable) {
    throw std::runtime_error(
        "snapshot query '" + query.name +
        "' derives from no pinned summary table; base-table queries must go "
        "to the live warehouse");
  }
  std::vector<const core::SummaryTable*> summaries;
  summaries.reserve(epoch.views.size());
  for (const auto& v : epoch.views) summaries.push_back(v.get());
  return lattice::AnswerQuery(*epoch.catalog, *epoch.lattice, summaries, query,
                              /*tracer=*/nullptr, epoch.metrics);
}

lattice::AnswerResult ReadSnapshot::Query(const std::string& sql) const {
  return Query(core::ParseQuery(*epoch_->catalog, sql));
}

ReadSnapshot VersionedTables::Pin() const {
  std::scoped_lock lock(mu_);
  return ReadSnapshot(current_);
}

std::shared_ptr<const Epoch> VersionedTables::Current() const {
  std::scoped_lock lock(mu_);
  return current_;
}

double VersionedTables::Install(std::shared_ptr<const Epoch> next) {
  // The reader-visible batch window: everything before this point built
  // `next` off to the side; everything readers can observe flips in one
  // pointer assignment under the pin mutex.
  core::Stopwatch sw;
  {
    std::scoped_lock lock(mu_);
    current_ = std::move(next);
  }
  return sw.ElapsedSeconds();
}

std::shared_ptr<const rel::Catalog> MakeReaderCatalog(
    const rel::Catalog& writer, const std::vector<std::string>& fact_tables) {
  auto out = std::make_shared<rel::Catalog>();
  for (const std::string& name : writer.TableNames()) {
    const rel::Table& table = writer.GetTable(name);
    const bool is_fact = std::find(fact_tables.begin(), fact_tables.end(),
                                   name) != fact_tables.end();
    if (is_fact) {
      out->AddTable(rel::Table(table.schema(), name));
    } else {
      out->AddTable(table);  // rows copied: epoch-consistent join input
    }
  }
  for (const rel::ForeignKey& fk : writer.foreign_keys()) {
    out->DeclareForeignKey(fk.fact_table, fk.fact_column, fk.dim_table,
                           fk.dim_column);
  }
  for (const rel::FunctionalDependency& fd :
       writer.functional_dependencies()) {
    out->DeclareFunctionalDependency(fd.table, fd.determinant, fd.dependent);
  }
  return out;
}

}  // namespace sdelta::service
