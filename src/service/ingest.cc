#include "service/ingest.h"

#include <stdexcept>
#include <utility>

namespace sdelta::service {

bool IngestQueue::Push(IngestItem item, bool* saturated) {
  std::unique_lock lock(mu_);
  if (saturated != nullptr) {
    *saturated = !closed_ && rows_ >= policy_.max_queue_rows;
  }
  producer_cv_.wait(lock,
                    [this] { return closed_ || rows_ < policy_.max_queue_rows; });
  if (closed_) return false;
  rows_ += item.rows;
  items_.push_back(std::move(item));
  if (closed_ || flush_pending_ || BatchDue()) consumer_cv_.notify_one();
  return true;
}

bool IngestQueue::BatchDue() const {
  if (items_.empty()) return false;
  if (rows_ >= policy_.max_batch_rows) return true;
  const auto age = std::chrono::steady_clock::now() - items_.front().enqueued_at;
  return std::chrono::duration<double>(age).count() >=
         policy_.max_batch_delay_seconds;
}

IngestBatch IngestQueue::WaitAndTake(bool auto_batching) {
  std::unique_lock lock(mu_);
  const auto ready = [&] {
    return closed_ || flush_pending_ || (auto_batching && BatchDue());
  };
  if (auto_batching) {
    // The delay trigger needs a timed wait: nothing signals the cv when
    // the oldest item merely ages past the latency bound.
    const auto tick =
        std::chrono::duration<double>(policy_.max_batch_delay_seconds / 4 +
                                      1e-4);
    while (!ready()) consumer_cv_.wait_for(lock, tick);
  } else {
    consumer_cv_.wait(lock, ready);
  }
  IngestBatch batch;
  batch.items = std::move(items_);
  items_.clear();
  rows_ = 0;
  batch.flush_requested = flush_pending_;
  flush_pending_ = false;
  batch.closed = closed_;
  producer_cv_.notify_all();
  return batch;
}

void IngestQueue::RequestFlush() {
  std::scoped_lock lock(mu_);
  flush_pending_ = true;
  consumer_cv_.notify_one();
}

void IngestQueue::Close() {
  std::scoped_lock lock(mu_);
  closed_ = true;
  consumer_cv_.notify_one();
  producer_cv_.notify_all();
}

size_t IngestQueue::rows_queued() const {
  std::scoped_lock lock(mu_);
  return rows_;
}

size_t IngestQueue::changesets_queued() const {
  std::scoped_lock lock(mu_);
  return items_.size();
}

double IngestQueue::oldest_age_seconds() const {
  std::scoped_lock lock(mu_);
  if (items_.empty()) return 0.0;
  const auto age = std::chrono::steady_clock::now() - items_.front().enqueued_at;
  return std::chrono::duration<double>(age).count();
}

namespace {

void AppendRows(rel::Table& dst, const rel::Table& src) {
  dst.Reserve(dst.NumRows() + src.NumRows());
  dst.AppendColumnsFrom(src);
}

}  // namespace

core::ChangeSet CoalesceChanges(std::vector<IngestItem> items) {
  if (items.empty()) throw std::invalid_argument("CoalesceChanges: no items");
  core::ChangeSet merged = std::move(items.front().changes);
  for (size_t i = 1; i < items.size(); ++i) {
    core::ChangeSet& next = items[i].changes;
    if (next.fact_table != merged.fact_table) {
      throw std::invalid_argument(
          "CoalesceChanges: mixed fact tables in one run");
    }
    AppendRows(merged.fact.insertions, next.fact.insertions);
    AppendRows(merged.fact.deletions, next.fact.deletions);
    for (auto& [name, delta] : next.dimensions) {
      auto it = merged.dimensions.find(name);
      if (it == merged.dimensions.end()) {
        merged.dimensions.emplace(name, std::move(delta));
      } else {
        AppendRows(it->second.insertions, delta.insertions);
        AppendRows(it->second.deletions, delta.deletions);
      }
    }
  }
  return merged;
}

}  // namespace sdelta::service
