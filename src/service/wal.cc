#include "service/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace sdelta::service {

namespace {

constexpr char kMagic[7] = {'S', 'D', 'W', 'A', 'L', '1', '\n'};
constexpr uint8_t kVersion = 1;
constexpr size_t kHeaderSize = sizeof(kMagic) + 1 + 8;
// Record framing: u64 seq + u32 len + u32 crc.
constexpr size_t kFrameSize = 8 + 4 + 4;

const std::array<uint32_t, 256>& CrcTable() {
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

// Incremental CRC-32: feed buffers into a running state seeded with
// 0xFFFFFFFF; the final value is state ^ 0xFFFFFFFF.
uint32_t Crc32Feed(uint32_t state, const uint8_t* data, size_t size) {
  const auto& table = CrcTable();
  for (size_t i = 0; i < size; ++i) {
    state = table[(state ^ data[i]) & 0xFF] ^ (state >> 8);
  }
  return state;
}

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutString(std::vector<uint8_t>& out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

void PutValue(std::vector<uint8_t>& out, const rel::Value& v) {
  switch (v.type()) {
    case rel::ValueType::kNull:
      out.push_back(0);
      return;
    case rel::ValueType::kInt64:
      out.push_back(1);
      PutU64(out, static_cast<uint64_t>(v.as_int64()));
      return;
    case rel::ValueType::kDouble: {
      out.push_back(2);
      uint64_t bits = 0;
      const double d = v.as_double();
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      PutU64(out, bits);
      return;
    }
    case rel::ValueType::kString:
      out.push_back(3);
      PutString(out, v.as_string());
      return;
  }
  throw std::logic_error("WAL: unencodable value type");
}

void PutTable(std::vector<uint8_t>& out, const rel::Table& table) {
  PutU32(out, static_cast<uint32_t>(table.schema().NumColumns()));
  PutU64(out, table.NumRows());
  const size_t cols = table.schema().NumColumns();
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t c = 0; c < cols; ++c) PutValue(out, table.ValueAt(r, c));
  }
}

/// Bounds-checked big-to-little reader over a payload buffer.
class Reader {
 public:
  Reader(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  uint32_t U32() {
    Need(4);
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t{data_[pos_ + static_cast<size_t>(i)]} << (8 * i);
    pos_ += 4;
    return v;
  }
  uint64_t U64() {
    Need(8);
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t{data_[pos_ + static_cast<size_t>(i)]} << (8 * i);
    pos_ += 8;
    return v;
  }
  uint8_t U8() {
    Need(1);
    return data_[pos_++];
  }
  std::string String() {
    const uint32_t n = U32();
    Need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  rel::Value Value() {
    switch (U8()) {
      case 0:
        return rel::Value::Null();
      case 1:
        return rel::Value::Int64(static_cast<int64_t>(U64()));
      case 2: {
        const uint64_t bits = U64();
        double d = 0;
        std::memcpy(&d, &bits, sizeof(d));
        return rel::Value::Double(d);
      }
      case 3:
        return rel::Value::String(String());
      default:
        throw std::runtime_error("WAL: unknown value tag");
    }
  }
  bool AtEnd() const { return pos_ == size_; }

 private:
  void Need(size_t n) {
    if (size_ - pos_ < n) throw std::runtime_error("WAL: truncated payload");
  }
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

void ReadTableInto(Reader& in, rel::Table& out) {
  const uint32_t cols = in.U32();
  if (cols != out.schema().NumColumns()) {
    throw std::runtime_error("WAL: table arity mismatch for " + out.name());
  }
  const uint64_t rows = in.U64();
  out.Reserve(out.NumRows() + rows);
  for (uint64_t r = 0; r < rows; ++r) {
    rel::Row row;
    row.reserve(cols);
    for (uint32_t c = 0; c < cols; ++c) row.push_back(in.Value());
    out.Insert(std::move(row));
  }
}

core::DeltaSet ReadDeltaSet(Reader& in, const rel::Schema& schema) {
  core::DeltaSet delta(schema);
  ReadTableInto(in, delta.insertions);
  ReadTableInto(in, delta.deletions);
  return delta;
}

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  return Crc32Feed(0xFFFFFFFFu, data, size) ^ 0xFFFFFFFFu;
}

std::vector<uint8_t> EncodeChangeSet(const core::ChangeSet& changes) {
  std::vector<uint8_t> out;
  PutString(out, changes.fact_table);
  PutTable(out, changes.fact.insertions);
  PutTable(out, changes.fact.deletions);
  PutU32(out, static_cast<uint32_t>(changes.dimensions.size()));
  // std::map iteration is name-ordered, so the encoding is deterministic.
  for (const auto& [name, delta] : changes.dimensions) {
    PutString(out, name);
    PutTable(out, delta.insertions);
    PutTable(out, delta.deletions);
  }
  return out;
}

core::ChangeSet DecodeChangeSet(const rel::Catalog& catalog,
                                const std::vector<uint8_t>& payload) {
  Reader in(payload.data(), payload.size());
  core::ChangeSet changes;
  changes.fact_table = in.String();
  if (!catalog.HasTable(changes.fact_table)) {
    throw std::runtime_error("WAL: unknown fact table '" + changes.fact_table +
                             "'");
  }
  changes.fact =
      ReadDeltaSet(in, catalog.GetTable(changes.fact_table).schema());
  const uint32_t dims = in.U32();
  for (uint32_t i = 0; i < dims; ++i) {
    const std::string name = in.String();
    if (!catalog.HasTable(name)) {
      throw std::runtime_error("WAL: unknown dimension table '" + name + "'");
    }
    changes.dimensions.emplace(
        name, ReadDeltaSet(in, catalog.GetTable(name).schema()));
  }
  if (!in.AtEnd()) throw std::runtime_error("WAL: trailing payload bytes");
  return changes;
}

WalWriter::WalWriter(std::string path, uint64_t first_seq, bool sync)
    : path_(std::move(path)), sync_(sync) {
  OpenOrCreate(first_seq);
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void WalWriter::OpenOrCreate(uint64_t first_seq) {
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) throw std::runtime_error("WAL: cannot open " + path_);
  const off_t size = ::lseek(fd_, 0, SEEK_END);
  if (size > 0) return;  // existing log: append after its tail
  std::vector<uint8_t> header(kMagic, kMagic + sizeof(kMagic));
  header.push_back(kVersion);
  PutU64(header, first_seq);
  if (::write(fd_, header.data(), header.size()) !=
      static_cast<ssize_t>(header.size())) {
    throw std::runtime_error("WAL: cannot write header to " + path_);
  }
  if (sync_) ::fsync(fd_);
}

size_t WalWriter::Append(uint64_t seq, const core::ChangeSet& changes) {
  const std::vector<uint8_t> payload = EncodeChangeSet(changes);
  std::vector<uint8_t> frame;
  frame.reserve(kFrameSize + payload.size());
  PutU64(frame, seq);
  PutU32(frame, static_cast<uint32_t>(payload.size()));
  // The CRC covers seq + len + payload, so a flipped bit anywhere in the
  // record — including a bogus length that would otherwise drive a huge
  // allocation — reads as a torn tail.
  uint32_t crc_state = Crc32Feed(0xFFFFFFFFu, frame.data(), frame.size());
  crc_state = Crc32Feed(crc_state, payload.data(), payload.size());
  PutU32(frame, crc_state ^ 0xFFFFFFFFu);
  frame.insert(frame.end(), payload.begin(), payload.end());
  // One write call per record keeps torn records to the file tail.
  if (::write(fd_, frame.data(), frame.size()) !=
      static_cast<ssize_t>(frame.size())) {
    append_failed_ = true;  // latch for healthy(): the log is wedged
    throw std::runtime_error("WAL: append failed on " + path_);
  }
  if (sync_) ::fsync(fd_);
  return frame.size();
}

void WalWriter::Reset(uint64_t first_seq) {
  if (fd_ >= 0) ::close(fd_);
  fd_ = -1;
  // Build the fresh empty log beside the old one and rename it into
  // place: every crash point leaves either the old complete log or the
  // new headered one, never a header-less file.
  const std::string tmp = path_ + ".reset";
  const int tmp_fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (tmp_fd < 0) throw std::runtime_error("WAL: cannot create " + tmp);
  std::vector<uint8_t> header(kMagic, kMagic + sizeof(kMagic));
  header.push_back(kVersion);
  PutU64(header, first_seq);
  const ssize_t written = ::write(tmp_fd, header.data(), header.size());
  if (written != static_cast<ssize_t>(header.size())) {
    ::close(tmp_fd);
    throw std::runtime_error("WAL: cannot write header to " + tmp);
  }
  if (sync_) ::fsync(tmp_fd);
  ::close(tmp_fd);
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    throw std::runtime_error("WAL: cannot rename " + tmp + " over " + path_);
  }
  OpenOrCreate(first_seq);
  // A successful reset just proved the log is writable again.
  append_failed_ = false;
}

WalReplayReport ReplayWal(const std::string& path, const rel::Catalog& catalog,
                          uint64_t after_seq,
                          const std::function<void(WalRecord)>& fn) {
  WalReplayReport report;
  std::ifstream in(path, std::ios::binary);
  if (!in) return report;  // no log yet: empty
  in.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  in.seekg(0, std::ios::beg);
  if (file_size == 0) return report;  // crashed before the header: empty
  if (file_size < kHeaderSize) {
    // Torn header write. Records only follow a complete header, so
    // nothing was ever acknowledged; flag the tail so the caller
    // truncates to valid_bytes (0) before appending.
    report.tail_truncated = true;
    return report;
  }
  std::array<char, kHeaderSize> header{};
  in.read(header.data(), header.size());
  if (in.gcount() != static_cast<std::streamsize>(header.size()) ||
      std::memcmp(header.data(), kMagic, sizeof(kMagic)) != 0 ||
      header[sizeof(kMagic)] != static_cast<char>(kVersion)) {
    throw std::runtime_error("WAL: bad header in " + path);
  }
  uint64_t first_seq = 0;
  for (int i = 0; i < 8; ++i) {
    first_seq |= uint64_t{static_cast<uint8_t>(
                     header[sizeof(kMagic) + 1 + static_cast<size_t>(i)])}
                 << (8 * i);
  }
  report.first_seq = first_seq;
  report.valid_bytes = kHeaderSize;

  std::array<char, kFrameSize> frame{};
  uint64_t offset = kHeaderSize;
  while (true) {
    in.read(frame.data(), frame.size());
    if (in.gcount() == 0) break;  // clean end of log
    if (in.gcount() != static_cast<std::streamsize>(frame.size())) {
      report.tail_truncated = true;  // torn frame
      break;
    }
    offset += kFrameSize;
    auto u = [&frame](size_t off, size_t n) {
      uint64_t v = 0;
      for (size_t i = 0; i < n; ++i) {
        v |= uint64_t{static_cast<uint8_t>(frame[off + i])} << (8 * i);
      }
      return v;
    };
    const uint64_t seq = u(0, 8);
    const uint32_t len = static_cast<uint32_t>(u(8, 4));
    const uint32_t crc = static_cast<uint32_t>(u(12, 4));
    if (len > file_size - offset) {
      // A corrupt length field would fail the CRC anyway; checking it
      // against the bytes actually present avoids attempting an up-to-
      // 4 GiB payload allocation first.
      report.tail_truncated = true;
      break;
    }
    std::vector<uint8_t> payload(len);
    in.read(reinterpret_cast<char*>(payload.data()), len);
    if (in.gcount() != static_cast<std::streamsize>(len)) {
      report.tail_truncated = true;  // torn payload
      break;
    }
    offset += len;
    uint32_t crc_state = Crc32Feed(
        0xFFFFFFFFu, reinterpret_cast<const uint8_t*>(frame.data()), 12);
    crc_state = Crc32Feed(crc_state, payload.data(), payload.size());
    if ((crc_state ^ 0xFFFFFFFFu) != crc) {
      report.tail_truncated = true;  // corrupt record: never acknowledged
      break;
    }
    WalRecord record;
    record.seq = seq;
    // Decode even below the replay cutoff: a decode failure is corruption
    // and must stop the scan, checkpointed or not.
    record.changes = DecodeChangeSet(catalog, payload);
    ++report.records;
    report.last_seq = seq;
    report.valid_bytes = offset;
    if (seq > after_seq) fn(std::move(record));
  }
  return report;
}

}  // namespace sdelta::service
