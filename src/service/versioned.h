#ifndef SDELTA_SERVICE_VERSIONED_H_
#define SDELTA_SERVICE_VERSIONED_H_

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "core/summary_table.h"
#include "lattice/answer.h"
#include "lattice/vlattice.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "relational/catalog.h"

namespace sdelta::service {

/// The service's shared observability context (DESIGN.md §11), handed
/// to every epoch so reader-side paths (snapshot queries) report into
/// the same sinks as the maintenance thread. Owned by WarehouseService;
/// snapshots must not outlive it. All pointers are nullable.
struct ServiceObs {
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  obs::EventLog* events = nullptr;
  obs::SloTracker* slo = nullptr;
  /// Correlation-ID source for snapshot queries: each query takes the
  /// next id, stamps its trace span, and tags any SlowQuery event.
  std::atomic<uint64_t> next_request_id{0};
  /// A snapshot query slower than this records a SlowQuery event.
  double slow_query_threshold_seconds = 0.1;
};

/// One immutable reader-visible version of the warehouse's summary
/// state (DESIGN.md §9). Everything a query needs is pinned inside:
/// per-view summary tables, the lattice they form, and a reader-side
/// catalog (schemas, foreign keys, FDs, and dimension rows — fact
/// tables are present schema-only, so snapshot queries that would fall
/// back to base data are rejected instead of silently answered empty).
///
/// Views are held per-view behind shared_ptr so an epoch whose batch
/// left a view untouched (delta_rows == 0) shares the previous epoch's
/// table instead of copying it.
struct Epoch {
  uint64_t number = 0;
  std::shared_ptr<const lattice::VLattice> lattice;
  /// Parallel to lattice->views.
  std::vector<std::shared_ptr<const core::SummaryTable>> views;
  std::shared_ptr<const rel::Catalog> catalog;
  /// Shared service registry for answer.* accounting; may be null.
  /// Owned by the service — snapshots must not outlive it.
  obs::MetricsRegistry* metrics = nullptr;
  /// Shared observability context (request ids, events, tracer); may be
  /// null (e.g. epochs built outside a service). Same lifetime rule as
  /// `metrics`.
  ServiceObs* obs = nullptr;
};

/// A pinned epoch: the cheap read handle. Copyable; holding one keeps
/// every table of its epoch alive while refresh installs newer epochs
/// beside it. All methods are const and safe to call from any number of
/// threads concurrently with ongoing maintenance.
class ReadSnapshot {
 public:
  explicit ReadSnapshot(std::shared_ptr<const Epoch> epoch)
      : epoch_(std::move(epoch)) {}

  uint64_t epoch() const { return epoch_->number; }
  size_t NumViews() const { return epoch_->views.size(); }
  std::vector<std::string> ViewNames() const;

  /// The pinned physical summary table (throws std::invalid_argument on
  /// an unknown name).
  const core::SummaryTable& view(const std::string& name) const;

  /// Answers an aggregate query from the cheapest pinned view that
  /// derives it — the paper's reader path, running entirely against
  /// this epoch. A query no pinned view can answer throws
  /// std::runtime_error (base-table fallback needs the live warehouse).
  lattice::AnswerResult Query(const core::ViewDef& query) const;
  lattice::AnswerResult Query(const std::string& sql) const;

 private:
  std::shared_ptr<const Epoch> epoch_;
};

/// The swap point between the maintenance thread and readers. Readers
/// pin the current epoch (a shared_ptr copy under a mutex); refresh
/// builds the next epoch off to the side and installs it with one
/// pointer swap — the whole reader-visible batch window.
class VersionedTables {
 public:
  ReadSnapshot Pin() const;
  std::shared_ptr<const Epoch> Current() const;

  /// Installs `next` as the current epoch and returns the seconds the
  /// swap itself took (the measured service.refresh_window).
  double Install(std::shared_ptr<const Epoch> next);

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const Epoch> current_;
};

/// Builds the reader-side catalog for an epoch: copies schemas, foreign
/// keys, functional dependencies, and the rows of every table NOT named
/// in `fact_tables`; fact tables are added schema-only. Dimension
/// tables are small (the paper's stores/items), so the copy is cheap
/// and gives readers join inputs consistent with the epoch.
std::shared_ptr<const rel::Catalog> MakeReaderCatalog(
    const rel::Catalog& writer, const std::vector<std::string>& fact_tables);

}  // namespace sdelta::service

#endif  // SDELTA_SERVICE_VERSIONED_H_
