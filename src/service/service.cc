#include "service/service.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <stdexcept>

#include "warehouse/persistence.h"

namespace sdelta::service {

namespace fs = std::filesystem;

namespace {

constexpr const char* kWalFile = "wal.log";
constexpr const char* kCheckpointDir = "checkpoint";
constexpr const char* kCheckpointTmp = "checkpoint.tmp";
constexpr const char* kCheckpointPrev = "checkpoint.prev";
constexpr const char* kSeqFile = "SEQ";

uint64_t ReadSeqFile(const fs::path& path) {
  std::ifstream in(path);
  uint64_t seq = 0;
  if (!(in >> seq)) {
    throw std::runtime_error("checkpoint: missing or unreadable " +
                             path.string());
  }
  return seq;
}

void WriteSeqFile(const fs::path& path, uint64_t seq) {
  std::ofstream out(path, std::ios::trunc);
  out << seq << "\n";
  if (!out) {
    throw std::runtime_error("checkpoint: cannot write " + path.string());
  }
}

size_t ChangeSetRows(const core::ChangeSet& changes) {
  size_t rows = changes.fact.size();
  for (const auto& [name, delta] : changes.dimensions) rows += delta.size();
  return rows;
}

}  // namespace

std::unique_ptr<WarehouseService> WarehouseService::Open(
    std::string data_dir, rel::Catalog bootstrap,
    std::vector<core::ViewDef> views, Options options) {
  fs::create_directories(data_dir);
  const fs::path dir(data_dir);
  const fs::path ckpt = dir / kCheckpointDir;
  const fs::path tmp = dir / kCheckpointTmp;
  const fs::path prev = dir / kCheckpointPrev;

  // Crash cleanup (see Checkpoint for the rename protocol): a leftover
  // tmp is an unfinished build — discard it; a leftover prev with no
  // current checkpoint means we crashed mid-swap — the old checkpoint is
  // still complete, restore it.
  std::error_code ec;
  fs::remove_all(tmp, ec);
  if (!fs::exists(ckpt) && fs::exists(prev)) {
    fs::rename(prev, ckpt);
  } else {
    fs::remove_all(prev, ec);
  }

  auto owned = options.metrics
                   ? std::unique_ptr<obs::MetricsRegistry>()
                   : std::make_unique<obs::MetricsRegistry>();
  obs::MetricsRegistry* metrics =
      options.metrics ? options.metrics : owned.get();
  options.metrics = metrics;
  options.warehouse.metrics = metrics;

  uint64_t checkpoint_seq = 0;
  const bool have_checkpoint = fs::exists(ckpt / "manifest.txt");
  if (have_checkpoint) checkpoint_seq = ReadSeqFile(ckpt / kSeqFile);
  warehouse::Warehouse wh =
      have_checkpoint
          ? warehouse::LoadWarehouse(ckpt.string(), views, options.warehouse)
          : warehouse::Warehouse(std::move(bootstrap), options.warehouse);
  if (!have_checkpoint) wh.DefineSummaryTables(views);

  // Replay the WAL tail through the normal batch path, one batch per
  // record — the same boundaries an uninterrupted per-append-flush run
  // would have used, so the recovered state is byte-identical to it.
  uint64_t recovered = 0;
  const WalReplayReport replay =
      ReplayWal((dir / kWalFile).string(), wh.catalog(), checkpoint_seq,
                [&](WalRecord record) {
                  wh.RunBatch(record.changes);
                  ++recovered;
                });
  if (replay.tail_truncated) {
    // Cut the torn tail before the WalWriter below opens with O_APPEND:
    // records acknowledged after the garbage bytes would be invisible to
    // the next recovery scan, silently dropping durable data.
    fs::resize_file(dir / kWalFile, replay.valid_bytes);
    metrics->Add("service.wal_tail_truncations");
  }
  const uint64_t start_seq = std::max(checkpoint_seq, replay.last_seq);

  return std::unique_ptr<WarehouseService>(new WarehouseService(
      std::move(data_dir), std::move(wh), std::move(options), std::move(owned),
      checkpoint_seq, recovered, start_seq));
}

WarehouseService::WarehouseService(
    std::string data_dir, warehouse::Warehouse wh, Options options,
    std::unique_ptr<obs::MetricsRegistry> owned_metrics,
    uint64_t checkpoint_seq, uint64_t recovered_records, uint64_t start_seq)
    : data_dir_(std::move(data_dir)),
      options_(std::move(options)),
      owned_metrics_(std::move(owned_metrics)),
      metrics_(options_.metrics),
      wal_(std::make_unique<WalWriter>((fs::path(data_dir_) / kWalFile).string(),
                                       start_seq + 1, options_.wal_sync)),
      queue_(options_.queue),
      warehouse_(std::move(wh)) {
  last_seq_.store(start_seq);
  applied_seq_ = start_seq;
  checkpoint_seq_ = checkpoint_seq;
  recovered_records_ = recovered_records;
  if (recovered_records > 0) {
    metrics_->Add("service.recovered_records", recovered_records);
  }
  versioned_.Install(BuildEpoch(nullptr, true, true));
  maintenance_ = std::thread(&WarehouseService::MaintenanceLoop, this);
}

WarehouseService::~WarehouseService() { Stop(); }

std::vector<std::string> WarehouseService::FactTableNames() const {
  std::set<std::string> facts;
  for (const rel::ForeignKey& fk : warehouse_.catalog().foreign_keys()) {
    facts.insert(fk.fact_table);
  }
  for (const core::AugmentedView& v : warehouse_.vlattice().views) {
    facts.insert(v.physical.fact_table);
  }
  return {facts.begin(), facts.end()};
}

std::shared_ptr<const Epoch> WarehouseService::BuildEpoch(
    const std::vector<size_t>* view_delta_rows, bool dims_changed,
    bool full_rebuild) {
  const std::shared_ptr<const Epoch> prev = versioned_.Current();
  const lattice::VLattice& wl = warehouse_.vlattice();
  auto next = std::make_shared<Epoch>();
  next->number = prev ? prev->number + 1 : 1;
  next->metrics = metrics_;
  if (!full_rebuild && prev) {
    next->lattice = prev->lattice;
  } else {
    next->lattice = std::make_shared<lattice::VLattice>(wl);
  }
  if (!full_rebuild && prev && !dims_changed) {
    next->catalog = prev->catalog;
  } else {
    next->catalog = MakeReaderCatalog(warehouse_.catalog(), FactTableNames());
  }
  const bool can_share = !full_rebuild && prev && view_delta_rows &&
                         view_delta_rows->size() == wl.views.size() &&
                         prev->views.size() == wl.views.size();
  next->views.reserve(wl.views.size());
  for (size_t i = 0; i < wl.views.size(); ++i) {
    if (can_share && (*view_delta_rows)[i] == 0) {
      next->views.push_back(prev->views[i]);
      metrics_->Add("service.epoch_views_shared");
      continue;
    }
    auto copy =
        std::make_shared<core::SummaryTable>(wl.views[i], *next->catalog);
    copy->LoadFrom(warehouse_.summary(wl.views[i].physical.name).ToTable());
    next->views.push_back(std::move(copy));
    metrics_->Add("service.epoch_views_rebuilt");
  }
  metrics_->Set("service.epoch", static_cast<double>(next->number));
  return next;
}

uint64_t WarehouseService::Append(core::ChangeSet changes) {
  const size_t rows = ChangeSetRows(changes);
  std::scoped_lock append_lock(wal_mu_);
  {
    std::scoped_lock lk(state_mu_);
    if (stopped_) throw std::runtime_error("service: Append after Stop");
  }
  const uint64_t seq = last_seq_.load(std::memory_order_relaxed) + 1;
  const size_t wal_bytes = wal_->Append(seq, changes);

  IngestItem item;
  item.seq = seq;
  item.changes = std::move(changes);
  item.rows = rows;
  item.enqueued_at = std::chrono::steady_clock::now();
  if (!queue_.Push(std::move(item))) {
    // The record is durable (it reached the WAL) but the service shut
    // down before accepting it; the next Open will replay it.
    throw std::runtime_error(
        "service: stopped while appending (change is in the WAL and will be "
        "recovered on the next Open)");
  }
  last_seq_.store(seq, std::memory_order_relaxed);

  metrics_->Add("service.appends");
  metrics_->Add("service.append_rows", rows);
  metrics_->Add("service.wal_records");
  metrics_->Add("service.wal_bytes", wal_bytes);
  metrics_->Set("service.queue_depth",
                static_cast<double>(queue_.rows_queued()));
  metrics_->Set("service.queue_changesets",
                static_cast<double>(queue_.changesets_queued()));
  return seq;
}

void WarehouseService::AwaitApplied(uint64_t target) {
  std::unique_lock lk(state_mu_);
  state_cv_.wait(lk, [&] { return applied_seq_ >= target; });
}

void WarehouseService::Flush() {
  const uint64_t target = last_seq_.load();
  metrics_->Add("service.flushes");
  queue_.RequestFlush();
  AwaitApplied(target);
}

void WarehouseService::ApplyItems(std::vector<IngestItem> items) {
  const uint64_t max_seq = items.back().seq;
  const size_t n_views = warehouse_.vlattice().views.size();
  std::vector<size_t> delta_rows(n_views, 0);
  bool dims_changed = false;
  size_t runs = 0;
  warehouse::BatchReport report;

  // Items must apply in sequence order; a change of fact table ends the
  // coalescing run (ChangeSet carries exactly one fact table's delta).
  size_t i = 0;
  while (i < items.size()) {
    size_t j = i + 1;
    while (j < items.size() &&
           items[j].changes.fact_table == items[i].changes.fact_table) {
      ++j;
    }
    std::vector<IngestItem> run(std::make_move_iterator(items.begin() + i),
                                std::make_move_iterator(items.begin() + j));
    metrics_->Add("service.coalesced_changesets", run.size());
    core::ChangeSet merged = CoalesceChanges(std::move(run));
    dims_changed = dims_changed || !merged.dimensions.empty();
    report = warehouse_.RunBatch(merged);
    metrics_->Add("service.batches");
    ++runs;
    for (size_t v = 0; v < report.views.size() && v < n_views; ++v) {
      delta_rows[v] += report.views[v].delta_rows;
    }
    i = j;
  }

  std::shared_ptr<const Epoch> next =
      BuildEpoch(&delta_rows, dims_changed, /*full_rebuild=*/false);
  const double window = versioned_.Install(std::move(next));
  metrics_->Observe("service.refresh_window", window);
  metrics_->Set("service.refresh_window_seconds", window);
  metrics_->Set("service.queue_depth",
                static_cast<double>(queue_.rows_queued()));
  metrics_->Set("service.queue_changesets",
                static_cast<double>(queue_.changesets_queued()));
  metrics_->Set("service.staleness_seconds", queue_.oldest_age_seconds());

  std::scoped_lock lk(state_mu_);
  applied_seq_ = max_seq;
  batches_ += runs;
  last_refresh_window_ = window;
  last_report_ = std::move(report);
  state_cv_.notify_all();
}

void WarehouseService::MaintenanceLoop() {
  while (true) {
    IngestBatch batch = queue_.WaitAndTake(options_.auto_batching);
    if (!batch.items.empty()) ApplyItems(std::move(batch.items));
    if (batch.flush_requested) {
      std::scoped_lock lk(state_mu_);
      state_cv_.notify_all();
    }
    if (batch.closed) break;
  }
}

void WarehouseService::Stop() {
  std::scoped_lock stop_lock(stop_mu_);
  {
    std::scoped_lock lk(state_mu_);
    if (stopped_) return;
  }
  queue_.Close();
  if (maintenance_.joinable()) maintenance_.join();
  std::scoped_lock lk(state_mu_);
  stopped_ = true;
  state_cv_.notify_all();
}

void WarehouseService::Checkpoint() {
  // Fence producers for the duration: no new sequences, WAL quiescent.
  std::scoped_lock append_lock(wal_mu_);
  const uint64_t target = last_seq_.load();
  queue_.RequestFlush();
  AwaitApplied(target);
  // The maintenance thread is idle (queue drained, applied == last) and
  // touches the warehouse only after taking new work, so the snapshot
  // below reads quiescent state.

  const fs::path dir(data_dir_);
  const fs::path ckpt = dir / kCheckpointDir;
  const fs::path tmp = dir / kCheckpointTmp;
  const fs::path prev = dir / kCheckpointPrev;
  std::error_code ec;
  fs::remove_all(tmp, ec);
  warehouse::SaveWarehouse(warehouse_, tmp.string());
  WriteSeqFile(tmp / kSeqFile, target);
  // Swap: keep the old checkpoint complete until the new one is in
  // place. Open() resolves every intermediate crash state.
  fs::remove_all(prev, ec);
  if (fs::exists(ckpt)) fs::rename(ckpt, prev);
  fs::rename(tmp, ckpt);
  fs::remove_all(prev, ec);
  // Log truncation commits the checkpoint: replay now starts at
  // target + 1, which is exactly what the snapshot already contains.
  wal_->Reset(target + 1);

  metrics_->Add("service.checkpoints");
  std::scoped_lock lk(state_mu_);
  checkpoint_seq_ = target;
  ++checkpoints_;
}

void WarehouseService::WithWriter(
    const std::function<void(warehouse::Warehouse&)>& fn) {
  std::scoped_lock append_lock(wal_mu_);
  const uint64_t target = last_seq_.load();
  queue_.RequestFlush();
  AwaitApplied(target);
  fn(warehouse_);
  // DDL may have changed the lattice, plans, and summary schemas:
  // readers get a fully fresh epoch.
  versioned_.Install(BuildEpoch(nullptr, true, /*full_rebuild=*/true));
}

WarehouseService::Stats WarehouseService::GetStats() const {
  Stats stats;
  stats.last_seq = last_seq_.load();
  stats.queue_changesets = queue_.changesets_queued();
  stats.queue_rows = queue_.rows_queued();
  stats.staleness_seconds = queue_.oldest_age_seconds();
  std::scoped_lock lk(state_mu_);
  stats.applied_seq = applied_seq_;
  stats.checkpoint_seq = checkpoint_seq_;
  stats.batches = batches_;
  stats.checkpoints = checkpoints_;
  stats.recovered_records = recovered_records_;
  stats.last_refresh_window_seconds = last_refresh_window_;
  stats.epoch = versioned_.Current()->number;
  return stats;
}

warehouse::BatchReport WarehouseService::LastReport() const {
  std::scoped_lock lk(state_mu_);
  return last_report_;
}

}  // namespace sdelta::service
