#include "service/service.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <stdexcept>

#include "core/maintenance.h"
#include "obs/export_json.h"
#include "obs/export_prometheus.h"
#include "warehouse/persistence.h"

namespace sdelta::service {

namespace fs = std::filesystem;

namespace {

constexpr const char* kWalFile = "wal.log";
constexpr const char* kCheckpointDir = "checkpoint";
constexpr const char* kCheckpointTmp = "checkpoint.tmp";
constexpr const char* kCheckpointPrev = "checkpoint.prev";
constexpr const char* kSeqFile = "SEQ";
/// Epoch number current at checkpoint time — the applied-epoch floor a
/// replica bootstrapping from this checkpoint adopts.
constexpr const char* kEpochFile = "EPOCH";

uint64_t ReadSeqFile(const fs::path& path) {
  std::ifstream in(path);
  uint64_t seq = 0;
  if (!(in >> seq)) {
    throw std::runtime_error("checkpoint: missing or unreadable " +
                             path.string());
  }
  return seq;
}

void WriteSeqFile(const fs::path& path, uint64_t seq) {
  std::ofstream out(path, std::ios::trunc);
  out << seq << "\n";
  if (!out) {
    throw std::runtime_error("checkpoint: cannot write " + path.string());
  }
}

size_t ChangeSetRows(const core::ChangeSet& changes) {
  size_t rows = changes.fact.size();
  for (const auto& [name, delta] : changes.dimensions) rows += delta.size();
  return rows;
}

/// Value of `key` in an application/x-www-form-urlencoded query string
/// ("metric=service.appends&from=3"); empty when absent. The scrape
/// surface's names never need percent-decoding.
std::string QueryParam(const std::string& query, std::string_view key) {
  size_t pos = 0;
  while (pos < query.size()) {
    size_t end = query.find('&', pos);
    if (end == std::string::npos) end = query.size();
    const std::string_view pair =
        std::string_view(query).substr(pos, end - pos);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return std::string(pair.substr(eq + 1));
    }
    pos = end + 1;
  }
  return {};
}

uint64_t ParseIdOr(const std::string& text, uint64_t fallback) {
  if (text.empty()) return fallback;
  return std::strtoull(text.c_str(), nullptr, 10);
}

obs::HttpResponse DisabledDoc(const char* feature) {
  obs::Json doc = obs::Json::Object();
  doc.Set("enabled", obs::Json::Bool(false));
  doc.Set("hint", obs::Json::Str(std::string("enable WarehouseService::"
                                             "Options::") +
                                 feature));
  obs::HttpResponse r;
  r.body = doc.Dump(2) + "\n";
  return r;
}

}  // namespace

std::unique_ptr<WarehouseService> WarehouseService::Open(
    std::string data_dir, rel::Catalog bootstrap,
    std::vector<core::ViewDef> views, Options options) {
  fs::create_directories(data_dir);
  const fs::path dir(data_dir);
  const fs::path ckpt = dir / kCheckpointDir;
  const fs::path tmp = dir / kCheckpointTmp;
  const fs::path prev = dir / kCheckpointPrev;

  // Crash cleanup (see Checkpoint for the rename protocol): a leftover
  // tmp is an unfinished build — discard it; a leftover prev with no
  // current checkpoint means we crashed mid-swap — the old checkpoint is
  // still complete, restore it.
  std::error_code ec;
  fs::remove_all(tmp, ec);
  if (!fs::exists(ckpt) && fs::exists(prev)) {
    fs::rename(prev, ckpt);
  } else {
    fs::remove_all(prev, ec);
  }

  auto owned = options.metrics
                   ? std::unique_ptr<obs::MetricsRegistry>()
                   : std::make_unique<obs::MetricsRegistry>();
  obs::MetricsRegistry* metrics =
      options.metrics ? options.metrics : owned.get();
  options.metrics = metrics;
  options.warehouse.metrics = metrics;
  // Default the warehouse's tracer from the service's so RunBatch's span
  // tree nests under the maintenance thread's service.batch span.
  if (options.warehouse.tracer == nullptr) {
    options.warehouse.tracer = options.tracer;
  }

  uint64_t checkpoint_seq = 0;
  const bool have_checkpoint = fs::exists(ckpt / "manifest.txt");
  if (have_checkpoint) checkpoint_seq = ReadSeqFile(ckpt / kSeqFile);
  warehouse::Warehouse wh =
      have_checkpoint
          ? warehouse::LoadWarehouse(ckpt.string(), views, options.warehouse)
          : warehouse::Warehouse(std::move(bootstrap), options.warehouse);
  if (!have_checkpoint) wh.DefineSummaryTables(views);

  // Replay the WAL tail through the normal batch path, one batch per
  // record — the same boundaries an uninterrupted per-append-flush run
  // would have used, so the recovered state is byte-identical to it.
  // With sharding on, replay runs through a local sharded pipeline so
  // shard.delta_rows counters stay consistent with propagate.delta_rows
  // (the prom_lint cross-check); the slices are synced back and
  // discarded — they hold a pointer to `wh`, which moves below, and the
  // constructor re-slices from the warehouse anyway. With a ship sink
  // configured, every replayed record is collected for re-publication
  // (a record can be WAL-durable yet never shipped if the crash hit
  // between append and batch; replicas dedup re-ships by sequence).
  uint64_t recovered = 0;
  std::vector<replica::ShipRecord> replay_ships;
  std::unique_ptr<shard::ShardedMaintenance> replay_shards;
  if (options.num_shards > 0) {
    replay_shards = std::make_unique<shard::ShardedMaintenance>(
        &wh, options.num_shards, metrics);
  }
  const WalReplayReport replay =
      ReplayWal((dir / kWalFile).string(), wh.catalog(), checkpoint_seq,
                [&](WalRecord record) {
                  if (options.ship != nullptr) {
                    replica::ShipRecord ship;
                    ship.first_seq = record.seq;
                    ship.last_seq = record.seq;
                    ship.payload = EncodeChangeSet(record.changes);
                    replay_ships.push_back(std::move(ship));
                  }
                  if (replay_shards != nullptr) {
                    replay_shards->RunBatch(record.changes);
                  } else {
                    wh.RunBatch(record.changes);
                  }
                  ++recovered;
                });
  if (replay_shards != nullptr) {
    replay_shards->SyncIntoWarehouse();
    replay_shards.reset();
  }
  if (replay.tail_truncated) {
    // Cut the torn tail before the WalWriter below opens with O_APPEND:
    // records acknowledged after the garbage bytes would be invisible to
    // the next recovery scan, silently dropping durable data.
    fs::resize_file(dir / kWalFile, replay.valid_bytes);
    metrics->Add("service.wal_tail_truncations");
  }
  const uint64_t start_seq = std::max(checkpoint_seq, replay.last_seq);

  return std::unique_ptr<WarehouseService>(new WarehouseService(
      std::move(data_dir), std::move(wh), std::move(options), std::move(owned),
      checkpoint_seq, recovered, start_seq, std::move(replay_ships)));
}

WarehouseService::WarehouseService(
    std::string data_dir, warehouse::Warehouse wh, Options options,
    std::unique_ptr<obs::MetricsRegistry> owned_metrics,
    uint64_t checkpoint_seq, uint64_t recovered_records, uint64_t start_seq,
    std::vector<replica::ShipRecord> replay_ships)
    : data_dir_(std::move(data_dir)),
      options_(std::move(options)),
      owned_metrics_(std::move(owned_metrics)),
      metrics_(options_.metrics),
      events_(options_.event_log_capacity),
      slo_(options_.slo, metrics_),
      wal_(std::make_unique<WalWriter>((fs::path(data_dir_) / kWalFile).string(),
                                       start_seq + 1, options_.wal_sync)),
      queue_(options_.queue),
      warehouse_(std::move(wh)) {
  obs_.metrics = metrics_;
  obs_.tracer = options_.tracer;
  obs_.events = &events_;
  obs_.slo = &slo_;
  obs_.slow_query_threshold_seconds = options_.slow_query_threshold_seconds;
  // Pre-register the event-driven counters at 0 so the exposition (and
  // the determinism test's counter map) always carries them, whether or
  // not the triggering condition ever fires.
  metrics_->Add("service.queue_saturated", 0);
  metrics_->Add("service.slow_queries", 0);
  // Event-ring visibility (events.* gauges): capacity is fixed here;
  // occupancy/recorded/dropped refresh with the live gauges.
  metrics_->Set("events.capacity", static_cast<double>(events_.capacity()));
  metrics_->Set("events.occupancy", 0);
  metrics_->Set("events.recorded", 0);
  metrics_->Set("events.dropped", 0);
  if (options_.timeseries_capacity > 0) {
    timeseries_ =
        std::make_unique<obs::TimeSeriesStore>(options_.timeseries_capacity);
  }
  if (options_.profile) {
    profile_tracer_ = std::make_unique<obs::Tracer>();
    profiler_ = std::make_unique<obs::Profiler>();
    // The batch pipeline's spans go to the service-owned tracer so the
    // fold-and-clear cycle never races (or discards) a caller's spans.
    warehouse_.SetTracer(profile_tracer_.get());
  }
  if (options_.anomaly.enabled) {
    detector_ =
        std::make_unique<obs::AnomalyDetector>(options_.anomaly, metrics_);
    obs::FlightRecorder::Options rec;
    rec.dir = (fs::path(data_dir_) / "flightrec").string();
    rec.max_bundles = options_.max_anomaly_bundles;
    recorder_ = std::make_unique<obs::FlightRecorder>(std::move(rec), metrics_);
  }
  last_seq_.store(start_seq);
  applied_seq_ = start_seq;
  checkpoint_seq_ = checkpoint_seq;
  recovered_records_ = recovered_records;
  if (recovered_records > 0) {
    metrics_->Add("service.recovered_records", recovered_records);
    events_.Record(obs::EventType::kRecoveryReplay, /*batch_id=*/0,
                   /*request_id=*/0, /*seq=*/start_seq,
                   static_cast<double>(recovered_records),
                   "WAL tail replayed by Open");
  }
  if (options_.num_shards > 0) {
    sharded_ = std::make_unique<shard::ShardedMaintenance>(
        &warehouse_, options_.num_shards, metrics_);
  }
  if (options_.ship != nullptr) {
    // Re-ship WAL-recovered batches (each under a fresh epoch number —
    // replicas that already hold one skip it by sequence), then floor
    // our epoch numbering past everything the stream has ever carried.
    for (replica::ShipRecord& ship : replay_ships) {
      ship.epoch = options_.ship->MaxEpoch() + 1;
      options_.ship->Publish(ship);
      metrics_->Add("service.ship_records");
      metrics_->Add("service.ship_bytes",
                    replica::kShipFrameSize + ship.payload.size());
    }
    epoch_base_ = options_.ship->MaxEpoch();
  }
  versioned_.Install(BuildEpoch(nullptr, true, true));
  // Set before the thread spawns so a /healthz scrape racing startup
  // never reports a dead maintenance thread; MaintenanceLoop clears it
  // on exit.
  maintenance_alive_.store(true);
  // The endpoint starts before the maintenance thread exists: Start()
  // throws on bind/listen failure (fixed port in use), and unwinding
  // with a joinable std::thread member would std::terminate instead of
  // letting Open() surface a catchable error. Handlers only read
  // already-constructed snapshot state, so serving pre-thread is safe.
  if (options_.http_port >= 0) {
    StartHttp(static_cast<uint16_t>(options_.http_port));
  }
  maintenance_ = std::thread(&WarehouseService::MaintenanceLoop, this);
}

WarehouseService::~WarehouseService() { Stop(); }

std::vector<std::string> WarehouseService::FactTableNames() const {
  std::set<std::string> facts;
  for (const rel::ForeignKey& fk : warehouse_.catalog().foreign_keys()) {
    facts.insert(fk.fact_table);
  }
  for (const core::AugmentedView& v : warehouse_.vlattice().views) {
    facts.insert(v.physical.fact_table);
  }
  return {facts.begin(), facts.end()};
}

std::shared_ptr<const Epoch> WarehouseService::BuildEpoch(
    const std::vector<size_t>* view_delta_rows, bool dims_changed,
    bool full_rebuild) {
  const std::shared_ptr<const Epoch> prev = versioned_.Current();
  const lattice::VLattice& wl = warehouse_.vlattice();
  auto next = std::make_shared<Epoch>();
  next->number = prev ? prev->number + 1 : epoch_base_ + 1;
  next->metrics = metrics_;
  next->obs = &obs_;
  if (!full_rebuild && prev) {
    next->lattice = prev->lattice;
  } else {
    next->lattice = std::make_shared<lattice::VLattice>(wl);
  }
  if (!full_rebuild && prev && !dims_changed) {
    next->catalog = prev->catalog;
  } else {
    next->catalog = MakeReaderCatalog(warehouse_.catalog(), FactTableNames());
  }
  const bool can_share = !full_rebuild && prev && view_delta_rows &&
                         view_delta_rows->size() == wl.views.size() &&
                         prev->views.size() == wl.views.size();
  next->views.reserve(wl.views.size());
  for (size_t i = 0; i < wl.views.size(); ++i) {
    if (can_share && (*view_delta_rows)[i] == 0) {
      next->views.push_back(prev->views[i]);
      metrics_->Add("service.epoch_views_shared");
      continue;
    }
    auto copy =
        std::make_shared<core::SummaryTable>(wl.views[i], *next->catalog);
    // Sharded mode: the slices are authoritative (the warehouse's own
    // summary rows go stale between syncs); compose them for readers.
    copy->LoadFrom(sharded_ != nullptr
                       ? sharded_->ComposeView(i)
                       : warehouse_.summary(wl.views[i].physical.name)
                             .ToTable());
    next->views.push_back(std::move(copy));
    metrics_->Add("service.epoch_views_rebuilt");
  }
  metrics_->Set("service.epoch", static_cast<double>(next->number));
  metrics_->Set("writer.installed_epoch", static_cast<double>(next->number));
  return next;
}

uint64_t WarehouseService::Append(core::ChangeSet changes) {
  const size_t rows = ChangeSetRows(changes);
  const std::string fact = changes.fact_table;
  std::scoped_lock append_lock(wal_mu_);
  {
    std::scoped_lock lk(state_mu_);
    if (stopped_) throw std::runtime_error("service: Append after Stop");
  }
  const uint64_t seq = last_seq_.load(std::memory_order_relaxed) + 1;
  obs::TraceSpan span(options_.tracer, "service.append");
  span.Attr("seq", seq);
  span.Attr("rows", static_cast<uint64_t>(rows));
  const size_t wal_bytes = wal_->Append(seq, changes);

  IngestItem item;
  item.seq = seq;
  item.changes = std::move(changes);
  item.rows = rows;
  item.enqueued_at = std::chrono::steady_clock::now();
  bool saturated = false;
  if (!queue_.Push(std::move(item), &saturated)) {
    // The record is durable (it reached the WAL) but the service shut
    // down before accepting it; the next Open will replay it.
    throw std::runtime_error(
        "service: stopped while appending (change is in the WAL and will be "
        "recovered on the next Open)");
  }
  if (saturated) {
    // This producer blocked against the queue's row bound — the
    // backpressure signal the batching policy is supposed to avoid.
    metrics_->Add("service.queue_saturated");
    events_.Record(obs::EventType::kQueueSaturated, /*batch_id=*/0,
                   /*request_id=*/0, seq, static_cast<double>(rows), fact);
  }
  last_seq_.store(seq, std::memory_order_relaxed);

  metrics_->Add("service.appends");
  metrics_->Add("service.append_rows", rows);
  metrics_->Add("service.wal_records");
  metrics_->Add("service.wal_bytes", wal_bytes);
  metrics_->Set("service.queue_depth",
                static_cast<double>(queue_.rows_queued()));
  metrics_->Set("service.queue_changesets",
                static_cast<double>(queue_.changesets_queued()));
  return seq;
}

void WarehouseService::AwaitApplied(uint64_t target) {
  std::unique_lock lk(state_mu_);
  state_cv_.wait(lk, [&] { return applied_seq_ >= target; });
}

void WarehouseService::Flush() {
  const uint64_t target = last_seq_.load();
  metrics_->Add("service.flushes");
  queue_.RequestFlush();
  AwaitApplied(target);
}

void WarehouseService::ApplyItems(std::vector<IngestItem> items) {
  const uint64_t first_seq = items.front().seq;
  const uint64_t max_seq = items.back().seq;
  const size_t n_views = warehouse_.vlattice().views.size();
  std::vector<size_t> delta_rows(n_views, 0);
  bool dims_changed = false;
  size_t runs = 0;
  warehouse::BatchReport report;
  // One ship record per RunBatch run (not per drain): a replica must
  // replay the writer's exact batch trajectory to stay byte-identical,
  // and the trajectory's unit is the coalesced per-fact-table run.
  std::vector<replica::ShipRecord> pending_ships;

  // Correlation root for this drain: every event and span below (and,
  // via the tracer's per-thread stack, RunBatch's whole subtree) hangs
  // off this batch id / span.
  const uint64_t batch_id = ++next_batch_id_;
  const double staleness = std::chrono::duration<double>(
                               std::chrono::steady_clock::now() -
                               items.front().enqueued_at)
                               .count();
  events_.Record(obs::EventType::kBatchStart, batch_id, /*request_id=*/0,
                 max_seq, static_cast<double>(items.size()),
                 std::to_string(items.size()) + " changesets");
  obs::TraceSpan batch_span(options_.tracer, "service.batch");
  batch_span.Attr("batch_id", batch_id);
  batch_span.Attr("first_seq", first_seq);
  batch_span.Attr("last_seq", max_seq);
  core::Stopwatch batch_sw;

  // Items must apply in sequence order; a change of fact table ends the
  // coalescing run (ChangeSet carries exactly one fact table's delta).
  exec::OperatorStats drain_ops;
  lattice::ExplainResult explain;
  bool have_explain = false;
  size_t i = 0;
  while (i < items.size()) {
    size_t j = i + 1;
    while (j < items.size() &&
           items[j].changes.fact_table == items[i].changes.fact_table) {
      ++j;
    }
    const uint64_t run_first = items[i].seq;
    const uint64_t run_last = items[j - 1].seq;
    std::vector<IngestItem> run(std::make_move_iterator(items.begin() + i),
                                std::make_move_iterator(items.begin() + j));
    metrics_->Add("service.coalesced_changesets", run.size());
    core::ChangeSet merged = CoalesceChanges(std::move(run));
    dims_changed = dims_changed || !merged.dimensions.empty();
    if (options_.ship != nullptr) {
      replica::ShipRecord ship;
      ship.first_seq = run_first;
      ship.last_seq = run_last;
      ship.payload = EncodeChangeSet(merged);
      pending_ships.push_back(std::move(ship));
    }
    if (detector_ != nullptr) {
      // Estimate side of the EXPLAIN ANALYZE bundle artifact, built
      // against pre-batch base-table sizes (what the planner saw).
      explain = lattice::BuildExplain(warehouse_.catalog(),
                                      warehouse_.vlattice(), warehouse_.plan(),
                                      merged);
      have_explain = true;
    }
    report = sharded_ != nullptr ? sharded_->RunBatch(merged)
                                 : warehouse_.RunBatch(merged);
    if (have_explain) lattice::AttachActuals(report.step_execs, &explain);
    if (profiler_ != nullptr) {
      for (const lattice::StepExecution& se : report.step_execs) {
        drain_ops.MergeFrom(se.ops);
      }
    }
    metrics_->Add("service.batches");
    ++runs;
    for (size_t v = 0; v < report.views.size() && v < n_views; ++v) {
      delta_rows[v] += report.views[v].delta_rows;
    }
    i = j;
  }

  // The drain's staleness observation: how old the oldest change got
  // before this batch picked it up (the paper's batch-window tension).
  slo_.ObserveStaleness(staleness);

  std::shared_ptr<const Epoch> next =
      BuildEpoch(&delta_rows, dims_changed, /*full_rebuild=*/false);
  const uint64_t epoch_number = next->number;
  double window = 0;
  {
    obs::TraceSpan install_span(options_.tracer, "service.epoch_install");
    install_span.Attr("batch_id", batch_id);
    install_span.Attr("epoch", epoch_number);
    window = versioned_.Install(std::move(next));
  }
  events_.Record(obs::EventType::kEpochInstall, batch_id, /*request_id=*/0,
                 max_seq, window, "epoch " + std::to_string(epoch_number));
  if (options_.ship != nullptr) {
    // Publish only after the install: the epoch stamp promises "the
    // writer's readers can see this batch", and replicas that catch up
    // to it converge to exactly this epoch's bytes. All of the drain's
    // runs installed together, so they share the drain's epoch; a
    // replica applies them run-by-run and lands on the same state.
    for (replica::ShipRecord& ship : pending_ships) {
      ship.epoch = epoch_number;
      options_.ship->Publish(ship);
      metrics_->Add("service.ship_records");
      metrics_->Add("service.ship_bytes",
                    replica::kShipFrameSize + ship.payload.size());
    }
  }
  slo_.ObserveWindow(window);
  metrics_->Observe("service.refresh_window", window);
  metrics_->Set("service.refresh_window_seconds", window);
  metrics_->Set("service.queue_depth",
                static_cast<double>(queue_.rows_queued()));
  metrics_->Set("service.queue_changesets",
                static_cast<double>(queue_.changesets_queued()));
  metrics_->Set("service.staleness_seconds", queue_.oldest_age_seconds());
  events_.Record(obs::EventType::kBatchEnd, batch_id, /*request_id=*/0,
                 max_seq, batch_sw.ElapsedSeconds(),
                 std::to_string(runs) + " runs");

  // Historical/diagnostic layer (DESIGN.md §13), in dependency order:
  // fold the batch's profile, append the per-batch snapshot, evaluate
  // the detector against it, and dump a flight bundle on detection.
  if (profiler_ != nullptr) {
    // Quiesced: RunBatch returned, so its pool workers joined; nothing
    // else writes profile_tracer_.
    profiler_->RecordBatch(profile_tracer_->spans(), &drain_ops);
    profile_tracer_->Clear();
  }
  if (timeseries_ != nullptr) {
    RefreshLiveGauges();  // events.* / queue gauges current at sampling
    timeseries_->Append(batch_id, metrics_->Snapshot());
  }
  if (detector_ != nullptr) {
    std::vector<obs::Anomaly> fired;
    if (timeseries_ != nullptr) fired = detector_->Check(*timeseries_, batch_id);
    std::vector<obs::Anomaly> burn = detector_->CheckSlo(slo_, batch_id);
    fired.insert(fired.end(), burn.begin(), burn.end());
    if (!fired.empty()) {
      std::vector<std::pair<std::string, obs::Json>> artifacts;
      artifacts.emplace_back("events", events_.ToJson());
      if (profiler_ != nullptr) {
        artifacts.emplace_back("profile", profiler_->ToJson());
      }
      if (timeseries_ != nullptr) {
        artifacts.emplace_back("timeseries", timeseries_->ToJson());
      }
      if (have_explain) {
        artifacts.emplace_back("explain", explain.ToJson());
      }
      artifacts.emplace_back("config", ConfigJson());
      const std::string bundle =
          recorder_->WriteBundle(batch_id, fired, artifacts);
      events_.Record(obs::EventType::kAnomaly, batch_id, /*request_id=*/0,
                     max_seq, static_cast<double>(fired.size()), bundle);
    }
  }

  std::scoped_lock lk(state_mu_);
  applied_seq_ = max_seq;
  batches_ += runs;
  last_batch_id_ = batch_id;
  last_refresh_window_ = window;
  last_report_ = std::move(report);
  state_cv_.notify_all();
}

void WarehouseService::MaintenanceLoop() {
  while (true) {
    IngestBatch batch = queue_.WaitAndTake(options_.auto_batching);
    if (!batch.items.empty()) ApplyItems(std::move(batch.items));
    if (batch.flush_requested) {
      std::scoped_lock lk(state_mu_);
      state_cv_.notify_all();
    }
    if (batch.closed) break;
  }
  maintenance_alive_.store(false);
}

void WarehouseService::Stop() {
  std::scoped_lock stop_lock(stop_mu_);
  {
    std::scoped_lock lk(state_mu_);
    if (stopped_) return;
  }
  // Scrapes go first: a request racing shutdown must not observe the
  // service mid-teardown.
  if (http_) http_->Stop();
  queue_.Close();
  if (maintenance_.joinable()) maintenance_.join();
  std::scoped_lock lk(state_mu_);
  stopped_ = true;
  state_cv_.notify_all();
}

void WarehouseService::Checkpoint() {
  // Fence producers for the duration: no new sequences, WAL quiescent.
  std::scoped_lock append_lock(wal_mu_);
  const uint64_t target = last_seq_.load();
  queue_.RequestFlush();
  AwaitApplied(target);
  // The maintenance thread is idle (queue drained, applied == last) and
  // touches the warehouse only after taking new work, so the snapshot
  // below reads quiescent state.

  const fs::path dir(data_dir_);
  const fs::path ckpt = dir / kCheckpointDir;
  const fs::path tmp = dir / kCheckpointTmp;
  const fs::path prev = dir / kCheckpointPrev;
  std::error_code ec;
  fs::remove_all(tmp, ec);
  // Sharded mode keeps authoritative rows in the slices; fold them back
  // into the warehouse so the snapshot (and any replica bootstrapping
  // from it) carries current summaries.
  if (sharded_ != nullptr) sharded_->SyncIntoWarehouse();
  warehouse::SaveWarehouse(warehouse_, tmp.string());
  WriteSeqFile(tmp / kSeqFile, target);
  // The applied-epoch floor for a replica bootstrapping from this
  // checkpoint (its state already contains every shipped batch <= SEQ).
  WriteSeqFile(tmp / kEpochFile, versioned_.Current()->number);
  // Swap: keep the old checkpoint complete until the new one is in
  // place. Open() resolves every intermediate crash state.
  fs::remove_all(prev, ec);
  if (fs::exists(ckpt)) fs::rename(ckpt, prev);
  fs::rename(tmp, ckpt);
  fs::remove_all(prev, ec);
  // Log truncation commits the checkpoint: replay now starts at
  // target + 1, which is exactly what the snapshot already contains.
  wal_->Reset(target + 1);
  events_.Record(obs::EventType::kWalCheckpoint, /*batch_id=*/0,
                 /*request_id=*/0, target, /*value=*/0,
                 "seq " + std::to_string(target));

  metrics_->Add("service.checkpoints");
  std::scoped_lock lk(state_mu_);
  checkpoint_seq_ = target;
  ++checkpoints_;
}

void WarehouseService::WithWriter(
    const std::function<void(warehouse::Warehouse&)>& fn) {
  std::scoped_lock append_lock(wal_mu_);
  const uint64_t target = last_seq_.load();
  queue_.RequestFlush();
  AwaitApplied(target);
  // DDL reads/writes warehouse state directly: fold the authoritative
  // slice rows in first, and re-slice afterwards (the view set or
  // schemas may have changed).
  if (sharded_ != nullptr) sharded_->SyncIntoWarehouse();
  fn(warehouse_);
  if (sharded_ != nullptr) sharded_->Repartition();
  // DDL may have changed the lattice, plans, and summary schemas:
  // readers get a fully fresh epoch.
  versioned_.Install(BuildEpoch(nullptr, true, /*full_rebuild=*/true));
}

WarehouseService::Stats WarehouseService::GetStats() const {
  RefreshLiveGauges();
  Stats stats;
  stats.last_seq = last_seq_.load();
  stats.queue_changesets = queue_.changesets_queued();
  stats.queue_rows = queue_.rows_queued();
  stats.staleness_seconds = queue_.oldest_age_seconds();
  std::scoped_lock lk(state_mu_);
  stats.applied_seq = applied_seq_;
  stats.checkpoint_seq = checkpoint_seq_;
  stats.batches = batches_;
  stats.checkpoints = checkpoints_;
  stats.recovered_records = recovered_records_;
  stats.last_refresh_window_seconds = last_refresh_window_;
  stats.last_batch_id = last_batch_id_;
  stats.epoch = versioned_.Current()->number;
  return stats;
}

warehouse::BatchReport WarehouseService::LastReport() const {
  std::scoped_lock lk(state_mu_);
  return last_report_;
}

void WarehouseService::RefreshLiveGauges() const {
  // The drain path last set these at the end of a batch; recompute from
  // the live queue so an export between batches reads *now*. Staleness
  // in particular would otherwise stay frozen at the last drain's value
  // while changes silently age in the queue.
  metrics_->Set("service.staleness_seconds", queue_.oldest_age_seconds());
  metrics_->Set("service.queue_depth",
                static_cast<double>(queue_.rows_queued()));
  metrics_->Set("service.queue_changesets",
                static_cast<double>(queue_.changesets_queued()));
  const uint64_t recorded = events_.total_recorded();
  const uint64_t dropped = events_.dropped_count();
  metrics_->Set("events.recorded", static_cast<double>(recorded));
  metrics_->Set("events.dropped", static_cast<double>(dropped));
  metrics_->Set("events.occupancy", static_cast<double>(recorded - dropped));
}

WarehouseService::Health WarehouseService::CheckHealth() const {
  Health h;
  h.wal_writable = wal_->healthy();
  h.maintenance_alive = maintenance_alive_.load();
  h.staleness_seconds = queue_.oldest_age_seconds();
  h.queue_below_high_water =
      queue_.rows_queued() < options_.queue.max_queue_rows;
  // SLO gate: cumulative burn within budget AND the live staleness is
  // within target right now (evaluated without recording — scrapes must
  // not move the violation counters).
  h.slo_ok = slo_.Healthy() && slo_.StalenessWithinTarget(h.staleness_seconds);
  return h;
}

int WarehouseService::http_port() const {
  return http_ != nullptr && http_->running() ? static_cast<int>(http_->port())
                                              : -1;
}

void WarehouseService::StartHttp(uint16_t port) {
  http_ = std::make_unique<obs::HttpEndpoint>();
  http_->Route("/metrics", [this](const obs::HttpRequest&) {
    RefreshLiveGauges();
    obs::HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = obs::ExportPrometheus(*metrics_);
    return r;
  });
  http_->Route("/healthz", [this](const obs::HttpRequest&) {
    const Health h = CheckHealth();
    obs::Json doc = obs::Json::Object();
    doc.Set("healthy", obs::Json::Bool(h.healthy()));
    doc.Set("wal_writable", obs::Json::Bool(h.wal_writable));
    doc.Set("maintenance_alive", obs::Json::Bool(h.maintenance_alive));
    doc.Set("queue_below_high_water",
            obs::Json::Bool(h.queue_below_high_water));
    doc.Set("slo_ok", obs::Json::Bool(h.slo_ok));
    doc.Set("staleness_seconds", obs::Json::Double(h.staleness_seconds));
    doc.Set("slo", slo_.ToJson());
    obs::HttpResponse r;
    r.status = h.healthy() ? 200 : 503;
    r.body = doc.Dump(2) + "\n";
    return r;
  });
  http_->Route("/varz", [this](const obs::HttpRequest&) {
    RefreshLiveGauges();
    obs::HttpResponse r;
    // Metrics only: span export requires a quiesced tracer, which a
    // scrape racing the maintenance thread cannot guarantee.
    r.body = obs::ExportJson(metrics_, /*tracer=*/nullptr);
    return r;
  });
  http_->Route("/epochs", [this](const obs::HttpRequest&) {
    const std::shared_ptr<const Epoch> cur = versioned_.Current();
    obs::Json doc = obs::Json::Object();
    doc.Set("epoch", obs::Json::Int(static_cast<int64_t>(cur->number)));
    doc.Set("last_seq",
            obs::Json::Int(static_cast<int64_t>(last_seq_.load())));
    {
      std::scoped_lock lk(state_mu_);
      doc.Set("applied_seq",
              obs::Json::Int(static_cast<int64_t>(applied_seq_)));
      doc.Set("last_batch_id",
              obs::Json::Int(static_cast<int64_t>(last_batch_id_)));
    }
    obs::Json views = obs::Json::Array();
    for (size_t i = 0; i < cur->views.size(); ++i) {
      obs::Json v = obs::Json::Object();
      v.Set("name", obs::Json::Str(cur->lattice->views[i].physical.name));
      v.Set("rows",
            obs::Json::Int(static_cast<int64_t>(cur->views[i]->NumRows())));
      views.Append(std::move(v));
    }
    doc.Set("views", std::move(views));
    obs::HttpResponse r;
    r.body = doc.Dump(2) + "\n";
    return r;
  });
  http_->Route("/events", [this](const obs::HttpRequest&) {
    obs::HttpResponse r;
    r.body = events_.ToJson().Dump(2) + "\n";
    return r;
  });
  http_->Route("/timeseries", [this](const obs::HttpRequest& req) {
    if (timeseries_ == nullptr) return DisabledDoc("timeseries_capacity");
    obs::HttpResponse r;
    const std::string metric = QueryParam(req.query, "metric");
    if (metric.empty()) {
      r.body = timeseries_->ToJson().Dump(2) + "\n";
      return r;
    }
    const uint64_t from = ParseIdOr(QueryParam(req.query, "from"), 0);
    const uint64_t to =
        ParseIdOr(QueryParam(req.query, "to"), UINT64_MAX);
    obs::Json doc = obs::Json::Object();
    doc.Set("schema", obs::Json::Str("sdelta.timeseries.v1"));
    doc.Set("metric", obs::Json::Str(metric));
    obs::Json points = obs::Json::Array();
    for (const obs::TimeSeriesPoint& p :
         timeseries_->Query(metric, from, to)) {
      obs::Json point = obs::Json::Object();
      point.Set("batch", obs::Json::Int(static_cast<int64_t>(p.batch_id)));
      point.Set("value", obs::Json::Double(p.value));
      points.Append(std::move(point));
    }
    doc.Set("points", std::move(points));
    r.body = doc.Dump(2) + "\n";
    return r;
  });
  http_->Route("/profile", [this](const obs::HttpRequest& req) {
    if (profiler_ == nullptr) return DisabledDoc("profile");
    obs::HttpResponse r;
    if (QueryParam(req.query, "format") == "collapsed") {
      r.content_type = "text/plain; charset=utf-8";
      r.body = profiler_->ToCollapsed();
      return r;
    }
    r.body = profiler_->ToJson().Dump(2) + "\n";
    return r;
  });
  http_->Route("/anomalies", [this](const obs::HttpRequest&) {
    if (detector_ == nullptr) return DisabledDoc("anomaly.enabled");
    obs::Json doc = detector_->ToJson();
    obs::Json bundles = obs::Json::Array();
    if (recorder_ != nullptr) {
      for (const std::string& name : recorder_->ListBundles()) {
        bundles.Append(obs::Json::Str(name));
      }
    }
    doc.Set("bundles", std::move(bundles));
    obs::HttpResponse r;
    r.body = doc.Dump(2) + "\n";
    return r;
  });
  http_->Start(port);
}

obs::Json WarehouseService::ConfigJson() const {
  obs::Json doc = obs::Json::Object();
  doc.Set("schema", obs::Json::Str("sdelta.config.v1"));
  doc.Set("auto_batching", obs::Json::Bool(options_.auto_batching));
  doc.Set("wal_sync", obs::Json::Bool(options_.wal_sync));
  doc.Set("num_threads",
          obs::Json::Int(static_cast<int64_t>(warehouse_.num_threads())));
  obs::Json queue = obs::Json::Object();
  queue.Set("max_batch_rows", obs::Json::Int(static_cast<int64_t>(
                                  options_.queue.max_batch_rows)));
  queue.Set("max_queue_rows", obs::Json::Int(static_cast<int64_t>(
                                  options_.queue.max_queue_rows)));
  queue.Set("max_batch_delay_seconds",
            obs::Json::Double(options_.queue.max_batch_delay_seconds));
  doc.Set("queue", std::move(queue));
  obs::Json slo = obs::Json::Object();
  slo.Set("staleness_seconds", obs::Json::Double(options_.slo.staleness_seconds));
  slo.Set("refresh_window_seconds",
          obs::Json::Double(options_.slo.refresh_window_seconds));
  slo.Set("error_budget", obs::Json::Double(options_.slo.error_budget));
  doc.Set("slo", std::move(slo));
  doc.Set("timeseries_capacity", obs::Json::Int(static_cast<int64_t>(
                                     options_.timeseries_capacity)));
  doc.Set("profile", obs::Json::Bool(options_.profile));
  obs::Json anomaly = obs::Json::Object();
  anomaly.Set("enabled", obs::Json::Bool(options_.anomaly.enabled));
  anomaly.Set("slo_burn_threshold",
              obs::Json::Double(options_.anomaly.slo_burn_threshold));
  obs::Json rules = obs::Json::Array();
  for (const obs::AnomalyRule& rule : options_.anomaly.rules) {
    obs::Json r = obs::Json::Object();
    r.Set("metric", obs::Json::Str(rule.metric));
    r.Set("factor", obs::Json::Double(rule.factor));
    r.Set("min_threshold", obs::Json::Double(rule.min_threshold));
    r.Set("window", obs::Json::Int(static_cast<int64_t>(rule.window)));
    r.Set("warmup", obs::Json::Int(static_cast<int64_t>(rule.warmup)));
    r.Set("delta", obs::Json::Bool(rule.delta));
    rules.Append(std::move(r));
  }
  anomaly.Set("rules", std::move(rules));
  doc.Set("anomaly", std::move(anomaly));
  doc.Set("max_anomaly_bundles", obs::Json::Int(static_cast<int64_t>(
                                     options_.max_anomaly_bundles)));
  return doc;
}

}  // namespace sdelta::service
