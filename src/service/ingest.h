#ifndef SDELTA_SERVICE_INGEST_H_
#define SDELTA_SERVICE_INGEST_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/delta.h"

namespace sdelta::service {

/// One accepted (and, when durability is on, already WAL-logged) change
/// set waiting for the maintenance loop.
struct IngestItem {
  uint64_t seq = 0;
  core::ChangeSet changes;
  size_t rows = 0;  ///< total delta rows (fact + dimensions)
  std::chrono::steady_clock::time_point enqueued_at;
};

/// What the maintenance loop got out of one wait: the drained items (in
/// sequence order), whether an explicit flush asked for this drain, and
/// whether the queue has been closed (shutdown).
struct IngestBatch {
  std::vector<IngestItem> items;
  bool flush_requested = false;
  bool closed = false;
};

/// Bounded multi-producer / single-consumer queue with the service's
/// batching policy: the consumer is woken when enough rows are queued,
/// when the oldest queued change has waited long enough, on explicit
/// flush, or on close. Producers block (backpressure) while the queue
/// holds max_queue_rows or more delta rows.
class IngestQueue {
 public:
  struct Policy {
    /// Producer bound: Push blocks while this many rows are queued.
    size_t max_queue_rows = 1 << 16;
    /// Batch trigger: wake the consumer once this many rows are queued.
    size_t max_batch_rows = 4096;
    /// Batch trigger: wake the consumer once the oldest queued change
    /// has been waiting this long (the latency bound on staleness).
    double max_batch_delay_seconds = 0.05;
  };

  explicit IngestQueue(Policy policy) : policy_(policy) {}

  /// Enqueues one item; blocks while the queue is at its row bound.
  /// Returns false when the queue was closed (the item is dropped here —
  /// with durability on it is already in the WAL and will be recovered).
  /// `saturated` (nullable) is set to true when the producer actually
  /// had to wait on the row bound — the backpressure signal the service
  /// turns into a QueueSaturated event.
  bool Push(IngestItem item, bool* saturated = nullptr);

  /// Consumer side. With `auto_batching` the wait honours the batching
  /// policy triggers; without it only flush/close wake the consumer
  /// (deterministic, test- and replay-friendly batch boundaries). Always
  /// drains the whole queue on wake-up.
  IngestBatch WaitAndTake(bool auto_batching);

  /// Wakes the consumer regardless of policy triggers.
  void RequestFlush();

  /// Closes the queue: producers fail fast, the consumer drains once
  /// (items still queued are returned with closed = true) and exits.
  void Close();

  size_t rows_queued() const;
  size_t changesets_queued() const;
  /// Seconds the oldest queued change has been waiting; 0 when empty.
  double oldest_age_seconds() const;

 private:
  bool BatchDue() const;  // caller holds mu_

  const Policy policy_;
  mutable std::mutex mu_;
  std::condition_variable consumer_cv_;
  std::condition_variable producer_cv_;
  std::vector<IngestItem> items_;
  size_t rows_ = 0;
  bool flush_pending_ = false;
  bool closed_ = false;
};

/// Folds a drained run of items (all sharing one fact table) into the
/// single coalesced ChangeSet the maintenance batch applies: fact and
/// dimension deltas are concatenated in sequence order, so applying the
/// coalesced set equals applying the items one by one.
core::ChangeSet CoalesceChanges(std::vector<IngestItem> items);

}  // namespace sdelta::service

#endif  // SDELTA_SERVICE_INGEST_H_
