#ifndef SDELTA_SERVICE_SERVICE_H_
#define SDELTA_SERVICE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/anomaly.h"
#include "obs/event_log.h"
#include "obs/http_endpoint.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/slo.h"
#include "obs/timeseries.h"
#include "obs/trace.h"
#include "replica/ship.h"
#include "service/ingest.h"
#include "service/versioned.h"
#include "service/wal.h"
#include "shard/sharded_maintenance.h"
#include "warehouse/warehouse.h"

namespace sdelta::service {

/// The concurrent warehouse service runtime (DESIGN.md §9): a
/// background maintenance loop over one Warehouse, versioned summary
/// tables for lock-free-feeling readers, and a WAL for ingest
/// durability.
///
/// Threads and roles:
///   - producers call Append (WAL append + enqueue, under one mutex so
///     sequence order == WAL order == apply order) and Snapshot/Query;
///   - one maintenance thread drains the queue, coalesces deltas, runs
///     the paper's propagate/refresh batch, and installs the next epoch
///     with a single pointer swap (the measured refresh window);
///   - Checkpoint / WithWriter are exclusive: they block appends, drain
///     the queue, and then own the warehouse briefly.
///
/// Durability invariant: once Append returns, the change set is in the
/// WAL; warehouse state after a crash equals
///   checkpoint ∘ replay(records with seq > checkpoint sequence),
/// with each replayed record applied as its own batch — byte-identical
/// to an uninterrupted run that flushed after every append.
class WarehouseService {
 public:
  struct Options {
    warehouse::Warehouse::Options warehouse;
    IngestQueue::Policy queue;
    /// true: the maintenance loop also wakes on the batching policy's
    /// row/latency triggers. false: batches form only on explicit Flush
    /// (or shutdown) — deterministic boundaries for tests and replay.
    bool auto_batching = true;
    /// fsync the WAL after every append. Off by default: the container
    /// tests and benches exercise the logical protocol; production
    /// deployments turn it on.
    bool wal_sync = false;
    /// External registry for all service.*, pipeline, and answer.*
    /// series; null = the service owns a private registry (metrics()).
    obs::MetricsRegistry* metrics = nullptr;
    /// Span sink for the correlated service trace (DESIGN.md §11.3):
    /// one service.batch tree per maintenance drain (append/WAL/
    /// RunBatch/epoch-install children), one service.query span per
    /// snapshot query. Null = tracing off. Note a Tracer accumulates
    /// spans until cleared, so attach one for bounded diagnosis
    /// sessions, not unbounded production serving.
    obs::Tracer* tracer = nullptr;
    /// Capacity of the structured event ring buffer (events()).
    size_t event_log_capacity = 1024;
    /// Snapshot queries slower than this record a SlowQuery event.
    double slow_query_threshold_seconds = 0.1;
    /// Staleness / refresh-window SLO targets (default: disabled).
    obs::SloTracker::Targets slo;
    /// Embedded HTTP scrape endpoint (DESIGN.md §11.2): < 0 = disabled
    /// (default); 0 = bind an ephemeral 127.0.0.1 port (read it back
    /// via http_port()); > 0 = bind that port. Routes: /metrics,
    /// /healthz, /varz, /epochs, /events, /timeseries, /profile,
    /// /anomalies.
    int http_port = -1;
    /// Per-batch metric history ring (DESIGN.md §13.1): one snapshot of
    /// every counter/gauge plus histogram P50/P95/P99 per epoch
    /// install. 0 disables the store (and with it /timeseries and the
    /// anomaly rules, which read it).
    size_t timeseries_capacity = 512;
    /// Span-based self-time profiling of the maintenance path
    /// (DESIGN.md §13.2). The service owns a private tracer for the
    /// warehouse batch pipeline, folded into profiler() and cleared
    /// after every drain — so profiling stays bounded in memory, unlike
    /// attaching a long-lived Options::tracer. While profiling, the
    /// warehouse's RunBatch spans go to that private tracer (an
    /// explicitly set Options::warehouse.tracer, or the default chain
    /// from Options::tracer, is overridden for the batch pipeline;
    /// service.batch/append/query spans still go to Options::tracer).
    bool profile = false;
    /// Anomaly detection over the time-series ring + SLO burn trigger
    /// (DESIGN.md §13.3). Disabled by default; when enabled, each
    /// detection writes a flight-recorder bundle under
    /// <data_dir>/flightrec/.
    obs::AnomalyConfig anomaly;
    /// Flight-recorder retention: newest bundles kept on disk.
    size_t max_anomaly_bundles = 8;
    /// Shard the refresh phase by group key (DESIGN.md §15): each
    /// view's summary state is split into this many hash-disjoint
    /// slices that refresh as independent per-shard pipelines. 0 = the
    /// legacy unsharded path (exactly PR-before behavior); summaries
    /// are byte-identical at every setting. WAL recovery replays
    /// through the same sharded pipeline so shard.* counters stay
    /// consistent with propagate.* counters.
    size_t num_shards = 0;
    /// Epoch shipping (DESIGN.md §15): after each epoch install the
    /// maintenance thread publishes one ShipRecord (the batch's
    /// coalesced change set + seq range + epoch) for read replicas to
    /// replay. Must outlive the service. Epoch numbering fast-forwards
    /// past the stream's MaxEpoch() on restart, and WAL-recovered
    /// batches are re-shipped (replicas dedup by sequence). DDL
    /// (WithWriter) is NOT shipped — re-bootstrap replicas from a fresh
    /// checkpoint after schema changes.
    replica::ShipPublisher* ship = nullptr;
  };

  /// Point-in-time service numbers (the shell's `service stats`).
  struct Stats {
    uint64_t epoch = 0;
    uint64_t last_seq = 0;     ///< last sequence acknowledged by Append
    uint64_t applied_seq = 0;  ///< last sequence visible to readers
    uint64_t checkpoint_seq = 0;
    size_t queue_changesets = 0;
    size_t queue_rows = 0;
    double staleness_seconds = 0;  ///< age of the oldest queued change
    double last_refresh_window_seconds = 0;
    uint64_t batches = 0;
    uint64_t checkpoints = 0;
    uint64_t recovered_records = 0;  ///< WAL records replayed by Open
    uint64_t last_batch_id = 0;      ///< correlation id of the last drain
  };

  /// One /healthz evaluation: overall status plus the individual checks
  /// (each must hold for healthy() to be true).
  struct Health {
    bool wal_writable = false;
    bool maintenance_alive = false;
    bool queue_below_high_water = false;
    bool slo_ok = false;
    double staleness_seconds = 0;  ///< the live value the check used
    bool healthy() const {
      return wal_writable && maintenance_alive && queue_below_high_water &&
             slo_ok;
    }
  };

  /// Opens the service on `data_dir` (created if needed; holds the WAL
  /// and checkpoints). With an existing checkpoint the bootstrap
  /// catalog is ignored and state is restored from it; the WAL tail
  /// (seq > checkpoint sequence) is then replayed through the normal
  /// batch path, one batch per record. Fresh directories build the
  /// warehouse from `bootstrap` and materialize `views`. The
  /// maintenance thread is running when Open returns.
  static std::unique_ptr<WarehouseService> Open(
      std::string data_dir, rel::Catalog bootstrap,
      std::vector<core::ViewDef> views, Options options);
  static std::unique_ptr<WarehouseService> Open(
      std::string data_dir, rel::Catalog bootstrap,
      std::vector<core::ViewDef> views) {
    return Open(std::move(data_dir), std::move(bootstrap), std::move(views),
                Options());
  }

  ~WarehouseService();
  WarehouseService(const WarehouseService&) = delete;
  WarehouseService& operator=(const WarehouseService&) = delete;

  /// Durably accepts one change set: assigns the next sequence number,
  /// appends it to the WAL, and enqueues it for maintenance. Blocks for
  /// backpressure while the queue is at its row bound. Returns the
  /// assigned sequence. Throws std::runtime_error after Stop (a record
  /// that reached the WAL first is recovered on the next Open).
  uint64_t Append(core::ChangeSet changes);

  /// Forces a batch and blocks until every change appended before this
  /// call is reader-visible (applied_seq >= that sequence).
  void Flush();

  /// Pins the current epoch. Cheap (a shared_ptr copy under a mutex);
  /// the snapshot stays queryable while any number of newer epochs are
  /// installed beside it.
  ReadSnapshot Snapshot() const { return versioned_.Pin(); }

  /// Flushes, snapshots the warehouse to `<data_dir>/checkpoint` (via
  /// warehouse::SaveWarehouse plus a SEQ marker), and truncates the
  /// WAL. Appends are blocked for the duration. Crash-safe: the new
  /// checkpoint is built in a temp directory and swapped in by rename,
  /// with the previous checkpoint kept until the swap completes.
  void Checkpoint();

  /// Exclusive writer access for DDL (AddSummaryTable / DropSummary-
  /// Table): blocks appends, drains the queue, hands the warehouse to
  /// `fn`, then rebuilds and installs a full fresh epoch. The warehouse
  /// reference must not escape `fn`.
  void WithWriter(const std::function<void(warehouse::Warehouse&)>& fn);

  /// Drains the queue, applies everything, and stops the maintenance
  /// thread. Idempotent; the destructor calls it.
  void Stop();

  Stats GetStats() const;
  /// The batch report of the most recent maintenance batch.
  warehouse::BatchReport LastReport() const;
  /// The sharded pipeline; null when Options::num_shards == 0. Shell
  /// introspection only (per-shard rows/deltas/epochs) — mutation stays
  /// with the maintenance thread.
  const shard::ShardedMaintenance* sharded() const { return sharded_.get(); }
  obs::MetricsRegistry& metrics() { return *metrics_; }
  const std::string& data_dir() const { return data_dir_; }

  /// The structured event log (BatchStart/End, EpochInstall, ...).
  const obs::EventLog& events() const { return events_; }
  /// The staleness / refresh-window SLO tracker.
  const obs::SloTracker& slo() const { return slo_; }
  /// Per-batch metric history; null when timeseries_capacity == 0.
  const obs::TimeSeriesStore* timeseries() const { return timeseries_.get(); }
  /// The maintenance-path profiler; null unless Options::profile.
  const obs::Profiler* profiler() const { return profiler_.get(); }
  /// The anomaly detector; null unless Options::anomaly.enabled.
  const obs::AnomalyDetector* anomalies() const { return detector_.get(); }
  /// The flight recorder; null unless Options::anomaly.enabled.
  const obs::FlightRecorder* flight_recorder() const { return recorder_.get(); }
  /// Evaluates the /healthz checks right now (live staleness, WAL fd,
  /// maintenance-thread liveness, queue headroom, SLO burn rate).
  Health CheckHealth() const;
  /// The bound HTTP scrape port; -1 when the endpoint is disabled.
  int http_port() const;
  /// Re-derives the live gauges (service.staleness_seconds, queue
  /// depths) from current queue state so an export between batches
  /// reflects *now*, not the last drain. Called by GetStats and every
  /// HTTP scrape; cheap enough to call before any manual export.
  void RefreshLiveGauges() const;

 private:
  WarehouseService(std::string data_dir, warehouse::Warehouse wh,
                   Options options,
                   std::unique_ptr<obs::MetricsRegistry> owned_metrics,
                   uint64_t checkpoint_seq, uint64_t recovered_records,
                   uint64_t start_seq,
                   std::vector<replica::ShipRecord> replay_ships);

  /// Builds the next epoch from the warehouse's current summaries.
  /// `view_delta_rows` (nullable, parallel to vlattice().views) enables
  /// per-view sharing: views whose batch delta_rows == 0 reuse the
  /// previous epoch's table; the reader catalog is recopied only when
  /// `dims_changed`. `full_rebuild` forces everything fresh (DDL,
  /// initial epoch).
  std::shared_ptr<const Epoch> BuildEpoch(
      const std::vector<size_t>* view_delta_rows, bool dims_changed,
      bool full_rebuild);

  void MaintenanceLoop();
  /// Applies one drained run of items (one RunBatch per fact-table run)
  /// and installs the next epoch.
  void ApplyItems(std::vector<IngestItem> items);
  /// Waits (under state_mu_) until applied_seq_ >= target.
  void AwaitApplied(uint64_t target);
  /// Registers the scrape routes and starts the HTTP endpoint.
  void StartHttp(uint16_t port);
  /// The effective configuration, as a flight-bundle artifact.
  obs::Json ConfigJson() const;

  std::vector<std::string> FactTableNames() const;

  const std::string data_dir_;
  const Options options_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::EventLog events_;
  obs::SloTracker slo_;
  /// Shared with every epoch (ReadSnapshot::Query reports through it).
  ServiceObs obs_;
  /// Historical/diagnostic layer (DESIGN.md §13); each piece is null
  /// when its option is off.
  std::unique_ptr<obs::TimeSeriesStore> timeseries_;
  /// Private span sink for the warehouse batch pipeline while
  /// profiling: written only by the maintenance thread (and the pool
  /// workers it joins), folded + cleared per drain, so spans() reads in
  /// ApplyItems are quiesced by construction.
  std::unique_ptr<obs::Tracer> profile_tracer_;
  std::unique_ptr<obs::Profiler> profiler_;
  std::unique_ptr<obs::AnomalyDetector> detector_;
  std::unique_ptr<obs::FlightRecorder> recorder_;

  /// Serializes Append (sequence assignment + WAL append + enqueue) and
  /// is held across Checkpoint/WithWriter to fence out producers.
  std::mutex wal_mu_;
  std::unique_ptr<WalWriter> wal_;
  std::atomic<uint64_t> last_seq_{0};

  IngestQueue queue_;

  /// Owned by the maintenance thread between WaitAndTake and the
  /// state_mu_ release that publishes applied_seq_; owned by Checkpoint
  /// and WithWriter after they hold wal_mu_ and observe
  /// applied_seq_ == last_seq_.
  warehouse::Warehouse warehouse_;

  /// The sharded refresh pipeline over warehouse_; null when
  /// Options::num_shards == 0. Owned by whoever owns warehouse_ at the
  /// time (maintenance thread / Checkpoint / WithWriter).
  std::unique_ptr<shard::ShardedMaintenance> sharded_;

  VersionedTables versioned_;

  mutable std::mutex state_mu_;
  std::condition_variable state_cv_;
  uint64_t applied_seq_ = 0;
  uint64_t checkpoint_seq_ = 0;
  /// Epoch numbering floor: MaxEpoch() of the ship stream at Open, so a
  /// restarted writer never reuses an epoch number replicas saw.
  uint64_t epoch_base_ = 0;
  uint64_t batches_ = 0;
  uint64_t checkpoints_ = 0;
  uint64_t recovered_records_ = 0;
  double last_refresh_window_ = 0;
  warehouse::BatchReport last_report_;
  bool stopped_ = false;

  /// Batch correlation id; owned by the maintenance thread (one drain
  /// at a time), read via Stats under state_mu_ (last_batch_id_).
  uint64_t next_batch_id_ = 0;
  uint64_t last_batch_id_ = 0;  ///< guarded by state_mu_

  /// True from just before the thread spawns (set in the constructor,
  /// ahead of any scrape) until MaintenanceLoop exits (the /healthz
  /// check).
  std::atomic<bool> maintenance_alive_{false};

  std::unique_ptr<obs::HttpEndpoint> http_;

  /// Serializes Stop against concurrent Stop/destructor.
  std::mutex stop_mu_;
  std::thread maintenance_;
};

}  // namespace sdelta::service

#endif  // SDELTA_SERVICE_SERVICE_H_
