#include "exec/parallel_for.h"

namespace sdelta::exec {

MorselPlan MorselPlan::For(size_t n, size_t min_rows) {
  MorselPlan plan;
  if (n == 0) return plan;
  if (min_rows == 0) min_rows = 1;
  size_t count = (n + min_rows - 1) / min_rows;
  count = std::min(count, kMaxMorselsPerLoop);
  const size_t base = n / count;
  const size_t extra = n % count;  // first `extra` morsels get one more row
  plan.morsels.reserve(count);
  size_t begin = 0;
  for (size_t i = 0; i < count; ++i) {
    const size_t len = base + (i < extra ? 1 : 0);
    plan.morsels.push_back(Morsel{begin, begin + len});
    begin += len;
  }
  return plan;
}

size_t ParallelFor(ThreadPool* pool, size_t n, size_t min_rows,
                   const std::function<void(size_t, size_t, size_t)>& fn) {
  return ParallelFor(pool, MorselPlan::For(n, min_rows), fn);
}

size_t ParallelFor(ThreadPool* pool, const MorselPlan& plan,
                   const std::function<void(size_t, size_t, size_t)>& fn) {
  if (plan.morsels.empty()) return 0;
  if (pool == nullptr || plan.morsels.size() == 1) {
    for (size_t i = 0; i < plan.morsels.size(); ++i) {
      fn(plan.morsels[i].begin, plan.morsels[i].end, i);
    }
    return plan.morsels.size();
  }
  pool->NoteMorsels(plan.morsels.size());
  TaskGroup group(pool);
  for (size_t i = 0; i < plan.morsels.size(); ++i) {
    const Morsel m = plan.morsels[i];
    group.Spawn([&fn, m, i] { fn(m.begin, m.end, i); });
  }
  group.Wait();
  return plan.morsels.size();
}

}  // namespace sdelta::exec
