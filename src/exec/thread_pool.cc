#include "exec/thread_pool.h"

#include <chrono>

namespace sdelta::exec {
namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ThreadPool::ThreadPool(size_t num_workers) {
  if (num_workers > 0) {
    worker_busy_ns_ = std::make_unique<std::atomic<uint64_t>[]>(num_workers);
  }
  workers_.reserve(num_workers);
  for (size_t i = 0; i < num_workers; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::scoped_lock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
  // Orphaned tasks in the queue would mean a TaskGroup outlived its
  // pool, which the API forbids; drain defensively so std::function
  // destructors still run.
  queue_.clear();
}

PoolStats ThreadPool::StatsSnapshot() const {
  PoolStats s;
  s.tasks_scheduled = tasks_scheduled_.load(std::memory_order_relaxed);
  s.tasks_executed = tasks_executed_.load(std::memory_order_relaxed);
  s.tasks_helped = tasks_helped_.load(std::memory_order_relaxed);
  s.morsels_scheduled = morsels_scheduled_.load(std::memory_order_relaxed);
  s.busy_ns = busy_ns_.load(std::memory_order_relaxed);
  s.worker_busy_ns.reserve(workers_.size());
  for (size_t i = 0; i < workers_.size(); ++i) {
    s.worker_busy_ns.push_back(
        worker_busy_ns_[i].load(std::memory_order_relaxed));
  }
  s.helper_busy_ns = helper_busy_ns_.load(std::memory_order_relaxed);
  return s;
}

size_t ThreadPool::ResolveThreads(size_t requested) {
  if (requested != 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

void ThreadPool::Submit(std::function<void()> fn, TaskGroup* group) {
  tasks_scheduled_.fetch_add(1, std::memory_order_relaxed);
  {
    std::scoped_lock lock(mu_);
    queue_.push_back(Task{std::move(fn), group});
  }
  work_cv_.notify_one();
}

bool ThreadPool::RunOneQueued(bool helping) {
  Task task;
  {
    std::scoped_lock lock(mu_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  Execute(std::move(task), helping, kHelperContext);
  return true;
}

void ThreadPool::Execute(Task task, bool helping, size_t worker_index) {
  const uint64_t start = NowNs();
  std::exception_ptr error;
  try {
    task.fn();
  } catch (...) {
    error = std::current_exception();
  }
  const uint64_t elapsed = NowNs() - start;
  busy_ns_.fetch_add(elapsed, std::memory_order_relaxed);
  if (worker_index == kHelperContext) {
    helper_busy_ns_.fetch_add(elapsed, std::memory_order_relaxed);
  } else {
    worker_busy_ns_[worker_index].fetch_add(elapsed,
                                            std::memory_order_relaxed);
  }
  (helping ? tasks_helped_ : tasks_executed_)
      .fetch_add(1, std::memory_order_relaxed);
  if (task.group != nullptr) task.group->OnTaskDone(error);
}

void ThreadPool::WorkerLoop(size_t worker_index) {
  for (;;) {
    Task task;
    {
      std::unique_lock lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    Execute(std::move(task), /*helping=*/false, worker_index);
  }
}

TaskGroup::~TaskGroup() {
  if (waited_) return;
  try {
    Wait();
  } catch (...) {
    // Scope is unwinding on another exception; the group's own error is
    // dropped, but every task has still run to completion.
  }
}

void TaskGroup::Spawn(std::function<void()> fn) {
  if (pool_ == nullptr) {
    inline_tasks_.push_back(std::move(fn));
    return;
  }
  pending_.fetch_add(1, std::memory_order_acq_rel);
  pool_->Submit(std::move(fn), this);
}

void TaskGroup::OnTaskDone(std::exception_ptr error) {
  // The decrement and the notify stay under done_mu_: once pending_
  // hits 0 the waiter may return from Wait() and destroy this group,
  // so nothing here may touch members after releasing the lock.
  // (Wait() re-acquires done_mu_ before returning, which serializes
  // destruction after this critical section.)
  std::scoped_lock lock(done_mu_);
  if (error && !first_error_) first_error_ = std::move(error);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    done_cv_.notify_all();
  }
}

void TaskGroup::Wait() {
  waited_ = true;
  if (pool_ == nullptr) {
    // Pure-inline group: run deferred tasks in spawn order.
    for (auto& fn : inline_tasks_) {
      try {
        fn();
      } catch (...) {
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
    inline_tasks_.clear();
  } else {
    // Help: execute queued tasks (ours or anyone's) until our own are
    // all done.  Helping arbitrary tasks is what makes nested fork/join
    // deadlock-free — every thread blocked in Wait() drains the queue.
    while (pending_.load(std::memory_order_acquire) > 0) {
      if (!pool_->RunOneQueued(/*helping=*/true)) {
        // Queue empty but our tasks still running on workers; block
        // until one of them completes, then re-check. The timeout is a
        // helpfulness bound, not correctness: a task enqueued after the
        // RunOneQueued miss notifies work_cv_, not done_cv_, and the
        // periodic wake lets this thread help with it.
        std::unique_lock lock(done_mu_);
        done_cv_.wait_for(lock, std::chrono::milliseconds(1), [this] {
          return pending_.load(std::memory_order_acquire) == 0;
        });
      }
    }
    // A worker that just dropped pending_ to 0 may still be inside
    // OnTaskDone holding done_mu_; acquiring it once guarantees that
    // critical section finished before the caller may destroy us.
    { std::scoped_lock lock(done_mu_); }
  }
  if (first_error_) {
    std::exception_ptr e;
    std::swap(e, first_error_);
    std::rethrow_exception(e);
  }
}

}  // namespace sdelta::exec
