// Morsel decomposition and data-parallel loops over row ranges.
//
// Determinism contract: MorselPlan::For depends only on the element
// count and the minimum morsel size — never on the pool, the thread
// count, or runtime timing.  Operators that emit one output chunk per
// morsel and concatenate chunks in morsel order therefore produce
// byte-identical results at every thread count, and the exec.morsels
// counter is identical for every parallel configuration of the same
// workload.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "exec/thread_pool.h"

namespace sdelta::exec {

// Default minimum rows per morsel.  Small enough that the retail
// workloads split into many morsels, large enough that per-morsel
// overhead (one std::function dispatch + one chunk allocation) stays
// negligible next to per-row work.
inline constexpr size_t kDefaultMorselRows = 4096;

// Cap on morsels per loop so tiny min_rows on huge inputs cannot
// explode task counts; 64 comfortably exceeds any realistic core count
// for this system.
inline constexpr size_t kMaxMorselsPerLoop = 64;

struct Morsel {
  size_t begin = 0;
  size_t end = 0;  // half-open
};

struct MorselPlan {
  std::vector<Morsel> morsels;

  // Split [0, n) into at most kMaxMorselsPerLoop contiguous ranges of
  // at least min_rows each (the final morsel absorbs the remainder).
  // Pure function of (n, min_rows).
  static MorselPlan For(size_t n, size_t min_rows = kDefaultMorselRows);
};

// Run fn(begin, end, morsel_index) over every morsel of the plan.
// Runs serially (in morsel order, on the calling thread) when pool is
// null or the plan has at most one morsel; otherwise forks one task per
// morsel and joins.  Returns the number of morsels (0 when n == 0).
// Callers that need per-morsel output slots compute the plan first,
// size their slot vector from it, and pass the plan in.
size_t ParallelFor(ThreadPool* pool, const MorselPlan& plan,
                   const std::function<void(size_t, size_t, size_t)>& fn);

// Convenience: morselize [0, n) and run.
size_t ParallelFor(ThreadPool* pool, size_t n, size_t min_rows,
                   const std::function<void(size_t, size_t, size_t)>& fn);

}  // namespace sdelta::exec
