// Operator-level accounting for the relational operators.
//
// An OperatorStats instance is owned by one logical pipeline (a
// propagate plan step, a refresh, a test); the relational operators take
// a nullable pointer to it and record rows in/out, morsel counts, join
// build/probe sizes, and wall time per invocation.  It is a plain
// struct, not an atomic bundle: every field is written by the thread
// that *invoked* the operator (morsel tasks running on pool workers
// never touch it — the operator records totals after its fork/join
// completes), so one instance per concurrent plan step is race-free.
//
// Everything except wall_seconds is a pure function of operator inputs
// (morsel plans are computed from input sizes alone), so these counts
// are byte-identical across thread counts and feed deterministic
// explain output; wall_seconds is measurement and is excluded from
// deterministic renderings.
#pragma once

#include <cstdint>

namespace sdelta::exec {

/// Accounting for all invocations of one operator kind.
struct OperatorCounters {
  uint64_t calls = 0;
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t morsels = 0;     // morsels in the operator's parallel plan(s)
  uint64_t batches = 0;     // column batches scanned/emitted (each morsel
                            // range is one batch through the vectorized
                            // operators; a pure function of input sizes,
                            // so thread-count-invariant like morsels)
  double wall_seconds = 0;  // non-deterministic; excluded from golden output

  void MergeFrom(const OperatorCounters& other) {
    calls += other.calls;
    rows_in += other.rows_in;
    rows_out += other.rows_out;
    morsels += other.morsels;
    batches += other.batches;
    wall_seconds += other.wall_seconds;
  }
};

/// One accounting bundle per pipeline, covering the five relational
/// operators. For HashJoin, rows_in counts probe+build and the
/// build/probe split is broken out separately.
struct OperatorStats {
  OperatorCounters select;
  OperatorCounters project;
  OperatorCounters hash_join;
  OperatorCounters group_by;
  OperatorCounters union_all;
  uint64_t join_build_rows = 0;  // rows hashed into build tables
  uint64_t join_probe_rows = 0;  // rows streamed through probes

  // Key-encoding accounting (GroupBy + HashJoin). packed/fallback row
  // counts tally each input row exactly once (at morsel accumulation,
  // never at partial-table merge), so they stay byte-identical across
  // thread counts like the row counters above. The probe fields are NOT
  // thread-count-invariant (merge probes depend on the morsel split);
  // they feed the hash.probe_len histogram only, never counters.
  uint64_t key_packed_rows = 0;    // rows whose key took the packed path
  uint64_t key_fallback_rows = 0;  // rows that escaped to boxed GroupKeys
  uint64_t key_probe_ops = 0;      // flat-map probes on packed indexes
  uint64_t key_probe_steps = 0;    // slots inspected across those probes

  uint64_t total_calls() const {
    return select.calls + project.calls + hash_join.calls + group_by.calls +
           union_all.calls;
  }

  void MergeFrom(const OperatorStats& other) {
    select.MergeFrom(other.select);
    project.MergeFrom(other.project);
    hash_join.MergeFrom(other.hash_join);
    group_by.MergeFrom(other.group_by);
    union_all.MergeFrom(other.union_all);
    join_build_rows += other.join_build_rows;
    join_probe_rows += other.join_probe_rows;
    key_packed_rows += other.key_packed_rows;
    key_fallback_rows += other.key_fallback_rows;
    key_probe_ops += other.key_probe_ops;
    key_probe_steps += other.key_probe_steps;
  }
};

/// Visits each operator's counters with its canonical short name, in a
/// fixed order — shared by the metric emitters and explain renderers so
/// names never drift.
template <typename Fn>
void ForEachOperator(const OperatorStats& stats, Fn&& fn) {
  fn("select", stats.select);
  fn("project", stats.project);
  fn("hash_join", stats.hash_join);
  fn("group_by", stats.group_by);
  fn("union_all", stats.union_all);
}

}  // namespace sdelta::exec
