// Fixed-size thread pool with a helping fork/join TaskGroup.
//
// The pool is the execution backbone for morsel-driven operators
// (relational layer) and wave-scheduled D-lattice propagation (lattice
// layer).  Design constraints, in order of importance:
//
//  1. Determinism of *results* — the pool never decides what work
//     exists or how it is split, only which thread runs it.  Work
//     decomposition (morselization, wave membership) is computed by the
//     caller from input sizes alone, so byte-identical output across
//     thread counts is the caller's contract and the pool cannot break
//     it.
//  2. No deadlock under nesting — a task running on a pool worker may
//     itself fork a TaskGroup onto the same pool (e.g. a propagate step
//     calling a parallel GroupBy).  TaskGroup::Wait() therefore *helps*:
//     while its own tasks are unfinished the waiter pops and executes
//     queued tasks instead of blocking, so every blocked thread makes
//     global progress.
//  3. Observability — scheduling counters are kept as atomics and
//     exposed via StatsSnapshot(); the warehouse diffs snapshots around
//     each phase and emits them as exec.* metrics.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace sdelta::exec {

// Monotonic scheduling counters.  Snapshots are cheap (relaxed loads);
// callers diff two snapshots to attribute work to a phase.
struct PoolStats {
  uint64_t tasks_scheduled = 0;    // tasks handed to Submit()
  uint64_t tasks_executed = 0;     // tasks run by pool workers
  uint64_t tasks_helped = 0;       // tasks run by a waiter inside Wait()
  uint64_t morsels_scheduled = 0;  // morsels dispatched by ParallelFor
  uint64_t busy_ns = 0;            // wall ns threads spent inside tasks
  // Per-execution-context split of busy_ns: one entry per pool worker
  // (index = worker id), plus the time helping threads spent running
  // tasks inside Wait().  busy_ns == sum(worker_busy_ns) + helper_busy_ns.
  std::vector<uint64_t> worker_busy_ns;
  uint64_t helper_busy_ns = 0;
};

class TaskGroup;

class ThreadPool {
 public:
  // Spawns `num_workers` threads.  `num_workers == 0` is valid: the pool
  // holds no threads and every TaskGroup task runs inline in Wait() —
  // useful for tests exercising the helping path deterministically.
  explicit ThreadPool(size_t num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_workers() const { return workers_.size(); }

  // Number of execution contexts a fork/join over this pool can use:
  // the workers plus the calling (helping) thread.
  size_t parallelism() const { return workers_.size() + 1; }

  PoolStats StatsSnapshot() const;

  // Attribution hook for ParallelFor: records morsels dispatched through
  // this pool. tasks_scheduled/tasks_executed/tasks_helped splits vary
  // with timing, but tasks_scheduled and morsels_scheduled depend only
  // on the work decomposition — they are the exec.* *counters*; the
  // execution split and busy_ns feed gauges only.
  void NoteMorsels(uint64_t n) {
    morsels_scheduled_.fetch_add(n, std::memory_order_relaxed);
  }

  // Resolve a user-facing thread-count option: 0 means "all hardware
  // threads" (never less than 1).
  static size_t ResolveThreads(size_t requested);

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group = nullptr;
  };

  void Submit(std::function<void()> fn, TaskGroup* group);
  // Pop-and-run one queued task; returns false if the queue was empty.
  // `helping` selects which counter the execution is attributed to.
  bool RunOneQueued(bool helping);
  void WorkerLoop(size_t worker_index);
  // `worker_index` attributes busy time; pass kHelperContext for
  // executions on a helping (non-worker) thread.
  static constexpr size_t kHelperContext = static_cast<size_t>(-1);
  void Execute(Task task, bool helping, size_t worker_index);

  std::vector<std::thread> workers_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<Task> queue_;
  bool shutdown_ = false;

  std::atomic<uint64_t> tasks_scheduled_{0};
  std::atomic<uint64_t> tasks_executed_{0};
  std::atomic<uint64_t> tasks_helped_{0};
  std::atomic<uint64_t> morsels_scheduled_{0};
  std::atomic<uint64_t> busy_ns_{0};
  // One busy-time slot per worker (allocated before the threads spawn,
  // never resized) plus one for all helping threads combined.
  std::unique_ptr<std::atomic<uint64_t>[]> worker_busy_ns_;
  std::atomic<uint64_t> helper_busy_ns_{0};
};

// Scoped fork/join.  Spawn() enqueues onto the pool; Wait() helps run
// queued tasks until every task spawned through this group has finished,
// then rethrows the first captured exception (subsequent ones are
// dropped; all tasks still run to completion so partial-output state is
// never observed by the caller).
//
// A TaskGroup must be waited before destruction; if Wait() was never
// reached (e.g. the scope unwound on an exception) the destructor joins
// all tasks but swallows their errors — the in-flight exception wins.
// Groups are stack-scoped and must not outlive their pool.
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool* pool) : pool_(pool) {}
  ~TaskGroup();

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  // Fork `fn`.  With a null or zero-worker pool the task is deferred to
  // Wait(); it never runs inline inside Spawn(), so spawn order ==
  // queue order always holds.
  void Spawn(std::function<void()> fn);

  // Join: help the pool until all of this group's tasks completed, then
  // rethrow the first exception thrown by any of them.
  void Wait();

 private:
  friend class ThreadPool;

  void OnTaskDone(std::exception_ptr error);

  ThreadPool* pool_;  // may be null (pure-inline group)
  std::vector<std::function<void()>> inline_tasks_;  // used when pool_ is null
  std::atomic<size_t> pending_{0};
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  std::exception_ptr first_error_;
  bool waited_ = false;
};

}  // namespace sdelta::exec
