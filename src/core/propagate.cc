#include "core/propagate.h"

#include <stdexcept>
#include <unordered_set>

#include "core/prepare_changes.h"

namespace sdelta::core {

using rel::Expression;
using rel::Table;

void PropagateStats::EmitTo(obs::MetricsRegistry& metrics) const {
  metrics.Add("propagate.rows_scanned", prepared_tuples);
  metrics.Add("propagate.delta_rows", delta_groups);
  if (preaggregated) metrics.Add("propagate.preaggregated");
  exec::ForEachOperator(ops, [&](const char* name,
                                 const exec::OperatorCounters& c) {
    if (c.calls == 0) return;
    const std::string prefix = std::string("op.") + name;
    metrics.Add(prefix + ".calls", c.calls);
    metrics.Add(prefix + ".rows_in", c.rows_in);
    metrics.Add(prefix + ".rows_out", c.rows_out);
    metrics.Add(prefix + ".morsels", c.morsels);
    metrics.Add(prefix + ".batches", c.batches);
    metrics.Observe(prefix + ".seconds", c.wall_seconds);
  });
  if (ops.hash_join.calls > 0) {
    metrics.Add("op.hash_join.build_rows", ops.join_build_rows);
    metrics.Add("op.hash_join.probe_rows", ops.join_probe_rows);
  }
  // Key-encoding traffic. The row counters are thread-count-invariant
  // (tallied once per input row); probe lengths depend on the morsel
  // split, so they only ever feed a histogram.
  if (ops.key_packed_rows + ops.key_fallback_rows > 0) {
    metrics.Add("key.packed_rows", ops.key_packed_rows);
    metrics.Add("key.fallback_rows", ops.key_fallback_rows);
  }
  if (ops.key_probe_ops > 0) {
    metrics.Observe("hash.probe_len",
                    static_cast<double>(ops.key_probe_steps) /
                        static_cast<double>(ops.key_probe_ops));
  }
}

std::vector<rel::AggregateSpec> DeltaAggregates(const AugmentedView& view) {
  std::vector<rel::AggregateSpec> specs;
  specs.reserve(view.physical.aggregates.size());
  for (const rel::AggregateSpec& a : view.physical.aggregates) {
    switch (a.kind) {
      case rel::AggregateKind::kCountStar:
      case rel::AggregateKind::kCount:
      case rel::AggregateKind::kSum:
        specs.push_back(rel::Sum(Expression::Column(a.output_name),
                                 a.output_name));
        break;
      case rel::AggregateKind::kMin:
        specs.push_back(rel::Min(Expression::Column(a.output_name),
                                 a.output_name));
        break;
      case rel::AggregateKind::kMax:
        specs.push_back(rel::Max(Expression::Column(a.output_name),
                                 a.output_name));
        break;
      case rel::AggregateKind::kAvg:
        throw std::logic_error("AVG in physical view " + view.name());
    }
  }
  return specs;
}

namespace {

/// The taint aggregate over a prepare-changes relation: 1 if any row of
/// the group carries a negative COUNT(*) source (i.e. stems from a
/// deletion), else 0.
rel::AggregateSpec TaintFromSources(const AugmentedView& view) {
  return rel::Max(
      Expression::Lt(Expression::Column(view.count_star_column),
                     Expression::Literal(rel::Value::Int64(0))),
      kTaintedColumn);
}

/// True when every referenced column lives in the fact table (resolvable
/// in the fact table's qualified schema).
bool FactOnly(const rel::Schema& fact_qualified,
              const std::vector<std::string>& columns) {
  for (const std::string& c : columns) {
    try {
      if (!fact_qualified.TryResolve(c).has_value()) return false;
    } catch (const std::invalid_argument&) {
      return false;  // ambiguous — treat as not fact-only
    }
  }
  return true;
}

/// Whether the §4.1.3 pre-aggregation rewrite is legal for this view and
/// change set.
bool PreaggregationLegal(const rel::Catalog& catalog,
                         const AugmentedView& view, const ChangeSet& changes) {
  for (const auto& [dim, delta] : changes.dimensions) {
    if (!delta.empty()) return false;
  }
  const ViewDef& def = view.physical;
  if (def.joins.empty()) return false;  // nothing to gain
  const rel::Schema fact_qualified =
      catalog.GetTable(def.fact_table).schema().Qualified(def.fact_table);
  if (def.where.has_value() &&
      !FactOnly(fact_qualified, def.where->ReferencedColumns())) {
    return false;
  }
  for (const rel::AggregateSpec& a : def.aggregates) {
    if (a.argument.has_value() &&
        !FactOnly(fact_qualified, a.argument->ReferencedColumns())) {
      return false;
    }
  }
  return true;
}

/// The §4.1.3 path: project+aggregate the fact delta on fact-level
/// columns, then join dimensions and re-aggregate to the view's groups.
Table PreaggregatedDelta(const rel::Catalog& catalog,
                         const AugmentedView& view, const ChangeSet& changes,
                         exec::ThreadPool* pool, size_t size_hint,
                         PropagateStats* stats) {
  exec::OperatorStats* ops = stats == nullptr ? nullptr : &stats->ops;
  const ViewDef& def = view.physical;
  const rel::Schema fact_qualified =
      catalog.GetTable(def.fact_table).schema().Qualified(def.fact_table);

  // Fact-level grouping: fact-resident group-bys keep their bare names;
  // dimension-resident group-bys are replaced by the FK column of the
  // join that provides them.
  std::vector<std::string> fact_groups;
  std::unordered_set<std::string> seen;
  std::vector<size_t> joins_needed;  // indexes into def.joins
  for (const std::string& g : def.group_by) {
    if (fact_qualified.TryResolve(g).has_value()) {
      if (seen.insert(rel::BareName(g)).second) fact_groups.push_back(g);
      continue;
    }
    // Find the providing dimension join.
    bool found = false;
    for (size_t i = 0; i < def.joins.size(); ++i) {
      const rel::Schema& dim = catalog.GetTable(def.joins[i].dim_table)
                                   .schema();
      if (dim.IndexOf(rel::BareName(g)).has_value()) {
        if (seen.insert(def.joins[i].fact_column).second) {
          fact_groups.push_back(def.fact_table + "." +
                                def.joins[i].fact_column);
        }
        bool already = false;
        for (size_t k : joins_needed) already |= (k == i);
        if (!already) joins_needed.push_back(i);
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::logic_error("group-by attribute " + g +
                             " not found in fact or dimension tables of " +
                             def.name);
    }
  }
  // FK columns referenced by needed joins must survive the projection
  // even when they are not view group-bys (handled above via seen-set).

  // Stage 1: prepare + aggregate over the bare fact delta (no joins).
  AugmentedView fact_stage = view;
  fact_stage.physical.joins.clear();
  fact_stage.physical.group_by = fact_groups;
  ChangeSet fact_changes;
  fact_changes.fact_table = changes.fact_table;
  // Share the underlying tables by copying (tables are cheap to copy at
  // change-set sizes).
  fact_changes.fact = changes.fact;
  Table pc = PrepareChanges(catalog, fact_stage, fact_changes, pool, ops);
  if (stats != nullptr) stats->prepared_tuples = pc.NumRows();
  // pc columns carry bare names; group by the bare forms.
  std::vector<std::string> bare_fact_groups;
  for (const std::string& g : fact_groups) {
    bare_fact_groups.push_back(rel::BareName(g));
  }
  std::vector<rel::AggregateSpec> stage1 = DeltaAggregates(view);
  stage1.push_back(TaintFromSources(view));
  Table sd_fact =
      rel::GroupBy(pc, rel::GroupCols(bare_fact_groups), stage1, pool, ops);

  // Stage 2: join the needed dimensions onto the pre-aggregated delta.
  Table current = std::move(sd_fact);
  for (size_t i : joins_needed) {
    const DimensionJoin& j = def.joins[i];
    current = rel::HashJoin(current, catalog.GetTable(j.dim_table),
                            {{j.fact_column, j.dim_column}}, j.dim_table,
                            /*drop_right_keys=*/true, pool, ops);
  }

  // Stage 3: re-aggregate to the view's group-by columns. Re-aggregation
  // uses the same delta aggregates: SUM of partial sums, MIN of partial
  // minima, ...
  std::vector<rel::GroupByColumn> final_groups;
  for (const std::string& g : def.group_by) {
    final_groups.push_back(rel::GroupByColumn{rel::BareName(g), ""});
  }
  std::vector<rel::AggregateSpec> stage3 = DeltaAggregates(view);
  stage3.push_back(
      rel::Max(Expression::Column(kTaintedColumn), kTaintedColumn));
  Table out =
      rel::GroupBy(current, final_groups, stage3, pool, ops, size_hint);
  out.SetName("sd_" + def.name);
  return out;
}

}  // namespace

rel::Table ComputeSummaryDelta(const rel::Catalog& catalog,
                               const AugmentedView& view,
                               const ChangeSet& changes,
                               const PropagateOptions& options,
                               PropagateStats* stats) {
  obs::TraceSpan span(options.tracer, "sd.compute");
  span.Attr("view", view.name());
  PropagateStats local;
  Table out = [&] {
    if (options.preaggregate && PreaggregationLegal(catalog, view, changes)) {
      local.preaggregated = true;
      return PreaggregatedDelta(catalog, view, changes, options.pool,
                                options.delta_size_hint, &local);
    }
    Table pc = PrepareChanges(catalog, view, changes, options.pool,
                              &local.ops);
    local.prepared_tuples = pc.NumRows();
    std::vector<rel::GroupByColumn> groups;
    for (const std::string& g : view.physical.group_by) {
      groups.push_back(rel::GroupByColumn{rel::BareName(g), ""});
    }
    std::vector<rel::AggregateSpec> specs = DeltaAggregates(view);
    specs.push_back(TaintFromSources(view));
    Table grouped = rel::GroupBy(pc, groups, specs, options.pool, &local.ops,
                                 options.delta_size_hint);
    grouped.SetName("sd_" + view.name());
    return grouped;
  }();
  local.delta_groups = out.NumRows();
  span.Attr("prepared_tuples", static_cast<uint64_t>(local.prepared_tuples));
  span.Attr("delta_rows", static_cast<uint64_t>(local.delta_groups));
  span.Attr("preaggregated", local.preaggregated);
  if (options.metrics != nullptr) local.EmitTo(*options.metrics);
  if (stats != nullptr) *stats = local;
  return out;
}

std::string DerivationRecipe::ToString() const {
  std::string s = child_name + " <= " + parent_name;
  if (!joins.empty()) {
    s += " [join:";
    for (const DimensionJoin& j : joins) s += " " + j.dim_table;
    s += "]";
  }
  return s;
}

rel::Table ApplyDerivation(const rel::Catalog& catalog,
                           const DerivationRecipe& recipe,
                           const rel::Table& parent_rows,
                           exec::ThreadPool* pool, exec::OperatorStats* stats,
                           size_t size_hint) {
  // The operators only read their inputs, so the join chain can start
  // from `parent_rows` in place — no upfront copy.
  const Table* current = &parent_rows;
  Table owned;
  for (const DimensionJoin& j : recipe.joins) {
    owned = rel::HashJoin(*current, catalog.GetTable(j.dim_table),
                          {{j.fact_column, j.dim_column}}, j.dim_table,
                          /*drop_right_keys=*/true, pool, stats);
    current = &owned;
  }
  // Propagate the hidden taint marker down D-lattice edges (it is absent
  // when the recipe runs over materialized view rows — the V-side).
  std::vector<rel::AggregateSpec> specs = recipe.aggregates;
  if (parent_rows.schema().IndexOf(kTaintedColumn).has_value()) {
    specs.push_back(
        rel::Max(Expression::Column(kTaintedColumn), kTaintedColumn));
  }
  Table out =
      rel::GroupBy(*current, recipe.group_by, specs, pool, stats, size_hint);
  out.SetName("sd_" + recipe.child_name);
  return out;
}

}  // namespace sdelta::core
