#include "core/refresh.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "core/propagate.h"
#include "core/view_def.h"
#include "relational/flat_hash.h"
#include "relational/group_key.h"
#include "relational/operators.h"
#include "relational/packed_key.h"

namespace sdelta::core {

using rel::GroupKey;
using rel::Row;
using rel::Table;
using rel::Value;

namespace {

/// Column bookkeeping shared by both refresh strategies.
struct AggregateLayout {
  rel::AggregateKind kind;
  size_t index;            ///< column index in the physical row
  size_t companion_index;  ///< index of the COUNT(e) companion column
};

struct RefreshLayout {
  size_t num_groups;
  size_t arity;  ///< summary-table columns (delta rows may carry extras)
  size_t count_star_index;
  /// Index of the hidden kTaintedColumn in delta rows, or npos.
  size_t tainted_index = static_cast<size_t>(-1);
  bool has_minmax = false;
  std::vector<AggregateLayout> aggregates;

  /// Whether the delta group may contain deletion contributions. Deltas
  /// without the marker column (hand-built or legacy) are conservatively
  /// treated as tainted.
  bool Tainted(const Row& delta_row) const {
    if (tainted_index == static_cast<size_t>(-1)) return true;
    const Value& v = delta_row[tainted_index];
    return !v.is_null() && v.as_int64() != 0;
  }
};

RefreshLayout MakeLayout(const SummaryTable& view,
                         const rel::Table& summary_delta) {
  RefreshLayout layout;
  const AugmentedView& def = view.def();
  layout.num_groups = view.num_group_columns();
  layout.arity = view.schema().NumColumns();
  layout.count_star_index = view.schema().Resolve(def.count_star_column);
  if (auto idx = summary_delta.schema().IndexOf(kTaintedColumn)) {
    layout.tainted_index = *idx;
  }
  for (const rel::AggregateSpec& a : def.physical.aggregates) {
    AggregateLayout al;
    al.kind = a.kind;
    al.index = view.schema().Resolve(a.output_name);
    al.companion_index =
        view.schema().Resolve(def.companion_count.at(a.output_name));
    layout.has_minmax |= (a.kind == rel::AggregateKind::kMin ||
                          a.kind == rel::AggregateKind::kMax);
    layout.aggregates.push_back(al);
  }
  return layout;
}

int64_t AsCount(const Value& v) {
  if (v.is_null()) return 0;
  return v.as_int64();
}

Value AddIgnoringNull(const Value& a, const Value& b) {
  if (a.is_null()) return b;
  if (b.is_null()) return a;
  return Value::Add(a, b);
}

Value MinIgnoringNull(const Value& a, const Value& b) {
  if (a.is_null()) return b;
  if (b.is_null()) return a;
  return Value::Compare(a, b) <= 0 ? a : b;
}

Value MaxIgnoringNull(const Value& a, const Value& b) {
  if (a.is_null()) return b;
  if (b.is_null()) return a;
  return Value::Compare(a, b) >= 0 ? a : b;
}

/// Figure 7's recompute test for one summary tuple against one delta
/// tuple: does some MIN/MAX possibly need recomputation from base data?
bool NeedsRecompute(const RefreshLayout& layout, const Row& old_row,
                    const Row& delta_row) {
  for (const AggregateLayout& al : layout.aggregates) {
    if (al.kind != rel::AggregateKind::kMin &&
        al.kind != rel::AggregateKind::kMax) {
      continue;
    }
    const Value& old_m = old_row[al.index];
    const Value& delta_m = delta_row[al.index];
    if (old_m.is_null() || delta_m.is_null()) continue;
    const int64_t remaining = AsCount(old_row[al.companion_index]) +
                              AsCount(delta_row[al.companion_index]);
    if (remaining <= 0) continue;  // all values gone -> NULL, no recompute
    const int cmp = Value::Compare(delta_m, old_m);
    if (al.kind == rel::AggregateKind::kMin ? cmp <= 0 : cmp >= 0) {
      return true;
    }
  }
  return false;
}

/// Figure 7's in-place update: combines one summary row with one delta
/// row (no MIN/MAX recompute needed). Writes the result into `old_row`.
void UpdateInPlace(const RefreshLayout& layout, Row& old_row,
                   const Row& delta_row) {
  // Read all companion totals before any column is overwritten.
  std::vector<int64_t> companion_total(layout.aggregates.size());
  for (size_t i = 0; i < layout.aggregates.size(); ++i) {
    const AggregateLayout& al = layout.aggregates[i];
    companion_total[i] = AsCount(old_row[al.companion_index]) +
                         AsCount(delta_row[al.companion_index]);
  }
  std::vector<Value> new_values(layout.aggregates.size());
  for (size_t i = 0; i < layout.aggregates.size(); ++i) {
    const AggregateLayout& al = layout.aggregates[i];
    const Value& old_v = old_row[al.index];
    const Value& delta_v = delta_row[al.index];
    const bool is_count = al.kind == rel::AggregateKind::kCount ||
                          al.kind == rel::AggregateKind::kCountStar;
    if (companion_total[i] == 0) {
      // No values remain for this expression: COUNT columns read 0,
      // everything else reads NULL.
      new_values[i] = is_count ? Value::Int64(0) : Value::Null();
      continue;
    }
    switch (al.kind) {
      case rel::AggregateKind::kCountStar:
      case rel::AggregateKind::kCount:
      case rel::AggregateKind::kSum:
        new_values[i] = AddIgnoringNull(old_v, delta_v);
        break;
      case rel::AggregateKind::kMin:
        new_values[i] = MinIgnoringNull(old_v, delta_v);
        break;
      case rel::AggregateKind::kMax:
        new_values[i] = MaxIgnoringNull(old_v, delta_v);
        break;
      case rel::AggregateKind::kAvg:
        throw std::logic_error("AVG in physical summary table");
    }
  }
  for (size_t i = 0; i < layout.aggregates.size(); ++i) {
    old_row[layout.aggregates[i].index] = std::move(new_values[i]);
  }
}

/// Recomputes every group in `keys` (assumed distinct — summary-delta
/// keys are grouped) from the (already updated) base data in one
/// streaming pass over the fact table, writing the fresh rows into the
/// summary table. Returns rows scanned.
size_t BatchRecompute(const rel::Catalog& catalog, SummaryTable& view,
                      const std::vector<GroupKey>& keys,
                      RefreshStats* stats) {
  if (keys.empty()) return 0;
  const ViewDef& def = view.def().physical;
  const Table& fact = catalog.GetTable(def.fact_table);

  // Per-join lookup: dim key value -> dim row (FK joins are 1:1). The
  // single-column key packs through a codec over the dim key column —
  // probes then encode the fact FK value instead of boxing it into a
  // one-element GroupKey per fact row. NULLs encode to the codec's null
  // sentinel, preserving the historical NULL-matches-NULL behaviour of
  // this lookup (unlike HashJoin, which skips NULL keys).
  struct DimLookup {
    const Table* dim;
    size_t fact_col;  // index in fact schema
    size_t dim_key_col;
    std::vector<size_t> fact_key_idx;  // {fact_col}, for EncodeRow
    std::vector<size_t> dim_key_idx;   // {dim_key_col}, for EncodeRow
    std::vector<size_t> carried;  // non-key dim columns, in schema order
    rel::PackedKeyCodec codec;
    rel::FlatHashMap<rel::PackedKey, size_t, rel::PackedKeyHash> packed;
    std::unordered_map<GroupKey, size_t, rel::GroupKeyHash> boxed;
  };
  std::vector<DimLookup> dims;
  for (const DimensionJoin& j : def.joins) {
    DimLookup dl;
    dl.dim = &catalog.GetTable(j.dim_table);
    dl.fact_col = fact.schema().Resolve(j.fact_column);
    dl.dim_key_col = dl.dim->schema().Resolve(j.dim_column);
    dl.fact_key_idx = {dl.fact_col};
    dl.dim_key_idx = {dl.dim_key_col};
    for (size_t c = 0; c < dl.dim->schema().NumColumns(); ++c) {
      if (c != dl.dim_key_col) dl.carried.push_back(c);
    }
    dl.codec = rel::PackedKeyCodec::ForColumns(
        dl.dim->schema(), dl.dim_key_idx, [&catalog](const rel::Column& c) {
          return &catalog.dictionaries().ForColumn(c.name);
        });
    if (dl.codec.packable()) {
      dl.packed.Reserve(dl.dim->NumRows());
    } else {
      dl.boxed.reserve(dl.dim->NumRows());
    }
    for (size_t r = 0; r < dl.dim->NumRows(); ++r) {
      rel::PackedKey pk;
      const bool packed =
          dl.codec.packable() &&
          dl.codec.EncodeColumns(*dl.dim, dl.dim_key_idx, r,
                                 rel::PackedKeyCodec::StringMode::kIntern,
                                 &pk) ==
              rel::PackedKeyCodec::ColumnarEncode::kPacked;
      if (packed) {
        dl.packed.FindOrInsert(pk, r);  // keep-first, like emplace did
      } else {
        dl.boxed.emplace(GroupKey{dl.dim->ValueAt(r, dl.dim_key_col)}, r);
      }
    }
    dims.push_back(std::move(dl));
  }

  // Bind the view's names against the joined schema.
  const rel::Schema joined = JoinedSchema(catalog, def);
  std::vector<size_t> group_idx;
  for (const std::string& g : def.group_by) {
    group_idx.push_back(joined.Resolve(g));
  }
  std::vector<rel::BoundExpression> agg_args;
  for (const rel::AggregateSpec& a : def.aggregates) {
    if (a.argument.has_value()) {
      agg_args.push_back(a.argument->Bind(joined));
    } else {
      agg_args.emplace_back();
    }
  }
  std::optional<rel::BoundExpression> where;
  if (def.where.has_value()) where = def.where->Bind(joined);

  // Recompute set, keyed through the view's own codec (first-appearance
  // entries keep the original GroupKeys for the writeback below, in the
  // deterministic order of `keys`).
  const rel::PackedKeyCodec& vcodec = view.codec();
  rel::FlatHashMap<rel::PackedKey, size_t, rel::PackedKeyHash> gpacked;
  std::unordered_map<GroupKey, size_t, rel::GroupKeyHash> gboxed;
  std::vector<std::pair<GroupKey, std::vector<rel::Accumulator>>> entries;
  entries.reserve(keys.size());
  if (vcodec.packable()) {
    gpacked.Reserve(keys.size());
  } else {
    gboxed.reserve(keys.size());
  }
  for (const GroupKey& k : keys) {
    std::vector<rel::Accumulator> accs;
    for (const rel::AggregateSpec& a : def.aggregates) {
      accs.emplace_back(a.kind);
    }
    std::optional<rel::PackedKey> pk;
    if (vcodec.packable()) pk = vcodec.EncodeKey(k);
    if (pk.has_value()) {
      auto [slot, inserted] = gpacked.FindOrInsert(*pk, entries.size());
      if (inserted) entries.emplace_back(k, std::move(accs));
    } else {
      auto [it, inserted] = gboxed.emplace(k, entries.size());
      if (inserted) entries.emplace_back(k, std::move(accs));
    }
  }

  uint64_t packed_probes = 0;
  uint64_t fallback_probes = 0;
  size_t scanned = 0;
  const size_t fact_cols = fact.schema().NumColumns();
  Row joined_row;
  GroupKey key_scratch;
  for (size_t fr = 0; fr < fact.NumRows(); ++fr) {
    ++scanned;
    joined_row.clear();
    for (size_t c = 0; c < fact_cols; ++c) {
      joined_row.push_back(fact.ValueAt(fr, c));
    }
    bool matched = true;
    for (const DimLookup& dl : dims) {
      const size_t* pos = nullptr;
      rel::PackedKey pk;
      const bool packed =
          dl.codec.packable() &&
          dl.codec.EncodeColumns(fact, dl.fact_key_idx, fr,
                                 rel::PackedKeyCodec::StringMode::kIntern,
                                 &pk) ==
              rel::PackedKeyCodec::ColumnarEncode::kPacked;
      if (packed) {
        ++packed_probes;
        pos = dl.packed.Find(pk);
      } else {
        ++fallback_probes;
        key_scratch.clear();
        key_scratch.push_back(joined_row[dl.fact_col]);
        auto it = dl.boxed.find(key_scratch);
        if (it != dl.boxed.end()) pos = &it->second;
      }
      if (pos == nullptr) {
        matched = false;
        break;
      }
      for (size_t c : dl.carried) {
        joined_row.push_back(dl.dim->ValueAt(*pos, c));
      }
    }
    if (!matched) continue;
    if (where.has_value() && !where->EvalPredicate(joined_row)) continue;
    std::vector<rel::Accumulator>* accs = nullptr;
    std::optional<rel::PackedKey> pk;
    if (vcodec.packable()) pk = vcodec.EncodeRow(joined_row, group_idx);
    if (pk.has_value()) {
      ++packed_probes;
      const size_t* slot = gpacked.Find(*pk);
      if (slot != nullptr) accs = &entries[*slot].second;
    } else {
      ++fallback_probes;
      rel::ExtractKey(joined_row, group_idx, &key_scratch);
      auto it = gboxed.find(key_scratch);
      if (it != gboxed.end()) accs = &entries[it->second].second;
    }
    if (accs == nullptr) continue;
    for (size_t i = 0; i < def.aggregates.size(); ++i) {
      if (def.aggregates[i].kind == rel::AggregateKind::kCountStar) {
        (*accs)[i].Add(Value::Null());
      } else {
        (*accs)[i].Add(agg_args[i].Eval(joined_row));
      }
    }
  }
  if (stats != nullptr) {
    stats->key_packed_ops += packed_probes;
    stats->key_fallback_ops += fallback_probes;
  }

  for (auto& [key, accs] : entries) {
    Row fresh = key;
    bool any_rows = false;
    for (size_t i = 0; i < accs.size(); ++i) {
      Value v = accs[i].Result();
      if (def.aggregates[i].kind == rel::AggregateKind::kCountStar &&
          !v.is_null() && v.as_int64() > 0) {
        any_rows = true;
      }
      fresh.push_back(std::move(v));
    }
    Row* row = view.FindMutable(key);
    if (!any_rows) {
      // The group vanished from base data; a consistent delta would have
      // deleted it via COUNT(*), so treat as inconsistency.
      throw std::runtime_error(
          "refresh: recomputed group has no base rows in view " +
          view.name());
    }
    if (row == nullptr) {
      view.Insert(std::move(fresh));
    } else {
      *row = std::move(fresh);
    }
    if (stats != nullptr) ++stats->recomputed_groups;
  }
  return scanned;
}

RefreshStats RefreshCursor(const rel::Catalog& catalog, SummaryTable& view,
                           const Table& summary_delta,
                           const RefreshOptions& options) {
  RefreshStats stats;
  const RefreshLayout layout = MakeLayout(view, summary_delta);
  // Delta keys are grouped (distinct), so a plain vector is the
  // recompute set — in delta order, which keeps the batch-recompute
  // writeback deterministic.
  std::vector<GroupKey> recompute;
  GroupKey key;  // scratch, reused across delta rows

  for (size_t ti = 0; ti < summary_delta.NumRows(); ++ti) {
    const Row t = summary_delta.RowAt(ti);
    key.assign(t.begin(), t.begin() + layout.num_groups);
    Row* old_row = view.FindMutable(key);
    if (old_row == nullptr) {
      const int64_t count = AsCount(t[layout.count_star_index]);
      if (count < 0) {
        throw std::runtime_error(
            "refresh: delta deletes from non-existent group in view " +
            view.name());
      }
      if (count == 0) {
        // A net no-op for a group that never existed (e.g. a fact row
        // inserted while its dimension row moved away in the same
        // batch): every aggregate delta cancels; nothing to apply.
        continue;
      }
      if (layout.has_minmax && layout.Tainted(t)) {
        // A freshly appearing group whose delta mixes insertions and
        // deletions (dimension moves): the delta MIN/MAX may reflect
        // rows that did not survive — recompute from base data.
        recompute.push_back(std::move(key));
        continue;
      }
      view.Insert(Row(t.begin(), t.begin() + layout.arity));
      ++stats.inserted;
      continue;
    }
    const int64_t count_after = AsCount((*old_row)[layout.count_star_index]) +
                                AsCount(t[layout.count_star_index]);
    if (count_after < 0) {
      throw std::runtime_error(
          "refresh: COUNT(*) would go negative in view " + view.name());
    }
    if (count_after == 0) {
      view.Erase(key);
      ++stats.deleted;
      continue;
    }
    const bool may_have_deletions =
        !options.trust_untainted_minmax || layout.Tainted(t);
    if (may_have_deletions && NeedsRecompute(layout, *old_row, t)) {
      ++stats.minmax_recomputes;
      if (options.batch_minmax_recompute) {
        recompute.push_back(std::move(key));
      } else {
        std::vector<GroupKey> single;
        single.push_back(std::move(key));
        stats.recompute_scan_rows +=
            BatchRecompute(catalog, view, single, &stats);
      }
      continue;
    }
    UpdateInPlace(layout, *old_row, t);
    ++stats.updated;
  }

  stats.recompute_scan_rows += BatchRecompute(catalog, view, recompute,
                                              &stats);
  return stats;
}

RefreshStats RefreshMerge(const rel::Catalog& catalog, SummaryTable& view,
                          const Table& summary_delta,
                          const RefreshOptions& options) {
  RefreshStats stats;
  const RefreshLayout layout = MakeLayout(view, summary_delta);

  auto key_less = [&](const Row& a, const Row& b) {
    for (size_t i = 0; i < layout.num_groups; ++i) {
      const int c = Value::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return false;
  };

  std::vector<Row> old_rows(view.rows().begin(), view.rows().end());
  std::vector<Row> delta_rows = summary_delta.MaterializeRows();
  std::sort(old_rows.begin(), old_rows.end(), key_less);
  std::sort(delta_rows.begin(), delta_rows.end(), key_less);

  std::vector<Row> merged;
  merged.reserve(old_rows.size() + delta_rows.size());
  std::vector<GroupKey> recompute_keys;

  size_t i = 0;
  size_t j = 0;
  while (i < old_rows.size() || j < delta_rows.size()) {
    int order;
    if (i == old_rows.size()) {
      order = 1;
    } else if (j == delta_rows.size()) {
      order = -1;
    } else {
      order = key_less(old_rows[i], delta_rows[j])
                  ? -1
                  : (key_less(delta_rows[j], old_rows[i]) ? 1 : 0);
    }
    if (order < 0) {
      merged.push_back(std::move(old_rows[i++]));  // untouched group
    } else if (order > 0) {
      Row& t = delta_rows[j++];
      const int64_t count = AsCount(t[layout.count_star_index]);
      if (count < 0) {
        throw std::runtime_error(
            "refresh: delta deletes from non-existent group in view " +
            view.name());
      }
      if (count == 0) continue;  // net no-op for a never-existing group
      if (layout.has_minmax && layout.Tainted(t)) {
        recompute_keys.emplace_back(t.begin(),
                                    t.begin() + layout.num_groups);
        continue;  // recomputed (and inserted) from base data below
      }
      merged.push_back(Row(t.begin(), t.begin() + layout.arity));
      ++stats.inserted;
    } else {
      Row& old_row = old_rows[i++];
      const Row& t = delta_rows[j++];
      const int64_t count_after =
          AsCount(old_row[layout.count_star_index]) +
          AsCount(t[layout.count_star_index]);
      if (count_after < 0) {
        throw std::runtime_error(
            "refresh: COUNT(*) would go negative in view " + view.name());
      }
      if (count_after == 0) {
        ++stats.deleted;
        continue;  // drop the group
      }
      const bool may_have_deletions =
          !options.trust_untainted_minmax || layout.Tainted(t);
      if (may_have_deletions && NeedsRecompute(layout, old_row, t)) {
        ++stats.minmax_recomputes;
        recompute_keys.emplace_back(old_row.begin(),
                                    old_row.begin() + layout.num_groups);
        merged.push_back(std::move(old_row));  // placeholder; fixed below
        continue;
      }
      UpdateInPlace(layout, old_row, t);
      merged.push_back(std::move(old_row));
      ++stats.updated;
    }
  }

  Table rebuilt(view.schema(), view.name());
  rebuilt.Reserve(merged.size());
  for (Row& r : merged) rebuilt.Insert(std::move(r));
  view.LoadFrom(rebuilt);

  // Merge always batches MIN/MAX recomputation: the table was already
  // rewritten wholesale, so per-group scans would have no benefit.
  stats.recompute_scan_rows += BatchRecompute(catalog, view, recompute_keys,
                                              &stats);
  return stats;
}

}  // namespace

void RefreshStats::EmitTo(obs::MetricsRegistry& metrics) const {
  metrics.Add("refresh.inserts", inserted);
  metrics.Add("refresh.deletes", deleted);
  metrics.Add("refresh.updates", updated);
  metrics.Add("refresh.recomputed_groups", recomputed_groups);
  metrics.Add("refresh.recompute_scan_rows", recompute_scan_rows);
  metrics.Add("refresh.minmax_recomputes", minmax_recomputes);
  // Shared with propagate's per-operator key tallies, so the warehouse
  // can derive one batch-wide key.packed_ratio gauge.
  metrics.Add("key.packed_rows", key_packed_ops);
  metrics.Add("key.fallback_rows", key_fallback_ops);
}

RefreshStats Refresh(const rel::Catalog& catalog, SummaryTable& view,
                     const rel::Table& summary_delta,
                     const RefreshOptions& options) {
  const size_t arity = view.schema().NumColumns();
  const size_t delta_arity = summary_delta.schema().NumColumns();
  const bool has_taint =
      summary_delta.schema().IndexOf(kTaintedColumn).has_value();
  if (delta_arity != arity && !(has_taint && delta_arity == arity + 1)) {
    throw std::invalid_argument(
        "summary-delta arity does not match summary table " + view.name());
  }
  const uint64_t parent =
      options.parent_span != 0
          ? options.parent_span
          : (options.tracer != nullptr ? options.tracer->CurrentSpan() : 0);
  obs::TraceSpan span(options.tracer, "refresh.view", parent);
  span.Attr("view", view.name());
  span.Attr("strategy",
            options.strategy == RefreshStrategy::kCursor ? "cursor" : "merge");
  span.Attr("delta_rows", static_cast<uint64_t>(summary_delta.NumRows()));
  const uint64_t packed_before = view.packed_key_ops();
  const uint64_t fallback_before = view.fallback_key_ops();
  const rel::ProbeStats probes_before = view.probe_stats();
  RefreshStats stats;
  switch (options.strategy) {
    case RefreshStrategy::kCursor:
      stats = RefreshCursor(catalog, view, summary_delta, options);
      break;
    case RefreshStrategy::kMerge:
      stats = RefreshMerge(catalog, view, summary_delta, options);
      break;
  }
  // Fold this refresh's summary-table index traffic into the stats (the
  // dim-lookup and recompute-set probes were already counted inside
  // BatchRecompute).
  stats.key_packed_ops += view.packed_key_ops() - packed_before;
  stats.key_fallback_ops += view.fallback_key_ops() - fallback_before;
  if (options.metrics != nullptr) {
    const rel::ProbeStats probes_after = view.probe_stats();
    const uint64_t ops = probes_after.ops - probes_before.ops;
    if (ops > 0) {
      const uint64_t steps = probes_after.steps - probes_before.steps;
      options.metrics->Observe(
          "hash.probe_len",
          static_cast<double>(steps) / static_cast<double>(ops));
    }
  }
  span.Attr("updated", static_cast<uint64_t>(stats.updated));
  span.Attr("inserted", static_cast<uint64_t>(stats.inserted));
  span.Attr("deleted", static_cast<uint64_t>(stats.deleted));
  span.Attr("minmax_recomputes",
            static_cast<uint64_t>(stats.minmax_recomputes));
  if (options.metrics != nullptr) stats.EmitTo(*options.metrics);
  return stats;
}

}  // namespace sdelta::core
