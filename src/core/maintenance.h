#ifndef SDELTA_CORE_MAINTENANCE_H_
#define SDELTA_CORE_MAINTENANCE_H_

#include <chrono>
#include <string>

#include "core/delta.h"
#include "core/propagate.h"
#include "core/refresh.h"
#include "core/summary_table.h"

namespace sdelta::core {

/// A monotonic stopwatch used by the maintenance pipeline and benches.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Timing and counter report for maintaining one summary table through
/// one batch window.
struct MaintenanceReport {
  std::string view;
  double propagate_seconds = 0;  ///< outside the batch window
  double refresh_seconds = 0;    ///< inside the batch window
  PropagateStats propagate;
  RefreshStats refresh;

  double total_seconds() const { return propagate_seconds + refresh_seconds; }
};

/// Maintains a single summary table for one change set, end to end:
/// propagate (before base update), apply changes to base, refresh.
///
/// This is the single-view convenience path; multi-view maintenance with
/// shared propagation goes through the lattice layer / warehouse facade.
/// `catalog` is mutated (the change set is applied to the base tables).
MaintenanceReport MaintainView(rel::Catalog& catalog, SummaryTable& view,
                               const ChangeSet& changes,
                               const PropagateOptions& popts = {},
                               const RefreshOptions& ropts = {});

}  // namespace sdelta::core

#endif  // SDELTA_CORE_MAINTENANCE_H_
