#ifndef SDELTA_CORE_REMATERIALIZE_H_
#define SDELTA_CORE_REMATERIALIZE_H_

#include <vector>

#include "core/propagate.h"
#include "core/summary_table.h"

namespace sdelta::core {

/// Recomputes a summary table from scratch off the catalog's (already
/// updated) base tables — the paper's "Rematerialize" baseline.
void Rematerialize(const rel::Catalog& catalog, SummaryTable& view);

/// Rematerializes `view` from an already-rematerialized parent via a
/// derivation recipe (Theorem 5.1: the V-lattice edge query), instead of
/// from base data. `parent_rows` are the parent's materialized physical
/// rows.
void RematerializeFromParent(const rel::Catalog& catalog,
                             const DerivationRecipe& recipe,
                             const rel::Table& parent_rows,
                             SummaryTable& view);

}  // namespace sdelta::core

#endif  // SDELTA_CORE_REMATERIALIZE_H_
