#ifndef SDELTA_CORE_SQL_PARSER_H_
#define SDELTA_CORE_SQL_PARSER_H_

#include <string>

#include "core/view_def.h"
#include "relational/catalog.h"

namespace sdelta::core {

/// Parses a summary-table definition written in the paper's SQL dialect
/// (Figure 1) into a ViewDef:
///
///   CREATE VIEW SiC_sales(storeID, category, TotalCount,
///                         EarliestSale, TotalQuantity) AS
///   SELECT storeID, category, COUNT(*) AS TotalCount,
///          MIN(date) AS EarliestSale, SUM(qty) AS TotalQuantity
///   FROM pos, items
///   WHERE pos.itemID = items.itemID
///   GROUP BY storeID, category
///
/// Supported:
///  * aggregate functions COUNT(*), COUNT(e), SUM(e), MIN(e), MAX(e),
///    AVG(e) with arbitrary arithmetic expressions e;
///  * output naming via `AS alias` or the parenthesized view column
///    list (list entries map positionally onto the SELECT items);
///  * FROM fact[, dim...]: the first table is the fact table; WHERE
///    equi-join conjuncts matching a declared foreign key become
///    DimensionJoins, every other conjunct becomes the view predicate;
///  * string literals in single quotes, integer and decimal literals,
///    comparisons (=, <>, <, <=, >, >=), AND/OR/NOT, IS [NOT] NULL,
///    CASE WHEN e IS NULL THEN a ELSE b END;
///  * keywords are case-insensitive; identifiers are case-sensitive.
///
/// The catalog provides table schemas and foreign keys for join
/// classification. Malformed input throws std::invalid_argument with
/// the offending position.
ViewDef ParseViewDef(const rel::Catalog& catalog, const std::string& sql);

/// Parses just a scalar expression in the same dialect (used by tests
/// and interactive tools).
rel::Expression ParseExpression(const std::string& text);

/// Parses an ad-hoc aggregate query: either a full CREATE VIEW
/// statement, or a bare "SELECT ... FROM ... [WHERE ...] GROUP BY ..."
/// (which is wrapped as an anonymous view named "query").
ViewDef ParseQuery(const rel::Catalog& catalog, const std::string& sql);

}  // namespace sdelta::core

#endif  // SDELTA_CORE_SQL_PARSER_H_
