#include "core/prepare_changes.h"

#include <stdexcept>

#include "relational/operators.h"

namespace sdelta::core {

using rel::Expression;
using rel::Table;

namespace {

/// The Table 1 aggregate-source expression for one physical aggregate at
/// the given sign (+1 insertion, -1 deletion).
Expression AggregateSource(const rel::AggregateSpec& agg, int sign) {
  switch (agg.kind) {
    case rel::AggregateKind::kCountStar:
      return Expression::Literal(rel::Value::Int64(sign));
    case rel::AggregateKind::kCount:
      return Expression::CaseIsNull(
          *agg.argument, Expression::Literal(rel::Value::Int64(0)),
          Expression::Literal(rel::Value::Int64(sign)));
    case rel::AggregateKind::kSum:
      return sign > 0 ? *agg.argument : Expression::Negate(*agg.argument);
    case rel::AggregateKind::kMin:
    case rel::AggregateKind::kMax:
      return *agg.argument;
    case rel::AggregateKind::kAvg:
      throw std::logic_error(
          "AVG reached prepare-changes; views must be augmented first");
  }
  throw std::logic_error("unhandled aggregate kind");
}

/// Projects a joined+filtered relation down to group-by attributes and
/// signed aggregate sources.
Table ProjectSources(const rel::Table& joined, const AugmentedView& view,
                     int sign, exec::ThreadPool* pool,
                     exec::OperatorStats* stats) {
  std::vector<rel::ProjectColumn> cols;
  cols.reserve(view.physical.group_by.size() +
               view.physical.aggregates.size());
  for (const std::string& g : view.physical.group_by) {
    cols.push_back(rel::ProjectColumn{rel::BareName(g), Expression::Column(g)});
  }
  for (const rel::AggregateSpec& a : view.physical.aggregates) {
    cols.push_back(
        rel::ProjectColumn{a.output_name, AggregateSource(a, sign)});
  }
  return rel::Project(joined, cols, pool, stats);
}

/// Joins `fact_rows` (fact-table schema) with the given per-dimension
/// tables (instead of the catalog versions), applies the view predicate,
/// and returns the joined relation. `dim_tables[i]` corresponds to
/// view.physical.joins[i].
Table JoinWith(const AugmentedView& view, const rel::Table& fact_rows,
               const std::vector<const rel::Table*>& dim_tables,
               const std::optional<Expression>& where,
               exec::ThreadPool* pool, exec::OperatorStats* stats) {
  const ViewDef& def = view.physical;
  // Re-plate the fact rows under qualified column names: same column
  // types, so this is a whole-column copy (dictionary codes included).
  Table current(fact_rows.schema().Qualified(def.fact_table));
  current.AppendColumnsFrom(fact_rows);

  for (size_t i = 0; i < def.joins.size(); ++i) {
    const DimensionJoin& j = def.joins[i];
    current = rel::HashJoin(
        current, *dim_tables[i],
        {{def.fact_table + "." + j.fact_column, j.dim_column}}, j.dim_table,
        /*drop_right_keys=*/true, pool, stats);
  }
  if (where.has_value()) current = rel::Select(current, *where, pool, stats);
  return current;
}

}  // namespace

rel::Schema PrepareChangesSchema(const rel::Catalog& catalog,
                                 const AugmentedView& view) {
  // Identical to the summary-table schema: group-bys then sources named
  // after the aggregate outputs.
  return ViewOutputSchema(catalog, view.physical);
}

rel::Table PrepareFactChanges(const rel::Catalog& catalog,
                              const AugmentedView& view,
                              const rel::Table& fact_rows, int sign,
                              exec::ThreadPool* pool,
                              exec::OperatorStats* stats) {
  std::vector<const rel::Table*> dims;
  for (const DimensionJoin& j : view.physical.joins) {
    dims.push_back(&catalog.GetTable(j.dim_table));
  }
  Table joined =
      JoinWith(view, fact_rows, dims, view.physical.where, pool, stats);
  return ProjectSources(joined, view, sign, pool, stats);
}

rel::Table PrepareChanges(const rel::Catalog& catalog,
                          const AugmentedView& view,
                          const ChangeSet& changes, exec::ThreadPool* pool,
                          exec::OperatorStats* stats) {
  const ViewDef& def = view.physical;
  if (changes.fact_table != def.fact_table) {
    throw std::invalid_argument("change set is for fact table '" +
                                changes.fact_table + "' but view " +
                                def.name + " is over '" + def.fact_table +
                                "'");
  }

  Table out(PrepareChangesSchema(catalog, view), "pc_" + def.name);

  // Per-source versions: 0 = old, 1 = inserted, 2 = deleted. Source 0 is
  // the fact table; source i+1 is joins[i]'s dimension table.
  const size_t num_sources = 1 + def.joins.size();
  std::vector<int> version(num_sources, 0);

  auto delta_for_dim = [&](const std::string& dim) -> const DeltaSet* {
    auto it = changes.dimensions.find(dim);
    return it == changes.dimensions.end() ? nullptr : &it->second;
  };

  auto table_for = [&](size_t source, int ver) -> const rel::Table* {
    if (source == 0) {
      switch (ver) {
        case 0: return &catalog.GetTable(def.fact_table);
        case 1: return changes.fact.insertions.empty()
                           ? nullptr
                           : &changes.fact.insertions;
        default: return changes.fact.deletions.empty()
                            ? nullptr
                            : &changes.fact.deletions;
      }
    }
    const std::string& dim = def.joins[source - 1].dim_table;
    const DeltaSet* d = delta_for_dim(dim);
    switch (ver) {
      case 0: return &catalog.GetTable(dim);
      case 1: return (d == nullptr || d->insertions.empty()) ? nullptr
                                                             : &d->insertions;
      default: return (d == nullptr || d->deletions.empty()) ? nullptr
                                                             : &d->deletions;
    }
  };

  // Enumerate every combination of versions except all-old; skip combos
  // with an empty delta table.
  auto emit = [&](const std::vector<int>& ver) {
    const rel::Table* fact = table_for(0, ver[0]);
    if (fact == nullptr) return;
    std::vector<const rel::Table*> dims;
    int sign = ver[0] == 2 ? -1 : 1;
    for (size_t i = 1; i < num_sources; ++i) {
      const rel::Table* t = table_for(i, ver[i]);
      if (t == nullptr) return;
      if (ver[i] == 2) sign = -sign;
      dims.push_back(t);
    }
    Table part =
        ProjectSources(JoinWith(view, *fact, dims, def.where, pool, stats),
                       view, sign, pool, stats);
    out.AppendColumnsFrom(std::move(part));
  };

  // Iterate the mixed-radix counter over versions.
  while (true) {
    bool all_old = true;
    for (int v : version) all_old &= (v == 0);
    if (!all_old) emit(version);
    // increment
    size_t i = 0;
    while (i < num_sources) {
      if (++version[i] <= 2) break;
      version[i] = 0;
      ++i;
    }
    if (i == num_sources) break;
  }

  return out;
}

}  // namespace sdelta::core
