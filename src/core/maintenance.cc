#include "core/maintenance.h"

#include <stdexcept>

namespace sdelta::core {

void ApplyDeltaToTable(rel::Table& table, const DeltaSet& delta) {
  table.AppendColumnsFrom(delta.insertions);
  for (size_t i = 0; i < delta.deletions.NumRows(); ++i) {
    if (!table.EraseOneEqual(delta.deletions.RowAt(i))) {
      throw std::runtime_error("deletion does not match any row of table '" +
                               table.name() + "'");
    }
  }
}

void ApplyChangeSet(rel::Catalog& catalog, const ChangeSet& changes) {
  if (!changes.fact.empty()) {
    ApplyDeltaToTable(catalog.GetTable(changes.fact_table), changes.fact);
  }
  for (const auto& [dim, delta] : changes.dimensions) {
    if (!delta.empty()) {
      ApplyDeltaToTable(catalog.GetTable(dim), delta);
    }
  }
}

MaintenanceReport MaintainView(rel::Catalog& catalog, SummaryTable& view,
                               const ChangeSet& changes,
                               const PropagateOptions& popts,
                               const RefreshOptions& ropts) {
  MaintenanceReport report;
  report.view = view.name();
  obs::TraceSpan span(popts.tracer, "maintain.view");
  span.Attr("view", view.name());

  // Propagate runs against the pre-change base state, outside the batch
  // window (summary tables stay readable).
  Stopwatch sw;
  rel::Table sd = ComputeSummaryDelta(catalog, view.def(), changes, popts,
                                      &report.propagate);
  report.propagate_seconds = sw.ElapsedSeconds();

  // The batch window: apply the changes to the base tables, then refresh
  // the summary table from the summary-delta.
  {
    obs::TraceSpan apply(popts.tracer, "maintain.apply_base");
    ApplyChangeSet(catalog, changes);
  }

  sw.Reset();
  report.refresh = Refresh(catalog, view, sd, ropts);
  report.refresh_seconds = sw.ElapsedSeconds();
  if (popts.metrics != nullptr) {
    popts.metrics->Observe("maintain.propagate_seconds",
                           report.propagate_seconds);
    popts.metrics->Observe("maintain.refresh_seconds",
                           report.refresh_seconds);
  }
  return report;
}

}  // namespace sdelta::core
