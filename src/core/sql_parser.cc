#include "core/sql_parser.h"

#include <cctype>
#include <optional>
#include <stdexcept>
#include <vector>

#include "relational/operators.h"

namespace sdelta::core {

using rel::Expression;
using rel::Value;

namespace {

// ---------------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------------

enum class TokenKind {
  kIdentifier,  // possibly dotted: pos.storeID
  kInteger,
  kDecimal,
  kString,  // single-quoted
  kSymbol,  // ( ) , * = <> < <= > >= + - /
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // raw text (uppercased for keyword matching on demand)
  size_t position = 0;
};

class Tokenizer {
 public:
  explicit Tokenizer(const std::string& input) : input_(input) { Advance(); }

  const Token& current() const { return current_; }

  void Advance() {
    SkipWhitespace();
    current_.position = pos_;
    if (pos_ >= input_.size()) {
      current_ = Token{TokenKind::kEnd, "", pos_};
      return;
    }
    const char c = input_[pos_];
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = pos_;
      while (pos_ < input_.size() &&
             (std::isalnum(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '_' || input_[pos_] == '.')) {
        ++pos_;
      }
      current_ = Token{TokenKind::kIdentifier,
                       input_.substr(start, pos_ - start), start};
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = pos_;
      bool decimal = false;
      while (pos_ < input_.size() &&
             (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
              input_[pos_] == '.')) {
        decimal |= (input_[pos_] == '.');
        ++pos_;
      }
      current_ = Token{decimal ? TokenKind::kDecimal : TokenKind::kInteger,
                       input_.substr(start, pos_ - start), start};
      return;
    }
    if (c == '\'') {
      size_t start = ++pos_;
      std::string text;
      while (pos_ < input_.size() && input_[pos_] != '\'') {
        text += input_[pos_++];
      }
      if (pos_ >= input_.size()) {
        throw std::invalid_argument("unterminated string literal at offset " +
                                    std::to_string(start - 1));
      }
      ++pos_;  // closing quote
      current_ = Token{TokenKind::kString, std::move(text), start - 1};
      return;
    }
    // Multi-char symbols first.
    for (const char* sym : {"<>", "<=", ">="}) {
      if (input_.compare(pos_, 2, sym) == 0) {
        current_ = Token{TokenKind::kSymbol, sym, pos_};
        pos_ += 2;
        return;
      }
    }
    static const std::string kSingles = "(),*=<>+-/";
    if (kSingles.find(c) != std::string::npos) {
      current_ = Token{TokenKind::kSymbol, std::string(1, c), pos_};
      ++pos_;
      return;
    }
    throw std::invalid_argument("unexpected character '" + std::string(1, c) +
                                "' at offset " + std::to_string(pos_));
  }

 private:
  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& input_;
  size_t pos_ = 0;
  Token current_;
};

std::string Upper(const std::string& s) {
  std::string out = s;
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

class Parser {
 public:
  explicit Parser(const std::string& input) : tokens_(input) {}

  /// Keyword test (case-insensitive identifiers).
  bool AtKeyword(const std::string& kw) const {
    return tokens_.current().kind == TokenKind::kIdentifier &&
           Upper(tokens_.current().text) == kw;
  }

  bool AtSymbol(const std::string& sym) const {
    return tokens_.current().kind == TokenKind::kSymbol &&
           tokens_.current().text == sym;
  }

  bool AtEnd() const { return tokens_.current().kind == TokenKind::kEnd; }

  void ExpectKeyword(const std::string& kw) {
    if (!AtKeyword(kw)) Fail("expected " + kw);
    tokens_.Advance();
  }

  void ExpectSymbol(const std::string& sym) {
    if (!AtSymbol(sym)) Fail("expected '" + sym + "'");
    tokens_.Advance();
  }

  bool ConsumeKeyword(const std::string& kw) {
    if (!AtKeyword(kw)) return false;
    tokens_.Advance();
    return true;
  }

  bool ConsumeSymbol(const std::string& sym) {
    if (!AtSymbol(sym)) return false;
    tokens_.Advance();
    return true;
  }

  std::string ExpectIdentifier(const char* what) {
    if (tokens_.current().kind != TokenKind::kIdentifier) {
      Fail(std::string("expected ") + what);
    }
    std::string text = tokens_.current().text;
    tokens_.Advance();
    return text;
  }

  [[noreturn]] void Fail(const std::string& message) const {
    throw std::invalid_argument(
        "SQL parse error at offset " +
        std::to_string(tokens_.current().position) + ": " + message +
        " (found '" + tokens_.current().text + "')");
  }

  // expr := or_expr
  Expression ParseExpr() { return ParseOr(); }

  // One WHERE conjunct: everything binding tighter than AND. A
  // top-level OR must be parenthesized to form a single conjunct.
  Expression ParseConjunct() { return ParseNot(); }

 private:
  static bool IsKeywordText(const Token& t, const char* kw) {
    return t.kind == TokenKind::kIdentifier && Upper(t.text) == kw;
  }

  Expression ParseOr() {
    Expression lhs = ParseAnd();
    while (AtKeyword("OR")) {
      tokens_.Advance();
      lhs = Expression::Or(std::move(lhs), ParseAnd());
    }
    return lhs;
  }

  Expression ParseAnd() {
    Expression lhs = ParseNot();
    while (AtKeyword("AND")) {
      tokens_.Advance();
      lhs = Expression::And(std::move(lhs), ParseNot());
    }
    return lhs;
  }

  Expression ParseNot() {
    if (ConsumeKeyword("NOT")) return Expression::Not(ParseNot());
    return ParseComparison();
  }

  Expression ParseComparison() {
    Expression lhs = ParseAdditive();
    if (AtKeyword("IS")) {
      tokens_.Advance();
      const bool negated = ConsumeKeyword("NOT");
      ExpectKeyword("NULL");
      Expression test = Expression::IsNull(std::move(lhs));
      return negated ? Expression::Not(std::move(test)) : test;
    }
    static const struct {
      const char* sym;
      Expression (*make)(Expression, Expression);
    } kOps[] = {
        {"=", &Expression::Eq},  {"<>", &Expression::Ne},
        {"<=", &Expression::Le}, {">=", &Expression::Ge},
        {"<", &Expression::Lt},  {">", &Expression::Gt},
    };
    for (const auto& op : kOps) {
      if (AtSymbol(op.sym)) {
        tokens_.Advance();
        return op.make(std::move(lhs), ParseAdditive());
      }
    }
    return lhs;
  }

  Expression ParseAdditive() {
    Expression lhs = ParseMultiplicative();
    while (AtSymbol("+") || AtSymbol("-")) {
      const bool add = AtSymbol("+");
      tokens_.Advance();
      Expression rhs = ParseMultiplicative();
      lhs = add ? Expression::Add(std::move(lhs), std::move(rhs))
                : Expression::Subtract(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Expression ParseMultiplicative() {
    Expression lhs = ParseUnary();
    while (AtSymbol("*") || AtSymbol("/")) {
      const bool mul = AtSymbol("*");
      tokens_.Advance();
      Expression rhs = ParseUnary();
      lhs = mul ? Expression::Multiply(std::move(lhs), std::move(rhs))
                : Expression::Divide(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Expression ParseUnary() {
    if (ConsumeSymbol("-")) return Expression::Negate(ParseUnary());
    return ParsePrimary();
  }

  Expression ParsePrimary() {
    const Token& t = tokens_.current();
    switch (t.kind) {
      case TokenKind::kInteger: {
        const int64_t v = std::stoll(t.text);
        tokens_.Advance();
        return Expression::Literal(Value::Int64(v));
      }
      case TokenKind::kDecimal: {
        const double v = std::stod(t.text);
        tokens_.Advance();
        return Expression::Literal(Value::Double(v));
      }
      case TokenKind::kString: {
        std::string v = t.text;
        tokens_.Advance();
        return Expression::Literal(Value::String(std::move(v)));
      }
      case TokenKind::kSymbol:
        if (t.text == "(") {
          tokens_.Advance();
          Expression inner = ParseExpr();
          ExpectSymbol(")");
          return inner;
        }
        Fail("expected expression");
      case TokenKind::kIdentifier: {
        if (Upper(t.text) == "NULL") {
          tokens_.Advance();
          return Expression::Literal(Value::Null());
        }
        if (Upper(t.text) == "CASE") {
          return ParseCaseIsNull();
        }
        std::string name = t.text;
        tokens_.Advance();
        return Expression::Column(std::move(name));
      }
      case TokenKind::kEnd:
        Fail("unexpected end of input");
    }
    Fail("expected expression");
  }

  // CASE WHEN <e> IS NULL THEN <a> ELSE <b> END
  Expression ParseCaseIsNull() {
    ExpectKeyword("CASE");
    ExpectKeyword("WHEN");
    Expression test = ParseAdditive();
    ExpectKeyword("IS");
    ExpectKeyword("NULL");
    ExpectKeyword("THEN");
    Expression if_null = ParseExpr();
    ExpectKeyword("ELSE");
    Expression if_not_null = ParseExpr();
    ExpectKeyword("END");
    return Expression::CaseIsNull(std::move(test), std::move(if_null),
                                  std::move(if_not_null));
  }

  Tokenizer tokens_;

 public:
  Tokenizer& tokens() { return tokens_; }
};

/// One SELECT item: either a plain expression (a group-by column) or an
/// aggregate call.
struct SelectItem {
  std::optional<rel::AggregateKind> aggregate;  // nullopt => plain column
  std::optional<Expression> expr;               // aggregate argument or the
                                                // plain expression
  std::string alias;                            // may be empty
};

std::optional<rel::AggregateKind> AggregateKeyword(const std::string& word) {
  const std::string up = Upper(word);
  if (up == "COUNT") return rel::AggregateKind::kCount;  // kCountStar if (*)
  if (up == "SUM") return rel::AggregateKind::kSum;
  if (up == "MIN") return rel::AggregateKind::kMin;
  if (up == "MAX") return rel::AggregateKind::kMax;
  if (up == "AVG") return rel::AggregateKind::kAvg;
  return std::nullopt;
}

SelectItem ParseSelectItem(Parser& p) {
  SelectItem item;
  const Token& t = p.tokens().current();
  if (t.kind == TokenKind::kIdentifier) {
    if (auto agg = AggregateKeyword(t.text)) {
      // Lookahead: aggregate keyword must be followed by '('.
      // (An identifier named e.g. "min" used as a column would need
      // quoting, which this dialect does not support.)
      p.tokens().Advance();
      p.ExpectSymbol("(");
      if (*agg == rel::AggregateKind::kCount && p.ConsumeSymbol("*")) {
        item.aggregate = rel::AggregateKind::kCountStar;
      } else {
        item.aggregate = agg;
        item.expr = p.ParseExpr();
      }
      p.ExpectSymbol(")");
      if (p.ConsumeKeyword("AS")) {
        item.alias = p.ExpectIdentifier("alias after AS");
      }
      return item;
    }
  }
  item.expr = p.ParseExpr();
  if (p.ConsumeKeyword("AS")) {
    item.alias = p.ExpectIdentifier("alias after AS");
  }
  return item;
}

/// Parses `a AND b AND c` as a conjunct list so that foreign-key join
/// conditions can be separated from filter predicates. Each conjunct is
/// parsed at full expression precedence; ParseExpr stops before a
/// top-level AND only because we consume the ANDs here.
std::vector<Expression> ParseConjunctList(Parser& p) {
  std::vector<Expression> out;
  while (true) {
    out.push_back(p.ParseConjunct());
    if (!p.ConsumeKeyword("AND")) break;
  }
  return out;
}

/// If `conjunct` is `t1.c1 = t2.c2` matching a declared foreign key of
/// `fact_table`, returns the corresponding DimensionJoin.
std::optional<DimensionJoin> AsForeignKeyJoin(const rel::Catalog& catalog,
                                              const std::string& fact_table,
                                              const Expression& conjunct) {
  if (conjunct.kind() != Expression::Kind::kEq) return std::nullopt;
  const std::vector<std::string> cols = conjunct.ReferencedColumns();
  if (cols.size() != 2) return std::nullopt;
  // Both sides must be bare column references: "a.b = c.d".
  // (Ensured by checking the expression is exactly Eq(Column, Column):
  // ReferencedColumns()==2 plus a structural check via ToString shape.)
  const std::string expect =
      "(" + cols[0] + " = " + cols[1] + ")";
  if (conjunct.ToString() != expect) return std::nullopt;

  auto split = [](const std::string& qualified)
      -> std::optional<std::pair<std::string, std::string>> {
    const size_t dot = qualified.find('.');
    if (dot == std::string::npos) return std::nullopt;
    return std::make_pair(qualified.substr(0, dot),
                          qualified.substr(dot + 1));
  };
  auto a = split(cols[0]);
  auto b = split(cols[1]);
  if (!a || !b) return std::nullopt;
  // Orient: fact side first.
  if (b->first == fact_table) std::swap(a, b);
  if (a->first != fact_table) return std::nullopt;
  const rel::ForeignKey* fk = catalog.FindForeignKey(fact_table, a->second);
  if (fk == nullptr || fk->dim_table != b->first ||
      fk->dim_column != b->second) {
    return std::nullopt;
  }
  return DimensionJoin{fk->dim_table, fk->fact_column, fk->dim_column};
}

}  // namespace

rel::Expression ParseExpression(const std::string& text) {
  Parser p(text);
  Expression e = p.ParseExpr();
  if (!p.AtEnd()) p.Fail("trailing input after expression");
  return e;
}

ViewDef ParseQuery(const rel::Catalog& catalog, const std::string& sql) {
  size_t start = 0;
  while (start < sql.size() &&
         std::isspace(static_cast<unsigned char>(sql[start]))) {
    ++start;
  }
  const std::string head = Upper(sql.substr(start, 6));
  if (head == "SELECT") {
    return ParseViewDef(catalog, "CREATE VIEW query AS " + sql.substr(start));
  }
  return ParseViewDef(catalog, sql);
}

ViewDef ParseViewDef(const rel::Catalog& catalog, const std::string& sql) {
  Parser p(sql);
  ViewDef view;

  p.ExpectKeyword("CREATE");
  p.ExpectKeyword("VIEW");
  view.name = p.ExpectIdentifier("view name");

  // Optional output column list.
  std::vector<std::string> output_names;
  if (p.ConsumeSymbol("(")) {
    while (true) {
      output_names.push_back(p.ExpectIdentifier("output column name"));
      if (!p.ConsumeSymbol(",")) break;
    }
    p.ExpectSymbol(")");
  }

  p.ExpectKeyword("AS");
  p.ExpectKeyword("SELECT");

  std::vector<SelectItem> items;
  while (true) {
    items.push_back(ParseSelectItem(p));
    if (!p.ConsumeSymbol(",")) break;
  }
  if (!output_names.empty() && output_names.size() != items.size()) {
    throw std::invalid_argument(
        "view " + view.name + ": output column list has " +
        std::to_string(output_names.size()) + " names but SELECT has " +
        std::to_string(items.size()) + " items");
  }

  p.ExpectKeyword("FROM");
  view.fact_table = p.ExpectIdentifier("fact table name");
  std::vector<std::string> from_tables = {view.fact_table};
  while (p.ConsumeSymbol(",")) {
    from_tables.push_back(p.ExpectIdentifier("table name"));
  }

  std::vector<Expression> predicates;
  if (p.ConsumeKeyword("WHERE")) {
    for (Expression& conjunct : ParseConjunctList(p)) {
      if (auto join = AsForeignKeyJoin(catalog, view.fact_table, conjunct)) {
        bool dup = false;
        for (const DimensionJoin& j : view.joins) dup |= (j == *join);
        if (!dup) view.joins.push_back(*join);
      } else {
        predicates.push_back(std::move(conjunct));
      }
    }
  }
  for (Expression& pred : predicates) {
    view.where = view.where.has_value()
                     ? Expression::And(std::move(*view.where),
                                       std::move(pred))
                     : std::move(pred);
  }

  p.ExpectKeyword("GROUP");
  p.ExpectKeyword("BY");
  std::vector<std::string> group_by;
  while (true) {
    group_by.push_back(p.ExpectIdentifier("group-by column"));
    if (!p.ConsumeSymbol(",")) break;
  }
  if (!p.AtEnd()) p.Fail("trailing input after GROUP BY");
  view.group_by = std::move(group_by);

  // Every FROM table after the first must have been classified as a
  // foreign-key join.
  for (size_t i = 1; i < from_tables.size(); ++i) {
    bool joined = false;
    for (const DimensionJoin& j : view.joins) {
      joined |= (j.dim_table == from_tables[i]);
    }
    if (!joined) {
      throw std::invalid_argument(
          "view " + view.name + ": table " + from_tables[i] +
          " appears in FROM but no foreign-key join condition with " +
          view.fact_table + " was found in WHERE");
    }
  }

  // Assemble aggregates from the SELECT items; plain items are expected
  // to be the group-by columns (validated against GROUP BY).
  size_t plain_count = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    SelectItem& item = items[i];
    if (!item.aggregate.has_value()) {
      // Plain column: must reference exactly one column that appears in
      // GROUP BY (by bare name).
      const std::vector<std::string> cols = item.expr->ReferencedColumns();
      if (cols.size() != 1) {
        throw std::invalid_argument(
            "view " + view.name +
            ": non-aggregate SELECT item must be a group-by column");
      }
      bool in_group = false;
      for (const std::string& g : view.group_by) {
        in_group |= (rel::BareName(g) == rel::BareName(cols[0]));
      }
      if (!in_group) {
        throw std::invalid_argument("view " + view.name + ": column " +
                                    cols[0] +
                                    " selected but not in GROUP BY");
      }
      ++plain_count;
      continue;
    }
    std::string name = item.alias;
    if (name.empty() && !output_names.empty()) name = output_names[i];
    if (name.empty()) {
      throw std::invalid_argument(
          "view " + view.name +
          ": aggregate SELECT item needs an alias (AS name) or a view "
          "column list");
    }
    view.aggregates.push_back(
        rel::AggregateSpec{*item.aggregate, item.expr, std::move(name)});
  }
  (void)plain_count;

  ValidateView(catalog, view);
  return view;
}

}  // namespace sdelta::core
