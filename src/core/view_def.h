#ifndef SDELTA_CORE_VIEW_DEF_H_
#define SDELTA_CORE_VIEW_DEF_H_

#include <optional>
#include <string>
#include <vector>

#include "relational/aggregate.h"
#include "relational/catalog.h"
#include "relational/expression.h"
#include "relational/table.h"

namespace sdelta::core {

/// One foreign-key join between the fact table and a dimension table, as
/// in "FROM pos, stores WHERE pos.storeID = stores.storeID".
struct DimensionJoin {
  std::string dim_table;    ///< e.g. "stores"
  std::string fact_column;  ///< FK column in the fact table, e.g. "storeID"
  std::string dim_column;   ///< key column in the dimension table

  friend bool operator==(const DimensionJoin& a, const DimensionJoin& b) {
    return a.dim_table == b.dim_table && a.fact_column == b.fact_column &&
           a.dim_column == b.dim_column;
  }
};

/// A *generalized cube view* (paper §3.2): a single
/// SELECT-FROM-WHERE-GROUPBY block over the fact table, optionally joined
/// with dimension tables along foreign keys.
///
/// Column names inside `where`, `group_by` and aggregate arguments are
/// resolved against the joined relation, whose columns are the fact
/// table's columns qualified by its name ("pos.storeID", ...) plus each
/// dimension's non-key columns qualified by the dimension name
/// ("stores.city", ...). Unambiguous bare names ("date", "city") resolve
/// automatically.
struct ViewDef {
  std::string name;
  std::string fact_table;
  std::vector<DimensionJoin> joins;
  /// Optional selection over the joined relation. The paper does not
  /// consider views with *differing* WHERE clauses in one lattice; we
  /// allow a predicate per view but the lattice layer only relates views
  /// with syntactically equal predicates.
  std::optional<rel::Expression> where;
  /// Group-by attributes; output columns take the bare names.
  std::vector<std::string> group_by;
  std::vector<rel::AggregateSpec> aggregates;

  std::string ToString() const;
};

/// Builds the joined + filtered relation of `view`, substituting
/// `fact_rows` for the fact table (callers pass the real fact table, a
/// change table, or a delta). Dimension tables come from the catalog.
/// Dimension key columns are dropped from the output (they duplicate the
/// fact FK columns).
rel::Table JoinedRelation(const rel::Catalog& catalog, const ViewDef& view,
                          const rel::Table& fact_rows);

/// Schema of the joined relation (fact columns qualified by the fact
/// table name, then each dimension's non-key columns qualified by the
/// dimension name). Expressions in the view are resolved against this.
rel::Schema JoinedSchema(const rel::Catalog& catalog, const ViewDef& view);

/// Output schema of the view: group-by columns (bare names) followed by
/// aggregate outputs.
rel::Schema ViewOutputSchema(const rel::Catalog& catalog, const ViewDef& view);

/// Evaluates the view from scratch — the rematerialization primitive and
/// the oracle against which incremental maintenance is tested.
rel::Table EvaluateView(const rel::Catalog& catalog, const ViewDef& view);

/// Validates the definition against the catalog (tables exist, joins are
/// declared foreign keys, names resolve). Throws std::invalid_argument
/// describing the first problem found.
void ValidateView(const rel::Catalog& catalog, const ViewDef& view);

}  // namespace sdelta::core

#endif  // SDELTA_CORE_VIEW_DEF_H_
