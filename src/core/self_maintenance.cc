#include "core/self_maintenance.h"

#include <stdexcept>

#include "relational/operators.h"

namespace sdelta::core {

using rel::AggregateKind;
using rel::AggregateSpec;

AggregateClass ClassifyAggregate(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCountStar:
    case AggregateKind::kCount:
    case AggregateKind::kSum:
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      return AggregateClass::kDistributive;
    case AggregateKind::kAvg:
      return AggregateClass::kAlgebraic;
  }
  return AggregateClass::kHolistic;
}

bool SelfMaintainableOnInsertions(AggregateKind kind) {
  // All distributive functions are; AVG is via its SUM/COUNT parts.
  return ClassifyAggregate(kind) != AggregateClass::kHolistic;
}

bool SelfMaintainableOnDeletions(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCountStar:
    case AggregateKind::kCount:
      return true;
    case AggregateKind::kSum:  // with COUNT(*) / COUNT(e) help — reported
    case AggregateKind::kAvg:  // as false for the bare function
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      return false;
  }
  return false;
}

namespace {

/// Finds an existing physical aggregate with the given kind+argument, or
/// returns nullptr.
const AggregateSpec* FindAggregate(const std::vector<AggregateSpec>& specs,
                                   AggregateKind kind,
                                   const std::optional<rel::Expression>& arg) {
  for (const AggregateSpec& s : specs) {
    if (s.kind != kind) continue;
    if (!arg.has_value() && !s.argument.has_value()) return &s;
    if (arg.has_value() && s.argument.has_value() && *arg == *s.argument) {
      return &s;
    }
  }
  return nullptr;
}

/// Picks a physical column name that is not yet taken by a group-by
/// column or another aggregate.
std::string FreshName(const ViewDef& view, const std::string& base) {
  auto taken = [&](const std::string& n) {
    for (const std::string& g : view.group_by) {
      if (rel::BareName(g) == n) return true;
    }
    for (const AggregateSpec& a : view.aggregates) {
      if (a.output_name == n) return true;
    }
    return false;
  };
  if (!taken(base)) return base;
  for (int i = 2;; ++i) {
    std::string candidate = base + "_" + std::to_string(i);
    if (!taken(candidate)) return candidate;
  }
}

}  // namespace

AugmentedView AugmentForSelfMaintenance(const rel::Catalog& catalog,
                                        const ViewDef& logical) {
  ValidateView(catalog, logical);
  for (const AggregateSpec& a : logical.aggregates) {
    if (ClassifyAggregate(a.kind) == AggregateClass::kHolistic) {
      throw std::invalid_argument("view " + logical.name +
                                  ": holistic aggregate " + a.ToString() +
                                  " cannot be incrementally maintained");
    }
  }

  AugmentedView out;
  out.physical = logical;
  out.physical.aggregates.clear();

  // Pass 1: materialize the physical aggregates. AVG splits into
  // SUM + COUNT; everything else carries over (deduplicated).
  for (const AggregateSpec& a : logical.aggregates) {
    LogicalColumn lc;
    lc.logical = a;
    if (a.kind == AggregateKind::kAvg) {
      // Copy names out immediately: the vector may reallocate below.
      std::string sum_name;
      if (const AggregateSpec* sum = FindAggregate(
              out.physical.aggregates, AggregateKind::kSum, a.argument)) {
        sum_name = sum->output_name;
      } else {
        sum_name = FreshName(out.physical, "sum_" + a.output_name);
        out.physical.aggregates.push_back(
            AggregateSpec{AggregateKind::kSum, a.argument, sum_name});
      }
      std::string cnt_name;
      if (const AggregateSpec* cnt = FindAggregate(
              out.physical.aggregates, AggregateKind::kCount, a.argument)) {
        cnt_name = cnt->output_name;
      } else {
        cnt_name = FreshName(out.physical, "cnt_" + a.output_name);
        out.physical.aggregates.push_back(
            AggregateSpec{AggregateKind::kCount, a.argument, cnt_name});
      }
      lc.source = LogicalColumn::Source::kSumOverCount;
      lc.column = sum_name;
      lc.count_column = cnt_name;
    } else {
      const AggregateSpec* existing =
          FindAggregate(out.physical.aggregates, a.kind, a.argument);
      if (existing == nullptr) {
        out.physical.aggregates.push_back(a);
        existing = &out.physical.aggregates.back();
      }
      lc.source = LogicalColumn::Source::kDirect;
      lc.column = existing->output_name;
    }
    out.logical_columns.push_back(std::move(lc));
  }

  // Pass 2: ensure COUNT(*).
  {
    const AggregateSpec* star = FindAggregate(
        out.physical.aggregates, AggregateKind::kCountStar, std::nullopt);
    if (star == nullptr) {
      out.physical.aggregates.push_back(AggregateSpec{
          AggregateKind::kCountStar, std::nullopt,
          FreshName(out.physical, "count_star")});
      star = &out.physical.aggregates.back();
    }
    out.count_star_column = star->output_name;
  }

  // Pass 3: ensure a COUNT(e) companion for every SUM/MIN/MAX(e), and
  // record the companion map. Iterate by index because the vector grows.
  for (size_t i = 0; i < out.physical.aggregates.size(); ++i) {
    const AggregateSpec a = out.physical.aggregates[i];  // copy: vector grows
    switch (a.kind) {
      case AggregateKind::kCountStar:
      case AggregateKind::kCount:
        out.companion_count[a.output_name] = a.output_name;
        break;
      case AggregateKind::kSum:
      case AggregateKind::kMin:
      case AggregateKind::kMax: {
        const AggregateSpec* cnt = FindAggregate(
            out.physical.aggregates, AggregateKind::kCount, a.argument);
        if (cnt == nullptr) {
          out.physical.aggregates.push_back(AggregateSpec{
              AggregateKind::kCount, a.argument,
              FreshName(out.physical, "cnt_" + a.output_name)});
          cnt = &out.physical.aggregates.back();
        }
        out.companion_count[a.output_name] = cnt->output_name;
        break;
      }
      case AggregateKind::kAvg:
        throw std::logic_error("AVG must have been split in pass 1");
    }
  }
  // Newly added COUNT(e) companions are their own companions.
  for (const AggregateSpec& a : out.physical.aggregates) {
    if (out.companion_count.count(a.output_name) == 0) {
      out.companion_count[a.output_name] = a.output_name;
    }
  }

  ValidateView(catalog, out.physical);
  return out;
}

rel::Table LogicalRows(const AugmentedView& view,
                       const rel::Table& physical_rows) {
  const rel::Schema& phys = physical_rows.schema();
  const size_t num_groups = view.physical.group_by.size();

  rel::Schema out_schema;
  for (size_t i = 0; i < num_groups; ++i) {
    out_schema.AddColumn(phys.column(i).name, phys.column(i).type);
  }
  std::vector<std::pair<size_t, size_t>> sources;  // (value col, count col)
  std::vector<LogicalColumn::Source> kinds;
  for (const LogicalColumn& lc : view.logical_columns) {
    const size_t vi = phys.Resolve(lc.column);
    size_t ci = vi;
    if (lc.source == LogicalColumn::Source::kSumOverCount) {
      ci = phys.Resolve(lc.count_column);
      out_schema.AddColumn(lc.logical.output_name, rel::ValueType::kDouble);
    } else {
      out_schema.AddColumn(lc.logical.output_name, phys.column(vi).type);
    }
    sources.emplace_back(vi, ci);
    kinds.push_back(lc.source);
  }

  rel::Table out(std::move(out_schema), view.name());
  out.Reserve(physical_rows.NumRows());
  for (size_t ri = 0; ri < physical_rows.NumRows(); ++ri) {
    const rel::Row r = physical_rows.RowAt(ri);
    rel::Row row(r.begin(), r.begin() + num_groups);
    for (size_t i = 0; i < sources.size(); ++i) {
      if (kinds[i] == LogicalColumn::Source::kSumOverCount) {
        row.push_back(rel::Value::Divide(r[sources[i].first],
                                         r[sources[i].second]));
      } else {
        row.push_back(r[sources[i].first]);
      }
    }
    out.Insert(std::move(row));
  }
  return out;
}

}  // namespace sdelta::core
