#ifndef SDELTA_CORE_PREPARE_CHANGES_H_
#define SDELTA_CORE_PREPARE_CHANGES_H_

#include "core/delta.h"
#include "core/self_maintenance.h"
#include "core/view_def.h"
#include "exec/operator_stats.h"
#include "exec/thread_pool.h"

namespace sdelta::core {

/// Builds the *prepare-changes* relation pc_<view> (paper §4.1.1,
/// Figure 6): one row per changed joined tuple, carrying
///   * the view's group-by attributes, and
///   * one *aggregate-source* column per physical aggregate, derived by
///     the rules of Table 1:
///
///                      prepare-insertions     prepare-deletions
///     COUNT(*)                 1                     -1
///     COUNT(expr)   CASE WHEN expr IS NULL   CASE WHEN expr IS NULL
///                   THEN 0 ELSE 1 END        THEN 0 ELSE -1 END
///     SUM(expr)              expr                  -expr
///     MIN(expr)              expr                   expr
///     MAX(expr)              expr                   expr
///
/// Aggregate-source columns are named after the physical aggregate output
/// columns, so the summary-delta (a GROUP BY over this relation) lines up
/// with the summary-table schema by name.
///
/// Dimension-table deltas (paper §4.1.4) are handled by the signed-delta
/// join expansion: with the catalog holding the *old* state, the change
/// to the joined relation F ⋈ D1 ⋈ ... is the union over every
/// combination of {old, inserted, deleted} per source except all-old,
/// with the row's sign being the product of the per-source signs.
rel::Table PrepareChanges(const rel::Catalog& catalog,
                          const AugmentedView& view, const ChangeSet& changes,
                          exec::ThreadPool* pool = nullptr,
                          exec::OperatorStats* stats = nullptr);

/// The prepare-insertions (sign = +1) or prepare-deletions (sign = -1)
/// relation for changes to the fact table only — the pi_/pd_ views of
/// Figure 6. Exposed for tests and documentation; PrepareChanges is the
/// production entry point.
rel::Table PrepareFactChanges(const rel::Catalog& catalog,
                              const AugmentedView& view,
                              const rel::Table& fact_rows, int sign,
                              exec::ThreadPool* pool = nullptr,
                              exec::OperatorStats* stats = nullptr);

/// Schema of the prepare-changes relation for `view`.
rel::Schema PrepareChangesSchema(const rel::Catalog& catalog,
                                 const AugmentedView& view);

}  // namespace sdelta::core

#endif  // SDELTA_CORE_PREPARE_CHANGES_H_
