#ifndef SDELTA_CORE_REFRESH_H_
#define SDELTA_CORE_REFRESH_H_

#include "core/summary_table.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/catalog.h"
#include "relational/table.h"

namespace sdelta::core {

/// How the summary-delta is applied to the summary table.
enum class RefreshStrategy {
  /// The paper's Figure 2/7 embedded-SQL form: a cursor over the
  /// summary-delta with a keyed lookup per tuple. O(|sd|) hash probes.
  kCursor,
  /// The "summary-delta join" the paper argues vendors should build
  /// (§7): a sort-merge outer join between the summary-delta and the
  /// summary table that rewrites the table in one pass.
  kMerge,
};

struct RefreshOptions {
  RefreshStrategy strategy = RefreshStrategy::kCursor;
  /// Collect all groups whose MIN/MAX must be recomputed and recompute
  /// them in one scan of the base data (true), or scan per group (false).
  bool batch_minmax_recompute = true;
  /// Figure 7 recomputes a group whenever the delta MIN/MAX ties or
  /// beats the stored one — even for pure insertions, because the delta
  /// cannot tell insertions from deletions. Our summary-deltas carry a
  /// per-group deletion marker (core::kTaintedColumn), and §3.1 says
  /// MIN/MAX *are* self-maintainable under insertions; so when a
  /// group's delta is untainted the new extremum is combined in place
  /// with no base scan. Set false for the paper-faithful conservative
  /// behaviour (deltas without the marker are always treated as
  /// potentially containing deletions).
  bool trust_untainted_minmax = true;
  /// Observability sinks (see src/obs/). Null = disabled.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Explicit parent for the refresh.view span. 0 = the caller thread's
  /// innermost open span. The warehouse sets this when it fans refreshes
  /// out across pool workers, whose open-span stacks are empty — the
  /// span still parents on the batch's refresh phase.
  uint64_t parent_span = 0;
};

struct RefreshStats {
  size_t inserted = 0;           ///< new groups added to the summary table
  size_t deleted = 0;            ///< groups removed (COUNT(*) reached 0)
  size_t updated = 0;            ///< groups updated in place
  size_t recomputed_groups = 0;  ///< groups recomputed from base data
  size_t recompute_scan_rows = 0;  ///< base rows scanned for recomputes
  /// Groups whose recompute was forced by the §3.1 MIN/MAX
  /// non-self-maintainability path — a deletion tied or beat a stored
  /// extremum (Figure 7's recompute test). A strict subset of
  /// recomputed_groups: recomputes of freshly appearing tainted groups
  /// (dimension moves) are excluded.
  size_t minmax_recomputes = 0;
  /// Key-index operations during this refresh (summary-table probes,
  /// inserts, erases, and recompute dimension probes), split by whether
  /// the key took the packed fast path. Deterministic across thread
  /// counts: each view's refresh is sequential over a byte-identical
  /// delta. Feeds the shared key.packed_rows / key.fallback_rows
  /// counters behind the key.packed_ratio gauge.
  uint64_t key_packed_ops = 0;
  uint64_t key_fallback_ops = 0;

  RefreshStats& operator+=(const RefreshStats& o) {
    inserted += o.inserted;
    deleted += o.deleted;
    updated += o.updated;
    recomputed_groups += o.recomputed_groups;
    recompute_scan_rows += o.recompute_scan_rows;
    minmax_recomputes += o.minmax_recomputes;
    key_packed_ops += o.key_packed_ops;
    key_fallback_ops += o.key_fallback_ops;
    return *this;
  }

  /// Folds this run's counters into a registry (refresh.inserts,
  /// refresh.deletes, refresh.updates, refresh.recomputed_groups,
  /// refresh.recompute_scan_rows, refresh.minmax_recomputes, plus the
  /// pipeline-wide key.packed_rows / key.fallback_rows).
  void EmitTo(obs::MetricsRegistry& metrics) const;
};

/// Applies the summary-delta to the summary table (paper Figure 7).
///
/// Each summary-delta tuple affects exactly one summary tuple:
///  * no corresponding tuple       -> insert;
///  * COUNT(*) would reach zero    -> delete;
///  * a deleted value ties/beats a group's MIN/MAX (and values remain)
///                                 -> recompute that group from base data;
///  * otherwise                    -> in-place update, with per-expression
///    COUNT(e) deciding when SUM/MIN/MAX become NULL.
///
/// PRECONDITION: the catalog's base tables must already reflect the
/// changes the summary-delta was computed from (the paper's assumption
/// for MIN/MAX recomputation). Throws std::runtime_error on deltas that
/// are inconsistent with the summary table (e.g. a deletion for a group
/// that does not exist).
RefreshStats Refresh(const rel::Catalog& catalog, SummaryTable& view,
                     const rel::Table& summary_delta,
                     const RefreshOptions& options = {});

}  // namespace sdelta::core

#endif  // SDELTA_CORE_REFRESH_H_
