#include "core/rematerialize.h"

namespace sdelta::core {

void Rematerialize(const rel::Catalog& catalog, SummaryTable& view) {
  view.MaterializeFrom(catalog);
}

void RematerializeFromParent(const rel::Catalog& catalog,
                             const DerivationRecipe& recipe,
                             const rel::Table& parent_rows,
                             SummaryTable& view) {
  view.LoadFrom(ApplyDerivation(catalog, recipe, parent_rows));
}

}  // namespace sdelta::core
