#ifndef SDELTA_CORE_DELTA_H_
#define SDELTA_CORE_DELTA_H_

#include <map>
#include <string>

#include "relational/catalog.h"
#include "relational/table.h"

namespace sdelta::core {

/// The deferred changes to one base table: a bag of inserted rows and a
/// bag of deleted rows, both with the base table's schema (the paper's
/// pos_ins / pos_del tables).
struct DeltaSet {
  rel::Table insertions;
  rel::Table deletions;

  DeltaSet() = default;
  explicit DeltaSet(const rel::Schema& schema)
      : insertions(schema, "ins"), deletions(schema, "del") {}

  bool empty() const { return insertions.empty() && deletions.empty(); }
  size_t size() const { return insertions.NumRows() + deletions.NumRows(); }
};

/// All deferred changes for one batch window: the fact-table delta plus
/// (optionally, paper §4.1.4) per-dimension-table deltas.
struct ChangeSet {
  std::string fact_table;
  DeltaSet fact;
  std::map<std::string, DeltaSet> dimensions;  // dim table name -> delta

  bool empty() const {
    if (!fact.empty()) return false;
    for (const auto& [name, d] : dimensions) {
      if (!d.empty()) return false;
    }
    return true;
  }
};

/// Applies a delta to its base table in the catalog: inserts every row of
/// `delta.insertions`, removes one matching occurrence for every row of
/// `delta.deletions`. Throws std::runtime_error if a deletion does not
/// match any row (an inconsistent change set).
void ApplyDeltaToTable(rel::Table& table, const DeltaSet& delta);

/// Applies the whole change set (fact + dimensions) to the catalog.
void ApplyChangeSet(rel::Catalog& catalog, const ChangeSet& changes);

}  // namespace sdelta::core

#endif  // SDELTA_CORE_DELTA_H_
