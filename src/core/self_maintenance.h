#ifndef SDELTA_CORE_SELF_MAINTENANCE_H_
#define SDELTA_CORE_SELF_MAINTENANCE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/view_def.h"

namespace sdelta::core {

/// Classification of aggregate functions from [GBLP96] / paper §3.1.
enum class AggregateClass {
  kDistributive,  ///< COUNT, SUM, MIN, MAX
  kAlgebraic,     ///< AVG = SUM/COUNT
  kHolistic,      ///< MEDIAN etc. — not supported
};

AggregateClass ClassifyAggregate(rel::AggregateKind kind);

/// Whether a *single* aggregate function of this kind is self-maintainable
/// w.r.t. insertions / deletions on its own (paper §3.1): all distributive
/// functions are insertion-self-maintainable; only COUNT variants are
/// deletion-self-maintainable without help; MIN/MAX never are.
bool SelfMaintainableOnInsertions(rel::AggregateKind kind);
bool SelfMaintainableOnDeletions(rel::AggregateKind kind);

/// How a logical (user-declared) aggregate is read back from the physical
/// (augmented) summary table.
struct LogicalColumn {
  rel::AggregateSpec logical;
  enum class Source {
    kDirect,           ///< value of physical column `column`
    kSumOverCount,     ///< AVG: physical `column` / physical `count_column`
  };
  Source source = Source::kDirect;
  std::string column;        ///< physical column holding the value (or SUM)
  std::string count_column;  ///< for kSumOverCount: the COUNT(e) column
};

/// A view augmented for self-maintenance (paper §3.1 / §5.4):
///  * `physical` always computes COUNT(*);
///  * every SUM/MIN/MAX/AVG(e) is accompanied by COUNT(e);
///  * AVG(e) is replaced by SUM(e) (+ the COUNT(e) companion);
///  * duplicate aggregates (same kind+argument) are computed once.
///
/// The physical view is what gets materialized and maintained; the
/// logical_columns map the user's declared output columns onto it.
struct AugmentedView {
  ViewDef physical;
  std::vector<LogicalColumn> logical_columns;
  /// Name of the COUNT(*) column in the physical view.
  std::string count_star_column;
  /// For each physical aggregate output (by name), the name of the
  /// COUNT(e) companion column; COUNT(*) maps to itself, COUNT(e) maps to
  /// itself.
  std::unordered_map<std::string, std::string> companion_count;

  const std::string& name() const { return physical.name; }
};

/// Augments `logical` per the rules above. Holistic aggregates (none are
/// currently constructible, but the check guards future kinds) throw
/// std::invalid_argument. The logical view is validated first.
AugmentedView AugmentForSelfMaintenance(const rel::Catalog& catalog,
                                        const ViewDef& logical);

/// Extracts the logical view's rows (user-declared columns) from a
/// physical summary-table relation. Used by queries and tests.
rel::Table LogicalRows(const AugmentedView& view,
                       const rel::Table& physical_rows);

}  // namespace sdelta::core

#endif  // SDELTA_CORE_SELF_MAINTENANCE_H_
