#ifndef SDELTA_CORE_PROPAGATE_H_
#define SDELTA_CORE_PROPAGATE_H_

#include <string>
#include <vector>

#include "core/delta.h"
#include "core/self_maintenance.h"
#include "core/view_def.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "relational/operators.h"

namespace sdelta::core {

struct PropagateOptions {
  /// Pre-aggregate fact changes before dimension joins (paper §4.1.3).
  /// Applied only when legal: no dimension deltas, and the predicate and
  /// every aggregate argument reference fact columns only.
  bool preaggregate = false;
  /// Observability sinks (see src/obs/). Null = disabled; every
  /// instrumentation site is behind a single null check.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
  /// Thread pool for morsel-driven operators and wave-scheduled lattice
  /// propagation. Null = the exact serial path (results are identical
  /// either way; see operators.h for the determinism contract).
  exec::ThreadPool* pool = nullptr;
  /// Expected number of summary-delta groups (a §5.5 cardinality
  /// estimate), used to pre-size the final GroupBy's hash table so the
  /// propagate fan-out never rehashes mid-batch. 0 = no hint. Capacity
  /// only — results are identical with or without it.
  size_t delta_size_hint = 0;
  /// Multi-query optimization across the batch's maintenance plans
  /// (lattice/mqo.h): detect join subtrees shared by >= 2 plans,
  /// materialize each once per batch, and rewrite the consuming steps to
  /// scan the shared result. Summary-delta bytes are identical either
  /// way; off reproduces the pre-MQO execution exactly.
  bool mqo_enabled = true;
};

struct PropagateStats {
  size_t prepared_tuples = 0;  ///< rows in the prepare-changes relation
  size_t delta_groups = 0;     ///< rows in the summary-delta table
  bool preaggregated = false;  ///< whether the §4.1.3 path was taken
  /// Operator-level accounting for this computation (rows in/out,
  /// morsels, join build/probe sizes, wall time per operator kind).
  exec::OperatorStats ops;

  /// Folds this run's counters into a registry (propagate.rows_scanned,
  /// propagate.delta_rows, propagate.preaggregated, and per-operator
  /// op.<name>.{calls,rows_in,rows_out,morsels,batches} counters plus
  /// op.<name>.seconds histograms — only for operators invoked at least
  /// once, so untouched operators add no series).
  void EmitTo(obs::MetricsRegistry& metrics) const;
};

/// Name of the hidden trailing summary-delta column: 1 when any
/// deletion-signed change contributed to the group, else 0. A freshly appearing group whose
/// delta is "tainted" by deletions (possible when dimension moves and
/// fact deletions mix in one batch) cannot trust the delta's MIN/MAX and
/// is recomputed from base data by the refresh function.
inline constexpr char kTaintedColumn[] = "__sd_has_deletion";

/// Computes the summary-delta table sd_<view> directly from the change
/// set (paper §4.1.2): aggregate the prepare-changes relation by the
/// view's group-by attributes, rewriting COUNT aggregates to SUM over
/// the signed sources. The result has the summary table's schema plus
/// the trailing kTaintedColumn, where each aggregate column holds the
/// *net change* for its group.
rel::Table ComputeSummaryDelta(const rel::Catalog& catalog,
                               const AugmentedView& view,
                               const ChangeSet& changes,
                               const PropagateOptions& options = {},
                               PropagateStats* stats = nullptr);

/// The delta-style aggregation specs for a view's physical aggregates:
/// COUNT(*)/COUNT/SUM become SUM over the source column of the same
/// name; MIN/MAX stay MIN/MAX. Shared by propagate and the lattice.
std::vector<rel::AggregateSpec> DeltaAggregates(const AugmentedView& view);

/// How a child view derives from a parent view along a lattice edge
/// (paper §5.1). By Theorem 5.1 the same recipe maps the parent's
/// *summary-delta* to the child's summary-delta (the D-lattice) and the
/// parent's *materialized rows* to the child's rows (the V-lattice) —
/// only the input table differs.
struct DerivationRecipe {
  std::string child_name;
  std::string parent_name;
  /// Dimension tables joined into the parent relation (the edge
  /// annotations of Figure 8). fact_column here names the parent column
  /// holding the foreign key.
  std::vector<DimensionJoin> joins;
  /// Child group-by columns: inputs resolved against the joined parent
  /// schema, outputs named as in the child schema.
  std::vector<rel::GroupByColumn> group_by;
  /// Child aggregates rewritten over the parent (§5.1): COUNT -> SUM of
  /// parent counts, SUM(A) over a parent group-by A -> SUM(A * count*),
  /// MIN/MAX -> MIN/MAX of parent MIN/MAX or of the group-by attribute.
  std::vector<rel::AggregateSpec> aggregates;

  std::string ToString() const;
};

/// Applies a derivation recipe: joins the recipe's dimension tables into
/// `parent_rows`, then groups and aggregates. Returns a relation with the
/// child's summary schema. `size_hint`, when nonzero, pre-sizes the
/// final GroupBy (the lattice planner passes its group estimate).
rel::Table ApplyDerivation(const rel::Catalog& catalog,
                           const DerivationRecipe& recipe,
                           const rel::Table& parent_rows,
                           exec::ThreadPool* pool = nullptr,
                           exec::OperatorStats* stats = nullptr,
                           size_t size_hint = 0);

}  // namespace sdelta::core

#endif  // SDELTA_CORE_PROPAGATE_H_
