#include "core/view_def.h"

#include <stdexcept>

#include "relational/operators.h"

namespace sdelta::core {

using rel::Table;

std::string ViewDef::ToString() const {
  std::string s = "CREATE VIEW " + name + " AS SELECT ";
  for (size_t i = 0; i < group_by.size(); ++i) {
    if (i > 0) s += ", ";
    s += group_by[i];
  }
  for (const rel::AggregateSpec& a : aggregates) {
    if (!s.empty() && s.back() != ' ') s += ", ";
    s += a.ToString();
  }
  s += " FROM " + fact_table;
  for (const DimensionJoin& j : joins) s += ", " + j.dim_table;
  if (!joins.empty()) {
    s += " WHERE ";
    for (size_t i = 0; i < joins.size(); ++i) {
      if (i > 0) s += " AND ";
      s += fact_table + "." + joins[i].fact_column + " = " +
           joins[i].dim_table + "." + joins[i].dim_column;
    }
  }
  if (where.has_value()) {
    s += joins.empty() ? " WHERE " : " AND ";
    s += where->ToString();
  }
  s += " GROUP BY ";
  for (size_t i = 0; i < group_by.size(); ++i) {
    if (i > 0) s += ", ";
    s += group_by[i];
  }
  return s;
}

rel::Table JoinedRelation(const rel::Catalog& catalog, const ViewDef& view,
                          const rel::Table& fact_rows) {
  // Re-plate the fact rows under the fact table's qualified schema.
  Table current(fact_rows.schema().Qualified(view.fact_table));
  current.AppendColumnsFrom(fact_rows);

  for (const DimensionJoin& j : view.joins) {
    const Table& dim = catalog.GetTable(j.dim_table);
    current = rel::HashJoin(current, dim,
                            {{view.fact_table + "." + j.fact_column,
                              j.dim_column}},
                            j.dim_table, /*drop_right_keys=*/true);
  }
  if (view.where.has_value()) {
    current = rel::Select(current, *view.where);
  }
  return current;
}

rel::Schema JoinedSchema(const rel::Catalog& catalog, const ViewDef& view) {
  rel::Schema joined =
      catalog.GetTable(view.fact_table).schema().Qualified(view.fact_table);
  for (const DimensionJoin& j : view.joins) {
    const rel::Schema& dim = catalog.GetTable(j.dim_table).schema();
    for (const rel::Column& c : dim.columns()) {
      if (c.name == j.dim_column) continue;  // dropped by the FK join
      joined.AddColumn(j.dim_table + "." + c.name, c.type);
    }
  }
  return joined;
}

rel::Schema ViewOutputSchema(const rel::Catalog& catalog,
                             const ViewDef& view) {
  const rel::Schema joined = JoinedSchema(catalog, view);
  rel::Schema out;
  for (const std::string& g : view.group_by) {
    const size_t idx = joined.Resolve(g);
    out.AddColumn(rel::BareName(g), joined.column(idx).type);
  }
  for (const rel::AggregateSpec& a : view.aggregates) {
    rel::ValueType arg_type = rel::ValueType::kInt64;
    if (a.argument.has_value()) arg_type = a.argument->ResultType(joined);
    out.AddColumn(a.output_name, rel::AggregateResultType(a.kind, arg_type));
  }
  return out;
}

rel::Table EvaluateView(const rel::Catalog& catalog, const ViewDef& view) {
  Table joined =
      JoinedRelation(catalog, view, catalog.GetTable(view.fact_table));
  Table out = rel::GroupBy(joined, rel::GroupCols(view.group_by),
                           view.aggregates);
  // GroupBy names outputs by bare name already; stamp the view name.
  out.SetName(view.name);
  return out;
}

void ValidateView(const rel::Catalog& catalog, const ViewDef& view) {
  if (view.name.empty()) {
    throw std::invalid_argument("view must have a name");
  }
  if (!catalog.HasTable(view.fact_table)) {
    throw std::invalid_argument("view " + view.name +
                                ": unknown fact table " + view.fact_table);
  }
  for (const DimensionJoin& j : view.joins) {
    if (!catalog.HasTable(j.dim_table)) {
      throw std::invalid_argument("view " + view.name +
                                  ": unknown dimension table " + j.dim_table);
    }
    const rel::ForeignKey* fk =
        catalog.FindForeignKey(view.fact_table, j.fact_column);
    if (fk == nullptr || fk->dim_table != j.dim_table ||
        fk->dim_column != j.dim_column) {
      throw std::invalid_argument(
          "view " + view.name + ": join " + view.fact_table + "." +
          j.fact_column + " = " + j.dim_table + "." + j.dim_column +
          " is not a declared foreign key");
    }
  }
  if (view.group_by.empty() && view.aggregates.empty()) {
    throw std::invalid_argument("view " + view.name + " selects nothing");
  }
  // Resolving the output schema exercises every name in the definition.
  (void)ViewOutputSchema(catalog, view);
  if (view.where.has_value()) {
    (void)view.where->Bind(JoinedSchema(catalog, view));
  }
}

}  // namespace sdelta::core
