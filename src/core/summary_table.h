#ifndef SDELTA_CORE_SUMMARY_TABLE_H_
#define SDELTA_CORE_SUMMARY_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/self_maintenance.h"
#include "core/view_def.h"
#include "relational/flat_hash.h"
#include "relational/group_key.h"
#include "relational/packed_key.h"

namespace sdelta::core {

/// A materialized summary table: the physical rows of an AugmentedView
/// with a hash index on the group-by columns (the paper's composite
/// index), so the refresh function's per-tuple lookup is O(1).
///
/// Row layout matches ViewOutputSchema(physical): group-by values first,
/// then one column per physical aggregate.
class SummaryTable {
 public:
  /// Creates an empty summary table for the given definition.
  SummaryTable(AugmentedView def, const rel::Catalog& catalog);

  SummaryTable(const SummaryTable&) = delete;
  SummaryTable& operator=(const SummaryTable&) = delete;
  SummaryTable(SummaryTable&&) = default;
  SummaryTable& operator=(SummaryTable&&) = default;

  const AugmentedView& def() const { return def_; }
  const std::string& name() const { return def_.physical.name; }
  const rel::Schema& schema() const { return schema_; }
  size_t NumRows() const { return rows_.size(); }
  size_t num_group_columns() const { return num_group_columns_; }
  const std::vector<rel::Row>& rows() const { return rows_; }

  /// Discards current contents and evaluates the physical view from the
  /// catalog's base tables (initial load / rematerialization).
  void MaterializeFrom(const rel::Catalog& catalog);

  /// Replaces current contents with the given physical relation (must
  /// have this table's schema arity; keys must be unique).
  void LoadFrom(const rel::Table& physical_rows);

  /// The group key of a physical row (its first num_group_columns()
  /// values).
  rel::GroupKey KeyOf(const rel::Row& row) const;

  /// Keyed access. Pointers are invalidated by any mutation.
  const rel::Row* Find(const rel::GroupKey& key) const;
  rel::Row* FindMutable(const rel::GroupKey& key);

  /// Inserts a new group row; the key must not be present (throws
  /// std::logic_error otherwise — refresh guarantees this).
  void Insert(rel::Row row);

  /// Removes the group; returns false if absent.
  bool Erase(const rel::GroupKey& key);

  /// Copies the physical rows out as a plain Table (tests, examples).
  rel::Table ToTable() const;

  /// ToTable() in canonical row order (see CanonicalizeRows).
  rel::Table ToCanonicalTable() const;

  /// The user-visible (logical) rows, with AVG reconstructed.
  rel::Table ToLogicalTable() const;

  /// The key codec built over this view's group-by columns. String
  /// columns draw their dictionaries from the catalog pool by column
  /// name, so codes agree across batches (and across views grouping on
  /// the same column).
  const rel::PackedKeyCodec& codec() const { return codec_; }
  bool keys_packed() const { return codec_.packable(); }

  /// Index-operation tallies (Find/Insert/Erase), split by path. Feeds
  /// the key.packed_ratio metric and the shell's `dicts` command.
  uint64_t packed_key_ops() const { return packed_ops_; }
  uint64_t fallback_key_ops() const { return fallback_ops_; }
  const rel::ProbeStats& probe_stats() const {
    return packed_index_.probe_stats();
  }

 private:
  AugmentedView def_;
  rel::Schema schema_;
  size_t num_group_columns_ = 0;
  std::vector<size_t> group_idx_;  // 0..num_group_columns_-1 (EncodeRow arg)
  rel::PackedKeyCodec codec_;
  std::vector<rel::Row> rows_;
  // Every group lives in exactly one index: packed_index_ when its key
  // encodes, boxed_index_ otherwise (a key that escapes the codec never
  // Value-equals one that packs, so lookups probe a single index).
  rel::FlatHashMap<rel::PackedKey, size_t, rel::PackedKeyHash> packed_index_;
  std::unordered_map<rel::GroupKey, size_t, rel::GroupKeyHash> boxed_index_;
  // Mutated on const Find: accounting only. Refresh probes one view from
  // one thread (parallel refresh is one task per view), so no races.
  mutable uint64_t packed_ops_ = 0;
  mutable uint64_t fallback_ops_ = 0;
};

/// Canonical row order for byte-comparisons that must not depend on
/// physical row placement: rows sorted by every column left-to-right
/// under Value::Compare. Summary schemas lead with the group-by columns
/// and keys are unique, so the order is total and the sorted CSV of a
/// summary table is a pure function of its *contents* — the byte-compare
/// anchor for sharded composition (src/shard/) and replica convergence
/// (src/replica/), where insertion order legitimately differs.
rel::Table CanonicalizeRows(const rel::Table& physical_rows);

}  // namespace sdelta::core

#endif  // SDELTA_CORE_SUMMARY_TABLE_H_
