#ifndef SDELTA_CORE_SUMMARY_TABLE_H_
#define SDELTA_CORE_SUMMARY_TABLE_H_

#include <string>
#include <unordered_map>
#include <vector>

#include "core/self_maintenance.h"
#include "core/view_def.h"
#include "relational/group_key.h"

namespace sdelta::core {

/// A materialized summary table: the physical rows of an AugmentedView
/// with a hash index on the group-by columns (the paper's composite
/// index), so the refresh function's per-tuple lookup is O(1).
///
/// Row layout matches ViewOutputSchema(physical): group-by values first,
/// then one column per physical aggregate.
class SummaryTable {
 public:
  /// Creates an empty summary table for the given definition.
  SummaryTable(AugmentedView def, const rel::Catalog& catalog);

  SummaryTable(const SummaryTable&) = delete;
  SummaryTable& operator=(const SummaryTable&) = delete;
  SummaryTable(SummaryTable&&) = default;
  SummaryTable& operator=(SummaryTable&&) = default;

  const AugmentedView& def() const { return def_; }
  const std::string& name() const { return def_.physical.name; }
  const rel::Schema& schema() const { return schema_; }
  size_t NumRows() const { return rows_.size(); }
  size_t num_group_columns() const { return num_group_columns_; }
  const std::vector<rel::Row>& rows() const { return rows_; }

  /// Discards current contents and evaluates the physical view from the
  /// catalog's base tables (initial load / rematerialization).
  void MaterializeFrom(const rel::Catalog& catalog);

  /// Replaces current contents with the given physical relation (must
  /// have this table's schema arity; keys must be unique).
  void LoadFrom(const rel::Table& physical_rows);

  /// The group key of a physical row (its first num_group_columns()
  /// values).
  rel::GroupKey KeyOf(const rel::Row& row) const;

  /// Keyed access. Pointers are invalidated by any mutation.
  const rel::Row* Find(const rel::GroupKey& key) const;
  rel::Row* FindMutable(const rel::GroupKey& key);

  /// Inserts a new group row; the key must not be present (throws
  /// std::logic_error otherwise — refresh guarantees this).
  void Insert(rel::Row row);

  /// Removes the group; returns false if absent.
  bool Erase(const rel::GroupKey& key);

  /// Copies the physical rows out as a plain Table (tests, examples).
  rel::Table ToTable() const;

  /// The user-visible (logical) rows, with AVG reconstructed.
  rel::Table ToLogicalTable() const;

 private:
  AugmentedView def_;
  rel::Schema schema_;
  size_t num_group_columns_ = 0;
  std::vector<rel::Row> rows_;
  std::unordered_map<rel::GroupKey, size_t, rel::GroupKeyHash> index_;
};

}  // namespace sdelta::core

#endif  // SDELTA_CORE_SUMMARY_TABLE_H_
