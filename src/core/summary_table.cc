#include "core/summary_table.h"

#include <stdexcept>

namespace sdelta::core {

SummaryTable::SummaryTable(AugmentedView def, const rel::Catalog& catalog)
    : def_(std::move(def)),
      schema_(ViewOutputSchema(catalog, def_.physical)),
      num_group_columns_(def_.physical.group_by.size()) {}

void SummaryTable::MaterializeFrom(const rel::Catalog& catalog) {
  LoadFrom(EvaluateView(catalog, def_.physical));
}

void SummaryTable::LoadFrom(const rel::Table& physical_rows) {
  if (physical_rows.schema().NumColumns() != schema_.NumColumns()) {
    throw std::invalid_argument("LoadFrom arity mismatch for summary table " +
                                name());
  }
  rows_.clear();
  index_.clear();
  rows_.reserve(physical_rows.NumRows());
  index_.reserve(physical_rows.NumRows());
  for (const rel::Row& r : physical_rows.rows()) {
    Insert(r);
  }
}

rel::GroupKey SummaryTable::KeyOf(const rel::Row& row) const {
  return rel::GroupKey(row.begin(), row.begin() + num_group_columns_);
}

const rel::Row* SummaryTable::Find(const rel::GroupKey& key) const {
  auto it = index_.find(key);
  return it == index_.end() ? nullptr : &rows_[it->second];
}

rel::Row* SummaryTable::FindMutable(const rel::GroupKey& key) {
  auto it = index_.find(key);
  return it == index_.end() ? nullptr : &rows_[it->second];
}

void SummaryTable::Insert(rel::Row row) {
  if (row.size() != schema_.NumColumns()) {
    throw std::invalid_argument("row arity mismatch for summary table " +
                                name());
  }
  rel::GroupKey key = KeyOf(row);
  auto [it, inserted] = index_.emplace(std::move(key), rows_.size());
  if (!inserted) {
    throw std::logic_error("duplicate group inserted into summary table " +
                           name());
  }
  rows_.push_back(std::move(row));
}

bool SummaryTable::Erase(const rel::GroupKey& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  const size_t pos = it->second;
  index_.erase(it);
  const size_t last = rows_.size() - 1;
  if (pos != last) {
    rows_[pos] = std::move(rows_[last]);
    index_[KeyOf(rows_[pos])] = pos;
  }
  rows_.pop_back();
  return true;
}

rel::Table SummaryTable::ToTable() const {
  rel::Table out(schema_, name());
  out.Reserve(rows_.size());
  for (const rel::Row& r : rows_) out.Insert(r);
  return out;
}

rel::Table SummaryTable::ToLogicalTable() const {
  return LogicalRows(def_, ToTable());
}

}  // namespace sdelta::core
