#include "core/summary_table.h"

#include <algorithm>
#include <numeric>
#include <optional>
#include <stdexcept>

namespace sdelta::core {

SummaryTable::SummaryTable(AugmentedView def, const rel::Catalog& catalog)
    : def_(std::move(def)),
      schema_(ViewOutputSchema(catalog, def_.physical)),
      num_group_columns_(def_.physical.group_by.size()) {
  group_idx_.resize(num_group_columns_);
  std::iota(group_idx_.begin(), group_idx_.end(), size_t{0});
  // Output schema columns carry bare names ("city"), so every view
  // grouping on the same column shares one pool dictionary — which is
  // what keeps codes stable across batches and across views.
  codec_ = rel::PackedKeyCodec::ForColumns(
      schema_, group_idx_, [&catalog](const rel::Column& c) {
        return &catalog.dictionaries().ForColumn(c.name);
      });
}

void SummaryTable::MaterializeFrom(const rel::Catalog& catalog) {
  LoadFrom(EvaluateView(catalog, def_.physical));
}

void SummaryTable::LoadFrom(const rel::Table& physical_rows) {
  if (physical_rows.schema().NumColumns() != schema_.NumColumns()) {
    throw std::invalid_argument("LoadFrom arity mismatch for summary table " +
                                name());
  }
  rows_.clear();
  packed_index_.Clear();
  boxed_index_.clear();
  rows_.reserve(physical_rows.NumRows());
  if (codec_.packable()) {
    packed_index_.Reserve(physical_rows.NumRows());
  } else {
    boxed_index_.reserve(physical_rows.NumRows());
  }
  for (size_t i = 0; i < physical_rows.NumRows(); ++i) {
    Insert(physical_rows.RowAt(i));
  }
}

rel::GroupKey SummaryTable::KeyOf(const rel::Row& row) const {
  return rel::GroupKey(row.begin(), row.begin() + num_group_columns_);
}

const rel::Row* SummaryTable::Find(const rel::GroupKey& key) const {
  if (codec_.packable()) {
    const std::optional<rel::PackedKey> pk = codec_.EncodeKey(key);
    if (pk.has_value()) {
      ++packed_ops_;
      const size_t* pos = packed_index_.Find(*pk);
      return pos == nullptr ? nullptr : &rows_[*pos];
    }
  }
  ++fallback_ops_;
  auto it = boxed_index_.find(key);
  return it == boxed_index_.end() ? nullptr : &rows_[it->second];
}

rel::Row* SummaryTable::FindMutable(const rel::GroupKey& key) {
  return const_cast<rel::Row*>(
      static_cast<const SummaryTable*>(this)->Find(key));
}

void SummaryTable::Insert(rel::Row row) {
  if (row.size() != schema_.NumColumns()) {
    throw std::invalid_argument("row arity mismatch for summary table " +
                                name());
  }
  std::optional<rel::PackedKey> pk;
  if (codec_.packable()) pk = codec_.EncodeRow(row, group_idx_);
  if (pk.has_value()) {
    ++packed_ops_;
    auto [slot, inserted] = packed_index_.FindOrInsert(*pk, rows_.size());
    if (!inserted) {
      throw std::logic_error("duplicate group inserted into summary table " +
                             name());
    }
  } else {
    ++fallback_ops_;
    auto [it, inserted] = boxed_index_.emplace(KeyOf(row), rows_.size());
    if (!inserted) {
      throw std::logic_error("duplicate group inserted into summary table " +
                             name());
    }
  }
  rows_.push_back(std::move(row));
}

bool SummaryTable::Erase(const rel::GroupKey& key) {
  size_t pos = rows_.size();
  std::optional<rel::PackedKey> pk;
  if (codec_.packable()) pk = codec_.EncodeKey(key);
  if (pk.has_value()) {
    ++packed_ops_;
    if (!packed_index_.EraseOneIf(*pk, [&pos](size_t p) {
          pos = p;
          return true;
        })) {
      return false;
    }
  } else {
    ++fallback_ops_;
    auto it = boxed_index_.find(key);
    if (it == boxed_index_.end()) return false;
    pos = it->second;
    boxed_index_.erase(it);
  }
  const size_t last = rows_.size() - 1;
  if (pos != last) {
    rows_[pos] = std::move(rows_[last]);
    // Re-point the moved row's index entry (it lives in whichever index
    // its own key encodes into — independent of the erased key's path).
    std::optional<rel::PackedKey> mk;
    if (codec_.packable()) mk = codec_.EncodeRow(rows_[pos], group_idx_);
    if (mk.has_value()) {
      size_t* slot = packed_index_.Find(*mk);
      if (slot == nullptr) {
        throw std::logic_error("summary index out of sync for table " +
                               name());
      }
      *slot = pos;
    } else {
      boxed_index_[KeyOf(rows_[pos])] = pos;
    }
  }
  rows_.pop_back();
  return true;
}

rel::Table SummaryTable::ToTable() const {
  rel::Table out(schema_, name());
  out.Reserve(rows_.size());
  for (const rel::Row& r : rows_) out.Insert(r);
  return out;
}

rel::Table SummaryTable::ToLogicalTable() const {
  return LogicalRows(def_, ToTable());
}

rel::Table SummaryTable::ToCanonicalTable() const {
  return CanonicalizeRows(ToTable());
}

rel::Table CanonicalizeRows(const rel::Table& physical_rows) {
  std::vector<size_t> order(physical_rows.NumRows());
  std::iota(order.begin(), order.end(), size_t{0});
  const size_t num_columns = physical_rows.schema().NumColumns();
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    for (size_t c = 0; c < num_columns; ++c) {
      const int cmp = rel::Value::Compare(physical_rows.ValueAt(a, c),
                                          physical_rows.ValueAt(b, c));
      if (cmp != 0) return cmp < 0;
    }
    return false;
  });
  rel::Table out(physical_rows.schema(), physical_rows.name());
  out.Reserve(physical_rows.NumRows());
  out.AppendGather(physical_rows, order);
  return out;
}

}  // namespace sdelta::core
