#ifndef SDELTA_LATTICE_ANSWER_H_
#define SDELTA_LATTICE_ANSWER_H_

#include <string>
#include <vector>

#include "core/summary_table.h"
#include "lattice/vlattice.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sdelta::lattice {

/// Result of answering an aggregate query against the warehouse.
struct AnswerResult {
  rel::Table rows;          ///< the query's logical output columns
  std::string source_view;  ///< summary table used, or "" when from base
  bool from_base = false;   ///< true when no summary table could serve
  size_t rows_read = 0;     ///< input tuples scanned to produce the answer
};

/// Answers an aggregate query — expressed as a ViewDef (not materialized,
/// just describing SELECT/FROM/WHERE/GROUP BY) — using the cheapest
/// materialized summary table that *derives* it (paper §3.3: an edge
/// v1 -> v2 means v2 can be answered from v1 instead of base data).
///
/// The query is augmented like a view, matched against every summary
/// table with the §5.1 derives test, and rewritten onto the smallest
/// qualifying table (fewest rows, then fewest joins). If none qualifies
/// the query is evaluated from the base tables.
///
/// `summaries` must be parallel to `lattice.views` (the Warehouse facade
/// guarantees this layout).
///
/// With sinks attached the query is traced (span answer.query) and
/// counted: answer.view_hits / answer.base_fallbacks, plus
/// answer.rows_read.
AnswerResult AnswerQuery(const rel::Catalog& catalog, const VLattice& lattice,
                         const std::vector<const core::SummaryTable*>&
                             summaries,
                         const core::ViewDef& query,
                         obs::Tracer* tracer = nullptr,
                         obs::MetricsRegistry* metrics = nullptr);

}  // namespace sdelta::lattice

#endif  // SDELTA_LATTICE_ANSWER_H_
