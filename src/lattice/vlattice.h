#ifndef SDELTA_LATTICE_VLATTICE_H_
#define SDELTA_LATTICE_VLATTICE_H_

#include <optional>
#include <string>
#include <vector>

#include "core/propagate.h"
#include "core/self_maintenance.h"
#include "core/view_def.h"

namespace sdelta::lattice {

/// One derives edge: views[child] ≼ views[parent], with the edge query.
struct VLatticeEdge {
  size_t parent = 0;
  size_t child = 0;
  core::DerivationRecipe recipe;
};

/// The partially-materialized lattice over a set of generalized cube
/// views (paper §5.1/§5.4). By Theorem 5.1 the same structure serves as
/// both the V-lattice (views) and the D-lattice (summary-deltas).
struct VLattice {
  std::vector<core::AugmentedView> views;
  std::vector<VLatticeEdge> edges;  ///< every derives pair (parent, child)

  /// Indices of views with no parent (must be computed from base data).
  std::vector<size_t> Tops() const;
  /// Edges arriving at `child`.
  std::vector<const VLatticeEdge*> ParentsOf(size_t child) const;
  std::optional<size_t> IndexOf(const std::string& view_name) const;
  /// Multi-line rendering "child <= parent [join: dims]" for examples.
  std::string ToString() const;
};

/// Extends view definitions so that the derives relation grows (paper
/// §5.2/§5.3, producing Figure 8 for the retail example): every group-by
/// attribute that is a dimension attribute drags in the attributes it
/// functionally determines (FdClosure), provided some *other* view
/// groups by them — e.g. sCD_sales(city, date) gains `region` so that
/// sR_sales(region) derives from it without re-joining stores.
///
/// Only attributes of dimensions already joined by the view are added
/// (joins are pushed *down* the lattice, never duplicated upward, per
/// the §5.3 optimization).
std::vector<core::ViewDef> MakeLatticeFriendly(
    const rel::Catalog& catalog, const std::vector<core::ViewDef>& views);

/// Builds the lattice: augments nothing (views are already augmented),
/// computes every derives pair.
VLattice BuildVLattice(const rel::Catalog& catalog,
                       std::vector<core::AugmentedView> views);

}  // namespace sdelta::lattice

#endif  // SDELTA_LATTICE_VLATTICE_H_
