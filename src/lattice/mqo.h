#ifndef SDELTA_LATTICE_MQO_H_
#define SDELTA_LATTICE_MQO_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lattice/plan.h"

namespace sdelta::lattice {

/// Multi-query optimization across one batch's maintenance plans.
///
/// The §5.5 chooser costs each summary table's plan independently, yet
/// sibling views in the D-lattice routinely repeat the same dimension
/// joins over the same parent summary-delta (Figure 8: every child of
/// SID_sales that needs a stores attribute re-joins stores). This layer
/// sits between plan choice and execution:
///
///  1. every via-edge plan step is expanded into a canonical operator
///     chain (scan parent delta -> dimension joins -> final group-by),
///  2. join prefixes of those chains are fingerprinted; a prefix that
///     occurs in >= 2 plans becomes a shared subplan, and
///  3. a small order-deterministic rewrite-rule catalog turns the
///     detection into an executable MqoPlan: extract-common-subplan
///     (materialize once per batch, consumers become SharedScan),
///     push-aggregation-below-a-shared-join when the consumers' keys
///     allow it, prune unused columns from shared results, and collapse
///     redundant Select/Project pairs.
///
/// BuildMqoPlan is a pure function of (catalog, lattice, plan, changes),
/// so the resulting plan — and every mqo.* counter derived from it — is
/// byte-identical across thread counts and repeated runs.

/// One operator of an MQO chain. The chain for a via-edge step is
/// scan(sd_parent) -> ops...; the last op of a consumer program is
/// always the step's final kAggregate.
struct MqoOp {
  enum class Kind { kSelect, kProject, kJoin, kAggregate };
  Kind kind = Kind::kProject;
  /// kSelect: the predicate.
  std::optional<rel::Expression> predicate;
  /// kProject: columns to keep, by name, in input-schema order.
  std::vector<std::string> columns;
  /// kJoin: one dimension join (fact_column names the input column).
  core::DimensionJoin join;
  /// kAggregate: the group-by + aggregate specs.
  std::vector<rel::GroupByColumn> group_by;
  std::vector<rel::AggregateSpec> aggregates;

  /// Canonical encoding for fingerprinting: column order inside Project
  /// lists is sorted, expressions render via Expression::ToString, and
  /// nothing of the *consuming* view's identity appears — so column
  /// order and view identity never break a match.
  std::string Canonical() const;
};

using MqoChain = std::vector<MqoOp>;

/// How one plan step executes under MQO. Non-rewritten steps run the
/// legacy path (ComputeSummaryDelta / ApplyDerivation) untouched.
struct MqoProgram {
  bool rewritten = false;
  /// Shared subplan whose materialized result this step scans.
  std::optional<size_t> shared_input;
  /// Residual operators applied to the shared result (any joins the
  /// shared prefix does not cover, then the final aggregate).
  MqoChain ops;
};

/// One materialize-once-per-batch shared subplan.
struct MqoSharedSubplan {
  size_t id = 0;
  /// FNV-1a hash of the canonical prefix encoding (display/metrics key;
  /// bucketing compares the full canonical string, so collisions cannot
  /// merge distinct subplans).
  uint64_t fingerprint = 0;
  std::string canonical;
  /// View index whose summary-delta the subplan scans; nested subplans
  /// scan the shared result `shared_input` instead.
  size_t parent_view = 0;
  std::optional<size_t> shared_input;
  /// Nesting depth: 0 scans a summary-delta, k+1 scans a depth-k shared
  /// result. Within a wave, depth-ordered materialization is the only
  /// ordering constraint.
  size_t level = 0;
  MqoChain ops;
  /// First consumer step (plan order) — EXPLAIN hangs the shared(#k)
  /// annotation off this step.
  size_t producer_slot = 0;
  /// Plan-step slots that scan this result directly.
  std::vector<size_t> consumer_slots;
  /// Direct readers: consumer_slots plus nested subplans built on this.
  size_t refs = 0;
  /// D-lattice wave: one past the parent view's wave, i.e. the wave of
  /// every consumer, so materialization slots into the wave pre-phase.
  size_t wave = 0;
  double estimated_rows = 0;
  /// The push-agg-below-shared-join rule fired: ops start with a
  /// pre-aggregation over these keys.
  bool preaggregated = false;
  std::vector<std::string> preagg_keys;

  /// Deterministic label, e.g. "sd_SID_sales join stores".
  std::string Description(const VLattice& lattice) const;
};

/// The batch's MQO plan: per-step programs (parallel to plan.steps) and
/// the shared subplans in materialization (id) order.
struct MqoPlan {
  std::vector<MqoProgram> programs;
  std::vector<MqoSharedSubplan> shared;
  MqoStats stats;

  bool any_sharing() const { return !shared.empty(); }
};

/// Detects shared subplans across the chosen maintenance plans for this
/// change set and applies the rewrite-rule catalog. Uses the same
/// edge-gating predicate as PropagateAll, so a dimension delta that
/// disables an edge also removes its chain from sharing. Pure and
/// deterministic.
MqoPlan BuildMqoPlan(const rel::Catalog& catalog, const VLattice& lattice,
                     const MaintenancePlan& plan,
                     const core::ChangeSet& changes);

/// The collapse-select-project rule, exposed for direct testing: merges
/// adjacent keep-list Projects (outer subset of inner), drops a Project
/// feeding an Aggregate that references only projected columns, and
/// deduplicates identical adjacent Selects. Runs to fixpoint; returns
/// the number of operators removed.
size_t CollapseChain(MqoChain* chain);

/// Executes a chain over `input` (joins resolve dimension tables from
/// the catalog). `final_size_hint` pre-sizes the last op's GroupBy, as
/// ApplyDerivation does.
rel::Table ExecuteMqoChain(const rel::Catalog& catalog, const MqoChain& ops,
                           const rel::Table& input, exec::ThreadPool* pool,
                           exec::OperatorStats* stats,
                           size_t final_size_hint = 0);

/// Multi-line sharing report for one executed batch (the shell's `mqo`
/// command): per-subplan description, refs, executions, rows, bytes,
/// then the batch's MqoStats.
std::string FormatMqoReport(const MqoStats& stats,
                            const std::vector<SharedExecution>& shared_execs);

}  // namespace sdelta::lattice

#endif  // SDELTA_LATTICE_MQO_H_
