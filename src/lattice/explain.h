#ifndef SDELTA_LATTICE_EXPLAIN_H_
#define SDELTA_LATTICE_EXPLAIN_H_

#include <string>
#include <vector>

#include "core/refresh.h"
#include "lattice/mqo.h"
#include "lattice/plan.h"
#include "obs/json.h"

namespace sdelta::lattice {

/// One annotated plan step of an EXPLAIN / EXPLAIN ANALYZE tree.
///
/// Estimates are plan-time (the §5.5 group-count estimator plus the
/// change-set input cap); actuals are filled from StepExecution records
/// after a real run; refresh outcome classes (Figure 7: insert / update
/// / delete / minmax-recompute) are filled from the batch's per-view
/// refresh stats.
struct ExplainStep {
  std::string view;
  /// "base" for compute-from-base steps, else the D-lattice parent view
  /// whose summary-delta this step derives from.
  std::string source;
  /// Dimension tables the step itself joins: the edge's joins, minus —
  /// for SharedScan consumers — the joins covered by the shared prefix.
  std::vector<std::string> joins;
  /// The step scans shared subplan #k instead of re-running the shared
  /// joins (rendered as `SharedScan(#k)`).
  std::optional<size_t> shared_scan;
  /// The plan chose an edge but a dimension-table delta disabled it for
  /// this change set; the step computes from base instead.
  bool edge_disabled = false;
  /// D-lattice depth: 0 = from base, k+1 = derived from a wave-k parent.
  size_t wave = 0;

  /// §5.5 estimate of the view's group count.
  double estimated_groups = 0;
  /// Estimated rows feeding the step (change-set size for base steps;
  /// the parent's estimated delta cardinality along an edge).
  double estimated_input_rows = 0;
  /// Estimated summary-delta cardinality: min(groups, input rows).
  double estimated_delta_rows = 0;
  /// The chooser's cost for this step (plan.edge_cost for edges).
  double estimated_cost = 0;

  bool has_actuals = false;
  size_t actual_input_rows = 0;
  size_t actual_delta_rows = 0;
  /// Wall time (non-deterministic; rendered only with include_timings).
  double seconds = 0;
  exec::OperatorStats ops;

  bool has_refresh = false;
  core::RefreshStats refresh;
};

/// One shared subplan of the batch's MQO plan, annotated onto the tree:
/// `shared(#k, refs=N)` renders on the materializing (producer) step,
/// `SharedScan(#k)` on every consumer. Like steps, the estimate side is
/// plan-time; actuals come from SharedExecution records, and the MQO
/// contract is executions == 1 per batch.
struct ExplainShared {
  size_t id = 0;
  /// Deterministic label, e.g. "sd_SID_sales join stores".
  std::string description;
  /// Parent view whose summary-delta the subplan scans; nested subplans
  /// scan shared subplan `scans_shared` instead.
  std::string source;
  std::optional<size_t> scans_shared;
  size_t refs = 0;
  size_t wave = 0;
  bool preaggregated = false;
  std::vector<std::string> preagg_keys;
  uint64_t fingerprint = 0;
  double estimated_rows = 0;
  /// First consumer step (the one the shared(#k) annotation hangs off).
  std::string producer;
  std::vector<std::string> consumers;

  bool has_actuals = false;
  size_t executions = 0;
  size_t input_rows = 0;
  size_t rows = 0;
  size_t bytes = 0;
  /// Wall time (non-deterministic; rendered only with include_timings).
  double seconds = 0;
  exec::OperatorStats ops;
};

struct ExplainRenderOptions {
  /// Include wall-clock fields (step seconds, per-operator seconds).
  /// Off by default so default renderings are byte-identical across
  /// runs and thread counts.
  bool include_timings = false;
};

/// A deterministic annotated plan tree. The default renderings (text,
/// Graphviz DOT, JSON under the versioned sdelta.explain.v1 schema)
/// contain only plan-and-data-determined fields, so they are
/// byte-identical across thread counts and repeated runs on the same
/// catalog + change set.
struct ExplainResult {
  bool analyzed = false;
  /// "lattice" when the plan uses D-lattice edges, "direct" for the
  /// every-view-from-base baseline.
  std::string plan_source = "lattice";
  /// Steps in plan (topological) order.
  std::vector<ExplainStep> steps;
  /// Shared subplans of the batch's MQO plan, in id order (empty when
  /// MQO is off or the batch has no sharing).
  std::vector<ExplainShared> shared;

  /// Indented tree, one step per node, children under their D-lattice
  /// source view.
  std::string ToText(const ExplainRenderOptions& options = {}) const;
  /// Graphviz digraph: base + one node per view, edges labelled with
  /// the dimension joins.
  std::string ToDot(const ExplainRenderOptions& options = {}) const;
  /// {"schema":"sdelta.explain.v1","analyzed":...,"plan":...,
  ///  "steps":[...]}.
  obs::Json ToJson(const ExplainRenderOptions& options = {}) const;

  ExplainStep* FindStep(const std::string& view_name);
};

/// Builds the estimate side of the tree from a chosen plan and a change
/// set (no execution): per-step source/joins after dimension-delta edge
/// gating, wave numbers, and estimated input/delta cardinalities. When
/// `mqo` is given (the same BuildMqoPlan output PropagateAll executes),
/// shared subplans and per-step SharedScan annotations are attached.
ExplainResult BuildExplain(const rel::Catalog& catalog,
                           const VLattice& lattice,
                           const MaintenancePlan& plan,
                           const core::ChangeSet& changes,
                           const MqoPlan* mqo = nullptr);

/// Copies a propagate run's StepExecution records (parallel to the plan
/// steps the explain was built from) onto the matching steps and marks
/// the result analyzed.
void AttachActuals(const std::vector<StepExecution>& step_execs,
                   ExplainResult* explain);

/// As above, additionally attaching SharedExecution actuals (matched by
/// shared-subplan id) onto the explain's shared entries.
void AttachActuals(const std::vector<StepExecution>& step_execs,
                   const std::vector<SharedExecution>& shared_execs,
                   ExplainResult* explain);

}  // namespace sdelta::lattice

#endif  // SDELTA_LATTICE_EXPLAIN_H_
