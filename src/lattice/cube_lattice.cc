#include "lattice/cube_lattice.h"

#include <algorithm>
#include <set>

namespace sdelta::lattice {

namespace {

std::set<std::string> AsSet(const std::vector<std::string>& attrs) {
  return std::set<std::string>(attrs.begin(), attrs.end());
}

}  // namespace

std::optional<size_t> AttributeLattice::Find(
    const std::vector<std::string>& attrs) const {
  const std::set<std::string> want = AsSet(attrs);
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (AsSet(nodes[i]) == want) return i;
  }
  return std::nullopt;
}

bool AttributeLattice::HasEdge(size_t from, size_t to) const {
  for (const auto& [f, t] : edges) {
    if (f == from && t == to) return true;
  }
  return false;
}

std::string AttributeLattice::ToString() const {
  auto node_name = [&](size_t i) {
    std::string s = "(";
    for (size_t k = 0; k < nodes[i].size(); ++k) {
      if (k > 0) s += ", ";
      s += nodes[i][k];
    }
    return s + ")";
  };
  std::string s;
  for (const auto& [f, t] : edges) {
    s += node_name(f) + " -> " + node_name(t) + "\n";
  }
  return s;
}

AttributeLattice BuildCubeLattice(
    const std::vector<std::string>& dimensions) {
  AttributeLattice lattice;
  const size_t k = dimensions.size();
  const size_t n = size_t{1} << k;
  // Subset with bit i set contains dimensions[i]; order subsets by
  // descending popcount so the top is node 0.
  std::vector<size_t> masks(n);
  for (size_t m = 0; m < n; ++m) masks[m] = m;
  std::sort(masks.begin(), masks.end(), [](size_t a, size_t b) {
    const int pa = __builtin_popcountll(a);
    const int pb = __builtin_popcountll(b);
    if (pa != pb) return pa > pb;
    return a < b;
  });
  std::vector<size_t> index_of_mask(n);
  for (size_t i = 0; i < n; ++i) {
    index_of_mask[masks[i]] = i;
    std::vector<std::string> attrs;
    for (size_t b = 0; b < k; ++b) {
      if (masks[i] & (size_t{1} << b)) attrs.push_back(dimensions[b]);
    }
    lattice.nodes.push_back(std::move(attrs));
  }
  // Edge: drop exactly one attribute.
  for (size_t m = 0; m < n; ++m) {
    for (size_t b = 0; b < k; ++b) {
      if (m & (size_t{1} << b)) {
        lattice.edges.emplace_back(index_of_mask[m],
                                   index_of_mask[m & ~(size_t{1} << b)]);
      }
    }
  }
  return lattice;
}

AttributeLattice CombineHierarchies(
    const std::vector<DimensionHierarchy>& dimensions) {
  AttributeLattice lattice;
  const size_t k = dimensions.size();
  // Per-dimension level choice: 0..levels.size()-1 picks that level;
  // levels.size() means the dimension is dropped.
  std::vector<size_t> radix(k);
  size_t total = 1;
  for (size_t d = 0; d < k; ++d) {
    radix[d] = dimensions[d].levels.size() + 1;
    total *= radix[d];
  }

  std::vector<std::vector<size_t>> choices;  // mixed-radix digits
  choices.reserve(total);
  std::vector<size_t> cur(k, 0);
  for (size_t i = 0; i < total; ++i) {
    choices.push_back(cur);
    for (size_t d = 0; d < k; ++d) {
      if (++cur[d] < radix[d]) break;
      cur[d] = 0;
    }
  }
  // Order nodes by ascending total coarseness (sum of digits) so the
  // finest node comes first.
  std::sort(choices.begin(), choices.end(),
            [](const std::vector<size_t>& a, const std::vector<size_t>& b) {
              size_t sa = 0;
              size_t sb = 0;
              for (size_t x : a) sa += x;
              for (size_t x : b) sb += x;
              if (sa != sb) return sa < sb;
              return a < b;
            });

  auto attrs_of = [&](const std::vector<size_t>& choice) {
    std::vector<std::string> attrs;
    for (size_t d = 0; d < k; ++d) {
      if (choice[d] < dimensions[d].levels.size()) {
        attrs.push_back(dimensions[d].levels[choice[d]]);
      }
    }
    return attrs;
  };

  for (const std::vector<size_t>& c : choices) {
    lattice.nodes.push_back(attrs_of(c));
  }
  // Edge: coarsen exactly one dimension by one step.
  for (size_t i = 0; i < choices.size(); ++i) {
    for (size_t d = 0; d < k; ++d) {
      if (choices[i][d] + 1 >= radix[d]) continue;
      std::vector<size_t> next = choices[i];
      ++next[d];
      for (size_t j = 0; j < choices.size(); ++j) {
        if (choices[j] == next) {
          lattice.edges.emplace_back(i, j);
          break;
        }
      }
    }
  }
  return lattice;
}

AttributeLattice RemoveNodes(const AttributeLattice& lattice,
                             const std::vector<size_t>& removed) {
  std::vector<bool> gone(lattice.nodes.size(), false);
  for (size_t r : removed) gone[r] = true;

  // Re-route edges through removed nodes transitively.
  // adjacency on the original node ids:
  std::vector<std::pair<size_t, size_t>> edges = lattice.edges;
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<std::pair<size_t, size_t>> next;
    for (const auto& [f, t] : edges) {
      if (!gone[t]) {
        next.emplace_back(f, t);
        continue;
      }
      // splice f -> (t) -> t2 for every outgoing edge of t
      for (const auto& [f2, t2] : edges) {
        if (f2 == t) {
          next.emplace_back(f, t2);
          changed = true;
        }
      }
    }
    edges = std::move(next);
  }

  AttributeLattice out;
  std::vector<size_t> remap(lattice.nodes.size());
  for (size_t i = 0; i < lattice.nodes.size(); ++i) {
    if (!gone[i]) {
      remap[i] = out.nodes.size();
      out.nodes.push_back(lattice.nodes[i]);
    }
  }
  std::set<std::pair<size_t, size_t>> dedup;
  for (const auto& [f, t] : edges) {
    if (gone[f] || gone[t]) continue;
    dedup.emplace(remap[f], remap[t]);
  }
  out.edges.assign(dedup.begin(), dedup.end());
  return out;
}

}  // namespace sdelta::lattice
