#ifndef SDELTA_LATTICE_DERIVES_H_
#define SDELTA_LATTICE_DERIVES_H_

#include <optional>

#include "core/propagate.h"
#include "core/self_maintenance.h"

namespace sdelta::lattice {

/// Decides the *derives* relation child ≼ parent of paper §5.1 and, when
/// it holds, constructs the edge query as a DerivationRecipe.
///
/// child ≼ parent holds iff child can be written as a single-block
/// SELECT-FROM-GROUPBY over parent, possibly joined with dimension
/// tables along foreign keys:
///  1. both views range over the same fact table with syntactically
///     equal predicates;
///  2. every group-by attribute of child is a group-by attribute of
///     parent, or an attribute of a dimension table whose foreign key is
///     a group-by attribute of parent;
///  3. every aggregate a(E) of child either appears in parent, or E is
///     an expression over parent group-by attributes / attributes of
///     dimension tables reachable as in (2).
///
/// Aggregate rewriting (§5.1): COUNT(*) -> SUM of parent's COUNT(*);
/// matching aggregates a(E) -> SUM/MIN/MAX of parent's column; for E
/// over parent group-bys, SUM(E) -> SUM(E' * Y), COUNT(E) ->
/// SUM(CASE WHEN E' IS NULL THEN 0 ELSE Y END), MIN/MAX(E) ->
/// MIN/MAX(E'), where Y is parent's COUNT(*) column and E' is E
/// re-targeted at the parent's output columns.
///
/// By Theorem 5.1 the returned recipe computes both the child *view*
/// from the parent view (V-lattice edge) and the child *summary-delta*
/// from the parent summary-delta (D-lattice edge).
///
/// Returns nullopt when child does not derive from parent.
std::optional<core::DerivationRecipe> ComputeDerivation(
    const rel::Catalog& catalog, const core::AugmentedView& child,
    const core::AugmentedView& parent);

}  // namespace sdelta::lattice

#endif  // SDELTA_LATTICE_DERIVES_H_
