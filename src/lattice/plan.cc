#include "lattice/plan.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <unordered_set>

#include "core/view_def.h"
#include "lattice/mqo.h"
#include "relational/group_key.h"
#include "relational/operators.h"

namespace sdelta::lattice {

std::string MaintenancePlan::ToString(const VLattice& lattice) const {
  std::string s;
  for (const PlanStep& step : steps) {
    s += lattice.views[step.view].name();
    if (step.edge.has_value()) {
      s += " <- sd_" + lattice.views[lattice.edges[*step.edge].parent].name();
      const auto& joins = lattice.edges[*step.edge].recipe.joins;
      if (!joins.empty()) {
        s += " [join:";
        for (const core::DimensionJoin& j : joins) s += " " + j.dim_table;
        s += "]";
      }
    } else {
      s += " <- base changes";
    }
    s += "\n";
  }
  return s;
}

namespace {

/// Whether group-by attribute `target` (provenance "table.attr") is
/// functionally determined by another group-by attribute, and therefore
/// contributes no additional groups (e.g. region alongside city).
bool DeterminedByOther(const rel::Catalog& catalog,
                       const std::vector<std::string>& provenances,
                       const std::string& target,
                       const std::string& fact_table) {
  const size_t dot = target.find('.');
  const std::string target_table = target.substr(0, dot);
  const std::string target_attr = target.substr(dot + 1);
  const std::string fact_prefix = fact_table + ".";

  for (const std::string& other : provenances) {
    if (other == target) continue;
    const size_t odot = other.find('.');
    const std::string other_table = other.substr(0, odot);
    const std::string other_attr = other.substr(odot + 1);
    if (other_table == target_table) {
      for (const std::string& dep :
           catalog.FdClosure(other_table, other_attr)) {
        if (dep == target_attr) return true;
      }
    }
    // A fact FK column determines every attribute of its dimension.
    if (other.rfind(fact_prefix, 0) == 0) {
      const rel::ForeignKey* fk =
          catalog.FindForeignKey(fact_table, other_attr);
      if (fk != nullptr && fk->dim_table == target_table) return true;
    }
  }
  return false;
}

}  // namespace

double EstimateGroupCount(const rel::Catalog& catalog,
                          const core::AugmentedView& view) {
  const core::ViewDef& def = view.physical;
  const rel::Schema joined = core::JoinedSchema(catalog, def);
  std::vector<std::string> provenances;
  for (const std::string& g : def.group_by) {
    provenances.push_back(joined.column(joined.Resolve(g)).name);
  }
  double product = 1.0;
  for (const std::string& qualified : provenances) {
    if (DeterminedByOther(catalog, provenances, qualified, def.fact_table)) {
      continue;
    }
    const size_t dot = qualified.find('.');
    const std::string table = qualified.substr(0, dot);
    const std::string column = qualified.substr(dot + 1);
    const rel::Table& t = catalog.GetTable(table);
    const size_t idx = t.schema().Resolve(column);
    std::unordered_set<rel::GroupKey, rel::GroupKeyHash> distinct;
    for (size_t r = 0; r < t.NumRows(); ++r) {
      distinct.insert(rel::GroupKey{t.ValueAt(r, idx)});
    }
    product *= static_cast<double>(std::max<size_t>(distinct.size(), 1));
  }
  return product;
}

MaintenancePlan ChoosePlan(const rel::Catalog& catalog,
                           const VLattice& lattice,
                           const PlanOptions& options) {
  MaintenancePlan plan;
  const size_t n = lattice.views.size();
  obs::TraceSpan span(options.tracer, "plan.choose");
  span.Attr("views", static_cast<uint64_t>(n));
  span.Attr("use_lattice", options.use_lattice);

  if (!options.use_lattice) {
    for (size_t i = 0; i < n; ++i) {
      const double est = EstimateGroupCount(catalog, lattice.views[i]);
      plan.steps.push_back(PlanStep{i, std::nullopt, est, est});
    }
    if (options.metrics != nullptr) {
      options.metrics->Add("plan.steps_from_base", n);
    }
    return plan;
  }

  // Rank views from finest (largest estimated group count) to coarsest;
  // ties broken by name for determinism. A view may only derive from a
  // strictly earlier-ranked view, which rules out cycles between
  // mutually derivable views.
  std::vector<double> estimate(n);
  for (size_t i = 0; i < n; ++i) {
    estimate[i] = EstimateGroupCount(catalog, lattice.views[i]);
  }
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (estimate[a] != estimate[b]) return estimate[a] > estimate[b];
    return lattice.views[a].name() < lattice.views[b].name();
  });
  std::vector<size_t> rank(n);
  for (size_t r = 0; r < n; ++r) rank[order[r]] = r;

  for (size_t r = 0; r < n; ++r) {
    const size_t v = order[r];
    // Cheapest admissible parent. The edge cost is the parent's
    // estimated summary-delta cardinality scaled by the dimension joins
    // the edge performs ([AAD+96]-style, extended with the join
    // annotation as §5.5 prescribes).
    auto edge_cost = [&](const VLatticeEdge& edge) {
      return estimate[edge.parent] *
             static_cast<double>(1 + edge.recipe.joins.size());
    };
    std::optional<size_t> best_edge;
    for (size_t e = 0; e < lattice.edges.size(); ++e) {
      const VLatticeEdge& edge = lattice.edges[e];
      if (edge.child != v) continue;
      if (rank[edge.parent] >= r) continue;  // admissibility
      if (!best_edge.has_value() ||
          edge_cost(edge) < edge_cost(lattice.edges[*best_edge])) {
        best_edge = e;
      }
    }
    if (options.metrics != nullptr) {
      if (best_edge.has_value()) {
        options.metrics->Observe("plan.edge_cost",
                                 edge_cost(lattice.edges[*best_edge]));
      } else {
        options.metrics->Add("plan.steps_from_base");
      }
    }
    const double cost = best_edge.has_value()
                            ? edge_cost(lattice.edges[*best_edge])
                            : estimate[v];
    plan.steps.push_back(PlanStep{v, best_edge, estimate[v], cost});
  }
  return plan;
}

LatticePropagateResult PropagateAll(const rel::Catalog& catalog,
                                    const VLattice& lattice,
                                    const MaintenancePlan& plan,
                                    const core::ChangeSet& changes,
                                    const core::PropagateOptions& opts) {
  LatticePropagateResult result;
  result.deltas.resize(lattice.views.size());
  result.step_execs.resize(plan.steps.size());
  std::vector<bool> computed(lattice.views.size(), false);

  // Root span for the phase; plan-step spans that compute from base
  // changes attach here, while D-lattice-derived steps parent on their
  // *source view's* span so the trace tree mirrors the plan (one span
  // per PlanStep, named after the view it computes).
  obs::TraceSpan phase(opts.tracer, "propagate");
  std::vector<uint64_t> view_span(lattice.views.size(), 0);

  // A lattice edge is usable for this change set only if none of the
  // dimension tables the edge re-joins have changed: the parent's
  // summary-delta is computed against pre-change dimensions and would
  // miss the moved rows. (Dimensions changed but fully *represented* by
  // the parent — the parent view joins them — flow through correctly.)
  auto edge_usable = [&](const VLatticeEdge& edge) {
    for (const core::DimensionJoin& j : edge.recipe.joins) {
      auto it = changes.dimensions.find(j.dim_table);
      if (it != changes.dimensions.end() && !it->second.empty()) {
        return false;
      }
    }
    return true;
  };

  // Per-step edge gating, wave membership, and the topological check —
  // computed up front and identically on the serial and wave-scheduled
  // paths, so StepExecution records (and thus explain output) never
  // depend on the thread count.
  std::vector<size_t> wave_of(lattice.views.size(), 0);
  std::vector<std::vector<size_t>> waves;  // slot indexes per wave
  for (size_t slot = 0; slot < plan.steps.size(); ++slot) {
    const PlanStep& step = plan.steps[slot];
    StepExecution& ex = result.step_execs[slot];
    ex.view = step.view;
    ex.via_edge =
        step.edge.has_value() && edge_usable(lattice.edges[*step.edge]);
    ex.edge_disabled = step.edge.has_value() && !ex.via_edge;
    size_t w = 0;
    if (ex.via_edge) {
      const size_t parent = lattice.edges[*step.edge].parent;
      if (!computed[parent]) {
        throw std::logic_error("maintenance plan is not topologically "
                               "ordered: parent of " +
                               lattice.views[step.view].name() +
                               " not yet computed");
      }
      w = wave_of[parent] + 1;
    }
    wave_of[step.view] = w;
    ex.wave = w;
    computed[step.view] = true;
    if (w >= waves.size()) waves.resize(w + 1);
    waves[w].push_back(slot);
  }

  // Multi-query optimization: detect join subtrees shared by >= 2 plans
  // and materialize each once per batch (lattice/mqo.h). The MqoPlan is
  // a pure function of (catalog, lattice, plan, changes), so programs,
  // shared subplans, and every mqo.* counter are identical across
  // thread counts. Off (or with no sharing) every step runs the legacy
  // path below untouched.
  MqoPlan mqo;
  if (opts.mqo_enabled) {
    mqo = BuildMqoPlan(catalog, lattice, plan, changes);
    result.mqo = mqo.stats;
    for (size_t slot = 0; slot < plan.steps.size(); ++slot) {
      if (mqo.programs[slot].rewritten) {
        result.step_execs[slot].shared_scan = mqo.programs[slot].shared_input;
      }
    }
  }
  // The per-batch shared-result cache, keyed by subplan id (ids order
  // fingerprint buckets deterministically). Entries live exactly as
  // long as this PropagateAll call.
  std::vector<rel::Table> shared_tables(mqo.shared.size());
  std::vector<uint64_t> shared_span(mqo.shared.size(), 0);
  result.shared_execs.resize(mqo.shared.size());

  // Runs one plan step (on whichever thread the wave scheduler picked)
  // and records its summary-delta, span id, and execution record into
  // per-step slots. The explicit parent span mirrors the D-lattice:
  // derived steps parent on their source view's span, base steps on the
  // phase.
  // Saturating double -> size_t for the §5.5 estimates feeding hash
  // pre-sizing (an estimate can be huge or non-finite; the hint is
  // additionally capped so a wild estimate cannot over-allocate).
  constexpr size_t kMaxSizeHint = size_t{1} << 22;
  auto size_hint_of = [&](double estimated_groups) -> size_t {
    if (!(estimated_groups > 0)) return 0;
    if (estimated_groups >= static_cast<double>(kMaxSizeHint)) {
      return kMaxSizeHint;
    }
    return static_cast<size_t>(estimated_groups);
  };

  // Materializes shared subplan `id` (its input — a parent delta or a
  // shallower shared result — is in place by the wave/lazy ordering).
  auto run_shared = [&](size_t id) {
    const MqoSharedSubplan& sp = mqo.shared[id];
    SharedExecution& ex = result.shared_execs[id];
    const auto start = std::chrono::steady_clock::now();
    const rel::Table& input = sp.shared_input.has_value()
                                  ? shared_tables[*sp.shared_input]
                                  : result.deltas[sp.parent_view];
    const uint64_t parent_span = sp.shared_input.has_value()
                                     ? shared_span[*sp.shared_input]
                                     : view_span[sp.parent_view];
    obs::TraceSpan span(opts.tracer, "mqo.shared#" + std::to_string(id),
                        parent_span);
    shared_tables[id] = ExecuteMqoChain(catalog, sp.ops, input, opts.pool,
                                        &ex.ops,
                                        size_hint_of(sp.estimated_rows));
    ex.id = id;
    ex.description = sp.Description(lattice);
    ex.parent_view = lattice.views[sp.parent_view].name();
    ex.scans_shared = sp.shared_input;
    ex.refs = sp.refs;
    ex.executions += 1;
    ex.input_rows = input.NumRows();
    ex.rows = shared_tables[id].NumRows();
    ex.bytes = shared_tables[id].ApproxBytes();
    span.Attr("refs", static_cast<uint64_t>(sp.refs));
    span.Attr("rows", static_cast<uint64_t>(ex.rows));
    shared_span[id] = span.id();
    ex.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  };

  auto run_step = [&](size_t slot, core::PropagateStats* stats) {
    const PlanStep& step = plan.steps[slot];
    StepExecution& ex = result.step_execs[slot];
    const auto start = std::chrono::steady_clock::now();
    const uint64_t parent_span =
        ex.shared_scan.has_value()
            ? shared_span[*ex.shared_scan]
            : (ex.via_edge ? view_span[lattice.edges[*step.edge].parent]
                           : phase.id());
    obs::TraceSpan span(opts.tracer, lattice.views[step.view].name(),
                        parent_span);
    if (ex.shared_scan.has_value()) {
      // SharedScan: the dimension joins this step shares with its
      // siblings already ran once; apply only the residual operators to
      // the cached result. Byte-identical to the ApplyDerivation path —
      // the shared prefix is the same computation, modulo columns no
      // reader references.
      const VLatticeEdge& edge = lattice.edges[*step.edge];
      const rel::Table& shared = shared_tables[*ex.shared_scan];
      const size_t in_rows = shared.NumRows();
      size_t hint = size_hint_of(step.estimated_groups);
      if (hint == 0 || hint > in_rows) hint = in_rows;
      result.deltas[step.view] =
          ExecuteMqoChain(catalog, mqo.programs[slot].ops, shared, opts.pool,
                          &stats->ops, hint);
      result.deltas[step.view].SetName("sd_" +
                                       lattice.views[step.view].name());
      stats->prepared_tuples = in_rows;
      stats->delta_groups = result.deltas[step.view].NumRows();
      if (opts.metrics != nullptr) stats->EmitTo(*opts.metrics);
      span.Attr("source", lattice.views[edge.parent].name());
      span.Attr("shared", static_cast<uint64_t>(*ex.shared_scan));
    } else if (ex.via_edge) {
      const VLatticeEdge& edge = lattice.edges[*step.edge];
      // The child can have at most as many delta groups as the parent
      // has delta rows, so take the tighter of that bound and the plan
      // estimate.
      const size_t parent_rows = result.deltas[edge.parent].NumRows();
      size_t hint = size_hint_of(step.estimated_groups);
      if (hint == 0 || hint > parent_rows) hint = parent_rows;
      result.deltas[step.view] =
          core::ApplyDerivation(catalog, edge.recipe,
                                result.deltas[edge.parent], opts.pool,
                                &stats->ops, hint);
      stats->prepared_tuples = parent_rows;
      stats->delta_groups = result.deltas[step.view].NumRows();
      if (opts.metrics != nullptr) stats->EmitTo(*opts.metrics);
      span.Attr("source", lattice.views[edge.parent].name());
    } else {
      core::PropagateOptions step_opts = opts;
      step_opts.delta_size_hint = size_hint_of(step.estimated_groups);
      result.deltas[step.view] = core::ComputeSummaryDelta(
          catalog, lattice.views[step.view], changes, step_opts, stats);
      span.Attr("source", "base");
    }
    span.Attr("delta_rows", static_cast<uint64_t>(stats->delta_groups));
    view_span[step.view] = span.id();
    ex.input_rows = stats->prepared_tuples;
    ex.delta_rows = stats->delta_groups;
    ex.ops = stats->ops;
    ex.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  };

  std::vector<core::PropagateStats> step_stats(plan.steps.size());
  if (opts.pool == nullptr) {
    // Serial path: run steps in plan order, materializing each shared
    // subplan (and, recursively, the shallower subplan it builds on)
    // just before its first consumer. Exactly one execution per
    // subplan; with MQO off or no sharing this is the legacy loop.
    std::vector<bool> shared_done(mqo.shared.size(), false);
    auto ensure_shared = [&](auto&& self, size_t id) -> void {
      if (shared_done[id]) return;
      if (mqo.shared[id].shared_input.has_value()) {
        self(self, *mqo.shared[id].shared_input);
      }
      run_shared(id);
      shared_done[id] = true;
    };
    for (size_t slot = 0; slot < plan.steps.size(); ++slot) {
      if (result.step_execs[slot].shared_scan.has_value()) {
        ensure_shared(ensure_shared, *result.step_execs[slot].shared_scan);
      }
      run_step(slot, &step_stats[slot]);
    }
  } else {
    // Wave schedule: wave 0 computes from base changes (or along an edge
    // disabled by dimension deltas), wave k+1 derives from a wave-k
    // parent. Steps within a wave are independent by construction, so
    // each wave is one fork/join over the pool; the wave barrier
    // guarantees every parent's summary-delta (and its span id) is in
    // place before any dependent dispatches. Shared subplans of a wave
    // run as a pre-phase (one fork/join per nesting level) so every
    // cached result exists before the wave's consumer steps dispatch.
    for (size_t w = 0; w < waves.size(); ++w) {
      size_t max_level = 0;
      bool any_shared = false;
      for (const MqoSharedSubplan& sp : mqo.shared) {
        if (sp.wave != w) continue;
        any_shared = true;
        max_level = std::max(max_level, sp.level);
      }
      if (any_shared) {
        for (size_t level = 0; level <= max_level; ++level) {
          exec::TaskGroup shared_group(opts.pool);
          for (const MqoSharedSubplan& sp : mqo.shared) {
            if (sp.wave != w || sp.level != level) continue;
            const size_t id = sp.id;
            shared_group.Spawn([&, id] { run_shared(id); });
          }
          shared_group.Wait();
        }
      }
      exec::TaskGroup group(opts.pool);
      for (size_t slot : waves[w]) {
        group.Spawn([&, slot] { run_step(slot, &step_stats[slot]); });
      }
      group.Wait();
      if (opts.metrics != nullptr) {
        opts.metrics->Add("exec.waves");
        opts.metrics->Observe("exec.wave_width",
                              static_cast<double>(waves[w].size()));
      }
    }
  }
  // Fold stats deterministically: shared-subplan operator accounting in
  // id order first, then per-step stats in plan order.
  for (const SharedExecution& sx : result.shared_execs) {
    result.totals.ops.MergeFrom(sx.ops);
  }
  for (const core::PropagateStats& st : step_stats) {
    result.totals.prepared_tuples += st.prepared_tuples;
    result.totals.delta_groups += st.delta_groups;
    result.totals.ops.MergeFrom(st.ops);
  }
  // MQO accounting: rows consumers read from the cache instead of
  // recomputing (rows x (refs - 1) per subplan) and the cache's total
  // footprint. Emitted even when zero so the mqo.* series exist
  // whenever the layer is on.
  for (const SharedExecution& sx : result.shared_execs) {
    result.mqo.rows_reused += sx.rows * (sx.refs - 1);
    result.mqo.bytes_cached += sx.bytes;
  }
  if (opts.metrics != nullptr && opts.mqo_enabled) {
    opts.metrics->Add("mqo.subplans_detected", result.mqo.subplans_detected);
    opts.metrics->Add("mqo.subplans_materialized",
                      result.mqo.subplans_materialized);
    opts.metrics->Add("mqo.rows_reused", result.mqo.rows_reused);
    opts.metrics->Add("mqo.bytes_cached", result.mqo.bytes_cached);
    opts.metrics->Add("mqo.rule.extract_common_subplan.fires",
                      result.mqo.rules.extract_common_subplan);
    opts.metrics->Add("mqo.rule.push_agg_below_shared_join.fires",
                      result.mqo.rules.push_agg_below_shared_join);
    opts.metrics->Add("mqo.rule.prune_shared_columns.fires",
                      result.mqo.rules.prune_shared_columns);
    opts.metrics->Add("mqo.rule.collapse_select_project.fires",
                      result.mqo.rules.collapse_select_project);
    opts.metrics->Add("mqo.rule_fires", result.mqo.rules.Total());
  }
  return result;
}

}  // namespace sdelta::lattice
