#include "lattice/derives.h"

#include <map>
#include <stdexcept>

#include "core/view_def.h"
#include "relational/operators.h"

namespace sdelta::lattice {

using core::AugmentedView;
using core::DerivationRecipe;
using core::DimensionJoin;
using core::ViewDef;
using rel::Expression;

namespace {

/// Canonical provenance of a name in a view: the fully qualified column
/// name in the view's joined schema ("pos.date", "stores.city").
std::string Provenance(const rel::Schema& joined_schema,
                       const std::string& name) {
  return joined_schema.column(joined_schema.Resolve(name)).name;
}

/// One attribute obtainable over the parent's output (possibly after
/// joining a dimension table back in).
struct AvailableAttr {
  std::string parent_ref;  ///< name resolvable over parent output (+joins)
  std::optional<DimensionJoin> requires_join;
};

/// Maps provenance ("pos.date" / "stores.city") to how the attribute is
/// obtained over the parent.
using AvailabilityMap = std::map<std::string, AvailableAttr>;

AvailabilityMap ComputeAvailability(const rel::Catalog& catalog,
                                    const AugmentedView& parent) {
  AvailabilityMap avail;
  const ViewDef& pdef = parent.physical;
  const rel::Schema parent_joined = JoinedSchema(catalog, pdef);
  const std::string fact_prefix = pdef.fact_table + ".";

  for (const std::string& g : pdef.group_by) {
    const std::string prov = Provenance(parent_joined, g);
    const std::string bare = rel::BareName(g);
    avail.emplace(prov, AvailableAttr{bare, std::nullopt});

    // A fact-table group-by that is a foreign key opens up the referenced
    // dimension's attributes via a join on the parent's output column.
    if (prov.rfind(fact_prefix, 0) == 0) {
      const std::string fact_col = prov.substr(fact_prefix.size());
      const rel::ForeignKey* fk =
          catalog.FindForeignKey(pdef.fact_table, fact_col);
      if (fk == nullptr) continue;
      const rel::Schema& dim = catalog.GetTable(fk->dim_table).schema();
      DimensionJoin join{fk->dim_table, bare, fk->dim_column};
      for (const rel::Column& c : dim.columns()) {
        if (c.name == fk->dim_column) continue;
        avail.emplace(fk->dim_table + "." + c.name,
                      AvailableAttr{fk->dim_table + "." + c.name, join});
      }
    }
  }
  return avail;
}

/// Looks up the provenance; adds the needed join to the recipe.
std::optional<std::string> ResolveOverParent(const AvailabilityMap& avail,
                                             const std::string& provenance,
                                             DerivationRecipe* recipe) {
  auto it = avail.find(provenance);
  if (it == avail.end()) return std::nullopt;
  if (it->second.requires_join.has_value()) {
    bool present = false;
    for (const DimensionJoin& j : recipe->joins) {
      present |= (j == *it->second.requires_join);
    }
    if (!present) recipe->joins.push_back(*it->second.requires_join);
  }
  return it->second.parent_ref;
}

/// Re-targets a child expression at the parent's output columns; returns
/// nullopt if some referenced attribute is unavailable.
std::optional<Expression> RewriteOverParent(
    const rel::Schema& child_joined, const AvailabilityMap& avail,
    const Expression& expr, DerivationRecipe* recipe) {
  bool ok = true;
  Expression rewritten = expr.RenameColumns([&](const std::string& name) {
    const std::string prov = Provenance(child_joined, name);
    std::optional<std::string> ref = ResolveOverParent(avail, prov, recipe);
    if (!ref.has_value()) {
      ok = false;
      return name;
    }
    return *ref;
  });
  if (!ok) return std::nullopt;
  return rewritten;
}

bool SamePredicate(const ViewDef& a, const ViewDef& b) {
  if (a.where.has_value() != b.where.has_value()) return false;
  if (!a.where.has_value()) return true;
  return *a.where == *b.where;
}

/// Rewrites every column reference to its fully qualified provenance so
/// that arguments written as "qty" and "pos.qty" compare equal across
/// views.
Expression CanonicalArg(const rel::Schema& joined, const Expression& e) {
  return e.RenameColumns(
      [&](const std::string& name) { return Provenance(joined, name); });
}

/// Finds a parent physical aggregate with identical kind and
/// provenance-equal argument.
const rel::AggregateSpec* FindMatching(const rel::Schema& parent_joined,
                                       const ViewDef& parent,
                                       const rel::Schema& child_joined,
                                       const rel::AggregateSpec& agg) {
  for (const rel::AggregateSpec& p : parent.aggregates) {
    if (p.kind != agg.kind) continue;
    if (!p.argument.has_value() && !agg.argument.has_value()) return &p;
    if (p.argument.has_value() && agg.argument.has_value() &&
        CanonicalArg(parent_joined, *p.argument) ==
            CanonicalArg(child_joined, *agg.argument)) {
      return &p;
    }
  }
  return nullptr;
}

}  // namespace

std::optional<DerivationRecipe> ComputeDerivation(
    const rel::Catalog& catalog, const AugmentedView& child,
    const AugmentedView& parent) {
  const ViewDef& cdef = child.physical;
  const ViewDef& pdef = parent.physical;
  if (&child == &parent || cdef.name == pdef.name) return std::nullopt;
  if (cdef.fact_table != pdef.fact_table) return std::nullopt;
  if (!SamePredicate(cdef, pdef)) return std::nullopt;

  DerivationRecipe recipe;
  recipe.child_name = cdef.name;
  recipe.parent_name = pdef.name;

  const AvailabilityMap avail = ComputeAvailability(catalog, parent);
  const rel::Schema child_joined = JoinedSchema(catalog, cdef);
  const rel::Schema parent_joined = JoinedSchema(catalog, pdef);

  // Condition 1: child group-by attributes.
  for (const std::string& g : cdef.group_by) {
    const std::string prov = Provenance(child_joined, g);
    std::optional<std::string> ref = ResolveOverParent(avail, prov, &recipe);
    if (!ref.has_value()) return std::nullopt;
    recipe.group_by.push_back(rel::GroupByColumn{*ref, rel::BareName(g)});
  }

  // Condition 2: child aggregates.
  const std::string y = parent.count_star_column;  // parent COUNT(*)
  for (const rel::AggregateSpec& a : cdef.aggregates) {
    if (const rel::AggregateSpec* p =
            FindMatching(parent_joined, pdef, child_joined, a)) {
      Expression col = Expression::Column(p->output_name);
      switch (a.kind) {
        case rel::AggregateKind::kCountStar:
        case rel::AggregateKind::kCount:
        case rel::AggregateKind::kSum:
          recipe.aggregates.push_back(rel::Sum(col, a.output_name));
          break;
        case rel::AggregateKind::kMin:
          recipe.aggregates.push_back(rel::Min(col, a.output_name));
          break;
        case rel::AggregateKind::kMax:
          recipe.aggregates.push_back(rel::Max(col, a.output_name));
          break;
        case rel::AggregateKind::kAvg:
          return std::nullopt;  // physical views never carry AVG
      }
      continue;
    }
    // Not computed by the parent: E must be rewritable over the parent's
    // group-by attributes (and reachable dimension attributes).
    if (!a.argument.has_value()) return std::nullopt;  // COUNT(*) always
                                                       // matches above
    std::optional<Expression> e =
        RewriteOverParent(child_joined, avail, *a.argument, &recipe);
    if (!e.has_value()) return std::nullopt;
    switch (a.kind) {
      case rel::AggregateKind::kSum:
        recipe.aggregates.push_back(rel::Sum(
            Expression::Multiply(*e, Expression::Column(y)), a.output_name));
        break;
      case rel::AggregateKind::kCount:
        recipe.aggregates.push_back(rel::Sum(
            Expression::CaseIsNull(*e,
                                   Expression::Literal(rel::Value::Int64(0)),
                                   Expression::Column(y)),
            a.output_name));
        break;
      case rel::AggregateKind::kMin:
        recipe.aggregates.push_back(rel::Min(*e, a.output_name));
        break;
      case rel::AggregateKind::kMax:
        recipe.aggregates.push_back(rel::Max(*e, a.output_name));
        break;
      default:
        return std::nullopt;
    }
  }
  return recipe;
}

}  // namespace sdelta::lattice
