#ifndef SDELTA_LATTICE_HIERARCHY_H_
#define SDELTA_LATTICE_HIERARCHY_H_

#include <string>
#include <vector>

#include "lattice/cube_lattice.h"
#include "relational/catalog.h"

namespace sdelta::lattice {

/// Derives the attribute hierarchy of the dimension referenced by `fk`
/// from the catalog's functional dependencies: the chain starts at the
/// dimension key and follows FDs (storeID -> city -> region). Branching
/// FDs (one determinant with several dependents) produce the chain in
/// declaration order — true chains, as in the paper, are the intended
/// use.
DimensionHierarchy HierarchyOf(const rel::Catalog& catalog,
                               const rel::ForeignKey& fk);

/// All hierarchies of a fact table: one per declared foreign key, plus a
/// single-level hierarchy for each listed plain fact attribute (e.g.
/// "date"). Feed the result to CombineHierarchies to obtain the paper's
/// Figure 5 lattice.
std::vector<DimensionHierarchy> FactHierarchies(
    const rel::Catalog& catalog, const std::string& fact_table,
    const std::vector<std::string>& plain_attributes);

}  // namespace sdelta::lattice

#endif  // SDELTA_LATTICE_HIERARCHY_H_
