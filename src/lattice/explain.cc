#include "lattice/explain.h"

#include <algorithm>
#include <charconv>
#include <cmath>

namespace sdelta::lattice {

namespace {

/// Shortest round-trip rendering (same policy as the JSON dumper), so
/// text and DOT output are byte-stable across runs and platforms.
std::string NumberTo(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "0";
  return std::string(buf, ptr);
}

std::string NumberTo(uint64_t v) { return std::to_string(v); }

/// Fixed-width lowercase hex, for fingerprint display.
std::string HexTo(uint64_t v) {
  static const char* kDigits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[size_t(i)] = kDigits[v & 0xf];
    v >>= 4;
  }
  return out;
}

/// DOT double-quoted string escaping.
std::string DotQuote(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

void AppendOpLines(const ExplainStep& step, const std::string& indent,
                   const ExplainRenderOptions& options, std::string* out) {
  exec::ForEachOperator(step.ops, [&](const char* name,
                                      const exec::OperatorCounters& c) {
    if (c.calls == 0) return;
    *out += indent + "op " + name + " calls=" + NumberTo(c.calls) +
            " in=" + NumberTo(c.rows_in) + " out=" + NumberTo(c.rows_out) +
            " morsels=" + NumberTo(c.morsels) +
            " batches=" + NumberTo(c.batches);
    if (std::string_view(name) == "hash_join") {
      *out += " build=" + NumberTo(step.ops.join_build_rows) +
              " probe=" + NumberTo(step.ops.join_probe_rows);
    }
    if (options.include_timings) {
      *out += " seconds=" + NumberTo(c.wall_seconds);
    }
    *out += "\n";
  });
}

}  // namespace

ExplainStep* ExplainResult::FindStep(const std::string& view_name) {
  for (ExplainStep& step : steps) {
    if (step.view == view_name) return &step;
  }
  return nullptr;
}

std::string ExplainResult::ToText(const ExplainRenderOptions& options) const {
  std::string out = analyzed ? "EXPLAIN ANALYZE" : "EXPLAIN";
  out += " plan=" + plan_source + " steps=" + NumberTo(uint64_t(steps.size())) +
         "\n";

  // Children grouped under their D-lattice source, in plan order.
  std::vector<std::vector<size_t>> children(steps.size());
  std::vector<size_t> roots;
  std::vector<size_t> index_of_view(steps.size(), 0);
  auto find_source = [&](const ExplainStep& step) -> std::optional<size_t> {
    if (step.source == "base") return std::nullopt;
    for (size_t i = 0; i < steps.size(); ++i) {
      if (steps[i].view == step.source) return i;
    }
    return std::nullopt;
  };
  for (size_t i = 0; i < steps.size(); ++i) {
    if (auto src = find_source(steps[i]); src.has_value()) {
      children[*src].push_back(i);
    } else {
      roots.push_back(i);
    }
  }

  auto render = [&](auto&& self, size_t i, size_t depth) -> void {
    const ExplainStep& step = steps[i];
    const std::string indent(depth * 2, ' ');
    const std::string detail = indent + "  ";
    out += indent + step.view + " <- ";
    if (step.source == "base") {
      out += "base changes";
      if (step.edge_disabled) out += " (edge disabled by dimension delta)";
    } else if (step.shared_scan.has_value()) {
      out += "SharedScan(#" + NumberTo(uint64_t(*step.shared_scan)) + ")";
      if (!step.joins.empty()) {
        out += " [join:";
        for (const std::string& j : step.joins) out += " " + j;
        out += "]";
      }
    } else {
      out += "sd_" + step.source;
      if (!step.joins.empty()) {
        out += " [join:";
        for (const std::string& j : step.joins) out += " " + j;
        out += "]";
      }
    }
    out += " wave=" + NumberTo(uint64_t(step.wave)) + "\n";
    out += detail + "est groups=" + NumberTo(step.estimated_groups) +
           " input=" + NumberTo(step.estimated_input_rows) +
           " delta=" + NumberTo(step.estimated_delta_rows) +
           " cost=" + NumberTo(step.estimated_cost) + "\n";
    // The materializing step carries the shared(#k, refs=N) annotations.
    for (const ExplainShared& sh : shared) {
      if (sh.producer != step.view) continue;
      out += detail + "shared(#" + NumberTo(uint64_t(sh.id)) +
             ", refs=" + NumberTo(uint64_t(sh.refs)) + ") = " +
             sh.description + " est rows=" + NumberTo(sh.estimated_rows) +
             "\n";
      if (sh.has_actuals) {
        out += detail + "shared(#" + NumberTo(uint64_t(sh.id)) +
               ") act executions=" + NumberTo(uint64_t(sh.executions)) +
               " input=" + NumberTo(uint64_t(sh.input_rows)) +
               " rows=" + NumberTo(uint64_t(sh.rows)) +
               " bytes=" + NumberTo(uint64_t(sh.bytes));
        if (options.include_timings) {
          out += " seconds=" + NumberTo(sh.seconds);
        }
        out += "\n";
      }
    }
    if (step.has_actuals) {
      out += detail + "act input=" + NumberTo(uint64_t(step.actual_input_rows)) +
             " delta=" + NumberTo(uint64_t(step.actual_delta_rows));
      if (options.include_timings) {
        out += " seconds=" + NumberTo(step.seconds);
      }
      out += "\n";
      AppendOpLines(step, detail, options, &out);
    }
    if (step.has_refresh) {
      out += detail + "refresh insert=" + NumberTo(uint64_t(step.refresh.inserted)) +
             " update=" + NumberTo(uint64_t(step.refresh.updated)) +
             " delete=" + NumberTo(uint64_t(step.refresh.deleted)) +
             " recompute=" + NumberTo(uint64_t(step.refresh.recomputed_groups)) +
             " minmax=" + NumberTo(uint64_t(step.refresh.minmax_recomputes)) +
             "\n";
    }
    for (size_t child : children[i]) self(self, child, depth + 1);
  };
  for (size_t root : roots) render(render, root, 0);
  return out;
}

std::string ExplainResult::ToDot(const ExplainRenderOptions& options) const {
  std::string out = "digraph explain {\n";
  out += "  rankdir=BT;\n";
  out += "  node [shape=box];\n";
  out += "  base [label=\"base changes\"];\n";
  for (const ExplainStep& step : steps) {
    std::string label = step.view;
    label += "\\nest delta=" + NumberTo(step.estimated_delta_rows);
    if (step.has_actuals) {
      label += "\\nact delta=" + NumberTo(uint64_t(step.actual_delta_rows));
      if (options.include_timings) {
        label += "\\n" + NumberTo(step.seconds) + "s";
      }
    }
    if (step.has_refresh) {
      label += "\\nrefresh +" + NumberTo(uint64_t(step.refresh.inserted)) +
               " ~" + NumberTo(uint64_t(step.refresh.updated)) + " -" +
               NumberTo(uint64_t(step.refresh.deleted)) + " r" +
               NumberTo(uint64_t(step.refresh.recomputed_groups));
    }
    out += "  " + DotQuote(step.view) + " [label=\"" + label + "\"];\n";
  }
  for (const ExplainShared& sh : shared) {
    std::string label = "shared #" + NumberTo(uint64_t(sh.id)) +
                        "\\nrefs=" + NumberTo(uint64_t(sh.refs)) + "\\n" +
                        sh.description;
    if (sh.has_actuals) {
      label += "\\nact rows=" + NumberTo(uint64_t(sh.rows)) +
               " executions=" + NumberTo(uint64_t(sh.executions));
    }
    out += "  " + DotQuote("shared#" + NumberTo(uint64_t(sh.id))) +
           " [shape=ellipse, label=\"" + label + "\"];\n";
  }
  for (const ExplainStep& step : steps) {
    if (step.source == "base") {
      out += "  base -> " + DotQuote(step.view);
      if (step.edge_disabled) {
        out += " [style=dashed, label=\"edge disabled\"]";
      }
      out += ";\n";
    } else if (step.shared_scan.has_value()) {
      out += "  " +
             DotQuote("shared#" + NumberTo(uint64_t(*step.shared_scan))) +
             " -> " + DotQuote(step.view);
      if (!step.joins.empty()) {
        std::string label = "join:";
        for (const std::string& j : step.joins) label += " " + j;
        out += " [label=\"" + label + "\"]";
      }
      out += ";\n";
    } else {
      out += "  " + DotQuote(step.source) + " -> " + DotQuote(step.view);
      if (!step.joins.empty()) {
        std::string label = "join:";
        for (const std::string& j : step.joins) label += " " + j;
        out += " [label=\"" + label + "\"]";
      }
      out += ";\n";
    }
  }
  for (const ExplainShared& sh : shared) {
    const std::string node = "shared#" + NumberTo(uint64_t(sh.id));
    if (sh.scans_shared.has_value()) {
      out += "  " +
             DotQuote("shared#" + NumberTo(uint64_t(*sh.scans_shared))) +
             " -> " + DotQuote(node) + ";\n";
    } else {
      out += "  " + DotQuote(sh.source) + " -> " + DotQuote(node) + ";\n";
    }
  }
  out += "}\n";
  return out;
}

obs::Json ExplainResult::ToJson(const ExplainRenderOptions& options) const {
  obs::Json doc = obs::Json::Object();
  doc.Set("schema", obs::Json::Str("sdelta.explain.v1"));
  doc.Set("analyzed", obs::Json::Bool(analyzed));
  doc.Set("plan", obs::Json::Str(plan_source));
  obs::Json step_array = obs::Json::Array();
  for (const ExplainStep& step : steps) {
    obs::Json s = obs::Json::Object();
    s.Set("view", obs::Json::Str(step.view));
    s.Set("source", obs::Json::Str(step.source));
    obs::Json joins = obs::Json::Array();
    for (const std::string& j : step.joins) joins.Append(obs::Json::Str(j));
    s.Set("joins", std::move(joins));
    if (step.shared_scan.has_value()) {
      s.Set("shared_scan", obs::Json::Int(int64_t(*step.shared_scan)));
    }
    s.Set("edge_disabled", obs::Json::Bool(step.edge_disabled));
    s.Set("wave", obs::Json::Int(int64_t(step.wave)));
    obs::Json est = obs::Json::Object();
    est.Set("groups", obs::Json::Double(step.estimated_groups));
    est.Set("input_rows", obs::Json::Double(step.estimated_input_rows));
    est.Set("delta_rows", obs::Json::Double(step.estimated_delta_rows));
    est.Set("cost", obs::Json::Double(step.estimated_cost));
    s.Set("estimated", std::move(est));
    if (step.has_actuals) {
      obs::Json act = obs::Json::Object();
      act.Set("input_rows", obs::Json::Int(int64_t(step.actual_input_rows)));
      act.Set("delta_rows", obs::Json::Int(int64_t(step.actual_delta_rows)));
      if (options.include_timings) {
        act.Set("seconds", obs::Json::Double(step.seconds));
      }
      obs::Json ops = obs::Json::Object();
      exec::ForEachOperator(
          step.ops, [&](const char* name, const exec::OperatorCounters& c) {
            if (c.calls == 0) return;
            obs::Json op = obs::Json::Object();
            op.Set("calls", obs::Json::Int(int64_t(c.calls)));
            op.Set("rows_in", obs::Json::Int(int64_t(c.rows_in)));
            op.Set("rows_out", obs::Json::Int(int64_t(c.rows_out)));
            op.Set("morsels", obs::Json::Int(int64_t(c.morsels)));
            op.Set("batches", obs::Json::Int(int64_t(c.batches)));
            if (options.include_timings) {
              op.Set("seconds", obs::Json::Double(c.wall_seconds));
            }
            ops.Set(name, std::move(op));
          });
      act.Set("operators", std::move(ops));
      if (step.ops.hash_join.calls > 0) {
        act.Set("join_build_rows",
                obs::Json::Int(int64_t(step.ops.join_build_rows)));
        act.Set("join_probe_rows",
                obs::Json::Int(int64_t(step.ops.join_probe_rows)));
      }
      s.Set("actual", std::move(act));
    }
    if (step.has_refresh) {
      obs::Json r = obs::Json::Object();
      r.Set("inserted", obs::Json::Int(int64_t(step.refresh.inserted)));
      r.Set("updated", obs::Json::Int(int64_t(step.refresh.updated)));
      r.Set("deleted", obs::Json::Int(int64_t(step.refresh.deleted)));
      r.Set("recomputed_groups",
            obs::Json::Int(int64_t(step.refresh.recomputed_groups)));
      r.Set("recompute_scan_rows",
            obs::Json::Int(int64_t(step.refresh.recompute_scan_rows)));
      r.Set("minmax_recomputes",
            obs::Json::Int(int64_t(step.refresh.minmax_recomputes)));
      s.Set("refresh", std::move(r));
    }
    step_array.Append(std::move(s));
  }
  doc.Set("steps", std::move(step_array));
  if (!shared.empty()) {
    obs::Json shared_array = obs::Json::Array();
    for (const ExplainShared& sh : shared) {
      obs::Json s = obs::Json::Object();
      s.Set("id", obs::Json::Int(int64_t(sh.id)));
      s.Set("description", obs::Json::Str(sh.description));
      s.Set("source", obs::Json::Str(sh.source));
      if (sh.scans_shared.has_value()) {
        s.Set("scans_shared", obs::Json::Int(int64_t(*sh.scans_shared)));
      }
      s.Set("refs", obs::Json::Int(int64_t(sh.refs)));
      s.Set("wave", obs::Json::Int(int64_t(sh.wave)));
      s.Set("preaggregated", obs::Json::Bool(sh.preaggregated));
      if (sh.preaggregated) {
        obs::Json keys = obs::Json::Array();
        for (const std::string& k : sh.preagg_keys) {
          keys.Append(obs::Json::Str(k));
        }
        s.Set("preagg_keys", std::move(keys));
      }
      s.Set("fingerprint", obs::Json::Str(HexTo(sh.fingerprint)));
      s.Set("estimated_rows", obs::Json::Double(sh.estimated_rows));
      s.Set("producer", obs::Json::Str(sh.producer));
      obs::Json consumers = obs::Json::Array();
      for (const std::string& c : sh.consumers) {
        consumers.Append(obs::Json::Str(c));
      }
      s.Set("consumers", std::move(consumers));
      if (sh.has_actuals) {
        obs::Json act = obs::Json::Object();
        act.Set("executions", obs::Json::Int(int64_t(sh.executions)));
        act.Set("input_rows", obs::Json::Int(int64_t(sh.input_rows)));
        act.Set("rows", obs::Json::Int(int64_t(sh.rows)));
        act.Set("bytes", obs::Json::Int(int64_t(sh.bytes)));
        if (options.include_timings) {
          act.Set("seconds", obs::Json::Double(sh.seconds));
        }
        s.Set("actual", std::move(act));
      }
      shared_array.Append(std::move(s));
    }
    doc.Set("shared", std::move(shared_array));
  }
  return doc;
}

ExplainResult BuildExplain(const rel::Catalog& catalog,
                           const VLattice& lattice,
                           const MaintenancePlan& plan,
                           const core::ChangeSet& changes,
                           const MqoPlan* mqo) {
  ExplainResult result;
  bool any_edge = false;
  for (const PlanStep& step : plan.steps) {
    any_edge = any_edge || step.edge.has_value();
  }
  result.plan_source = any_edge ? "lattice" : "direct";

  // Same gating predicate as PropagateAll: an edge is unusable when a
  // dimension table it re-joins has a delta in this change set.
  auto edge_usable = [&](const VLatticeEdge& edge) {
    for (const core::DimensionJoin& j : edge.recipe.joins) {
      auto it = changes.dimensions.find(j.dim_table);
      if (it != changes.dimensions.end() && !it->second.empty()) return false;
    }
    return true;
  };

  // Estimated rows of the prepare-changes relation for a compute-from-
  // base step: the fact delta itself plus, per changed dimension the
  // view joins, the expected fan-in of dimension-delta rows through the
  // fact table (§4.1.4's signed join expansion).
  auto base_input_estimate = [&](const core::AugmentedView& view) {
    double est = static_cast<double>(changes.fact.size());
    const double fact_rows = static_cast<double>(
        catalog.GetTable(view.physical.fact_table).NumRows());
    for (const core::DimensionJoin& j : view.physical.joins) {
      auto it = changes.dimensions.find(j.dim_table);
      if (it == changes.dimensions.end() || it->second.empty()) continue;
      const double dim_rows = static_cast<double>(
          std::max<size_t>(catalog.GetTable(j.dim_table).NumRows(), 1));
      est += static_cast<double>(it->second.size()) * fact_rows / dim_rows;
    }
    return est;
  };

  // Per-view estimated delta cardinality, for edge steps' input sizes.
  std::vector<double> est_delta_of(lattice.views.size(), 0);
  std::vector<size_t> wave_of(lattice.views.size(), 0);

  for (const PlanStep& step : plan.steps) {
    ExplainStep ex;
    const core::AugmentedView& view = lattice.views[step.view];
    ex.view = view.name();
    const bool via_edge =
        step.edge.has_value() && edge_usable(lattice.edges[*step.edge]);
    ex.edge_disabled = step.edge.has_value() && !via_edge;
    if (via_edge) {
      const VLatticeEdge& edge = lattice.edges[*step.edge];
      ex.source = lattice.views[edge.parent].name();
      for (const core::DimensionJoin& j : edge.recipe.joins) {
        ex.joins.push_back(j.dim_table);
      }
      ex.wave = wave_of[edge.parent] + 1;
      ex.estimated_input_rows = est_delta_of[edge.parent];
    } else {
      ex.source = "base";
      ex.wave = 0;
      ex.estimated_input_rows = base_input_estimate(view);
    }
    ex.estimated_groups = step.estimated_groups;
    ex.estimated_delta_rows =
        std::min(step.estimated_groups, ex.estimated_input_rows);
    ex.estimated_cost = step.estimated_cost;
    est_delta_of[step.view] = ex.estimated_delta_rows;
    wave_of[step.view] = ex.wave;
    result.steps.push_back(std::move(ex));
  }

  if (mqo != nullptr && mqo->any_sharing()) {
    for (size_t slot = 0;
         slot < mqo->programs.size() && slot < result.steps.size(); ++slot) {
      const MqoProgram& prog = mqo->programs[slot];
      if (!prog.rewritten || !prog.shared_input.has_value()) continue;
      ExplainStep& step = result.steps[slot];
      step.shared_scan = prog.shared_input;
      step.joins.clear();
      for (const MqoOp& op : prog.ops) {
        if (op.kind == MqoOp::Kind::kJoin) {
          step.joins.push_back(op.join.dim_table);
        }
      }
      step.estimated_input_rows =
          mqo->shared[*prog.shared_input].estimated_rows;
      step.estimated_delta_rows =
          std::min(step.estimated_groups, step.estimated_input_rows);
    }
    for (const MqoSharedSubplan& sp : mqo->shared) {
      ExplainShared sh;
      sh.id = sp.id;
      sh.description = sp.Description(lattice);
      sh.source = lattice.views[sp.parent_view].name();
      sh.scans_shared = sp.shared_input;
      sh.refs = sp.refs;
      sh.wave = sp.wave;
      sh.preaggregated = sp.preaggregated;
      sh.preagg_keys = sp.preagg_keys;
      sh.fingerprint = sp.fingerprint;
      sh.estimated_rows = sp.estimated_rows;
      if (sp.producer_slot < result.steps.size()) {
        sh.producer = result.steps[sp.producer_slot].view;
      }
      for (size_t c : sp.consumer_slots) {
        if (c < result.steps.size()) {
          sh.consumers.push_back(result.steps[c].view);
        }
      }
      result.shared.push_back(std::move(sh));
    }
  }
  return result;
}

void AttachActuals(const std::vector<StepExecution>& step_execs,
                   ExplainResult* explain) {
  const size_t n = std::min(step_execs.size(), explain->steps.size());
  for (size_t i = 0; i < n; ++i) {
    const StepExecution& ex = step_execs[i];
    ExplainStep& step = explain->steps[i];
    step.has_actuals = true;
    step.actual_input_rows = ex.input_rows;
    step.actual_delta_rows = ex.delta_rows;
    step.seconds = ex.seconds;
    step.ops = ex.ops;
  }
  explain->analyzed = true;
}

void AttachActuals(const std::vector<StepExecution>& step_execs,
                   const std::vector<SharedExecution>& shared_execs,
                   ExplainResult* explain) {
  AttachActuals(step_execs, explain);
  for (const SharedExecution& sx : shared_execs) {
    for (ExplainShared& sh : explain->shared) {
      if (sh.id != sx.id) continue;
      sh.has_actuals = true;
      sh.executions = sx.executions;
      sh.input_rows = sx.input_rows;
      sh.rows = sx.rows;
      sh.bytes = sx.bytes;
      sh.seconds = sx.seconds;
      sh.ops = sx.ops;
    }
  }
}

}  // namespace sdelta::lattice
