#include "lattice/vlattice.h"

#include <unordered_set>

#include "lattice/derives.h"
#include "relational/operators.h"

namespace sdelta::lattice {

using core::AugmentedView;
using core::ViewDef;

std::vector<size_t> VLattice::Tops() const {
  std::vector<bool> has_parent(views.size(), false);
  for (const VLatticeEdge& e : edges) has_parent[e.child] = true;
  std::vector<size_t> tops;
  for (size_t i = 0; i < views.size(); ++i) {
    if (!has_parent[i]) tops.push_back(i);
  }
  return tops;
}

std::vector<const VLatticeEdge*> VLattice::ParentsOf(size_t child) const {
  std::vector<const VLatticeEdge*> out;
  for (const VLatticeEdge& e : edges) {
    if (e.child == child) out.push_back(&e);
  }
  return out;
}

std::optional<size_t> VLattice::IndexOf(const std::string& view_name) const {
  for (size_t i = 0; i < views.size(); ++i) {
    if (views[i].name() == view_name) return i;
  }
  return std::nullopt;
}

std::string VLattice::ToString() const {
  std::string s;
  for (const VLatticeEdge& e : edges) {
    s += e.recipe.ToString() + "\n";
  }
  return s;
}

std::vector<ViewDef> MakeLatticeFriendly(const rel::Catalog& catalog,
                                         const std::vector<ViewDef>& views) {
  // Bare names grouped on by any view — candidates worth propagating.
  std::unordered_set<std::string> wanted;
  for (const ViewDef& v : views) {
    for (const std::string& g : v.group_by) wanted.insert(rel::BareName(g));
  }

  std::vector<ViewDef> out = views;
  for (ViewDef& v : out) {
    const rel::Schema joined = core::JoinedSchema(catalog, v);
    std::unordered_set<std::string> present;
    for (const std::string& g : v.group_by) present.insert(rel::BareName(g));

    // For every group-by attribute living in an already-joined dimension,
    // add the attributes it functionally determines, if another view
    // wants them.
    const std::vector<std::string> original = v.group_by;
    for (const std::string& g : original) {
      const std::string qualified = joined.column(joined.Resolve(g)).name;
      const size_t dot = qualified.find('.');
      const std::string table = qualified.substr(0, dot);
      const std::string attr = qualified.substr(dot + 1);
      if (table == v.fact_table) continue;  // fact attrs have no dim FDs
      for (const std::string& dep : catalog.FdClosure(table, attr)) {
        if (wanted.count(dep) == 0 || present.count(dep) > 0) continue;
        v.group_by.push_back(table + "." + dep);
        present.insert(dep);
      }
    }
  }
  return out;
}

VLattice BuildVLattice(const rel::Catalog& catalog,
                       std::vector<AugmentedView> views) {
  VLattice lattice;
  lattice.views = std::move(views);
  for (size_t p = 0; p < lattice.views.size(); ++p) {
    for (size_t c = 0; c < lattice.views.size(); ++c) {
      if (p == c) continue;
      std::optional<core::DerivationRecipe> recipe =
          ComputeDerivation(catalog, lattice.views[c], lattice.views[p]);
      if (recipe.has_value()) {
        lattice.edges.push_back(VLatticeEdge{p, c, std::move(*recipe)});
      }
    }
  }
  return lattice;
}

}  // namespace sdelta::lattice
