#include "lattice/answer.h"

#include <limits>
#include <stdexcept>

#include "lattice/derives.h"

namespace sdelta::lattice {

AnswerResult AnswerQuery(const rel::Catalog& catalog, const VLattice& lattice,
                         const std::vector<const core::SummaryTable*>&
                             summaries,
                         const core::ViewDef& query, obs::Tracer* tracer,
                         obs::MetricsRegistry* metrics) {
  if (summaries.size() != lattice.views.size()) {
    throw std::invalid_argument(
        "AnswerQuery: summaries must parallel lattice views");
  }
  obs::TraceSpan span(tracer, "answer.query");
  span.Attr("query", query.name);
  const core::AugmentedView augmented =
      core::AugmentForSelfMaintenance(catalog, query);

  // Pick the cheapest summary table the query derives from.
  const core::SummaryTable* best = nullptr;
  core::DerivationRecipe best_recipe;
  size_t best_cost = std::numeric_limits<size_t>::max();
  for (size_t i = 0; i < lattice.views.size(); ++i) {
    std::optional<core::DerivationRecipe> recipe =
        ComputeDerivation(catalog, augmented, lattice.views[i]);
    if (!recipe.has_value()) continue;
    // Cost: rows scanned, inflated per dimension join on the rewrite.
    const size_t cost =
        summaries[i]->NumRows() * (1 + recipe->joins.size());
    if (cost < best_cost) {
      best_cost = cost;
      best = summaries[i];
      best_recipe = std::move(*recipe);
    }
  }

  AnswerResult result;
  if (best == nullptr) {
    result.from_base = true;
    result.rows_read = catalog.GetTable(query.fact_table).NumRows();
    rel::Table physical = core::EvaluateView(catalog, augmented.physical);
    result.rows = core::LogicalRows(augmented, physical);
    span.Attr("source", "base");
    span.Attr("rows_read", static_cast<uint64_t>(result.rows_read));
    if (metrics != nullptr) {
      metrics->Add("answer.base_fallbacks");
      metrics->Add("answer.rows_read", result.rows_read);
    }
    return result;
  }
  result.source_view = best->name();
  result.rows_read = best->NumRows();
  span.Attr("source", result.source_view);
  span.Attr("rows_read", static_cast<uint64_t>(result.rows_read));
  if (metrics != nullptr) {
    metrics->Add("answer.view_hits");
    metrics->Add("answer.rows_read", result.rows_read);
  }
  rel::Table physical =
      core::ApplyDerivation(catalog, best_recipe, best->ToTable());
  rel::Table logical = core::LogicalRows(augmented, physical);
  // Stamp the query's own name on the output.
  logical.SetName(query.name);
  result.rows = std::move(logical);
  return result;
}

}  // namespace sdelta::lattice
