#include "lattice/mqo.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_set>

#include "core/view_def.h"
#include "relational/group_key.h"
#include "relational/operators.h"

namespace sdelta::lattice {

using core::DimensionJoin;
using rel::Expression;

namespace {

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 1469598103934665603ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

/// The parent summary-delta's schema at plan time: the view's output
/// schema plus the hidden trailing taint column (see kTaintedColumn).
rel::Schema DeltaSchema(const rel::Catalog& catalog,
                        const core::AugmentedView& view) {
  rel::Schema s = core::ViewOutputSchema(catalog, view.physical);
  s.AddColumn(core::kTaintedColumn, rel::ValueType::kInt64);
  return s;
}

/// Column names an operator reads from its input.
void CollectRefs(const MqoOp& op, std::set<std::string>* out) {
  switch (op.kind) {
    case MqoOp::Kind::kJoin:
      out->insert(op.join.fact_column);
      break;
    case MqoOp::Kind::kSelect:
      if (op.predicate.has_value()) {
        for (const std::string& c : op.predicate->ReferencedColumns()) {
          out->insert(c);
        }
      }
      break;
    case MqoOp::Kind::kProject:
      for (const std::string& c : op.columns) out->insert(c);
      break;
    case MqoOp::Kind::kAggregate:
      for (const rel::GroupByColumn& g : op.group_by) out->insert(g.input);
      for (const rel::AggregateSpec& a : op.aggregates) {
        if (a.argument.has_value()) {
          for (const std::string& c : a.argument->ReferencedColumns()) {
            out->insert(c);
          }
        }
      }
      break;
  }
}

void CollectRefs(const MqoChain& ops, std::set<std::string>* out) {
  for (const MqoOp& op : ops) CollectRefs(op, out);
}

/// Exact distinct count of one column (dimension tables only — they are
/// small by definition; fact columns use FK bounds instead of a scan).
double ExactDistinct(const rel::Table& t, size_t col) {
  std::unordered_set<rel::GroupKey, rel::GroupKeyHash> distinct;
  for (size_t r = 0; r < t.NumRows(); ++r) {
    distinct.insert(rel::GroupKey{t.ValueAt(r, col)});
  }
  return static_cast<double>(std::max<size_t>(distinct.size(), 1));
}

/// Cheap upper bound on the distinct values of a parent output column
/// `bare` (a group-by output of `parent`): FK columns are bounded by the
/// referenced dimension's row count, dimension attributes by an exact
/// scan of the (small) dimension table, and anything else by the fact
/// table's row count. nullopt when the column cannot be traced.
std::optional<double> DistinctBound(const rel::Catalog& catalog,
                                    const core::AugmentedView& parent,
                                    const std::string& bare) {
  const core::ViewDef& def = parent.physical;
  const rel::Schema joined = core::JoinedSchema(catalog, def);
  for (const std::string& g : def.group_by) {
    if (rel::BareName(g) != bare) continue;
    const std::string prov = joined.column(joined.Resolve(g)).name;
    const size_t dot = prov.find('.');
    const std::string table = prov.substr(0, dot);
    const std::string column = prov.substr(dot + 1);
    if (table == def.fact_table) {
      const rel::ForeignKey* fk = catalog.FindForeignKey(table, column);
      const std::string& bound_table = fk != nullptr ? fk->dim_table : table;
      return static_cast<double>(
          std::max<size_t>(catalog.GetTable(bound_table).NumRows(), 1));
    }
    const rel::Table& dim = catalog.GetTable(table);
    return ExactDistinct(dim, dim.schema().Resolve(column));
  }
  return std::nullopt;
}

struct ExpandedChain {
  size_t slot = 0;
  size_t parent = 0;
  MqoChain ops;
  size_t num_joins = 0;
  /// prefix_canon[L-1] encodes scan + the first L joins.
  std::vector<std::string> prefix_canon;
};

struct Bucket {
  size_t length = 0;  ///< joins covered by the prefix
  size_t parent = 0;
  std::string canonical;
  std::vector<size_t> chain_idx;  ///< indexes into the chains vector
};

/// b is a proper prefix of k's canonical chain encoding.
bool IsProperPrefix(const Bucket& b, const Bucket& k) {
  return b.length < k.length && k.canonical.size() > b.canonical.size() &&
         k.canonical.compare(0, b.canonical.size(), b.canonical) == 0 &&
         k.canonical[b.canonical.size()] == '|';
}

}  // namespace

std::string MqoOp::Canonical() const {
  switch (kind) {
    case Kind::kJoin:
      return "join(" + join.dim_table + "," + join.fact_column + "=" +
             join.dim_column + ")";
    case Kind::kSelect:
      return "select(" +
             (predicate.has_value() ? predicate->ToString() : "") + ")";
    case Kind::kProject: {
      std::vector<std::string> sorted = columns;
      std::sort(sorted.begin(), sorted.end());
      std::string s = "project(";
      for (size_t i = 0; i < sorted.size(); ++i) {
        if (i > 0) s += ",";
        s += sorted[i];
      }
      return s + ")";
    }
    case Kind::kAggregate: {
      std::string s = "agg(";
      for (size_t i = 0; i < group_by.size(); ++i) {
        if (i > 0) s += ",";
        s += group_by[i].input + ">" +
             (group_by[i].output.empty() ? rel::BareName(group_by[i].input)
                                         : group_by[i].output);
      }
      s += ";";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i > 0) s += ",";
        s += aggregates[i].ToString();
      }
      return s + ")";
    }
  }
  return "";
}

std::string MqoSharedSubplan::Description(const VLattice& lattice) const {
  std::string d = shared_input.has_value()
                      ? "shared#" + std::to_string(*shared_input)
                      : "sd_" + lattice.views[parent_view].name();
  for (const MqoOp& op : ops) {
    switch (op.kind) {
      case MqoOp::Kind::kJoin:
        d += " join " + op.join.dim_table;
        break;
      case MqoOp::Kind::kAggregate: {
        d += " preagg[";
        for (size_t i = 0; i < op.group_by.size(); ++i) {
          if (i > 0) d += ",";
          d += op.group_by[i].input;
        }
        d += "]";
        break;
      }
      case MqoOp::Kind::kSelect:
        d += " select";
        break;
      case MqoOp::Kind::kProject:
        d += " project";
        break;
    }
  }
  return d;
}

MqoPlan BuildMqoPlan(const rel::Catalog& catalog, const VLattice& lattice,
                     const MaintenancePlan& plan,
                     const core::ChangeSet& changes) {
  MqoPlan out;
  out.programs.resize(plan.steps.size());

  // Same gating predicate as PropagateAll/BuildExplain: an edge is
  // unusable when a dimension table it re-joins has a delta.
  auto edge_usable = [&](const VLatticeEdge& edge) {
    for (const DimensionJoin& j : edge.recipe.joins) {
      auto it = changes.dimensions.find(j.dim_table);
      if (it != changes.dimensions.end() && !it->second.empty()) return false;
    }
    return true;
  };

  // Same input estimate as BuildExplain's base steps (§4.1.4 fan-in).
  auto base_input_estimate = [&](const core::AugmentedView& view) {
    double est = static_cast<double>(changes.fact.size());
    const double fact_rows = static_cast<double>(
        catalog.GetTable(view.physical.fact_table).NumRows());
    for (const DimensionJoin& j : view.physical.joins) {
      auto it = changes.dimensions.find(j.dim_table);
      if (it == changes.dimensions.end() || it->second.empty()) continue;
      const double dim_rows = static_cast<double>(
          std::max<size_t>(catalog.GetTable(j.dim_table).NumRows(), 1));
      est += static_cast<double>(it->second.size()) * fact_rows / dim_rows;
    }
    return est;
  };

  // Wave numbers and estimated delta cardinalities, mirroring
  // BuildExplain so shared-subplan estimates agree with the step tree.
  std::vector<size_t> wave_of(lattice.views.size(), 0);
  std::vector<double> est_delta_of(lattice.views.size(), 0);
  std::vector<ExpandedChain> chains;
  for (size_t slot = 0; slot < plan.steps.size(); ++slot) {
    const PlanStep& step = plan.steps[slot];
    const bool via_edge =
        step.edge.has_value() && edge_usable(lattice.edges[*step.edge]);
    double input_est = 0;
    if (via_edge) {
      const VLatticeEdge& edge = lattice.edges[*step.edge];
      wave_of[step.view] = wave_of[edge.parent] + 1;
      input_est = est_delta_of[edge.parent];
    } else {
      wave_of[step.view] = 0;
      input_est = base_input_estimate(lattice.views[step.view]);
    }
    est_delta_of[step.view] = std::min(step.estimated_groups, input_est);
    if (!via_edge) continue;

    // Expand the via-edge step into its canonical chain: the edge's
    // dimension joins in sorted order (joins over distinct unique-keyed
    // dimensions commute; sorting normalizes chains so join order in
    // one view's recipe cannot break a match with another's), then the
    // final group-by. Summary-deltas always carry the taint column, so
    // the Max(taint) ApplyDerivation appends at run time is part of the
    // canonical aggregate here.
    const core::DerivationRecipe& recipe = lattice.edges[*step.edge].recipe;
    ExpandedChain chain;
    chain.slot = slot;
    chain.parent = lattice.edges[*step.edge].parent;
    std::vector<DimensionJoin> joins = recipe.joins;
    std::sort(joins.begin(), joins.end(),
              [](const DimensionJoin& a, const DimensionJoin& b) {
                if (a.dim_table != b.dim_table) return a.dim_table < b.dim_table;
                if (a.fact_column != b.fact_column) {
                  return a.fact_column < b.fact_column;
                }
                return a.dim_column < b.dim_column;
              });
    std::string canon = "scan(sd_" + lattice.views[chain.parent].name() + ")";
    for (const DimensionJoin& j : joins) {
      MqoOp op;
      op.kind = MqoOp::Kind::kJoin;
      op.join = j;
      canon += "|" + op.Canonical();
      chain.prefix_canon.push_back(canon);
      chain.ops.push_back(std::move(op));
    }
    chain.num_joins = joins.size();
    MqoOp agg;
    agg.kind = MqoOp::Kind::kAggregate;
    agg.group_by = recipe.group_by;
    agg.aggregates = recipe.aggregates;
    agg.aggregates.push_back(
        rel::Max(Expression::Column(core::kTaintedColumn),
                 core::kTaintedColumn));
    chain.ops.push_back(std::move(agg));
    chains.push_back(std::move(chain));
  }

  // Bucket every join prefix by its canonical encoding. std::map gives
  // a deterministic iteration order; chains are visited in slot order,
  // so each bucket's chain list is in plan order.
  std::map<std::string, Bucket> buckets;
  for (size_t c = 0; c < chains.size(); ++c) {
    for (size_t l = 0; l < chains[c].num_joins; ++l) {
      Bucket& b = buckets[chains[c].prefix_canon[l]];
      if (b.chain_idx.empty()) {
        b.length = l + 1;
        b.parent = chains[c].parent;
        b.canonical = chains[c].prefix_canon[l];
      }
      b.chain_idx.push_back(c);
    }
  }

  std::vector<Bucket> detected;
  for (const auto& [canon, b] : buckets) {
    if (b.chain_idx.size() >= 2) detected.push_back(b);
  }
  out.stats.subplans_detected = detected.size();
  if (detected.empty()) return out;

  // Rule 1: extract-common-subplan. Decide which detected prefixes to
  // materialize, longest first: a bucket is kept only if it has >= 2
  // direct readers — chains it is the longest kept prefix of, plus kept
  // longer buckets it is the direct base of. A bucket whose readers are
  // all covered by a longer kept prefix would be materialized for one
  // reader only and is skipped (this is why materialized <= detected).
  std::vector<size_t> order(detected.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (detected[a].length != detected[b].length) {
      return detected[a].length > detected[b].length;
    }
    if (detected[a].chain_idx[0] != detected[b].chain_idx[0]) {
      return detected[a].chain_idx[0] < detected[b].chain_idx[0];
    }
    return detected[a].canonical < detected[b].canonical;
  });
  std::vector<bool> kept(detected.size(), false);
  std::vector<size_t> covered_len(chains.size(), 0);
  std::vector<std::optional<size_t>> base_of(detected.size());
  for (size_t oi : order) {
    const Bucket& b = detected[oi];
    size_t readers = 0;
    for (size_t c : b.chain_idx) {
      if (covered_len[c] <= b.length) ++readers;
    }
    std::vector<size_t> dependent;
    for (size_t kj = 0; kj < detected.size(); ++kj) {
      if (!kept[kj] || base_of[kj].has_value()) continue;
      if (IsProperPrefix(b, detected[kj])) {
        ++readers;
        dependent.push_back(kj);
      }
    }
    if (readers < 2) continue;
    kept[oi] = true;
    for (size_t c : b.chain_idx) {
      covered_len[c] = std::max(covered_len[c], b.length);
    }
    for (size_t kj : dependent) base_of[kj] = oi;
  }

  // Assign ids in materialization order: shorter prefixes first so a
  // nested subplan's base always has a smaller id.
  std::vector<size_t> kept_idx;
  for (size_t i = 0; i < detected.size(); ++i) {
    if (kept[i]) kept_idx.push_back(i);
  }
  if (kept_idx.empty()) return out;
  std::sort(kept_idx.begin(), kept_idx.end(), [&](size_t a, size_t b) {
    if (detected[a].length != detected[b].length) {
      return detected[a].length < detected[b].length;
    }
    if (detected[a].chain_idx[0] != detected[b].chain_idx[0]) {
      return detected[a].chain_idx[0] < detected[b].chain_idx[0];
    }
    return detected[a].canonical < detected[b].canonical;
  });
  std::vector<std::optional<size_t>> id_of(detected.size());
  for (size_t id = 0; id < kept_idx.size(); ++id) id_of[kept_idx[id]] = id;

  for (size_t id = 0; id < kept_idx.size(); ++id) {
    const Bucket& b = detected[kept_idx[id]];
    MqoSharedSubplan sp;
    sp.id = id;
    sp.fingerprint = Fnv1a(b.canonical);
    sp.canonical = b.canonical;
    sp.parent_view = b.parent;
    sp.wave = wave_of[b.parent] + 1;
    sp.estimated_rows = est_delta_of[b.parent];
    if (base_of[kept_idx[id]].has_value()) {
      sp.shared_input = id_of[*base_of[kept_idx[id]]];
      sp.level = out.shared[*sp.shared_input].level + 1;
    }
    const ExpandedChain& chain = chains[b.chain_idx[0]];
    const size_t from =
        sp.shared_input.has_value()
            ? detected[kept_idx[*sp.shared_input]].length
            : 0;
    sp.ops.assign(chain.ops.begin() + from, chain.ops.begin() + b.length);
    sp.producer_slot = chain.slot;
    out.shared.push_back(std::move(sp));
  }

  // Consumer programs: each chain reads its longest kept prefix and
  // applies the residual operators (uncovered joins + final aggregate).
  for (size_t c = 0; c < chains.size(); ++c) {
    std::optional<size_t> target;
    size_t target_len = 0;
    for (size_t id = 0; id < kept_idx.size(); ++id) {
      const Bucket& b = detected[kept_idx[id]];
      if (b.length <= target_len) continue;
      if (std::find(b.chain_idx.begin(), b.chain_idx.end(), c) !=
          b.chain_idx.end()) {
        target = id;
        target_len = b.length;
      }
    }
    if (!target.has_value()) continue;
    MqoProgram& prog = out.programs[chains[c].slot];
    prog.rewritten = true;
    prog.shared_input = target;
    prog.ops.assign(chains[c].ops.begin() + target_len, chains[c].ops.end());
    out.shared[*target].consumer_slots.push_back(chains[c].slot);
  }
  for (MqoSharedSubplan& sp : out.shared) {
    sp.refs = sp.consumer_slots.size();
  }
  for (const MqoSharedSubplan& sp : out.shared) {
    if (sp.shared_input.has_value()) ++out.shared[*sp.shared_input].refs;
  }
  out.stats.subplans_materialized = out.shared.size();
  out.stats.rules.extract_common_subplan = out.shared.size();

  // Rule 2: push aggregation below a shared join. Applies to a root
  // subplan with no nested dependents whose consumers are all plain
  // final aggregates: group the parent delta by the union of the
  // consumers' parent-side keys (plus the join FKs) before the shared
  // joins. Legal only when every consumer aggregate is a bare-column
  // SUM/MIN/MAX over the parent delta (SUMs must be integer so addition
  // order cannot perturb bytes), and only worth it when the key-space
  // bound is well under the parent's estimated delta cardinality.
  for (MqoSharedSubplan& sp : out.shared) {
    if (sp.shared_input.has_value()) continue;
    bool extended = false;
    for (const MqoSharedSubplan& other : out.shared) {
      extended |= other.shared_input.has_value() &&
                  *other.shared_input == sp.id;
    }
    if (extended || sp.consumer_slots.empty()) continue;
    bool eligible = true;
    for (size_t slot : sp.consumer_slots) {
      const MqoChain& res = out.programs[slot].ops;
      eligible &= res.size() == 1 && res[0].kind == MqoOp::Kind::kAggregate;
    }
    if (!eligible) continue;

    const core::AugmentedView& parent = lattice.views[sp.parent_view];
    const rel::Schema delta_schema = DeltaSchema(catalog, parent);
    std::vector<std::string> keys;
    auto add_key = [&](const std::string& k) {
      if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
        keys.push_back(k);
      }
    };
    for (const MqoOp& op : sp.ops) {
      if (op.kind == MqoOp::Kind::kJoin) add_key(op.join.fact_column);
    }
    std::vector<rel::AggregateSpec> union_aggs;
    bool ok = true;
    for (size_t slot : sp.consumer_slots) {
      const MqoOp& agg = out.programs[slot].ops[0];
      for (const rel::GroupByColumn& g : agg.group_by) {
        if (delta_schema.IndexOf(g.input).has_value()) {
          add_key(g.input);
        } else {
          // Must be an attribute one of the shared joins provides.
          const size_t dot = g.input.find('.');
          bool provided = false;
          for (const MqoOp& op : sp.ops) {
            provided |= op.kind == MqoOp::Kind::kJoin &&
                        dot != std::string::npos &&
                        g.input.substr(0, dot) == op.join.dim_table;
          }
          ok &= provided;
        }
      }
      for (const rel::AggregateSpec& a : agg.aggregates) {
        ok &= (a.kind == rel::AggregateKind::kSum ||
               a.kind == rel::AggregateKind::kMin ||
               a.kind == rel::AggregateKind::kMax) &&
              a.argument.has_value() &&
              a.argument->kind() == Expression::Kind::kColumn;
        if (!ok) break;
        const std::optional<size_t> col =
            delta_schema.IndexOf(a.argument->column_name());
        ok &= col.has_value();
        if (!ok) break;
        if (a.kind == rel::AggregateKind::kSum) {
          ok &= delta_schema.column(*col).type == rel::ValueType::kInt64;
        }
        bool merged = false;
        for (const rel::AggregateSpec& u : union_aggs) {
          if (u.output_name != a.output_name) continue;
          merged = true;
          ok &= u.kind == a.kind && *u.argument == *a.argument;
        }
        if (!merged) union_aggs.push_back(a);
      }
      if (!ok) break;
    }
    for (const rel::AggregateSpec& u : union_aggs) {
      ok &= std::find(keys.begin(), keys.end(), u.output_name) == keys.end();
    }
    if (!ok) continue;

    double key_product = 1.0;
    for (const std::string& k : keys) {
      const std::optional<double> bound = DistinctBound(catalog, parent, k);
      if (!bound.has_value()) {
        ok = false;
        break;
      }
      key_product *= *bound;
    }
    if (!ok || key_product * 2.0 > est_delta_of[sp.parent_view]) continue;

    MqoOp preagg;
    preagg.kind = MqoOp::Kind::kAggregate;
    for (const std::string& k : keys) {
      preagg.group_by.push_back(rel::GroupByColumn{k, ""});
    }
    preagg.aggregates = union_aggs;
    sp.ops.insert(sp.ops.begin(), std::move(preagg));
    sp.preaggregated = true;
    sp.preagg_keys = keys;
    sp.estimated_rows = std::min(sp.estimated_rows, key_product);
    // Consumers now re-aggregate the partials: same kind over the
    // pre-aggregated column of the same output name (SUM of partial
    // SUMs, MIN of partial MINs, ...).
    for (size_t slot : sp.consumer_slots) {
      for (rel::AggregateSpec& a : out.programs[slot].ops[0].aggregates) {
        a.argument = Expression::Column(a.output_name);
      }
    }
    ++out.stats.rules.push_agg_below_shared_join;
  }

  // Rule 3: prune shared columns. A root subplan whose chain starts
  // with a join carries every parent-delta column through the join
  // build; keep only what its own operators and all downstream readers
  // (consumers + nested subplans, transitively) reference, plus the
  // taint column the refresh contract requires.
  std::vector<std::set<std::string>> needs(out.shared.size());
  for (size_t id = out.shared.size(); id-- > 0;) {
    const MqoSharedSubplan& sp = out.shared[id];
    for (size_t slot : sp.consumer_slots) {
      CollectRefs(out.programs[slot].ops, &needs[id]);
    }
    for (size_t other = 0; other < out.shared.size(); ++other) {
      const MqoSharedSubplan& dep = out.shared[other];
      if (!dep.shared_input.has_value() || *dep.shared_input != id) continue;
      CollectRefs(dep.ops, &needs[id]);
      needs[id].insert(needs[other].begin(), needs[other].end());
    }
  }
  for (MqoSharedSubplan& sp : out.shared) {
    if (sp.shared_input.has_value() || sp.ops.empty() ||
        sp.ops[0].kind != MqoOp::Kind::kJoin) {
      continue;
    }
    std::set<std::string> needed = needs[sp.id];
    CollectRefs(sp.ops, &needed);
    needed.insert(core::kTaintedColumn);
    const rel::Schema delta_schema =
        DeltaSchema(catalog, lattice.views[sp.parent_view]);
    std::vector<std::string> keep;
    for (const rel::Column& c : delta_schema.columns()) {
      if (needed.count(c.name) != 0) keep.push_back(c.name);
    }
    if (keep.size() >= delta_schema.NumColumns()) continue;
    MqoOp project;
    project.kind = MqoOp::Kind::kProject;
    project.columns = std::move(keep);
    sp.ops.insert(sp.ops.begin(), std::move(project));
    ++out.stats.rules.prune_shared_columns;
  }

  // Rule 4: collapse redundant Select/Project pairs the earlier rules
  // (or hand-built chains) may have stacked.
  for (MqoSharedSubplan& sp : out.shared) {
    out.stats.rules.collapse_select_project += CollapseChain(&sp.ops);
  }
  for (MqoProgram& prog : out.programs) {
    if (prog.rewritten) {
      out.stats.rules.collapse_select_project += CollapseChain(&prog.ops);
    }
  }
  return out;
}

size_t CollapseChain(MqoChain* chain) {
  size_t removed = 0;
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i + 1 < chain->size(); ++i) {
      const MqoOp& a = (*chain)[i];
      const MqoOp& b = (*chain)[i + 1];
      bool drop_first = false;
      if (a.kind == MqoOp::Kind::kProject && b.kind == MqoOp::Kind::kProject) {
        // Keep-list composition: if the outer list is a subset of the
        // inner one, the inner projection is redundant.
        drop_first = std::all_of(
            b.columns.begin(), b.columns.end(), [&](const std::string& c) {
              return std::find(a.columns.begin(), a.columns.end(), c) !=
                     a.columns.end();
            });
      } else if (a.kind == MqoOp::Kind::kProject &&
                 b.kind == MqoOp::Kind::kAggregate) {
        // A GroupBy reads only the columns it references; a projection
        // that keeps a superset of those adds nothing.
        std::set<std::string> refs;
        CollectRefs(b, &refs);
        drop_first = std::all_of(
            refs.begin(), refs.end(), [&](const std::string& c) {
              return std::find(a.columns.begin(), a.columns.end(), c) !=
                     a.columns.end();
            });
      } else if (a.kind == MqoOp::Kind::kSelect &&
                 b.kind == MqoOp::Kind::kSelect) {
        drop_first = a.predicate.has_value() == b.predicate.has_value() &&
                     (!a.predicate.has_value() ||
                      *a.predicate == *b.predicate);
      }
      if (drop_first) {
        chain->erase(chain->begin() + static_cast<ptrdiff_t>(i));
        ++removed;
        changed = true;
        break;
      }
    }
  }
  return removed;
}

rel::Table ExecuteMqoChain(const rel::Catalog& catalog, const MqoChain& ops,
                           const rel::Table& input, exec::ThreadPool* pool,
                           exec::OperatorStats* stats,
                           size_t final_size_hint) {
  const rel::Table* current = &input;
  rel::Table owned;
  for (size_t i = 0; i < ops.size(); ++i) {
    const MqoOp& op = ops[i];
    switch (op.kind) {
      case MqoOp::Kind::kJoin:
        owned = rel::HashJoin(*current, catalog.GetTable(op.join.dim_table),
                              {{op.join.fact_column, op.join.dim_column}},
                              op.join.dim_table, /*drop_right_keys=*/true,
                              pool, stats);
        break;
      case MqoOp::Kind::kAggregate:
        owned = rel::GroupBy(*current, op.group_by, op.aggregates, pool,
                             stats,
                             i + 1 == ops.size() ? final_size_hint : 0);
        break;
      case MqoOp::Kind::kSelect:
        owned = rel::Select(*current, op.predicate.value(), pool, stats);
        break;
      case MqoOp::Kind::kProject: {
        std::vector<rel::ProjectColumn> cols;
        cols.reserve(op.columns.size());
        for (const std::string& c : op.columns) {
          cols.push_back(rel::ProjectColumn{c, Expression::Column(c)});
        }
        owned = rel::Project(*current, cols, pool, stats);
        break;
      }
    }
    current = &owned;
  }
  if (ops.empty()) owned = input;
  return owned;
}

std::string FormatMqoReport(const MqoStats& stats,
                            const std::vector<SharedExecution>& shared_execs) {
  std::string s = "mqo: detected=" + std::to_string(stats.subplans_detected) +
                  " materialized=" +
                  std::to_string(stats.subplans_materialized) +
                  " rows_reused=" + std::to_string(stats.rows_reused) +
                  " bytes_cached=" + std::to_string(stats.bytes_cached) + "\n";
  s += "rules: extract_common_subplan=" +
       std::to_string(stats.rules.extract_common_subplan) +
       " push_agg_below_shared_join=" +
       std::to_string(stats.rules.push_agg_below_shared_join) +
       " prune_shared_columns=" +
       std::to_string(stats.rules.prune_shared_columns) +
       " collapse_select_project=" +
       std::to_string(stats.rules.collapse_select_project) + "\n";
  if (shared_execs.empty()) {
    s += "no shared subplans in the last batch\n";
    return s;
  }
  for (const SharedExecution& ex : shared_execs) {
    s += "shared #" + std::to_string(ex.id) + ": " + ex.description +
         " refs=" + std::to_string(ex.refs) +
         " executions=" + std::to_string(ex.executions) +
         " input_rows=" + std::to_string(ex.input_rows) +
         " rows=" + std::to_string(ex.rows) +
         " bytes=" + std::to_string(ex.bytes) + "\n";
  }
  return s;
}

}  // namespace sdelta::lattice
