#include "lattice/hierarchy.h"

namespace sdelta::lattice {

DimensionHierarchy HierarchyOf(const rel::Catalog& catalog,
                               const rel::ForeignKey& fk) {
  DimensionHierarchy h;
  h.name = fk.dim_table;
  // The fact-side attribute is the finest level; it is interchangeable
  // with the dimension key (the join is 1:1), and the paper's lattices
  // label the level with the fact column name (storeID, itemID).
  h.levels.push_back(fk.fact_column);
  std::string current = fk.dim_column;
  while (true) {
    const rel::FunctionalDependency* step = nullptr;
    for (const rel::FunctionalDependency* fd :
         catalog.DependenciesOf(fk.dim_table)) {
      if (fd->determinant == current) {
        step = fd;
        break;
      }
    }
    if (step == nullptr) break;
    h.levels.push_back(step->dependent);
    current = step->dependent;
  }
  return h;
}

std::vector<DimensionHierarchy> FactHierarchies(
    const rel::Catalog& catalog, const std::string& fact_table,
    const std::vector<std::string>& plain_attributes) {
  std::vector<DimensionHierarchy> out;
  for (const rel::ForeignKey* fk : catalog.ForeignKeysOf(fact_table)) {
    out.push_back(HierarchyOf(catalog, *fk));
  }
  for (const std::string& a : plain_attributes) {
    out.push_back(DimensionHierarchy{a, {a}});
  }
  return out;
}

}  // namespace sdelta::lattice
