#ifndef SDELTA_LATTICE_CUBE_LATTICE_H_
#define SDELTA_LATTICE_CUBE_LATTICE_H_

#include <optional>
#include <string>
#include <vector>

namespace sdelta::lattice {

/// A lattice over sets of group-by attributes — the structural view of a
/// data cube (paper §3.2/§3.3, Figures 4 and 5). Nodes are attribute
/// lists; an edge runs from the finer node to the coarser node it
/// immediately derives.
struct AttributeLattice {
  std::vector<std::vector<std::string>> nodes;
  /// (from, to): node `to` is answerable from node `from`.
  std::vector<std::pair<size_t, size_t>> edges;

  /// Index of the node with exactly these attributes (order-insensitive).
  std::optional<size_t> Find(const std::vector<std::string>& attrs) const;
  bool HasEdge(size_t from, size_t to) const;
  std::string ToString() const;
};

/// The 2^k cube lattice over `dimensions` (Figure 4): one node per
/// subset, edges dropping exactly one attribute.
AttributeLattice BuildCubeLattice(const std::vector<std::string>& dimensions);

/// One dimension's attribute hierarchy, finest first
/// (e.g. {storeID, city, region}); grouping on level i+1 is coarser than
/// on level i, and dropping the dimension entirely is the coarsest.
struct DimensionHierarchy {
  std::string name;  ///< diagnostic label, e.g. "store"
  std::vector<std::string> levels;
};

/// The direct product of the per-dimension hierarchy lattices
/// (paper §3.3, [HRU96]), producing Figure 5 for the retail schema: each
/// node picks one level (or none) per dimension; each edge coarsens
/// exactly one dimension by one step (or drops its last level).
AttributeLattice CombineHierarchies(
    const std::vector<DimensionHierarchy>& dimensions);

/// Removes the given nodes, reconnecting each removed node's parents to
/// its children (paper §3.4: partially-materialized lattices).
AttributeLattice RemoveNodes(const AttributeLattice& lattice,
                             const std::vector<size_t>& removed);

}  // namespace sdelta::lattice

#endif  // SDELTA_LATTICE_CUBE_LATTICE_H_
