#ifndef SDELTA_LATTICE_PLAN_H_
#define SDELTA_LATTICE_PLAN_H_

#include <optional>
#include <string>
#include <vector>

#include "core/delta.h"
#include "core/propagate.h"
#include "lattice/vlattice.h"

namespace sdelta::lattice {

/// One step of a maintenance plan: compute view `view`'s summary-delta
/// either from the base change set (no edge) or from the parent's
/// summary-delta along `edge` (an index into VLattice::edges).
struct PlanStep {
  size_t view = 0;
  std::optional<size_t> edge;
};

/// A topologically ordered propagation plan for every view in a lattice
/// (paper §5.5 — the simplified [AAD+96]-style chooser: each view is
/// derived from its cheapest admissible ancestor, where cost is the
/// estimated summary-delta cardinality of the ancestor plus the edge's
/// dimension-join cost).
struct MaintenancePlan {
  std::vector<PlanStep> steps;
  std::string ToString(const VLattice& lattice) const;
};

struct PlanOptions {
  /// false reproduces the paper's "Propagate (w/o lattice)" baseline:
  /// every summary-delta is computed directly from the base changes.
  bool use_lattice = true;
  /// Observability sinks (see src/obs/). Null = disabled. The chooser
  /// records one plan.edge_cost observation per chosen edge and a
  /// plan.steps_from_base counter.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Estimated number of groups of a view: the product of per-attribute
/// distinct counts (measured exactly from the catalog's current data).
/// Used to rank candidate parents; summary-delta sizes are additionally
/// capped by the change-set size at execution time.
double EstimateGroupCount(const rel::Catalog& catalog,
                          const core::AugmentedView& view);

MaintenancePlan ChoosePlan(const rel::Catalog& catalog,
                           const VLattice& lattice,
                           const PlanOptions& options = {});

/// The result of running the propagate phase for every view.
struct LatticePropagateResult {
  /// Summary-delta tables, parallel to lattice.views.
  std::vector<rel::Table> deltas;
  core::PropagateStats totals;
};

/// Executes the plan against a change set: tops (and all views, without
/// a lattice) come from ComputeSummaryDelta; children from their
/// parent's freshly computed summary-delta via the edge recipe.
LatticePropagateResult PropagateAll(const rel::Catalog& catalog,
                                    const VLattice& lattice,
                                    const MaintenancePlan& plan,
                                    const core::ChangeSet& changes,
                                    const core::PropagateOptions& opts = {});

}  // namespace sdelta::lattice

#endif  // SDELTA_LATTICE_PLAN_H_
