#ifndef SDELTA_LATTICE_PLAN_H_
#define SDELTA_LATTICE_PLAN_H_

#include <optional>
#include <string>
#include <vector>

#include "core/delta.h"
#include "core/propagate.h"
#include "lattice/vlattice.h"

namespace sdelta::lattice {

/// One step of a maintenance plan: compute view `view`'s summary-delta
/// either from the base change set (no edge) or from the parent's
/// summary-delta along `edge` (an index into VLattice::edges).
struct PlanStep {
  size_t view = 0;
  std::optional<size_t> edge;
  /// Plan-time estimate of the view's group count (§5.5 estimator: the
  /// product of per-attribute distinct counts, FD/FK-aware). Filled by
  /// ChoosePlan on both the lattice and no-lattice paths.
  double estimated_groups = 0;
  /// Cost the chooser assigned to this step: the chosen edge's cost
  /// (parent estimate x (1 + joins)) — this is what plan.edge_cost
  /// observes — or the view's own estimate for compute-from-base steps.
  double estimated_cost = 0;
};

/// A topologically ordered propagation plan for every view in a lattice
/// (paper §5.5 — the simplified [AAD+96]-style chooser: each view is
/// derived from its cheapest admissible ancestor, where cost is the
/// estimated summary-delta cardinality of the ancestor plus the edge's
/// dimension-join cost).
struct MaintenancePlan {
  std::vector<PlanStep> steps;
  std::string ToString(const VLattice& lattice) const;
};

struct PlanOptions {
  /// false reproduces the paper's "Propagate (w/o lattice)" baseline:
  /// every summary-delta is computed directly from the base changes.
  bool use_lattice = true;
  /// Observability sinks (see src/obs/). Null = disabled. The chooser
  /// records one plan.edge_cost observation per chosen edge and a
  /// plan.steps_from_base counter.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Estimated number of groups of a view: the product of per-attribute
/// distinct counts (measured exactly from the catalog's current data).
/// Used to rank candidate parents; summary-delta sizes are additionally
/// capped by the change-set size at execution time.
double EstimateGroupCount(const rel::Catalog& catalog,
                          const core::AugmentedView& view);

MaintenancePlan ChoosePlan(const rel::Catalog& catalog,
                           const VLattice& lattice,
                           const PlanOptions& options = {});

/// Per-rule fire counts of the MQO rewrite engine (lattice/mqo.h). The
/// rules run in this (catalog) order; every count is a pure function of
/// the plan and change set, so the counts are identical across thread
/// counts.
struct MqoRuleFires {
  size_t extract_common_subplan = 0;
  size_t push_agg_below_shared_join = 0;
  size_t prune_shared_columns = 0;
  size_t collapse_select_project = 0;

  size_t Total() const {
    return extract_common_subplan + push_agg_below_shared_join +
           prune_shared_columns + collapse_select_project;
  }
};

/// Counters of the MQO layer for one batch. Detection/materialization/
/// rule counts come from BuildMqoPlan; rows_reused and bytes_cached are
/// filled by PropagateAll after the shared results exist. All values are
/// thread-count-invariant.
struct MqoStats {
  /// Fingerprint buckets occurring in >= 2 maintenance plans.
  size_t subplans_detected = 0;
  /// Shared subplans actually materialized (<= detected: a bucket whose
  /// readers are all covered by a longer shared prefix is skipped).
  size_t subplans_materialized = 0;
  /// Rows consumers read from shared results instead of recomputing:
  /// sum over shared subplans of rows x (refs - 1).
  size_t rows_reused = 0;
  /// Total bytes held by the per-batch shared-result cache.
  size_t bytes_cached = 0;
  MqoRuleFires rules;
};

/// Execution record of one materialized shared subplan — the actuals
/// side of the `shared(#k, refs=N)` EXPLAIN annotation. `executions` is
/// the number of times the subplan was computed this batch; the MQO
/// contract is that it is exactly 1.
struct SharedExecution {
  size_t id = 0;
  /// Deterministic human label, e.g. "sd_SID_sales join stores".
  std::string description;
  /// View whose summary-delta feeds the subplan (root subplans) — nested
  /// subplans scan another shared result instead (see `scans_shared`).
  std::string parent_view;
  std::optional<size_t> scans_shared;
  /// Direct readers: consumer plan steps plus nested shared subplans.
  size_t refs = 0;
  size_t executions = 0;
  size_t input_rows = 0;
  size_t rows = 0;
  size_t bytes = 0;
  /// Wall time (non-deterministic; excluded from golden renderings).
  double seconds = 0;
  exec::OperatorStats ops;
};

/// Execution record of one plan step — the "actuals" side of
/// EXPLAIN ANALYZE. Everything except `seconds` (and the wall_seconds
/// inside `ops`) is a pure function of the plan and change set, so it is
/// identical across thread counts.
struct StepExecution {
  size_t view = 0;
  /// The edge was actually used (plan chose one and no dimension delta
  /// disabled it).
  bool via_edge = false;
  /// The plan chose an edge but a dimension-table delta forced this step
  /// back to computing from base changes.
  bool edge_disabled = false;
  /// D-lattice depth of the step: 0 = from base changes, k+1 = derived
  /// from a wave-k parent. Computed identically on the serial and
  /// wave-scheduled paths.
  size_t wave = 0;
  /// The step reads shared subplan #k instead of re-running the edge's
  /// dimension joins over the parent delta (the `SharedScan(#k)` side of
  /// the MQO rewrite).
  std::optional<size_t> shared_scan;
  /// Rows fed into the step: the parent's summary-delta cardinality
  /// (via edge), the shared result's cardinality (SharedScan), or the
  /// prepare-changes relation size (from base).
  size_t input_rows = 0;
  /// Rows in the step's summary-delta.
  size_t delta_rows = 0;
  /// Wall time of the step (non-deterministic; excluded from golden
  /// explain renderings).
  double seconds = 0;
  /// Operator-level accounting for the step's Select/Project/HashJoin/
  /// GroupBy/UnionAll invocations.
  exec::OperatorStats ops;
};

/// The result of running the propagate phase for every view.
struct LatticePropagateResult {
  /// Summary-delta tables, parallel to lattice.views.
  std::vector<rel::Table> deltas;
  core::PropagateStats totals;
  /// Per-step execution records, parallel to plan.steps.
  std::vector<StepExecution> step_execs;
  /// Per-shared-subplan execution records (empty when MQO is off or the
  /// batch has no sharing), in shared-subplan id order.
  std::vector<SharedExecution> shared_execs;
  /// MQO counters for this batch (zeros when MQO is off).
  MqoStats mqo;
};

/// Executes the plan against a change set: tops (and all views, without
/// a lattice) come from ComputeSummaryDelta; children from their
/// parent's freshly computed summary-delta via the edge recipe.
LatticePropagateResult PropagateAll(const rel::Catalog& catalog,
                                    const VLattice& lattice,
                                    const MaintenancePlan& plan,
                                    const core::ChangeSet& changes,
                                    const core::PropagateOptions& opts = {});

}  // namespace sdelta::lattice

#endif  // SDELTA_LATTICE_PLAN_H_
