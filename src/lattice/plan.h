#ifndef SDELTA_LATTICE_PLAN_H_
#define SDELTA_LATTICE_PLAN_H_

#include <optional>
#include <string>
#include <vector>

#include "core/delta.h"
#include "core/propagate.h"
#include "lattice/vlattice.h"

namespace sdelta::lattice {

/// One step of a maintenance plan: compute view `view`'s summary-delta
/// either from the base change set (no edge) or from the parent's
/// summary-delta along `edge` (an index into VLattice::edges).
struct PlanStep {
  size_t view = 0;
  std::optional<size_t> edge;
  /// Plan-time estimate of the view's group count (§5.5 estimator: the
  /// product of per-attribute distinct counts, FD/FK-aware). Filled by
  /// ChoosePlan on both the lattice and no-lattice paths.
  double estimated_groups = 0;
  /// Cost the chooser assigned to this step: the chosen edge's cost
  /// (parent estimate x (1 + joins)) — this is what plan.edge_cost
  /// observes — or the view's own estimate for compute-from-base steps.
  double estimated_cost = 0;
};

/// A topologically ordered propagation plan for every view in a lattice
/// (paper §5.5 — the simplified [AAD+96]-style chooser: each view is
/// derived from its cheapest admissible ancestor, where cost is the
/// estimated summary-delta cardinality of the ancestor plus the edge's
/// dimension-join cost).
struct MaintenancePlan {
  std::vector<PlanStep> steps;
  std::string ToString(const VLattice& lattice) const;
};

struct PlanOptions {
  /// false reproduces the paper's "Propagate (w/o lattice)" baseline:
  /// every summary-delta is computed directly from the base changes.
  bool use_lattice = true;
  /// Observability sinks (see src/obs/). Null = disabled. The chooser
  /// records one plan.edge_cost observation per chosen edge and a
  /// plan.steps_from_base counter.
  obs::Tracer* tracer = nullptr;
  obs::MetricsRegistry* metrics = nullptr;
};

/// Estimated number of groups of a view: the product of per-attribute
/// distinct counts (measured exactly from the catalog's current data).
/// Used to rank candidate parents; summary-delta sizes are additionally
/// capped by the change-set size at execution time.
double EstimateGroupCount(const rel::Catalog& catalog,
                          const core::AugmentedView& view);

MaintenancePlan ChoosePlan(const rel::Catalog& catalog,
                           const VLattice& lattice,
                           const PlanOptions& options = {});

/// Execution record of one plan step — the "actuals" side of
/// EXPLAIN ANALYZE. Everything except `seconds` (and the wall_seconds
/// inside `ops`) is a pure function of the plan and change set, so it is
/// identical across thread counts.
struct StepExecution {
  size_t view = 0;
  /// The edge was actually used (plan chose one and no dimension delta
  /// disabled it).
  bool via_edge = false;
  /// The plan chose an edge but a dimension-table delta forced this step
  /// back to computing from base changes.
  bool edge_disabled = false;
  /// D-lattice depth of the step: 0 = from base changes, k+1 = derived
  /// from a wave-k parent. Computed identically on the serial and
  /// wave-scheduled paths.
  size_t wave = 0;
  /// Rows fed into the step: the parent's summary-delta cardinality
  /// (via edge) or the prepare-changes relation size (from base).
  size_t input_rows = 0;
  /// Rows in the step's summary-delta.
  size_t delta_rows = 0;
  /// Wall time of the step (non-deterministic; excluded from golden
  /// explain renderings).
  double seconds = 0;
  /// Operator-level accounting for the step's Select/Project/HashJoin/
  /// GroupBy/UnionAll invocations.
  exec::OperatorStats ops;
};

/// The result of running the propagate phase for every view.
struct LatticePropagateResult {
  /// Summary-delta tables, parallel to lattice.views.
  std::vector<rel::Table> deltas;
  core::PropagateStats totals;
  /// Per-step execution records, parallel to plan.steps.
  std::vector<StepExecution> step_execs;
};

/// Executes the plan against a change set: tops (and all views, without
/// a lattice) come from ComputeSummaryDelta; children from their
/// parent's freshly computed summary-delta via the edge recipe.
LatticePropagateResult PropagateAll(const rel::Catalog& catalog,
                                    const VLattice& lattice,
                                    const MaintenancePlan& plan,
                                    const core::ChangeSet& changes,
                                    const core::PropagateOptions& opts = {});

}  // namespace sdelta::lattice

#endif  // SDELTA_LATTICE_PLAN_H_
