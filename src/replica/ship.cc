#include "replica/ship.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "service/wal.h"

namespace sdelta::replica {

namespace {

void PutU32(std::vector<uint8_t>& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void PutU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t GetU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= uint32_t{p[i]} << (8 * i);
  return v;
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= uint64_t{p[i]} << (8 * i);
  return v;
}

// Streams are in-memory or local files; a single record over 1 GiB is
// framing corruption, not data.
constexpr uint32_t kMaxPayload = 1u << 30;

}  // namespace

std::vector<uint8_t> ShipStreamHeader() {
  std::vector<uint8_t> out(kShipMagic, kShipMagic + sizeof(kShipMagic));
  out.push_back(kShipVersion);
  return out;
}

std::vector<uint8_t> EncodeShipRecord(const ShipRecord& record) {
  std::vector<uint8_t> out;
  out.reserve(kShipFrameSize + record.payload.size());
  PutU64(out, record.epoch);
  PutU64(out, record.first_seq);
  PutU64(out, record.last_seq);
  PutU32(out, static_cast<uint32_t>(record.payload.size()));
  // CRC over everything framed so far (epoch/seqs/len) plus the payload.
  uint32_t crc = 0;
  {
    std::vector<uint8_t> crc_input(out);
    crc_input.insert(crc_input.end(), record.payload.begin(),
                     record.payload.end());
    crc = service::Crc32(crc_input.data(), crc_input.size());
  }
  PutU32(out, crc);
  out.insert(out.end(), record.payload.begin(), record.payload.end());
  return out;
}

ShipDecode DecodeShipRecord(const std::vector<uint8_t>& buffer, size_t offset,
                            ShipRecord* out, size_t* next_offset) {
  if (offset > buffer.size() || buffer.size() - offset < kShipFrameSize) {
    return ShipDecode::kNeedMore;
  }
  const uint8_t* frame = buffer.data() + offset;
  const uint32_t len = GetU32(frame + 24);
  if (len > kMaxPayload) return ShipDecode::kCorrupt;
  if (buffer.size() - offset - kShipFrameSize < len) {
    return ShipDecode::kNeedMore;
  }
  const uint32_t stored_crc = GetU32(frame + 28);
  // CRC input = the 28 pre-crc frame bytes + payload. The payload sits
  // right after the frame, but the crc field splits the frame, so feed
  // the two pieces separately.
  std::vector<uint8_t> crc_input;
  crc_input.reserve(28 + len);
  crc_input.insert(crc_input.end(), frame, frame + 28);
  crc_input.insert(crc_input.end(), frame + kShipFrameSize,
                   frame + kShipFrameSize + len);
  if (service::Crc32(crc_input.data(), crc_input.size()) != stored_crc) {
    return ShipDecode::kCorrupt;
  }
  out->epoch = GetU64(frame);
  out->first_seq = GetU64(frame + 8);
  out->last_seq = GetU64(frame + 16);
  out->payload.assign(frame + kShipFrameSize, frame + kShipFrameSize + len);
  *next_offset = offset + kShipFrameSize + len;
  return ShipDecode::kOk;
}

bool CheckShipHeader(const std::vector<uint8_t>& buffer) {
  if (buffer.size() < kShipHeaderSize) return false;
  if (std::memcmp(buffer.data(), kShipMagic, sizeof(kShipMagic)) != 0) {
    throw std::runtime_error("ship: bad stream magic");
  }
  if (buffer[sizeof(kShipMagic)] != kShipVersion) {
    throw std::runtime_error("ship: unsupported stream version");
  }
  return true;
}

FileShipLog::FileShipLog(std::string path) : path_(std::move(path)) {
  namespace fs = std::filesystem;
  uint64_t valid_bytes = 0;
  bool fresh = true;
  if (fs::exists(path_) && fs::file_size(path_) > 0) {
    std::ifstream in(path_, std::ios::binary);
    std::vector<uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                               std::istreambuf_iterator<char>());
    if (CheckShipHeader(bytes)) {
      fresh = false;
      size_t offset = kShipHeaderSize;
      ShipRecord rec;
      size_t next = 0;
      while (DecodeShipRecord(bytes, offset, &rec, &next) == ShipDecode::kOk) {
        if (rec.epoch > max_epoch_) max_epoch_ = rec.epoch;
        if (rec.last_seq > max_seq_) max_seq_ = rec.last_seq;
        ++records_;
        offset = next;
      }
      valid_bytes = offset;
      if (offset != bytes.size()) {
        // Torn/corrupt tail: it was written but never decodable, so no
        // replica can have applied it. Cut it before appending.
        fs::resize_file(path_, valid_bytes);
      }
    }
    // A file shorter than the header is a torn creation: rewrite it.
  }
  fd_ = ::open(path_.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd_ < 0) throw std::runtime_error("ship: cannot open " + path_);
  if (fresh) {
    if (valid_bytes == 0 && fs::exists(path_) && fs::file_size(path_) > 0) {
      fs::resize_file(path_, 0);
    }
    const std::vector<uint8_t> header = ShipStreamHeader();
    if (::write(fd_, header.data(), header.size()) !=
        static_cast<ssize_t>(header.size())) {
      throw std::runtime_error("ship: cannot write header to " + path_);
    }
  }
}

FileShipLog::~FileShipLog() {
  if (fd_ >= 0) ::close(fd_);
}

void FileShipLog::Publish(const ShipRecord& record) {
  const std::vector<uint8_t> bytes = EncodeShipRecord(record);
  size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n =
        ::write(fd_, bytes.data() + written, bytes.size() - written);
    if (n < 0) throw std::runtime_error("ship: write failed for " + path_);
    written += static_cast<size_t>(n);
  }
  if (record.epoch > max_epoch_) max_epoch_ = record.epoch;
  if (record.last_seq > max_seq_) max_seq_ = record.last_seq;
  ++records_;
}

}  // namespace sdelta::replica
