#include "replica/replica.h"

#include <filesystem>
#include <fstream>
#include <set>
#include <stdexcept>
#include <utility>

#include "core/maintenance.h"
#include "obs/export_prometheus.h"
#include "obs/json.h"
#include "service/wal.h"
#include "warehouse/persistence.h"

namespace sdelta::replica {

namespace fs = std::filesystem;

namespace {

constexpr const char* kCheckpointDir = "checkpoint";
constexpr const char* kCheckpointTmp = "checkpoint.tmp";
constexpr const char* kCheckpointPrev = "checkpoint.prev";
/// Writer-checkpoint markers (see service/service.cc).
constexpr const char* kSeqFile = "SEQ";
constexpr const char* kEpochFile = "EPOCH";
/// Replica marker: "epoch seq cursor" on one line.
constexpr const char* kAppliedFile = "APPLIED";

uint64_t ReadMarker(const fs::path& path) {
  std::ifstream in(path);
  uint64_t v = 0;
  if (!(in >> v)) {
    throw std::runtime_error("replica: missing or unreadable " +
                             path.string());
  }
  return v;
}

void WriteApplied(const fs::path& path, uint64_t epoch, uint64_t seq,
                  uint64_t cursor) {
  std::ofstream out(path, std::ios::trunc);
  out << epoch << " " << seq << " " << cursor << "\n";
  if (!out) {
    throw std::runtime_error("replica: cannot write " + path.string());
  }
}

void ReadApplied(const fs::path& path, uint64_t* epoch, uint64_t* seq,
                 uint64_t* cursor) {
  std::ifstream in(path);
  if (!(in >> *epoch >> *seq >> *cursor)) {
    throw std::runtime_error("replica: missing or unreadable " +
                             path.string());
  }
}

}  // namespace

std::unique_ptr<ReadReplica> ReadReplica::Open(std::string data_dir,
                                               rel::Catalog bootstrap,
                                               std::vector<core::ViewDef> views,
                                               ShipTransport* transport,
                                               Options options) {
  fs::create_directories(data_dir);
  const fs::path dir(data_dir);
  const fs::path ckpt = dir / kCheckpointDir;
  const fs::path tmp = dir / kCheckpointTmp;
  const fs::path prev = dir / kCheckpointPrev;

  // Same crash cleanup as the writer's checkpoint protocol: discard an
  // unfinished tmp; restore prev when the swap itself was interrupted.
  std::error_code ec;
  fs::remove_all(tmp, ec);
  if (!fs::exists(ckpt) && fs::exists(prev)) {
    fs::rename(prev, ckpt);
  } else {
    fs::remove_all(prev, ec);
  }

  auto owned = options.metrics
                   ? std::unique_ptr<obs::MetricsRegistry>()
                   : std::make_unique<obs::MetricsRegistry>();
  obs::MetricsRegistry* metrics =
      options.metrics ? options.metrics : owned.get();
  options.metrics = metrics;
  options.warehouse.metrics = metrics;

  uint64_t applied_epoch = 0;
  uint64_t applied_seq = 0;
  uint64_t start_cursor = 0;

  std::unique_ptr<warehouse::Warehouse> wh;
  if (fs::exists(ckpt / "manifest.txt")) {
    // Resume from our own checkpoint: re-fetch only what we have not
    // applied (the stream cursor was persisted with the state).
    ReadApplied(ckpt / kAppliedFile, &applied_epoch, &applied_seq,
                &start_cursor);
    wh = std::make_unique<warehouse::Warehouse>(
        warehouse::LoadWarehouse(ckpt.string(), views, options.warehouse));
  } else if (!options.bootstrap_checkpoint.empty()) {
    // First boot from a writer checkpoint: adopt its applied sequence
    // (dedup will skip any ship records at or below it) and read the
    // whole stream from the start.
    const fs::path writer_ckpt(options.bootstrap_checkpoint);
    if (!fs::exists(writer_ckpt / "manifest.txt")) {
      throw std::runtime_error("replica: bootstrap checkpoint missing at " +
                               writer_ckpt.string());
    }
    applied_seq = ReadMarker(writer_ckpt / kSeqFile);
    if (fs::exists(writer_ckpt / kEpochFile)) {
      applied_epoch = ReadMarker(writer_ckpt / kEpochFile);
    }
    wh = std::make_unique<warehouse::Warehouse>(warehouse::LoadWarehouse(
        writer_ckpt.string(), views, options.warehouse));
  } else {
    // Fresh: same bootstrap catalog + views as the writer's first boot,
    // replay the stream from record one.
    wh = std::make_unique<warehouse::Warehouse>(std::move(bootstrap),
                                                options.warehouse);
    wh->DefineSummaryTables(views);
  }

  return std::unique_ptr<ReadReplica>(
      new ReadReplica(std::move(data_dir), std::move(*wh), std::move(options),
                      std::move(owned), transport, applied_epoch, applied_seq,
                      start_cursor));
}

ReadReplica::ReadReplica(std::string data_dir, warehouse::Warehouse wh,
                         Options options,
                         std::unique_ptr<obs::MetricsRegistry> owned_metrics,
                         ShipTransport* transport, uint64_t applied_epoch,
                         uint64_t applied_seq, uint64_t start_cursor)
    : data_dir_(std::move(data_dir)),
      options_(std::move(options)),
      owned_metrics_(std::move(owned_metrics)),
      metrics_(options_.metrics),
      transport_(transport),
      warehouse_(std::move(wh)) {
  obs_.metrics = metrics_;
  obs_.slow_query_threshold_seconds = options_.slow_query_threshold_seconds;
  applied_epoch_.store(applied_epoch);
  applied_seq_.store(applied_seq);
  cursor_.store(start_cursor);
  // Pre-register the failure-path counters so expositions always carry
  // them (and lag dashboards see explicit zeros).
  metrics_->Add("replica.crc_rejects", 0);
  metrics_->Add("replica.gap_rejects", 0);
  metrics_->Add("replica.duplicates_skipped", 0);
  metrics_->Add("replica.records_applied", 0);
  versioned_.Install(BuildEpoch(applied_epoch, nullptr, true));
  EmitGauges();
  if (options_.http_port >= 0) {
    StartHttp(static_cast<uint16_t>(options_.http_port));
  }
}

ReadReplica::~ReadReplica() {
  if (http_) http_->Stop();
}

std::vector<std::string> ReadReplica::FactTableNames() const {
  std::set<std::string> facts;
  for (const rel::ForeignKey& fk : warehouse_.catalog().foreign_keys()) {
    facts.insert(fk.fact_table);
  }
  for (const core::AugmentedView& v : warehouse_.vlattice().views) {
    facts.insert(v.physical.fact_table);
  }
  return {facts.begin(), facts.end()};
}

std::shared_ptr<const service::Epoch> ReadReplica::BuildEpoch(
    uint64_t number, const std::vector<size_t>* view_delta_rows,
    bool dims_changed) {
  const std::shared_ptr<const service::Epoch> prev = versioned_.Current();
  const lattice::VLattice& wl = warehouse_.vlattice();
  auto next = std::make_shared<service::Epoch>();
  next->number = number;
  next->metrics = metrics_;
  next->obs = &obs_;
  next->lattice = prev ? prev->lattice
                       : std::make_shared<lattice::VLattice>(wl);
  if (prev && !dims_changed) {
    next->catalog = prev->catalog;
  } else {
    next->catalog =
        service::MakeReaderCatalog(warehouse_.catalog(), FactTableNames());
  }
  const bool can_share = prev && view_delta_rows &&
                         view_delta_rows->size() == wl.views.size() &&
                         prev->views.size() == wl.views.size();
  next->views.reserve(wl.views.size());
  for (size_t i = 0; i < wl.views.size(); ++i) {
    if (can_share && (*view_delta_rows)[i] == 0) {
      next->views.push_back(prev->views[i]);
      continue;
    }
    auto copy = std::make_shared<core::SummaryTable>(wl.views[i],
                                                     *next->catalog);
    copy->LoadFrom(warehouse_.summary(wl.views[i].physical.name).ToTable());
    next->views.push_back(std::move(copy));
  }
  return next;
}

ReadReplica::CatchupReport ReadReplica::Catchup() {
  core::Stopwatch sw;
  CatchupReport report;
  while (true) {
    ShipFetch fetch = transport_->Fetch(cursor_.load());
    if (fetch.corrupt) {
      // Torn/garbled record: reject, keep the cursor, re-request on the
      // next pass (by then the sender has the intact bytes).
      ++report.crc_rejects;
      metrics_->Add("replica.crc_rejects");
      break;
    }
    if (!fetch.have) {
      cursor_.store(fetch.next_cursor);  // header normalization only
      break;
    }
    const ShipRecord& rec = fetch.record;
    if (rec.last_seq <= applied_seq_.load()) {
      // Retransmission duplicate or pre-bootstrap history: already in
      // our state; skip past it. Adopt the epoch stamp so the lag gauge
      // doesn't understate progress after a writer-side replay re-ship.
      ++report.duplicates;
      metrics_->Add("replica.duplicates_skipped");
      if (rec.epoch > applied_epoch_.load()) applied_epoch_.store(rec.epoch);
      cursor_.store(fetch.next_cursor);
      continue;
    }
    if (rec.first_seq > applied_seq_.load() + 1) {
      // A record is missing between applied_seq and this one. Applying
      // out of order would fork the state; refuse and do not advance —
      // re-request until the stream heals.
      ++report.gap_rejects;
      metrics_->Add("replica.gap_rejects");
      break;
    }
    core::ChangeSet changes =
        service::DecodeChangeSet(warehouse_.catalog(), rec.payload);
    const bool dims_changed = !changes.dimensions.empty();
    const warehouse::BatchReport batch = warehouse_.RunBatch(changes);
    std::vector<size_t> delta_rows(batch.views.size(), 0);
    for (size_t v = 0; v < batch.views.size(); ++v) {
      delta_rows[v] = batch.views[v].delta_rows;
    }
    versioned_.Install(BuildEpoch(rec.epoch, &delta_rows, dims_changed));
    applied_epoch_.store(rec.epoch);
    applied_seq_.store(rec.last_seq);
    cursor_.store(fetch.next_cursor);
    ++report.applied;
    metrics_->Add("replica.records_applied");
    metrics_->Add("replica.bytes_applied",
                  kShipFrameSize + rec.payload.size());
  }
  report.seconds = sw.ElapsedSeconds();
  metrics_->Set("replica.catchup_seconds", report.seconds);
  metrics_->Set("replica.catchup_records", static_cast<double>(report.applied));
  EmitGauges();
  return report;
}

void ReadReplica::Checkpoint() {
  const fs::path dir(data_dir_);
  const fs::path ckpt = dir / kCheckpointDir;
  const fs::path tmp = dir / kCheckpointTmp;
  const fs::path prev = dir / kCheckpointPrev;
  std::error_code ec;
  fs::remove_all(tmp, ec);
  warehouse::SaveWarehouse(warehouse_, tmp.string());
  WriteApplied(tmp / kAppliedFile, applied_epoch_.load(), applied_seq_.load(),
               cursor_.load());
  fs::remove_all(prev, ec);
  if (fs::exists(ckpt)) fs::rename(ckpt, prev);
  fs::rename(tmp, ckpt);
  fs::remove_all(prev, ec);
  metrics_->Add("replica.checkpoints");
}

void ReadReplica::EmitGauges() {
  metrics_->Set("replica.applied_epoch",
                static_cast<double>(applied_epoch_.load()));
  metrics_->Set("replica.applied_seq",
                static_cast<double>(applied_seq_.load()));
  metrics_->Set("replica.cursor", static_cast<double>(cursor_.load()));
}

int ReadReplica::http_port() const {
  return http_ != nullptr && http_->running() ? static_cast<int>(http_->port())
                                              : -1;
}

void ReadReplica::StartHttp(uint16_t port) {
  http_ = std::make_unique<obs::HttpEndpoint>();
  http_->Route("/metrics", [this](const obs::HttpRequest&) {
    obs::HttpResponse r;
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    r.body = obs::ExportPrometheus(*metrics_);
    return r;
  });
  http_->Route("/healthz", [this](const obs::HttpRequest&) {
    obs::Json doc = obs::Json::Object();
    doc.Set("healthy", obs::Json::Bool(true));
    doc.Set("role", obs::Json::Str("replica"));
    doc.Set("applied_epoch",
            obs::Json::Int(static_cast<int64_t>(applied_epoch_.load())));
    doc.Set("applied_seq",
            obs::Json::Int(static_cast<int64_t>(applied_seq_.load())));
    obs::HttpResponse r;
    r.body = doc.Dump(2) + "\n";
    return r;
  });
  http_->Route("/epochs", [this](const obs::HttpRequest&) {
    const std::shared_ptr<const service::Epoch> cur = versioned_.Current();
    obs::Json doc = obs::Json::Object();
    doc.Set("epoch", obs::Json::Int(static_cast<int64_t>(cur->number)));
    doc.Set("applied_seq",
            obs::Json::Int(static_cast<int64_t>(applied_seq_.load())));
    obs::Json views = obs::Json::Array();
    for (size_t i = 0; i < cur->views.size(); ++i) {
      obs::Json v = obs::Json::Object();
      v.Set("name", obs::Json::Str(cur->lattice->views[i].physical.name));
      v.Set("rows",
            obs::Json::Int(static_cast<int64_t>(cur->views[i]->NumRows())));
      views.Append(std::move(v));
    }
    doc.Set("views", std::move(views));
    obs::HttpResponse r;
    r.body = doc.Dump(2) + "\n";
    return r;
  });
  http_->Start(port);
}

}  // namespace sdelta::replica
