#include "replica/transport.h"

#include <filesystem>
#include <fstream>
#include <iterator>

namespace sdelta::replica {

namespace {

/// Shared Fetch logic over an in-memory copy of the stream bytes.
ShipFetch FetchFrom(const std::vector<uint8_t>& bytes, uint64_t cursor) {
  ShipFetch fetch;
  if (cursor == 0) {
    if (!CheckShipHeader(bytes)) {
      // Stream not created yet (or header still being written).
      fetch.next_cursor = 0;
      return fetch;
    }
    cursor = kShipHeaderSize;
  }
  fetch.next_cursor = cursor;
  size_t next = 0;
  switch (DecodeShipRecord(bytes, static_cast<size_t>(cursor), &fetch.record,
                           &next)) {
    case ShipDecode::kOk:
      fetch.have = true;
      fetch.next_cursor = next;
      return fetch;
    case ShipDecode::kNeedMore:
      return fetch;  // nothing (complete) shipped yet; same cursor
    case ShipDecode::kCorrupt:
      fetch.corrupt = true;
      return fetch;  // re-request from the same cursor
  }
  return fetch;
}

}  // namespace

FileShipTransport::FileShipTransport(std::string path)
    : path_(std::move(path)) {}

ShipFetch FileShipTransport::Fetch(uint64_t cursor) {
  std::vector<uint8_t> bytes;
  if (std::filesystem::exists(path_)) {
    std::ifstream in(path_, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
  }
  return FetchFrom(bytes, cursor);
}

LoopbackShipTransport::LoopbackShipTransport() : bytes_(ShipStreamHeader()) {}

void LoopbackShipTransport::Publish(const ShipRecord& record) {
  const std::vector<uint8_t> frame = EncodeShipRecord(record);
  std::scoped_lock lock(mu_);
  bytes_.insert(bytes_.end(), frame.begin(), frame.end());
  if (record.epoch > max_epoch_) max_epoch_ = record.epoch;
  ++records_;
}

uint64_t LoopbackShipTransport::MaxEpoch() const {
  std::scoped_lock lock(mu_);
  return max_epoch_;
}

uint64_t LoopbackShipTransport::records() const {
  std::scoped_lock lock(mu_);
  return records_;
}

void LoopbackShipTransport::CorruptNextFetch() {
  std::scoped_lock lock(mu_);
  corrupt_next_ = true;
}

void LoopbackShipTransport::DuplicateNextFetch() {
  std::scoped_lock lock(mu_);
  duplicate_next_ = true;
}

void LoopbackShipTransport::DropNextFetch() {
  std::scoped_lock lock(mu_);
  drop_next_ = true;
}

ShipFetch LoopbackShipTransport::Fetch(uint64_t cursor) {
  std::scoped_lock lock(mu_);
  ShipFetch fetch = FetchFrom(bytes_, cursor);
  if (!fetch.have) return fetch;
  if (corrupt_next_) {
    corrupt_next_ = false;
    // Garble the delivered copy (not the stream) and run it back
    // through the decoder so the real CRC path rejects it.
    std::vector<uint8_t> frame = EncodeShipRecord(fetch.record);
    if (!frame.empty()) frame.back() ^= 0xFF;
    // A flipped payload byte (or, for empty payloads, a flipped CRC
    // byte) must fail the checksum.
    ShipRecord ignored;
    size_t next = 0;
    ShipFetch bad;
    bad.corrupt =
        DecodeShipRecord(frame, 0, &ignored, &next) == ShipDecode::kCorrupt;
    bad.next_cursor = fetch.next_cursor - frame.size();  // the same cursor
    return bad;
  }
  if (duplicate_next_) {
    duplicate_next_ = false;
    // Deliver the record but do not advance: the next Fetch re-delivers
    // the identical record (a retransmission duplicate).
    fetch.next_cursor = fetch.next_cursor -
                        (kShipFrameSize + fetch.record.payload.size());
    return fetch;
  }
  if (drop_next_) {
    drop_next_ = false;
    // Deliver the *following* record when one exists (a skipped
    // record); the replica must detect the sequence gap and re-request.
    ShipFetch following = FetchFrom(bytes_, fetch.next_cursor);
    if (following.have) return following;
  }
  return fetch;
}

}  // namespace sdelta::replica
