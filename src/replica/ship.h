#ifndef SDELTA_REPLICA_SHIP_H_
#define SDELTA_REPLICA_SHIP_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sdelta::replica {

/// Epoch shipping (DESIGN.md §15): the writer publishes one ShipRecord
/// per maintenance batch it installs — the coalesced change set the
/// batch applied, stamped with the epoch readers saw after the install
/// and the WAL sequence range it covered. A replica that applies ship
/// records in order runs the exact batch trajectory of the writer, so
/// its summary state per epoch is byte-identical (the determinism
/// contract of the batch pipeline).
///
/// Stream layout (all integers little-endian, written byte-by-byte):
///   header:  "SDSHIP1\n" (8 bytes) + u8 version
///   record:  u64 epoch + u64 first_seq + u64 last_seq
///            + u32 payload_len + u32 crc + payload
/// where crc = crc32(epoch + first_seq + last_seq + payload_len bytes
/// + payload) — the same IEEE CRC-32 the WAL uses, covering the frame
/// fields so a corrupted epoch/seq/length is detected, not just a
/// corrupted payload. The payload is service::EncodeChangeSet bytes.
struct ShipRecord {
  uint64_t epoch = 0;
  uint64_t first_seq = 0;  ///< first WAL sequence coalesced into this batch
  uint64_t last_seq = 0;   ///< last WAL sequence coalesced into this batch
  std::vector<uint8_t> payload;
};

inline constexpr char kShipMagic[8] = {'S', 'D', 'S', 'H', 'I', 'P', '1', '\n'};
inline constexpr uint8_t kShipVersion = 1;
/// magic + version byte.
inline constexpr size_t kShipHeaderSize = sizeof(kShipMagic) + 1;
/// epoch + first_seq + last_seq + payload_len + crc.
inline constexpr size_t kShipFrameSize = 8 + 8 + 8 + 4 + 4;

/// The 9 stream-header bytes.
std::vector<uint8_t> ShipStreamHeader();

/// Serializes one record (frame + payload, no stream header).
std::vector<uint8_t> EncodeShipRecord(const ShipRecord& record);

enum class ShipDecode {
  kOk,        ///< *out filled, *next_offset is the following record
  kNeedMore,  ///< the buffer ends mid-record (nothing shipped yet / torn)
  kCorrupt,   ///< CRC mismatch or an impossible length
};

/// Decodes the record starting at `offset` of `buffer`. On kOk fills
/// *out and *next_offset; on kNeedMore/kCorrupt both are untouched.
ShipDecode DecodeShipRecord(const std::vector<uint8_t>& buffer, size_t offset,
                            ShipRecord* out, size_t* next_offset);

/// Validates a stream header at the front of `buffer`. Throws
/// std::runtime_error on a wrong magic or version; returns false (not
/// yet a full header) when the buffer is shorter than the header.
bool CheckShipHeader(const std::vector<uint8_t>& buffer);

/// Where the writer publishes installed epochs. Publish is called from
/// the maintenance thread only, strictly in epoch order.
class ShipPublisher {
 public:
  virtual ~ShipPublisher() = default;
  virtual void Publish(const ShipRecord& record) = 0;
  /// Largest epoch ever published into this sink (0 when fresh). A
  /// writer restarting against an existing stream fast-forwards its
  /// epoch numbering past this, so replicas never see an epoch reused
  /// for a different batch.
  virtual uint64_t MaxEpoch() const { return 0; }
};

/// Durable file-backed ship stream — the "file transport" side: the
/// writer appends via Publish, replicas tail the same file with
/// FileShipTransport. Opening scans an existing stream (truncating a
/// torn tail, which was never fetched-and-acked by anyone) to recover
/// max epoch/seq.
class FileShipLog : public ShipPublisher {
 public:
  explicit FileShipLog(std::string path);
  ~FileShipLog() override;
  FileShipLog(const FileShipLog&) = delete;
  FileShipLog& operator=(const FileShipLog&) = delete;

  void Publish(const ShipRecord& record) override;
  uint64_t MaxEpoch() const override { return max_epoch_; }
  uint64_t max_seq() const { return max_seq_; }
  uint64_t records() const { return records_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  uint64_t max_epoch_ = 0;
  uint64_t max_seq_ = 0;
  uint64_t records_ = 0;
};

}  // namespace sdelta::replica

#endif  // SDELTA_REPLICA_SHIP_H_
