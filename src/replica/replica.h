#ifndef SDELTA_REPLICA_REPLICA_H_
#define SDELTA_REPLICA_REPLICA_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/http_endpoint.h"
#include "obs/metrics.h"
#include "replica/transport.h"
#include "service/versioned.h"
#include "warehouse/warehouse.h"

namespace sdelta::replica {

/// A read-only warehouse replica (DESIGN.md §15): tails a ship stream,
/// applies each record through the normal batch pipeline, and installs
/// the writer's epoch numbers into its own VersionedTables — so a
/// caught-up replica serves exactly the snapshots the writer's readers
/// see, byte-identical per epoch (the pipeline's determinism contract:
/// same change-set trajectory, same summary bytes).
///
/// The replica owns a full Warehouse (base tables included) because
/// refresh needs base state for MIN/MAX recomputation under deletions;
/// applying the shipped change sets keeps it in lockstep with the
/// writer. It never originates maintenance: the only mutation path is
/// Catchup(). Readers use Snapshot()/Query and the HTTP scrape routes
/// (/metrics, /healthz, /epochs) — the same serving surface as the
/// writer service.
///
/// Failure handling per Catchup pull:
///   - CRC-corrupt bytes: counted (replica.crc_rejects) and re-requested
///     — the cursor does not advance, so the next pull retries.
///   - Duplicate record (last_seq <= applied_seq, e.g. a retransmission
///     or pre-bootstrap history): skipped, cursor advances.
///   - Sequence gap (first_seq > applied_seq + 1): counted
///     (replica.gap_rejects) and refused without advancing — the record
///     is re-requested until the gap heals.
/// DDL is not shipped: a writer schema change requires re-bootstrapping
/// replicas from a fresh writer checkpoint (documented limitation).
class ReadReplica {
 public:
  struct Options {
    warehouse::Warehouse::Options warehouse;
    /// External registry for replica.* and pipeline series; null = the
    /// replica owns a private registry (metrics()).
    obs::MetricsRegistry* metrics = nullptr;
    /// HTTP scrape endpoint: < 0 disabled, 0 ephemeral port, > 0 fixed.
    int http_port = -1;
    double slow_query_threshold_seconds = 0.1;
    /// First-boot state: a *writer* checkpoint directory to clone
    /// (SaveWarehouse layout + SEQ + EPOCH markers). Ignored when the
    /// replica has its own checkpoint in data_dir. Empty = bootstrap
    /// from the `bootstrap` catalog at seq 0 and replay the whole ship
    /// stream.
    std::string bootstrap_checkpoint;
  };

  /// Opens the replica on `data_dir` (created if needed; holds replica
  /// checkpoints). Restore precedence: own checkpoint, then
  /// Options::bootstrap_checkpoint, then fresh from `bootstrap` +
  /// `views`. `transport` must outlive the replica.
  static std::unique_ptr<ReadReplica> Open(std::string data_dir,
                                           rel::Catalog bootstrap,
                                           std::vector<core::ViewDef> views,
                                           ShipTransport* transport,
                                           Options options);
  static std::unique_ptr<ReadReplica> Open(std::string data_dir,
                                           rel::Catalog bootstrap,
                                           std::vector<core::ViewDef> views,
                                           ShipTransport* transport) {
    return Open(std::move(data_dir), std::move(bootstrap), std::move(views),
                transport, Options());
  }

  ~ReadReplica();
  ReadReplica(const ReadReplica&) = delete;
  ReadReplica& operator=(const ReadReplica&) = delete;

  struct CatchupReport {
    uint64_t applied = 0;     ///< records applied (epochs installed)
    uint64_t duplicates = 0;  ///< records skipped by sequence dedup
    uint64_t crc_rejects = 0;
    uint64_t gap_rejects = 0;
    double seconds = 0;  ///< wall time of this pass (the catch-up lag)
  };

  /// Pulls and applies ship records until the stream is dry or a
  /// reject (CRC/gap) stops the pass; rejected records stay at the
  /// cursor and the next Catchup re-requests them.
  CatchupReport Catchup();

  /// Pins the current epoch — same read surface as the writer service.
  service::ReadSnapshot Snapshot() const { return versioned_.Pin(); }

  /// Snapshots warehouse + applied markers to <data_dir>/checkpoint
  /// with the writer's tmp/prev rename protocol, so a restart resumes
  /// from the last applied epoch instead of replaying the stream.
  void Checkpoint();

  uint64_t applied_epoch() const { return applied_epoch_.load(); }
  uint64_t applied_seq() const { return applied_seq_.load(); }
  uint64_t cursor() const { return cursor_.load(); }

  obs::MetricsRegistry& metrics() { return *metrics_; }
  const std::string& data_dir() const { return data_dir_; }
  /// The bound scrape port; -1 when disabled.
  int http_port() const;

 private:
  ReadReplica(std::string data_dir, warehouse::Warehouse wh, Options options,
              std::unique_ptr<obs::MetricsRegistry> owned_metrics,
              ShipTransport* transport, uint64_t applied_epoch,
              uint64_t applied_seq, uint64_t start_cursor);

  /// Builds the epoch installed after applying one ship record. Views
  /// untouched by the batch share the previous epoch's tables.
  std::shared_ptr<const service::Epoch> BuildEpoch(
      uint64_t number, const std::vector<size_t>* view_delta_rows,
      bool dims_changed);
  void StartHttp(uint16_t port);
  void EmitGauges();
  std::vector<std::string> FactTableNames() const;

  const std::string data_dir_;
  Options options_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_ = nullptr;
  ShipTransport* transport_ = nullptr;
  service::ServiceObs obs_;
  warehouse::Warehouse warehouse_;
  service::VersionedTables versioned_;
  std::atomic<uint64_t> applied_epoch_{0};
  std::atomic<uint64_t> applied_seq_{0};
  std::atomic<uint64_t> cursor_{0};
  std::unique_ptr<obs::HttpEndpoint> http_;
};

}  // namespace sdelta::replica

#endif  // SDELTA_REPLICA_REPLICA_H_
