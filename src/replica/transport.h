#ifndef SDELTA_REPLICA_TRANSPORT_H_
#define SDELTA_REPLICA_TRANSPORT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "replica/ship.h"

namespace sdelta::replica {

/// One pull from a ship stream.
struct ShipFetch {
  bool have = false;     ///< a complete record was decoded
  bool corrupt = false;  ///< bytes at the cursor failed framing/CRC
  ShipRecord record;
  /// Cursor to pass to the next Fetch. On have: just past the record.
  /// On corrupt / no-data: the *same* cursor — re-request is "call
  /// Fetch again with the cursor you already had".
  uint64_t next_cursor = 0;
};

/// Pull-based ship-stream reader. The cursor is a byte offset into the
/// stream; cursor 0 means "start of stream" and is normalized past the
/// (validated) stream header. Fetch never blocks: no complete record at
/// the cursor returns have = false.
class ShipTransport {
 public:
  virtual ~ShipTransport() = default;
  virtual ShipFetch Fetch(uint64_t cursor) = 0;
};

/// Tails a FileShipLog stream on local disk (the file transport of
/// DESIGN.md §15). Stateless between calls: every Fetch re-reads the
/// file, so a replica sees records the writer appended after the
/// replica opened the transport.
class FileShipTransport : public ShipTransport {
 public:
  explicit FileShipTransport(std::string path);
  ShipFetch Fetch(uint64_t cursor) override;

 private:
  std::string path_;
};

/// In-process stream for writer + replicas in one binary (tests, the
/// shell's demo topology, bench_service): the writer publishes into the
/// buffer, replicas Fetch from it. Thread-safe.
///
/// Fault injection (tests): each knob arms a one-shot fault applied to
/// the next Fetch that would have returned a record —
///   CorruptNextFetch    deliver the record with its payload flipped,
///                       so the CRC check rejects it (torn/garbled
///                       transmission; the stream itself stays intact);
///   DuplicateNextFetch  deliver the record without advancing the
///                       cursor, so the following Fetch re-delivers it;
///   DropNextFetch       deliver the *following* record instead (a
///                       skipped record: the replica sees a sequence
///                       gap and must re-request).
class LoopbackShipTransport : public ShipTransport, public ShipPublisher {
 public:
  LoopbackShipTransport();

  void Publish(const ShipRecord& record) override;
  uint64_t MaxEpoch() const override;
  ShipFetch Fetch(uint64_t cursor) override;

  void CorruptNextFetch();
  void DuplicateNextFetch();
  void DropNextFetch();

  uint64_t records() const;

 private:
  mutable std::mutex mu_;
  std::vector<uint8_t> bytes_;  ///< header + record frames
  uint64_t max_epoch_ = 0;
  uint64_t records_ = 0;
  bool corrupt_next_ = false;
  bool duplicate_next_ = false;
  bool drop_next_ = false;
};

}  // namespace sdelta::replica

#endif  // SDELTA_REPLICA_TRANSPORT_H_
