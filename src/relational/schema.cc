#include "relational/schema.h"

#include <stdexcept>

namespace sdelta::rel {

Schema::Schema(std::vector<Column> columns) {
  for (auto& c : columns) AddColumn(std::move(c.name), c.type);
}

void Schema::AddColumn(std::string name, ValueType type) {
  if (index_.count(name) > 0) {
    throw std::invalid_argument("duplicate column name: " + name);
  }
  index_.emplace(name, columns_.size());
  columns_.push_back(Column{std::move(name), type});
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

std::optional<size_t> Schema::TryResolve(const std::string& name) const {
  if (auto exact = IndexOf(name)) return exact;
  // Unique suffix match: "city" matches "stores.city".
  const std::string suffix = "." + name;
  std::optional<size_t> found;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const std::string& cn = columns_[i].name;
    if (cn.size() > suffix.size() &&
        cn.compare(cn.size() - suffix.size(), suffix.size(), suffix) == 0) {
      if (found.has_value()) {
        throw std::invalid_argument("ambiguous column name '" + name +
                                    "' in schema {" + ToString() + "}");
      }
      found = i;
    }
  }
  return found;
}

size_t Schema::Resolve(const std::string& name) const {
  auto idx = TryResolve(name);
  if (!idx.has_value()) {
    throw std::invalid_argument("unknown column '" + name + "' in schema {" +
                                ToString() + "}");
  }
  return *idx;
}

Schema Schema::Qualified(const std::string& qualifier) const {
  Schema out;
  for (const Column& c : columns_) {
    out.AddColumn(qualifier + "." + c.name, c.type);
  }
  return out;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ":";
    out += ValueTypeName(columns_[i].type);
  }
  return out;
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.columns_.size() != b.columns_.size()) return false;
  for (size_t i = 0; i < a.columns_.size(); ++i) {
    if (a.columns_[i].name != b.columns_[i].name ||
        a.columns_[i].type != b.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace sdelta::rel
