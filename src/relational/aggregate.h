#ifndef SDELTA_RELATIONAL_AGGREGATE_H_
#define SDELTA_RELATIONAL_AGGREGATE_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "relational/expression.h"
#include "relational/value.h"

namespace sdelta::rel {

/// The SQL aggregate functions the paper considers.
///
/// COUNT/SUM/MIN/MAX are distributive; AVG is algebraic (SUM/COUNT);
/// holistic functions (e.g. MEDIAN) are out of scope, as in the paper.
enum class AggregateKind {
  kCountStar,  ///< COUNT(*)
  kCount,      ///< COUNT(expr) — counts non-null values
  kSum,        ///< SUM(expr)   — NULL if no non-null input
  kMin,        ///< MIN(expr)
  kMax,        ///< MAX(expr)
  kAvg,        ///< AVG(expr)   — algebraic; maintained as SUM/COUNT
};

const char* AggregateKindName(AggregateKind kind);

/// One aggregate column of a view: a function, its argument expression
/// (absent for COUNT(*)), and the output column name.
struct AggregateSpec {
  AggregateKind kind = AggregateKind::kCountStar;
  std::optional<Expression> argument;
  std::string output_name;

  std::string ToString() const;
};

/// Convenience constructors.
AggregateSpec CountStar(std::string output_name);
AggregateSpec Count(Expression argument, std::string output_name);
AggregateSpec Sum(Expression argument, std::string output_name);
AggregateSpec Min(Expression argument, std::string output_name);
AggregateSpec Max(Expression argument, std::string output_name);
AggregateSpec Avg(Expression argument, std::string output_name);

/// Result column type of an aggregate given its argument type.
ValueType AggregateResultType(AggregateKind kind, ValueType argument_type);

/// Running state for one aggregate over one group, with SQL semantics:
/// NULL inputs are skipped; SUM/MIN/MAX/AVG of zero non-null inputs is
/// NULL; COUNT of zero inputs is 0.
///
/// The same accumulator set implements both regular view evaluation and
/// summary-delta aggregation — the latter simply feeds signed aggregate
/// sources (Table 1 of the paper) into SUM accumulators (COUNT is
/// rewritten to SUM by the propagate logic).
class Accumulator {
 public:
  explicit Accumulator(AggregateKind kind) : kind_(kind) {}

  /// Folds one input value. For kCountStar the value is ignored.
  void Add(const Value& v);

  /// Typed fast paths for the vectorized GroupBy kernels: identical
  /// semantics to Add(Value::Int64(v)) / Add(Value::Double(v)) /
  /// Add(Value::Null()) without constructing a Value on the hot path
  /// (MIN/MAX build one only when the extremum actually changes).
  void AddInt64(int64_t v) {
    switch (kind_) {
      case AggregateKind::kCountStar:
      case AggregateKind::kCount:
        ++count_;
        return;
      case AggregateKind::kSum:
      case AggregateKind::kAvg:
        has_value_ = true;
        ++count_;
        if (sum_is_double_) {
          sum_d_ += static_cast<double>(v);
        } else {
          sum_i_ += v;
        }
        return;
      case AggregateKind::kMin:
      case AggregateKind::kMax:
        AddExtremum(Value::Int64(v));
        return;
    }
  }

  void AddDouble(double v) {
    switch (kind_) {
      case AggregateKind::kCountStar:
      case AggregateKind::kCount:
        ++count_;
        return;
      case AggregateKind::kSum:
      case AggregateKind::kAvg:
        has_value_ = true;
        ++count_;
        if (!sum_is_double_) {
          sum_d_ = static_cast<double>(sum_i_);
          sum_is_double_ = true;
        }
        sum_d_ += v;
        return;
      case AggregateKind::kMin:
      case AggregateKind::kMax:
        AddExtremum(Value::Double(v));
        return;
    }
  }

  void AddNull() {
    if (kind_ == AggregateKind::kCountStar) ++count_;
  }

  /// Folds another accumulator of the same kind into this one, as if
  /// this one had also seen all of `other`'s inputs. COUNT/SUM/MIN/MAX
  /// are distributive and AVG is algebraic over (sum, count), so the
  /// merge is exact for integer inputs; for double SUM/AVG it is exact
  /// up to floating-point addition order. This is the combine step for
  /// parallel GroupBy's thread-local partial aggregates.
  void Merge(const Accumulator& other);

  /// Final aggregate value for the group.
  Value Result() const;

 private:
  void AddExtremum(Value v) {
    const bool better =
        !has_value_ || (kind_ == AggregateKind::kMin
                            ? Value::Compare(v, extremum_) < 0
                            : Value::Compare(v, extremum_) > 0);
    if (better) extremum_ = std::move(v);
    has_value_ = true;
  }

  AggregateKind kind_;
  int64_t count_ = 0;       // non-null inputs (or all rows for COUNT(*))
  bool has_value_ = false;  // any non-null input seen
  bool sum_is_double_ = false;
  int64_t sum_i_ = 0;
  double sum_d_ = 0.0;
  Value extremum_;  // running MIN/MAX
};

}  // namespace sdelta::rel

#endif  // SDELTA_RELATIONAL_AGGREGATE_H_
