#include "relational/csv.h"

#include <charconv>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace sdelta::rel {

namespace {

bool NeedsQuoting(const std::string& field) {
  return field.find_first_of(",\"\n\r") != std::string::npos ||
         field.empty();
}

void WriteField(const Value& v, std::ostream& out) {
  if (v.is_null()) return;  // NULL -> empty unquoted field
  std::string text;
  switch (v.type()) {
    case ValueType::kInt64:
      out << v.as_int64();
      return;
    case ValueType::kDouble: {
      std::ostringstream os;
      os.precision(17);
      os << v.as_double();
      out << os.str();
      return;
    }
    case ValueType::kString:
      text = v.as_string();
      break;
    case ValueType::kNull:
      return;
  }
  if (!NeedsQuoting(text)) {
    out << text;
    return;
  }
  out << '"';
  for (char c : text) {
    if (c == '"') out << '"';
    out << c;
  }
  out << '"';
}

/// Splits one CSV record (which may span multiple physical lines when a
/// quoted field contains newlines). Returns false at end of stream.
/// Each field is returned with a flag saying whether it was quoted
/// (distinguishing NULL from the empty string).
struct RawField {
  std::string text;
  bool quoted = false;
};

bool ReadRecord(std::istream& in, std::vector<RawField>* fields,
                size_t* line_number) {
  fields->clear();
  int c = in.get();
  if (c == std::char_traits<char>::eof()) return false;
  RawField field;
  bool in_quotes = false;
  bool any = false;
  auto flush = [&]() {
    fields->push_back(std::move(field));
    field = RawField{};
  };
  while (true) {
    if (c == std::char_traits<char>::eof()) {
      flush();
      return true;
    }
    const char ch = static_cast<char>(c);
    if (in_quotes) {
      if (ch == '"') {
        if (in.peek() == '"') {
          field.text += '"';
          in.get();
        } else {
          in_quotes = false;
        }
      } else {
        if (ch == '\n') ++*line_number;
        field.text += ch;
      }
    } else if (ch == '"' && field.text.empty() && !any) {
      in_quotes = true;
      field.quoted = true;
      any = true;
    } else if (ch == '"' && field.text.empty()) {
      in_quotes = true;
      field.quoted = true;
    } else if (ch == ',') {
      flush();
      any = false;
    } else if (ch == '\r') {
      // swallow; \r\n handled at \n
    } else if (ch == '\n') {
      ++*line_number;
      flush();
      return true;
    } else {
      field.text += ch;
      any = true;
    }
    c = in.get();
  }
}

Value ParseField(const RawField& raw, ValueType type, size_t line) {
  if (raw.text.empty() && !raw.quoted) return Value::Null();
  switch (type) {
    case ValueType::kInt64: {
      int64_t v = 0;
      const char* begin = raw.text.data();
      const char* end = begin + raw.text.size();
      auto [ptr, ec] = std::from_chars(begin, end, v);
      if (ec != std::errc() || ptr != end) {
        throw std::invalid_argument("CSV line " + std::to_string(line) +
                                    ": '" + raw.text +
                                    "' is not a valid int64");
      }
      return Value::Int64(v);
    }
    case ValueType::kDouble: {
      try {
        size_t consumed = 0;
        const double v = std::stod(raw.text, &consumed);
        if (consumed != raw.text.size()) throw std::invalid_argument("");
        return Value::Double(v);
      } catch (...) {
        throw std::invalid_argument("CSV line " + std::to_string(line) +
                                    ": '" + raw.text +
                                    "' is not a valid double");
      }
    }
    case ValueType::kString:
      return Value::String(raw.text);
    case ValueType::kNull:
      break;
  }
  throw std::invalid_argument("CSV: cannot parse into a null-typed column");
}

}  // namespace

void WriteCsv(const Table& table, std::ostream& out) {
  const Schema& schema = table.schema();
  for (size_t i = 0; i < schema.NumColumns(); ++i) {
    if (i > 0) out << ',';
    out << schema.column(i).name;
  }
  out << '\n';
  for (size_t r = 0; r < table.NumRows(); ++r) {
    for (size_t i = 0; i < schema.NumColumns(); ++i) {
      if (i > 0) out << ',';
      WriteField(table.ValueAt(r, i), out);
    }
    out << '\n';
  }
}

std::string ToCsvString(const Table& table) {
  std::ostringstream os;
  WriteCsv(table, os);
  return os.str();
}

Table ReadCsv(const Schema& schema, std::istream& in, std::string name) {
  size_t line = 1;
  std::vector<RawField> fields;
  if (!ReadRecord(in, &fields, &line)) {
    throw std::invalid_argument("CSV: missing header row");
  }
  if (fields.size() != schema.NumColumns()) {
    throw std::invalid_argument(
        "CSV header has " + std::to_string(fields.size()) +
        " columns, schema has " + std::to_string(schema.NumColumns()));
  }
  for (size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].text != schema.column(i).name) {
      throw std::invalid_argument("CSV header column " + std::to_string(i) +
                                  " is '" + fields[i].text +
                                  "', schema expects '" +
                                  schema.column(i).name + "'");
    }
  }

  Table table(schema, std::move(name));
  size_t record_line = line;
  while (ReadRecord(in, &fields, &line)) {
    if (fields.size() == 1 && fields[0].text.empty() && !fields[0].quoted) {
      record_line = line;
      continue;  // blank line
    }
    if (fields.size() != schema.NumColumns()) {
      throw std::invalid_argument(
          "CSV line " + std::to_string(record_line) + ": expected " +
          std::to_string(schema.NumColumns()) + " fields, got " +
          std::to_string(fields.size()));
    }
    Row row;
    row.reserve(fields.size());
    for (size_t i = 0; i < fields.size(); ++i) {
      row.push_back(
          ParseField(fields[i], schema.column(i).type, record_line));
    }
    table.Insert(std::move(row));
    record_line = line;
  }
  return table;
}

Table FromCsvString(const Schema& schema, const std::string& csv,
                    std::string name) {
  std::istringstream in(csv);
  return ReadCsv(schema, in, std::move(name));
}

}  // namespace sdelta::rel
