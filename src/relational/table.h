#ifndef SDELTA_RELATIONAL_TABLE_H_
#define SDELTA_RELATIONAL_TABLE_H_

#include <string>
#include <vector>

#include "relational/column.h"
#include "relational/flat_hash.h"
#include "relational/group_key.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace sdelta::rel {

/// An in-memory relation with bag (multiset) semantics, stored
/// column-wise: one typed ColumnVector per schema column (int64 /
/// double / dictionary-coded string vectors plus a per-column null
/// bitmap; see column.h for the boxed escape hatch). Hot operators read
/// and write columns directly; cold paths (CSV, shell printing, tests)
/// materialize row views via RowAt / MaterializeRows.
///
/// Deletion is O(1) swap-with-back across all columns. An optional
/// whole-row hash index (EnableRowIndex) accelerates EraseOneEqual from
/// O(n) to expected O(1); the warehouse enables it on fact tables so
/// that applying a deferred deletion set of d rows against an n-row
/// fact table costs O(d) instead of O(d*n). The index hashes rows
/// straight out of the columns (HashRowAt), never materializing them.
///
/// Table deliberately has no notion of keys or constraints — duplicates
/// are allowed, exactly as the paper's pos table allows duplicate sales.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema, std::string name = "");

  /// Builds a table directly from pre-assembled columns (the vectorized
  /// operators construct outputs this way). Every column must hold
  /// exactly `num_rows` values and the column count must match the
  /// schema; violations throw std::invalid_argument.
  static Table FromColumns(Schema schema, std::string name,
                           std::vector<ColumnVector> columns, size_t num_rows);

  const std::string& name() const { return name_; }
  /// Renames the table in place (replaces the old take-rows-and-
  /// reinsert idiom used to retitle an operator result).
  void SetName(std::string name) { name_ = std::move(name); }
  const Schema& schema() const { return schema_; }
  size_t NumRows() const { return num_rows_; }
  bool empty() const { return num_rows_ == 0; }

  /// Materializes row i as a tuple of Values (string columns copy).
  Row RowAt(size_t i) const;

  /// Materializes one cell.
  Value ValueAt(size_t row, size_t col) const { return columns_[col].At(row); }

  /// Materializes every row — test/debug convenience, O(rows * cols).
  std::vector<Row> MaterializeRows() const;

  /// Direct read access to a column's storage for vectorized loops.
  const ColumnVector& column_data(size_t i) const { return columns_[i]; }

  /// Reserves storage for n rows in every column vector — and in the
  /// row index when enabled — so bulk loads neither reallocate columns
  /// nor rehash the index repeatedly.
  void Reserve(size_t n) {
    for (ColumnVector& c : columns_) c.Reserve(n);
    if (row_index_enabled_) row_index_.Reserve(n);
  }

  /// Appends a row. The row must have schema().NumColumns() values; this
  /// is checked (cheaply) and violations throw std::invalid_argument.
  void Insert(Row row);

  /// Appends all of src's rows column-wise (bulk vector copies when the
  /// storage modes line up). Arity must match; column *types* need not —
  /// mismatched values demote the destination column, exactly as if the
  /// rows had been Inserted one by one.
  void AppendColumnsFrom(const Table& src);

  /// Move flavor: steals src's column storage wholesale when this table
  /// is empty and the schemas' types match; falls back to a copy.
  void AppendColumnsFrom(Table&& src);

  /// Appends src's rows at positions `rows`, in order (columnar gather).
  void AppendGather(const Table& src, const std::vector<size_t>& rows);

  /// Removes one row equal to `target` (bag semantics: if the row occurs
  /// k times, one occurrence is removed). Returns true if a row was
  /// removed. Expected O(1) with the row index enabled, O(n) otherwise.
  bool EraseOneEqual(const Row& target);

  /// Removes the row at position i (swap-with-back).
  void EraseAt(size_t i);

  /// Removes all rows (keeps schema and index mode).
  void Clear();

  /// Hash of row i, equal to HashRow(RowAt(i)) without materializing.
  size_t HashRowAt(size_t i) const;

  /// RowAt(i) == target under Value equality, without materializing.
  bool RowEqualsAt(size_t i, const Row& target) const;

  /// Builds and maintains a whole-row hash index. Idempotent.
  void EnableRowIndex();
  bool row_index_enabled() const { return row_index_enabled_; }

  /// Deep equality as bags: same schema and same multiset of rows.
  /// O(n) with hashing. Used heavily by tests.
  static bool BagEquals(const Table& a, const Table& b);

  /// Heap bytes held by the column storage (excludes shared
  /// dictionaries; feeds the table.bytes gauge and the shell's
  /// `tables` layout breakdown).
  size_t ApproxBytes() const;

  /// Renders up to `max_rows` rows for debugging/examples.
  std::string ToString(size_t max_rows = 20) const;

 private:
  void IndexInsert(size_t pos);
  void IndexErase(size_t pos);

  std::string name_;
  Schema schema_;
  std::vector<ColumnVector> columns_;
  size_t num_rows_ = 0;
  bool row_index_enabled_ = false;
  // hash(row) -> positions with that hash (collisions resolved by compare).
  // HashRowAt output is already avalanched, so the map hashes by identity.
  FlatHashMap<size_t, size_t, IdentityHash> row_index_;
};

}  // namespace sdelta::rel

#endif  // SDELTA_RELATIONAL_TABLE_H_
