#ifndef SDELTA_RELATIONAL_TABLE_H_
#define SDELTA_RELATIONAL_TABLE_H_

#include <string>
#include <vector>

#include "relational/flat_hash.h"
#include "relational/group_key.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace sdelta::rel {

/// An in-memory relation with bag (multiset) semantics.
///
/// Rows are stored densely in a vector; deletion is O(1) swap-with-back.
/// An optional whole-row hash index (EnableRowIndex) accelerates
/// EraseOneEqual from O(n) to expected O(1); the warehouse enables it on
/// fact tables so that applying a deferred deletion set of d rows against
/// an n-row fact table costs O(d) instead of O(d*n).
///
/// Table deliberately has no notion of keys or constraints — duplicates
/// are allowed, exactly as the paper's pos table allows duplicate sales.
class Table {
 public:
  Table() = default;
  explicit Table(Schema schema, std::string name = "");

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  size_t NumRows() const { return rows_.size(); }
  bool empty() const { return rows_.empty(); }
  const Row& row(size_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Reserves storage for n rows — including the row index when enabled,
  /// so bulk loads do not rehash it repeatedly.
  void Reserve(size_t n) {
    rows_.reserve(n);
    if (row_index_enabled_) row_index_.Reserve(n);
  }

  /// Appends a row. The row must have schema().NumColumns() values; this
  /// is checked (cheaply) and violations throw std::invalid_argument.
  void Insert(Row row);

  /// Removes one row equal to `target` (bag semantics: if the row occurs
  /// k times, one occurrence is removed). Returns true if a row was
  /// removed. Expected O(1) with the row index enabled, O(n) otherwise.
  bool EraseOneEqual(const Row& target);

  /// Removes the row at position i (swap-with-back).
  void EraseAt(size_t i);

  /// Removes all rows (keeps schema and index mode).
  void Clear();

  /// Moves the row storage out, leaving the table empty (schema and
  /// index mode are kept; the index is dropped with the rows). Lets
  /// operators splice a table's rows into another without per-row
  /// copies — the move-insert side of UnionAll and the prepare-changes
  /// version-combination loop use this.
  std::vector<Row> TakeRows() {
    std::vector<Row> out = std::move(rows_);
    rows_.clear();
    row_index_.Clear();
    return out;
  }

  /// Builds and maintains a whole-row hash index. Idempotent.
  void EnableRowIndex();
  bool row_index_enabled() const { return row_index_enabled_; }

  /// Deep equality as bags: same schema and same multiset of rows.
  /// O(n) with hashing. Used heavily by tests.
  static bool BagEquals(const Table& a, const Table& b);

  /// Renders up to `max_rows` rows for debugging/examples.
  std::string ToString(size_t max_rows = 20) const;

 private:
  void IndexInsert(size_t pos);
  void IndexErase(size_t pos);

  std::string name_;
  Schema schema_;
  std::vector<Row> rows_;
  bool row_index_enabled_ = false;
  // hash(row) -> positions with that hash (collisions resolved by compare).
  // HashRow output is already avalanched, so the map hashes by identity.
  FlatHashMap<size_t, size_t, IdentityHash> row_index_;
};

}  // namespace sdelta::rel

#endif  // SDELTA_RELATIONAL_TABLE_H_
