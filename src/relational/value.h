#ifndef SDELTA_RELATIONAL_VALUE_H_
#define SDELTA_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace sdelta::rel {

/// The dynamic type of a Value / the declared type of a column.
///
/// Dates are represented as kInt64 (days since an arbitrary epoch); the
/// MakeDate helper builds them from (year, month, day) so that ordering
/// matches calendar ordering.
enum class ValueType {
  kNull,
  kInt64,
  kDouble,
  kString,
};

/// Returns a human-readable name for a ValueType ("null", "int64", ...).
const char* ValueTypeName(ValueType type);

/// A dynamically typed SQL-style scalar.
///
/// Value is a small immutable variant over {null, int64, double, string}.
/// All relational operators in this library (expressions, aggregation,
/// joins) traffic in Values. SQL semantics are followed where it matters
/// for the paper's algorithms: NULL propagates through arithmetic, NULLs
/// are skipped by aggregate accumulators, and comparisons involving NULL
/// yield NULL (three-valued logic lives in the expression layer).
class Value {
 public:
  /// Constructs the NULL value.
  Value() : data_(std::monostate{}) {}

  /// Factory functions (preferred over implicit conversions, per style).
  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Data(v)); }
  static Value Double(double v) { return Value(Data(v)); }
  static Value String(std::string v) { return Value(Data(std::move(v))); }
  /// Builds an int64-encoded date that orders like the calendar.
  static Value Date(int year, int month, int day) {
    return Int64(int64_t{year} * 10000 + month * 100 + day);
  }

  ValueType type() const {
    switch (data_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt64;
      case 2: return ValueType::kDouble;
      default: return ValueType::kString;
    }
  }

  bool is_null() const { return data_.index() == 0; }

  /// Accessors. Calling the wrong accessor for the stored type is a
  /// programmer error and throws std::bad_variant_access.
  int64_t as_int64() const { return std::get<int64_t>(data_); }
  double as_double() const { return std::get<double>(data_); }
  const std::string& as_string() const { return std::get<std::string>(data_); }

  /// Numeric value widened to double (int64 or double); throws for other
  /// types. Used by arithmetic and SUM over mixed numeric columns.
  double ToDouble() const;

  /// SQL-style arithmetic with NULL propagation. Integer op integer stays
  /// integer; any double operand widens the result to double. Throws
  /// std::invalid_argument if an operand is a string.
  static Value Add(const Value& a, const Value& b);
  static Value Subtract(const Value& a, const Value& b);
  static Value Multiply(const Value& a, const Value& b);
  /// Division always produces double (or NULL on NULL input or zero
  /// divisor, mirroring SQL's error-free warehouse-friendly behaviour).
  static Value Divide(const Value& a, const Value& b);
  static Value Negate(const Value& a);

  /// Three-way comparison for ordering within a column.
  /// NULL sorts before every non-null value; cross-numeric comparisons
  /// (int64 vs double) compare numerically; comparing a string with a
  /// number throws std::invalid_argument.
  /// Returns <0, 0, >0.
  static int Compare(const Value& a, const Value& b);

  /// Structural equality: same type (modulo numeric widening) and same
  /// contents. NULL == NULL is true here — this is *storage* equality used
  /// by group keys and bag deletion, not SQL expression equality.
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Hash consistent with operator== (numerically equal int64/double that
  /// compare equal hash alike by hashing the double representation of
  /// integral doubles is NOT attempted; columns are single-typed, so the
  /// hash is over the stored representation).
  size_t Hash() const;

  /// Renders the value for debugging and example output ("NULL", "42",
  /// "3.5", "abc").
  std::string ToString() const;

 private:
  using Data = std::variant<std::monostate, int64_t, double, std::string>;
  explicit Value(Data data) : data_(std::move(data)) {}

  Data data_;
};

/// A tuple of values. Rows are positional; names live in the Schema.
using Row = std::vector<Value>;

/// Renders a row as "(v1, v2, ...)" for debugging and examples.
std::string RowToString(const Row& row);

}  // namespace sdelta::rel

#endif  // SDELTA_RELATIONAL_VALUE_H_
