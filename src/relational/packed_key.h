#ifndef SDELTA_RELATIONAL_PACKED_KEY_H_
#define SDELTA_RELATIONAL_PACKED_KEY_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "relational/dictionary.h"
#include "relational/group_key.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace sdelta::rel {

class Table;

/// Global switch for packed-key codecs, consulted at codec construction
/// time. On by default; the bench_keys binary and a handful of tests
/// turn it off to exercise (and measure against) the boxed GroupKey
/// path. Not meant to be toggled while codecs built under the other
/// setting are still in use.
bool PackedKeysEnabled();
void SetPackedKeysEnabled(bool enabled);

/// A composite group key packed into 128 bits. Cheap to copy, compare
/// and hash — the fast-path key type for GroupBy, HashJoin builds, and
/// summary-table indexes.
struct PackedKey {
  uint64_t lo = 0;
  uint64_t hi = 0;

  friend bool operator==(const PackedKey& a, const PackedKey& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
  friend bool operator!=(const PackedKey& a, const PackedKey& b) {
    return !(a == b);
  }
};

/// Hash for PackedKey, reusing the splitmix64 avalanche so dense id
/// grids spread exactly like GroupKeyHash's inputs do.
struct PackedKeyHash {
  size_t operator()(const PackedKey& k) const {
    return AvalancheMix(k.lo ^ (0x9e3779b97f4a7c15ULL * AvalancheMix(k.hi)));
  }
};

/// Encodes composite group keys into PackedKeys.
///
/// The *layout* (which columns pack, at what bit widths) is a pure
/// function of the key columns' declared types — never of the data — so
/// the packed/boxed decision is identical on every thread and at every
/// thread count. A schema packs when every key column is kInt64 or
/// kString and the widths fit in 128 bits:
///   - kString columns take 32 bits (a dictionary code);
///   - kInt64 columns split the remaining bits evenly, capped at 63 and
///     floored at 32 (below 32 the schema does not pack).
/// Per column, the all-ones pattern encodes NULL.
///
/// Individual *values* can still escape a packable layout: a negative
/// or too-large int64, or a non-integral double, has no code. Encode
/// then returns nullopt and the caller keeps that key on the boxed
/// GroupKey path. Escape is a pure function of the value, and an
/// escaping value can never compare Value-equal to an encodable one
/// (negative vs non-negative, out-of-range vs in-range, non-integral vs
/// integral), so a packed map and a boxed fallback map never need to
/// probe each other.
///
/// Int64-vs-double widening: Value::operator== makes Int64(7) equal
/// Double(7.0), so an in-range integral double encodes exactly as its
/// int64 twin; all other doubles escape (and equal no packed key).
class PackedKeyCodec {
 public:
  /// Supplies the dictionary for a string key column; only invoked for
  /// kString columns.
  using DictionarySource = std::function<Dictionary*(const Column&)>;

  /// A default-constructed codec packs nothing (packable() is false).
  PackedKeyCodec() = default;

  /// Builds a codec for key columns of the given types. `dicts` runs
  /// parallel to `types`; entries for kString columns must be non-null.
  static PackedKeyCodec ForTypes(const std::vector<ValueType>& types,
                                 const std::vector<Dictionary*>& dicts);

  /// Convenience: types read from `schema` at `key_indices`, dictionaries
  /// drawn from `dicts` (catalog pool or operator-local arena).
  static PackedKeyCodec ForColumns(const Schema& schema,
                                   const std::vector<size_t>& key_indices,
                                   const DictionarySource& dicts);

  /// Codec wired to a columnar table's own storage: string key columns
  /// in dictionary mode reuse the column's dictionary, so EncodeColumns
  /// copies codes straight out of the column with no hashing at all.
  /// Columns without a dictionary (empty, or demoted to boxed) get an
  /// arena-backed one instead.
  static PackedKeyCodec ForTableColumns(const Table& table,
                                        const std::vector<size_t>& key_indices,
                                        DictionaryArena* arena);

  /// String resolution policy for EncodeColumns. kIntern matches
  /// EncodeRow (first sight assigns a code) and is safe for serial
  /// build loops; kLookupOnly never mutates a dictionary — parallel
  /// probe loops use it, treating an unknown string as "matches
  /// nothing" (every build-side string was interned first).
  enum class StringMode { kIntern, kLookupOnly };

  /// Outcome of a columnar encode.
  enum class ColumnarEncode {
    kPacked,         ///< *out holds the key
    kEscaped,        ///< value-level escape: caller takes the boxed path
    kUnknownString,  ///< kLookupOnly only: key packs but cannot match
  };

  /// Encodes the key at `indices` of `table`'s row `row`, reading the
  /// columns directly (dictionary codes copy verbatim when the column
  /// shares this codec's dictionary). Exactly equivalent to EncodeRow
  /// on the materialized row, minus the boxing.
  ColumnarEncode EncodeColumns(const Table& table,
                               const std::vector<size_t>& indices, size_t row,
                               StringMode mode, PackedKey* out) const;

  bool packable() const { return packable_; }
  size_t num_columns() const { return cols_.size(); }
  int width(size_t col) const { return cols_[col].width; }

  /// Encodes the key values at `indices` of `row` (indices parallel the
  /// codec's columns). nullopt = this key escapes to the boxed path.
  std::optional<PackedKey> EncodeRow(const Row& row,
                                     const std::vector<size_t>& indices) const;

  /// Encodes an already-extracted key (key.size() == num_columns()).
  std::optional<PackedKey> EncodeKey(const GroupKey& key) const;

  /// Inverse of Encode for keys it produced. Note the representation is
  /// canonical: a key encoded from Double(7.0) decodes as Int64(7) —
  /// Value-equal, not byte-equal. Hot paths therefore keep the original
  /// first-appearance GroupKey for output and use Decode only in tests.
  GroupKey Decode(const PackedKey& key) const;

 private:
  struct Col {
    ValueType type = ValueType::kNull;
    uint8_t shift = 0;
    uint8_t width = 0;
    uint64_t null_code = 0;  // 2^width - 1: the NULL sentinel and mask
    Dictionary* dict = nullptr;
  };

  bool EncodeValue(const Col& c, const Value& v, unsigned __int128* bits) const;
  bool EncodeValueMode(const Col& c, const Value& v, StringMode mode,
                       unsigned __int128* bits, bool* unknown) const;

  bool packable_ = false;
  std::vector<Col> cols_;
};

}  // namespace sdelta::rel

#endif  // SDELTA_RELATIONAL_PACKED_KEY_H_
