#ifndef SDELTA_RELATIONAL_GROUP_KEY_H_
#define SDELTA_RELATIONAL_GROUP_KEY_H_

#include <cstddef>
#include <vector>

#include "relational/value.h"

namespace sdelta::rel {

/// A composite key: the values of a subset of a row's columns, in a fixed
/// order. Used for grouping, for summary-table primary keys, and for bag
/// deletion of full rows (the key is then the whole row).
using GroupKey = std::vector<Value>;

/// Combines hashes the boost::hash_combine way.
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Hash functor for GroupKey, consistent with operator== on vectors of
/// Value.
struct GroupKeyHash {
  size_t operator()(const GroupKey& key) const {
    size_t seed = key.size();
    for (const Value& v : key) seed = HashCombine(seed, v.Hash());
    return seed;
  }
};

/// Extracts the values at `indices` from `row` as a GroupKey.
inline GroupKey ExtractKey(const Row& row, const std::vector<size_t>& indices) {
  GroupKey key;
  key.reserve(indices.size());
  for (size_t i : indices) key.push_back(row[i]);
  return key;
}

/// Hashes an entire row (used by Table's whole-row index).
inline size_t HashRow(const Row& row) {
  size_t seed = row.size();
  for (const Value& v : row) seed = HashCombine(seed, v.Hash());
  return seed;
}

}  // namespace sdelta::rel

#endif  // SDELTA_RELATIONAL_GROUP_KEY_H_
