#ifndef SDELTA_RELATIONAL_GROUP_KEY_H_
#define SDELTA_RELATIONAL_GROUP_KEY_H_

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "relational/value.h"

namespace sdelta::rel {

/// A composite key: the values of a subset of a row's columns, in a fixed
/// order. Used for grouping, for summary-table primary keys, and for bag
/// deletion of full rows (the key is then the whole row).
using GroupKey = std::vector<Value>;

/// Combines hashes the boost::hash_combine way.
inline size_t HashCombine(size_t seed, size_t h) {
  return seed ^ (h + 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2));
}

/// Final avalanche step (splitmix64 finalizer). Value::Hash uses
/// std::hash, which libstdc++ implements as the identity on integers —
/// so without this, small sequential keys (store ids 0..99, item ids
/// 0..999, date codes) land in consecutive buckets and strided access
/// patterns degenerate to near-linear probing. The finalizer spreads
/// every input bit across the output.
inline size_t AvalancheMix(size_t h) {
  uint64_t x = static_cast<uint64_t>(h);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<size_t>(x);
}

/// Hash functor for GroupKey, consistent with operator== on vectors of
/// Value.
///
/// Each element's hash is avalanched *before* combining: HashCombine
/// assumes well-spread inputs, and with identity element hashes a dense
/// 2-D key grid (storeID × itemID) loses about half its distinct hash
/// values to (a, b)/(a', b') interference even with a final mix.
struct GroupKeyHash {
  size_t operator()(const GroupKey& key) const {
    size_t seed = key.size();
    for (const Value& v : key) seed = HashCombine(seed, AvalancheMix(v.Hash()));
    return AvalancheMix(seed);
  }
};

/// Extracts the values at `indices` from `row` as a GroupKey.
inline GroupKey ExtractKey(const Row& row, const std::vector<size_t>& indices) {
  GroupKey key;
  key.reserve(indices.size());
  for (size_t i : indices) key.push_back(row[i]);
  return key;
}

/// Allocation-free variant for per-row loops: reuses `out`'s capacity
/// across calls (the caller copies `*out` only when it actually needs to
/// retain the key, e.g. on first appearance of a group). No reserve here:
/// after the first call capacity covers indices.size(), and re-checking
/// it per row is wasted work in the innermost loop.
inline void ExtractKey(const Row& row, const std::vector<size_t>& indices,
                       GroupKey* out) {
  out->clear();
  [[maybe_unused]] const bool fits = out->capacity() >= indices.size();
  [[maybe_unused]] const Value* data_before = out->data();
  for (size_t i : indices) out->push_back(row[i]);
  assert(!fits || out->data() == data_before);
}

/// Hashes an entire row (used by Table's whole-row index).
inline size_t HashRow(const Row& row) {
  size_t seed = row.size();
  for (const Value& v : row) seed = HashCombine(seed, AvalancheMix(v.Hash()));
  return AvalancheMix(seed);
}

}  // namespace sdelta::rel

#endif  // SDELTA_RELATIONAL_GROUP_KEY_H_
