#include "relational/expression.h"

#include <stdexcept>

#include "relational/table.h"

namespace sdelta::rel {

struct Expression::Node {
  Kind kind;
  // kColumn
  std::string column_name;
  // kLiteral
  Value literal;
  // children: unary ops use [0]; binary use [0],[1]; kCaseIsNull uses
  // [0]=test, [1]=if_null, [2]=if_not_null.
  std::vector<Expression> children;
};

Expression::Expression(std::shared_ptr<const Node> node)
    : node_(std::move(node)) {}

Expression Expression::MakeNode(Kind kind, std::vector<Expression> children) {
  auto n = std::make_shared<Node>();
  n->kind = kind;
  n->children = std::move(children);
  return Expression(std::move(n));
}

Expression Expression::Column(std::string name) {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kColumn;
  n->column_name = std::move(name);
  return Expression(std::move(n));
}

Expression Expression::Literal(Value value) {
  auto n = std::make_shared<Node>();
  n->kind = Kind::kLiteral;
  n->literal = std::move(value);
  return Expression(std::move(n));
}

Expression Expression::Negate(Expression e) {
  return MakeNode(Kind::kNegate, {std::move(e)});
}
Expression Expression::IsNull(Expression e) {
  return MakeNode(Kind::kIsNull, {std::move(e)});
}
Expression Expression::Not(Expression e) {
  return MakeNode(Kind::kNot, {std::move(e)});
}
Expression Expression::CaseIsNull(Expression test, Expression if_null,
                                  Expression if_not_null) {
  return MakeNode(Kind::kCaseIsNull, {std::move(test), std::move(if_null),
                                      std::move(if_not_null)});
}
Expression Expression::Add(Expression a, Expression b) {
  return MakeNode(Kind::kAdd, {std::move(a), std::move(b)});
}
Expression Expression::Subtract(Expression a, Expression b) {
  return MakeNode(Kind::kSubtract, {std::move(a), std::move(b)});
}
Expression Expression::Multiply(Expression a, Expression b) {
  return MakeNode(Kind::kMultiply, {std::move(a), std::move(b)});
}
Expression Expression::Divide(Expression a, Expression b) {
  return MakeNode(Kind::kDivide, {std::move(a), std::move(b)});
}
Expression Expression::Eq(Expression a, Expression b) {
  return MakeNode(Kind::kEq, {std::move(a), std::move(b)});
}
Expression Expression::Ne(Expression a, Expression b) {
  return MakeNode(Kind::kNe, {std::move(a), std::move(b)});
}
Expression Expression::Lt(Expression a, Expression b) {
  return MakeNode(Kind::kLt, {std::move(a), std::move(b)});
}
Expression Expression::Le(Expression a, Expression b) {
  return MakeNode(Kind::kLe, {std::move(a), std::move(b)});
}
Expression Expression::Gt(Expression a, Expression b) {
  return MakeNode(Kind::kGt, {std::move(a), std::move(b)});
}
Expression Expression::Ge(Expression a, Expression b) {
  return MakeNode(Kind::kGe, {std::move(a), std::move(b)});
}
Expression Expression::And(Expression a, Expression b) {
  return MakeNode(Kind::kAnd, {std::move(a), std::move(b)});
}
Expression Expression::Or(Expression a, Expression b) {
  return MakeNode(Kind::kOr, {std::move(a), std::move(b)});
}

Expression::Kind Expression::kind() const { return node_->kind; }

const std::string& Expression::column_name() const {
  if (node_->kind != Kind::kColumn) {
    throw std::logic_error("column_name() on non-column expression");
  }
  return node_->column_name;
}

void Expression::CollectColumns(std::vector<std::string>* out) const {
  if (node_->kind == Kind::kColumn) {
    for (const std::string& s : *out) {
      if (s == node_->column_name) return;
    }
    out->push_back(node_->column_name);
    return;
  }
  for (const Expression& c : node_->children) {
    c.CollectColumns(out);
  }
}

std::vector<std::string> Expression::ReferencedColumns() const {
  std::vector<std::string> out;
  CollectColumns(&out);
  return out;
}

Expression Expression::RenameColumns(
    const std::function<std::string(const std::string&)>& fn) const {
  switch (node_->kind) {
    case Kind::kColumn:
      return Column(fn(node_->column_name));
    case Kind::kLiteral:
      return *this;
    default: {
      std::vector<Expression> children;
      children.reserve(node_->children.size());
      for (const Expression& c : node_->children) {
        children.push_back(c.RenameColumns(fn));
      }
      return MakeNode(node_->kind, std::move(children));
    }
  }
}

ValueType Expression::ResultType(const Schema& schema) const {
  switch (node_->kind) {
    case Kind::kColumn:
      return schema.column(schema.Resolve(node_->column_name)).type;
    case Kind::kLiteral:
      return node_->literal.type();
    case Kind::kNegate:
      return node_->children[0].ResultType(schema);
    case Kind::kIsNull:
    case Kind::kNot:
    case Kind::kEq:
    case Kind::kNe:
    case Kind::kLt:
    case Kind::kLe:
    case Kind::kGt:
    case Kind::kGe:
    case Kind::kAnd:
    case Kind::kOr:
      return ValueType::kInt64;
    case Kind::kDivide:
      return ValueType::kDouble;
    case Kind::kCaseIsNull: {
      ValueType a = node_->children[1].ResultType(schema);
      ValueType b = node_->children[2].ResultType(schema);
      if (a == ValueType::kNull) return b;
      if (b == ValueType::kNull) return a;
      if (a == ValueType::kDouble || b == ValueType::kDouble) {
        return ValueType::kDouble;
      }
      return a;
    }
    case Kind::kAdd:
    case Kind::kSubtract:
    case Kind::kMultiply: {
      ValueType a = node_->children[0].ResultType(schema);
      ValueType b = node_->children[1].ResultType(schema);
      if (a == ValueType::kDouble || b == ValueType::kDouble) {
        return ValueType::kDouble;
      }
      return ValueType::kInt64;
    }
  }
  return ValueType::kNull;
}

namespace {

const char* OpName(Expression::Kind k) {
  using Kind = Expression::Kind;
  switch (k) {
    case Kind::kAdd: return "+";
    case Kind::kSubtract: return "-";
    case Kind::kMultiply: return "*";
    case Kind::kDivide: return "/";
    case Kind::kEq: return "=";
    case Kind::kNe: return "<>";
    case Kind::kLt: return "<";
    case Kind::kLe: return "<=";
    case Kind::kGt: return ">";
    case Kind::kGe: return ">=";
    case Kind::kAnd: return "AND";
    case Kind::kOr: return "OR";
    default: return "?";
  }
}

}  // namespace

std::string Expression::ToString() const {
  switch (node_->kind) {
    case Kind::kColumn:
      return node_->column_name;
    case Kind::kLiteral:
      // String literals render SQL-quoted so that ToString output parses
      // back through the SQL dialect.
      if (node_->literal.type() == ValueType::kString) {
        return "'" + node_->literal.as_string() + "'";
      }
      return node_->literal.ToString();
    case Kind::kNegate:
      return "(-" + node_->children[0].ToString() + ")";
    case Kind::kIsNull:
      return "(" + node_->children[0].ToString() + " IS NULL)";
    case Kind::kNot:
      return "(NOT " + node_->children[0].ToString() + ")";
    case Kind::kCaseIsNull:
      return "(CASE WHEN " + node_->children[0].ToString() +
             " IS NULL THEN " + node_->children[1].ToString() + " ELSE " +
             node_->children[2].ToString() + " END)";
    default:
      return "(" + node_->children[0].ToString() + " " + OpName(node_->kind) +
             " " + node_->children[1].ToString() + ")";
  }
}

bool operator==(const Expression& a, const Expression& b) {
  if (a.node_ == b.node_) return true;
  if (a.node_->kind != b.node_->kind) return false;
  switch (a.node_->kind) {
    case Expression::Kind::kColumn:
      return a.node_->column_name == b.node_->column_name;
    case Expression::Kind::kLiteral:
      return a.node_->literal.type() == b.node_->literal.type() &&
             a.node_->literal == b.node_->literal;
    default: {
      if (a.node_->children.size() != b.node_->children.size()) return false;
      for (size_t i = 0; i < a.node_->children.size(); ++i) {
        if (!(a.node_->children[i] == b.node_->children[i])) return false;
      }
      return true;
    }
  }
}

// ---------------------------------------------------------------------------
// Bound expressions
// ---------------------------------------------------------------------------

struct BoundExpression::BoundNode {
  Expression::Kind kind;
  size_t column_index = 0;
  Value literal;
  std::vector<BoundExpression> children;
};

BoundExpression::BoundExpression(std::shared_ptr<const BoundNode> node)
    : node_(std::move(node)) {}

BoundExpression Expression::Bind(const Schema& schema) const {
  auto bn = std::make_shared<BoundExpression::BoundNode>();
  bn->kind = node_->kind;
  switch (node_->kind) {
    case Kind::kColumn:
      bn->column_index = schema.Resolve(node_->column_name);
      break;
    case Kind::kLiteral:
      bn->literal = node_->literal;
      break;
    default:
      bn->children.reserve(node_->children.size());
      for (const Expression& c : node_->children) {
        bn->children.push_back(c.Bind(schema));
      }
      break;
  }
  return BoundExpression(std::move(bn));
}

namespace {

// Three-valued logic: -1 = NULL, 0 = false, 1 = true.
int Truth(const Value& v) {
  if (v.is_null()) return -1;
  if (v.type() == ValueType::kInt64) return v.as_int64() != 0 ? 1 : 0;
  if (v.type() == ValueType::kDouble) return v.as_double() != 0.0 ? 1 : 0;
  return 1;  // non-null, non-numeric counts as true
}

Value FromTruth(int t) {
  if (t < 0) return Value::Null();
  return Value::Int64(t);
}

}  // namespace

namespace {

/// Column accessors for the shared evaluation walk: one view over a
/// materialized Row, one over a columnar Table row.
struct RowAccess {
  const Row& row;
  Value Get(size_t col) const { return row[col]; }
};

struct TableAccess {
  const Table& table;
  size_t row;
  Value Get(size_t col) const { return table.ValueAt(row, col); }
};

}  // namespace

template <typename Access>
Value BoundExpression::EvalNode(const BoundNode& n, const Access& at) {
  using Kind = Expression::Kind;
  switch (n.kind) {
    case Kind::kColumn:
      return at.Get(n.column_index);
    case Kind::kLiteral:
      return n.literal;
    case Kind::kNegate:
      return Value::Negate(EvalNode(*n.children[0].node_, at));
    case Kind::kIsNull:
      return Value::Int64(EvalNode(*n.children[0].node_, at).is_null() ? 1
                                                                       : 0);
    case Kind::kNot: {
      int t = Truth(EvalNode(*n.children[0].node_, at));
      return FromTruth(t < 0 ? -1 : 1 - t);
    }
    case Kind::kCaseIsNull:
      return EvalNode(*n.children[0].node_, at).is_null()
                 ? EvalNode(*n.children[1].node_, at)
                 : EvalNode(*n.children[2].node_, at);
    case Kind::kAdd:
      return Value::Add(EvalNode(*n.children[0].node_, at),
                        EvalNode(*n.children[1].node_, at));
    case Kind::kSubtract:
      return Value::Subtract(EvalNode(*n.children[0].node_, at),
                             EvalNode(*n.children[1].node_, at));
    case Kind::kMultiply:
      return Value::Multiply(EvalNode(*n.children[0].node_, at),
                             EvalNode(*n.children[1].node_, at));
    case Kind::kDivide:
      return Value::Divide(EvalNode(*n.children[0].node_, at),
                           EvalNode(*n.children[1].node_, at));
    case Kind::kEq:
    case Kind::kNe:
    case Kind::kLt:
    case Kind::kLe:
    case Kind::kGt:
    case Kind::kGe: {
      Value a = EvalNode(*n.children[0].node_, at);
      Value b = EvalNode(*n.children[1].node_, at);
      if (a.is_null() || b.is_null()) return Value::Null();
      int c = Value::Compare(a, b);
      bool r = false;
      switch (n.kind) {
        case Kind::kEq: r = (c == 0); break;
        case Kind::kNe: r = (c != 0); break;
        case Kind::kLt: r = (c < 0); break;
        case Kind::kLe: r = (c <= 0); break;
        case Kind::kGt: r = (c > 0); break;
        default: r = (c >= 0); break;
      }
      return Value::Int64(r ? 1 : 0);
    }
    case Kind::kAnd: {
      int a = Truth(EvalNode(*n.children[0].node_, at));
      if (a == 0) return Value::Int64(0);
      int b = Truth(EvalNode(*n.children[1].node_, at));
      if (b == 0) return Value::Int64(0);
      if (a < 0 || b < 0) return Value::Null();
      return Value::Int64(1);
    }
    case Kind::kOr: {
      int a = Truth(EvalNode(*n.children[0].node_, at));
      if (a == 1) return Value::Int64(1);
      int b = Truth(EvalNode(*n.children[1].node_, at));
      if (b == 1) return Value::Int64(1);
      if (a < 0 || b < 0) return Value::Null();
      return Value::Int64(0);
    }
  }
  return Value::Null();
}

Value BoundExpression::Eval(const Row& row) const {
  return EvalNode(*node_, RowAccess{row});
}

Value BoundExpression::EvalAt(const Table& table, size_t row) const {
  return EvalNode(*node_, TableAccess{table, row});
}

bool BoundExpression::EvalPredicate(const Row& row) const {
  return Truth(Eval(row)) == 1;
}

bool BoundExpression::EvalPredicateAt(const Table& table, size_t row) const {
  return Truth(EvalAt(table, row)) == 1;
}

std::optional<size_t> BoundExpression::SourceColumn() const {
  if (node_ != nullptr && node_->kind == Expression::Kind::kColumn) {
    return node_->column_index;
  }
  return std::nullopt;
}

}  // namespace sdelta::rel
