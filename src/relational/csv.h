#ifndef SDELTA_RELATIONAL_CSV_H_
#define SDELTA_RELATIONAL_CSV_H_

#include <iosfwd>
#include <string>

#include "relational/table.h"

namespace sdelta::rel {

/// CSV interchange for tables (RFC-4180 flavoured):
///  * first row is the header (column names);
///  * fields containing comma, quote or newline are double-quoted, with
///    embedded quotes doubled;
///  * NULL is written as an empty unquoted field; an empty *quoted*
///    field is the empty string;
///  * int64/double/string fields are parsed according to the target
///    schema.

/// Writes `table` (header + rows) to `out`.
void WriteCsv(const Table& table, std::ostream& out);

/// Renders the table as a CSV string (tests, small exports).
std::string ToCsvString(const Table& table);

/// Reads a CSV stream into a table with the given schema and name. The
/// header must match the schema's column names exactly (order and
/// spelling); data errors (arity, unparsable numbers) throw
/// std::invalid_argument with a line number.
Table ReadCsv(const Schema& schema, std::istream& in, std::string name);

/// Parses a CSV string (tests, fixtures).
Table FromCsvString(const Schema& schema, const std::string& csv,
                    std::string name = "");

}  // namespace sdelta::rel

#endif  // SDELTA_RELATIONAL_CSV_H_
