#include "relational/aggregate.h"

#include <stdexcept>

namespace sdelta::rel {

const char* AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCountStar: return "COUNT(*)";
    case AggregateKind::kCount: return "COUNT";
    case AggregateKind::kSum: return "SUM";
    case AggregateKind::kMin: return "MIN";
    case AggregateKind::kMax: return "MAX";
    case AggregateKind::kAvg: return "AVG";
  }
  return "?";
}

std::string AggregateSpec::ToString() const {
  std::string s = AggregateKindName(kind);
  if (kind != AggregateKind::kCountStar) {
    s += "(" + (argument.has_value() ? argument->ToString() : "?") + ")";
  }
  s += " AS " + output_name;
  return s;
}

AggregateSpec CountStar(std::string output_name) {
  return AggregateSpec{AggregateKind::kCountStar, std::nullopt,
                       std::move(output_name)};
}
AggregateSpec Count(Expression argument, std::string output_name) {
  return AggregateSpec{AggregateKind::kCount, std::move(argument),
                       std::move(output_name)};
}
AggregateSpec Sum(Expression argument, std::string output_name) {
  return AggregateSpec{AggregateKind::kSum, std::move(argument),
                       std::move(output_name)};
}
AggregateSpec Min(Expression argument, std::string output_name) {
  return AggregateSpec{AggregateKind::kMin, std::move(argument),
                       std::move(output_name)};
}
AggregateSpec Max(Expression argument, std::string output_name) {
  return AggregateSpec{AggregateKind::kMax, std::move(argument),
                       std::move(output_name)};
}
AggregateSpec Avg(Expression argument, std::string output_name) {
  return AggregateSpec{AggregateKind::kAvg, std::move(argument),
                       std::move(output_name)};
}

ValueType AggregateResultType(AggregateKind kind, ValueType argument_type) {
  switch (kind) {
    case AggregateKind::kCountStar:
    case AggregateKind::kCount:
      return ValueType::kInt64;
    case AggregateKind::kSum:
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      return argument_type;
    case AggregateKind::kAvg:
      return ValueType::kDouble;
  }
  return ValueType::kNull;
}

void Accumulator::Add(const Value& v) {
  switch (kind_) {
    case AggregateKind::kCountStar:
      ++count_;
      return;
    case AggregateKind::kCount:
      if (!v.is_null()) ++count_;
      return;
    case AggregateKind::kSum:
    case AggregateKind::kAvg:
      if (v.is_null()) return;
      has_value_ = true;
      ++count_;
      if (v.type() == ValueType::kDouble || sum_is_double_) {
        if (!sum_is_double_) {
          sum_d_ = static_cast<double>(sum_i_);
          sum_is_double_ = true;
        }
        sum_d_ += v.ToDouble();
      } else if (v.type() == ValueType::kInt64) {
        sum_i_ += v.as_int64();
      } else {
        throw std::invalid_argument("SUM/AVG over non-numeric value");
      }
      return;
    case AggregateKind::kMin:
      if (v.is_null()) return;
      if (!has_value_ || Value::Compare(v, extremum_) < 0) extremum_ = v;
      has_value_ = true;
      return;
    case AggregateKind::kMax:
      if (v.is_null()) return;
      if (!has_value_ || Value::Compare(v, extremum_) > 0) extremum_ = v;
      has_value_ = true;
      return;
  }
}

void Accumulator::Merge(const Accumulator& other) {
  switch (kind_) {
    case AggregateKind::kCountStar:
    case AggregateKind::kCount:
      count_ += other.count_;
      return;
    case AggregateKind::kSum:
    case AggregateKind::kAvg:
      count_ += other.count_;
      if (!other.has_value_) return;
      has_value_ = true;
      if (other.sum_is_double_ || sum_is_double_) {
        if (!sum_is_double_) {
          sum_d_ = static_cast<double>(sum_i_);
          sum_is_double_ = true;
        }
        sum_d_ += other.sum_is_double_ ? other.sum_d_
                                       : static_cast<double>(other.sum_i_);
      } else {
        sum_i_ += other.sum_i_;
      }
      return;
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      if (other.has_value_) Add(other.extremum_);
      return;
  }
}

Value Accumulator::Result() const {
  switch (kind_) {
    case AggregateKind::kCountStar:
    case AggregateKind::kCount:
      return Value::Int64(count_);
    case AggregateKind::kSum:
      if (!has_value_) return Value::Null();
      return sum_is_double_ ? Value::Double(sum_d_) : Value::Int64(sum_i_);
    case AggregateKind::kAvg:
      if (!has_value_ || count_ == 0) return Value::Null();
      return Value::Double(
          (sum_is_double_ ? sum_d_ : static_cast<double>(sum_i_)) /
          static_cast<double>(count_));
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      return has_value_ ? extremum_ : Value::Null();
  }
  return Value::Null();
}

}  // namespace sdelta::rel
