#ifndef SDELTA_RELATIONAL_SCHEMA_H_
#define SDELTA_RELATIONAL_SCHEMA_H_

#include <cstddef>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/value.h"

namespace sdelta::rel {

/// A named, typed column.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// An ordered list of columns with name-based lookup.
///
/// Joined schemas qualify every column as "table.column"; Resolve() then
/// accepts either the fully qualified name or a bare column name when the
/// bare name is unambiguous. Base-table schemas typically use bare names.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  /// Appends a column. Duplicate exact names throw std::invalid_argument.
  void AddColumn(std::string name, ValueType type);

  size_t NumColumns() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Exact-name lookup. Returns nullopt if absent.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// Name resolution used by expressions: exact match first; otherwise a
  /// unique suffix match on ".name" (so "city" resolves to "stores.city"
  /// in a joined schema). Ambiguity or absence throws
  /// std::invalid_argument with a descriptive message.
  size_t Resolve(const std::string& name) const;

  /// Like Resolve but returns nullopt instead of throwing on absence
  /// (ambiguity still throws).
  std::optional<size_t> TryResolve(const std::string& name) const;

  /// Returns a copy of this schema with every column renamed to
  /// "qualifier.old_name". Used when building joined schemas.
  Schema Qualified(const std::string& qualifier) const;

  /// Renders "name:type, ..." for error messages and examples.
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<Column> columns_;
  std::unordered_map<std::string, size_t> index_;
};

}  // namespace sdelta::rel

#endif  // SDELTA_RELATIONAL_SCHEMA_H_
