#include "relational/table.h"

#include <map>
#include <sstream>
#include <stdexcept>

namespace sdelta::rel {

Table::Table(Schema schema, std::string name)
    : name_(std::move(name)), schema_(std::move(schema)) {}

void Table::Insert(Row row) {
  if (row.size() != schema_.NumColumns()) {
    throw std::invalid_argument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString() + " of table '" + name_ + "'");
  }
  rows_.push_back(std::move(row));
  if (row_index_enabled_) IndexInsert(rows_.size() - 1);
}

bool Table::EraseOneEqual(const Row& target) {
  if (row_index_enabled_) {
    const size_t h = HashRow(target);
    size_t found_pos = rows_.size();
    // Collect the position first: EraseAt rewrites the index, which must
    // not happen while the probe chain is being walked.
    row_index_.ForEachEqual(h, [&](size_t pos) {
      if (rows_[pos] == target) {
        found_pos = pos;
        return true;
      }
      return false;
    });
    if (found_pos == rows_.size()) return false;
    EraseAt(found_pos);
    return true;
  }
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i] == target) {
      EraseAt(i);
      return true;
    }
  }
  return false;
}

void Table::EraseAt(size_t i) {
  if (i >= rows_.size()) {
    throw std::invalid_argument("EraseAt out of range");
  }
  const size_t last = rows_.size() - 1;
  if (row_index_enabled_) {
    IndexErase(i);
    if (i != last) {
      IndexErase(last);
    }
  }
  if (i != last) {
    rows_[i] = std::move(rows_[last]);
  }
  rows_.pop_back();
  if (row_index_enabled_ && i != last) {
    IndexInsert(i);
  }
}

void Table::Clear() {
  rows_.clear();
  row_index_.Clear();
}

void Table::EnableRowIndex() {
  if (row_index_enabled_) return;
  row_index_enabled_ = true;
  row_index_.Clear();
  row_index_.Reserve(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) IndexInsert(i);
}

void Table::IndexInsert(size_t pos) {
  row_index_.InsertMulti(HashRow(rows_[pos]), pos);
}

void Table::IndexErase(size_t pos) {
  const size_t h = HashRow(rows_[pos]);
  if (!row_index_.EraseOneIf(h, [pos](size_t p) { return p == pos; })) {
    throw std::logic_error("row index out of sync in table '" + name_ + "'");
  }
}

bool Table::BagEquals(const Table& a, const Table& b) {
  if (a.NumRows() != b.NumRows()) return false;
  if (a.schema().NumColumns() != b.schema().NumColumns()) return false;
  // Count multiplicities of a's rows, subtract b's.
  FlatHashMap<size_t, const Row*, IdentityHash> counts;
  counts.Reserve(a.NumRows());
  for (const Row& r : a.rows()) counts.InsertMulti(HashRow(r), &r);
  for (const Row& r : b.rows()) {
    const size_t h = HashRow(r);
    if (!counts.EraseOneIf(h, [&r](const Row* cand) { return *cand == r; })) {
      return false;
    }
  }
  return counts.empty();
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << (name_.empty() ? "<anon>" : name_) << " [" << schema_.ToString()
     << "] " << rows_.size() << " rows\n";
  for (size_t i = 0; i < rows_.size() && i < max_rows; ++i) {
    os << "  " << RowToString(rows_[i]) << "\n";
  }
  if (rows_.size() > max_rows) {
    os << "  ... (" << rows_.size() - max_rows << " more)\n";
  }
  return os.str();
}

}  // namespace sdelta::rel
