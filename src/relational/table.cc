#include "relational/table.h"

#include <map>
#include <sstream>
#include <stdexcept>

namespace sdelta::rel {

Table::Table(Schema schema, std::string name)
    : name_(std::move(name)), schema_(std::move(schema)) {}

void Table::Insert(Row row) {
  if (row.size() != schema_.NumColumns()) {
    throw std::invalid_argument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString() + " of table '" + name_ + "'");
  }
  rows_.push_back(std::move(row));
  if (row_index_enabled_) IndexInsert(rows_.size() - 1);
}

bool Table::EraseOneEqual(const Row& target) {
  if (row_index_enabled_) {
    const size_t h = HashRow(target);
    auto [begin, end] = row_index_.equal_range(h);
    for (auto it = begin; it != end; ++it) {
      if (rows_[it->second] == target) {
        EraseAt(it->second);
        return true;
      }
    }
    return false;
  }
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i] == target) {
      EraseAt(i);
      return true;
    }
  }
  return false;
}

void Table::EraseAt(size_t i) {
  if (i >= rows_.size()) {
    throw std::invalid_argument("EraseAt out of range");
  }
  const size_t last = rows_.size() - 1;
  if (row_index_enabled_) {
    IndexErase(i);
    if (i != last) {
      IndexErase(last);
    }
  }
  if (i != last) {
    rows_[i] = std::move(rows_[last]);
  }
  rows_.pop_back();
  if (row_index_enabled_ && i != last) {
    IndexInsert(i);
  }
}

void Table::Clear() {
  rows_.clear();
  row_index_.clear();
}

void Table::EnableRowIndex() {
  if (row_index_enabled_) return;
  row_index_enabled_ = true;
  row_index_.clear();
  row_index_.reserve(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) IndexInsert(i);
}

void Table::IndexInsert(size_t pos) {
  row_index_.emplace(HashRow(rows_[pos]), pos);
}

void Table::IndexErase(size_t pos) {
  const size_t h = HashRow(rows_[pos]);
  auto [begin, end] = row_index_.equal_range(h);
  for (auto it = begin; it != end; ++it) {
    if (it->second == pos) {
      row_index_.erase(it);
      return;
    }
  }
  throw std::logic_error("row index out of sync in table '" + name_ + "'");
}

bool Table::BagEquals(const Table& a, const Table& b) {
  if (a.NumRows() != b.NumRows()) return false;
  if (a.schema().NumColumns() != b.schema().NumColumns()) return false;
  // Count multiplicities of a's rows, subtract b's.
  std::unordered_multimap<size_t, const Row*> counts;
  counts.reserve(a.NumRows());
  for (const Row& r : a.rows()) counts.emplace(HashRow(r), &r);
  for (const Row& r : b.rows()) {
    const size_t h = HashRow(r);
    auto [begin, end] = counts.equal_range(h);
    bool found = false;
    for (auto it = begin; it != end; ++it) {
      if (*it->second == r) {
        counts.erase(it);
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return counts.empty();
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << (name_.empty() ? "<anon>" : name_) << " [" << schema_.ToString()
     << "] " << rows_.size() << " rows\n";
  for (size_t i = 0; i < rows_.size() && i < max_rows; ++i) {
    os << "  " << RowToString(rows_[i]) << "\n";
  }
  if (rows_.size() > max_rows) {
    os << "  ... (" << rows_.size() - max_rows << " more)\n";
  }
  return os.str();
}

}  // namespace sdelta::rel
