#include "relational/table.h"

#include <sstream>
#include <stdexcept>
#include <utility>

namespace sdelta::rel {

namespace {

std::vector<ColumnVector> ColumnsFor(const Schema& schema) {
  std::vector<ColumnVector> columns;
  columns.reserve(schema.NumColumns());
  for (const Column& c : schema.columns()) columns.emplace_back(c.type);
  return columns;
}

}  // namespace

Table::Table(Schema schema, std::string name)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      columns_(ColumnsFor(schema_)) {}

Table Table::FromColumns(Schema schema, std::string name,
                         std::vector<ColumnVector> columns, size_t num_rows) {
  if (columns.size() != schema.NumColumns()) {
    throw std::invalid_argument(
        "FromColumns: " + std::to_string(columns.size()) +
        " columns do not match schema " + schema.ToString());
  }
  for (const ColumnVector& c : columns) {
    if (c.size() != num_rows) {
      throw std::invalid_argument(
          "FromColumns: column has " + std::to_string(c.size()) +
          " rows, expected " + std::to_string(num_rows));
    }
  }
  Table t(std::move(schema), std::move(name));
  t.columns_ = std::move(columns);
  t.num_rows_ = num_rows;
  return t;
}

Row Table::RowAt(size_t i) const {
  Row row;
  row.reserve(columns_.size());
  for (const ColumnVector& c : columns_) row.push_back(c.At(i));
  return row;
}

std::vector<Row> Table::MaterializeRows() const {
  std::vector<Row> rows;
  rows.reserve(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) rows.push_back(RowAt(i));
  return rows;
}

void Table::Insert(Row row) {
  if (row.size() != schema_.NumColumns()) {
    throw std::invalid_argument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        schema_.ToString() + " of table '" + name_ + "'");
  }
  for (size_t c = 0; c < columns_.size(); ++c) columns_[c].Append(row[c]);
  ++num_rows_;
  if (row_index_enabled_) IndexInsert(num_rows_ - 1);
}

void Table::AppendColumnsFrom(const Table& src) {
  if (src.schema_.NumColumns() != schema_.NumColumns()) {
    throw std::invalid_argument("AppendColumnsFrom arity mismatch: {" +
                                schema_.ToString() + "} vs {" +
                                src.schema_.ToString() + "}");
  }
  const size_t first = num_rows_;
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendRange(src.columns_[c], 0, src.num_rows_);
  }
  num_rows_ += src.num_rows_;
  if (row_index_enabled_) {
    for (size_t i = first; i < num_rows_; ++i) IndexInsert(i);
  }
}

void Table::AppendColumnsFrom(Table&& src) {
  if (num_rows_ == 0 && !row_index_enabled_ &&
      src.schema_.NumColumns() == schema_.NumColumns()) {
    bool same_types = true;
    for (size_t c = 0; c < columns_.size(); ++c) {
      same_types &= schema_.column(c).type == src.schema_.column(c).type;
    }
    if (same_types) {
      columns_ = std::move(src.columns_);
      num_rows_ = src.num_rows_;
      src.columns_ = ColumnsFor(src.schema_);
      src.num_rows_ = 0;
      src.row_index_.Clear();
      return;
    }
  }
  AppendColumnsFrom(static_cast<const Table&>(src));
  src.Clear();  // rvalue source: drain it, as the move contract promises
}

void Table::AppendGather(const Table& src, const std::vector<size_t>& rows) {
  if (src.schema_.NumColumns() != schema_.NumColumns()) {
    throw std::invalid_argument("AppendGather arity mismatch: {" +
                                schema_.ToString() + "} vs {" +
                                src.schema_.ToString() + "}");
  }
  const size_t first = num_rows_;
  for (size_t c = 0; c < columns_.size(); ++c) {
    columns_[c].AppendGather(src.columns_[c], rows);
  }
  num_rows_ += rows.size();
  if (row_index_enabled_) {
    for (size_t i = first; i < num_rows_; ++i) IndexInsert(i);
  }
}

bool Table::EraseOneEqual(const Row& target) {
  if (row_index_enabled_) {
    const size_t h = HashRow(target);
    size_t found_pos = num_rows_;
    // Collect the position first: EraseAt rewrites the index, which must
    // not happen while the probe chain is being walked.
    row_index_.ForEachEqual(h, [&](size_t pos) {
      if (RowEqualsAt(pos, target)) {
        found_pos = pos;
        return true;
      }
      return false;
    });
    if (found_pos == num_rows_) return false;
    EraseAt(found_pos);
    return true;
  }
  for (size_t i = 0; i < num_rows_; ++i) {
    if (RowEqualsAt(i, target)) {
      EraseAt(i);
      return true;
    }
  }
  return false;
}

void Table::EraseAt(size_t i) {
  if (i >= num_rows_) {
    throw std::invalid_argument("EraseAt out of range");
  }
  const size_t last = num_rows_ - 1;
  if (row_index_enabled_) {
    IndexErase(i);
    if (i != last) {
      IndexErase(last);
    }
  }
  for (ColumnVector& c : columns_) c.EraseAtSwap(i);
  --num_rows_;
  if (row_index_enabled_ && i != last) {
    IndexInsert(i);
  }
}

void Table::Clear() {
  for (ColumnVector& c : columns_) c.Clear();
  num_rows_ = 0;
  row_index_.Clear();
}

size_t Table::HashRowAt(size_t i) const {
  // Must equal HashRow(RowAt(i)): same combine, same per-value hash.
  size_t seed = columns_.size();
  for (const ColumnVector& c : columns_) {
    seed = HashCombine(seed, AvalancheMix(c.HashAt(i)));
  }
  return AvalancheMix(seed);
}

bool Table::RowEqualsAt(size_t i, const Row& target) const {
  if (target.size() != columns_.size()) return false;
  for (size_t c = 0; c < columns_.size(); ++c) {
    if (!columns_[c].EqualsAt(i, target[c])) return false;
  }
  return true;
}

void Table::EnableRowIndex() {
  if (row_index_enabled_) return;
  row_index_enabled_ = true;
  row_index_.Clear();
  row_index_.Reserve(num_rows_);
  for (size_t i = 0; i < num_rows_; ++i) IndexInsert(i);
}

void Table::IndexInsert(size_t pos) {
  row_index_.InsertMulti(HashRowAt(pos), pos);
}

void Table::IndexErase(size_t pos) {
  const size_t h = HashRowAt(pos);
  if (!row_index_.EraseOneIf(h, [pos](size_t p) { return p == pos; })) {
    throw std::logic_error("row index out of sync in table '" + name_ + "'");
  }
}

bool Table::BagEquals(const Table& a, const Table& b) {
  if (a.NumRows() != b.NumRows()) return false;
  if (a.schema().NumColumns() != b.schema().NumColumns()) return false;
  // Count multiplicities of a's rows, subtract b's.
  FlatHashMap<size_t, size_t, IdentityHash> counts;
  counts.Reserve(a.NumRows());
  for (size_t i = 0; i < a.num_rows_; ++i) {
    counts.InsertMulti(a.HashRowAt(i), i);
  }
  for (size_t j = 0; j < b.num_rows_; ++j) {
    const size_t h = b.HashRowAt(j);
    const Row rb = b.RowAt(j);
    if (!counts.EraseOneIf(
            h, [&](size_t ai) { return a.RowEqualsAt(ai, rb); })) {
      return false;
    }
  }
  return counts.empty();
}

size_t Table::ApproxBytes() const {
  size_t bytes = 0;
  for (const ColumnVector& c : columns_) bytes += c.ApproxBytes();
  return bytes;
}

std::string Table::ToString(size_t max_rows) const {
  std::ostringstream os;
  os << (name_.empty() ? "<anon>" : name_) << " [" << schema_.ToString()
     << "] " << num_rows_ << " rows\n";
  for (size_t i = 0; i < num_rows_ && i < max_rows; ++i) {
    os << "  " << RowToString(RowAt(i)) << "\n";
  }
  if (num_rows_ > max_rows) {
    os << "  ... (" << num_rows_ - max_rows << " more)\n";
  }
  return os.str();
}

}  // namespace sdelta::rel
