#include "relational/catalog.h"

#include <algorithm>
#include <stdexcept>

namespace sdelta::rel {

Table& Catalog::AddTable(Table table) {
  const std::string name = table.name();
  if (name.empty()) {
    throw std::invalid_argument("catalog tables must be named");
  }
  auto [it, inserted] = tables_.emplace(name, std::move(table));
  if (!inserted) {
    throw std::invalid_argument("duplicate table name: " + name);
  }
  return it->second;
}

bool Catalog::HasTable(const std::string& name) const {
  return tables_.count(name) > 0;
}

Table& Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw std::invalid_argument("unknown table: " + name);
  }
  return it->second;
}

const Table& Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    throw std::invalid_argument("unknown table: " + name);
  }
  return it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [name, table] : tables_) names.push_back(name);
  std::sort(names.begin(), names.end());
  return names;
}

void Catalog::DeclareForeignKey(const std::string& fact_table,
                                const std::string& fact_column,
                                const std::string& dim_table,
                                const std::string& dim_column) {
  const Table& fact = GetTable(fact_table);
  const Table& dim = GetTable(dim_table);
  if (!fact.schema().IndexOf(fact_column).has_value()) {
    throw std::invalid_argument("foreign key column " + fact_table + "." +
                                fact_column + " does not exist");
  }
  if (!dim.schema().IndexOf(dim_column).has_value()) {
    throw std::invalid_argument("referenced column " + dim_table + "." +
                                dim_column + " does not exist");
  }
  fks_.push_back(ForeignKey{fact_table, fact_column, dim_table, dim_column});
}

void Catalog::DeclareFunctionalDependency(const std::string& table,
                                          const std::string& determinant,
                                          const std::string& dependent) {
  const Table& t = GetTable(table);
  if (!t.schema().IndexOf(determinant).has_value() ||
      !t.schema().IndexOf(dependent).has_value()) {
    throw std::invalid_argument("functional dependency references unknown "
                                "column in table " +
                                table);
  }
  fds_.push_back(FunctionalDependency{table, determinant, dependent});
}

const ForeignKey* Catalog::FindForeignKey(const std::string& fact_table,
                                          const std::string& fact_column) const {
  for (const ForeignKey& fk : fks_) {
    if (fk.fact_table == fact_table && fk.fact_column == fact_column) {
      return &fk;
    }
  }
  return nullptr;
}

std::vector<const ForeignKey*> Catalog::ForeignKeysOf(
    const std::string& fact_table) const {
  std::vector<const ForeignKey*> out;
  for (const ForeignKey& fk : fks_) {
    if (fk.fact_table == fact_table) out.push_back(&fk);
  }
  return out;
}

std::vector<const FunctionalDependency*> Catalog::DependenciesOf(
    const std::string& table) const {
  std::vector<const FunctionalDependency*> out;
  for (const FunctionalDependency& fd : fds_) {
    if (fd.table == table) out.push_back(&fd);
  }
  return out;
}

std::vector<std::string> Catalog::FdClosure(const std::string& table,
                                            const std::string& attribute) const {
  std::vector<std::string> closure;
  std::vector<std::string> frontier = {attribute};
  while (!frontier.empty()) {
    std::string attr = std::move(frontier.back());
    frontier.pop_back();
    for (const FunctionalDependency& fd : fds_) {
      if (fd.table != table || fd.determinant != attr) continue;
      bool seen = fd.dependent == attribute;
      for (const std::string& c : closure) seen |= (c == fd.dependent);
      if (!seen) {
        closure.push_back(fd.dependent);
        frontier.push_back(fd.dependent);
      }
    }
  }
  return closure;
}

}  // namespace sdelta::rel
