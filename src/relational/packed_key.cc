#include "relational/packed_key.h"

#include <atomic>
#include <cstring>
#include <stdexcept>

#include "relational/table.h"

namespace sdelta::rel {

namespace {
std::atomic<bool> g_packed_enabled{true};
}  // namespace

bool PackedKeysEnabled() {
  return g_packed_enabled.load(std::memory_order_relaxed);
}

void SetPackedKeysEnabled(bool enabled) {
  g_packed_enabled.store(enabled, std::memory_order_relaxed);
}

PackedKeyCodec PackedKeyCodec::ForTypes(const std::vector<ValueType>& types,
                                        const std::vector<Dictionary*>& dicts) {
  if (dicts.size() != types.size()) {
    throw std::invalid_argument(
        "PackedKeyCodec: dictionary list does not match column list");
  }
  PackedKeyCodec codec;
  if (!PackedKeysEnabled()) return codec;

  size_t num_strings = 0;
  size_t num_ints = 0;
  for (ValueType t : types) {
    if (t == ValueType::kString) {
      ++num_strings;
    } else if (t == ValueType::kInt64) {
      ++num_ints;
    } else {
      return codec;  // doubles and friends never pack
    }
  }
  // Strings take a fixed 32 bits; ints split the remainder evenly, and a
  // schema whose ints would drop below 32 bits does not pack at all.
  int int_width = 0;
  if (num_ints > 0) {
    const int budget = 128 - 32 * static_cast<int>(num_strings);
    int_width = budget / static_cast<int>(num_ints);
    if (int_width < 32) return codec;
    if (int_width > 63) int_width = 63;
  } else if (num_strings > 4) {
    return codec;
  }

  codec.cols_.reserve(types.size());
  int shift = 0;
  for (size_t i = 0; i < types.size(); ++i) {
    Col c;
    c.type = types[i];
    c.width = static_cast<uint8_t>(types[i] == ValueType::kString ? 32
                                                                  : int_width);
    c.shift = static_cast<uint8_t>(shift);
    c.null_code = (uint64_t{1} << c.width) - 1;
    if (types[i] == ValueType::kString) {
      if (dicts[i] == nullptr) {
        throw std::invalid_argument(
            "PackedKeyCodec: string key column has no dictionary");
      }
      c.dict = dicts[i];
    }
    shift += c.width;
    codec.cols_.push_back(c);
  }
  codec.packable_ = true;
  return codec;
}

PackedKeyCodec PackedKeyCodec::ForColumns(const Schema& schema,
                                          const std::vector<size_t>& key_indices,
                                          const DictionarySource& dicts) {
  std::vector<ValueType> types;
  std::vector<Dictionary*> dict_ptrs;
  types.reserve(key_indices.size());
  dict_ptrs.reserve(key_indices.size());
  const bool enabled = PackedKeysEnabled();
  for (size_t idx : key_indices) {
    const Column& col = schema.columns()[idx];
    types.push_back(col.type);
    dict_ptrs.push_back(enabled && col.type == ValueType::kString ? dicts(col)
                                                                  : nullptr);
  }
  return ForTypes(types, dict_ptrs);
}

PackedKeyCodec PackedKeyCodec::ForTableColumns(
    const Table& table, const std::vector<size_t>& key_indices,
    DictionaryArena* arena) {
  std::vector<ValueType> types;
  std::vector<Dictionary*> dict_ptrs;
  types.reserve(key_indices.size());
  dict_ptrs.reserve(key_indices.size());
  const bool enabled = PackedKeysEnabled();
  for (size_t idx : key_indices) {
    const Column& col = table.schema().columns()[idx];
    types.push_back(col.type);
    Dictionary* dict = nullptr;
    if (enabled && col.type == ValueType::kString) {
      const ColumnVector& cv = table.column_data(idx);
      if (cv.storage() == ColumnVector::Storage::kDict &&
          cv.dict() != nullptr) {
        dict = cv.dict().get();
      } else {
        dict = &arena->Add();
      }
    }
    dict_ptrs.push_back(dict);
  }
  return ForTypes(types, dict_ptrs);
}

bool PackedKeyCodec::EncodeValue(const Col& c, const Value& v,
                                 unsigned __int128* bits) const {
  uint64_t code;
  if (v.is_null()) {
    code = c.null_code;
  } else if (c.type == ValueType::kString) {
    if (v.type() != ValueType::kString) return false;
    code = c.dict->Intern(v.as_string());
  } else {
    int64_t iv;
    if (v.type() == ValueType::kInt64) {
      iv = v.as_int64();
    } else if (v.type() == ValueType::kDouble) {
      // Value::operator== widens: Int64(7) == Double(7.0). Encode an
      // integral in-range double as its int64 twin so equal keys get
      // equal codes; everything else escapes. The range check must come
      // before the cast — out-of-range double-to-int conversion is UB.
      const double d = v.as_double();
      if (!(d >= 0.0 && d < static_cast<double>(c.null_code))) return false;
      iv = static_cast<int64_t>(d);
      if (static_cast<double>(iv) != d) return false;
    } else {
      return false;
    }
    if (iv < 0 || static_cast<uint64_t>(iv) >= c.null_code) return false;
    code = static_cast<uint64_t>(iv);
  }
  *bits |= static_cast<unsigned __int128>(code) << c.shift;
  return true;
}

bool PackedKeyCodec::EncodeValueMode(const Col& c, const Value& v,
                                     StringMode mode, unsigned __int128* bits,
                                     bool* unknown) const {
  if (mode == StringMode::kIntern || v.is_null() ||
      c.type != ValueType::kString) {
    return EncodeValue(c, v, bits);
  }
  if (v.type() != ValueType::kString) return false;
  const std::optional<uint32_t> code = c.dict->Lookup(v.as_string());
  if (!code.has_value()) {
    *unknown = true;
    return false;
  }
  *bits |= static_cast<unsigned __int128>(*code) << c.shift;
  return true;
}

PackedKeyCodec::ColumnarEncode PackedKeyCodec::EncodeColumns(
    const Table& table, const std::vector<size_t>& indices, size_t row,
    StringMode mode, PackedKey* out) const {
  unsigned __int128 bits = 0;
  for (size_t i = 0; i < cols_.size(); ++i) {
    const Col& c = cols_[i];
    const ColumnVector& cv = table.column_data(indices[i]);
    switch (cv.storage()) {
      case ColumnVector::Storage::kInt64: {
        if (ColumnVector::WordBit(cv.null_words(), row)) {
          bits |= static_cast<unsigned __int128>(c.null_code) << c.shift;
          break;
        }
        const int64_t iv = cv.ints()[row];
        if (iv < 0 || static_cast<uint64_t>(iv) >= c.null_code) {
          return ColumnarEncode::kEscaped;
        }
        bits |= static_cast<unsigned __int128>(static_cast<uint64_t>(iv))
                << c.shift;
        break;
      }
      case ColumnVector::Storage::kDict: {
        if (ColumnVector::WordBit(cv.null_words(), row)) {
          bits |= static_cast<unsigned __int128>(c.null_code) << c.shift;
          break;
        }
        const uint32_t sc = cv.codes()[row];
        if (c.dict == cv.dict().get()) {
          // The codec shares the column's dictionary: the stored code
          // IS the key code — no hashing at all.
          bits |= static_cast<unsigned __int128>(sc) << c.shift;
          break;
        }
        const std::string& s = cv.dict()->ValueOf(sc);
        uint64_t code;
        if (mode == StringMode::kIntern) {
          code = c.dict->Intern(s);
        } else {
          const std::optional<uint32_t> found = c.dict->Lookup(s);
          if (!found.has_value()) return ColumnarEncode::kUnknownString;
          code = *found;
        }
        bits |= static_cast<unsigned __int128>(code) << c.shift;
        break;
      }
      default: {
        // Boxed storage (or a defensive fallback): exact EncodeRow
        // semantics on the materialized value.
        bool unknown = false;
        if (!EncodeValueMode(c, cv.At(row), mode, &bits, &unknown)) {
          return unknown ? ColumnarEncode::kUnknownString
                         : ColumnarEncode::kEscaped;
        }
        break;
      }
    }
  }
  *out = PackedKey{static_cast<uint64_t>(bits),
                   static_cast<uint64_t>(bits >> 64)};
  return ColumnarEncode::kPacked;
}

std::optional<PackedKey> PackedKeyCodec::EncodeRow(
    const Row& row, const std::vector<size_t>& indices) const {
  unsigned __int128 bits = 0;
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (!EncodeValue(cols_[i], row[indices[i]], &bits)) return std::nullopt;
  }
  return PackedKey{static_cast<uint64_t>(bits),
                   static_cast<uint64_t>(bits >> 64)};
}

std::optional<PackedKey> PackedKeyCodec::EncodeKey(const GroupKey& key) const {
  unsigned __int128 bits = 0;
  for (size_t i = 0; i < cols_.size(); ++i) {
    if (!EncodeValue(cols_[i], key[i], &bits)) return std::nullopt;
  }
  return PackedKey{static_cast<uint64_t>(bits),
                   static_cast<uint64_t>(bits >> 64)};
}

GroupKey PackedKeyCodec::Decode(const PackedKey& key) const {
  unsigned __int128 bits =
      (static_cast<unsigned __int128>(key.hi) << 64) | key.lo;
  GroupKey out;
  out.reserve(cols_.size());
  for (const Col& c : cols_) {
    const uint64_t code =
        static_cast<uint64_t>((bits >> c.shift)) & c.null_code;
    if (code == c.null_code) {
      out.push_back(Value::Null());
    } else if (c.type == ValueType::kString) {
      out.push_back(Value::String(c.dict->ValueOf(static_cast<uint32_t>(code))));
    } else {
      out.push_back(Value::Int64(static_cast<int64_t>(code)));
    }
  }
  return out;
}

}  // namespace sdelta::rel
