#include "relational/operators.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "exec/parallel_for.h"
#include "relational/column.h"
#include "relational/dictionary.h"
#include "relational/flat_hash.h"
#include "relational/group_key.h"
#include "relational/packed_key.h"

namespace sdelta::rel {
namespace {

/// Accounting scope for one operator invocation. The clock is only read
/// when counters were requested; Done() must be called on every return
/// path that represents a completed invocation.
struct OpScope {
  exec::OperatorCounters* counters;
  std::chrono::steady_clock::time_point start;

  explicit OpScope(exec::OperatorCounters* c)
      : counters(c), start(c == nullptr ? std::chrono::steady_clock::time_point{}
                                        : std::chrono::steady_clock::now()) {}

  void Done(uint64_t rows_in, uint64_t rows_out, uint64_t morsels,
            uint64_t batches) {
    if (counters == nullptr) return;
    ++counters->calls;
    counters->rows_in += rows_in;
    counters->rows_out += rows_out;
    counters->morsels += morsels;
    counters->batches += batches;
    counters->wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }
};

/// ExtractKey reading straight from the columns (no whole-row
/// materialization). Same reuse contract as the Row overload: `out`'s
/// capacity is recycled across rows and must not reallocate after the
/// first call.
void ExtractKeyAt(const Table& t, const std::vector<size_t>& indices,
                  size_t row, GroupKey* out) {
  out->clear();
  [[maybe_unused]] const bool fits = out->capacity() >= indices.size();
  [[maybe_unused]] const Value* data_before = out->data();
  for (size_t i : indices) out->push_back(t.ValueAt(row, i));
  assert(!fits || out->data() == data_before);
}

GroupKey KeyAt(const Table& t, const std::vector<size_t>& indices, size_t row) {
  GroupKey key;
  key.reserve(indices.size());
  for (size_t i : indices) key.push_back(t.ValueAt(row, i));
  return key;
}

}  // namespace

std::string BareName(const std::string& name) {
  const size_t pos = name.rfind('.');
  return pos == std::string::npos ? name : name.substr(pos + 1);
}

Table Select(const Table& input, const Expression& predicate,
             exec::ThreadPool* pool, exec::OperatorStats* stats) {
  OpScope op(stats == nullptr ? nullptr : &stats->select);
  BoundExpression bound = predicate.Bind(input.schema());
  Table out(input.schema(), input.name());
  const exec::MorselPlan plan =
      exec::MorselPlan::For(input.NumRows(), exec::kDefaultMorselRows);
  // Each morsel scans its column-batch range into a selection vector;
  // the qualifying rows then gather column-wise in morsel order, which
  // equals serial row order because the plan is a pure function of the
  // input size.
  std::vector<std::vector<size_t>> selected(
      std::max<size_t>(plan.morsels.size(), 1));
  if (pool == nullptr || plan.morsels.size() <= 1) {
    std::vector<size_t>& sel = selected[0];
    for (size_t i = 0; i < input.NumRows(); ++i) {
      if (bound.EvalPredicateAt(input, i)) sel.push_back(i);
    }
  } else {
    exec::ParallelFor(pool, plan, [&](size_t begin, size_t end, size_t m) {
      std::vector<size_t>& sel = selected[m];
      for (size_t i = begin; i < end; ++i) {
        if (bound.EvalPredicateAt(input, i)) sel.push_back(i);
      }
    });
  }
  size_t total = 0;
  for (const auto& sel : selected) total += sel.size();
  out.Reserve(total);
  for (const auto& sel : selected) out.AppendGather(input, sel);
  op.Done(input.NumRows(), out.NumRows(), plan.morsels.size(),
          plan.morsels.size());
  return out;
}

Table Project(const Table& input, const std::vector<ProjectColumn>& columns,
              exec::ThreadPool* pool, exec::OperatorStats* stats) {
  OpScope op(stats == nullptr ? nullptr : &stats->project);
  Schema out_schema;
  std::vector<BoundExpression> bound;
  bound.reserve(columns.size());
  for (const ProjectColumn& c : columns) {
    out_schema.AddColumn(c.name, c.expr.ResultType(input.schema()));
    bound.push_back(c.expr.Bind(input.schema()));
  }

  const size_t n = input.NumRows();
  std::vector<ColumnVector> out_cols;
  out_cols.reserve(columns.size());
  for (size_t j = 0; j < columns.size(); ++j) {
    out_cols.emplace_back(out_schema.column(j).type);
  }

  // Bare column references copy the source column wholesale (dictionary
  // codes and null bits included); only computed expressions evaluate
  // per row.
  std::vector<size_t> computed;
  for (size_t j = 0; j < columns.size(); ++j) {
    if (std::optional<size_t> src = bound[j].SourceColumn();
        src.has_value() && input.schema().column(*src).type ==
                               out_schema.column(j).type) {
      out_cols[j].Reserve(n);
      out_cols[j].AppendRange(input.column_data(*src), 0, n);
    } else {
      computed.push_back(j);
    }
  }

  const exec::MorselPlan plan =
      exec::MorselPlan::For(n, exec::kDefaultMorselRows);
  if (!computed.empty()) {
    if (pool == nullptr || plan.morsels.size() <= 1) {
      for (size_t j : computed) out_cols[j].Reserve(n);
      for (size_t i = 0; i < n; ++i) {
        for (size_t j : computed) out_cols[j].Append(bound[j].EvalAt(input, i));
      }
    } else {
      // Per-morsel column chunks, concatenated in morsel order: the
      // appended value sequence (and therefore any boxed demotion) is
      // identical to the serial build.
      std::vector<std::vector<ColumnVector>> chunks(plan.morsels.size());
      exec::ParallelFor(pool, plan, [&](size_t begin, size_t end, size_t m) {
        std::vector<ColumnVector>& chunk = chunks[m];
        chunk.reserve(computed.size());
        for (size_t j : computed) {
          chunk.emplace_back(out_schema.column(j).type);
          chunk.back().Reserve(end - begin);
        }
        for (size_t i = begin; i < end; ++i) {
          for (size_t k = 0; k < computed.size(); ++k) {
            chunk[k].Append(bound[computed[k]].EvalAt(input, i));
          }
        }
      });
      for (size_t j : computed) out_cols[j].Reserve(n);
      for (std::vector<ColumnVector>& chunk : chunks) {
        for (size_t k = 0; k < computed.size(); ++k) {
          out_cols[computed[k]].AppendRange(chunk[k], 0, chunk[k].size());
        }
      }
    }
  }

  Table out = Table::FromColumns(std::move(out_schema), "",
                                 std::move(out_cols), n);
  op.Done(n, out.NumRows(), plan.morsels.size(), plan.morsels.size());
  return out;
}

Table HashJoin(const Table& left, const Table& right,
               const std::vector<std::pair<std::string, std::string>>& keys,
               const std::string& right_qualifier, bool drop_right_keys,
               exec::ThreadPool* pool, exec::OperatorStats* stats) {
  OpScope op(stats == nullptr ? nullptr : &stats->hash_join);
  if (keys.empty()) {
    throw std::invalid_argument("HashJoin requires at least one key pair");
  }
  std::vector<size_t> left_idx;
  std::vector<size_t> right_idx;
  for (const auto& [lk, rk] : keys) {
    left_idx.push_back(left.schema().Resolve(lk));
    right_idx.push_back(right.schema().Resolve(rk));
  }

  // Right columns carried into the output (all, or all minus key columns).
  std::vector<size_t> right_out_idx;
  for (size_t i = 0; i < right.schema().NumColumns(); ++i) {
    bool is_key = false;
    if (drop_right_keys) {
      for (size_t k : right_idx) is_key |= (k == i);
    }
    if (!is_key) right_out_idx.push_back(i);
  }

  Schema out_schema;
  for (const Column& c : left.schema().columns()) {
    out_schema.AddColumn(c.name, c.type);
  }
  const Schema right_schema = right_qualifier.empty()
                                  ? right.schema()
                                  : right.schema().Qualified(right_qualifier);
  for (size_t i : right_out_idx) {
    out_schema.AddColumn(right_schema.column(i).name,
                         right_schema.column(i).type);
  }

  // Build side: the right (dimension) input. Always serial — the probe
  // phase shares this table read-only across morsels. The codec reuses
  // the right columns' own dictionaries, so build keys pack by copying
  // stored codes; keys the codec cannot encode fall back to boxed
  // GroupKeys. An encodable key never Value-equals an escaping one, so
  // the two tables never need to cross-probe each other. Probe-side
  // strings resolve lookup-only (an unknown string cannot match any
  // build key), which keeps parallel probes free of dictionary writes.
  DictionaryArena dict_arena;
  const PackedKeyCodec codec =
      PackedKeyCodec::ForTableColumns(right, right_idx, &dict_arena);
  FlatHashMap<PackedKey, size_t, PackedKeyHash> packed_build;
  std::unordered_multimap<GroupKey, size_t, GroupKeyHash> boxed_build;
  if (codec.packable()) {
    packed_build.Reserve(right.NumRows());
  } else {
    boxed_build.reserve(right.NumRows());
  }
  uint64_t build_packed_rows = 0;
  uint64_t build_fallback_rows = 0;
  for (size_t i = 0; i < right.NumRows(); ++i) {
    // SQL equi-join: NULL keys never match.
    bool has_null = false;
    for (size_t k : right_idx) has_null |= right.column_data(k).IsNullAt(i);
    if (has_null) continue;
    PackedKey pk;
    const auto enc =
        codec.packable()
            ? codec.EncodeColumns(right, right_idx, i,
                                  PackedKeyCodec::StringMode::kIntern, &pk)
            : PackedKeyCodec::ColumnarEncode::kEscaped;
    if (enc == PackedKeyCodec::ColumnarEncode::kPacked) {
      ++build_packed_rows;
      packed_build.InsertMulti(pk, i);
    } else {
      ++build_fallback_rows;
      boxed_build.emplace(KeyAt(right, right_idx, i), i);
    }
  }

  // Probe: each morsel collects its (left, right) match pairs; output
  // rows then gather column-wise in morsel order.
  const auto probe_row = [&](size_t li, GroupKey* key,
                             std::vector<size_t>* lrows,
                             std::vector<size_t>* rrows, uint64_t* packed_rows,
                             uint64_t* fallback_rows) {
    for (size_t k : left_idx) {
      if (left.column_data(k).IsNullAt(li)) return;
    }
    PackedKey pk;
    const auto enc =
        codec.packable()
            ? codec.EncodeColumns(left, left_idx, li,
                                  PackedKeyCodec::StringMode::kLookupOnly, &pk)
            : PackedKeyCodec::ColumnarEncode::kEscaped;
    if (enc == PackedKeyCodec::ColumnarEncode::kPacked) {
      ++*packed_rows;
      packed_build.ForEachEqual(pk, [&](size_t r) {
        lrows->push_back(li);
        rrows->push_back(r);
        return false;
      });
    } else if (enc == PackedKeyCodec::ColumnarEncode::kUnknownString) {
      // The key packs (type-wise) but its string never appears on the
      // build side: no match. Counted as packed, exactly as if it had
      // been interned and probed.
      ++*packed_rows;
    } else {
      ++*fallback_rows;
      ExtractKeyAt(left, left_idx, li, key);
      auto [begin, end] = boxed_build.equal_range(*key);
      for (auto it = begin; it != end; ++it) {
        lrows->push_back(li);
        rrows->push_back(it->second);
      }
    }
  };

  const exec::MorselPlan plan =
      exec::MorselPlan::For(left.NumRows(), exec::kDefaultMorselRows);
  const size_t num_chunks = std::max<size_t>(plan.morsels.size(), 1);
  std::vector<std::vector<size_t>> lrows(num_chunks);
  std::vector<std::vector<size_t>> rrows(num_chunks);
  std::vector<uint64_t> packed_rows(num_chunks, 0);
  std::vector<uint64_t> fallback_rows(num_chunks, 0);
  if (pool == nullptr || plan.morsels.size() <= 1) {
    GroupKey key;
    lrows[0].reserve(left.NumRows());  // FK joins emit ~one row per left row
    rrows[0].reserve(left.NumRows());
    for (size_t i = 0; i < left.NumRows(); ++i) {
      probe_row(i, &key, &lrows[0], &rrows[0], &packed_rows[0],
                &fallback_rows[0]);
    }
  } else {
    exec::ParallelFor(pool, plan, [&](size_t begin, size_t end, size_t m) {
      GroupKey key;
      lrows[m].reserve(end - begin);
      rrows[m].reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        probe_row(i, &key, &lrows[m], &rrows[m], &packed_rows[m],
                  &fallback_rows[m]);
      }
    });
  }

  size_t total = 0;
  uint64_t total_packed = 0;
  uint64_t total_fallback = 0;
  for (size_t m = 0; m < num_chunks; ++m) {
    total += lrows[m].size();
    total_packed += packed_rows[m];
    total_fallback += fallback_rows[m];
  }
  const size_t num_left_cols = left.schema().NumColumns();
  std::vector<ColumnVector> out_cols;
  out_cols.reserve(out_schema.NumColumns());
  for (size_t j = 0; j < out_schema.NumColumns(); ++j) {
    out_cols.emplace_back(out_schema.column(j).type);
    out_cols.back().Reserve(total);
  }
  for (size_t m = 0; m < num_chunks; ++m) {
    for (size_t c = 0; c < num_left_cols; ++c) {
      out_cols[c].AppendGather(left.column_data(c), lrows[m]);
    }
    for (size_t j = 0; j < right_out_idx.size(); ++j) {
      out_cols[num_left_cols + j].AppendGather(
          right.column_data(right_out_idx[j]), rrows[m]);
    }
  }
  Table out = Table::FromColumns(std::move(out_schema), "",
                                 std::move(out_cols), total);
  if (stats != nullptr) {
    stats->join_build_rows += right.NumRows();
    stats->join_probe_rows += left.NumRows();
    stats->key_packed_rows += build_packed_rows + total_packed;
    stats->key_fallback_rows += build_fallback_rows + total_fallback;
    const ProbeStats& ps = packed_build.probe_stats();  // build inserts
    stats->key_probe_ops += ps.ops;
    stats->key_probe_steps += ps.steps;
  }
  op.Done(left.NumRows() + right.NumRows(), out.NumRows(),
          plan.morsels.size(), plan.morsels.size());
  return out;
}

Table UnionAll(const Table& a, const Table& b, exec::OperatorStats* stats) {
  OpScope op(stats == nullptr ? nullptr : &stats->union_all);
  if (a.schema().NumColumns() != b.schema().NumColumns()) {
    throw std::invalid_argument("UnionAll arity mismatch: {" +
                                a.schema().ToString() + "} vs {" +
                                b.schema().ToString() + "}");
  }
  Table out(a.schema());
  out.Reserve(a.NumRows() + b.NumRows());
  out.AppendColumnsFrom(a);
  out.AppendColumnsFrom(b);
  op.Done(out.NumRows(), out.NumRows(), 0, 2);
  return out;
}

Table UnionAll(Table&& a, Table&& b, exec::OperatorStats* stats) {
  OpScope op(stats == nullptr ? nullptr : &stats->union_all);
  if (a.schema().NumColumns() != b.schema().NumColumns()) {
    throw std::invalid_argument("UnionAll arity mismatch: {" +
                                a.schema().ToString() + "} vs {" +
                                b.schema().ToString() + "}");
  }
  Table out(a.schema());
  out.AppendColumnsFrom(std::move(a));  // steals a's columns outright
  out.Reserve(out.NumRows() + b.NumRows());
  out.AppendColumnsFrom(std::move(b));
  op.Done(out.NumRows(), out.NumRows(), 0, 2);
  return out;
}

std::vector<GroupByColumn> GroupCols(const std::vector<std::string>& names) {
  std::vector<GroupByColumn> out;
  out.reserve(names.size());
  for (const std::string& n : names) out.push_back(GroupByColumn{n, ""});
  return out;
}

namespace {

/// Insertion-ordered group table: groups live at dense slots in first-
/// appearance order; `packed` (fast path) and `boxed` (fallback) map a
/// key to its slot. Every key lives in exactly one of the two indexes —
/// escape from the codec is a pure function of the value, so the split
/// is deterministic and the indexes never cross-probe. Each slot stores
/// the *input row* where its group first appeared instead of a boxed
/// GroupKey: the output gathers key columns at those rows, which keeps
/// output rows byte-identical to the boxed path even when encoding
/// canonicalizes (Double(7.0) -> Int64 7). Both the serial path (one
/// accumulation over the whole input) and the parallel path (one per
/// morsel, merged in morsel order) emit from the slots in order, which
/// is what makes GroupBy's output order thread-count-invariant.
struct GroupAccumulation {
  FlatHashMap<PackedKey, size_t, PackedKeyHash> packed;
  std::unordered_map<GroupKey, size_t, GroupKeyHash> boxed;
  std::vector<size_t> first_rows;
  std::vector<std::vector<Accumulator>> accs;
  // Per-input-row tallies, bumped only during accumulation (never at
  // merge) so their totals are identical at every thread count.
  uint64_t packed_rows = 0;
  uint64_t fallback_rows = 0;
};

std::vector<Accumulator> NewAccumulators(
    const std::vector<AggregateSpec>& aggregates) {
  std::vector<Accumulator> accs;
  accs.reserve(aggregates.size());
  for (const AggregateSpec& a : aggregates) accs.emplace_back(a.kind);
  return accs;
}

/// Pre-resolved aggregate input: most propagate-path aggregates read a
/// bare column, which the accumulate loop then feeds through the typed
/// Add kernels straight from the column vectors (no Value boxing, no
/// expression walk). Anything else evaluates the bound expression.
struct AggInput {
  enum class Mode { kCountStar, kInt64Col, kDoubleCol, kValueCol, kExpr };
  Mode mode = Mode::kExpr;
  const int64_t* ints = nullptr;
  const double* doubles = nullptr;
  const uint64_t* nulls = nullptr;
  const ColumnVector* column = nullptr;  // kValueCol
  size_t col = 0;
  const BoundExpression* expr = nullptr;
};

std::vector<AggInput> ResolveAggInputs(
    const Table& input, const std::vector<AggregateSpec>& aggregates,
    const std::vector<BoundExpression>& args) {
  std::vector<AggInput> inputs(aggregates.size());
  for (size_t i = 0; i < aggregates.size(); ++i) {
    AggInput& in = inputs[i];
    if (aggregates[i].kind == AggregateKind::kCountStar) {
      in.mode = AggInput::Mode::kCountStar;
      continue;
    }
    in.expr = &args[i];
    if (std::optional<size_t> src = args[i].SourceColumn(); src.has_value()) {
      const ColumnVector& cv = input.column_data(*src);
      in.col = *src;
      switch (cv.storage()) {
        case ColumnVector::Storage::kInt64:
          in.mode = AggInput::Mode::kInt64Col;
          in.ints = cv.ints();
          in.nulls = cv.null_words();
          break;
        case ColumnVector::Storage::kDouble:
          in.mode = AggInput::Mode::kDoubleCol;
          in.doubles = cv.doubles();
          in.nulls = cv.null_words();
          break;
        default:
          in.mode = AggInput::Mode::kValueCol;
          in.column = &cv;
          break;
      }
    }
  }
  return inputs;
}

void AccumulateRange(const Table& input, size_t begin, size_t end,
                     const std::vector<size_t>& key_idx,
                     const std::vector<AggregateSpec>& aggregates,
                     const std::vector<AggInput>& agg_inputs,
                     const PackedKeyCodec& codec, GroupAccumulation* acc) {
  GroupKey key;  // scratch, reused across rows; copied only per new group
  for (size_t r = begin; r < end; ++r) {
    size_t slot;
    PackedKey pk;
    const auto enc =
        codec.packable()
            ? codec.EncodeColumns(input, key_idx, r,
                                  PackedKeyCodec::StringMode::kIntern, &pk)
            : PackedKeyCodec::ColumnarEncode::kEscaped;
    if (enc == PackedKeyCodec::ColumnarEncode::kPacked) {
      ++acc->packed_rows;
      auto [value, inserted] =
          acc->packed.FindOrInsert(pk, acc->first_rows.size());
      if (inserted) {
        acc->first_rows.push_back(r);
        acc->accs.push_back(NewAccumulators(aggregates));
      }
      slot = *value;
    } else {
      ++acc->fallback_rows;
      ExtractKeyAt(input, key_idx, r, &key);
      auto it = acc->boxed.find(key);
      if (it == acc->boxed.end()) {
        it = acc->boxed.emplace(key, acc->first_rows.size()).first;
        acc->first_rows.push_back(r);
        acc->accs.push_back(NewAccumulators(aggregates));
      }
      slot = it->second;
    }
    std::vector<Accumulator>& accs = acc->accs[slot];
    for (size_t i = 0; i < agg_inputs.size(); ++i) {
      const AggInput& in = agg_inputs[i];
      switch (in.mode) {
        case AggInput::Mode::kCountStar:
          accs[i].AddNull();  // COUNT(*) counts NULL rows too
          break;
        case AggInput::Mode::kInt64Col:
          if (ColumnVector::WordBit(in.nulls, r)) {
            accs[i].AddNull();
          } else {
            accs[i].AddInt64(in.ints[r]);
          }
          break;
        case AggInput::Mode::kDoubleCol:
          if (ColumnVector::WordBit(in.nulls, r)) {
            accs[i].AddNull();
          } else {
            accs[i].AddDouble(in.doubles[r]);
          }
          break;
        case AggInput::Mode::kValueCol:
          accs[i].Add(in.column->At(r));
          break;
        case AggInput::Mode::kExpr:
          accs[i].Add(in.expr->EvalAt(input, r));
          break;
      }
    }
  }
}

}  // namespace

Table GroupBy(const Table& input, const std::vector<GroupByColumn>& group_by,
              const std::vector<AggregateSpec>& aggregates,
              exec::ThreadPool* pool, exec::OperatorStats* stats,
              size_t size_hint) {
  OpScope op(stats == nullptr ? nullptr : &stats->group_by);
  std::vector<size_t> key_idx;
  Schema out_schema;
  for (const GroupByColumn& g : group_by) {
    const size_t idx = input.schema().Resolve(g.input);
    key_idx.push_back(idx);
    const std::string out_name =
        g.output.empty() ? BareName(g.input) : g.output;
    out_schema.AddColumn(out_name, input.schema().column(idx).type);
  }

  std::vector<BoundExpression> args;  // parallel to aggregates; COUNT(*)
                                      // entries hold a default (unused)
  for (const AggregateSpec& a : aggregates) {
    if (a.kind == AggregateKind::kCountStar) {
      args.emplace_back();
      out_schema.AddColumn(a.output_name, ValueType::kInt64);
    } else {
      if (!a.argument.has_value()) {
        throw std::invalid_argument(AggregateKindName(a.kind) +
                                    std::string(" requires an argument"));
      }
      args.push_back(a.argument->Bind(input.schema()));
      out_schema.AddColumn(
          a.output_name,
          AggregateResultType(a.kind, a.argument->ResultType(input.schema())));
    }
  }

  // Key codec wired to the input's own column dictionaries: dictionary-
  // coded key columns pack by copying their stored codes. Key columns
  // without a dictionary intern into an operator-local arena — codes
  // only need to be consistent within this one call, and sharing either
  // dictionary across morsels is safe (Dictionary is internally
  // synchronized).
  DictionaryArena dict_arena;
  const PackedKeyCodec codec =
      PackedKeyCodec::ForTableColumns(input, key_idx, &dict_arena);
  const std::vector<AggInput> agg_inputs =
      ResolveAggInputs(input, aggregates, args);

  const exec::MorselPlan plan =
      exec::MorselPlan::For(input.NumRows(), exec::kDefaultMorselRows);
  GroupAccumulation groups;
  // Pre-size from the caller's cardinality estimate when given (clamped
  // to the input size — an estimate can exceed it), else the historical
  // quarter-of-input heuristic.
  const size_t expected = size_hint > 0
                              ? std::min(size_hint, input.NumRows() + 1)
                              : input.NumRows() / 4 + 8;
  if (codec.packable()) {
    groups.packed.Reserve(expected);
  } else {
    groups.boxed.reserve(expected);
  }
  groups.first_rows.reserve(expected);
  groups.accs.reserve(expected);
  ProbeStats merge_probes;  // probes done by partial tables + merge
  if (pool == nullptr || plan.morsels.size() <= 1) {
    AccumulateRange(input, 0, input.NumRows(), key_idx, aggregates, agg_inputs,
                    codec, &groups);
  } else {
    // Thread-local partial aggregation, the structure the paper's
    // summary-delta computation relies on: each morsel builds its own
    // insertion-ordered partial table, then partials merge in morsel
    // order, which reproduces the serial first-appearance order.
    std::vector<GroupAccumulation> partials(plan.morsels.size());
    exec::ParallelFor(pool, plan, [&](size_t begin, size_t end, size_t m) {
      AccumulateRange(input, begin, end, key_idx, aggregates, agg_inputs,
                      codec, &partials[m]);
    });
    GroupKey key;  // scratch for boxed merge lookups
    for (GroupAccumulation& partial : partials) {
      for (size_t s = 0; s < partial.first_rows.size(); ++s) {
        const size_t row = partial.first_rows[s];
        std::vector<Accumulator>& accs = partial.accs[s];
        // Re-encode the partial's key against the shared codec. A key
        // that packed in its morsel packs here too (same codec), so the
        // packed/boxed split is consistent between partials and merge.
        PackedKey pk;
        const auto enc =
            codec.packable()
                ? codec.EncodeColumns(input, key_idx, row,
                                      PackedKeyCodec::StringMode::kIntern, &pk)
                : PackedKeyCodec::ColumnarEncode::kEscaped;
        if (enc == PackedKeyCodec::ColumnarEncode::kPacked) {
          auto [value, inserted] =
              groups.packed.FindOrInsert(pk, groups.first_rows.size());
          if (inserted) {
            groups.first_rows.push_back(row);
            groups.accs.push_back(std::move(accs));
          } else {
            std::vector<Accumulator>& dst = groups.accs[*value];
            for (size_t i = 0; i < dst.size(); ++i) dst[i].Merge(accs[i]);
          }
        } else {
          ExtractKeyAt(input, key_idx, row, &key);
          auto it = groups.boxed.find(key);
          if (it == groups.boxed.end()) {
            groups.boxed.emplace(key, groups.first_rows.size());
            groups.first_rows.push_back(row);
            groups.accs.push_back(std::move(accs));
          } else {
            std::vector<Accumulator>& dst = groups.accs[it->second];
            for (size_t i = 0; i < dst.size(); ++i) dst[i].Merge(accs[i]);
          }
        }
      }
      groups.packed_rows += partial.packed_rows;
      groups.fallback_rows += partial.fallback_rows;
      merge_probes += partial.packed.probe_stats();
    }
  }

  // Scalar aggregation (no group-by) over empty input yields one row.
  const bool synthetic_group = group_by.empty() && groups.first_rows.empty();
  if (synthetic_group) {
    groups.first_rows.push_back(0);  // never dereferenced: no key columns
    groups.accs.push_back(NewAccumulators(aggregates));
  }

  const size_t num_groups = groups.first_rows.size();
  std::vector<ColumnVector> out_cols;
  out_cols.reserve(out_schema.NumColumns());
  // Key columns gather from the input at each group's first-appearance
  // row — a columnar gather, no per-group boxing.
  for (size_t j = 0; j < group_by.size(); ++j) {
    out_cols.emplace_back(out_schema.column(j).type);
    out_cols.back().Reserve(num_groups);
    out_cols.back().AppendGather(input.column_data(key_idx[j]),
                                 groups.first_rows);
  }
  for (size_t i = 0; i < aggregates.size(); ++i) {
    out_cols.emplace_back(out_schema.column(group_by.size() + i).type);
    out_cols.back().Reserve(num_groups);
    for (size_t s = 0; s < num_groups; ++s) {
      out_cols.back().Append(groups.accs[s][i].Result());
    }
  }
  Table out = Table::FromColumns(std::move(out_schema), "",
                                 std::move(out_cols), num_groups);
  if (stats != nullptr) {
    stats->key_packed_rows += groups.packed_rows;
    stats->key_fallback_rows += groups.fallback_rows;
    ProbeStats probes = groups.packed.probe_stats();
    probes += merge_probes;
    stats->key_probe_ops += probes.ops;
    stats->key_probe_steps += probes.steps;
  }
  op.Done(input.NumRows(), out.NumRows(), plan.morsels.size(),
          plan.morsels.size());
  return out;
}

}  // namespace sdelta::rel
