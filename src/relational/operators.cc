#include "relational/operators.h"

#include <chrono>
#include <stdexcept>
#include <unordered_map>

#include "exec/parallel_for.h"
#include "relational/group_key.h"

namespace sdelta::rel {
namespace {

/// Splices per-morsel output chunks into `out` in morsel order. Chunk
/// concatenation in morsel order equals serial row order because the
/// morsel plan is a pure function of the input size — this is the whole
/// determinism argument for the chunked operators.
void SpliceChunks(std::vector<std::vector<Row>>&& chunks, Table* out) {
  size_t total = 0;
  for (const auto& c : chunks) total += c.size();
  out->Reserve(out->NumRows() + total);
  for (auto& chunk : chunks) {
    for (Row& r : chunk) out->Insert(std::move(r));
  }
}

/// Accounting scope for one operator invocation. The clock is only read
/// when counters were requested; Done() must be called on every return
/// path that represents a completed invocation.
struct OpScope {
  exec::OperatorCounters* counters;
  std::chrono::steady_clock::time_point start;

  explicit OpScope(exec::OperatorCounters* c)
      : counters(c), start(c == nullptr ? std::chrono::steady_clock::time_point{}
                                        : std::chrono::steady_clock::now()) {}

  void Done(uint64_t rows_in, uint64_t rows_out, uint64_t morsels) {
    if (counters == nullptr) return;
    ++counters->calls;
    counters->rows_in += rows_in;
    counters->rows_out += rows_out;
    counters->morsels += morsels;
    counters->wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }
};

}  // namespace

std::string BareName(const std::string& name) {
  const size_t pos = name.rfind('.');
  return pos == std::string::npos ? name : name.substr(pos + 1);
}

Table Select(const Table& input, const Expression& predicate,
             exec::ThreadPool* pool, exec::OperatorStats* stats) {
  OpScope op(stats == nullptr ? nullptr : &stats->select);
  BoundExpression bound = predicate.Bind(input.schema());
  Table out(input.schema(), input.name());
  const exec::MorselPlan plan =
      exec::MorselPlan::For(input.NumRows(), exec::kDefaultMorselRows);
  if (pool == nullptr || plan.morsels.size() <= 1) {
    for (const Row& r : input.rows()) {
      if (bound.EvalPredicate(r)) out.Insert(r);
    }
    op.Done(input.NumRows(), out.NumRows(), plan.morsels.size());
    return out;
  }
  std::vector<std::vector<Row>> chunks(plan.morsels.size());
  exec::ParallelFor(pool, plan, [&](size_t begin, size_t end, size_t m) {
    std::vector<Row>& chunk = chunks[m];
    for (size_t i = begin; i < end; ++i) {
      const Row& r = input.row(i);
      if (bound.EvalPredicate(r)) chunk.push_back(r);
    }
  });
  SpliceChunks(std::move(chunks), &out);
  op.Done(input.NumRows(), out.NumRows(), plan.morsels.size());
  return out;
}

Table Project(const Table& input, const std::vector<ProjectColumn>& columns,
              exec::ThreadPool* pool, exec::OperatorStats* stats) {
  OpScope op(stats == nullptr ? nullptr : &stats->project);
  Schema out_schema;
  std::vector<BoundExpression> bound;
  bound.reserve(columns.size());
  for (const ProjectColumn& c : columns) {
    out_schema.AddColumn(c.name, c.expr.ResultType(input.schema()));
    bound.push_back(c.expr.Bind(input.schema()));
  }
  Table out(std::move(out_schema));
  const auto project_row = [&bound](const Row& r) {
    Row row;
    row.reserve(bound.size());
    for (const BoundExpression& b : bound) row.push_back(b.Eval(r));
    return row;
  };
  const exec::MorselPlan plan =
      exec::MorselPlan::For(input.NumRows(), exec::kDefaultMorselRows);
  if (pool == nullptr || plan.morsels.size() <= 1) {
    out.Reserve(input.NumRows());
    for (const Row& r : input.rows()) out.Insert(project_row(r));
    op.Done(input.NumRows(), out.NumRows(), plan.morsels.size());
    return out;
  }
  std::vector<std::vector<Row>> chunks(plan.morsels.size());
  exec::ParallelFor(pool, plan, [&](size_t begin, size_t end, size_t m) {
    std::vector<Row>& chunk = chunks[m];
    chunk.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) chunk.push_back(project_row(input.row(i)));
  });
  SpliceChunks(std::move(chunks), &out);
  op.Done(input.NumRows(), out.NumRows(), plan.morsels.size());
  return out;
}

Table HashJoin(const Table& left, const Table& right,
               const std::vector<std::pair<std::string, std::string>>& keys,
               const std::string& right_qualifier, bool drop_right_keys,
               exec::ThreadPool* pool, exec::OperatorStats* stats) {
  OpScope op(stats == nullptr ? nullptr : &stats->hash_join);
  if (keys.empty()) {
    throw std::invalid_argument("HashJoin requires at least one key pair");
  }
  std::vector<size_t> left_idx;
  std::vector<size_t> right_idx;
  for (const auto& [lk, rk] : keys) {
    left_idx.push_back(left.schema().Resolve(lk));
    right_idx.push_back(right.schema().Resolve(rk));
  }

  // Right columns carried into the output (all, or all minus key columns).
  std::vector<size_t> right_out_idx;
  for (size_t i = 0; i < right.schema().NumColumns(); ++i) {
    bool is_key = false;
    if (drop_right_keys) {
      for (size_t k : right_idx) is_key |= (k == i);
    }
    if (!is_key) right_out_idx.push_back(i);
  }

  Schema out_schema;
  for (const Column& c : left.schema().columns()) {
    out_schema.AddColumn(c.name, c.type);
  }
  const Schema right_schema = right_qualifier.empty()
                                  ? right.schema()
                                  : right.schema().Qualified(right_qualifier);
  for (size_t i : right_out_idx) {
    out_schema.AddColumn(right_schema.column(i).name,
                         right_schema.column(i).type);
  }

  // Build side: the right (dimension) input. Always serial — the probe
  // phase shares this table read-only across morsels.
  std::unordered_multimap<GroupKey, size_t, GroupKeyHash> build;
  build.reserve(right.NumRows());
  for (size_t i = 0; i < right.NumRows(); ++i) {
    GroupKey key = ExtractKey(right.row(i), right_idx);
    // SQL equi-join: NULL keys never match.
    bool has_null = false;
    for (const Value& v : key) has_null |= v.is_null();
    if (!has_null) build.emplace(std::move(key), i);
  }

  Table out(std::move(out_schema));
  // Emits the matches for left row `lr` onto `chunk`. The probe key is a
  // caller-owned scratch buffer: equal_range only reads it, so one
  // allocation serves the whole morsel.
  const auto probe_row = [&](const Row& lr, GroupKey* key,
                             std::vector<Row>* chunk) {
    ExtractKey(lr, left_idx, key);
    for (const Value& v : *key) {
      if (v.is_null()) return;
    }
    auto [begin, end] = build.equal_range(*key);
    for (auto it = begin; it != end; ++it) {
      Row row = lr;
      const Row& rr = right.row(it->second);
      row.reserve(row.size() + right_out_idx.size());
      for (size_t i : right_out_idx) row.push_back(rr[i]);
      chunk->push_back(std::move(row));
    }
  };

  const exec::MorselPlan plan =
      exec::MorselPlan::For(left.NumRows(), exec::kDefaultMorselRows);
  const auto join_done = [&](const Table& result) {
    if (stats != nullptr) {
      stats->join_build_rows += right.NumRows();
      stats->join_probe_rows += left.NumRows();
    }
    op.Done(left.NumRows() + right.NumRows(), result.NumRows(),
            plan.morsels.size());
  };
  if (pool == nullptr || plan.morsels.size() <= 1) {
    std::vector<Row> rows;
    rows.reserve(left.NumRows());  // FK joins emit ~one row per left row
    GroupKey key;
    for (const Row& lr : left.rows()) probe_row(lr, &key, &rows);
    out.Reserve(rows.size());
    for (Row& r : rows) out.Insert(std::move(r));
    join_done(out);
    return out;
  }
  std::vector<std::vector<Row>> chunks(plan.morsels.size());
  exec::ParallelFor(pool, plan, [&](size_t begin, size_t end, size_t m) {
    std::vector<Row>& chunk = chunks[m];
    chunk.reserve(end - begin);
    GroupKey key;
    for (size_t i = begin; i < end; ++i) probe_row(left.row(i), &key, &chunk);
  });
  SpliceChunks(std::move(chunks), &out);
  join_done(out);
  return out;
}

Table UnionAll(const Table& a, const Table& b, exec::OperatorStats* stats) {
  OpScope op(stats == nullptr ? nullptr : &stats->union_all);
  if (a.schema().NumColumns() != b.schema().NumColumns()) {
    throw std::invalid_argument("UnionAll arity mismatch: {" +
                                a.schema().ToString() + "} vs {" +
                                b.schema().ToString() + "}");
  }
  Table out(a.schema());
  out.Reserve(a.NumRows() + b.NumRows());
  for (const Row& r : a.rows()) out.Insert(r);
  for (const Row& r : b.rows()) out.Insert(r);
  op.Done(out.NumRows(), out.NumRows(), 0);
  return out;
}

Table UnionAll(Table&& a, Table&& b, exec::OperatorStats* stats) {
  OpScope op(stats == nullptr ? nullptr : &stats->union_all);
  if (a.schema().NumColumns() != b.schema().NumColumns()) {
    throw std::invalid_argument("UnionAll arity mismatch: {" +
                                a.schema().ToString() + "} vs {" +
                                b.schema().ToString() + "}");
  }
  Table out(a.schema());
  std::vector<Row> a_rows = a.TakeRows();
  std::vector<Row> b_rows = b.TakeRows();
  out.Reserve(a_rows.size() + b_rows.size());
  for (Row& r : a_rows) out.Insert(std::move(r));
  for (Row& r : b_rows) out.Insert(std::move(r));
  op.Done(out.NumRows(), out.NumRows(), 0);
  return out;
}

std::vector<GroupByColumn> GroupCols(const std::vector<std::string>& names) {
  std::vector<GroupByColumn> out;
  out.reserve(names.size());
  for (const std::string& n : names) out.push_back(GroupByColumn{n, ""});
  return out;
}

namespace {

/// Insertion-ordered group table: `entries` keeps groups in first-
/// appearance order, `index` maps a key to its entry slot. Both the
/// serial path (one accumulation over the whole input) and the parallel
/// path (one per morsel, merged in morsel order) emit from `entries`,
/// which is what makes GroupBy's output order thread-count-invariant.
struct GroupAccumulation {
  std::unordered_map<GroupKey, size_t, GroupKeyHash> index;
  std::vector<std::pair<GroupKey, std::vector<Accumulator>>> entries;
};

void AccumulateRange(const Table& input, size_t begin, size_t end,
                     const std::vector<size_t>& key_idx,
                     const std::vector<AggregateSpec>& aggregates,
                     const std::vector<BoundExpression>& args,
                     GroupAccumulation* acc) {
  GroupKey key;  // scratch, reused across rows; copied only per new group
  for (size_t r = begin; r < end; ++r) {
    const Row& row = input.row(r);
    ExtractKey(row, key_idx, &key);
    auto it = acc->index.find(key);
    if (it == acc->index.end()) {
      std::vector<Accumulator> accs;
      accs.reserve(aggregates.size());
      for (const AggregateSpec& a : aggregates) accs.emplace_back(a.kind);
      it = acc->index.emplace(key, acc->entries.size()).first;
      acc->entries.emplace_back(key, std::move(accs));
    }
    std::vector<Accumulator>& accs = acc->entries[it->second].second;
    for (size_t i = 0; i < aggregates.size(); ++i) {
      if (aggregates[i].kind == AggregateKind::kCountStar) {
        accs[i].Add(Value::Null());
      } else {
        accs[i].Add(args[i].Eval(row));
      }
    }
  }
}

}  // namespace

Table GroupBy(const Table& input, const std::vector<GroupByColumn>& group_by,
              const std::vector<AggregateSpec>& aggregates,
              exec::ThreadPool* pool, exec::OperatorStats* stats) {
  OpScope op(stats == nullptr ? nullptr : &stats->group_by);
  std::vector<size_t> key_idx;
  Schema out_schema;
  for (const GroupByColumn& g : group_by) {
    const size_t idx = input.schema().Resolve(g.input);
    key_idx.push_back(idx);
    const std::string out_name =
        g.output.empty() ? BareName(g.input) : g.output;
    out_schema.AddColumn(out_name, input.schema().column(idx).type);
  }

  std::vector<BoundExpression> args;  // parallel to aggregates; COUNT(*)
                                      // entries hold a default (unused)
  for (const AggregateSpec& a : aggregates) {
    if (a.kind == AggregateKind::kCountStar) {
      args.emplace_back();
      out_schema.AddColumn(a.output_name, ValueType::kInt64);
    } else {
      if (!a.argument.has_value()) {
        throw std::invalid_argument(AggregateKindName(a.kind) +
                                    std::string(" requires an argument"));
      }
      args.push_back(a.argument->Bind(input.schema()));
      out_schema.AddColumn(
          a.output_name,
          AggregateResultType(a.kind, a.argument->ResultType(input.schema())));
    }
  }

  const exec::MorselPlan plan =
      exec::MorselPlan::For(input.NumRows(), exec::kDefaultMorselRows);
  GroupAccumulation groups;
  groups.index.reserve(input.NumRows() / 4 + 8);
  if (pool == nullptr || plan.morsels.size() <= 1) {
    AccumulateRange(input, 0, input.NumRows(), key_idx, aggregates, args,
                    &groups);
  } else {
    // Thread-local partial aggregation, the structure the paper's
    // summary-delta computation relies on: each morsel builds its own
    // insertion-ordered partial table, then partials merge in morsel
    // order, which reproduces the serial first-appearance order.
    std::vector<GroupAccumulation> partials(plan.morsels.size());
    exec::ParallelFor(pool, plan, [&](size_t begin, size_t end, size_t m) {
      AccumulateRange(input, begin, end, key_idx, aggregates, args,
                      &partials[m]);
    });
    for (GroupAccumulation& partial : partials) {
      for (auto& [key, accs] : partial.entries) {
        auto it = groups.index.find(key);
        if (it == groups.index.end()) {
          groups.index.emplace(key, groups.entries.size());
          groups.entries.emplace_back(std::move(key), std::move(accs));
        } else {
          std::vector<Accumulator>& dst = groups.entries[it->second].second;
          for (size_t i = 0; i < dst.size(); ++i) dst[i].Merge(accs[i]);
        }
      }
    }
  }

  // Scalar aggregation (no group-by) over empty input yields one row.
  if (group_by.empty() && groups.entries.empty()) {
    std::vector<Accumulator> accs;
    for (const AggregateSpec& a : aggregates) accs.emplace_back(a.kind);
    groups.entries.emplace_back(GroupKey{}, std::move(accs));
  }

  Table out(std::move(out_schema));
  out.Reserve(groups.entries.size());
  for (auto& [key, accs] : groups.entries) {
    Row row = std::move(key);
    row.reserve(row.size() + accs.size());
    for (const Accumulator& acc : accs) row.push_back(acc.Result());
    out.Insert(std::move(row));
  }
  op.Done(input.NumRows(), out.NumRows(), plan.morsels.size());
  return out;
}

}  // namespace sdelta::rel
