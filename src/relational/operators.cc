#include "relational/operators.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <stdexcept>
#include <unordered_map>

#include "exec/parallel_for.h"
#include "relational/dictionary.h"
#include "relational/flat_hash.h"
#include "relational/group_key.h"
#include "relational/packed_key.h"

namespace sdelta::rel {
namespace {

/// Splices per-morsel output chunks into `out` in morsel order. Chunk
/// concatenation in morsel order equals serial row order because the
/// morsel plan is a pure function of the input size — this is the whole
/// determinism argument for the chunked operators.
void SpliceChunks(std::vector<std::vector<Row>>&& chunks, Table* out) {
  size_t total = 0;
  for (const auto& c : chunks) total += c.size();
  out->Reserve(out->NumRows() + total);
  for (auto& chunk : chunks) {
    for (Row& r : chunk) out->Insert(std::move(r));
  }
}

/// Accounting scope for one operator invocation. The clock is only read
/// when counters were requested; Done() must be called on every return
/// path that represents a completed invocation.
struct OpScope {
  exec::OperatorCounters* counters;
  std::chrono::steady_clock::time_point start;

  explicit OpScope(exec::OperatorCounters* c)
      : counters(c), start(c == nullptr ? std::chrono::steady_clock::time_point{}
                                        : std::chrono::steady_clock::now()) {}

  void Done(uint64_t rows_in, uint64_t rows_out, uint64_t morsels) {
    if (counters == nullptr) return;
    ++counters->calls;
    counters->rows_in += rows_in;
    counters->rows_out += rows_out;
    counters->morsels += morsels;
    counters->wall_seconds +=
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
  }
};

}  // namespace

std::string BareName(const std::string& name) {
  const size_t pos = name.rfind('.');
  return pos == std::string::npos ? name : name.substr(pos + 1);
}

Table Select(const Table& input, const Expression& predicate,
             exec::ThreadPool* pool, exec::OperatorStats* stats) {
  OpScope op(stats == nullptr ? nullptr : &stats->select);
  BoundExpression bound = predicate.Bind(input.schema());
  Table out(input.schema(), input.name());
  const exec::MorselPlan plan =
      exec::MorselPlan::For(input.NumRows(), exec::kDefaultMorselRows);
  if (pool == nullptr || plan.morsels.size() <= 1) {
    for (const Row& r : input.rows()) {
      if (bound.EvalPredicate(r)) out.Insert(r);
    }
    op.Done(input.NumRows(), out.NumRows(), plan.morsels.size());
    return out;
  }
  std::vector<std::vector<Row>> chunks(plan.morsels.size());
  exec::ParallelFor(pool, plan, [&](size_t begin, size_t end, size_t m) {
    std::vector<Row>& chunk = chunks[m];
    for (size_t i = begin; i < end; ++i) {
      const Row& r = input.row(i);
      if (bound.EvalPredicate(r)) chunk.push_back(r);
    }
  });
  SpliceChunks(std::move(chunks), &out);
  op.Done(input.NumRows(), out.NumRows(), plan.morsels.size());
  return out;
}

Table Project(const Table& input, const std::vector<ProjectColumn>& columns,
              exec::ThreadPool* pool, exec::OperatorStats* stats) {
  OpScope op(stats == nullptr ? nullptr : &stats->project);
  Schema out_schema;
  std::vector<BoundExpression> bound;
  bound.reserve(columns.size());
  for (const ProjectColumn& c : columns) {
    out_schema.AddColumn(c.name, c.expr.ResultType(input.schema()));
    bound.push_back(c.expr.Bind(input.schema()));
  }
  Table out(std::move(out_schema));
  const auto project_row = [&bound](const Row& r) {
    Row row;
    row.reserve(bound.size());
    for (const BoundExpression& b : bound) row.push_back(b.Eval(r));
    return row;
  };
  const exec::MorselPlan plan =
      exec::MorselPlan::For(input.NumRows(), exec::kDefaultMorselRows);
  if (pool == nullptr || plan.morsels.size() <= 1) {
    out.Reserve(input.NumRows());
    for (const Row& r : input.rows()) out.Insert(project_row(r));
    op.Done(input.NumRows(), out.NumRows(), plan.morsels.size());
    return out;
  }
  std::vector<std::vector<Row>> chunks(plan.morsels.size());
  exec::ParallelFor(pool, plan, [&](size_t begin, size_t end, size_t m) {
    std::vector<Row>& chunk = chunks[m];
    chunk.reserve(end - begin);
    for (size_t i = begin; i < end; ++i) chunk.push_back(project_row(input.row(i)));
  });
  SpliceChunks(std::move(chunks), &out);
  op.Done(input.NumRows(), out.NumRows(), plan.morsels.size());
  return out;
}

Table HashJoin(const Table& left, const Table& right,
               const std::vector<std::pair<std::string, std::string>>& keys,
               const std::string& right_qualifier, bool drop_right_keys,
               exec::ThreadPool* pool, exec::OperatorStats* stats) {
  OpScope op(stats == nullptr ? nullptr : &stats->hash_join);
  if (keys.empty()) {
    throw std::invalid_argument("HashJoin requires at least one key pair");
  }
  std::vector<size_t> left_idx;
  std::vector<size_t> right_idx;
  for (const auto& [lk, rk] : keys) {
    left_idx.push_back(left.schema().Resolve(lk));
    right_idx.push_back(right.schema().Resolve(rk));
  }

  // Right columns carried into the output (all, or all minus key columns).
  std::vector<size_t> right_out_idx;
  for (size_t i = 0; i < right.schema().NumColumns(); ++i) {
    bool is_key = false;
    if (drop_right_keys) {
      for (size_t k : right_idx) is_key |= (k == i);
    }
    if (!is_key) right_out_idx.push_back(i);
  }

  Schema out_schema;
  for (const Column& c : left.schema().columns()) {
    out_schema.AddColumn(c.name, c.type);
  }
  const Schema right_schema = right_qualifier.empty()
                                  ? right.schema()
                                  : right.schema().Qualified(right_qualifier);
  for (size_t i : right_out_idx) {
    out_schema.AddColumn(right_schema.column(i).name,
                         right_schema.column(i).type);
  }

  // Build side: the right (dimension) input. Always serial — the probe
  // phase shares this table read-only across morsels. Keys pack through
  // a codec over the right key columns (probe values encode through the
  // same codec, so Value-equal keys meet in the same table); keys the
  // codec cannot encode fall back to boxed GroupKeys. An encodable key
  // never Value-equals an escaping one, so the two tables never need to
  // cross-probe each other.
  DictionaryArena dict_arena;
  const PackedKeyCodec codec = PackedKeyCodec::ForColumns(
      right.schema(), right_idx,
      [&dict_arena](const Column&) { return &dict_arena.Add(); });
  FlatHashMap<PackedKey, size_t, PackedKeyHash> packed_build;
  std::unordered_multimap<GroupKey, size_t, GroupKeyHash> boxed_build;
  if (codec.packable()) {
    packed_build.Reserve(right.NumRows());
  } else {
    boxed_build.reserve(right.NumRows());
  }
  uint64_t build_packed_rows = 0;
  uint64_t build_fallback_rows = 0;
  for (size_t i = 0; i < right.NumRows(); ++i) {
    const Row& rr = right.row(i);
    // SQL equi-join: NULL keys never match.
    bool has_null = false;
    for (size_t k : right_idx) has_null |= rr[k].is_null();
    if (has_null) continue;
    std::optional<PackedKey> pk;
    if (codec.packable()) pk = codec.EncodeRow(rr, right_idx);
    if (pk.has_value()) {
      ++build_packed_rows;
      packed_build.InsertMulti(*pk, i);
    } else {
      ++build_fallback_rows;
      boxed_build.emplace(ExtractKey(rr, right_idx), i);
    }
  }

  Table out(std::move(out_schema));
  // Emits the matches for left row `lr` onto `chunk`, tallying whether
  // the probe key packed. The boxed probe key is a caller-owned scratch
  // buffer: equal_range only reads it, so one allocation serves the
  // whole morsel. The packed path probes via ForEachEqual, which does no
  // accounting — morsels probe the shared build table concurrently.
  const auto probe_row = [&](const Row& lr, GroupKey* key,
                             std::vector<Row>* chunk, uint64_t* packed_rows,
                             uint64_t* fallback_rows) {
    for (size_t k : left_idx) {
      if (lr[k].is_null()) return;
    }
    const auto emit = [&](size_t right_row) {
      Row row = lr;
      const Row& rr = right.row(right_row);
      row.reserve(row.size() + right_out_idx.size());
      for (size_t i : right_out_idx) row.push_back(rr[i]);
      chunk->push_back(std::move(row));
    };
    std::optional<PackedKey> pk;
    if (codec.packable()) pk = codec.EncodeRow(lr, left_idx);
    if (pk.has_value()) {
      ++*packed_rows;
      packed_build.ForEachEqual(*pk, [&](size_t r) {
        emit(r);
        return false;
      });
    } else {
      ++*fallback_rows;
      ExtractKey(lr, left_idx, key);
      auto [begin, end] = boxed_build.equal_range(*key);
      for (auto it = begin; it != end; ++it) emit(it->second);
    }
  };

  const exec::MorselPlan plan =
      exec::MorselPlan::For(left.NumRows(), exec::kDefaultMorselRows);
  const auto join_done = [&](const Table& result, uint64_t probe_packed,
                             uint64_t probe_fallback) {
    if (stats != nullptr) {
      stats->join_build_rows += right.NumRows();
      stats->join_probe_rows += left.NumRows();
      stats->key_packed_rows += build_packed_rows + probe_packed;
      stats->key_fallback_rows += build_fallback_rows + probe_fallback;
      const ProbeStats& ps = packed_build.probe_stats();  // build inserts
      stats->key_probe_ops += ps.ops;
      stats->key_probe_steps += ps.steps;
    }
    op.Done(left.NumRows() + right.NumRows(), result.NumRows(),
            plan.morsels.size());
  };
  if (pool == nullptr || plan.morsels.size() <= 1) {
    std::vector<Row> rows;
    rows.reserve(left.NumRows());  // FK joins emit ~one row per left row
    GroupKey key;
    uint64_t packed_rows = 0;
    uint64_t fallback_rows = 0;
    for (const Row& lr : left.rows()) {
      probe_row(lr, &key, &rows, &packed_rows, &fallback_rows);
    }
    out.Reserve(rows.size());
    for (Row& r : rows) out.Insert(std::move(r));
    join_done(out, packed_rows, fallback_rows);
    return out;
  }
  std::vector<std::vector<Row>> chunks(plan.morsels.size());
  std::vector<uint64_t> packed_rows(plan.morsels.size(), 0);
  std::vector<uint64_t> fallback_rows(plan.morsels.size(), 0);
  exec::ParallelFor(pool, plan, [&](size_t begin, size_t end, size_t m) {
    std::vector<Row>& chunk = chunks[m];
    chunk.reserve(end - begin);
    GroupKey key;
    for (size_t i = begin; i < end; ++i) {
      probe_row(left.row(i), &key, &chunk, &packed_rows[m], &fallback_rows[m]);
    }
  });
  SpliceChunks(std::move(chunks), &out);
  uint64_t total_packed = 0;
  uint64_t total_fallback = 0;
  for (size_t m = 0; m < plan.morsels.size(); ++m) {
    total_packed += packed_rows[m];
    total_fallback += fallback_rows[m];
  }
  join_done(out, total_packed, total_fallback);
  return out;
}

Table UnionAll(const Table& a, const Table& b, exec::OperatorStats* stats) {
  OpScope op(stats == nullptr ? nullptr : &stats->union_all);
  if (a.schema().NumColumns() != b.schema().NumColumns()) {
    throw std::invalid_argument("UnionAll arity mismatch: {" +
                                a.schema().ToString() + "} vs {" +
                                b.schema().ToString() + "}");
  }
  Table out(a.schema());
  out.Reserve(a.NumRows() + b.NumRows());
  for (const Row& r : a.rows()) out.Insert(r);
  for (const Row& r : b.rows()) out.Insert(r);
  op.Done(out.NumRows(), out.NumRows(), 0);
  return out;
}

Table UnionAll(Table&& a, Table&& b, exec::OperatorStats* stats) {
  OpScope op(stats == nullptr ? nullptr : &stats->union_all);
  if (a.schema().NumColumns() != b.schema().NumColumns()) {
    throw std::invalid_argument("UnionAll arity mismatch: {" +
                                a.schema().ToString() + "} vs {" +
                                b.schema().ToString() + "}");
  }
  Table out(a.schema());
  std::vector<Row> a_rows = a.TakeRows();
  std::vector<Row> b_rows = b.TakeRows();
  out.Reserve(a_rows.size() + b_rows.size());
  for (Row& r : a_rows) out.Insert(std::move(r));
  for (Row& r : b_rows) out.Insert(std::move(r));
  op.Done(out.NumRows(), out.NumRows(), 0);
  return out;
}

std::vector<GroupByColumn> GroupCols(const std::vector<std::string>& names) {
  std::vector<GroupByColumn> out;
  out.reserve(names.size());
  for (const std::string& n : names) out.push_back(GroupByColumn{n, ""});
  return out;
}

namespace {

/// Insertion-ordered group table: `entries` keeps groups in first-
/// appearance order; `packed` (fast path) and `boxed` (fallback) map a
/// key to its entry slot. Every key lives in exactly one of the two
/// indexes — escape from the codec is a pure function of the value, so
/// the split is deterministic and the indexes never cross-probe. The
/// entry stores the group's *original* first-appearance GroupKey (never
/// a decoded PackedKey), which keeps output rows byte-identical to the
/// boxed path even when encoding canonicalizes (Double(7.0) -> Int64 7).
/// Both the serial path (one accumulation over the whole input) and the
/// parallel path (one per morsel, merged in morsel order) emit from
/// `entries`, which is what makes GroupBy's output order
/// thread-count-invariant.
struct GroupAccumulation {
  FlatHashMap<PackedKey, size_t, PackedKeyHash> packed;
  std::unordered_map<GroupKey, size_t, GroupKeyHash> boxed;
  std::vector<std::pair<GroupKey, std::vector<Accumulator>>> entries;
  // Per-input-row tallies, bumped only during accumulation (never at
  // merge) so their totals are identical at every thread count.
  uint64_t packed_rows = 0;
  uint64_t fallback_rows = 0;
};

std::vector<Accumulator> NewAccumulators(
    const std::vector<AggregateSpec>& aggregates) {
  std::vector<Accumulator> accs;
  accs.reserve(aggregates.size());
  for (const AggregateSpec& a : aggregates) accs.emplace_back(a.kind);
  return accs;
}

void AccumulateRange(const Table& input, size_t begin, size_t end,
                     const std::vector<size_t>& key_idx,
                     const std::vector<AggregateSpec>& aggregates,
                     const std::vector<BoundExpression>& args,
                     const PackedKeyCodec& codec, GroupAccumulation* acc) {
  GroupKey key;  // scratch, reused across rows; copied only per new group
  for (size_t r = begin; r < end; ++r) {
    const Row& row = input.row(r);
    size_t slot;
    std::optional<PackedKey> pk;
    if (codec.packable()) pk = codec.EncodeRow(row, key_idx);
    if (pk.has_value()) {
      ++acc->packed_rows;
      auto [value, inserted] =
          acc->packed.FindOrInsert(*pk, acc->entries.size());
      if (inserted) {
        acc->entries.emplace_back(ExtractKey(row, key_idx),
                                  NewAccumulators(aggregates));
      }
      slot = *value;
    } else {
      ++acc->fallback_rows;
      ExtractKey(row, key_idx, &key);
      auto it = acc->boxed.find(key);
      if (it == acc->boxed.end()) {
        it = acc->boxed.emplace(key, acc->entries.size()).first;
        acc->entries.emplace_back(key, NewAccumulators(aggregates));
      }
      slot = it->second;
    }
    std::vector<Accumulator>& accs = acc->entries[slot].second;
    for (size_t i = 0; i < aggregates.size(); ++i) {
      if (aggregates[i].kind == AggregateKind::kCountStar) {
        accs[i].Add(Value::Null());
      } else {
        accs[i].Add(args[i].Eval(row));
      }
    }
  }
}

}  // namespace

Table GroupBy(const Table& input, const std::vector<GroupByColumn>& group_by,
              const std::vector<AggregateSpec>& aggregates,
              exec::ThreadPool* pool, exec::OperatorStats* stats,
              size_t size_hint) {
  OpScope op(stats == nullptr ? nullptr : &stats->group_by);
  std::vector<size_t> key_idx;
  Schema out_schema;
  for (const GroupByColumn& g : group_by) {
    const size_t idx = input.schema().Resolve(g.input);
    key_idx.push_back(idx);
    const std::string out_name =
        g.output.empty() ? BareName(g.input) : g.output;
    out_schema.AddColumn(out_name, input.schema().column(idx).type);
  }

  std::vector<BoundExpression> args;  // parallel to aggregates; COUNT(*)
                                      // entries hold a default (unused)
  for (const AggregateSpec& a : aggregates) {
    if (a.kind == AggregateKind::kCountStar) {
      args.emplace_back();
      out_schema.AddColumn(a.output_name, ValueType::kInt64);
    } else {
      if (!a.argument.has_value()) {
        throw std::invalid_argument(AggregateKindName(a.kind) +
                                    std::string(" requires an argument"));
      }
      args.push_back(a.argument->Bind(input.schema()));
      out_schema.AddColumn(
          a.output_name,
          AggregateResultType(a.kind, a.argument->ResultType(input.schema())));
    }
  }

  // Key codec for this grouping. String key columns intern into an
  // operator-local arena: codes only need to be consistent within this
  // one call, and sharing the arena across morsels is safe (Dictionary
  // is internally synchronized).
  DictionaryArena dict_arena;
  const PackedKeyCodec codec = PackedKeyCodec::ForColumns(
      input.schema(), key_idx,
      [&dict_arena](const Column&) { return &dict_arena.Add(); });

  const exec::MorselPlan plan =
      exec::MorselPlan::For(input.NumRows(), exec::kDefaultMorselRows);
  GroupAccumulation groups;
  // Pre-size from the caller's cardinality estimate when given (clamped
  // to the input size — an estimate can exceed it), else the historical
  // quarter-of-input heuristic.
  const size_t expected = size_hint > 0
                              ? std::min(size_hint, input.NumRows() + 1)
                              : input.NumRows() / 4 + 8;
  if (codec.packable()) {
    groups.packed.Reserve(expected);
  } else {
    groups.boxed.reserve(expected);
  }
  groups.entries.reserve(expected);
  ProbeStats merge_probes;  // probes done by partial tables + merge
  if (pool == nullptr || plan.morsels.size() <= 1) {
    AccumulateRange(input, 0, input.NumRows(), key_idx, aggregates, args,
                    codec, &groups);
  } else {
    // Thread-local partial aggregation, the structure the paper's
    // summary-delta computation relies on: each morsel builds its own
    // insertion-ordered partial table, then partials merge in morsel
    // order, which reproduces the serial first-appearance order.
    std::vector<GroupAccumulation> partials(plan.morsels.size());
    exec::ParallelFor(pool, plan, [&](size_t begin, size_t end, size_t m) {
      AccumulateRange(input, begin, end, key_idx, aggregates, args, codec,
                      &partials[m]);
    });
    for (GroupAccumulation& partial : partials) {
      for (auto& [key, accs] : partial.entries) {
        // Re-encode the partial's key against the shared codec. A key
        // that packed in its morsel packs here too (same codec), so the
        // packed/boxed split is consistent between partials and merge.
        std::optional<PackedKey> pk;
        if (codec.packable()) pk = codec.EncodeKey(key);
        if (pk.has_value()) {
          auto [value, inserted] =
              groups.packed.FindOrInsert(*pk, groups.entries.size());
          if (inserted) {
            groups.entries.emplace_back(std::move(key), std::move(accs));
          } else {
            std::vector<Accumulator>& dst = groups.entries[*value].second;
            for (size_t i = 0; i < dst.size(); ++i) dst[i].Merge(accs[i]);
          }
        } else {
          auto it = groups.boxed.find(key);
          if (it == groups.boxed.end()) {
            groups.boxed.emplace(key, groups.entries.size());
            groups.entries.emplace_back(std::move(key), std::move(accs));
          } else {
            std::vector<Accumulator>& dst = groups.entries[it->second].second;
            for (size_t i = 0; i < dst.size(); ++i) dst[i].Merge(accs[i]);
          }
        }
      }
      groups.packed_rows += partial.packed_rows;
      groups.fallback_rows += partial.fallback_rows;
      merge_probes += partial.packed.probe_stats();
    }
  }

  // Scalar aggregation (no group-by) over empty input yields one row.
  if (group_by.empty() && groups.entries.empty()) {
    std::vector<Accumulator> accs;
    for (const AggregateSpec& a : aggregates) accs.emplace_back(a.kind);
    groups.entries.emplace_back(GroupKey{}, std::move(accs));
  }

  Table out(std::move(out_schema));
  out.Reserve(groups.entries.size());
  for (auto& [key, accs] : groups.entries) {
    Row row = std::move(key);
    row.reserve(row.size() + accs.size());
    for (const Accumulator& acc : accs) row.push_back(acc.Result());
    out.Insert(std::move(row));
  }
  if (stats != nullptr) {
    stats->key_packed_rows += groups.packed_rows;
    stats->key_fallback_rows += groups.fallback_rows;
    ProbeStats probes = groups.packed.probe_stats();
    probes += merge_probes;
    stats->key_probe_ops += probes.ops;
    stats->key_probe_steps += probes.steps;
  }
  op.Done(input.NumRows(), out.NumRows(), plan.morsels.size());
  return out;
}

}  // namespace sdelta::rel
