#include "relational/operators.h"

#include <stdexcept>
#include <unordered_map>

#include "relational/group_key.h"

namespace sdelta::rel {

std::string BareName(const std::string& name) {
  const size_t pos = name.rfind('.');
  return pos == std::string::npos ? name : name.substr(pos + 1);
}

Table Select(const Table& input, const Expression& predicate) {
  BoundExpression bound = predicate.Bind(input.schema());
  Table out(input.schema(), input.name());
  for (const Row& r : input.rows()) {
    if (bound.EvalPredicate(r)) out.Insert(r);
  }
  return out;
}

Table Project(const Table& input, const std::vector<ProjectColumn>& columns) {
  Schema out_schema;
  std::vector<BoundExpression> bound;
  bound.reserve(columns.size());
  for (const ProjectColumn& c : columns) {
    out_schema.AddColumn(c.name, c.expr.ResultType(input.schema()));
    bound.push_back(c.expr.Bind(input.schema()));
  }
  Table out(std::move(out_schema));
  out.Reserve(input.NumRows());
  for (const Row& r : input.rows()) {
    Row row;
    row.reserve(bound.size());
    for (const BoundExpression& b : bound) row.push_back(b.Eval(r));
    out.Insert(std::move(row));
  }
  return out;
}

Table HashJoin(const Table& left, const Table& right,
               const std::vector<std::pair<std::string, std::string>>& keys,
               const std::string& right_qualifier, bool drop_right_keys) {
  if (keys.empty()) {
    throw std::invalid_argument("HashJoin requires at least one key pair");
  }
  std::vector<size_t> left_idx;
  std::vector<size_t> right_idx;
  for (const auto& [lk, rk] : keys) {
    left_idx.push_back(left.schema().Resolve(lk));
    right_idx.push_back(right.schema().Resolve(rk));
  }

  // Right columns carried into the output (all, or all minus key columns).
  std::vector<size_t> right_out_idx;
  for (size_t i = 0; i < right.schema().NumColumns(); ++i) {
    bool is_key = false;
    if (drop_right_keys) {
      for (size_t k : right_idx) is_key |= (k == i);
    }
    if (!is_key) right_out_idx.push_back(i);
  }

  Schema out_schema;
  for (const Column& c : left.schema().columns()) {
    out_schema.AddColumn(c.name, c.type);
  }
  const Schema right_schema = right_qualifier.empty()
                                  ? right.schema()
                                  : right.schema().Qualified(right_qualifier);
  for (size_t i : right_out_idx) {
    out_schema.AddColumn(right_schema.column(i).name,
                         right_schema.column(i).type);
  }

  // Build side: the right (dimension) input.
  std::unordered_multimap<GroupKey, size_t, GroupKeyHash> build;
  build.reserve(right.NumRows());
  for (size_t i = 0; i < right.NumRows(); ++i) {
    GroupKey key = ExtractKey(right.row(i), right_idx);
    // SQL equi-join: NULL keys never match.
    bool has_null = false;
    for (const Value& v : key) has_null |= v.is_null();
    if (!has_null) build.emplace(std::move(key), i);
  }

  Table out(std::move(out_schema));
  for (const Row& lr : left.rows()) {
    GroupKey key = ExtractKey(lr, left_idx);
    bool has_null = false;
    for (const Value& v : key) has_null |= v.is_null();
    if (has_null) continue;
    auto [begin, end] = build.equal_range(key);
    for (auto it = begin; it != end; ++it) {
      Row row = lr;
      const Row& rr = right.row(it->second);
      row.reserve(row.size() + right_out_idx.size());
      for (size_t i : right_out_idx) row.push_back(rr[i]);
      out.Insert(std::move(row));
    }
  }
  return out;
}

Table UnionAll(const Table& a, const Table& b) {
  if (a.schema().NumColumns() != b.schema().NumColumns()) {
    throw std::invalid_argument("UnionAll arity mismatch: {" +
                                a.schema().ToString() + "} vs {" +
                                b.schema().ToString() + "}");
  }
  Table out(a.schema());
  out.Reserve(a.NumRows() + b.NumRows());
  for (const Row& r : a.rows()) out.Insert(r);
  for (const Row& r : b.rows()) out.Insert(r);
  return out;
}

std::vector<GroupByColumn> GroupCols(const std::vector<std::string>& names) {
  std::vector<GroupByColumn> out;
  out.reserve(names.size());
  for (const std::string& n : names) out.push_back(GroupByColumn{n, ""});
  return out;
}

Table GroupBy(const Table& input, const std::vector<GroupByColumn>& group_by,
              const std::vector<AggregateSpec>& aggregates) {
  std::vector<size_t> key_idx;
  Schema out_schema;
  for (const GroupByColumn& g : group_by) {
    const size_t idx = input.schema().Resolve(g.input);
    key_idx.push_back(idx);
    const std::string out_name =
        g.output.empty() ? BareName(g.input) : g.output;
    out_schema.AddColumn(out_name, input.schema().column(idx).type);
  }

  std::vector<BoundExpression> args;  // parallel to aggregates; COUNT(*)
                                      // entries hold a default (unused)
  for (const AggregateSpec& a : aggregates) {
    if (a.kind == AggregateKind::kCountStar) {
      args.emplace_back();
      out_schema.AddColumn(a.output_name, ValueType::kInt64);
    } else {
      if (!a.argument.has_value()) {
        throw std::invalid_argument(AggregateKindName(a.kind) +
                                    std::string(" requires an argument"));
      }
      args.push_back(a.argument->Bind(input.schema()));
      out_schema.AddColumn(
          a.output_name,
          AggregateResultType(a.kind, a.argument->ResultType(input.schema())));
    }
  }

  std::unordered_map<GroupKey, std::vector<Accumulator>, GroupKeyHash> groups;
  groups.reserve(input.NumRows() / 4 + 8);
  for (const Row& r : input.rows()) {
    GroupKey key = ExtractKey(r, key_idx);
    auto it = groups.find(key);
    if (it == groups.end()) {
      std::vector<Accumulator> accs;
      accs.reserve(aggregates.size());
      for (const AggregateSpec& a : aggregates) accs.emplace_back(a.kind);
      it = groups.emplace(std::move(key), std::move(accs)).first;
    }
    for (size_t i = 0; i < aggregates.size(); ++i) {
      if (aggregates[i].kind == AggregateKind::kCountStar) {
        it->second[i].Add(Value::Null());
      } else {
        it->second[i].Add(args[i].Eval(r));
      }
    }
  }

  // Scalar aggregation (no group-by) over empty input yields one row.
  if (group_by.empty() && groups.empty()) {
    std::vector<Accumulator> accs;
    for (const AggregateSpec& a : aggregates) accs.emplace_back(a.kind);
    groups.emplace(GroupKey{}, std::move(accs));
  }

  Table out(std::move(out_schema));
  out.Reserve(groups.size());
  for (const auto& [key, accs] : groups) {
    Row row = key;
    for (const Accumulator& acc : accs) row.push_back(acc.Result());
    out.Insert(std::move(row));
  }
  return out;
}

}  // namespace sdelta::rel
