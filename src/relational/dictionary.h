#ifndef SDELTA_RELATIONAL_DICTIONARY_H_
#define SDELTA_RELATIONAL_DICTIONARY_H_

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sdelta::rel {

/// An append-only string interner: every distinct string gets a dense
/// uint32 code, assigned at first sight and never changed or reused.
/// Codes are stable for the lifetime of the dictionary, which is what
/// lets propagate and refresh agree on key encodings across batches —
/// a summary-delta computed in batch k probes summary-table entries
/// encoded in batch 1 through the same dictionary.
///
/// Thread safety: Intern/Lookup/ValueOf/size may be called concurrently
/// (parallel GroupBy morsels and per-view refreshes share dictionaries).
/// Returned string references stay valid forever: storage is a deque,
/// which never moves existing elements on append.
///
/// Code *values* depend on interning order and are therefore not
/// deterministic across thread counts; they are only ever used for
/// equality within one process, never persisted or compared across runs.
class Dictionary {
 public:
  /// Codes are capped below 2^32 - 1 so a 32-bit packed-key field can
  /// spend its all-ones pattern on NULL. Interning more than kMaxCode
  /// distinct strings throws std::length_error.
  static constexpr uint32_t kMaxCode = 0xFFFFFFFEu;

  Dictionary() = default;
  Dictionary(const Dictionary&) = delete;
  Dictionary& operator=(const Dictionary&) = delete;

  /// The code for `s`, interning it on first sight.
  uint32_t Intern(const std::string& s);

  /// The code for `s` if already interned (never interns).
  std::optional<uint32_t> Lookup(const std::string& s) const;

  /// The string for a code previously returned by Intern. Out-of-range
  /// codes throw std::out_of_range.
  const std::string& ValueOf(uint32_t code) const;

  size_t size() const;

 private:
  mutable std::shared_mutex mu_;
  std::deque<std::string> strings_;  // code -> string; stable addresses
  // Views point into strings_, so no second copy of each key.
  std::unordered_map<std::string_view, uint32_t> codes_;
};

/// Per-column dictionaries shared via the catalog: summary tables (and
/// anything else keying on a named column) ask for the column's
/// dictionary by name, so every view grouping on "city" encodes city
/// strings through one interner. Dictionaries are heap-allocated and
/// never destroyed while the pool lives, so references survive catalog
/// moves (the warehouse moves its catalog in at construction).
class DictionaryPool {
 public:
  DictionaryPool() = default;
  DictionaryPool(const DictionaryPool&) = delete;
  DictionaryPool& operator=(const DictionaryPool&) = delete;

  /// The dictionary for `column`, created on first request.
  Dictionary& ForColumn(const std::string& column);

  /// (column, entry count) pairs, sorted by column name.
  std::vector<std::pair<std::string, size_t>> Entries() const;

  /// Total interned strings across all columns (the dict.entries gauge).
  size_t TotalEntries() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Dictionary>> dicts_;
};

/// Owner for operation-local dictionaries: a GroupBy or HashJoin whose
/// string key columns have no catalog-backed dictionary interns into
/// arena-owned ones that die with the operator call. Deque storage keeps
/// addresses stable across Add calls (Dictionary is not movable).
class DictionaryArena {
 public:
  Dictionary& Add() { return dicts_.emplace_back(); }
  size_t size() const { return dicts_.size(); }

 private:
  std::deque<Dictionary> dicts_;
};

}  // namespace sdelta::rel

#endif  // SDELTA_RELATIONAL_DICTIONARY_H_
