#include "relational/dictionary.h"

#include <stdexcept>

namespace sdelta::rel {

uint32_t Dictionary::Intern(const std::string& s) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = codes_.find(std::string_view(s));
    if (it != codes_.end()) return it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Re-check under the exclusive lock: another thread may have interned
  // the same string between the two lock acquisitions.
  auto it = codes_.find(std::string_view(s));
  if (it != codes_.end()) return it->second;
  if (strings_.size() > kMaxCode) {
    throw std::length_error("dictionary overflow: more than 2^32 - 1 codes");
  }
  const uint32_t code = static_cast<uint32_t>(strings_.size());
  strings_.push_back(s);
  codes_.emplace(std::string_view(strings_.back()), code);
  return code;
}

std::optional<uint32_t> Dictionary::Lookup(const std::string& s) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  auto it = codes_.find(std::string_view(s));
  if (it == codes_.end()) return std::nullopt;
  return it->second;
}

const std::string& Dictionary::ValueOf(uint32_t code) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (code >= strings_.size()) {
    throw std::out_of_range("dictionary code " + std::to_string(code) +
                            " out of range");
  }
  return strings_[code];
}

size_t Dictionary::size() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return strings_.size();
}

Dictionary& DictionaryPool::ForColumn(const std::string& column) {
  std::lock_guard<std::mutex> lock(mu_);
  std::unique_ptr<Dictionary>& slot = dicts_[column];
  if (slot == nullptr) slot = std::make_unique<Dictionary>();
  return *slot;
}

std::vector<std::pair<std::string, size_t>> DictionaryPool::Entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, size_t>> out;
  out.reserve(dicts_.size());
  for (const auto& [name, dict] : dicts_) {
    out.emplace_back(name, dict->size());
  }
  return out;
}

size_t DictionaryPool::TotalEntries() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t total = 0;
  for (const auto& [name, dict] : dicts_) total += dict->size();
  return total;
}

}  // namespace sdelta::rel
