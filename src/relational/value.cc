#include "relational/value.h"

#include <functional>
#include <sstream>
#include <stdexcept>

namespace sdelta::rel {

namespace {

bool IsNumeric(const Value& v) {
  return v.type() == ValueType::kInt64 || v.type() == ValueType::kDouble;
}

[[noreturn]] void ThrowNonNumeric(const char* op) {
  throw std::invalid_argument(std::string("non-numeric operand to ") + op);
}

}  // namespace

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull: return "null";
    case ValueType::kInt64: return "int64";
    case ValueType::kDouble: return "double";
    case ValueType::kString: return "string";
  }
  return "unknown";
}

double Value::ToDouble() const {
  switch (type()) {
    case ValueType::kInt64: return static_cast<double>(as_int64());
    case ValueType::kDouble: return as_double();
    default:
      throw std::invalid_argument("Value::ToDouble on non-numeric value");
  }
}

Value Value::Add(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Null();
  if (!IsNumeric(a) || !IsNumeric(b)) ThrowNonNumeric("Add");
  if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64) {
    return Int64(a.as_int64() + b.as_int64());
  }
  return Double(a.ToDouble() + b.ToDouble());
}

Value Value::Subtract(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Null();
  if (!IsNumeric(a) || !IsNumeric(b)) ThrowNonNumeric("Subtract");
  if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64) {
    return Int64(a.as_int64() - b.as_int64());
  }
  return Double(a.ToDouble() - b.ToDouble());
}

Value Value::Multiply(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Null();
  if (!IsNumeric(a) || !IsNumeric(b)) ThrowNonNumeric("Multiply");
  if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64) {
    return Int64(a.as_int64() * b.as_int64());
  }
  return Double(a.ToDouble() * b.ToDouble());
}

Value Value::Divide(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Null();
  if (!IsNumeric(a) || !IsNumeric(b)) ThrowNonNumeric("Divide");
  double denom = b.ToDouble();
  if (denom == 0.0) return Null();
  return Double(a.ToDouble() / denom);
}

Value Value::Negate(const Value& a) {
  if (a.is_null()) return Null();
  switch (a.type()) {
    case ValueType::kInt64: return Int64(-a.as_int64());
    case ValueType::kDouble: return Double(-a.as_double());
    default: ThrowNonNumeric("Negate");
  }
}

int Value::Compare(const Value& a, const Value& b) {
  const bool an = a.is_null();
  const bool bn = b.is_null();
  if (an && bn) return 0;
  if (an) return -1;
  if (bn) return 1;
  if (IsNumeric(a) && IsNumeric(b)) {
    if (a.type() == ValueType::kInt64 && b.type() == ValueType::kInt64) {
      const int64_t x = a.as_int64();
      const int64_t y = b.as_int64();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    const double x = a.ToDouble();
    const double y = b.ToDouble();
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (a.type() == ValueType::kString && b.type() == ValueType::kString) {
    return a.as_string().compare(b.as_string());
  }
  throw std::invalid_argument("Value::Compare across string and numeric");
}

bool operator==(const Value& a, const Value& b) {
  if (a.type() != b.type()) {
    // Numeric cross-type equality (an int64 column is never mixed with
    // doubles in practice, but expression results can widen).
    if (IsNumeric(a) && IsNumeric(b)) return a.ToDouble() == b.ToDouble();
    return false;
  }
  switch (a.type()) {
    case ValueType::kNull: return true;
    case ValueType::kInt64: return a.as_int64() == b.as_int64();
    case ValueType::kDouble: return a.as_double() == b.as_double();
    case ValueType::kString: return a.as_string() == b.as_string();
  }
  return false;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt64:
      return std::hash<int64_t>{}(as_int64());
    case ValueType::kDouble: {
      // Hash integral doubles like the equal int64 so that operator== and
      // Hash stay consistent across numeric widening.
      const double d = as_double();
      const int64_t i = static_cast<int64_t>(d);
      if (static_cast<double>(i) == d) return std::hash<int64_t>{}(i);
      return std::hash<double>{}(d);
    }
    case ValueType::kString:
      return std::hash<std::string>{}(as_string());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt64: return std::to_string(as_int64());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << as_double();
      return os.str();
    }
    case ValueType::kString: return as_string();
  }
  return "?";
}

std::string RowToString(const Row& row) {
  std::string out = "(";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out += ", ";
    out += row[i].ToString();
  }
  out += ")";
  return out;
}

}  // namespace sdelta::rel
