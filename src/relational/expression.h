#ifndef SDELTA_RELATIONAL_EXPRESSION_H_
#define SDELTA_RELATIONAL_EXPRESSION_H_

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"

namespace sdelta::rel {

class BoundExpression;
class Table;

/// An immutable scalar-expression AST over named columns.
///
/// Expressions are built with the static factories below, then Bind()-ed
/// against a concrete Schema (resolving column names to indices) to get a
/// BoundExpression that can be evaluated per row. Binding is where all
/// name errors surface; evaluation never throws for data reasons.
///
/// Semantics follow SQL where the paper depends on it:
///  * arithmetic propagates NULL;
///  * comparisons yield NULL if either operand is NULL, else int64 0/1;
///  * AND/OR use three-valued logic (NULL AND FALSE = FALSE, ...);
///  * IsNull yields int64 0/1 and never NULL;
///  * CaseIsNull(e, a, b) is SQL's CASE WHEN e IS NULL THEN a ELSE b END,
///    the exact construct Table 1 of the paper uses for COUNT(expr)
///    aggregate sources.
class Expression {
 public:
  enum class Kind {
    kColumn,
    kLiteral,
    kNegate,
    kIsNull,
    kCaseIsNull,
    kAdd,
    kSubtract,
    kMultiply,
    kDivide,
    kEq,
    kNe,
    kLt,
    kLe,
    kGt,
    kGe,
    kAnd,
    kOr,
    kNot,
  };

  /// References a column by (possibly qualified) name; resolved at Bind.
  static Expression Column(std::string name);
  static Expression Literal(Value value);

  static Expression Negate(Expression e);
  static Expression IsNull(Expression e);
  static Expression Not(Expression e);
  /// CASE WHEN test IS NULL THEN if_null ELSE if_not_null END
  static Expression CaseIsNull(Expression test, Expression if_null,
                               Expression if_not_null);

  static Expression Add(Expression a, Expression b);
  static Expression Subtract(Expression a, Expression b);
  static Expression Multiply(Expression a, Expression b);
  static Expression Divide(Expression a, Expression b);
  static Expression Eq(Expression a, Expression b);
  static Expression Ne(Expression a, Expression b);
  static Expression Lt(Expression a, Expression b);
  static Expression Le(Expression a, Expression b);
  static Expression Gt(Expression a, Expression b);
  static Expression Ge(Expression a, Expression b);
  static Expression And(Expression a, Expression b);
  static Expression Or(Expression a, Expression b);

  Kind kind() const;

  /// For kColumn nodes: the referenced name.
  const std::string& column_name() const;

  /// Resolves all column references against `schema`.
  /// Throws std::invalid_argument on unknown or ambiguous names.
  BoundExpression Bind(const Schema& schema) const;

  /// Collects the distinct column names referenced by this expression, in
  /// first-appearance order. Used by the derives-relation analysis.
  std::vector<std::string> ReferencedColumns() const;

  /// Returns a copy with every column-reference name mapped through `fn`.
  /// Used by the lattice layer to re-target a child view's aggregate
  /// argument at the parent's output columns.
  Expression RenameColumns(
      const std::function<std::string(const std::string&)>& fn) const;

  /// Best-effort result type given a schema (used to type computed
  /// columns in derived schemas): comparisons/logic/IsNull are kInt64;
  /// Divide is kDouble; arithmetic takes the wider operand type; columns
  /// take their schema type.
  ValueType ResultType(const Schema& schema) const;

  /// Renders e.g. "(qty * price)" for diagnostics.
  std::string ToString() const;

  /// Structural equality (same tree shape, names, literals). Used to
  /// detect that an aggregate argument in one view matches another's.
  friend bool operator==(const Expression& a, const Expression& b);

 private:
  struct Node;
  explicit Expression(std::shared_ptr<const Node> node);
  static Expression MakeNode(Kind kind, std::vector<Expression> children);
  void CollectColumns(std::vector<std::string>* out) const;

  std::shared_ptr<const Node> node_;
  friend class BoundExpression;
};

/// An Expression with column references resolved to column indices of a
/// specific schema. Cheap to copy; evaluation is allocation-free except
/// for string temporaries.
class BoundExpression {
 public:
  BoundExpression() = default;

  Value Eval(const Row& row) const;

  /// Evaluates against row `row` of a columnar table, reading only the
  /// columns the expression touches (no whole-row materialization).
  Value EvalAt(const Table& table, size_t row) const;

  /// SQL WHERE-clause truthiness: non-null and non-zero.
  bool EvalPredicate(const Row& row) const;
  bool EvalPredicateAt(const Table& table, size_t row) const;

  /// If this expression is a bare column reference, its bound column
  /// index — the vectorized operators then copy the column wholesale
  /// instead of evaluating per row. nullopt for anything else.
  std::optional<size_t> SourceColumn() const;

 private:
  struct BoundNode;
  friend class Expression;
  explicit BoundExpression(std::shared_ptr<const BoundNode> node);
  template <typename Access>
  static Value EvalNode(const BoundNode& n, const Access& at);
  std::shared_ptr<const BoundNode> node_;
};

}  // namespace sdelta::rel

#endif  // SDELTA_RELATIONAL_EXPRESSION_H_
