#ifndef SDELTA_RELATIONAL_OPERATORS_H_
#define SDELTA_RELATIONAL_OPERATORS_H_

#include <string>
#include <utility>
#include <vector>

#include "relational/aggregate.h"
#include "relational/expression.h"
#include "relational/table.h"

namespace sdelta::rel {

/// Materializing relational operators.
///
/// Each operator validates its inputs at entry (throwing
/// std::invalid_argument for schema errors) and produces a new Table.
/// These are deliberately simple single-threaded implementations: the
/// paper's experiments measure relative algorithmic costs (tuples touched
/// per phase), which these operators expose faithfully.

/// Rows of `input` satisfying `predicate` (SQL truthiness: non-null,
/// non-zero).
Table Select(const Table& input, const Expression& predicate);

/// One output column per (name, expression) pair.
struct ProjectColumn {
  std::string name;
  Expression expr;
};
Table Project(const Table& input, const std::vector<ProjectColumn>& columns);

/// Equi-join of `left` and `right` on the given key column pairs
/// (left_key resolved in left's schema, right_key in right's).
///
/// Output schema: left's columns unchanged, followed by right's columns
/// qualified as "right_qualifier.column" (pass "" to keep right's names
/// unchanged — valid only when there are no clashes). A hash table is
/// built on the right input, so put the smaller relation (the dimension
/// table) on the right.
///
/// With drop_right_keys = true the right key columns are omitted from the
/// output — the idiom for foreign-key joins, where the dimension key
/// duplicates the fact FK value and keeping it would only create
/// ambiguous names.
Table HashJoin(const Table& left, const Table& right,
               const std::vector<std::pair<std::string, std::string>>& keys,
               const std::string& right_qualifier,
               bool drop_right_keys = false);

/// Bag union. Schemas must have identical arity and column types; output
/// takes `a`'s column names.
Table UnionAll(const Table& a, const Table& b);

/// Grouped aggregation.
///
/// Groups `input` by the `group_by` input columns (resolved by name;
/// output columns are renamed to `output` — defaulting to the bare name
/// after the last '.') and computes each aggregate. A grouping with an
/// empty group_by list produces exactly one row even for empty input
/// (SQL scalar-aggregate semantics).
struct GroupByColumn {
  std::string input;
  std::string output;  // empty => bare name of `input`
};
Table GroupBy(const Table& input, const std::vector<GroupByColumn>& group_by,
              const std::vector<AggregateSpec>& aggregates);

/// Convenience: group-by columns keeping their bare names.
std::vector<GroupByColumn> GroupCols(const std::vector<std::string>& names);

/// The bare column name after the final '.' ("stores.city" -> "city").
std::string BareName(const std::string& name);

}  // namespace sdelta::rel

#endif  // SDELTA_RELATIONAL_OPERATORS_H_
