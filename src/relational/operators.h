#ifndef SDELTA_RELATIONAL_OPERATORS_H_
#define SDELTA_RELATIONAL_OPERATORS_H_

#include <string>
#include <utility>
#include <vector>

#include "exec/operator_stats.h"
#include "exec/thread_pool.h"
#include "relational/aggregate.h"
#include "relational/expression.h"
#include "relational/table.h"

namespace sdelta::rel {

/// Materializing relational operators.
///
/// Each operator validates its inputs at entry (throwing
/// std::invalid_argument for schema errors) and produces a new Table.
///
/// Parallelism and determinism: Select, Project, HashJoin and GroupBy
/// take an optional exec::ThreadPool and run morsel-driven when one is
/// supplied (null = the exact serial path). The output is byte-identical
/// at every thread count:
///   - Select/Project/HashJoin emit one output chunk per morsel and
///     concatenate chunks in morsel order, which equals serial row
///     order because morselization depends only on the input size.
///   - GroupBy accumulates insertion-ordered partial tables per morsel
///     and merges them in morsel order, which reproduces the serial
///     first-appearance group order exactly; distributive aggregates
///     (COUNT/SUM/MIN/MAX, algebraic AVG) merge exactly for integer
///     inputs. (Caveat: a double SUM's *value* can differ across thread
///     counts by floating-point addition order; the retail schema's
///     summary views aggregate only integers.)
///   - HashJoin's build side stays serial: one shared read-only hash
///     table, probed concurrently.
///
/// Accounting: every operator takes an optional exec::OperatorStats and
/// records calls, rows in/out, morsel counts (a pure function of input
/// size — deterministic across thread counts), join build/probe sizes,
/// and wall time. Null means no accounting overhead beyond one branch.

/// Rows of `input` satisfying `predicate` (SQL truthiness: non-null,
/// non-zero).
Table Select(const Table& input, const Expression& predicate,
             exec::ThreadPool* pool = nullptr,
             exec::OperatorStats* stats = nullptr);

/// One output column per (name, expression) pair.
struct ProjectColumn {
  std::string name;
  Expression expr;
};
Table Project(const Table& input, const std::vector<ProjectColumn>& columns,
              exec::ThreadPool* pool = nullptr,
              exec::OperatorStats* stats = nullptr);

/// Equi-join of `left` and `right` on the given key column pairs
/// (left_key resolved in left's schema, right_key in right's).
///
/// Output schema: left's columns unchanged, followed by right's columns
/// qualified as "right_qualifier.column" (pass "" to keep right's names
/// unchanged — valid only when there are no clashes). A hash table is
/// built on the right input, so put the smaller relation (the dimension
/// table) on the right.
///
/// With drop_right_keys = true the right key columns are omitted from the
/// output — the idiom for foreign-key joins, where the dimension key
/// duplicates the fact FK value and keeping it would only create
/// ambiguous names.
Table HashJoin(const Table& left, const Table& right,
               const std::vector<std::pair<std::string, std::string>>& keys,
               const std::string& right_qualifier,
               bool drop_right_keys = false, exec::ThreadPool* pool = nullptr,
               exec::OperatorStats* stats = nullptr);

/// Bag union. Schemas must have identical arity and column types; output
/// takes `a`'s column names.
Table UnionAll(const Table& a, const Table& b,
               exec::OperatorStats* stats = nullptr);

/// Move-optimized bag union: both inputs relinquish their rows, so the
/// union costs O(1) row moves on the larger side instead of deep copies.
Table UnionAll(Table&& a, Table&& b, exec::OperatorStats* stats = nullptr);

/// Grouped aggregation.
///
/// Groups `input` by the `group_by` input columns (resolved by name;
/// output columns are renamed to `output` — defaulting to the bare name
/// after the last '.') and computes each aggregate. A grouping with an
/// empty group_by list produces exactly one row even for empty input
/// (SQL scalar-aggregate semantics).
///
/// Output rows appear in first-appearance order of each group in the
/// input — a deterministic order shared by the serial and parallel
/// paths (see the determinism notes above).
///
/// `size_hint`, when nonzero, pre-sizes the group index (propagate
/// passes the lattice plan's §5.5 cardinality estimate so the fan-out
/// never rehashes mid-batch). It is a capacity hint only — the result
/// is identical with or without it.
struct GroupByColumn {
  std::string input;
  std::string output;  // empty => bare name of `input`
};
Table GroupBy(const Table& input, const std::vector<GroupByColumn>& group_by,
              const std::vector<AggregateSpec>& aggregates,
              exec::ThreadPool* pool = nullptr,
              exec::OperatorStats* stats = nullptr, size_t size_hint = 0);

/// Convenience: group-by columns keeping their bare names.
std::vector<GroupByColumn> GroupCols(const std::vector<std::string>& names);

/// The bare column name after the final '.' ("stores.city" -> "city").
std::string BareName(const std::string& name);

}  // namespace sdelta::rel

#endif  // SDELTA_RELATIONAL_OPERATORS_H_
