#ifndef SDELTA_RELATIONAL_FLAT_HASH_H_
#define SDELTA_RELATIONAL_FLAT_HASH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace sdelta::rel {

/// Probe-length accounting for a flat map: ops counts lookups/inserts,
/// steps counts slots inspected (>= ops; steps == ops means every probe
/// hit its home slot). Feeds the hash.probe_len histogram.
struct ProbeStats {
  uint64_t ops = 0;
  uint64_t steps = 0;

  double MeanLength() const;

  ProbeStats& operator+=(const ProbeStats& other) {
    ops += other.ops;
    steps += other.steps;
    return *this;
  }
};

namespace flat_internal {
/// Smallest power-of-two capacity >= 16 that keeps n entries at or below
/// the 3/4 load factor.
size_t NormalizeCapacity(size_t n);
}  // namespace flat_internal

/// Hash functor for keys that are already well-mixed hashes (Table's
/// whole-row index stores HashRow outputs): re-avalanching them would
/// only burn cycles.
struct IdentityHash {
  size_t operator()(size_t v) const { return v; }
};

/// A flat open-addressing hash map: linear probing over a power-of-two
/// slot array, with a separate one-byte-per-slot metadata array so the
/// probe loop scans a dense cache-friendly byte stream and only touches
/// the (wide) slot when the 7-bit hash tag matches.
///
/// Design points, sized to this codebase's needs rather than generality:
///   - Duplicate keys are supported via InsertMulti/ForEachEqual — the
///     same structure backs unique maps (GroupBy index, SummaryTable
///     index) and multimaps (HashJoin build side, Table row index).
///   - Erase is tombstone-free backward-shift deletion, so probe chains
///     never accumulate dead slots across the insert/erase churn of
///     summary-table refresh.
///   - Find/FindOrInsert/InsertMulti update a mutable ProbeStats; the
///     const ForEachEqual does NOT (it is the one entry point probed
///     concurrently — parallel HashJoin morsels share the build table).
///   - K and V must be cheaply default-constructible and movable; empty
///     slots hold default-constructed pairs (PackedKey, size_t — both
///     trivial in practice).
template <typename K, typename V, typename Hash>
class FlatHashMap {
 public:
  FlatHashMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t capacity() const { return ctrl_.size(); }

  /// Drops all entries, keeping the allocation.
  void Clear() {
    for (uint8_t& c : ctrl_) c = kEmpty;
    for (Slot& s : slots_) s = Slot{};
    size_ = 0;
  }

  /// Grows (never shrinks) so that n entries fit without rehashing.
  void Reserve(size_t n) {
    const size_t cap = flat_internal::NormalizeCapacity(n);
    if (cap > ctrl_.size()) Rehash(cap);
  }

  /// Inserts (key, value) unless key is present; returns the value slot
  /// and whether an insert happened. With duplicate keys in the table
  /// (via InsertMulti) this finds the first in probe order.
  std::pair<V*, bool> FindOrInsert(const K& key, V value) {
    ReserveForOne();
    const size_t h = hash_(key);
    const uint8_t tag = Tag(h);
    size_t i = h & mask_;
    ++probes_.ops;
    while (true) {
      ++probes_.steps;
      if (ctrl_[i] == kEmpty) {
        ctrl_[i] = tag;
        slots_[i].key = key;
        slots_[i].value = std::move(value);
        ++size_;
        return {&slots_[i].value, true};
      }
      if (ctrl_[i] == tag && slots_[i].key == key) {
        return {&slots_[i].value, false};
      }
      i = (i + 1) & mask_;
    }
  }

  /// Inserts unconditionally, allowing duplicate keys.
  void InsertMulti(const K& key, V value) {
    ReserveForOne();
    const size_t h = hash_(key);
    const uint8_t tag = Tag(h);
    size_t i = h & mask_;
    ++probes_.ops;
    while (true) {
      ++probes_.steps;
      if (ctrl_[i] == kEmpty) {
        ctrl_[i] = tag;
        slots_[i].key = key;
        slots_[i].value = std::move(value);
        ++size_;
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Points at the mapped value, or nullptr. With duplicates, the first
  /// in probe order.
  const V* Find(const K& key) const {
    if (size_ == 0) return nullptr;
    const size_t h = hash_(key);
    const uint8_t tag = Tag(h);
    size_t i = h & mask_;
    ++probes_.ops;
    while (true) {
      ++probes_.steps;
      if (ctrl_[i] == kEmpty) return nullptr;
      if (ctrl_[i] == tag && slots_[i].key == key) return &slots_[i].value;
      i = (i + 1) & mask_;
    }
  }

  V* Find(const K& key) {
    return const_cast<V*>(static_cast<const FlatHashMap*>(this)->Find(key));
  }

  /// Calls fn(value) for every entry whose key equals `key`, in probe
  /// order; fn returns true to stop early. Performs no probe accounting —
  /// safe to call concurrently from parallel join morsels.
  template <typename Fn>
  void ForEachEqual(const K& key, Fn&& fn) const {
    if (size_ == 0) return;
    const size_t h = hash_(key);
    const uint8_t tag = Tag(h);
    size_t i = h & mask_;
    while (ctrl_[i] != kEmpty) {
      if (ctrl_[i] == tag && slots_[i].key == key && fn(slots_[i].value)) {
        return;
      }
      i = (i + 1) & mask_;
    }
  }

  /// Erases the first entry (in probe order) with this key for which
  /// pred(value) holds. Returns whether anything was erased.
  template <typename Pred>
  bool EraseOneIf(const K& key, Pred&& pred) {
    if (size_ == 0) return false;
    const size_t h = hash_(key);
    const uint8_t tag = Tag(h);
    size_t i = h & mask_;
    while (ctrl_[i] != kEmpty) {
      if (ctrl_[i] == tag && slots_[i].key == key && pred(slots_[i].value)) {
        EraseSlot(i);
        return true;
      }
      i = (i + 1) & mask_;
    }
    return false;
  }

  bool Erase(const K& key) {
    return EraseOneIf(key, [](const V&) { return true; });
  }

  const ProbeStats& probe_stats() const { return probes_; }

 private:
  struct Slot {
    K key{};
    V value{};
  };

  static constexpr uint8_t kEmpty = 0;

  /// 7 bits of hash with the occupancy bit set, so a tag never collides
  /// with kEmpty. Taken from the top of the hash — the bottom bits pick
  /// the bucket, so top bits add independent discrimination.
  static uint8_t Tag(size_t h) {
    return static_cast<uint8_t>(0x80u | (h >> 57));
  }

  void ReserveForOne() {
    if (ctrl_.empty()) {
      Rehash(16);
    } else if ((size_ + 1) * 4 > ctrl_.size() * 3) {
      Rehash(ctrl_.size() * 2);
    }
  }

  void Rehash(size_t new_cap) {
    std::vector<uint8_t> old_ctrl = std::move(ctrl_);
    std::vector<Slot> old_slots = std::move(slots_);
    ctrl_.assign(new_cap, kEmpty);
    slots_.assign(new_cap, Slot{});
    mask_ = new_cap - 1;
    for (size_t j = 0; j < old_ctrl.size(); ++j) {
      if (old_ctrl[j] == kEmpty) continue;
      const size_t h = hash_(old_slots[j].key);
      size_t i = h & mask_;
      while (ctrl_[i] != kEmpty) i = (i + 1) & mask_;
      ctrl_[i] = Tag(h);
      slots_[i] = std::move(old_slots[j]);
    }
  }

  /// Backward-shift deletion: walk the probe chain after the hole and
  /// move back every entry whose home slot lies at or before the hole
  /// (cyclically), so lookups never need tombstones.
  void EraseSlot(size_t hole) {
    size_t i = (hole + 1) & mask_;
    while (ctrl_[i] != kEmpty) {
      const size_t home = hash_(slots_[i].key) & mask_;
      if (((i - home) & mask_) >= ((i - hole) & mask_)) {
        ctrl_[hole] = ctrl_[i];
        slots_[hole] = std::move(slots_[i]);
        hole = i;
      }
      i = (i + 1) & mask_;
    }
    ctrl_[hole] = kEmpty;
    slots_[hole] = Slot{};
    --size_;
  }

  std::vector<uint8_t> ctrl_;
  std::vector<Slot> slots_;
  size_t mask_ = 0;
  size_t size_ = 0;
  Hash hash_;
  mutable ProbeStats probes_;
};

}  // namespace sdelta::rel

#endif  // SDELTA_RELATIONAL_FLAT_HASH_H_
