#include "relational/flat_hash.h"

namespace sdelta::rel {

double ProbeStats::MeanLength() const {
  return ops == 0 ? 0.0 : static_cast<double>(steps) / static_cast<double>(ops);
}

namespace flat_internal {

size_t NormalizeCapacity(size_t n) {
  size_t cap = 16;
  while (n * 4 > cap * 3) cap *= 2;
  return cap;
}

}  // namespace flat_internal

}  // namespace sdelta::rel
