#ifndef SDELTA_RELATIONAL_COLUMN_H_
#define SDELTA_RELATIONAL_COLUMN_H_

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "relational/dictionary.h"
#include "relational/value.h"

namespace sdelta::rel {

/// One column of a Table, stored as a typed vector chosen by the
/// column's *declared* schema type:
///
///   declared kInt64  -> std::vector<int64_t>
///   declared kDouble -> std::vector<double>
///   declared kString -> std::vector<uint32_t> dictionary codes plus a
///                       shared, append-only Dictionary
///
/// plus a per-column null bitmap (one bit per row, set = NULL). NULL
/// slots keep a placeholder in the typed vector so positions stay
/// aligned; the bitmap is authoritative.
///
/// Values whose runtime type does not match the declared type (a
/// non-integral double in an int64 column, an int64 that an expression
/// widened into a string column, any value in a kNull-declared column)
/// demote the *whole column* to boxed storage — a plain
/// std::vector<Value> holding the exact original Values. Demotion is a
/// pure function of the appended value sequence, so a table built from
/// the same rows in the same order always lands in the same storage
/// mode regardless of thread count; and because typed storage only ever
/// holds values whose runtime type matched exactly, At(i) reproduces
/// every appended Value byte-identically in either mode.
///
/// The dictionary is shared via shared_ptr: operators that copy or
/// gather rows from a column reuse the source dictionary and copy codes
/// verbatim (no re-hashing); appends from a column with a *different*
/// dictionary re-intern through the destination's. Codes never appear
/// in results, so dictionary state does not affect output bytes.
class ColumnVector {
 public:
  enum class Storage : uint8_t { kInt64, kDouble, kDict, kBoxed };

  ColumnVector() : ColumnVector(ValueType::kNull) {}
  explicit ColumnVector(ValueType declared);

  ValueType declared_type() const { return declared_; }
  Storage storage() const { return storage_; }
  bool boxed() const { return storage_ == Storage::kBoxed; }
  size_t size() const { return size_; }
  size_t null_count() const;

  void Reserve(size_t n);
  void Clear();

  /// Appends one value, demoting to boxed storage on a type mismatch.
  void Append(const Value& v);
  void AppendNull();

  /// Materializes the value at i (dictionary columns copy the string).
  Value At(size_t i) const;

  bool IsNullAt(size_t i) const {
    return storage_ == Storage::kBoxed ? box_[i].is_null() : NullBit(i);
  }

  /// Hash of At(i), identical to Value::Hash without materializing.
  size_t HashAt(size_t i) const;

  /// At(i) == v under Value's widening equality, without materializing.
  bool EqualsAt(size_t i, const Value& v) const;

  /// Bulk-appends src rows [begin, end). Columns in the same storage
  /// mode copy vectors directly (dictionary codes copy verbatim when
  /// the dictionaries are the same object, and re-intern otherwise);
  /// everything else falls back to per-value Append, keeping the
  /// demotion rule identical to a row-at-a-time build.
  void AppendRange(const ColumnVector& src, size_t begin, size_t end);

  /// Bulk-appends src rows at `rows`, in order. Same fast paths as
  /// AppendRange.
  void AppendGather(const ColumnVector& src, const std::vector<size_t>& rows);

  /// Removes row i by swapping the last row into its place (O(1)).
  void EraseAtSwap(size_t i);

  // Typed accessors for vectorized inner loops. Only valid in the
  // matching storage mode; callers branch on storage() once per batch.
  const int64_t* ints() const { return ints_.data(); }
  const double* doubles() const { return doubles_.data(); }
  const uint32_t* codes() const { return codes_.data(); }
  const std::shared_ptr<Dictionary>& dict() const { return dict_; }
  const std::vector<Value>& boxed_values() const { return box_; }
  /// Null bitmap words (64 rows per word, bit set = NULL). Null when
  /// boxed (NULLs then live in the Values themselves).
  const uint64_t* null_words() const {
    return storage_ == Storage::kBoxed ? nullptr : nulls_.data();
  }

  static bool WordBit(const uint64_t* words, size_t i) {
    return (words[i >> 6] >> (i & 63)) & 1;
  }

  /// Heap bytes used by this column's own storage (the shared
  /// dictionary is excluded — it may back many columns).
  size_t ApproxBytes() const;

  /// "int64" | "double" | "dict" | "boxed", for layout introspection.
  const char* StorageName() const;

 private:
  void Demote();
  void EnsureDict();
  void PushNullBit(bool is_null);
  bool NullBit(size_t i) const { return WordBit(nulls_.data(), i); }

  ValueType declared_ = ValueType::kNull;
  Storage storage_ = Storage::kBoxed;
  size_t size_ = 0;
  size_t null_count_ = 0;  // typed modes only; boxed counts on demand
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<uint32_t> codes_;
  std::shared_ptr<Dictionary> dict_;
  std::vector<uint64_t> nulls_;
  std::vector<Value> box_;
};

}  // namespace sdelta::rel

#endif  // SDELTA_RELATIONAL_COLUMN_H_
