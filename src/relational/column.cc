#include "relational/column.h"

#include <functional>
#include <utility>

namespace sdelta::rel {

namespace {

/// Placeholder code stored in NULL slots of dictionary columns. Never a
/// valid code (Dictionary caps codes at kMaxCode = 0xFFFFFFFE).
constexpr uint32_t kNullCodeSlot = 0xFFFFFFFFu;

size_t NullWordsFor(size_t rows) { return (rows + 63) / 64; }

}  // namespace

ColumnVector::ColumnVector(ValueType declared) : declared_(declared) {
  switch (declared) {
    case ValueType::kInt64: storage_ = Storage::kInt64; break;
    case ValueType::kDouble: storage_ = Storage::kDouble; break;
    case ValueType::kString: storage_ = Storage::kDict; break;
    case ValueType::kNull: storage_ = Storage::kBoxed; break;
  }
}

size_t ColumnVector::null_count() const {
  if (storage_ != Storage::kBoxed) return null_count_;
  size_t n = 0;
  for (const Value& v : box_) n += v.is_null();
  return n;
}

void ColumnVector::Reserve(size_t n) {
  switch (storage_) {
    case Storage::kInt64: ints_.reserve(n); break;
    case Storage::kDouble: doubles_.reserve(n); break;
    case Storage::kDict: codes_.reserve(n); break;
    case Storage::kBoxed: box_.reserve(n); return;
  }
  nulls_.reserve(NullWordsFor(n));
}

void ColumnVector::Clear() {
  ints_.clear();
  doubles_.clear();
  codes_.clear();
  nulls_.clear();
  box_.clear();
  size_ = 0;
  null_count_ = 0;
  // A cleared column keeps its storage mode and dictionary: existing
  // codes are gone, but the interner stays valid for future appends.
  if (storage_ == Storage::kBoxed && declared_ != ValueType::kNull) {
    // Un-demote: with no rows left the typed layout is valid again.
    storage_ = declared_ == ValueType::kInt64    ? Storage::kInt64
               : declared_ == ValueType::kDouble ? Storage::kDouble
                                                 : Storage::kDict;
  }
}

void ColumnVector::EnsureDict() {
  if (dict_ == nullptr) dict_ = std::make_shared<Dictionary>();
}

void ColumnVector::PushNullBit(bool is_null) {
  if ((size_ & 63) == 0) nulls_.push_back(0);
  if (is_null) {
    nulls_.back() |= uint64_t{1} << (size_ & 63);
    ++null_count_;
  }
}

void ColumnVector::Append(const Value& v) {
  switch (storage_) {
    case Storage::kBoxed:
      box_.push_back(v);
      ++size_;
      return;
    case Storage::kInt64:
      if (v.is_null()) {
        ints_.push_back(0);
        PushNullBit(true);
        ++size_;
        return;
      }
      if (v.type() == ValueType::kInt64) {
        ints_.push_back(v.as_int64());
        PushNullBit(false);
        ++size_;
        return;
      }
      break;
    case Storage::kDouble:
      if (v.is_null()) {
        doubles_.push_back(0.0);
        PushNullBit(true);
        ++size_;
        return;
      }
      if (v.type() == ValueType::kDouble) {
        doubles_.push_back(v.as_double());
        PushNullBit(false);
        ++size_;
        return;
      }
      break;
    case Storage::kDict:
      if (v.is_null()) {
        codes_.push_back(kNullCodeSlot);
        PushNullBit(true);
        ++size_;
        return;
      }
      if (v.type() == ValueType::kString) {
        EnsureDict();
        codes_.push_back(dict_->Intern(v.as_string()));
        PushNullBit(false);
        ++size_;
        return;
      }
      break;
  }
  // Runtime type escaped the declared layout: demote the whole column.
  Demote();
  box_.push_back(v);
  ++size_;
}

void ColumnVector::AppendNull() { Append(Value::Null()); }

void ColumnVector::Demote() {
  box_.reserve(size_ + 1);
  for (size_t i = 0; i < size_; ++i) box_.push_back(At(i));
  std::vector<int64_t>().swap(ints_);
  std::vector<double>().swap(doubles_);
  std::vector<uint32_t>().swap(codes_);
  std::vector<uint64_t>().swap(nulls_);
  dict_.reset();
  null_count_ = 0;
  storage_ = Storage::kBoxed;
}

Value ColumnVector::At(size_t i) const {
  switch (storage_) {
    case Storage::kBoxed: return box_[i];
    case Storage::kInt64:
      return NullBit(i) ? Value::Null() : Value::Int64(ints_[i]);
    case Storage::kDouble:
      return NullBit(i) ? Value::Null() : Value::Double(doubles_[i]);
    case Storage::kDict:
      return NullBit(i) ? Value::Null()
                        : Value::String(dict_->ValueOf(codes_[i]));
  }
  return Value::Null();
}

size_t ColumnVector::HashAt(size_t i) const {
  // Must equal At(i).Hash() exactly: the whole-row index and BagEquals
  // mix these hashes the same way HashRow mixes Value::Hash.
  switch (storage_) {
    case Storage::kBoxed:
      return box_[i].Hash();
    case Storage::kInt64:
      if (NullBit(i)) break;
      return std::hash<int64_t>{}(ints_[i]);
    case Storage::kDouble: {
      if (NullBit(i)) break;
      const double d = doubles_[i];
      const int64_t twin = static_cast<int64_t>(d);
      if (static_cast<double>(twin) == d) return std::hash<int64_t>{}(twin);
      return std::hash<double>{}(d);
    }
    case Storage::kDict:
      if (NullBit(i)) break;
      return std::hash<std::string>{}(dict_->ValueOf(codes_[i]));
  }
  return 0x9e3779b97f4a7c15ULL;  // Value::Hash of NULL
}

bool ColumnVector::EqualsAt(size_t i, const Value& v) const {
  switch (storage_) {
    case Storage::kBoxed:
      return box_[i] == v;
    case Storage::kInt64:
      if (NullBit(i)) return v.is_null();
      if (v.type() == ValueType::kInt64) return ints_[i] == v.as_int64();
      if (v.type() == ValueType::kDouble) {
        return static_cast<double>(ints_[i]) == v.as_double();
      }
      return false;
    case Storage::kDouble:
      if (NullBit(i)) return v.is_null();
      if (v.type() == ValueType::kDouble) return doubles_[i] == v.as_double();
      if (v.type() == ValueType::kInt64) {
        return doubles_[i] == static_cast<double>(v.as_int64());
      }
      return false;
    case Storage::kDict:
      if (NullBit(i)) return v.is_null();
      return v.type() == ValueType::kString &&
             dict_->ValueOf(codes_[i]) == v.as_string();
  }
  return false;
}

void ColumnVector::AppendRange(const ColumnVector& src, size_t begin,
                               size_t end) {
  if (begin >= end) return;
  // Mirrors the PR-4 ExtractKey contract: when the caller Reserved
  // enough capacity up front, a bulk append must not reallocate.
  [[maybe_unused]] const Storage mode_before = storage_;
  [[maybe_unused]] const bool fits =
      storage_ == Storage::kInt64    ? ints_.capacity() >= size_ + (end - begin)
      : storage_ == Storage::kDouble ? doubles_.capacity() >=
                                           size_ + (end - begin)
      : storage_ == Storage::kDict   ? codes_.capacity() >= size_ + (end - begin)
                                     : box_.capacity() >= size_ + (end - begin);
  [[maybe_unused]] const void* data_before =
      storage_ == Storage::kInt64    ? static_cast<const void*>(ints_.data())
      : storage_ == Storage::kDouble ? static_cast<const void*>(doubles_.data())
      : storage_ == Storage::kDict   ? static_cast<const void*>(codes_.data())
                                     : static_cast<const void*>(box_.data());
  if (src.storage_ == storage_ && storage_ == Storage::kInt64) {
    ints_.insert(ints_.end(), src.ints_.begin() + begin,
                 src.ints_.begin() + end);
    for (size_t i = begin; i < end; ++i) {
      PushNullBit(src.NullBit(i));
      ++size_;
    }
  } else if (src.storage_ == storage_ && storage_ == Storage::kDouble) {
    doubles_.insert(doubles_.end(), src.doubles_.begin() + begin,
                    src.doubles_.begin() + end);
    for (size_t i = begin; i < end; ++i) {
      PushNullBit(src.NullBit(i));
      ++size_;
    }
  } else if (src.storage_ == storage_ && storage_ == Storage::kDict) {
    if (dict_ == nullptr && size_ == 0) dict_ = src.dict_;  // adopt
    if (dict_ == src.dict_) {
      codes_.insert(codes_.end(), src.codes_.begin() + begin,
                    src.codes_.begin() + end);
      for (size_t i = begin; i < end; ++i) {
        PushNullBit(src.NullBit(i));
        ++size_;
      }
    } else {
      for (size_t i = begin; i < end; ++i) {
        if (src.NullBit(i)) {
          codes_.push_back(kNullCodeSlot);
          PushNullBit(true);
        } else {
          EnsureDict();
          codes_.push_back(dict_->Intern(src.dict_->ValueOf(src.codes_[i])));
          PushNullBit(false);
        }
        ++size_;
      }
    }
  } else {
    // Mixed modes (or boxed): per-value append keeps demotion behavior
    // identical to a row-at-a-time build of the same sequence.
    for (size_t i = begin; i < end; ++i) Append(src.At(i));
  }
  assert(!fits || storage_ != mode_before ||
         data_before ==
                      (storage_ == Storage::kInt64
                           ? static_cast<const void*>(ints_.data())
                       : storage_ == Storage::kDouble
                           ? static_cast<const void*>(doubles_.data())
                       : storage_ == Storage::kDict
                           ? static_cast<const void*>(codes_.data())
                           : static_cast<const void*>(box_.data())));
}

void ColumnVector::AppendGather(const ColumnVector& src,
                                const std::vector<size_t>& rows) {
  if (rows.empty()) return;
  if (src.storage_ == storage_ && storage_ == Storage::kInt64) {
    for (size_t i : rows) {
      ints_.push_back(src.ints_[i]);
      PushNullBit(src.NullBit(i));
      ++size_;
    }
  } else if (src.storage_ == storage_ && storage_ == Storage::kDouble) {
    for (size_t i : rows) {
      doubles_.push_back(src.doubles_[i]);
      PushNullBit(src.NullBit(i));
      ++size_;
    }
  } else if (src.storage_ == storage_ && storage_ == Storage::kDict) {
    if (dict_ == nullptr && size_ == 0) dict_ = src.dict_;  // adopt
    if (dict_ == src.dict_) {
      for (size_t i : rows) {
        codes_.push_back(src.codes_[i]);
        PushNullBit(src.NullBit(i));
        ++size_;
      }
    } else {
      for (size_t i : rows) {
        if (src.NullBit(i)) {
          codes_.push_back(kNullCodeSlot);
          PushNullBit(true);
        } else {
          EnsureDict();
          codes_.push_back(dict_->Intern(src.dict_->ValueOf(src.codes_[i])));
          PushNullBit(false);
        }
        ++size_;
      }
    }
  } else {
    for (size_t i : rows) Append(src.At(i));
  }
}

void ColumnVector::EraseAtSwap(size_t i) {
  const size_t last = size_ - 1;
  if (storage_ == Storage::kBoxed) {
    if (i != last) box_[i] = std::move(box_[last]);
    box_.pop_back();
    --size_;
    return;
  }
  const bool erased_null = NullBit(i);
  const bool last_null = NullBit(last);
  switch (storage_) {
    case Storage::kInt64:
      ints_[i] = ints_[last];
      ints_.pop_back();
      break;
    case Storage::kDouble:
      doubles_[i] = doubles_[last];
      doubles_.pop_back();
      break;
    case Storage::kDict:
      codes_[i] = codes_[last];
      codes_.pop_back();
      break;
    case Storage::kBoxed:
      break;  // unreachable
  }
  if (last_null) {
    nulls_[i >> 6] |= uint64_t{1} << (i & 63);
  } else {
    nulls_[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }
  nulls_[last >> 6] &= ~(uint64_t{1} << (last & 63));
  if (erased_null) --null_count_;
  --size_;
  if (nulls_.size() > NullWordsFor(size_)) nulls_.pop_back();
}

size_t ColumnVector::ApproxBytes() const {
  size_t bytes = ints_.capacity() * sizeof(int64_t) +
                 doubles_.capacity() * sizeof(double) +
                 codes_.capacity() * sizeof(uint32_t) +
                 nulls_.capacity() * sizeof(uint64_t);
  if (storage_ == Storage::kBoxed) {
    bytes += box_.capacity() * sizeof(Value);
    for (const Value& v : box_) {
      if (v.type() == ValueType::kString) bytes += v.as_string().capacity();
    }
  }
  return bytes;
}

const char* ColumnVector::StorageName() const {
  switch (storage_) {
    case Storage::kInt64: return "int64";
    case Storage::kDouble: return "double";
    case Storage::kDict: return "dict";
    case Storage::kBoxed: return "boxed";
  }
  return "?";
}

}  // namespace sdelta::rel
