#ifndef SDELTA_RELATIONAL_CATALOG_H_
#define SDELTA_RELATIONAL_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/dictionary.h"
#include "relational/table.h"

namespace sdelta::rel {

/// A foreign-key declaration: fact_table.fact_column references
/// dim_table.dim_column, where dim_column is a key of dim_table. The
/// paper's algorithms rely on dimension joins being along foreign keys
/// (each fact tuple joins with exactly one dimension tuple).
struct ForeignKey {
  std::string fact_table;
  std::string fact_column;
  std::string dim_table;
  std::string dim_column;
};

/// A functional dependency within one dimension table
/// (e.g. stores: city -> region). Dimension hierarchies are sets of FDs.
struct FunctionalDependency {
  std::string table;
  std::string determinant;
  std::string dependent;
};

/// The warehouse metadata store: named tables plus the foreign keys and
/// functional dependencies the lattice algorithms need.
///
/// Tables live in a node-based map, so Table references remain valid as
/// other tables are added.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// Registers a table under its name. Duplicate names throw.
  Table& AddTable(Table table);

  bool HasTable(const std::string& name) const;
  Table& GetTable(const std::string& name);
  const Table& GetTable(const std::string& name) const;

  /// Names of all registered tables, sorted (stable for manifests).
  std::vector<std::string> TableNames() const;

  /// Declares fact_table.fact_column -> dim_table.dim_column. Both tables
  /// and columns must exist.
  void DeclareForeignKey(const std::string& fact_table,
                         const std::string& fact_column,
                         const std::string& dim_table,
                         const std::string& dim_column);

  /// Declares `determinant -> dependent` within `table`.
  void DeclareFunctionalDependency(const std::string& table,
                                   const std::string& determinant,
                                   const std::string& dependent);

  const std::vector<ForeignKey>& foreign_keys() const { return fks_; }
  const std::vector<FunctionalDependency>& functional_dependencies() const {
    return fds_;
  }

  /// The FK whose referencing side is fact_table.fact_column, or nullptr.
  const ForeignKey* FindForeignKey(const std::string& fact_table,
                                   const std::string& fact_column) const;

  /// All FKs declared on `fact_table`.
  std::vector<const ForeignKey*> ForeignKeysOf(
      const std::string& fact_table) const;

  /// FDs declared within `table`.
  std::vector<const FunctionalDependency*> DependenciesOf(
      const std::string& table) const;

  /// Transitive closure: the attributes of `table` functionally determined
  /// by `attribute` (excluding itself), e.g. FdClosure("stores","storeID")
  /// = {city, region} when storeID->city and city->region are declared.
  std::vector<std::string> FdClosure(const std::string& table,
                                     const std::string& attribute) const;

  /// Per-column string dictionaries, shared by every summary table so
  /// propagate and refresh agree on key codes across batches. Interning
  /// mutates the pool but not the catalog's logical contents, hence the
  /// const accessor; the pool sits behind a unique_ptr so dictionary
  /// references survive catalog moves.
  DictionaryPool& dictionaries() const { return *dictionaries_; }

 private:
  std::unordered_map<std::string, Table> tables_;
  std::unique_ptr<DictionaryPool> dictionaries_ =
      std::make_unique<DictionaryPool>();
  std::vector<ForeignKey> fks_;
  std::vector<FunctionalDependency> fds_;
};

}  // namespace sdelta::rel

#endif  // SDELTA_RELATIONAL_CATALOG_H_
