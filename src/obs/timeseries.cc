#include "obs/timeseries.h"

#include <algorithm>

namespace sdelta::obs {

const char* SampleKindName(SampleKind kind) {
  switch (kind) {
    case SampleKind::kCounter: return "counter";
    case SampleKind::kGauge: return "gauge";
    case SampleKind::kPercentile: return "percentile";
  }
  return "unknown";
}

uint32_t TimeSeriesStore::InternUnlocked(std::string_view name,
                                         SampleKind kind) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  const uint32_t idx = static_cast<uint32_t>(names_.size());
  names_.emplace_back(name);
  kinds_.push_back(kind);
  base_.push_back(0);
  base_present_.push_back(0);
  latest_.push_back(0);
  latest_present_.push_back(0);
  index_.emplace(names_.back(), idx);
  return idx;
}

void TimeSeriesStore::SampleUnlocked(Entry& entry, std::string_view name,
                                     SampleKind kind, double value) {
  const uint32_t idx = InternUnlocked(name, kind);
  if (latest_present_[idx] && latest_[idx] == value) return;
  entry.changes.emplace_back(idx, value);
  latest_[idx] = value;
  latest_present_[idx] = 1;
}

void TimeSeriesStore::Append(uint64_t batch_id,
                             const MetricsSnapshot& snapshot) {
  std::scoped_lock lock(mu_);
  Entry entry;
  entry.batch_id = batch_id;
  for (const auto& [name, value] : snapshot.counters) {
    SampleUnlocked(entry, name, SampleKind::kCounter,
                   static_cast<double>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    SampleUnlocked(entry, name, SampleKind::kGauge, value);
  }
  for (const auto& [name, h] : snapshot.histograms) {
    SampleUnlocked(entry, name + ".p50", SampleKind::kPercentile, h.P50());
    SampleUnlocked(entry, name + ".p95", SampleKind::kPercentile, h.P95());
    SampleUnlocked(entry, name + ".p99", SampleKind::kPercentile, h.P99());
  }
  entries_.push_back(std::move(entry));
  ++appended_;
  while (entries_.size() > capacity_) {
    // Fold the evicted entry's deltas into the base map so reconstruction
    // of the remaining window still starts from correct full values.
    for (const auto& [idx, value] : entries_.front().changes) {
      base_[idx] = value;
      base_present_[idx] = 1;
    }
    entries_.pop_front();
    ++dropped_;
  }
}

uint64_t TimeSeriesStore::appended() const {
  std::scoped_lock lock(mu_);
  return appended_;
}

uint64_t TimeSeriesStore::dropped() const {
  std::scoped_lock lock(mu_);
  return dropped_;
}

size_t TimeSeriesStore::size() const {
  std::scoped_lock lock(mu_);
  return entries_.size();
}

std::vector<std::pair<std::string, SampleKind>> TimeSeriesStore::SeriesNames()
    const {
  std::scoped_lock lock(mu_);
  std::vector<std::pair<std::string, SampleKind>> out;
  out.reserve(index_.size());
  for (const auto& [name, idx] : index_) out.emplace_back(name, kinds_[idx]);
  return out;
}

std::vector<TimeSeriesPoint> TimeSeriesStore::Query(std::string_view metric,
                                                    uint64_t from,
                                                    uint64_t to) const {
  std::scoped_lock lock(mu_);
  auto it = index_.find(metric);
  if (it == index_.end()) return {};
  const uint32_t idx = it->second;
  double value = base_[idx];
  bool present = base_present_[idx] != 0;
  std::vector<TimeSeriesPoint> out;
  for (const Entry& entry : entries_) {
    for (const auto& [ci, cv] : entry.changes) {
      if (ci == idx) {
        value = cv;
        present = true;
        break;
      }
    }
    if (present && entry.batch_id >= from && entry.batch_id <= to) {
      out.push_back(TimeSeriesPoint{entry.batch_id, value});
    }
  }
  return out;
}

Json TimeSeriesStore::ToJson() const {
  std::scoped_lock lock(mu_);
  Json doc = Json::Object();
  doc.Set("schema", Json::Str("sdelta.timeseries.v1"));
  doc.Set("capacity", Json::Int(static_cast<int64_t>(capacity_)));
  doc.Set("appended", Json::Int(static_cast<int64_t>(appended_)));
  doc.Set("dropped", Json::Int(static_cast<int64_t>(dropped_)));
  Json batches = Json::Array();
  for (const Entry& entry : entries_) {
    batches.Append(Json::Int(static_cast<int64_t>(entry.batch_id)));
  }
  doc.Set("batches", std::move(batches));

  // One forward reconstruction pass shared by all series: walk the
  // entries once, appending each series' running value per batch.
  const size_t n = names_.size();
  std::vector<double> value(base_);
  std::vector<char> present(base_present_);
  std::vector<Json> points(n, Json::Array());
  for (const Entry& entry : entries_) {
    for (const auto& [ci, cv] : entry.changes) {
      value[ci] = cv;
      present[ci] = 1;
    }
    for (size_t i = 0; i < n; ++i) {
      points[i].Append(present[i] ? Json::Double(value[i]) : Json());
    }
  }
  Json series = Json::Object();
  for (const auto& [name, idx] : index_) {  // map order = sorted by name
    Json s = Json::Object();
    s.Set("kind", Json::Str(SampleKindName(kinds_[idx])));
    s.Set("points", std::move(points[idx]));
    series.Set(name, std::move(s));
  }
  doc.Set("series", std::move(series));
  return doc;
}

void NormalizeTimeSeries(Json& doc) {
  Json* series = doc.FindMutable("series");
  if (series == nullptr || !series->is_object()) return;
  Json filtered = Json::Object();
  for (const auto& [name, value] : series->members()) {
    if (name.rfind("exec.", 0) == 0) continue;
    Json copy = value;
    const Json* kind = copy.Find("kind");
    if (kind == nullptr || kind->as_string() != "counter") {
      if (Json* points = copy.FindMutable("points")) {
        for (Json& p : points->items_mutable()) {
          if (p.kind() != Json::Kind::kNull) p = Json::Double(0);
        }
      }
    }
    filtered.Set(name, std::move(copy));
  }
  *series = std::move(filtered);
}

}  // namespace sdelta::obs
