#ifndef SDELTA_OBS_TRACE_H_
#define SDELTA_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

namespace sdelta::obs {

/// One completed (or still-open) span. Times are nanoseconds relative to
/// the tracer's epoch (steady clock), so traces are monotonic and
/// trivially rebased to zero for deterministic export.
struct SpanRecord {
  uint64_t id = 0;         ///< 1-based; 0 means "no span"
  uint64_t parent_id = 0;  ///< 0 for roots
  std::string name;
  uint64_t start_ns = 0;
  uint64_t end_ns = 0;  ///< 0 while the span is still open
  std::vector<std::pair<std::string, std::string>> attributes;

  double duration_seconds() const {
    return end_ns < start_ns ? 0 : static_cast<double>(end_ns - start_ns) * 1e-9;
  }
};

/// Collects a tree of timed spans. Parentage defaults to the innermost
/// open span (a stack, matching RAII nesting) but can be overridden per
/// span — the propagate plan parents each step on its *source view's*
/// span, which may have closed already, mirroring the D-lattice rather
/// than the call stack.
///
/// Like MetricsRegistry, a Tracer is passed as a nullable pointer; use
/// TraceSpan for null-safe RAII scoping.
///
/// Thread safety: all operations serialize on an internal mutex, and
/// the open-span stack is kept *per thread* — spans opened on a pool
/// worker nest against that worker's own RAII scopes, never against
/// another thread's. Work dispatched across threads (a propagate step,
/// a refresh view) passes its logical parent explicitly via the
/// two-argument BeginSpan, exactly as the D-lattice parenting already
/// does. The spans() accessor is a lock-free read for export code and
/// must only be called once parallel work has quiesced.
class Tracer {
 public:
  Tracer() : epoch_(std::chrono::steady_clock::now()) {}
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Opens a span; parent = the calling thread's innermost open span
  /// (0 if this thread has none open).
  uint64_t BeginSpan(std::string_view name);
  /// Opens a span with an explicit parent id (0 = root). The span still
  /// joins the calling thread's open-span stack so nested RAII spans
  /// attach beneath it.
  uint64_t BeginSpan(std::string_view name, uint64_t parent_id);
  /// Closes the span. Spans must close innermost-first (RAII order) on
  /// the thread that opened them.
  void EndSpan(uint64_t id);
  void AddAttribute(uint64_t id, std::string_view key, std::string_view value);

  /// All spans, in start order. Open spans have end_ns == 0.
  /// Quiesced-only (see class comment).
  const std::vector<SpanRecord>& spans() const { return spans_; }
  /// The calling thread's innermost open span id, 0 if none.
  uint64_t CurrentSpan() const;
  void Clear();

 private:
  uint64_t NowNs() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
  }

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  /// Open span ids per thread, outermost first. Entries are erased when
  /// a thread's stack drains so pool churn cannot grow the map.
  std::unordered_map<std::thread::id, std::vector<uint64_t>> stacks_;
};

/// RAII span scope that tolerates a null tracer: every member is a
/// single null check when tracing is disabled.
class TraceSpan {
 public:
  TraceSpan(Tracer* tracer, std::string_view name) : tracer_(tracer) {
    if (tracer_ != nullptr) id_ = tracer_->BeginSpan(name);
  }
  TraceSpan(Tracer* tracer, std::string_view name, uint64_t parent_id)
      : tracer_(tracer) {
    if (tracer_ != nullptr) id_ = tracer_->BeginSpan(name, parent_id);
  }
  ~TraceSpan() {
    if (tracer_ != nullptr) tracer_->EndSpan(id_);
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void Attr(std::string_view key, std::string_view value) {
    if (tracer_ != nullptr) tracer_->AddAttribute(id_, key, value);
  }
  // Without this overload a string-literal value would pick the bool
  // overload (pointer->bool is a standard conversion; ->string_view is
  // user-defined).
  void Attr(std::string_view key, const char* value) {
    if (tracer_ != nullptr) tracer_->AddAttribute(id_, key, value);
  }
  void Attr(std::string_view key, uint64_t value) {
    if (tracer_ != nullptr) {
      tracer_->AddAttribute(id_, key, std::to_string(value));
    }
  }
  void Attr(std::string_view key, bool value) {
    if (tracer_ != nullptr) {
      tracer_->AddAttribute(id_, key, value ? "true" : "false");
    }
  }

  /// This span's id (0 when tracing is disabled) — pass as an explicit
  /// parent to spans opened after this one closes.
  uint64_t id() const { return id_; }

 private:
  Tracer* tracer_;
  uint64_t id_ = 0;
};

}  // namespace sdelta::obs

#endif  // SDELTA_OBS_TRACE_H_
