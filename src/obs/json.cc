#include "obs/json.h"

#include <array>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace sdelta::obs {

Json Json::Bool(bool b) {
  Json j;
  j.kind_ = Kind::kBool;
  j.bool_ = b;
  return j;
}
Json Json::Int(int64_t i) {
  Json j;
  j.kind_ = Kind::kInt;
  j.int_ = i;
  return j;
}
Json Json::Double(double d) {
  Json j;
  j.kind_ = Kind::kDouble;
  j.double_ = d;
  return j;
}
Json Json::Str(std::string s) {
  Json j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(s);
  return j;
}
Json Json::Array() {
  Json j;
  j.kind_ = Kind::kArray;
  return j;
}
Json Json::Object() {
  Json j;
  j.kind_ = Kind::kObject;
  return j;
}

namespace {
[[noreturn]] void KindError(const char* want) {
  throw std::runtime_error(std::string("json: value is not ") + want);
}
}  // namespace

bool Json::as_bool() const {
  if (kind_ != Kind::kBool) KindError("a bool");
  return bool_;
}
int64_t Json::as_int() const {
  if (kind_ == Kind::kInt) return int_;
  if (kind_ == Kind::kDouble && double_ == std::floor(double_)) {
    return static_cast<int64_t>(double_);
  }
  KindError("an integer");
}
double Json::as_double() const {
  if (kind_ == Kind::kInt) return static_cast<double>(int_);
  if (kind_ == Kind::kDouble) return double_;
  KindError("a number");
}
const std::string& Json::as_string() const {
  if (kind_ != Kind::kString) KindError("a string");
  return string_;
}
const std::vector<Json>& Json::items() const {
  if (kind_ != Kind::kArray) KindError("an array");
  return items_;
}
std::vector<Json>& Json::items_mutable() {
  if (kind_ != Kind::kArray) KindError("an array");
  return items_;
}
const std::vector<Json::Member>& Json::members() const {
  if (kind_ != Kind::kObject) KindError("an object");
  return members_;
}

void Json::Append(Json value) {
  if (kind_ != Kind::kArray) KindError("an array");
  items_.push_back(std::move(value));
}

void Json::Set(std::string_view key, Json value) {
  if (kind_ != Kind::kObject) KindError("an object");
  for (Member& m : members_) {
    if (m.first == key) {
      m.second = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
}

const Json* Json::Find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

Json* Json::FindMutable(std::string_view key) {
  if (kind_ != Kind::kObject) return nullptr;
  for (Member& m : members_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

namespace {

void EscapeTo(std::string& out, const std::string& s) {
  out.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void NumberTo(std::string& out, double d) {
  if (!std::isfinite(d)) {
    // JSON has no inf/nan; null is the conventional stand-in.
    out += "null";
    return;
  }
  std::array<char, 32> buf;
  auto [end, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), d);
  out.append(buf.data(), end);
}

void Indent(std::string& out, int indent, int depth) {
  out.push_back('\n');
  out.append(static_cast<size_t>(indent) * depth, ' ');
}

}  // namespace

void Json::DumpTo(std::string& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      return;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::kInt:
      out += std::to_string(int_);
      return;
    case Kind::kDouble:
      NumberTo(out, double_);
      return;
    case Kind::kString:
      EscapeTo(out, string_);
      return;
    case Kind::kArray: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (indent >= 0) Indent(out, indent, depth + 1);
        items_[i].DumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) Indent(out, indent, depth);
      out.push_back(']');
      return;
    }
    case Kind::kObject: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      for (size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out.push_back(',');
        if (indent >= 0) Indent(out, indent, depth + 1);
        EscapeTo(out, members_[i].first);
        out.push_back(':');
        if (indent >= 0) out.push_back(' ');
        members_[i].second.DumpTo(out, indent, depth + 1);
      }
      if (indent >= 0) Indent(out, indent, depth);
      out.push_back('}');
      return;
    }
  }
}

std::string Json::Dump(int indent) const {
  std::string out;
  DumpTo(out, indent, 0);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json ParseDocument() {
    Json value = ParseValue();
    SkipWhitespace();
    if (pos_ != text_.size()) Fail("trailing characters");
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) {
    throw std::runtime_error("json parse error at byte " +
                             std::to_string(pos_) + ": " + what);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char Peek() {
    SkipWhitespace();
    if (pos_ >= text_.size()) Fail("unexpected end of input");
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) Fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Json ParseValue() {
    // The parser recurses per nesting level; adversarial input (the
    // /varz and /events payloads make this an external surface) must
    // not be able to overflow the stack.
    if (depth_ >= kMaxDepth) Fail("nesting too deep");
    switch (Peek()) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': return Json::Str(ParseString());
      case 't':
        if (Literal("true")) return Json::Bool(true);
        Fail("bad literal");
      case 'f':
        if (Literal("false")) return Json::Bool(false);
        Fail("bad literal");
      case 'n':
        if (Literal("null")) return Json();
        Fail("bad literal");
      default: return ParseNumber();
    }
  }

  Json ParseObject() {
    Expect('{');
    ++depth_;
    Json obj = Json::Object();
    if (Peek() == '}') {
      ++pos_;
      --depth_;
      return obj;
    }
    while (true) {
      if (Peek() != '"') Fail("expected object key");
      std::string key = ParseString();
      Expect(':');
      obj.Set(key, ParseValue());
      const char c = Peek();
      ++pos_;
      if (c == '}') {
        --depth_;
        return obj;
      }
      if (c != ',') Fail("expected ',' or '}'");
    }
  }

  Json ParseArray() {
    Expect('[');
    ++depth_;
    Json arr = Json::Array();
    if (Peek() == ']') {
      ++pos_;
      --depth_;
      return arr;
    }
    while (true) {
      arr.Append(ParseValue());
      const char c = Peek();
      ++pos_;
      if (c == ']') {
        --depth_;
        return arr;
      }
      if (c != ',') Fail("expected ',' or ']'");
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) Fail("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) Fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else Fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point. Surrogates are rejected
          // rather than CESU-8-encoded: our exporters never emit them,
          // and passing one through would hand invalid UTF-8 to
          // downstream consumers of the external /varz//events surface.
          if (code >= 0xD800 && code <= 0xDFFF) {
            pos_ -= 4;
            Fail("surrogate \\u escape");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: Fail("bad escape");
      }
    }
  }

  Json ParseNumber() {
    const size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (!ValidNumberToken(tok)) Fail("bad number");
    if (!is_double) {
      int64_t v = 0;
      auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), v);
      if (ec == std::errc() && p == tok.data() + tok.size()) {
        return Json::Int(v);
      }
    }
    double d = 0;
    auto [p, ec] = std::from_chars(tok.data(), tok.data() + tok.size(), d);
    if (ec != std::errc() || p != tok.data() + tok.size()) Fail("bad number");
    return Json::Double(d);
  }

  /// The JSON number grammar, enforced before handing the token to
  /// from_chars — which is laxer (it accepts ".5", "01", "1.") and
  /// would silently admit near-JSON from other producers.
  static bool ValidNumberToken(std::string_view tok) {
    size_t i = 0;
    if (i < tok.size() && tok[i] == '-') ++i;
    if (i >= tok.size() || tok[i] < '0' || tok[i] > '9') return false;
    if (tok[i] == '0') {
      ++i;  // a leading zero must stand alone
    } else {
      while (i < tok.size() && tok[i] >= '0' && tok[i] <= '9') ++i;
    }
    if (i < tok.size() && tok[i] == '.') {
      ++i;
      if (i >= tok.size() || tok[i] < '0' || tok[i] > '9') return false;
      while (i < tok.size() && tok[i] >= '0' && tok[i] <= '9') ++i;
    }
    if (i < tok.size() && (tok[i] == 'e' || tok[i] == 'E')) {
      ++i;
      if (i < tok.size() && (tok[i] == '+' || tok[i] == '-')) ++i;
      if (i >= tok.size() || tok[i] < '0' || tok[i] > '9') return false;
      while (i < tok.size() && tok[i] >= '0' && tok[i] <= '9') ++i;
    }
    return i == tok.size();
  }

  /// Nesting cap: far above any document we produce, far below the
  /// ~tens-of-thousands of frames that would actually smash the stack.
  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

Json Json::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace sdelta::obs
