#ifndef SDELTA_OBS_EXPORT_JSON_H_
#define SDELTA_OBS_EXPORT_JSON_H_

#include <string>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sdelta::obs {

struct JsonExportOptions {
  /// Rebase span timestamps so the earliest start is 0. Durations are
  /// still wall-clock; golden tests additionally zero them (see
  /// NormalizeSpanTimes) to compare structure only.
  bool rebase_timestamps = true;
  /// Pretty-print indent for Dump(); -1 = compact.
  int indent = 2;
};

/// Deterministic-schema export of a metrics snapshot:
///   {"counters": {...sorted...}, "gauges": {...}, "histograms":
///    {"name": {"count":n,"sum":s,"min":m,"max":M,"mean":u,
///              "p50":a,"p95":b,"p99":c}}}
Json MetricsToJson(const MetricsSnapshot& snapshot);
/// Convenience overload: snapshots the registry first (safe while pool
/// workers are still recording).
Json MetricsToJson(const MetricsRegistry& metrics);

/// Deterministic-schema export of a span tree (start order):
///   [{"id":1,"parent":0,"name":"...","start_us":t,"dur_us":d,
///     "attrs":{"k":"v"}}, ...]
Json SpansToJson(const Tracer& tracer, bool rebase_timestamps = true);

/// Combined document: {"schema":"sdelta.obs.v2","metrics":...,"spans":...}.
/// Either source may be null; absent sections are omitted. v2 added
/// histogram percentiles (p50/p95/p99) to the v1 layout.
std::string ExportJson(const MetricsRegistry* metrics, const Tracer* tracer,
                       const JsonExportOptions& options = {});

/// Zeroes "start_us"/"dur_us" in a SpansToJson document (in place) so
/// two runs of the same workload compare byte-identical.
void NormalizeSpanTimes(Json& doc);

/// Reads/writes a whole file; Write throws std::runtime_error on IO
/// failure, Read returns false when the file does not exist.
void WriteFile(const std::string& path, const std::string& contents);
bool ReadFile(const std::string& path, std::string& contents);

/// Merge-writer for the BENCH_*.json perf-trajectory files. The file is
///   {"schema":"sdelta.bench.v1","bench":"<name>","entries":[{...},...]}
/// Each entry is one measurement cell; `key_fields` identify a cell
/// (e.g. {"panel","series","pos_rows","change_rows"}). Entries from
/// `fresh` replace same-key entries already in the file, other existing
/// entries are preserved (so fig9a..d accumulate into one file), and
/// the result is sorted by key for deterministic diffs. A malformed or
/// missing file is treated as empty.
void MergeBenchJson(const std::string& path, const std::string& bench_name,
                    const std::vector<std::string>& key_fields,
                    const std::vector<Json>& fresh);

}  // namespace sdelta::obs

#endif  // SDELTA_OBS_EXPORT_JSON_H_
