#ifndef SDELTA_OBS_JSON_H_
#define SDELTA_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sdelta::obs {

/// A minimal JSON document: build, serialize, parse. Exists so the
/// exporters and the BENCH_*.json merge-writer need no third-party
/// dependency. Objects preserve insertion order (the exporters insert
/// keys in sorted/deterministic order themselves), and serialization is
/// byte-deterministic for identical documents, which the golden-file
/// tests rely on.
class Json {
 public:
  enum class Kind { kNull, kBool, kInt, kDouble, kString, kArray, kObject };
  using Member = std::pair<std::string, Json>;

  Json() : kind_(Kind::kNull) {}
  static Json Bool(bool b);
  static Json Int(int64_t i);
  static Json Double(double d);
  static Json Str(std::string s);
  static Json Array();
  static Json Object();

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  bool as_bool() const;
  int64_t as_int() const;     ///< kInt, or kDouble with integral value
  double as_double() const;   ///< kInt or kDouble
  const std::string& as_string() const;
  const std::vector<Json>& items() const;        ///< array elements
  std::vector<Json>& items_mutable();
  const std::vector<Member>& members() const;    ///< object members

  /// Array append / object set (replaces an existing key).
  void Append(Json value);
  void Set(std::string_view key, Json value);
  /// Object lookup; nullptr when absent or not an object.
  const Json* Find(std::string_view key) const;
  Json* FindMutable(std::string_view key);

  /// Serializes. indent < 0: compact one-line form; indent >= 0: pretty
  /// with that many spaces per level. Doubles print via shortest
  /// round-trip (std::to_chars), so dumps are stable across runs.
  std::string Dump(int indent = -1) const;

  /// Parses a complete JSON document; throws std::runtime_error with a
  /// byte offset on malformed input. Hardened for untrusted input: a
  /// 256-level nesting cap (no stack overflow on "[[[[...."), range-
  /// checked numbers, and surrogate \u escapes rejected instead of
  /// decoded to invalid UTF-8.
  static Json Parse(std::string_view text);

 private:
  void DumpTo(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<Json> items_;
  std::vector<Member> members_;
};

}  // namespace sdelta::obs

#endif  // SDELTA_OBS_JSON_H_
