#include "obs/export_json.h"

#include <algorithm>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace sdelta::obs {

Json MetricsToJson(const MetricsSnapshot& snapshot) {
  Json doc = Json::Object();
  Json counters = Json::Object();
  for (const auto& [name, v] : snapshot.counters) {
    counters.Set(name, Json::Int(static_cast<int64_t>(v)));
  }
  Json gauges = Json::Object();
  for (const auto& [name, v] : snapshot.gauges) {
    gauges.Set(name, Json::Double(v));
  }
  Json histograms = Json::Object();
  for (const auto& [name, h] : snapshot.histograms) {
    Json entry = Json::Object();
    entry.Set("count", Json::Int(static_cast<int64_t>(h.count)));
    entry.Set("sum", Json::Double(h.sum));
    entry.Set("min", Json::Double(h.count == 0 ? 0 : h.min));
    entry.Set("max", Json::Double(h.count == 0 ? 0 : h.max));
    entry.Set("mean", Json::Double(h.Mean()));
    entry.Set("p50", Json::Double(h.P50()));
    entry.Set("p95", Json::Double(h.P95()));
    entry.Set("p99", Json::Double(h.P99()));
    histograms.Set(name, std::move(entry));
  }
  doc.Set("counters", std::move(counters));
  doc.Set("gauges", std::move(gauges));
  doc.Set("histograms", std::move(histograms));
  return doc;
}

Json MetricsToJson(const MetricsRegistry& metrics) {
  return MetricsToJson(metrics.Snapshot());
}

Json SpansToJson(const Tracer& tracer, bool rebase_timestamps) {
  uint64_t base = 0;
  if (rebase_timestamps) {
    base = std::numeric_limits<uint64_t>::max();
    for (const SpanRecord& s : tracer.spans()) base = std::min(base, s.start_ns);
    if (tracer.spans().empty()) base = 0;
  }
  Json arr = Json::Array();
  for (const SpanRecord& s : tracer.spans()) {
    Json span = Json::Object();
    span.Set("id", Json::Int(static_cast<int64_t>(s.id)));
    span.Set("parent", Json::Int(static_cast<int64_t>(s.parent_id)));
    span.Set("name", Json::Str(s.name));
    span.Set("start_us",
             Json::Int(static_cast<int64_t>((s.start_ns - base) / 1000)));
    const uint64_t end = s.end_ns == 0 ? s.start_ns : s.end_ns;
    span.Set("dur_us", Json::Int(static_cast<int64_t>(
                           (end - s.start_ns) / 1000)));
    Json attrs = Json::Object();
    for (const auto& [k, v] : s.attributes) attrs.Set(k, Json::Str(v));
    span.Set("attrs", std::move(attrs));
    arr.Append(std::move(span));
  }
  return arr;
}

std::string ExportJson(const MetricsRegistry* metrics, const Tracer* tracer,
                       const JsonExportOptions& options) {
  Json doc = Json::Object();
  doc.Set("schema", Json::Str("sdelta.obs.v2"));
  if (metrics != nullptr) doc.Set("metrics", MetricsToJson(*metrics));
  if (tracer != nullptr) {
    doc.Set("spans", SpansToJson(*tracer, options.rebase_timestamps));
  }
  return doc.Dump(options.indent);
}

void NormalizeSpanTimes(Json& doc) {
  if (doc.is_array()) {
    // A bare SpansToJson array.
    for (Json& span : doc.items_mutable()) {
      if (span.FindMutable("start_us") != nullptr) {
        span.Set("start_us", Json::Int(0));
        span.Set("dur_us", Json::Int(0));
      }
    }
    return;
  }
  Json* spans = doc.FindMutable("spans");
  if (spans != nullptr) NormalizeSpanTimes(*spans);
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open for write: " + path);
  out << contents;
  if (!out) throw std::runtime_error("write failed: " + path);
}

bool ReadFile(const std::string& path, std::string& contents) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  contents = ss.str();
  return true;
}

namespace {

/// The dedup/sort key of a bench entry: its key fields' compact dumps,
/// unit-separated (deterministic, collision-free for sane field values).
std::string EntryKey(const Json& entry,
                     const std::vector<std::string>& key_fields) {
  std::string key;
  for (const std::string& f : key_fields) {
    const Json* v = entry.Find(f);
    key += (v == nullptr ? std::string("null") : v->Dump());
    key.push_back('\x1f');
  }
  return key;
}

}  // namespace

void MergeBenchJson(const std::string& path, const std::string& bench_name,
                    const std::vector<std::string>& key_fields,
                    const std::vector<Json>& fresh) {
  std::vector<std::pair<std::string, Json>> merged;  // key -> entry
  auto upsert = [&](const Json& entry) {
    std::string key = EntryKey(entry, key_fields);
    for (auto& [k, e] : merged) {
      if (k == key) {
        e = entry;
        return;
      }
    }
    merged.emplace_back(std::move(key), entry);
  };

  std::string previous;
  if (ReadFile(path, previous)) {
    try {
      Json old = Json::Parse(previous);
      const Json* entries = old.Find("entries");
      if (entries != nullptr && entries->is_array()) {
        for (const Json& e : entries->items()) upsert(e);
      }
    } catch (const std::runtime_error&) {
      // Malformed previous file: start fresh rather than fail the bench.
    }
  }
  for (const Json& e : fresh) upsert(e);

  std::sort(merged.begin(), merged.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  Json doc = Json::Object();
  doc.Set("schema", Json::Str("sdelta.bench.v1"));
  doc.Set("bench", Json::Str(bench_name));
  Json arr = Json::Array();
  for (auto& [k, e] : merged) arr.Append(std::move(e));
  doc.Set("entries", std::move(arr));
  WriteFile(path, doc.Dump(1) + "\n");
}

}  // namespace sdelta::obs
