#include "obs/trace.h"

#include <stdexcept>

namespace sdelta::obs {

uint64_t Tracer::BeginSpan(std::string_view name) {
  return BeginSpan(name, CurrentSpan());
}

uint64_t Tracer::BeginSpan(std::string_view name, uint64_t parent_id) {
  SpanRecord span;
  span.id = spans_.size() + 1;
  span.parent_id = parent_id;
  span.name = std::string(name);
  span.start_ns = NowNs();
  spans_.push_back(std::move(span));
  stack_.push_back(spans_.back().id);
  return spans_.back().id;
}

void Tracer::EndSpan(uint64_t id) {
  if (id == 0 || id > spans_.size()) {
    throw std::logic_error("Tracer::EndSpan: unknown span id");
  }
  if (stack_.empty() || stack_.back() != id) {
    throw std::logic_error("Tracer::EndSpan: spans must close in LIFO order (" +
                           spans_[id - 1].name + ")");
  }
  stack_.pop_back();
  spans_[id - 1].end_ns = NowNs();
}

void Tracer::AddAttribute(uint64_t id, std::string_view key,
                          std::string_view value) {
  if (id == 0 || id > spans_.size()) {
    throw std::logic_error("Tracer::AddAttribute: unknown span id");
  }
  spans_[id - 1].attributes.emplace_back(std::string(key), std::string(value));
}

void Tracer::Clear() {
  spans_.clear();
  stack_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

}  // namespace sdelta::obs
