#include "obs/trace.h"

#include <stdexcept>

namespace sdelta::obs {

uint64_t Tracer::BeginSpan(std::string_view name) {
  return BeginSpan(name, CurrentSpan());
}

uint64_t Tracer::BeginSpan(std::string_view name, uint64_t parent_id) {
  std::scoped_lock lock(mu_);
  SpanRecord span;
  span.id = spans_.size() + 1;
  span.parent_id = parent_id;
  span.name = std::string(name);
  span.start_ns = NowNs();
  spans_.push_back(std::move(span));
  stacks_[std::this_thread::get_id()].push_back(spans_.back().id);
  return spans_.back().id;
}

void Tracer::EndSpan(uint64_t id) {
  std::scoped_lock lock(mu_);
  if (id == 0 || id > spans_.size()) {
    throw std::logic_error("Tracer::EndSpan: unknown span id");
  }
  auto it = stacks_.find(std::this_thread::get_id());
  if (it == stacks_.end() || it->second.empty() || it->second.back() != id) {
    throw std::logic_error("Tracer::EndSpan: spans must close in LIFO order (" +
                           spans_[id - 1].name + ")");
  }
  it->second.pop_back();
  if (it->second.empty()) stacks_.erase(it);
  spans_[id - 1].end_ns = NowNs();
}

void Tracer::AddAttribute(uint64_t id, std::string_view key,
                          std::string_view value) {
  std::scoped_lock lock(mu_);
  if (id == 0 || id > spans_.size()) {
    throw std::logic_error("Tracer::AddAttribute: unknown span id");
  }
  spans_[id - 1].attributes.emplace_back(std::string(key), std::string(value));
}

uint64_t Tracer::CurrentSpan() const {
  std::scoped_lock lock(mu_);
  auto it = stacks_.find(std::this_thread::get_id());
  return it == stacks_.end() || it->second.empty() ? 0 : it->second.back();
}

void Tracer::Clear() {
  std::scoped_lock lock(mu_);
  spans_.clear();
  stacks_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

}  // namespace sdelta::obs
