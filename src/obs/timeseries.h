#ifndef SDELTA_OBS_TIMESERIES_H_
#define SDELTA_OBS_TIMESERIES_H_

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"

namespace sdelta::obs {

/// What a time-series sample was derived from. Counters are covered by
/// the determinism contract (byte-identical across thread counts for a
/// deterministic workload); gauges and histogram percentiles are mostly
/// timings, so the normalized export zeroes them.
enum class SampleKind { kCounter, kGauge, kPercentile };

/// Stable wire name ("counter" / "gauge" / "percentile").
const char* SampleKindName(SampleKind kind);

/// One reconstructed sample of a series.
struct TimeSeriesPoint {
  uint64_t batch_id = 0;
  double value = 0;
};

/// Fixed-capacity, delta-encoded ring of per-batch metric snapshots —
/// the service's longitudinal performance memory (DESIGN.md §13). The
/// maintenance thread appends one record per epoch install covering
/// every counter, every gauge, and each histogram's P50/P95/P99 (as
/// `<name>.p50` etc.); the anomaly detector, the /timeseries route, and
/// the shell's `history` command read it back.
///
/// Storage: each ring entry holds only the series whose value *changed*
/// since the previous append (plus a full-value base map representing
/// the state just before the oldest retained entry, folded forward on
/// eviction). Counters that did not move and idle gauges cost nothing
/// per batch, so hundreds of batches of history stay small.
///
/// Thread safety: all operations serialize on an internal mutex; reads
/// return copies / documents, never references into the ring.
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(size_t capacity = 512)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /// Records one per-batch snapshot. Batch ids must be appended in
  /// increasing order (the maintenance thread's drain order).
  void Append(uint64_t batch_id, const MetricsSnapshot& snapshot);

  size_t capacity() const { return capacity_; }
  /// Entries appended since construction (including evicted ones).
  uint64_t appended() const;
  /// Entries evicted by ring wrap-around.
  uint64_t dropped() const;
  /// Entries currently retained.
  size_t size() const;

  /// All known series names (sorted), with their kinds.
  std::vector<std::pair<std::string, SampleKind>> SeriesNames() const;

  /// Reconstructs `metric` over the retained window, restricted to
  /// batch ids in [from, to]. Batches where the series did not exist
  /// yet produce no point. Unknown metrics return an empty vector.
  std::vector<TimeSeriesPoint> Query(
      std::string_view metric, uint64_t from = 0,
      uint64_t to = std::numeric_limits<uint64_t>::max()) const;

  /// The sdelta.timeseries.v1 document: schema, capacity/appended/
  /// dropped, the retained batch ids, and one dense per-series points
  /// array (null where the series did not exist yet), series sorted by
  /// name. Deterministic for identical append sequences.
  Json ToJson() const;

 private:
  struct Entry {
    uint64_t batch_id = 0;
    /// (series index, new value) for series that changed this batch.
    std::vector<std::pair<uint32_t, double>> changes;
  };

  /// Interns a series name; first use fixes its kind.
  uint32_t InternUnlocked(std::string_view name, SampleKind kind);
  void SampleUnlocked(Entry& entry, std::string_view name, SampleKind kind,
                      double value);

  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<std::string> names_;            ///< index -> series name
  std::vector<SampleKind> kinds_;             ///< parallel to names_
  std::map<std::string, uint32_t, std::less<>> index_;
  /// Full values as of just before the oldest retained entry.
  std::vector<double> base_;
  std::vector<char> base_present_;
  /// Latest appended value per series (the delta-encoding reference).
  std::vector<double> latest_;
  std::vector<char> latest_present_;
  std::deque<Entry> entries_;
  uint64_t appended_ = 0;
  uint64_t dropped_ = 0;
};

/// Normalizes a sdelta.timeseries.v1 document in place for golden
/// comparisons across thread counts: drops every `exec.*` series (the
/// pool's series only exist when a pool is attached, and per-worker
/// names vary with its size) and zeroes the points of every non-counter
/// series (gauges and percentiles carry timings). Counter values are
/// kept — the determinism contract makes them thread-count invariant.
void NormalizeTimeSeries(Json& doc);

}  // namespace sdelta::obs

#endif  // SDELTA_OBS_TIMESERIES_H_
