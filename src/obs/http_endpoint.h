#ifndef SDELTA_OBS_HTTP_ENDPOINT_H_
#define SDELTA_OBS_HTTP_ENDPOINT_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

namespace sdelta::obs {

/// One parsed request. Only the pieces a scrape endpoint needs: method,
/// path (query string split off), raw query string. Bodies are ignored
/// (GET-only surface).
struct HttpRequest {
  std::string method;
  std::string path;
  std::string query;
};

/// Handler return value. `content_type` defaults to JSON because every
/// route except /metrics serves a JSON document.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::string body;
};

/// A deliberately tiny embedded HTTP/1.0 scrape server (DESIGN.md
/// §11.2): one POSIX listen socket on 127.0.0.1, one acceptor thread,
/// requests handled sequentially on that thread, every response sent
/// with Content-Length + Connection: close. No third-party
/// dependencies, no TLS, no keep-alive — it exists so a running
/// WarehouseService can be observed with curl/Prometheus, not to serve
/// traffic. Per-connection I/O is bounded (reads poll against the stop
/// wake-pipe with a 5s budget, writes carry SO_SNDTIMEO), so a client
/// that connects and stalls is dropped instead of parking the acceptor
/// thread or blocking Stop().
///
/// Handlers run on the acceptor thread and must be thread-safe against
/// the service's own threads (the service routes only call snapshot/
/// export surfaces that already are). Registration is not synchronized
/// with serving: add all routes before Start().
class HttpEndpoint {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpEndpoint() = default;
  ~HttpEndpoint();
  HttpEndpoint(const HttpEndpoint&) = delete;
  HttpEndpoint& operator=(const HttpEndpoint&) = delete;

  /// Registers a handler for an exact path ("/metrics"). Call before
  /// Start().
  void Route(std::string path, Handler handler);

  /// Binds 127.0.0.1:`port` (0 = kernel-assigned ephemeral port), starts
  /// the acceptor thread. Throws std::runtime_error when the bind/listen
  /// fails (e.g. port in use). Idempotence: Start on a started endpoint
  /// throws std::logic_error.
  void Start(uint16_t port);

  /// Stops accepting, closes the socket, joins the acceptor thread.
  /// Idempotent; the destructor calls it.
  void Stop();

  bool running() const { return running_; }
  /// The actually bound port (resolves port 0); 0 before Start.
  uint16_t port() const { return port_; }

  /// Requests served since Start (404s included).
  uint64_t requests_served() const;

 private:
  void AcceptLoop();
  void HandleConnection(int fd);

  std::map<std::string, Handler> routes_;
  std::thread acceptor_;
  std::atomic<bool> running_{false};
  uint16_t port_ = 0;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: Stop() wakes poll()
  mutable std::mutex stats_mu_;
  uint64_t requests_served_ = 0;
};

}  // namespace sdelta::obs

#endif  // SDELTA_OBS_HTTP_ENDPOINT_H_
