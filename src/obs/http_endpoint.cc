#include "obs/http_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace sdelta::obs {

namespace {

constexpr size_t kMaxRequestBytes = 16 * 1024;  ///< scrape requests are tiny

/// Per-connection I/O budget. A client that connects and then stalls
/// (never finishes its request head, never drains the response) must
/// not park the single acceptor thread — after this long it is dropped.
constexpr int kIoTimeoutMs = 5000;

/// Waits until `fd` is readable, the wake pipe fires (Stop wants the
/// acceptor thread back), or the timeout lapses. Returns true only when
/// `fd` itself has bytes (or EOF/error) to read; the wake byte is left
/// in the pipe for AcceptLoop's own poll.
bool WaitReadable(int fd, int wake_fd, int timeout_ms) {
  while (true) {
    pollfd fds[2];
    fds[0] = {fd, POLLIN, 0};
    fds[1] = {wake_fd, POLLIN, 0};
    const int rc = ::poll(fds, 2, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (rc == 0) return false;              // stalled client: give up
    if (fds[1].revents != 0) return false;  // shutdown in progress
    return (fds[0].revents & (POLLIN | POLLHUP | POLLERR)) != 0;
  }
}

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 503: return "Service Unavailable";
    default: return "OK";
  }
}

/// Blocking full write (the sockets are blocking with SO_SNDTIMEO;
/// a peer that stops draining makes write() fail with EAGAIN after the
/// timeout and the response is abandoned).
void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return;  // peer went away or stalled; nothing useful to do
    }
    off += static_cast<size_t>(n);
  }
}

/// Reads until the end of the request head ("\r\n\r\n"), EOF, or the
/// size cap, polling against the wake pipe and the I/O timeout before
/// every read. Returns false on a connection that never produced a
/// complete head.
bool ReadHead(int fd, int wake_fd, std::string& head) {
  char buf[2048];
  while (head.size() < kMaxRequestBytes) {
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      return true;
    }
    if (!WaitReadable(fd, wake_fd, kIoTimeoutMs)) return false;
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return !head.empty();
    head.append(buf, static_cast<size_t>(n));
  }
  return true;
}

/// Parses "GET /path?query HTTP/1.x" out of the head's first line.
bool ParseRequestLine(const std::string& head, HttpRequest& out) {
  const size_t eol = head.find_first_of("\r\n");
  const std::string line = head.substr(0, eol);
  const size_t sp1 = line.find(' ');
  if (sp1 == std::string::npos) return false;
  const size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string::npos) return false;
  out.method = line.substr(0, sp1);
  std::string target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  if (target.empty() || target[0] != '/') return false;
  const size_t q = target.find('?');
  out.path = target.substr(0, q);
  out.query = q == std::string::npos ? std::string() : target.substr(q + 1);
  return true;
}

}  // namespace

HttpEndpoint::~HttpEndpoint() { Stop(); }

void HttpEndpoint::Route(std::string path, Handler handler) {
  if (running_) {
    throw std::logic_error("http: Route after Start");
  }
  routes_[std::move(path)] = std::move(handler);
}

void HttpEndpoint::Start(uint16_t port) {
  if (running_) throw std::logic_error("http: already started");

  if (::pipe(wake_fds_) != 0) {
    throw std::runtime_error(std::string("http: pipe: ") +
                             std::strerror(errno));
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error(std::string("http: socket: ") +
                             std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);  // observability is local
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
          0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    ::close(wake_fds_[0]);
    ::close(wake_fds_[1]);
    wake_fds_[0] = wake_fds_[1] = -1;
    throw std::runtime_error("http: bind/listen 127.0.0.1:" +
                             std::to_string(port) + ": " + err);
  }

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  running_ = true;
  acceptor_ = std::thread(&HttpEndpoint::AcceptLoop, this);
}

void HttpEndpoint::Stop() {
  if (!running_.exchange(false)) return;
  // Wake the poll() even when no connection ever arrives.
  const char byte = 'x';
  (void)!::write(wake_fds_[1], &byte, 1);
  if (acceptor_.joinable()) acceptor_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  ::close(wake_fds_[0]);
  ::close(wake_fds_[1]);
  wake_fds_[0] = wake_fds_[1] = -1;
  port_ = 0;
}

uint64_t HttpEndpoint::requests_served() const {
  std::scoped_lock lock(stats_mu_);
  return requests_served_;
}

void HttpEndpoint::AcceptLoop() {
  while (running_) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {wake_fds_[0], POLLIN, 0};
    const int rc = ::poll(fds, 2, /*timeout_ms=*/-1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents != 0) break;  // Stop() wrote the wake byte
    if ((fds[0].revents & POLLIN) == 0) continue;
    const int conn = ::accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // Bound the response write: reads are guarded by WaitReadable, and
    // this keeps a non-draining peer from blocking WriteAll forever.
    timeval tv{};
    tv.tv_sec = kIoTimeoutMs / 1000;
    tv.tv_usec = (kIoTimeoutMs % 1000) * 1000;
    ::setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    HandleConnection(conn);
    ::close(conn);
  }
}

void HttpEndpoint::HandleConnection(int fd) {
  std::string head;
  if (!ReadHead(fd, wake_fds_[0], head)) return;

  HttpRequest req;
  HttpResponse resp;
  if (!ParseRequestLine(head, req)) {
    resp.status = 400;
    resp.content_type = "text/plain";
    resp.body = "bad request\n";
  } else if (req.method != "GET" && req.method != "HEAD") {
    resp.status = 405;
    resp.content_type = "text/plain";
    resp.body = "only GET is served here\n";
  } else {
    auto it = routes_.find(req.path);
    if (it == routes_.end()) {
      resp.status = 404;
      resp.content_type = "text/plain";
      resp.body = "unknown route " + req.path + "\n";
    } else {
      try {
        resp = it->second(req);
      } catch (const std::exception& e) {
        resp.status = 503;
        resp.content_type = "text/plain";
        resp.body = std::string("handler error: ") + e.what() + "\n";
      }
    }
  }

  std::string out = "HTTP/1.0 " + std::to_string(resp.status) + " " +
                    StatusText(resp.status) + "\r\n";
  out += "Content-Type: " + resp.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(resp.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  if (req.method != "HEAD") out += resp.body;
  WriteAll(fd, out);

  std::scoped_lock lock(stats_mu_);
  ++requests_served_;
}

}  // namespace sdelta::obs
