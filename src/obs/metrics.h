#ifndef SDELTA_OBS_METRICS_H_
#define SDELTA_OBS_METRICS_H_

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <string_view>

namespace sdelta::obs {

/// Accumulated distribution of observed values (timings, cardinalities).
/// Summary statistics only — enough for the JSON export and for benches
/// to report means; full bucketing would buy little at our scales.
struct Histogram {
  uint64_t count = 0;
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Observe(double v) {
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
  }
  double Mean() const { return count == 0 ? 0 : sum / static_cast<double>(count); }
};

/// A registry of named counters, gauges, and histograms.
///
/// Naming convention: dotted lower-case paths, subsystem first —
///   propagate.rows_scanned, propagate.delta_rows, refresh.updates,
///   refresh.minmax_recomputes, plan.edge_cost, answer.view_hits, ...
/// The same name must always be used with the same instrument kind.
///
/// The registry is passed around as a nullable pointer; every
/// instrumentation site guards with a single null check, so the
/// disabled path costs one branch. Maps are ordered so exports are
/// deterministic.
class MetricsRegistry {
 public:
  /// Counter: monotonically increasing event count.
  void Add(std::string_view name, uint64_t delta = 1) {
    Find(counters_, name) += delta;
  }

  /// Gauge: last-written value (e.g. the most recent batch's seconds).
  void Set(std::string_view name, double value) {
    Find(gauges_, name) = value;
  }

  /// Histogram: accumulate a value distribution.
  void Observe(std::string_view name, double value) {
    Find(histograms_, name).Observe(value);
  }

  /// Reads return the zero value for names never written.
  uint64_t counter(std::string_view name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  double gauge(std::string_view name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second;
  }
  Histogram histogram(std::string_view name) const {
    auto it = histograms_.find(name);
    return it == histograms_.end() ? Histogram{} : it->second;
  }

  template <typename V>
  using Series = std::map<std::string, V, std::less<>>;

  const Series<uint64_t>& counters() const { return counters_; }
  const Series<double>& gauges() const { return gauges_; }
  const Series<Histogram>& histograms() const { return histograms_; }

  bool empty() const {
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  void Clear() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

  /// Folds another registry's series into this one (counters add,
  /// gauges overwrite, histograms merge) — used to aggregate per-worker
  /// registries once parallel maintenance lands.
  void MergeFrom(const MetricsRegistry& other);

 private:
  template <typename V>
  static V& Find(Series<V>& series, std::string_view name) {
    auto it = series.find(name);
    if (it == series.end()) {
      it = series.emplace(std::string(name), V{}).first;
    }
    return it->second;
  }

  Series<uint64_t> counters_;
  Series<double> gauges_;
  Series<Histogram> histograms_;
};

}  // namespace sdelta::obs

#endif  // SDELTA_OBS_METRICS_H_
