#ifndef SDELTA_OBS_METRICS_H_
#define SDELTA_OBS_METRICS_H_

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace sdelta::obs {

/// Accumulated distribution of observed values (timings, cardinalities).
/// Keeps summary statistics plus a fixed array of base-2 exponential
/// buckets, so percentile queries need no per-observation storage.
///
/// Bucket i covers (2^(i-33), 2^(i-32)] — i.e. bucket upper bounds run
/// from 2^-32 (~2.3e-10, below any timing we care about) to 2^31
/// (~2.1e9, above any cardinality we produce). Values at or below the
/// smallest bound (including zero and negatives) land in bucket 0;
/// values beyond the largest land in the final bucket. Percentiles
/// interpolate linearly within the answering bucket (by the rank's
/// position among that bucket's observations) and clamp to [min, max],
/// so they are exact whenever all observations in the answering bucket
/// share its upper bound (power-of-two cardinalities, single-valued
/// series) and avoid bucket-edge quantization otherwise — important for
/// the P50/P95/P99 samples feeding the time-series store.
struct Histogram {
  static constexpr int kNumBuckets = 64;
  /// upper bound of bucket i is 2^(i + kMinExp); kMinExp = -32.
  static constexpr int kMinExp = -32;

  uint64_t count = 0;
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  std::array<uint64_t, kNumBuckets> buckets{};

  /// Index of the bucket that covers `v`.
  static int BucketOf(double v) {
    if (!(v > 0)) return 0;  // zero, negatives, NaN
    int exp = 0;
    const double frac = std::frexp(v, &exp);  // v = frac * 2^exp, frac in [0.5, 1)
    // v in (2^(exp-1), 2^exp] unless v is an exact power of two
    // (frac == 0.5), which is the inclusive top of the bucket below.
    int bucket = exp - kMinExp - (frac == 0.5 ? 1 : 0);
    if (bucket < 0) bucket = 0;
    if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
    return bucket;
  }
  /// Upper bound of bucket i (inclusive).
  static double BucketUpperBound(int i) {
    return std::ldexp(1.0, i + kMinExp);
  }

  void Observe(double v) {
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
    ++buckets[static_cast<size_t>(BucketOf(v))];
  }
  double Mean() const { return count == 0 ? 0 : sum / static_cast<double>(count); }

  /// Value at percentile `p` in [0, 100]: locates the bucket containing
  /// the ceil(p/100 * count)-th smallest observation, interpolates
  /// linearly within it by the rank's position among the bucket's
  /// observations (bucket 0's lower edge is 0), and clamps to
  /// [min, max]. Returns 0 on an empty histogram.
  double Percentile(double p) const {
    if (count == 0) return 0;
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(p / 100.0 * static_cast<double>(count)));
    if (rank < 1) rank = 1;
    if (rank > count) rank = count;
    uint64_t cumulative = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      const uint64_t in_bucket = buckets[static_cast<size_t>(i)];
      if (cumulative + in_bucket >= rank && in_bucket > 0) {
        const double upper = BucketUpperBound(i);
        const double lower = i == 0 ? 0.0 : BucketUpperBound(i - 1);
        const double position = static_cast<double>(rank - cumulative) /
                                static_cast<double>(in_bucket);
        double v = lower + (upper - lower) * position;
        if (v < min) v = min;
        if (v > max) v = max;
        return v;
      }
      cumulative += in_bucket;
    }
    return max;
  }
  double P50() const { return Percentile(50); }
  double P95() const { return Percentile(95); }
  double P99() const { return Percentile(99); }

  /// Folds another histogram into this one (summary stats and buckets).
  void MergeFrom(const Histogram& other) {
    count += other.count;
    sum += other.sum;
    if (other.min < min) min = other.min;
    if (other.max > max) max = other.max;
    for (size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  }
};

/// A point-in-time deep copy of a MetricsRegistry's series, taken under
/// the registry mutex. Exporters iterate snapshots, never live registry
/// state, so exports are safe while pool workers are still recording.
struct MetricsSnapshot {
  template <typename V>
  using Series = std::map<std::string, V, std::less<>>;

  Series<uint64_t> counters;
  Series<double> gauges;
  Series<Histogram> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// A registry of named counters, gauges, and histograms.
///
/// Naming convention: dotted lower-case paths, subsystem first —
///   propagate.rows_scanned, propagate.delta_rows, refresh.updates,
///   refresh.minmax_recomputes, plan.edge_cost, exec.tasks, op.select.*
/// The same name must always be used with the same instrument kind.
///
/// The registry is passed around as a nullable pointer; every
/// instrumentation site guards with a single null check. Maps are
/// ordered so exports are deterministic.
///
/// Thread safety: all mutators and reads are serialized on an internal
/// mutex, so concurrent propagate steps / refresh workers can share one
/// registry. Bulk reads go through Snapshot(), a mutex-held deep copy —
/// there is no way to observe live series by reference.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Counter: monotonically increasing event count.
  void Add(std::string_view name, uint64_t delta = 1) {
    std::scoped_lock lock(mu_);
    Find(counters_, name) += delta;
  }

  /// Gauge: last-written value (e.g. the most recent batch's seconds).
  void Set(std::string_view name, double value) {
    std::scoped_lock lock(mu_);
    Find(gauges_, name) = value;
  }

  /// Histogram: accumulate a value distribution.
  void Observe(std::string_view name, double value) {
    std::scoped_lock lock(mu_);
    Find(histograms_, name).Observe(value);
  }

  /// Reads return the zero value for names never written.
  uint64_t counter(std::string_view name) const {
    std::scoped_lock lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  double gauge(std::string_view name) const {
    std::scoped_lock lock(mu_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second;
  }
  Histogram histogram(std::string_view name) const {
    std::scoped_lock lock(mu_);
    auto it = histograms_.find(name);
    return it == histograms_.end() ? Histogram{} : it->second;
  }

  template <typename V>
  using Series = MetricsSnapshot::Series<V>;

  /// Deep copy of all series under the mutex. The only bulk-read path.
  MetricsSnapshot Snapshot() const {
    std::scoped_lock lock(mu_);
    return MetricsSnapshot{counters_, gauges_, histograms_};
  }

  bool empty() const {
    std::scoped_lock lock(mu_);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  void Clear() {
    std::scoped_lock lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

  /// Folds a snapshot's series into this registry (counters add, gauges
  /// overwrite, histograms merge) — used to aggregate scratch
  /// registries and per-phase snapshots.
  void MergeFrom(const MetricsSnapshot& snapshot);
  /// Convenience overload: snapshots `other` first, so it is safe even
  /// while `other` is still being written to.
  void MergeFrom(const MetricsRegistry& other) { MergeFrom(other.Snapshot()); }

 private:
  template <typename V>
  static V& Find(Series<V>& series, std::string_view name) {
    auto it = series.find(name);
    if (it == series.end()) {
      it = series.emplace(std::string(name), V{}).first;
    }
    return it->second;
  }

  mutable std::mutex mu_;
  Series<uint64_t> counters_;
  Series<double> gauges_;
  Series<Histogram> histograms_;
};

}  // namespace sdelta::obs

#endif  // SDELTA_OBS_METRICS_H_
