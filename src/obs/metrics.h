#ifndef SDELTA_OBS_METRICS_H_
#define SDELTA_OBS_METRICS_H_

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace sdelta::obs {

/// Accumulated distribution of observed values (timings, cardinalities).
/// Summary statistics only — enough for the JSON export and for benches
/// to report means; full bucketing would buy little at our scales.
struct Histogram {
  uint64_t count = 0;
  double sum = 0;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();

  void Observe(double v) {
    ++count;
    sum += v;
    if (v < min) min = v;
    if (v > max) max = v;
  }
  double Mean() const { return count == 0 ? 0 : sum / static_cast<double>(count); }
};

/// A registry of named counters, gauges, and histograms.
///
/// Naming convention: dotted lower-case paths, subsystem first —
///   propagate.rows_scanned, propagate.delta_rows, refresh.updates,
///   refresh.minmax_recomputes, plan.edge_cost, exec.tasks, ...
/// The same name must always be used with the same instrument kind.
///
/// The registry is passed around as a nullable pointer; every
/// instrumentation site guards with a single null check. Maps are
/// ordered so exports are deterministic.
///
/// Thread safety: all mutators and point reads are serialized on an
/// internal mutex, so concurrent propagate steps / refresh workers can
/// share one registry. The by-reference accessors (counters(), gauges(),
/// histograms()) are lock-free reads for export code and must only be
/// called once parallel work has quiesced (all pool tasks joined).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Counter: monotonically increasing event count.
  void Add(std::string_view name, uint64_t delta = 1) {
    std::scoped_lock lock(mu_);
    Find(counters_, name) += delta;
  }

  /// Gauge: last-written value (e.g. the most recent batch's seconds).
  void Set(std::string_view name, double value) {
    std::scoped_lock lock(mu_);
    Find(gauges_, name) = value;
  }

  /// Histogram: accumulate a value distribution.
  void Observe(std::string_view name, double value) {
    std::scoped_lock lock(mu_);
    Find(histograms_, name).Observe(value);
  }

  /// Reads return the zero value for names never written.
  uint64_t counter(std::string_view name) const {
    std::scoped_lock lock(mu_);
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
  }
  double gauge(std::string_view name) const {
    std::scoped_lock lock(mu_);
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0 : it->second;
  }
  Histogram histogram(std::string_view name) const {
    std::scoped_lock lock(mu_);
    auto it = histograms_.find(name);
    return it == histograms_.end() ? Histogram{} : it->second;
  }

  template <typename V>
  using Series = std::map<std::string, V, std::less<>>;

  /// Quiesced-only accessors (see class comment).
  const Series<uint64_t>& counters() const { return counters_; }
  const Series<double>& gauges() const { return gauges_; }
  const Series<Histogram>& histograms() const { return histograms_; }

  bool empty() const {
    std::scoped_lock lock(mu_);
    return counters_.empty() && gauges_.empty() && histograms_.empty();
  }
  void Clear() {
    std::scoped_lock lock(mu_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

  /// Folds another registry's series into this one (counters add,
  /// gauges overwrite, histograms merge) — used to aggregate scratch
  /// registries and per-phase snapshots. `other` must be quiesced.
  void MergeFrom(const MetricsRegistry& other);

 private:
  template <typename V>
  static V& Find(Series<V>& series, std::string_view name) {
    auto it = series.find(name);
    if (it == series.end()) {
      it = series.emplace(std::string(name), V{}).first;
    }
    return it->second;
  }

  mutable std::mutex mu_;
  Series<uint64_t> counters_;
  Series<double> gauges_;
  Series<Histogram> histograms_;
};

}  // namespace sdelta::obs

#endif  // SDELTA_OBS_METRICS_H_
