#ifndef SDELTA_OBS_SLO_H_
#define SDELTA_OBS_SLO_H_

#include <cstdint>
#include <limits>
#include <mutex>
#include <string>

#include "obs/json.h"
#include "obs/metrics.h"

namespace sdelta::obs {

/// Tracks the service's two paper-derived service-level objectives
/// (DESIGN.md §11.4): *staleness* (how old may the oldest unapplied
/// change get — the batch-window tension of §6) and *refresh window*
/// (how long may one epoch install keep readers on stale state).
///
/// Violation counters are driven only at deterministic workload points
/// (a maintenance drain, an epoch install), never by scrapes, so under
/// the determinism contract their values are thread-count invariant
/// whenever the evaluated quantities are (e.g. a disabled target, or a
/// zero target that every observation violates). The burn-rate gauge is
/// the violated fraction of the error budget: burn 1.0 = violations are
/// arriving exactly at the budgeted rate, > 1.0 = burning faster.
class SloTracker {
 public:
  struct Targets {
    /// Max tolerated staleness; infinity disables the objective.
    double staleness_seconds = std::numeric_limits<double>::infinity();
    /// Max tolerated epoch-install window; infinity disables.
    double refresh_window_seconds = std::numeric_limits<double>::infinity();
    /// Error budget: tolerated violating fraction of observations.
    double error_budget = 0.01;
  };

  /// `metrics` (nullable) receives service.slo.* series; the counters
  /// are pre-registered at 0 so the exposition always carries them.
  SloTracker(Targets targets, MetricsRegistry* metrics);

  /// One staleness observation (a maintenance drain's oldest-age).
  void ObserveStaleness(double seconds);
  /// One refresh-window observation (an epoch install's duration).
  void ObserveWindow(double seconds);

  /// True while the cumulative burn rate is within budget (<= 1.0).
  bool Healthy() const;

  /// Evaluates a live staleness reading against the target WITHOUT
  /// recording it (the /healthz path: scrapes must not move counters).
  bool StalenessWithinTarget(double seconds) const {
    return seconds <= targets_.staleness_seconds;
  }

  const Targets& targets() const { return targets_; }
  uint64_t staleness_violations() const;
  uint64_t window_violations() const;
  uint64_t observations() const;
  /// (staleness + window violations) / observations / error_budget;
  /// 0 before any observation.
  double BurnRate() const;

  /// Status document embedded in /healthz and the shell's `service slo`.
  Json ToJson() const;

 private:
  double BurnRateUnlocked() const;  // caller holds mu_
  void PublishUnlocked();           // caller holds mu_

  const Targets targets_;
  MetricsRegistry* metrics_;
  mutable std::mutex mu_;
  uint64_t staleness_violations_ = 0;
  uint64_t window_violations_ = 0;
  uint64_t observations_ = 0;
};

}  // namespace sdelta::obs

#endif  // SDELTA_OBS_SLO_H_
