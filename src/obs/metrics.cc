#include "obs/metrics.h"

namespace sdelta::obs {

void MetricsRegistry::MergeFrom(const MetricsSnapshot& snapshot) {
  std::scoped_lock lock(mu_);
  for (const auto& [name, v] : snapshot.counters) Find(counters_, name) += v;
  for (const auto& [name, v] : snapshot.gauges) Find(gauges_, name) = v;
  for (const auto& [name, h] : snapshot.histograms) {
    Find(histograms_, name).MergeFrom(h);
  }
}

}  // namespace sdelta::obs
