#include "obs/metrics.h"

namespace sdelta::obs {

void MetricsRegistry::MergeFrom(const MetricsRegistry& other) {
  std::scoped_lock lock(mu_);
  for (const auto& [name, v] : other.counters_) Find(counters_, name) += v;
  for (const auto& [name, v] : other.gauges_) Find(gauges_, name) = v;
  for (const auto& [name, h] : other.histograms_) {
    Histogram& mine = Find(histograms_, name);
    mine.count += h.count;
    mine.sum += h.sum;
    if (h.min < mine.min) mine.min = h.min;
    if (h.max > mine.max) mine.max = h.max;
  }
}

}  // namespace sdelta::obs
