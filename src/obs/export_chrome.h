#ifndef SDELTA_OBS_EXPORT_CHROME_H_
#define SDELTA_OBS_EXPORT_CHROME_H_

#include <string>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sdelta::obs {

/// Renders a trace as a Chrome trace-event document, loadable in
/// Perfetto / chrome://tracing:
///   {"displayTimeUnit":"ms","traceEvents":[
///     {"name":..., "cat":"sdelta", "ph":"X", "pid":1, "tid":1,
///      "ts": <start µs>, "dur": <µs>,
///      "args":{"span_id":.., "parent_id":.., "parent":"<name>", ...attrs}}]}
///
/// Every span becomes one complete ("X") event. Call-stack nesting shows
/// up natively via time containment; the *logical* parent (which for
/// propagate plan steps is the D-lattice source view, not the caller) is
/// carried in args.parent / args.parent_id so the plan tree is
/// recoverable in the UI.
///
/// When a metrics snapshot is supplied, each histogram additionally
/// becomes one counter ("C") event at ts 0 whose args carry
/// mean/p50/p95/p99, giving trace viewers a distribution-summary track.
Json ChromeTraceJson(const Tracer& tracer,
                     const MetricsSnapshot* metrics = nullptr);
std::string ExportChromeTrace(const Tracer& tracer,
                              const MetricsSnapshot* metrics = nullptr);

/// Convenience: ExportChromeTrace to a file (see ExportJson's WriteFile).
void WriteChromeTrace(const std::string& path, const Tracer& tracer,
                      const MetricsSnapshot* metrics = nullptr);

}  // namespace sdelta::obs

#endif  // SDELTA_OBS_EXPORT_CHROME_H_
