#include "obs/anomaly.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace sdelta::obs {

namespace fs = std::filesystem;

std::vector<AnomalyRule> AnomalyConfig::DefaultRules() {
  // Floors are set above timing noise on a quiet service: a rule only
  // arms once the signal is operationally meaningful.
  const auto rule = [](const char* metric, double min_threshold) {
    AnomalyRule r;
    r.metric = metric;
    r.min_threshold = min_threshold;
    return r;
  };
  return {
      rule("service.refresh_window_seconds", 0.005),
      rule("service.staleness_seconds", 0.05),
      rule("batch.propagate_seconds", 0.005),
      rule("service.queue_depth", 1024),
  };
}

Json AnomalyToJson(const Anomaly& anomaly) {
  Json j = Json::Object();
  j.Set("batch_id", Json::Int(static_cast<int64_t>(anomaly.batch_id)));
  j.Set("kind", Json::Str(anomaly.kind));
  j.Set("metric", Json::Str(anomaly.metric));
  j.Set("value", Json::Double(anomaly.value));
  j.Set("baseline", Json::Double(anomaly.baseline));
  j.Set("threshold", Json::Double(anomaly.threshold));
  return j;
}

AnomalyDetector::AnomalyDetector(AnomalyConfig config, MetricsRegistry* metrics)
    : config_(std::move(config)), metrics_(metrics) {
  // Pre-register so the exposition always carries the family, fired or
  // not (same contract as service.queue_saturated).
  if (metrics_ != nullptr) {
    metrics_->Add("anomaly.checks", 0);
    metrics_->Add("anomaly.detections", 0);
  }
}

std::vector<Anomaly> AnomalyDetector::Check(const TimeSeriesStore& store,
                                            uint64_t batch_id) {
  std::vector<Anomaly> fired;
  for (const AnomalyRule& rule : config_.rules) {
    std::vector<TimeSeriesPoint> points = store.Query(rule.metric);
    std::vector<double> values;
    values.reserve(points.size());
    if (rule.delta) {
      for (size_t i = 1; i < points.size(); ++i) {
        values.push_back(points[i].value - points[i - 1].value);
      }
    } else {
      for (const TimeSeriesPoint& p : points) values.push_back(p.value);
    }
    if (values.empty()) continue;
    const double current = values.back();
    values.pop_back();
    if (values.size() < rule.warmup) continue;
    const size_t n = std::min(values.size(), rule.window);
    double sum = 0;
    for (size_t i = values.size() - n; i < values.size(); ++i) {
      sum += values[i];
    }
    const double mean = sum / static_cast<double>(n);
    const double threshold = std::max(rule.min_threshold, rule.factor * mean);
    if (current > threshold) {
      fired.push_back(Anomaly{.batch_id = batch_id,
                              .kind = "threshold",
                              .metric = rule.metric,
                              .value = current,
                              .baseline = mean,
                              .threshold = threshold});
    }
  }
  {
    std::scoped_lock lock(mu_);
    ++checks_;
  }
  if (metrics_ != nullptr) metrics_->Add("anomaly.checks");
  RecordDetections(fired);
  return fired;
}

std::vector<Anomaly> AnomalyDetector::CheckSlo(const SloTracker& slo,
                                               uint64_t batch_id) {
  const uint64_t violations =
      slo.staleness_violations() + slo.window_violations();
  const double burn = slo.BurnRate();
  std::vector<Anomaly> fired;
  bool is_new = false;
  {
    std::scoped_lock lock(mu_);
    is_new = violations > last_slo_violations_;
    last_slo_violations_ = violations;
  }
  if (is_new && burn > config_.slo_burn_threshold) {
    fired.push_back(Anomaly{.batch_id = batch_id,
                            .kind = "slo_burn",
                            .metric = "slo.burn_rate",
                            .value = burn,
                            .baseline = config_.slo_burn_threshold,
                            .threshold = config_.slo_burn_threshold});
  }
  RecordDetections(fired);
  return fired;
}

void AnomalyDetector::RecordDetections(const std::vector<Anomaly>& fired) {
  if (fired.empty()) return;
  {
    std::scoped_lock lock(mu_);
    detections_ += fired.size();
    for (const Anomaly& a : fired) {
      recent_.push_back(a);
      while (recent_.size() > 64) recent_.pop_front();
    }
  }
  if (metrics_ != nullptr) {
    metrics_->Add("anomaly.detections", fired.size());
  }
}

uint64_t AnomalyDetector::checks() const {
  std::scoped_lock lock(mu_);
  return checks_;
}

uint64_t AnomalyDetector::detections() const {
  std::scoped_lock lock(mu_);
  return detections_;
}

std::vector<Anomaly> AnomalyDetector::recent() const {
  std::scoped_lock lock(mu_);
  return {recent_.begin(), recent_.end()};
}

Json AnomalyDetector::ToJson() const {
  std::scoped_lock lock(mu_);
  Json doc = Json::Object();
  doc.Set("schema", Json::Str("sdelta.anomaly.v1"));
  doc.Set("enabled", Json::Bool(config_.enabled));
  doc.Set("checks", Json::Int(static_cast<int64_t>(checks_)));
  doc.Set("detections", Json::Int(static_cast<int64_t>(detections_)));
  doc.Set("slo_burn_threshold", Json::Double(config_.slo_burn_threshold));
  Json rules = Json::Array();
  for (const AnomalyRule& r : config_.rules) {
    Json j = Json::Object();
    j.Set("metric", Json::Str(r.metric));
    j.Set("factor", Json::Double(r.factor));
    j.Set("min_threshold", Json::Double(r.min_threshold));
    j.Set("window", Json::Int(static_cast<int64_t>(r.window)));
    j.Set("warmup", Json::Int(static_cast<int64_t>(r.warmup)));
    j.Set("delta", Json::Bool(r.delta));
    rules.Append(std::move(j));
  }
  doc.Set("rules", std::move(rules));
  Json anomalies = Json::Array();
  for (const Anomaly& a : recent_) anomalies.Append(AnomalyToJson(a));
  doc.Set("anomalies", std::move(anomalies));
  return doc;
}

FlightRecorder::FlightRecorder(Options options, MetricsRegistry* metrics)
    : options_(std::move(options)), metrics_(metrics) {
  if (metrics_ != nullptr) {
    metrics_->Add("anomaly.bundles_written", 0);
    metrics_->Add("anomaly.bundles_pruned", 0);
  }
  // Resume the sequence past any bundles a previous run left behind so
  // names never collide.
  for (const std::string& name : ListBundlesUnlocked()) {
    unsigned long seq = 0;
    if (std::sscanf(name.c_str(), "bundle-%lu-", &seq) == 1 &&
        seq >= next_seq_) {
      next_seq_ = seq + 1;
    }
  }
}

std::vector<std::string> FlightRecorder::ListBundlesUnlocked() const {
  std::vector<std::string> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options_.dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (entry.is_directory() && name.rfind("bundle-", 0) == 0) {
      out.push_back(name);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::string> FlightRecorder::ListBundles() const {
  std::scoped_lock lock(mu_);
  return ListBundlesUnlocked();
}

uint64_t FlightRecorder::bundles_written() const {
  std::scoped_lock lock(mu_);
  return written_;
}

void FlightRecorder::PruneUnlocked() {
  std::vector<std::string> bundles = ListBundlesUnlocked();
  const size_t keep = options_.max_bundles == 0 ? 1 : options_.max_bundles;
  std::error_code ec;
  for (size_t i = 0; i + keep < bundles.size(); ++i) {
    fs::remove_all(fs::path(options_.dir) / bundles[i], ec);
    if (metrics_ != nullptr) metrics_->Add("anomaly.bundles_pruned");
  }
}

std::string FlightRecorder::WriteBundle(
    uint64_t batch_id, const std::vector<Anomaly>& anomalies,
    const std::vector<std::pair<std::string, Json>>& artifacts) {
  std::scoped_lock lock(mu_);
  char seq_buf[16];
  std::snprintf(seq_buf, sizeof(seq_buf), "%06lu",
                static_cast<unsigned long>(next_seq_++));
  const std::string name =
      std::string("bundle-") + seq_buf + "-batch" + std::to_string(batch_id);

  fs::create_directories(options_.dir);
  const fs::path dir(options_.dir);
  const fs::path tmp = dir / (".tmp-" + name);
  std::error_code ec;
  fs::remove_all(tmp, ec);
  fs::create_directories(tmp);

  Json manifest = Json::Object();
  manifest.Set("schema", Json::Str("sdelta.flightrec.v1"));
  manifest.Set("bundle", Json::Str(name));
  manifest.Set("batch_id", Json::Int(static_cast<int64_t>(batch_id)));
  Json alist = Json::Array();
  for (const Anomaly& a : anomalies) alist.Append(AnomalyToJson(a));
  manifest.Set("anomalies", std::move(alist));
  Json files = Json::Array();
  for (const auto& [aname, doc] : artifacts) {
    files.Append(Json::Str(aname + ".json"));
  }
  manifest.Set("artifacts", std::move(files));

  const auto write_file = [&](const std::string& file, const Json& doc) {
    std::ofstream out(tmp / file, std::ios::trunc);
    out << doc.Dump(2) << "\n";
    if (!out) {
      throw std::runtime_error("flightrec: cannot write " +
                               (tmp / file).string());
    }
  };
  write_file("manifest.json", manifest);
  for (const auto& [aname, doc] : artifacts) {
    write_file(aname + ".json", doc);
  }
  // Atomic publish: a bundle directory either exists complete or not at
  // all (readers never see partial bundles).
  fs::rename(tmp, dir / name);

  ++written_;
  if (metrics_ != nullptr) metrics_->Add("anomaly.bundles_written");
  PruneUnlocked();
  return name;
}

}  // namespace sdelta::obs
