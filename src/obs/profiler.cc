#include "obs/profiler.h"

#include <algorithm>
#include <cstdlib>
#include <unordered_map>

namespace sdelta::obs {

namespace {

uint64_t SpanDurationNs(const SpanRecord& span) {
  // Open spans (end == 0) and clock anomalies count as zero duration.
  return span.end_ns >= span.start_ns ? span.end_ns - span.start_ns : 0;
}

uint64_t SpanRows(const SpanRecord& span) {
  for (const auto& [key, value] : span.attributes) {
    if (key == "delta_rows" || key == "rows") {
      return std::strtoull(value.c_str(), nullptr, 10);
    }
  }
  return 0;
}

struct SpanForest {
  const std::vector<SpanRecord>* spans = nullptr;
  std::vector<std::vector<size_t>> kids;
  std::vector<size_t> roots;
};

SpanForest BuildForest(const std::vector<SpanRecord>& spans) {
  SpanForest f;
  f.spans = &spans;
  f.kids.resize(spans.size());
  std::unordered_map<uint64_t, size_t> by_id;
  by_id.reserve(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) by_id.emplace(spans[i].id, i);
  for (size_t i = 0; i < spans.size(); ++i) {
    auto it = spans[i].parent_id == 0 ? by_id.end()
                                      : by_id.find(spans[i].parent_id);
    if (it == by_id.end()) {
      f.roots.push_back(i);
    } else {
      f.kids[it->second].push_back(i);
    }
  }
  return f;
}

void FoldSpan(const SpanForest& f, size_t i, ProfileNode& parent) {
  const SpanRecord& span = (*f.spans)[i];
  ProfileNode* node = parent.FindOrAddChild(span.name);
  const uint64_t dur = SpanDurationNs(span);
  node->calls += 1;
  node->inclusive_ns += dur;
  node->rows += SpanRows(span);
  uint64_t kids_ns = 0;
  for (size_t k : f.kids[i]) kids_ns += SpanDurationNs((*f.spans)[k]);
  node->exclusive_ns += dur > kids_ns ? dur - kids_ns : 0;
  for (size_t k : f.kids[i]) FoldSpan(f, k, *node);
}

Json NodeToJson(const ProfileNode& node) {
  Json j = Json::Object();
  j.Set("name", Json::Str(node.name));
  j.Set("calls", Json::Int(static_cast<int64_t>(node.calls)));
  j.Set("inclusive_us",
        Json::Int(static_cast<int64_t>(node.inclusive_ns / 1000)));
  j.Set("exclusive_us",
        Json::Int(static_cast<int64_t>(node.exclusive_ns / 1000)));
  j.Set("rows", Json::Int(static_cast<int64_t>(node.rows)));
  Json children = Json::Array();
  for (const ProfileNode& c : node.children) children.Append(NodeToJson(c));
  j.Set("children", std::move(children));
  return j;
}

void NodeToText(const ProfileNode& node, size_t depth, std::string& out) {
  out.append(depth * 2, ' ');
  out += node.name;
  out += "  calls=" + std::to_string(node.calls);
  out += " total_us=" + std::to_string(node.inclusive_ns / 1000);
  out += " self_us=" + std::to_string(node.exclusive_ns / 1000);
  if (node.rows > 0) out += " rows=" + std::to_string(node.rows);
  out += "\n";
  for (const ProfileNode& c : node.children) NodeToText(c, depth + 1, out);
}

void NodeToCollapsed(const ProfileNode& node, const std::string& prefix,
                     std::string& out) {
  const std::string path =
      prefix.empty() ? node.name : prefix + ";" + node.name;
  out += path + " " + std::to_string(node.exclusive_ns / 1000) + "\n";
  for (const ProfileNode& c : node.children) NodeToCollapsed(c, path, out);
}

}  // namespace

ProfileNode* ProfileNode::FindOrAddChild(std::string_view child_name) {
  auto it = std::lower_bound(
      children.begin(), children.end(), child_name,
      [](const ProfileNode& n, std::string_view s) { return n.name < s; });
  if (it == children.end() || it->name != child_name) {
    it = children.insert(it, ProfileNode(std::string(child_name)));
  }
  return &*it;
}

const ProfileNode* ProfileNode::FindChild(std::string_view child_name) const {
  auto it = std::lower_bound(
      children.begin(), children.end(), child_name,
      [](const ProfileNode& n, std::string_view s) { return n.name < s; });
  return it != children.end() && it->name == child_name ? &*it : nullptr;
}

void ProfileNode::MergeFrom(const ProfileNode& other) {
  calls += other.calls;
  inclusive_ns += other.inclusive_ns;
  exclusive_ns += other.exclusive_ns;
  rows += other.rows;
  for (const ProfileNode& c : other.children) {
    FindOrAddChild(c.name)->MergeFrom(c);
  }
}

void Profiler::RecordBatch(const std::vector<SpanRecord>& spans,
                           const exec::OperatorStats* ops) {
  ProfileNode batch("profile");
  const SpanForest forest = BuildForest(spans);
  for (size_t r : forest.roots) FoldSpan(forest, r, batch);
  if (ops != nullptr && ops->total_calls() > 0) {
    ProfileNode* container = batch.FindOrAddChild("operators");
    container->calls += 1;
    exec::ForEachOperator(*ops, [&](const char* name,
                                    const exec::OperatorCounters& c) {
      if (c.calls == 0) return;
      ProfileNode* frame = container->FindOrAddChild(std::string("op.") + name);
      const uint64_t ns = static_cast<uint64_t>(c.wall_seconds * 1e9);
      frame->calls += c.calls;
      frame->inclusive_ns += ns;
      frame->exclusive_ns += ns;
      frame->rows += c.rows_out;
      container->inclusive_ns += ns;
    });
  }
  std::scoped_lock lock(mu_);
  ++batches_;
  cumulative_.MergeFrom(batch);
  last_batch_ = std::move(batch);
}

uint64_t Profiler::batches() const {
  std::scoped_lock lock(mu_);
  return batches_;
}

ProfileNode Profiler::last_batch() const {
  std::scoped_lock lock(mu_);
  return last_batch_;
}

ProfileNode Profiler::cumulative() const {
  std::scoped_lock lock(mu_);
  return cumulative_;
}

Json Profiler::ToJson() const {
  std::scoped_lock lock(mu_);
  Json doc = Json::Object();
  doc.Set("schema", Json::Str("sdelta.profile.v1"));
  doc.Set("batches", Json::Int(static_cast<int64_t>(batches_)));
  doc.Set("last_batch", NodeToJson(last_batch_));
  doc.Set("cumulative", NodeToJson(cumulative_));
  return doc;
}

std::string Profiler::ToText() const {
  std::scoped_lock lock(mu_);
  std::string out;
  NodeToText(cumulative_, 0, out);
  return out;
}

std::string Profiler::ToCollapsed() const {
  std::scoped_lock lock(mu_);
  std::string out;
  for (const ProfileNode& c : cumulative_.children) {
    NodeToCollapsed(c, "", out);
  }
  return out;
}

namespace {

void JsonNodeToCollapsed(const Json& node, const std::string& prefix,
                         std::string& out) {
  const Json* name = node.Find("name");
  if (name == nullptr) return;
  const Json* self = node.Find("exclusive_us");
  const std::string path =
      prefix.empty() ? name->as_string() : prefix + ";" + name->as_string();
  out += path + " " +
         std::to_string(self != nullptr ? self->as_int() : 0) + "\n";
  const Json* children = node.Find("children");
  if (children != nullptr && children->is_array()) {
    for (const Json& c : children->items()) JsonNodeToCollapsed(c, path, out);
  }
}

void ZeroTimes(Json& node) {
  if (!node.is_object()) return;
  if (node.FindMutable("inclusive_us") != nullptr) {
    node.Set("inclusive_us", Json::Int(0));
  }
  if (node.FindMutable("exclusive_us") != nullptr) {
    node.Set("exclusive_us", Json::Int(0));
  }
  Json* children = node.FindMutable("children");
  if (children != nullptr && children->is_array()) {
    for (Json& c : children->items_mutable()) ZeroTimes(c);
  }
}

}  // namespace

std::string CollapsedFromProfileJson(const Json& node) {
  // Accept a full sdelta.profile.v1 document (renders the cumulative
  // tree), a bare root frame, or a single profile node.
  if (const Json* cumulative = node.Find("cumulative")) {
    return CollapsedFromProfileJson(*cumulative);
  }
  std::string out;
  const Json* children = node.Find("children");
  if (node.Find("name") != nullptr && children != nullptr &&
      children->is_array()) {
    for (const Json& c : children->items()) JsonNodeToCollapsed(c, "", out);
    return out;
  }
  JsonNodeToCollapsed(node, "", out);
  return out;
}

void NormalizeProfileTimes(Json& doc) {
  if (Json* last = doc.FindMutable("last_batch")) ZeroTimes(*last);
  if (Json* cum = doc.FindMutable("cumulative")) ZeroTimes(*cum);
  if (doc.Find("last_batch") == nullptr && doc.Find("cumulative") == nullptr) {
    ZeroTimes(doc);
  }
}

}  // namespace sdelta::obs
