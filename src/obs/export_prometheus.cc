#include "obs/export_prometheus.h"

#include <array>
#include <charconv>
#include <cmath>

namespace sdelta::obs {
namespace {

/// Shortest-round-trip number formatting, matching the JSON exporter so
/// the same value renders identically in both documents. Prometheus
/// accepts "+Inf"/"-Inf"/"NaN" but we never emit them: empty-histogram
/// min/max render as 0.
void NumberTo(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "0";
    return;
  }
  std::array<char, 32> buf;
  auto [end, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), d);
  out.append(buf.data(), end);
}

void Header(std::string& out, const std::string& name, const char* help,
            const char* type) {
  out += "# HELP ";
  out += name;
  out.push_back(' ');
  out += help;
  out.push_back('\n');
  out += "# TYPE ";
  out += name;
  out.push_back(' ');
  out += type;
  out.push_back('\n');
}

void Sample(std::string& out, const std::string& name, double value,
            const char* labels = nullptr) {
  out += name;
  if (labels != nullptr) out += labels;
  out.push_back(' ');
  NumberTo(out, value);
  out.push_back('\n');
}

}  // namespace

std::string PrometheusName(std::string_view registry_name) {
  std::string name = "sdelta_";
  for (char c : registry_name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    name.push_back(ok ? c : '_');
  }
  return name;
}

std::string ExportPrometheus(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, v] : snapshot.counters) {
    const std::string p = PrometheusName(name) + "_total";
    Header(out, p, "Monotonic event count.", "counter");
    Sample(out, p, static_cast<double>(v));
  }
  for (const auto& [name, v] : snapshot.gauges) {
    const std::string p = PrometheusName(name);
    Header(out, p, "Last-written value.", "gauge");
    Sample(out, p, v);
  }
  for (const auto& [name, h] : snapshot.histograms) {
    const std::string p = PrometheusName(name);
    Header(out, p, "Observed value distribution.", "histogram");
    // Cumulative buckets over the fixed log2 boundaries, trimmed to the
    // populated range (plus the mandatory +Inf) so expositions stay
    // compact. histogram_quantile() needs exactly this shape.
    int first = -1;
    int last = -1;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (h.buckets[static_cast<size_t>(i)] != 0) {
        if (first < 0) first = i;
        last = i;
      }
    }
    uint64_t cumulative = 0;
    for (int i = first; first >= 0 && i <= last; ++i) {
      cumulative += h.buckets[static_cast<size_t>(i)];
      std::string labels = "{le=\"";
      NumberTo(labels, Histogram::BucketUpperBound(i));
      labels += "\"}";
      Sample(out, p + "_bucket", static_cast<double>(cumulative),
             labels.c_str());
    }
    Sample(out, p + "_bucket", static_cast<double>(h.count),
           "{le=\"+Inf\"}");
    Sample(out, p + "_sum", h.sum);
    Sample(out, p + "_count", static_cast<double>(h.count));
    // Legacy quantile samples (pre-bucket dashboards) live in their own
    // gauge family: a histogram family may only contain
    // _bucket/_sum/_count series, and strict (OpenMetrics-mode) parsers
    // reject bare quantile samples inside it.
    Header(out, p + "_quantiles", "Approximate quantiles (legacy).", "gauge");
    Sample(out, p + "_quantiles", h.P50(), "{quantile=\"0.5\"}");
    Sample(out, p + "_quantiles", h.P95(), "{quantile=\"0.95\"}");
    Sample(out, p + "_quantiles", h.P99(), "{quantile=\"0.99\"}");
    Header(out, p + "_min", "Minimum observed value.", "gauge");
    Sample(out, p + "_min", h.count == 0 ? 0 : h.min);
    Header(out, p + "_max", "Maximum observed value.", "gauge");
    Sample(out, p + "_max", h.count == 0 ? 0 : h.max);
  }
  return out;
}

std::string ExportPrometheus(const MetricsRegistry& metrics) {
  return ExportPrometheus(metrics.Snapshot());
}

}  // namespace sdelta::obs
