#ifndef SDELTA_OBS_EXPORT_PROMETHEUS_H_
#define SDELTA_OBS_EXPORT_PROMETHEUS_H_

#include <string>

#include "obs/metrics.h"

namespace sdelta::obs {

/// Renders a metrics snapshot in the Prometheus text exposition format
/// (version 0.0.4), suitable for a /metrics endpoint or for pasting
/// into promtool. Naming rules:
///
///   * every metric is prefixed `sdelta_`;
///   * dots (and any character outside [a-zA-Z0-9_]) in registry names
///     become `_`: `propagate.delta_rows` -> `sdelta_propagate_delta_rows`;
///   * counters get the conventional `_total` suffix and TYPE counter;
///   * gauges are emitted as-is with TYPE gauge;
///   * histograms are emitted as TYPE histogram: cumulative
///     `<name>_bucket{le="..."}` samples over the fixed log2 bucket
///     boundaries (trimmed to the populated range, always ending in
///     le="+Inf"), plus `_sum` and `_count` — the shape
///     histogram_quantile() consumes. The pre-bucket quantile samples
///     are kept for dashboard compatibility as a separate gauge family
///     `<name>_quantiles{quantile="0.5"/"0.95"/"0.99"}` (a histogram
///     family may only contain _bucket/_sum/_count series), and the two
///     companion gauges `<name>_min` / `<name>_max` remain.
///
/// Output is deterministic: series are iterated in sorted (map) order
/// and floating-point values use shortest-round-trip formatting, so two
/// identical snapshots render byte-identical documents.
std::string ExportPrometheus(const MetricsSnapshot& snapshot);

/// Convenience overload: snapshots the registry first (safe while pool
/// workers are still recording).
std::string ExportPrometheus(const MetricsRegistry& metrics);

/// The exposition name for a registry metric (prefix + sanitation, no
/// kind suffix): PrometheusName("plan.edge_cost") == "sdelta_plan_edge_cost".
std::string PrometheusName(std::string_view registry_name);

}  // namespace sdelta::obs

#endif  // SDELTA_OBS_EXPORT_PROMETHEUS_H_
