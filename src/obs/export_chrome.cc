#include "obs/export_chrome.h"

#include <algorithm>
#include <limits>

#include "obs/export_json.h"

namespace sdelta::obs {

Json ChromeTraceJson(const Tracer& tracer, const MetricsSnapshot* metrics) {
  uint64_t base = std::numeric_limits<uint64_t>::max();
  for (const SpanRecord& s : tracer.spans()) base = std::min(base, s.start_ns);
  if (tracer.spans().empty()) base = 0;

  Json events = Json::Array();
  for (const SpanRecord& s : tracer.spans()) {
    Json e = Json::Object();
    e.Set("name", Json::Str(s.name));
    e.Set("cat", Json::Str("sdelta"));
    e.Set("ph", Json::Str("X"));
    e.Set("pid", Json::Int(1));
    e.Set("tid", Json::Int(1));
    e.Set("ts", Json::Int(static_cast<int64_t>((s.start_ns - base) / 1000)));
    const uint64_t end = s.end_ns == 0 ? s.start_ns : s.end_ns;
    e.Set("dur", Json::Int(static_cast<int64_t>((end - s.start_ns) / 1000)));
    Json args = Json::Object();
    args.Set("span_id", Json::Int(static_cast<int64_t>(s.id)));
    args.Set("parent_id", Json::Int(static_cast<int64_t>(s.parent_id)));
    if (s.parent_id != 0) {
      args.Set("parent", Json::Str(tracer.spans()[s.parent_id - 1].name));
    }
    for (const auto& [k, v] : s.attributes) args.Set(k, Json::Str(v));
    e.Set("args", std::move(args));
    events.Append(std::move(e));
  }

  if (metrics != nullptr) {
    // One counter ("C") event per histogram so its distribution summary
    // shows up as a track in Perfetto / chrome://tracing.
    for (const auto& [name, h] : metrics->histograms) {
      Json e = Json::Object();
      e.Set("name", Json::Str(name));
      e.Set("cat", Json::Str("sdelta.histogram"));
      e.Set("ph", Json::Str("C"));
      e.Set("pid", Json::Int(1));
      e.Set("tid", Json::Int(1));
      e.Set("ts", Json::Int(0));
      Json args = Json::Object();
      args.Set("mean", Json::Double(h.Mean()));
      args.Set("p50", Json::Double(h.P50()));
      args.Set("p95", Json::Double(h.P95()));
      args.Set("p99", Json::Double(h.P99()));
      e.Set("args", std::move(args));
      events.Append(std::move(e));
    }
  }

  Json doc = Json::Object();
  doc.Set("displayTimeUnit", Json::Str("ms"));
  doc.Set("traceEvents", std::move(events));
  return doc;
}

std::string ExportChromeTrace(const Tracer& tracer,
                              const MetricsSnapshot* metrics) {
  return ChromeTraceJson(tracer, metrics).Dump(1) + "\n";
}

void WriteChromeTrace(const std::string& path, const Tracer& tracer,
                      const MetricsSnapshot* metrics) {
  WriteFile(path, ExportChromeTrace(tracer, metrics));
}

}  // namespace sdelta::obs
