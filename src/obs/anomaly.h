#ifndef SDELTA_OBS_ANOMALY_H_
#define SDELTA_OBS_ANOMALY_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "obs/timeseries.h"

namespace sdelta::obs {

/// One rolling-threshold rule over a time series. Fires when the
/// current batch's value exceeds BOTH `factor` times the rolling mean
/// of the trailing window AND the absolute floor `min_threshold` (the
/// floor keeps microsecond-scale noise from tripping 3x rules).
struct AnomalyRule {
  std::string metric;        ///< TimeSeriesStore series name
  double factor = 3.0;       ///< fire above factor * rolling mean
  double min_threshold = 0;  ///< absolute floor the value must also exceed
  size_t window = 16;        ///< trailing samples in the rolling mean
  size_t warmup = 4;         ///< prior samples required before firing
  /// Evaluate per-batch deltas instead of raw values — the right
  /// semantics for counters, whose raw values grow monotonically.
  bool delta = false;
};

/// Detector configuration. Disabled by default: detection writes flight
/// bundles to disk on trigger, which a test or bench must opt into.
struct AnomalyConfig {
  bool enabled = false;
  std::vector<AnomalyRule> rules;
  /// SLO trigger: fire when new violations arrived this batch and the
  /// cumulative burn rate exceeds this.
  double slo_burn_threshold = 1.0;

  /// The paper-motivated default rule set: refresh window, staleness,
  /// propagate time, and queue depth (DESIGN.md §13.3).
  static std::vector<AnomalyRule> DefaultRules();
};

/// One detection. `baseline` is the rolling mean the value was judged
/// against (the burn threshold for kind "slo_burn"), `threshold` the
/// effective trip level max(min_threshold, factor * baseline).
struct Anomaly {
  uint64_t batch_id = 0;
  std::string kind;    ///< "threshold" or "slo_burn"
  std::string metric;  ///< rule metric, or "slo.burn_rate"
  double value = 0;
  double baseline = 0;
  double threshold = 0;
};

Json AnomalyToJson(const Anomaly& anomaly);

/// Evaluates the rolling-threshold rules against the time-series ring
/// after each batch, plus the SLO burn trigger. Keeps a bounded list of
/// recent detections for the /anomalies route and the shell.
///
/// Counters: anomaly.checks / anomaly.detections (pre-registered at 0).
/// Thread safety: all methods serialize on an internal mutex; Check is
/// called by the maintenance thread only, reads by scrape/shell threads.
class AnomalyDetector {
 public:
  /// `metrics` nullable, as everywhere in obs.
  AnomalyDetector(AnomalyConfig config, MetricsRegistry* metrics);
  AnomalyDetector(const AnomalyDetector&) = delete;
  AnomalyDetector& operator=(const AnomalyDetector&) = delete;

  /// Evaluates every rule for `batch_id`, whose snapshot must already
  /// be appended to `store`. Returns the anomalies that fired.
  std::vector<Anomaly> Check(const TimeSeriesStore& store, uint64_t batch_id);

  /// The SLO trigger: fires when the tracker's violation total
  /// increased since the previous call AND BurnRate() exceeds the
  /// configured threshold.
  std::vector<Anomaly> CheckSlo(const SloTracker& slo, uint64_t batch_id);

  uint64_t checks() const;
  uint64_t detections() const;
  /// Most recent detections, oldest first (bounded to 64).
  std::vector<Anomaly> recent() const;
  const AnomalyConfig& config() const { return config_; }

  /// {"schema":"sdelta.anomaly.v1", rules, counters, recent anomalies}.
  Json ToJson() const;

 private:
  void RecordDetections(const std::vector<Anomaly>& fired);

  const AnomalyConfig config_;
  MetricsRegistry* metrics_;
  mutable std::mutex mu_;
  uint64_t checks_ = 0;
  uint64_t detections_ = 0;
  uint64_t last_slo_violations_ = 0;
  std::deque<Anomaly> recent_;
};

/// Writes self-contained diagnostic bundles to a bounded on-disk
/// directory. Each bundle is a subdirectory `bundle-NNNNNN-batch<id>/`
/// holding `manifest.json` (schema sdelta.flightrec.v1: the anomalies,
/// the artifact list) plus one `<artifact>.json` per artifact, built in
/// a temp directory and atomically renamed into place. Retention keeps
/// the newest `max_bundles` bundles (zero-padded sequence numbers make
/// lexicographic order creation order).
///
/// Counters: anomaly.bundles_written / anomaly.bundles_pruned.
class FlightRecorder {
 public:
  struct Options {
    std::string dir;         ///< bundle directory, created on first write
    size_t max_bundles = 8;  ///< retention bound (>= 1)
  };

  /// Scans `options.dir` for existing bundles so sequence numbers keep
  /// increasing across restarts. `metrics` nullable.
  FlightRecorder(Options options, MetricsRegistry* metrics);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Writes one bundle; `artifacts` are (name, document) pairs, each
  /// stored as `<name>.json`. Returns the bundle directory name.
  std::string WriteBundle(
      uint64_t batch_id, const std::vector<Anomaly>& anomalies,
      const std::vector<std::pair<std::string, Json>>& artifacts);

  /// Bundle directory names currently on disk, oldest first.
  std::vector<std::string> ListBundles() const;
  uint64_t bundles_written() const;
  const Options& options() const { return options_; }

 private:
  std::vector<std::string> ListBundlesUnlocked() const;
  void PruneUnlocked();

  const Options options_;
  MetricsRegistry* metrics_;
  mutable std::mutex mu_;
  uint64_t next_seq_ = 1;
  uint64_t written_ = 0;
};

}  // namespace sdelta::obs

#endif  // SDELTA_OBS_ANOMALY_H_
