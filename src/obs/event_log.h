#ifndef SDELTA_OBS_EVENT_LOG_H_
#define SDELTA_OBS_EVENT_LOG_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace sdelta::obs {

/// The service runtime's typed lifecycle events (DESIGN.md §11). One
/// enum per operationally meaningful state change; free-form detail
/// rides in Event::detail, never in the type.
enum class EventType {
  kBatchStart,     ///< maintenance drain began applying a batch
  kBatchEnd,       ///< batch applied (value = maintenance seconds)
  kEpochInstall,   ///< epoch swap installed (value = window seconds)
  kWalCheckpoint,  ///< checkpoint committed, WAL truncated
  kQueueSaturated, ///< a producer blocked on the queue's row bound
  kSlowQuery,      ///< snapshot query exceeded the slow-query threshold
  kRecoveryReplay, ///< Open replayed WAL records (value = record count)
  kAnomaly,        ///< detector fired; a flight bundle was written
                   ///< (value = anomaly count, detail = bundle name)
};

/// Stable wire name of an event type (used by the JSON export and the
/// shell); parseable back via EventTypeFromName.
const char* EventTypeName(EventType type);
/// Returns true and sets `out` when `name` is a known event type name.
bool EventTypeFromName(std::string_view name, EventType* out);

/// One structured event. Correlation fields (DESIGN.md §11.3): batch_id
/// ties the event to one maintenance drain, request_id to one snapshot
/// query, seq to a WAL sequence number; 0 means "not applicable". The
/// timestamp is steady-clock nanoseconds since the log's construction,
/// so a sorted dump is also causally ordered.
struct Event {
  uint64_t id = 0;  ///< 1-based record number (monotonic, never reused)
  EventType type = EventType::kBatchStart;
  uint64_t ts_ns = 0;
  uint64_t batch_id = 0;
  uint64_t request_id = 0;
  uint64_t seq = 0;
  double value = 0;     ///< type-specific magnitude (seconds, counts)
  std::string detail;   ///< free-form context ("pos", "epoch 7", ...)
};

/// Fixed-capacity, mutex-protected ring buffer of typed events — the
/// service's flight recorder. Overwrites the oldest event once full
/// (dropped_count() says how many); recording never blocks maintenance
/// for more than the buffer append.
///
/// Like MetricsRegistry and Tracer, an EventLog is passed around as a
/// nullable pointer; every Record site guards with one null check.
///
/// Determinism contract: the *sequence of (type, batch_id, request_id,
/// seq, detail)* recorded by a deterministic workload is itself
/// deterministic — only ts_ns and value (timings) vary run to run. The
/// JSON export (sdelta.events.v1) is byte-deterministic for identical
/// event sequences once timestamps/values are normalized
/// (NormalizeEventTimes), which the golden tests rely on.
class EventLog {
 public:
  explicit EventLog(size_t capacity = 1024)
      : capacity_(capacity == 0 ? 1 : capacity) {}
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Records one event; assigns Event::id and ts_ns. Returns the id.
  uint64_t Record(EventType type, uint64_t batch_id = 0,
                  uint64_t request_id = 0, uint64_t seq = 0, double value = 0,
                  std::string detail = {});

  /// Oldest-to-newest copy of the retained events.
  std::vector<Event> Snapshot() const;

  /// Events recorded since construction (including overwritten ones).
  uint64_t total_recorded() const;
  /// Events overwritten by ring wrap-around.
  uint64_t dropped_count() const;
  /// Retained events recorded with the given type.
  uint64_t count(EventType type) const;
  size_t capacity() const { return capacity_; }

  void Clear();

  /// The sdelta.events.v1 document: schema, capacity, totals, per-type
  /// counts over retained events, and the retained events oldest-first.
  Json ToJson() const;

 private:
  void SetBaseUnlocked();
  std::vector<Event> RetainedUnlocked() const;  // caller holds mu_

  const size_t capacity_;
  mutable std::mutex mu_;
  std::vector<Event> ring_;   ///< ring storage, capacity_ max entries
  size_t next_slot_ = 0;      ///< ring index the next event lands in
  uint64_t total_ = 0;
  bool base_set_ = false;
  uint64_t base_ns_ = 0;      ///< steady-clock origin for ts_ns
};

/// Zeroes every ts_ns/value field of an events document (or bare events
/// array) in place — the analogue of NormalizeSpanTimes for golden
/// tests comparing event streams across thread counts.
void NormalizeEventTimes(Json& doc);

}  // namespace sdelta::obs

#endif  // SDELTA_OBS_EVENT_LOG_H_
