#include "obs/slo.h"

#include <cmath>

namespace sdelta::obs {

namespace {
constexpr const char* kStalenessViolations = "service.slo.staleness_violations";
constexpr const char* kWindowViolations = "service.slo.window_violations";
constexpr const char* kBurnRate = "service.slo.burn_rate";
}  // namespace

SloTracker::SloTracker(Targets targets, MetricsRegistry* metrics)
    : targets_(targets), metrics_(metrics) {
  if (metrics_ != nullptr) {
    // Pre-register so the exposition carries the series from the first
    // scrape, violations or not (and so the determinism suite always
    // sees them in the counter map).
    metrics_->Add(kStalenessViolations, 0);
    metrics_->Add(kWindowViolations, 0);
    metrics_->Set(kBurnRate, 0);
  }
}

void SloTracker::ObserveStaleness(double seconds) {
  std::scoped_lock lock(mu_);
  ++observations_;
  if (seconds > targets_.staleness_seconds) {
    ++staleness_violations_;
    if (metrics_ != nullptr) metrics_->Add(kStalenessViolations);
  }
  PublishUnlocked();
}

void SloTracker::ObserveWindow(double seconds) {
  std::scoped_lock lock(mu_);
  ++observations_;
  if (seconds > targets_.refresh_window_seconds) {
    ++window_violations_;
    if (metrics_ != nullptr) metrics_->Add(kWindowViolations);
  }
  PublishUnlocked();
}

double SloTracker::BurnRateUnlocked() const {
  if (observations_ == 0 || targets_.error_budget <= 0) return 0;
  const double violating =
      static_cast<double>(staleness_violations_ + window_violations_);
  return violating / static_cast<double>(observations_) /
         targets_.error_budget;
}

void SloTracker::PublishUnlocked() {
  if (metrics_ != nullptr) metrics_->Set(kBurnRate, BurnRateUnlocked());
}

bool SloTracker::Healthy() const {
  std::scoped_lock lock(mu_);
  return BurnRateUnlocked() <= 1.0;
}

uint64_t SloTracker::staleness_violations() const {
  std::scoped_lock lock(mu_);
  return staleness_violations_;
}

uint64_t SloTracker::window_violations() const {
  std::scoped_lock lock(mu_);
  return window_violations_;
}

uint64_t SloTracker::observations() const {
  std::scoped_lock lock(mu_);
  return observations_;
}

double SloTracker::BurnRate() const {
  std::scoped_lock lock(mu_);
  return BurnRateUnlocked();
}

namespace {
Json FiniteOrNull(double v) {
  return std::isfinite(v) ? Json::Double(v) : Json();
}
}  // namespace

Json SloTracker::ToJson() const {
  std::scoped_lock lock(mu_);
  Json doc = Json::Object();
  Json targets = Json::Object();
  targets.Set("staleness_seconds", FiniteOrNull(targets_.staleness_seconds));
  targets.Set("refresh_window_seconds",
              FiniteOrNull(targets_.refresh_window_seconds));
  targets.Set("error_budget", Json::Double(targets_.error_budget));
  doc.Set("targets", std::move(targets));
  doc.Set("observations", Json::Int(static_cast<int64_t>(observations_)));
  doc.Set("staleness_violations",
          Json::Int(static_cast<int64_t>(staleness_violations_)));
  doc.Set("window_violations",
          Json::Int(static_cast<int64_t>(window_violations_)));
  doc.Set("burn_rate", Json::Double(BurnRateUnlocked()));
  doc.Set("healthy", Json::Bool(BurnRateUnlocked() <= 1.0));
  return doc;
}

}  // namespace sdelta::obs
