#ifndef SDELTA_OBS_PROFILER_H_
#define SDELTA_OBS_PROFILER_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "exec/operator_stats.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace sdelta::obs {

/// One aggregated frame of a profile tree: all spans that shared this
/// name *and* this path from the root, folded together. Children are
/// kept sorted by name so every rendering is deterministic given a
/// deterministic span-name multiset (which the tracing sites guarantee
/// across thread counts — see Tracer's parenting contract).
struct ProfileNode {
  ProfileNode() = default;
  explicit ProfileNode(std::string frame_name) : name(std::move(frame_name)) {}

  std::string name;
  uint64_t calls = 0;
  /// Total span duration including children.
  uint64_t inclusive_ns = 0;
  /// Inclusive time minus the children's inclusive time (self time) —
  /// the value a flamegraph renders.
  uint64_t exclusive_ns = 0;
  /// Rows attributed to the frame (span `rows`/`delta_rows` attributes,
  /// operator rows_out for operator frames).
  uint64_t rows = 0;
  std::vector<ProfileNode> children;

  /// Child with the given name, inserted in sorted position if absent.
  ProfileNode* FindOrAddChild(std::string_view child_name);
  const ProfileNode* FindChild(std::string_view child_name) const;
  /// Folds `other` (same logical frame) into this node, recursively.
  void MergeFrom(const ProfileNode& other);
};

/// Span-based self-time profiler (DESIGN.md §13): folds a quiesced
/// Tracer span set — plus the batch's exec::OperatorStats totals as
/// synthetic `operators/op.<name>` frames — into an aggregated profile
/// tree, per batch and cumulatively. The collapsed-stack export is the
/// `folded` format flamegraph.pl and speedscope consume directly.
///
/// Thread safety: RecordBatch and all reads serialize on an internal
/// mutex; reads return copies/documents. The *span vector handed to
/// RecordBatch* must be quiesced (Tracer::spans() contract).
class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  /// Folds one batch's spans into a fresh last-batch tree and merges it
  /// into the cumulative tree. `ops` (nullable) adds the batch's
  /// operator totals as frames under "operators". Open spans (end == 0)
  /// count as zero-duration calls.
  void RecordBatch(const std::vector<SpanRecord>& spans,
                   const exec::OperatorStats* ops);

  uint64_t batches() const;
  /// Copies of the aggregated trees (root frame name "profile").
  ProfileNode last_batch() const;
  ProfileNode cumulative() const;

  /// {"schema":"sdelta.profile.v1","batches":N,
  ///  "last_batch":{...},"cumulative":{...}}.
  Json ToJson() const;
  /// Indented cumulative tree, one frame per line.
  std::string ToText() const;
  /// Collapsed stacks of the cumulative tree: "root;a;b <self-µs>" per
  /// frame, sorted — pipe into flamegraph.pl.
  std::string ToCollapsed() const;

 private:
  mutable std::mutex mu_;
  uint64_t batches_ = 0;
  ProfileNode last_batch_{"profile"};
  ProfileNode cumulative_{"profile"};
};

/// Renders one profile node (as produced by Profiler::ToJson) to
/// collapsed-stack lines — lets tools/flame_dump convert a flight-
/// recorder bundle's profile.json without a live Profiler.
std::string CollapsedFromProfileJson(const Json& node);

/// Zeroes every inclusive_us/exclusive_us field of a profile document
/// in place (recursively, covering last_batch and cumulative) — the
/// NormalizeSpanTimes analogue for cross-thread-count golden tests.
void NormalizeProfileTimes(Json& doc);

}  // namespace sdelta::obs

#endif  // SDELTA_OBS_PROFILER_H_
