#include "obs/event_log.h"

#include <algorithm>
#include <chrono>

namespace sdelta::obs {

namespace {

constexpr EventType kAllTypes[] = {
    EventType::kBatchStart,     EventType::kBatchEnd,
    EventType::kEpochInstall,   EventType::kWalCheckpoint,
    EventType::kQueueSaturated, EventType::kSlowQuery,
    EventType::kRecoveryReplay, EventType::kAnomaly,
};

uint64_t SteadyNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kBatchStart: return "BatchStart";
    case EventType::kBatchEnd: return "BatchEnd";
    case EventType::kEpochInstall: return "EpochInstall";
    case EventType::kWalCheckpoint: return "WalCheckpoint";
    case EventType::kQueueSaturated: return "QueueSaturated";
    case EventType::kSlowQuery: return "SlowQuery";
    case EventType::kRecoveryReplay: return "RecoveryReplay";
    case EventType::kAnomaly: return "Anomaly";
  }
  return "Unknown";
}

bool EventTypeFromName(std::string_view name, EventType* out) {
  for (EventType t : kAllTypes) {
    if (name == EventTypeName(t)) {
      *out = t;
      return true;
    }
  }
  return false;
}

void EventLog::SetBaseUnlocked() {
  if (!base_set_) {
    base_ns_ = SteadyNowNs();
    base_set_ = true;
  }
}

uint64_t EventLog::Record(EventType type, uint64_t batch_id,
                          uint64_t request_id, uint64_t seq, double value,
                          std::string detail) {
  std::scoped_lock lock(mu_);
  SetBaseUnlocked();
  Event e;
  e.id = ++total_;
  e.type = type;
  e.ts_ns = SteadyNowNs() - base_ns_;
  e.batch_id = batch_id;
  e.request_id = request_id;
  e.seq = seq;
  e.value = value;
  e.detail = std::move(detail);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    ring_[next_slot_] = std::move(e);
  }
  next_slot_ = (next_slot_ + 1) % capacity_;
  return total_;
}

std::vector<Event> EventLog::RetainedUnlocked() const {
  std::vector<Event> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // next_slot_ is the oldest entry once the ring has wrapped.
    out.insert(out.end(), ring_.begin() + static_cast<ptrdiff_t>(next_slot_),
               ring_.end());
    out.insert(out.end(), ring_.begin(),
               ring_.begin() + static_cast<ptrdiff_t>(next_slot_));
  }
  return out;
}

std::vector<Event> EventLog::Snapshot() const {
  std::scoped_lock lock(mu_);
  return RetainedUnlocked();
}

uint64_t EventLog::total_recorded() const {
  std::scoped_lock lock(mu_);
  return total_;
}

uint64_t EventLog::dropped_count() const {
  std::scoped_lock lock(mu_);
  return total_ - ring_.size();
}

uint64_t EventLog::count(EventType type) const {
  std::scoped_lock lock(mu_);
  return static_cast<uint64_t>(
      std::count_if(ring_.begin(), ring_.end(),
                    [&](const Event& e) { return e.type == type; }));
}

void EventLog::Clear() {
  std::scoped_lock lock(mu_);
  ring_.clear();
  next_slot_ = 0;
  total_ = 0;
  base_set_ = false;
  base_ns_ = 0;
}

Json EventLog::ToJson() const {
  // One lock for both the ring copy and the totals, so "dropped" is
  // consistent with the events actually exported.
  std::vector<Event> events;
  uint64_t total = 0;
  {
    std::scoped_lock lock(mu_);
    events = RetainedUnlocked();
    total = total_;
  }
  Json doc = Json::Object();
  doc.Set("schema", Json::Str("sdelta.events.v1"));
  doc.Set("capacity", Json::Int(static_cast<int64_t>(capacity_)));
  doc.Set("total_recorded", Json::Int(static_cast<int64_t>(total)));
  doc.Set("dropped",
          Json::Int(static_cast<int64_t>(total - events.size())));
  Json counts = Json::Object();
  for (EventType t : kAllTypes) {
    const auto n = std::count_if(events.begin(), events.end(),
                                 [&](const Event& e) { return e.type == t; });
    counts.Set(EventTypeName(t), Json::Int(static_cast<int64_t>(n)));
  }
  doc.Set("counts", std::move(counts));
  Json arr = Json::Array();
  for (const Event& e : events) {
    Json j = Json::Object();
    j.Set("id", Json::Int(static_cast<int64_t>(e.id)));
    j.Set("type", Json::Str(EventTypeName(e.type)));
    j.Set("ts_us", Json::Int(static_cast<int64_t>(e.ts_ns / 1000)));
    j.Set("batch_id", Json::Int(static_cast<int64_t>(e.batch_id)));
    j.Set("request_id", Json::Int(static_cast<int64_t>(e.request_id)));
    j.Set("seq", Json::Int(static_cast<int64_t>(e.seq)));
    j.Set("value", Json::Double(e.value));
    j.Set("detail", Json::Str(e.detail));
    arr.Append(std::move(j));
  }
  doc.Set("events", std::move(arr));
  return doc;
}

void NormalizeEventTimes(Json& doc) {
  Json* events = doc.is_array() ? &doc : doc.FindMutable("events");
  if (events == nullptr || !events->is_array()) return;
  for (Json& e : events->items_mutable()) {
    if (e.FindMutable("ts_us") != nullptr) e.Set("ts_us", Json::Int(0));
    if (e.FindMutable("value") != nullptr) e.Set("value", Json::Double(0));
  }
}

}  // namespace sdelta::obs
