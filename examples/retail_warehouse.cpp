// The paper's running example end to end: the retail star schema of §2,
// the four summary tables of Figure 1, the V-lattice of Figure 8, and
// two nightly batch windows (update-generating and insertion-generating
// changes, §6), with the propagate/refresh timing split.
//
// Build & run:  ./build/examples/retail_warehouse
#include <cstdio>

#include "warehouse/retail_schema.h"
#include "warehouse/warehouse.h"
#include "warehouse/workload.h"

using namespace sdelta;  // NOLINT: example brevity

namespace {

void PrintReport(const char* title, const warehouse::BatchReport& report) {
  std::printf("%s\n", title);
  std::printf("  propagate: %7.2f ms (outside the batch window)\n",
              1e3 * report.propagate_seconds);
  std::printf("  apply base:%7.2f ms\n", 1e3 * report.apply_base_seconds);
  std::printf("  refresh:   %7.2f ms (inside the batch window)\n",
              1e3 * report.refresh_seconds);
  for (const warehouse::ViewBatchReport& v : report.views) {
    std::printf(
        "    %-10s delta=%5zu rows -> %4zu ins %4zu upd %4zu del"
        " %3zu recomputed\n",
        v.view.c_str(), v.delta_rows, v.refresh.inserted,
        v.refresh.updated, v.refresh.deleted, v.refresh.recomputed_groups);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  warehouse::RetailConfig config;
  config.num_pos_rows = 100000;
  std::printf("building retail warehouse: %zu pos rows, %zu stores, "
              "%zu items...\n\n",
              config.num_pos_rows, config.num_stores, config.num_items);

  warehouse::Warehouse wh(warehouse::MakeRetailCatalog(config));
  wh.DefineSummaryTables(warehouse::RetailSummaryTables());

  std::printf("summary tables (Figure 1, lattice-friendly extended):\n");
  for (const core::AugmentedView& av : wh.vlattice().views) {
    std::printf("  %s: %zu rows\n", av.name().c_str(),
                wh.summary(av.name()).NumRows());
  }

  std::printf("\nV-lattice derives edges (Figure 8):\n%s",
              wh.vlattice().ToString().c_str());
  std::printf("\nmaintenance plan (§5.5):\n%s\n",
              wh.plan().ToString(wh.vlattice()).c_str());

  // Night 1: a mixed bag of inserts and deletes over existing values.
  warehouse::BatchReport night1 = wh.RunBatch(
      warehouse::MakeUpdateGeneratingChanges(wh.catalog(), 10000, 1));
  PrintReport("night 1 — update-generating changes (10k rows):", night1);

  // Night 2: new-date insertions only (the common warehouse pattern).
  warehouse::BatchReport night2 = wh.RunBatch(
      warehouse::MakeInsertionGeneratingChanges(wh.catalog(), 10000, 2));
  PrintReport("night 2 — insertion-generating changes (10k rows):", night2);

  // Show a slice of a maintained summary table.
  std::printf("sR_sales after two nights:\n%s\n",
              wh.summary("sR_sales").ToLogicalTable().ToString(10).c_str());

  // Compare with the rematerialization baseline on a fresh warehouse.
  warehouse::Warehouse baseline(warehouse::MakeRetailCatalog(config));
  baseline.DefineSummaryTables(warehouse::RetailSummaryTables());
  core::ChangeSet changes =
      warehouse::MakeUpdateGeneratingChanges(baseline.catalog(), 10000, 1);
  const double remat_seconds = baseline.RematerializeAll(changes);
  std::printf("rematerialization of all four tables: %.2f ms "
              "(vs %.2f ms summary-delta maintenance)\n",
              1e3 * remat_seconds, 1e3 * night1.maintenance_seconds());
  return 0;
}
