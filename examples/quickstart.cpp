// Quickstart: define one summary table over a tiny fact table, run one
// deferred-maintenance cycle (propagate -> apply base changes ->
// refresh) and watch the summary stay consistent.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/maintenance.h"
#include "core/propagate.h"
#include "core/refresh.h"
#include "core/self_maintenance.h"
#include "core/summary_table.h"

using namespace sdelta;          // NOLINT: example brevity
using rel::Expression;
using rel::Value;

int main() {
  // 1. A catalog with one fact table: sales(product, qty).
  rel::Catalog catalog;
  rel::Schema sales_schema;
  sales_schema.AddColumn("product", rel::ValueType::kString);
  sales_schema.AddColumn("qty", rel::ValueType::kInt64);
  rel::Table sales(sales_schema, "sales");
  sales.Insert({Value::String("apple"), Value::Int64(3)});
  sales.Insert({Value::String("apple"), Value::Int64(5)});
  sales.Insert({Value::String("pear"), Value::Int64(2)});
  catalog.AddTable(std::move(sales));

  // 2. A summary table: per-product COUNT(*) and SUM(qty). The library
  //    automatically augments the view so it stays maintainable under
  //    deletions (COUNT(*) plus a COUNT(qty) companion).
  core::ViewDef view;
  view.name = "product_totals";
  view.fact_table = "sales";
  view.group_by = {"product"};
  view.aggregates = {rel::CountStar("n"),
                     rel::Sum(Expression::Column("qty"), "total_qty")};
  core::AugmentedView augmented =
      core::AugmentForSelfMaintenance(catalog, view);

  core::SummaryTable summary(augmented, catalog);
  summary.MaterializeFrom(catalog);
  std::printf("initial summary:\n%s\n",
              summary.ToLogicalTable().ToString().c_str());

  // 3. Deferred changes arrive during the day: two inserts, one delete.
  core::ChangeSet changes;
  changes.fact_table = "sales";
  changes.fact = core::DeltaSet(catalog.GetTable("sales").schema());
  changes.fact.insertions.Insert({Value::String("pear"), Value::Int64(7)});
  changes.fact.insertions.Insert({Value::String("plum"), Value::Int64(1)});
  changes.fact.deletions.Insert({Value::String("apple"), Value::Int64(3)});

  // 4. PROPAGATE (outside the batch window; summary stays queryable):
  //    compute the summary-delta — the net change per group.
  rel::Table sd = core::ComputeSummaryDelta(catalog, augmented, changes);
  std::printf("summary-delta:\n%s\n", sd.ToString().c_str());

  // 5. The nightly batch window: apply changes to the base table, then
  //    REFRESH the summary from the delta — one touch per group.
  core::ApplyChangeSet(catalog, changes);
  core::RefreshStats stats = core::Refresh(catalog, summary, sd);
  std::printf("refresh: %zu inserted, %zu updated, %zu deleted\n\n",
              stats.inserted, stats.updated, stats.deleted);

  std::printf("maintained summary:\n%s\n",
              summary.ToLogicalTable().ToString().c_str());

  // 6. Sanity: identical to recomputing from scratch.
  rel::Table recomputed = core::EvaluateView(catalog, augmented.physical);
  std::printf("matches full recomputation: %s\n",
              rel::Table::BagEquals(recomputed, summary.ToTable()) ? "yes"
                                                                   : "NO");
  return 0;
}
