// Lattice explorer: prints the structural lattices of the paper —
// the cube lattice of Figure 4, the combined dimension-hierarchy
// lattice of Figure 5, and the optimized V-lattice of Figure 8 — all
// derived from catalog metadata (foreign keys + functional
// dependencies).
//
// Build & run:  ./build/examples/cube_explorer
#include <cstdio>

#include "lattice/cube_lattice.h"
#include "lattice/hierarchy.h"
#include "lattice/plan.h"
#include "lattice/vlattice.h"
#include "warehouse/retail_schema.h"

using namespace sdelta;  // NOLINT: example brevity

int main() {
  warehouse::RetailConfig config;
  config.num_pos_rows = 5000;
  rel::Catalog catalog = warehouse::MakeRetailCatalog(config);

  std::printf("=== Figure 4: the 2^3 cube lattice over "
              "(storeID, itemID, date) ===\n");
  lattice::AttributeLattice cube =
      lattice::BuildCubeLattice({"storeID", "itemID", "date"});
  std::printf("%zu nodes, %zu edges\n%s\n", cube.nodes.size(),
              cube.edges.size(), cube.ToString().c_str());

  std::printf("=== dimension hierarchies (from declared FDs) ===\n");
  std::vector<lattice::DimensionHierarchy> hierarchies =
      lattice::FactHierarchies(catalog, "pos", {"date"});
  for (const lattice::DimensionHierarchy& h : hierarchies) {
    std::printf("  %s:", h.name.c_str());
    for (const std::string& level : h.levels) {
      std::printf(" %s ->", level.c_str());
    }
    std::printf(" ()\n");
  }

  std::printf("\n=== Figure 5: the combined lattice "
              "(direct product, %s) ===\n",
              "[HRU96]");
  lattice::AttributeLattice combined =
      lattice::CombineHierarchies(hierarchies);
  std::printf("%zu nodes, %zu edges\n", combined.nodes.size(),
              combined.edges.size());
  // Print the nodes grouped by coarseness (rows of Figure 5).
  size_t printed = 0;
  for (const std::vector<std::string>& node : combined.nodes) {
    std::string s = "(";
    for (size_t i = 0; i < node.size(); ++i) {
      if (i > 0) s += ", ";
      s += node[i];
    }
    s += ")";
    std::printf("  %-34s", s.c_str());
    if (++printed % 3 == 0) std::printf("\n");
  }
  std::printf("\n");

  std::printf("\n=== §3.4: partially-materialized lattice "
              "(removing (storeID, itemID)) ===\n");
  auto removed = cube.Find({"storeID", "itemID"});
  lattice::AttributeLattice pruned = lattice::RemoveNodes(cube, {*removed});
  std::printf("%zu nodes, %zu edges (edges spliced through the removed "
              "node)\n\n",
              pruned.nodes.size(), pruned.edges.size());

  std::printf("=== Figure 8: the optimized V-lattice of the four "
              "summary tables ===\n");
  std::vector<core::ViewDef> friendly = lattice::MakeLatticeFriendly(
      catalog, warehouse::RetailSummaryTables());
  std::vector<core::AugmentedView> augmented;
  for (const core::ViewDef& v : friendly) {
    std::printf("  %s\n", v.ToString().c_str());
    augmented.push_back(core::AugmentForSelfMaintenance(catalog, v));
  }
  lattice::VLattice vlattice =
      lattice::BuildVLattice(catalog, std::move(augmented));
  std::printf("\nderives edges:\n%s", vlattice.ToString().c_str());

  lattice::MaintenancePlan plan = lattice::ChoosePlan(catalog, vlattice);
  std::printf("\nchosen propagation plan:\n%s",
              plan.ToString(vlattice).c_str());
  return 0;
}
