// SQL workbench: defines the paper's summary tables from SQL text
// (Figure 1 verbatim), answers ad-hoc SQL queries from the cheapest
// materialized view, and snapshots the whole warehouse to disk.
//
// Build & run:  ./build/examples/sql_workbench
#include <cstdio>
#include <filesystem>

#include "core/sql_parser.h"
#include "warehouse/persistence.h"
#include "warehouse/retail_schema.h"
#include "warehouse/warehouse.h"
#include "warehouse/workload.h"

using namespace sdelta;  // NOLINT: example brevity

int main() {
  warehouse::RetailConfig config;
  config.num_pos_rows = 50000;
  warehouse::Warehouse wh(warehouse::MakeRetailCatalog(config));

  // The four summary tables of Figure 1, parsed from SQL.
  const char* kViewSql[] = {
      "CREATE VIEW SID_sales(storeID, itemID, date, TotalCount,"
      " TotalQuantity) AS"
      " SELECT storeID, itemID, date, COUNT(*) AS TotalCount,"
      " SUM(qty) AS TotalQuantity FROM pos"
      " GROUP BY storeID, itemID, date",

      "CREATE VIEW sCD_sales(city, date, TotalCount, TotalQuantity) AS"
      " SELECT city, date, COUNT(*) AS TotalCount,"
      " SUM(qty) AS TotalQuantity FROM pos, stores"
      " WHERE pos.storeID = stores.storeID GROUP BY city, date",

      "CREATE VIEW SiC_sales(storeID, category, TotalCount, EarliestSale,"
      " TotalQuantity) AS"
      " SELECT storeID, category, COUNT(*) AS TotalCount,"
      " MIN(date) AS EarliestSale, SUM(qty) AS TotalQuantity"
      " FROM pos, items WHERE pos.itemID = items.itemID"
      " GROUP BY storeID, category",

      "CREATE VIEW sR_sales(region, TotalCount, TotalQuantity) AS"
      " SELECT region, COUNT(*) AS TotalCount, SUM(qty) AS TotalQuantity"
      " FROM pos, stores WHERE pos.storeID = stores.storeID"
      " GROUP BY region",
  };
  std::vector<core::ViewDef> views;
  for (const char* sql : kViewSql) {
    views.push_back(core::ParseViewDef(wh.catalog(), sql));
    std::printf("defined %s\n", views.back().name.c_str());
  }
  wh.DefineSummaryTables(views);

  // A nightly batch keeps them fresh.
  wh.RunBatch(warehouse::MakeUpdateGeneratingChanges(wh.catalog(), 5000, 1));

  // Ad-hoc queries are answered from the cheapest derivable view.
  const char* kQueries[] = {
      "SELECT region, SUM(qty) AS total FROM pos, stores"
      " WHERE pos.storeID = stores.storeID GROUP BY region",
      "SELECT category, MIN(date) AS first_sale FROM pos, items"
      " WHERE pos.itemID = items.itemID GROUP BY category",
      "SELECT city, AVG(qty) AS avg_qty FROM pos, stores"
      " WHERE pos.storeID = stores.storeID GROUP BY city",
      // No summary table can serve MAX(price): falls back to base.
      "SELECT storeID, MAX(price) AS top_price FROM pos GROUP BY storeID",
  };
  for (const char* sql : kQueries) {
    lattice::AnswerResult r = wh.Query(sql);
    std::printf("\nquery: %s\n  answered from %s (%zu rows read)\n", sql,
                r.from_base ? "base tables" : r.source_view.c_str(),
                r.rows_read);
    std::printf("%s", r.rows.ToString(4).c_str());
  }

  // Snapshot and restore.
  const std::string dir =
      (std::filesystem::temp_directory_path() / "sdelta_workbench").string();
  warehouse::SaveWarehouse(wh, dir);
  warehouse::Warehouse restored = warehouse::LoadWarehouse(dir, views);
  std::printf("\nsnapshot at %s restored: %zu summary tables, pos has %zu"
              " rows\n",
              dir.c_str(), restored.NumSummaryTables(),
              restored.catalog().GetTable("pos").NumRows());
  std::filesystem::remove_all(dir);
  return 0;
}
