// An interactive warehouse shell over the paper's retail schema, now
// running on the concurrent service runtime (src/service/): ingested
// batches go through the WAL + maintenance loop, queries answer from
// pinned epoch snapshots, and the service can checkpoint to disk.
// Reads commands from stdin.
//
//   ./build/examples/warehouse_shell [pos_rows] [data_dir] [http_port]
//                                    [num_shards] [num_replicas]
//
// `data_dir` holds the WAL and checkpoints (default: a per-process temp
// directory, wiped on exit). Start from a fresh directory when changing
// the set of summary tables: a checkpoint records their schemas.
// `http_port` starts the embedded scrape endpoint on 127.0.0.1 (0 =
// pick an ephemeral port; the bound port is printed at startup). Routes:
// /metrics /healthz /varz /epochs /events /timeseries /profile /anomalies.
// `num_shards` > 0 shards the refresh phase by group key (DESIGN.md
// §15); `num_replicas` > 0 starts that many epoch-shipping read
// replicas at boot (more can be added with `replicas start <n>`). The
// writer always publishes installed epochs to <data_dir>/ship.log, so
// replicas can attach at any time.
//
// Commands:
//   CREATE VIEW ...   define + materialize a summary table (SQL dialect)
//   SELECT ...        answer a query (from a pinned snapshot when a view
//                     derives it, else from the live warehouse)
//   DROP <name>       remove a summary table
//   tables            list base tables with per-column storage layout
//                     (column type, storage mode, null count, dict size)
//   summaries         list summary tables
//   lattice           show derives edges and the propagation plan
//   batch <kind> <n>  append a change set and flush; kind = update |
//                     insert | backfill | recat
//   explain <kind> <n> [dot|json]
//                     annotated plan tree (estimates only) for such a
//                     batch, without running it
//   explain analyze <kind> <n> [dot|json]
//                     run the batch and annotate the tree with actual
//                     cardinalities and refresh outcomes
//   service stats     queue depth, epoch, staleness, last refresh window
//   service flush     force a maintenance batch and wait for it
//   service checkpoint
//                     snapshot to <data_dir>/checkpoint + truncate WAL
//   service slo       SLO targets, violation counts, burn rate, health
//   service events    the structured event log
//   history [metric]  per-batch metric history from the time-series ring
//                     (no metric: list the recorded series)
//   profile [collapsed]
//                     cumulative self-time profile of the maintenance
//                     path; `collapsed` prints flamegraph.pl input
//   anomalies         detector state + flight-recorder bundles on disk
//   shards            per-shard epochs, slice rows, and routed delta
//                     rows (requires num_shards > 0 at startup)
//   replicas          read-replica status: applied epoch/seq, cursor,
//                     and epoch lag behind the writer
//   replicas start <n>
//                     checkpoint the writer and attach n more replicas
//                     bootstrapped from that checkpoint
//   replicas catchup  pull + apply the ship stream on every replica,
//                     printing the measured catch-up lag
//   replicas query <i> SELECT ...
//                     answer a query from replica i's pinned snapshot
//   metrics           Prometheus text exposition of all pipeline metrics
//   dicts             per-column string dictionaries and per-view packed
//                     key stats (see DESIGN.md §8)
//   save <dir>        snapshot catalog + summaries
//   help, quit
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/export_prometheus.h"
#include "replica/replica.h"
#include "replica/ship.h"
#include "replica/transport.h"
#include "service/service.h"
#include "shard/sharded_maintenance.h"
#include "warehouse/persistence.h"
#include "warehouse/retail_schema.h"
#include "warehouse/warehouse.h"
#include "warehouse/workload.h"

using namespace sdelta;  // NOLINT: example brevity

namespace {

void PrintHelp() {
  std::printf(
      "commands: CREATE VIEW ... | SELECT ... | DROP <view> | tables |\n"
      "          summaries | lattice | batch <update|insert|backfill|"
      "recat> <n> |\n"
      "          explain [analyze] <kind> <n> [dot|json] |\n"
      "          service <stats|flush|checkpoint|slo|events> | metrics |\n"
      "          history [metric] | profile [collapsed] | anomalies |\n"
      "          shards | replicas [start <n> | catchup | query <i> "
      "SELECT ...] |\n"
      "          mqo | dicts | save <dir> | help | quit\n");
}

core::ChangeSet MakeChanges(const rel::Catalog& catalog,
                            const std::string& kind, size_t n, uint64_t seed) {
  if (kind == "update") {
    return warehouse::MakeUpdateGeneratingChanges(catalog, n, seed);
  }
  if (kind == "insert") {
    return warehouse::MakeInsertionGeneratingChanges(catalog, n, seed);
  }
  if (kind == "backfill") {
    return warehouse::MakeBackfillChanges(catalog, n, seed);
  }
  if (kind == "recat") {
    return warehouse::MakeItemRecategorization(catalog, n, seed);
  }
  throw std::invalid_argument("unknown batch kind '" + kind + "'");
}

/// Generates a change set against the quiescent live catalog.
core::ChangeSet MakeChangesQuiesced(service::WarehouseService& svc,
                                    const std::string& kind, size_t n,
                                    uint64_t seed) {
  core::ChangeSet changes;
  svc.WithWriter([&](warehouse::Warehouse& wh) {
    changes = MakeChanges(wh.catalog(), kind, n, seed);
  });
  return changes;
}

void RunBatchCommand(service::WarehouseService& svc, const std::string& kind,
                     size_t n, uint64_t seed) {
  const uint64_t seq =
      svc.Append(MakeChangesQuiesced(svc, kind, n, seed));
  svc.Flush();
  const warehouse::BatchReport report = svc.LastReport();
  const service::WarehouseService::Stats stats = svc.GetStats();
  std::printf(
      "seq %llu applied | propagate %.2f ms | refresh %.2f ms | "
      "reader window %.3f ms\n",
      static_cast<unsigned long long>(seq), 1e3 * report.propagate_seconds,
      1e3 * report.refresh_seconds,
      1e3 * stats.last_refresh_window_seconds);
  for (const warehouse::ViewBatchReport& v : report.views) {
    std::printf("  %-16s delta=%6zu  +%zu ~%zu -%zu (recomputed %zu)\n",
                v.view.c_str(), v.delta_rows, v.refresh.inserted,
                v.refresh.updated, v.refresh.deleted,
                v.refresh.recomputed_groups);
  }
}

void PrintServiceStats(service::WarehouseService& svc) {
  const service::WarehouseService::Stats s = svc.GetStats();
  std::printf("epoch             %llu\n",
              static_cast<unsigned long long>(s.epoch));
  std::printf("seq (acked/applied/checkpointed) %llu / %llu / %llu\n",
              static_cast<unsigned long long>(s.last_seq),
              static_cast<unsigned long long>(s.applied_seq),
              static_cast<unsigned long long>(s.checkpoint_seq));
  std::printf("queue depth       %zu change sets, %zu rows\n",
              s.queue_changesets, s.queue_rows);
  std::printf("staleness         %.3f s\n", s.staleness_seconds);
  std::printf("last refresh window %.3f ms\n",
              1e3 * s.last_refresh_window_seconds);
  std::printf("batches           %llu (checkpoints %llu, recovered %llu)\n",
              static_cast<unsigned long long>(s.batches),
              static_cast<unsigned long long>(s.checkpoints),
              static_cast<unsigned long long>(s.recovered_records));
}

void PrintServiceSlo(service::WarehouseService& svc) {
  std::printf("%s\n", svc.slo().ToJson().Dump(2).c_str());
  const service::WarehouseService::Health h = svc.CheckHealth();
  std::printf(
      "health: %s (wal_writable=%d maintenance_alive=%d "
      "queue_below_high_water=%d slo_ok=%d staleness=%.3fs)\n",
      h.healthy() ? "ok" : "DEGRADED", h.wal_writable, h.maintenance_alive,
      h.queue_below_high_water, h.slo_ok, h.staleness_seconds);
}

void PrintServiceEvents(service::WarehouseService& svc) {
  const std::vector<obs::Event> events = svc.events().Snapshot();
  std::printf("%llu recorded, %llu dropped, %zu retained\n",
              static_cast<unsigned long long>(svc.events().total_recorded()),
              static_cast<unsigned long long>(svc.events().dropped_count()),
              events.size());
  for (const obs::Event& e : events) {
    std::printf("  #%-4llu %11.6fs %-14s batch=%-4llu req=%-4llu seq=%-5llu "
                "value=%-10.6g %s\n",
                static_cast<unsigned long long>(e.id), 1e-9 * e.ts_ns,
                obs::EventTypeName(e.type),
                static_cast<unsigned long long>(e.batch_id),
                static_cast<unsigned long long>(e.request_id),
                static_cast<unsigned long long>(e.seq), e.value,
                e.detail.c_str());
  }
}

void PrintHistory(service::WarehouseService& svc, const std::string& metric) {
  const obs::TimeSeriesStore* ts = svc.timeseries();
  if (ts == nullptr) {
    std::printf("time-series store disabled (timeseries_capacity = 0)\n");
    return;
  }
  if (metric.empty()) {
    std::printf("%zu batches retained (%llu appended, %llu beyond the "
                "ring); series:\n",
                ts->size(), static_cast<unsigned long long>(ts->appended()),
                static_cast<unsigned long long>(ts->dropped()));
    for (const auto& [name, kind] : ts->SeriesNames()) {
      std::printf("  %-44s %s\n", name.c_str(), obs::SampleKindName(kind));
    }
    return;
  }
  const std::vector<obs::TimeSeriesPoint> points = ts->Query(metric);
  if (points.empty()) {
    std::printf("no samples for '%s' (try 'history' for the series list)\n",
                metric.c_str());
    return;
  }
  for (const obs::TimeSeriesPoint& p : points) {
    std::printf("  batch %-6llu %.6g\n",
                static_cast<unsigned long long>(p.batch_id), p.value);
  }
}

void PrintProfile(service::WarehouseService& svc, const std::string& format) {
  const obs::Profiler* profiler = svc.profiler();
  if (profiler == nullptr) {
    std::printf("profiler disabled (Options::profile = false)\n");
    return;
  }
  if (format == "collapsed") {
    // flamegraph.pl input: pipe to tools/flamegraph.pl or speedscope.
    std::printf("%s", profiler->ToCollapsed().c_str());
    return;
  }
  std::printf("%llu batches profiled\n",
              static_cast<unsigned long long>(profiler->batches()));
  std::printf("%s", profiler->ToText().c_str());
}

void PrintAnomalies(service::WarehouseService& svc) {
  const obs::AnomalyDetector* detector = svc.anomalies();
  if (detector == nullptr) {
    std::printf("anomaly detection disabled (Options::anomaly.enabled)\n");
    return;
  }
  std::printf("%llu checks, %llu detections\n",
              static_cast<unsigned long long>(detector->checks()),
              static_cast<unsigned long long>(detector->detections()));
  for (const obs::Anomaly& a : detector->recent()) {
    std::printf("  batch %-6llu %-10s %-36s value=%.6g baseline=%.6g "
                "threshold=%.6g\n",
                static_cast<unsigned long long>(a.batch_id), a.kind.c_str(),
                a.metric.c_str(), a.value, a.baseline, a.threshold);
  }
  if (const obs::FlightRecorder* rec = svc.flight_recorder()) {
    const std::vector<std::string> bundles = rec->ListBundles();
    std::printf("flight-recorder bundles in %s:\n", rec->options().dir.c_str());
    for (const std::string& b : bundles) std::printf("  %s\n", b.c_str());
    if (bundles.empty()) std::printf("  (none)\n");
  }
}

void PrintShards(service::WarehouseService& svc) {
  const shard::ShardedMaintenance* sh = svc.sharded();
  if (sh == nullptr) {
    std::printf(
        "unsharded service; restart with a shard count:\n"
        "  warehouse_shell <pos_rows> <data_dir> <http_port> <num_shards>\n");
    return;
  }
  std::printf("%zu shards over %zu views\n", sh->num_shards(),
              sh->num_views());
  for (size_t s = 0; s < sh->num_shards(); ++s) {
    std::printf(
        "  shard %-3zu epoch %-6llu rows %-8zu delta rows last=%-8llu "
        "total=%llu\n",
        s, static_cast<unsigned long long>(sh->shard_epoch(s)),
        sh->ShardRows(s),
        static_cast<unsigned long long>(sh->last_delta_rows(s)),
        static_cast<unsigned long long>(sh->total_delta_rows(s)));
  }
}

/// The shell's replica fleet: every replica tails the writer's durable
/// <data_dir>/ship.log through one shared (stateless) file transport.
struct ReplicaFleet {
  std::string ship_path;
  std::unique_ptr<replica::FileShipTransport> transport;
  std::vector<std::unique_ptr<replica::ReadReplica>> replicas;
};

void StartReplicas(service::WarehouseService& svc, ReplicaFleet& fleet,
                   const warehouse::RetailConfig& config, size_t n) {
  // Bootstrap from a fresh writer checkpoint so new replicas pick up
  // the current views (DDL is not shipped) and dedup shipped history
  // by sequence. The checkpoint stores summary rows but not the view
  // definitions, so those ride along explicitly.
  std::vector<core::ViewDef> views;
  svc.WithWriter([&](warehouse::Warehouse& wh) { views = wh.defined_views(); });
  svc.Checkpoint();
  if (fleet.transport == nullptr) {
    fleet.transport =
        std::make_unique<replica::FileShipTransport>(fleet.ship_path);
  }
  for (size_t i = 0; i < n; ++i) {
    const size_t idx = fleet.replicas.size();
    replica::ReadReplica::Options ropts;
    ropts.bootstrap_checkpoint = svc.data_dir() + "/checkpoint";
    fleet.replicas.push_back(replica::ReadReplica::Open(
        svc.data_dir() + "/replica" + std::to_string(idx),
        warehouse::MakeRetailCatalog(config), views,
        fleet.transport.get(), std::move(ropts)));
    fleet.replicas.back()->Catchup();
    std::printf("replica %zu attached at epoch %llu\n", idx,
                static_cast<unsigned long long>(
                    fleet.replicas.back()->applied_epoch()));
  }
}

void PrintReplicas(service::WarehouseService& svc, ReplicaFleet& fleet) {
  if (fleet.replicas.empty()) {
    std::printf("no replicas; try 'replicas start <n>'\n");
    return;
  }
  const uint64_t writer_epoch = svc.GetStats().epoch;
  std::printf("writer epoch %llu\n",
              static_cast<unsigned long long>(writer_epoch));
  for (size_t i = 0; i < fleet.replicas.size(); ++i) {
    const replica::ReadReplica& r = *fleet.replicas[i];
    const uint64_t applied = r.applied_epoch();
    std::printf(
        "  replica %-3zu epoch %-6llu (lag %llu) seq %-6llu cursor %llu\n",
        i, static_cast<unsigned long long>(applied),
        static_cast<unsigned long long>(
            writer_epoch > applied ? writer_epoch - applied : 0),
        static_cast<unsigned long long>(r.applied_seq()),
        static_cast<unsigned long long>(r.cursor()));
  }
}

void CatchupReplicas(ReplicaFleet& fleet) {
  if (fleet.replicas.empty()) {
    std::printf("no replicas; try 'replicas start <n>'\n");
    return;
  }
  for (size_t i = 0; i < fleet.replicas.size(); ++i) {
    const replica::ReadReplica::CatchupReport rep =
        fleet.replicas[i]->Catchup();
    std::printf(
        "  replica %-3zu applied %llu records in %.3f ms (dup %llu, "
        "crc %llu, gap %llu) -> epoch %llu\n",
        i, static_cast<unsigned long long>(rep.applied), 1e3 * rep.seconds,
        static_cast<unsigned long long>(rep.duplicates),
        static_cast<unsigned long long>(rep.crc_rejects),
        static_cast<unsigned long long>(rep.gap_rejects),
        static_cast<unsigned long long>(fleet.replicas[i]->applied_epoch()));
  }
}

void PrintExplain(const lattice::ExplainResult& explain,
                  const std::string& format) {
  if (format == "dot") {
    std::printf("%s", explain.ToDot().c_str());
  } else if (format == "json") {
    std::printf("%s\n", explain.ToJson().Dump(1).c_str());
  } else {
    std::printf("%s", explain.ToText().c_str());
  }
}

/// explain [analyze] <kind> [n] [dot|json]. Plain explain peeks at the
/// *next* batch's change set without consuming the seed; analyze runs
/// the batch for real (same seed stepping as `batch`).
void RunExplainCommand(service::WarehouseService& svc, std::istringstream& in,
                       uint64_t* seed) {
  std::string kind;
  in >> kind;
  bool analyze = false;
  if (kind == "analyze") {
    analyze = true;
    in >> kind;
  }
  size_t n = 0;
  in >> n;
  if (n == 0) n = 1000;
  std::string format;
  in >> format;
  const uint64_t use_seed = analyze ? ++*seed : *seed + 1;
  svc.WithWriter([&](warehouse::Warehouse& wh) {
    core::ChangeSet changes = MakeChanges(wh.catalog(), kind, n, use_seed);
    PrintExplain(analyze ? wh.ExplainAnalyze(changes) : wh.Explain(changes),
                 format);
  });
}

}  // namespace

int main(int argc, char** argv) {
  warehouse::RetailConfig config;
  config.num_pos_rows = argc > 1 ? std::stoul(argv[1]) : 20000;
  const bool temp_data_dir = argc <= 2;
  const std::string data_dir =
      temp_data_dir ? (std::filesystem::temp_directory_path() /
                       ("sdelta_shell_" + std::to_string(::getpid())))
                          .string()
                    : std::string(argv[2]);

  obs::MetricsRegistry metrics;
  service::WarehouseService::Options options;
  options.metrics = &metrics;
  options.auto_batching = false;  // the shell flushes explicitly
  // The shell is a diagnosis surface: keep the whole historical layer on
  // (per-batch history, maintenance profile, anomaly flight recorder).
  options.profile = true;
  options.anomaly.enabled = true;
  if (argc > 3) options.http_port = std::stoi(argv[3]);
  if (argc > 4) options.num_shards = std::stoul(argv[4]);
  const size_t boot_replicas = argc > 5 ? std::stoul(argv[5]) : 0;

  // The writer always publishes installed epochs durably, so replicas
  // can attach later (or across restarts) without missing history.
  std::filesystem::create_directories(data_dir);
  ReplicaFleet fleet;
  fleet.ship_path = data_dir + "/ship.log";
  replica::FileShipLog ship(fleet.ship_path);
  options.ship = &ship;

  auto svc = service::WarehouseService::Open(
      data_dir, warehouse::MakeRetailCatalog(config),
      /*views=*/{}, options);
  std::printf(
      "retail warehouse service ready: pos=%zu rows, data dir %s.\n"
      "Type 'help'.\n",
      config.num_pos_rows, data_dir.c_str());
  if (options.num_shards > 0) {
    std::printf("refresh sharded %zu ways (see 'shards')\n",
                options.num_shards);
  }
  if (boot_replicas > 0) StartReplicas(*svc, fleet, config, boot_replicas);
  if (svc->http_port() >= 0) {
    std::printf(
        "scrape endpoint: http://127.0.0.1:%d  "
        "(/metrics /healthz /varz /epochs /events /timeseries /profile "
        "/anomalies)\n",
        svc->http_port());
  }

  uint64_t seed = 1;
  std::string line;
  std::printf("> ");
  while (std::getline(std::cin, line)) {
    try {
      std::istringstream in(line);
      std::string word;
      in >> word;
      std::string upper = word;
      for (char& c : upper) c = static_cast<char>(std::toupper(c));

      if (word.empty()) {
        // fallthrough to prompt
      } else if (upper == "QUIT" || upper == "EXIT") {
        break;
      } else if (upper == "HELP") {
        PrintHelp();
      } else if (upper == "TABLES") {
        svc->WithWriter([](warehouse::Warehouse& wh) {
          for (const std::string& name : wh.catalog().TableNames()) {
            const rel::Table& t = wh.catalog().GetTable(name);
            std::printf("  %-10s %zu rows, %zu bytes\n", name.c_str(),
                        t.NumRows(), t.ApproxBytes());
            for (size_t c = 0; c < t.schema().NumColumns(); ++c) {
              const rel::ColumnVector& cv = t.column_data(c);
              std::printf("    %-16s %-7s %-6s nulls=%zu",
                          t.schema().column(c).name.c_str(),
                          rel::ValueTypeName(t.schema().column(c).type),
                          cv.StorageName(), cv.null_count());
              if (cv.dict() != nullptr) {
                std::printf(" dict=%zu codes", cv.dict()->size());
              }
              std::printf("\n");
            }
          }
        });
      } else if (upper == "SUMMARIES") {
        const service::ReadSnapshot snap = svc->Snapshot();
        for (const std::string& name : snap.ViewNames()) {
          std::printf("  %-16s %zu rows (epoch %llu)\n", name.c_str(),
                      snap.view(name).NumRows(),
                      static_cast<unsigned long long>(snap.epoch()));
        }
      } else if (upper == "LATTICE") {
        svc->WithWriter([](warehouse::Warehouse& wh) {
          std::printf("%s", wh.vlattice().ToString().c_str());
          std::printf("plan:\n%s", wh.plan().ToString(wh.vlattice()).c_str());
        });
      } else if (upper == "BATCH") {
        std::string kind;
        size_t n = 0;
        in >> kind >> n;
        RunBatchCommand(*svc, kind, n == 0 ? 1000 : n, ++seed);
      } else if (upper == "EXPLAIN") {
        RunExplainCommand(*svc, in, &seed);
      } else if (upper == "SERVICE") {
        std::string sub;
        in >> sub;
        if (sub == "stats") {
          PrintServiceStats(*svc);
        } else if (sub == "flush") {
          svc->Flush();
          std::printf("flushed through seq %llu\n",
                      static_cast<unsigned long long>(
                          svc->GetStats().applied_seq));
        } else if (sub == "checkpoint") {
          svc->Checkpoint();
          const service::WarehouseService::Stats s = svc->GetStats();
          std::printf("checkpointed at seq %llu (WAL truncated)\n",
                      static_cast<unsigned long long>(s.checkpoint_seq));
        } else if (sub == "slo") {
          PrintServiceSlo(*svc);
        } else if (sub == "events") {
          PrintServiceEvents(*svc);
        } else {
          std::printf("usage: service <stats|flush|checkpoint|slo|events>\n");
        }
      } else if (upper == "HISTORY") {
        std::string metric;
        in >> metric;
        PrintHistory(*svc, metric);
      } else if (upper == "PROFILE") {
        std::string format;
        in >> format;
        PrintProfile(*svc, format);
      } else if (upper == "ANOMALIES") {
        PrintAnomalies(*svc);
      } else if (upper == "SHARDS") {
        PrintShards(*svc);
      } else if (upper == "REPLICAS") {
        std::string sub;
        in >> sub;
        if (sub == "start") {
          size_t n = 0;
          in >> n;
          StartReplicas(*svc, fleet, config, n == 0 ? 1 : n);
        } else if (sub == "catchup") {
          CatchupReplicas(fleet);
        } else if (sub == "query") {
          size_t idx = 0;
          in >> idx;
          std::string sql;
          std::getline(in, sql);
          if (idx >= fleet.replicas.size()) {
            std::printf("no replica %zu (have %zu)\n", idx,
                        fleet.replicas.size());
          } else {
            const lattice::AnswerResult r =
                fleet.replicas[idx]->Snapshot().Query(sql);
            std::printf("-- replica %zu answered from %s (%zu rows read)\n",
                        idx,
                        r.from_base ? "base tables" : r.source_view.c_str(),
                        r.rows_read);
            std::printf("%s", r.rows.ToString(20).c_str());
          }
        } else if (sub.empty()) {
          PrintReplicas(*svc, fleet);
        } else {
          std::printf(
              "usage: replicas [start <n> | catchup | query <i> "
              "SELECT ...]\n");
        }
      } else if (upper == "MQO") {
        if (svc->GetStats().batches == 0) {
          std::printf("no batch yet; run `batch <kind> <n>` first\n");
        } else {
          const warehouse::BatchReport report = svc->LastReport();
          std::printf("%s", lattice::FormatMqoReport(report.mqo,
                                                     report.shared_execs)
                                .c_str());
        }
      } else if (upper == "METRICS") {
        std::printf("%s", obs::ExportPrometheus(metrics).c_str());
      } else if (upper == "DICTS") {
        svc->WithWriter([](warehouse::Warehouse& wh) {
          std::printf("dictionaries (%zu entries total):\n",
                      wh.catalog().dictionaries().TotalEntries());
          for (const auto& [column, entries] :
               wh.catalog().dictionaries().Entries()) {
            std::printf("  %-16s %zu codes\n", column.c_str(), entries);
          }
          std::printf("summary key paths:\n");
          for (const core::AugmentedView& av : wh.vlattice().views) {
            const core::SummaryTable& st = wh.summary(av.name());
            uint64_t packed = st.packed_key_ops();
            uint64_t fallback = st.fallback_key_ops();
            uint64_t total = packed + fallback;
            std::printf("  %-16s %-8s ops=%llu packed=%.1f%%\n",
                        av.name().c_str(),
                        st.keys_packed() ? "packed" : "boxed",
                        static_cast<unsigned long long>(total),
                        total == 0 ? 0.0
                                   : 100.0 * static_cast<double>(packed) /
                                         static_cast<double>(total));
          }
        });
      } else if (upper == "DROP") {
        std::string name;
        in >> name;
        svc->WithWriter(
            [&](warehouse::Warehouse& wh) { wh.DropSummaryTable(name); });
        std::printf("dropped %s\n", name.c_str());
      } else if (upper == "SAVE") {
        std::string dir;
        in >> dir;
        svc->WithWriter([&](warehouse::Warehouse& wh) {
          warehouse::SaveWarehouse(wh, dir);
        });
        std::printf("saved to %s\n", dir.c_str());
      } else if (upper == "CREATE") {
        svc->WithWriter(
            [&](warehouse::Warehouse& wh) { wh.AddSummaryTable(line); });
        const service::ReadSnapshot snap = svc->Snapshot();
        const std::string name = snap.ViewNames().back();
        std::printf("defined %s (%zu rows)\n", name.c_str(),
                    snap.view(name).NumRows());
      } else if (upper == "SELECT") {
        lattice::AnswerResult r;
        try {
          // Snapshot path: answered from a pinned epoch, concurrent
          // with any in-flight maintenance.
          r = svc->Snapshot().Query(line);
        } catch (const std::runtime_error&) {
          // No pinned view derives it — fall back to the live
          // warehouse (base-table evaluation).
          svc->WithWriter(
              [&](warehouse::Warehouse& wh) { r = wh.Query(line); });
        }
        std::printf("-- answered from %s (%zu rows read)\n",
                    r.from_base ? "base tables" : r.source_view.c_str(),
                    r.rows_read);
        std::printf("%s", r.rows.ToString(20).c_str());
      } else {
        std::printf("unknown command; try 'help'\n");
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
    std::printf("> ");
  }
  svc->Stop();
  svc.reset();
  if (temp_data_dir) {
    std::error_code ec;
    std::filesystem::remove_all(data_dir, ec);
  }
  std::printf("bye\n");
  return 0;
}
