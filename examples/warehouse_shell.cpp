// An interactive warehouse shell over the paper's retail schema:
// define summary tables in SQL, run batch windows, answer queries from
// materialized views, snapshot to disk. Reads commands from stdin.
//
//   ./build/examples/warehouse_shell [pos_rows]
//
// Commands:
//   CREATE VIEW ...   define + materialize a summary table (SQL dialect)
//   SELECT ...        answer a query (from a view when possible)
//   DROP <name>       remove a summary table
//   tables            list base tables
//   summaries         list summary tables
//   lattice           show derives edges and the propagation plan
//   batch <kind> <n>  run a batch window; kind = update | insert |
//                     backfill | recat
//   save <dir>        snapshot catalog + summaries
//   help, quit
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "warehouse/persistence.h"
#include "warehouse/retail_schema.h"
#include "warehouse/warehouse.h"
#include "warehouse/workload.h"

using namespace sdelta;  // NOLINT: example brevity

namespace {

void PrintHelp() {
  std::printf(
      "commands: CREATE VIEW ... | SELECT ... | DROP <view> | tables |\n"
      "          summaries | lattice | batch <update|insert|backfill|"
      "recat> <n> |\n"
      "          save <dir> | help | quit\n");
}

void RunBatchCommand(warehouse::Warehouse& wh, const std::string& kind,
                     size_t n, uint64_t seed) {
  core::ChangeSet changes;
  if (kind == "update") {
    changes = warehouse::MakeUpdateGeneratingChanges(wh.catalog(), n, seed);
  } else if (kind == "insert") {
    changes =
        warehouse::MakeInsertionGeneratingChanges(wh.catalog(), n, seed);
  } else if (kind == "backfill") {
    changes = warehouse::MakeBackfillChanges(wh.catalog(), n, seed);
  } else if (kind == "recat") {
    changes = warehouse::MakeItemRecategorization(wh.catalog(), n, seed);
  } else {
    std::printf("unknown batch kind '%s'\n", kind.c_str());
    return;
  }
  warehouse::BatchReport report = wh.RunBatch(changes);
  std::printf("propagate %.2f ms | refresh %.2f ms\n",
              1e3 * report.propagate_seconds, 1e3 * report.refresh_seconds);
  for (const warehouse::ViewBatchReport& v : report.views) {
    std::printf("  %-16s delta=%6zu  +%zu ~%zu -%zu (recomputed %zu)\n",
                v.view.c_str(), v.delta_rows, v.refresh.inserted,
                v.refresh.updated, v.refresh.deleted,
                v.refresh.recomputed_groups);
  }
}

}  // namespace

int main(int argc, char** argv) {
  warehouse::RetailConfig config;
  config.num_pos_rows = argc > 1 ? std::stoul(argv[1]) : 20000;
  warehouse::Warehouse wh(warehouse::MakeRetailCatalog(config));
  wh.DefineSummaryTables({});  // start with no summary tables
  std::printf("retail warehouse ready: pos=%zu rows. Type 'help'.\n",
              config.num_pos_rows);

  uint64_t seed = 1;
  std::string line;
  std::printf("> ");
  while (std::getline(std::cin, line)) {
    try {
      std::istringstream in(line);
      std::string word;
      in >> word;
      std::string upper = word;
      for (char& c : upper) c = static_cast<char>(std::toupper(c));

      if (word.empty()) {
        // fallthrough to prompt
      } else if (upper == "QUIT" || upper == "EXIT") {
        break;
      } else if (upper == "HELP") {
        PrintHelp();
      } else if (upper == "TABLES") {
        for (const std::string& name : wh.catalog().TableNames()) {
          std::printf("  %-10s %zu rows\n", name.c_str(),
                      wh.catalog().GetTable(name).NumRows());
        }
      } else if (upper == "SUMMARIES") {
        for (const core::AugmentedView& av : wh.vlattice().views) {
          std::printf("  %-16s %zu rows\n", av.name().c_str(),
                      wh.summary(av.name()).NumRows());
        }
      } else if (upper == "LATTICE") {
        std::printf("%s", wh.vlattice().ToString().c_str());
        std::printf("plan:\n%s", wh.plan().ToString(wh.vlattice()).c_str());
      } else if (upper == "BATCH") {
        std::string kind;
        size_t n = 0;
        in >> kind >> n;
        RunBatchCommand(wh, kind, n == 0 ? 1000 : n, ++seed);
      } else if (upper == "DROP") {
        std::string name;
        in >> name;
        wh.DropSummaryTable(name);
        std::printf("dropped %s\n", name.c_str());
      } else if (upper == "SAVE") {
        std::string dir;
        in >> dir;
        warehouse::SaveWarehouse(wh, dir);
        std::printf("saved to %s\n", dir.c_str());
      } else if (upper == "CREATE") {
        wh.AddSummaryTable(line);
        std::printf("defined %s (%zu rows)\n",
                    wh.vlattice().views.back().name().c_str(),
                    wh.summary(wh.vlattice().views.back().name()).NumRows());
      } else if (upper == "SELECT") {
        lattice::AnswerResult r = wh.Query(line);
        std::printf("-- answered from %s (%zu rows read)\n",
                    r.from_base ? "base tables" : r.source_view.c_str(),
                    r.rows_read);
        std::printf("%s", r.rows.ToString(20).c_str());
      } else {
        std::printf("unknown command; try 'help'\n");
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
    std::printf("> ");
  }
  std::printf("bye\n");
  return 0;
}
