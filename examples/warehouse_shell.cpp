// An interactive warehouse shell over the paper's retail schema:
// define summary tables in SQL, run batch windows, answer queries from
// materialized views, inspect plans and metrics, snapshot to disk.
// Reads commands from stdin.
//
//   ./build/examples/warehouse_shell [pos_rows]
//
// Commands:
//   CREATE VIEW ...   define + materialize a summary table (SQL dialect)
//   SELECT ...        answer a query (from a view when possible)
//   DROP <name>       remove a summary table
//   tables            list base tables
//   summaries         list summary tables
//   lattice           show derives edges and the propagation plan
//   batch <kind> <n>  run a batch window; kind = update | insert |
//                     backfill | recat
//   explain <kind> <n> [dot|json]
//                     annotated plan tree (estimates only) for such a
//                     batch, without running it
//   explain analyze <kind> <n> [dot|json]
//                     run the batch and annotate the tree with actual
//                     cardinalities and refresh outcomes
//   metrics           Prometheus text exposition of all pipeline metrics
//   dicts             per-column string dictionaries and per-view packed
//                     key stats (see DESIGN.md §8)
//   save <dir>        snapshot catalog + summaries
//   help, quit
#include <cstdio>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/export_prometheus.h"
#include "warehouse/persistence.h"
#include "warehouse/retail_schema.h"
#include "warehouse/warehouse.h"
#include "warehouse/workload.h"

using namespace sdelta;  // NOLINT: example brevity

namespace {

void PrintHelp() {
  std::printf(
      "commands: CREATE VIEW ... | SELECT ... | DROP <view> | tables |\n"
      "          summaries | lattice | batch <update|insert|backfill|"
      "recat> <n> |\n"
      "          explain [analyze] <kind> <n> [dot|json] | metrics |\n"
      "          dicts | save <dir> | help | quit\n");
}

core::ChangeSet MakeChanges(warehouse::Warehouse& wh, const std::string& kind,
                            size_t n, uint64_t seed) {
  if (kind == "update") {
    return warehouse::MakeUpdateGeneratingChanges(wh.catalog(), n, seed);
  }
  if (kind == "insert") {
    return warehouse::MakeInsertionGeneratingChanges(wh.catalog(), n, seed);
  }
  if (kind == "backfill") {
    return warehouse::MakeBackfillChanges(wh.catalog(), n, seed);
  }
  if (kind == "recat") {
    return warehouse::MakeItemRecategorization(wh.catalog(), n, seed);
  }
  throw std::invalid_argument("unknown batch kind '" + kind + "'");
}

void RunBatchCommand(warehouse::Warehouse& wh, const std::string& kind,
                     size_t n, uint64_t seed) {
  warehouse::BatchReport report = wh.RunBatch(MakeChanges(wh, kind, n, seed));
  std::printf("propagate %.2f ms | refresh %.2f ms\n",
              1e3 * report.propagate_seconds, 1e3 * report.refresh_seconds);
  for (const warehouse::ViewBatchReport& v : report.views) {
    std::printf("  %-16s delta=%6zu  +%zu ~%zu -%zu (recomputed %zu)\n",
                v.view.c_str(), v.delta_rows, v.refresh.inserted,
                v.refresh.updated, v.refresh.deleted,
                v.refresh.recomputed_groups);
  }
}

void PrintExplain(const lattice::ExplainResult& explain,
                  const std::string& format) {
  if (format == "dot") {
    std::printf("%s", explain.ToDot().c_str());
  } else if (format == "json") {
    std::printf("%s\n", explain.ToJson().Dump(1).c_str());
  } else {
    std::printf("%s", explain.ToText().c_str());
  }
}

/// explain [analyze] <kind> [n] [dot|json]. Plain explain peeks at the
/// *next* batch's change set without consuming the seed; analyze runs
/// the batch for real (same seed stepping as `batch`).
void RunExplainCommand(warehouse::Warehouse& wh, std::istringstream& in,
                       uint64_t* seed) {
  std::string kind;
  in >> kind;
  bool analyze = false;
  if (kind == "analyze") {
    analyze = true;
    in >> kind;
  }
  size_t n = 0;
  in >> n;
  if (n == 0) n = 1000;
  std::string format;
  in >> format;
  if (analyze) {
    core::ChangeSet changes = MakeChanges(wh, kind, n, ++*seed);
    PrintExplain(wh.ExplainAnalyze(changes), format);
  } else {
    core::ChangeSet changes = MakeChanges(wh, kind, n, *seed + 1);
    PrintExplain(wh.Explain(changes), format);
  }
}

}  // namespace

int main(int argc, char** argv) {
  warehouse::RetailConfig config;
  config.num_pos_rows = argc > 1 ? std::stoul(argv[1]) : 20000;
  obs::MetricsRegistry metrics;
  warehouse::Warehouse::Options options;
  options.metrics = &metrics;
  warehouse::Warehouse wh(warehouse::MakeRetailCatalog(config), options);
  wh.DefineSummaryTables({});  // start with no summary tables
  std::printf("retail warehouse ready: pos=%zu rows. Type 'help'.\n",
              config.num_pos_rows);

  uint64_t seed = 1;
  std::string line;
  std::printf("> ");
  while (std::getline(std::cin, line)) {
    try {
      std::istringstream in(line);
      std::string word;
      in >> word;
      std::string upper = word;
      for (char& c : upper) c = static_cast<char>(std::toupper(c));

      if (word.empty()) {
        // fallthrough to prompt
      } else if (upper == "QUIT" || upper == "EXIT") {
        break;
      } else if (upper == "HELP") {
        PrintHelp();
      } else if (upper == "TABLES") {
        for (const std::string& name : wh.catalog().TableNames()) {
          std::printf("  %-10s %zu rows\n", name.c_str(),
                      wh.catalog().GetTable(name).NumRows());
        }
      } else if (upper == "SUMMARIES") {
        for (const core::AugmentedView& av : wh.vlattice().views) {
          std::printf("  %-16s %zu rows\n", av.name().c_str(),
                      wh.summary(av.name()).NumRows());
        }
      } else if (upper == "LATTICE") {
        std::printf("%s", wh.vlattice().ToString().c_str());
        std::printf("plan:\n%s", wh.plan().ToString(wh.vlattice()).c_str());
      } else if (upper == "BATCH") {
        std::string kind;
        size_t n = 0;
        in >> kind >> n;
        RunBatchCommand(wh, kind, n == 0 ? 1000 : n, ++seed);
      } else if (upper == "EXPLAIN") {
        RunExplainCommand(wh, in, &seed);
      } else if (upper == "METRICS") {
        std::printf("%s", obs::ExportPrometheus(metrics).c_str());
      } else if (upper == "DICTS") {
        std::printf("dictionaries (%zu entries total):\n",
                    wh.catalog().dictionaries().TotalEntries());
        for (const auto& [column, entries] :
             wh.catalog().dictionaries().Entries()) {
          std::printf("  %-16s %zu codes\n", column.c_str(), entries);
        }
        std::printf("summary key paths:\n");
        for (const core::AugmentedView& av : wh.vlattice().views) {
          const core::SummaryTable& st = wh.summary(av.name());
          uint64_t packed = st.packed_key_ops();
          uint64_t fallback = st.fallback_key_ops();
          uint64_t total = packed + fallback;
          std::printf("  %-16s %-8s ops=%llu packed=%.1f%%\n",
                      av.name().c_str(), st.keys_packed() ? "packed" : "boxed",
                      static_cast<unsigned long long>(total),
                      total == 0 ? 0.0 : 100.0 * static_cast<double>(packed) /
                                             static_cast<double>(total));
        }
      } else if (upper == "DROP") {
        std::string name;
        in >> name;
        wh.DropSummaryTable(name);
        std::printf("dropped %s\n", name.c_str());
      } else if (upper == "SAVE") {
        std::string dir;
        in >> dir;
        warehouse::SaveWarehouse(wh, dir);
        std::printf("saved to %s\n", dir.c_str());
      } else if (upper == "CREATE") {
        wh.AddSummaryTable(line);
        std::printf("defined %s (%zu rows)\n",
                    wh.vlattice().views.back().name().c_str(),
                    wh.summary(wh.vlattice().views.back().name()).NumRows());
      } else if (upper == "SELECT") {
        lattice::AnswerResult r = wh.Query(line);
        std::printf("-- answered from %s (%zu rows read)\n",
                    r.from_base ? "base tables" : r.source_view.c_str(),
                    r.rows_read);
        std::printf("%s", r.rows.ToString(20).c_str());
      } else {
        std::printf("unknown command; try 'help'\n");
      }
    } catch (const std::exception& e) {
      std::printf("error: %s\n", e.what());
    }
    std::printf("> ");
  }
  std::printf("bye\n");
  return 0;
}
