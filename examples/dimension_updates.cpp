// Dimension-table changes (paper §4.1.4): items are re-assigned to new
// categories, and the SiC_sales summary table — which groups by
// category — is maintained incrementally. Rows migrate between groups
// without recomputing the view, including its non-self-maintainable
// MIN(date) column.
//
// Build & run:  ./build/examples/dimension_updates
#include <cstdio>

#include "core/maintenance.h"
#include "core/propagate.h"
#include "core/refresh.h"
#include "warehouse/retail_schema.h"
#include "warehouse/workload.h"

using namespace sdelta;  // NOLINT: example brevity

int main() {
  warehouse::RetailConfig config;
  config.num_pos_rows = 20000;
  config.num_items = 100;
  config.num_categories = 8;
  rel::Catalog catalog = warehouse::MakeRetailCatalog(config);

  // SiC_sales from Figure 1: storeID x category with MIN(date).
  core::ViewDef view = warehouse::RetailSummaryTables()[2];
  std::printf("%s\n\n", view.ToString().c_str());

  core::AugmentedView augmented =
      core::AugmentForSelfMaintenance(catalog, view);
  core::SummaryTable summary(augmented, catalog);
  summary.MaterializeFrom(catalog);
  std::printf("initial: %zu (store, category) groups\n", summary.NumRows());

  // Re-categorize 10 items: expressed as a delta on the items dimension
  // (delete the old row, insert the row with the new category).
  core::ChangeSet changes =
      warehouse::MakeItemRecategorization(catalog, 10, 7);
  const core::DeltaSet& items_delta = changes.dimensions.at("items");
  std::printf("items delta: %zu deletions + %zu insertions\n",
              items_delta.deletions.NumRows(),
              items_delta.insertions.NumRows());

  // Propagate: the prepare-changes expansion joins the OLD pos rows with
  // the items delta (pi_items_SiC_sales of §4.1.4), producing net moves
  // between category groups.
  core::PropagateStats pstats;
  rel::Table sd =
      core::ComputeSummaryDelta(catalog, augmented, changes, {}, &pstats);
  std::printf("prepare-changes rows: %zu -> summary-delta groups: %zu\n",
              pstats.prepared_tuples, pstats.delta_groups);

  core::ApplyChangeSet(catalog, changes);
  core::RefreshStats rstats = core::Refresh(catalog, summary, sd);
  std::printf("refresh: %zu inserted, %zu updated, %zu deleted, "
              "%zu groups recomputed from base (MIN under moves)\n",
              rstats.inserted, rstats.updated, rstats.deleted,
              rstats.recomputed_groups);

  const bool ok = rel::Table::BagEquals(
      core::EvaluateView(catalog, augmented.physical), summary.ToTable());
  std::printf("matches full recomputation: %s\n", ok ? "yes" : "NO");

  // A second wave mixing fact and dimension changes in one batch.
  core::ChangeSet mixed =
      warehouse::MakeUpdateGeneratingChanges(catalog, 2000, 8);
  core::ChangeSet dim2 = warehouse::MakeItemRecategorization(catalog, 5, 9);
  mixed.dimensions = std::move(dim2.dimensions);

  rel::Table sd2 = core::ComputeSummaryDelta(catalog, augmented, mixed);
  core::ApplyChangeSet(catalog, mixed);
  core::RefreshStats rstats2 = core::Refresh(catalog, summary, sd2);
  std::printf(
      "\nmixed fact+dimension batch: %zu upd, %zu ins, %zu del, "
      "%zu recomputed\n",
      rstats2.updated, rstats2.inserted, rstats2.deleted,
      rstats2.recomputed_groups);
  const bool ok2 = rel::Table::BagEquals(
      core::EvaluateView(catalog, augmented.physical), summary.ToTable());
  std::printf("matches full recomputation: %s\n", ok2 ? "yes" : "NO");
  return ok && ok2 ? 0 : 1;
}
