#ifndef SDELTA_TESTS_TINY_CATALOG_H_
#define SDELTA_TESTS_TINY_CATALOG_H_

#include "core/view_def.h"
#include "relational/catalog.h"

namespace sdelta::testing {

/// A tiny hand-checked star schema mirroring the paper's running example:
///   pos(storeID, itemID, date, qty)    — 6 rows
///   stores(storeID, city, region)      — 2 rows (sf/west, ny/east)
///   items(itemID, category)            — 2 rows (food, toys)
/// with FKs and the dimension-hierarchy FDs declared.
///
/// pos contents:
///   (1,10,1,5) (1,10,1,3) (1,20,2,2) (2,10,1,7) (2,20,2,1) (2,20,3,4)
inline rel::Catalog TinyCatalog() {
  using rel::Value;
  rel::Catalog c;

  rel::Schema stores_s;
  stores_s.AddColumn("storeID", rel::ValueType::kInt64);
  stores_s.AddColumn("city", rel::ValueType::kString);
  stores_s.AddColumn("region", rel::ValueType::kString);
  rel::Table stores(stores_s, "stores");
  stores.Insert({Value::Int64(1), Value::String("sf"), Value::String("west")});
  stores.Insert({Value::Int64(2), Value::String("ny"), Value::String("east")});
  c.AddTable(std::move(stores));

  rel::Schema items_s;
  items_s.AddColumn("itemID", rel::ValueType::kInt64);
  items_s.AddColumn("category", rel::ValueType::kString);
  rel::Table items(items_s, "items");
  items.Insert({Value::Int64(10), Value::String("food")});
  items.Insert({Value::Int64(20), Value::String("toys")});
  c.AddTable(std::move(items));

  rel::Schema pos_s;
  pos_s.AddColumn("storeID", rel::ValueType::kInt64);
  pos_s.AddColumn("itemID", rel::ValueType::kInt64);
  pos_s.AddColumn("date", rel::ValueType::kInt64);
  pos_s.AddColumn("qty", rel::ValueType::kInt64);
  rel::Table pos(pos_s, "pos");
  pos.Insert({Value::Int64(1), Value::Int64(10), Value::Int64(1),
              Value::Int64(5)});
  pos.Insert({Value::Int64(1), Value::Int64(10), Value::Int64(1),
              Value::Int64(3)});
  pos.Insert({Value::Int64(1), Value::Int64(20), Value::Int64(2),
              Value::Int64(2)});
  pos.Insert({Value::Int64(2), Value::Int64(10), Value::Int64(1),
              Value::Int64(7)});
  pos.Insert({Value::Int64(2), Value::Int64(20), Value::Int64(2),
              Value::Int64(1)});
  pos.Insert({Value::Int64(2), Value::Int64(20), Value::Int64(3),
              Value::Int64(4)});
  c.AddTable(std::move(pos));

  c.DeclareForeignKey("pos", "storeID", "stores", "storeID");
  c.DeclareForeignKey("pos", "itemID", "items", "itemID");
  c.DeclareFunctionalDependency("stores", "storeID", "city");
  c.DeclareFunctionalDependency("stores", "city", "region");
  c.DeclareFunctionalDependency("items", "itemID", "category");
  return c;
}

/// pos row helper for the tiny catalog.
inline rel::Row PosRow(int64_t store, int64_t item, int64_t date,
                       int64_t qty) {
  using rel::Value;
  return {Value::Int64(store), Value::Int64(item), Value::Int64(date),
          Value::Int64(qty)};
}

}  // namespace sdelta::testing

#endif  // SDELTA_TESTS_TINY_CATALOG_H_
