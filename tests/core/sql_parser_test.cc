#include "core/sql_parser.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "tiny_catalog.h"
#include "warehouse/retail_schema.h"

namespace sdelta::core {
namespace {

using rel::Expression;
using rel::Value;
using sdelta::testing::ExpectBagEq;
using sdelta::testing::TinyCatalog;

TEST(ExpressionParserTest, Literals) {
  EXPECT_EQ(ParseExpression("42").ToString(), "42");
  EXPECT_EQ(ParseExpression("3.5").ToString(), "3.5");
  EXPECT_EQ(ParseExpression("'abc'").ToString(), "'abc'");
  EXPECT_EQ(ParseExpression("NULL").ToString(), "NULL");
}

TEST(ExpressionParserTest, ArithmeticPrecedence) {
  EXPECT_EQ(ParseExpression("a + b * c").ToString(), "(a + (b * c))");
  EXPECT_EQ(ParseExpression("(a + b) * c").ToString(), "((a + b) * c)");
  EXPECT_EQ(ParseExpression("-a * b").ToString(), "((-a) * b)");
  EXPECT_EQ(ParseExpression("a - b - c").ToString(), "((a - b) - c)");
  EXPECT_EQ(ParseExpression("a / b").ToString(), "(a / b)");
}

TEST(ExpressionParserTest, ComparisonsAndLogic) {
  EXPECT_EQ(ParseExpression("a = b").ToString(), "(a = b)");
  EXPECT_EQ(ParseExpression("a <> b").ToString(), "(a <> b)");
  EXPECT_EQ(ParseExpression("a <= b AND c > 1").ToString(),
            "((a <= b) AND (c > 1))");
  EXPECT_EQ(ParseExpression("a = 1 OR b = 2").ToString(),
            "((a = 1) OR (b = 2))");
  // AND binds tighter than OR.
  EXPECT_EQ(ParseExpression("a = 1 OR b = 2 AND c = 3").ToString(),
            "((a = 1) OR ((b = 2) AND (c = 3)))");
  EXPECT_EQ(ParseExpression("NOT a = b").ToString(), "(NOT (a = b))");
}

TEST(ExpressionParserTest, IsNullAndCase) {
  EXPECT_EQ(ParseExpression("x IS NULL").ToString(), "(x IS NULL)");
  EXPECT_EQ(ParseExpression("x IS NOT NULL").ToString(),
            "(NOT (x IS NULL))");
  EXPECT_EQ(
      ParseExpression("CASE WHEN x IS NULL THEN 0 ELSE 1 END").ToString(),
      "(CASE WHEN x IS NULL THEN 0 ELSE 1 END)");
}

TEST(ExpressionParserTest, DottedIdentifiers) {
  EXPECT_EQ(ParseExpression("pos.qty * items.cost").ToString(),
            "(pos.qty * items.cost)");
}

TEST(ExpressionParserTest, Errors) {
  EXPECT_THROW(ParseExpression(""), std::invalid_argument);
  EXPECT_THROW(ParseExpression("a +"), std::invalid_argument);
  EXPECT_THROW(ParseExpression("(a"), std::invalid_argument);
  EXPECT_THROW(ParseExpression("'unterminated"), std::invalid_argument);
  EXPECT_THROW(ParseExpression("a b"), std::invalid_argument);
  EXPECT_THROW(ParseExpression("a ! b"), std::invalid_argument);
}

TEST(ViewParserTest, Figure1SidSales) {
  rel::Catalog c = TinyCatalog();
  ViewDef v = ParseViewDef(c,
      "CREATE VIEW SID_sales(storeID, itemID, date, TotalCount, "
      "TotalQuantity) AS "
      "SELECT storeID, itemID, date, COUNT(*) AS TotalCount, "
      "SUM(qty) AS TotalQuantity "
      "FROM pos "
      "GROUP BY storeID, itemID, date");
  EXPECT_EQ(v.name, "SID_sales");
  EXPECT_EQ(v.fact_table, "pos");
  EXPECT_TRUE(v.joins.empty());
  EXPECT_EQ(v.group_by,
            (std::vector<std::string>{"storeID", "itemID", "date"}));
  ASSERT_EQ(v.aggregates.size(), 2u);
  EXPECT_EQ(v.aggregates[0].kind, rel::AggregateKind::kCountStar);
  EXPECT_EQ(v.aggregates[0].output_name, "TotalCount");
  EXPECT_EQ(v.aggregates[1].kind, rel::AggregateKind::kSum);
}

TEST(ViewParserTest, Figure1SicSalesWithJoin) {
  rel::Catalog c = TinyCatalog();
  ViewDef v = ParseViewDef(c,
      "CREATE VIEW SiC_sales(storeID, category, TotalCount, EarliestSale, "
      "TotalQuantity) AS "
      "SELECT storeID, category, COUNT(*) AS TotalCount, "
      "MIN(date) AS EarliestSale, SUM(qty) AS TotalQuantity "
      "FROM pos, items "
      "WHERE pos.itemID = items.itemID "
      "GROUP BY storeID, category");
  ASSERT_EQ(v.joins.size(), 1u);
  EXPECT_EQ(v.joins[0].dim_table, "items");
  EXPECT_EQ(v.joins[0].fact_column, "itemID");
  EXPECT_FALSE(v.where.has_value());  // the join condition is consumed
  EXPECT_EQ(v.aggregates[1].kind, rel::AggregateKind::kMin);
}

TEST(ViewParserTest, ParsedViewEvaluatesLikeHandBuilt) {
  rel::Catalog c = TinyCatalog();
  ViewDef parsed = ParseViewDef(c,
      "CREATE VIEW city_sales(city, n, total) AS "
      "SELECT city, COUNT(*) AS n, SUM(qty) AS total "
      "FROM pos, stores "
      "WHERE pos.storeID = stores.storeID "
      "GROUP BY city");

  ViewDef manual;
  manual.name = "city_sales";
  manual.fact_table = "pos";
  manual.joins = {DimensionJoin{"stores", "storeID", "storeID"}};
  manual.group_by = {"city"};
  manual.aggregates = {rel::CountStar("n"),
                       rel::Sum(Expression::Column("qty"), "total")};

  ExpectBagEq(EvaluateView(c, manual), EvaluateView(c, parsed));
}

TEST(ViewParserTest, ExtraPredicateBecomesWhere) {
  rel::Catalog c = TinyCatalog();
  ViewDef v = ParseViewDef(c,
      "CREATE VIEW big(storeID, n) AS "
      "SELECT storeID, COUNT(*) AS n "
      "FROM pos, items "
      "WHERE pos.itemID = items.itemID AND qty >= 3 AND category <> 'toys' "
      "GROUP BY storeID");
  ASSERT_EQ(v.joins.size(), 1u);
  ASSERT_TRUE(v.where.has_value());
  EXPECT_EQ(v.where->ToString(), "((qty >= 3) AND (category <> 'toys'))");
}

TEST(ViewParserTest, ReversedJoinConditionRecognized) {
  rel::Catalog c = TinyCatalog();
  ViewDef v = ParseViewDef(c,
      "CREATE VIEW x(category, n) AS "
      "SELECT category, COUNT(*) AS n "
      "FROM pos, items "
      "WHERE items.itemID = pos.itemID "
      "GROUP BY category");
  ASSERT_EQ(v.joins.size(), 1u);
  EXPECT_EQ(v.joins[0].dim_table, "items");
}

TEST(ViewParserTest, AggregateOverExpression) {
  rel::Catalog c = TinyCatalog();
  ViewDef v = ParseViewDef(c,
      "CREATE VIEW rev(storeID, qty_sq) AS "
      "SELECT storeID, SUM(qty * qty) AS qty_sq "
      "FROM pos GROUP BY storeID");
  ASSERT_EQ(v.aggregates.size(), 1u);
  EXPECT_EQ(v.aggregates[0].argument->ToString(), "(qty * qty)");
}

TEST(ViewParserTest, AvgAccepted) {
  rel::Catalog c = TinyCatalog();
  ViewDef v = ParseViewDef(c,
      "CREATE VIEW a(storeID, avg_qty) AS "
      "SELECT storeID, AVG(qty) AS avg_qty FROM pos GROUP BY storeID");
  EXPECT_EQ(v.aggregates[0].kind, rel::AggregateKind::kAvg);
}

TEST(ViewParserTest, KeywordsCaseInsensitive) {
  rel::Catalog c = TinyCatalog();
  EXPECT_NO_THROW(ParseViewDef(c,
      "create view V(storeID, n) as select storeID, count(*) as n "
      "from pos group by storeID"));
}

TEST(ViewParserTest, AliasWithoutListAndListWithoutAlias) {
  rel::Catalog c = TinyCatalog();
  // AS aliases, no view column list.
  EXPECT_NO_THROW(ParseViewDef(c,
      "CREATE VIEW v1 AS SELECT storeID, COUNT(*) AS n FROM pos "
      "GROUP BY storeID"));
  // View column list names the aggregate positionally.
  ViewDef v2 = ParseViewDef(c,
      "CREATE VIEW v2(storeID, total) AS SELECT storeID, SUM(qty) "
      "FROM pos GROUP BY storeID");
  EXPECT_EQ(v2.aggregates[0].output_name, "total");
}

TEST(ViewParserTest, Errors) {
  rel::Catalog c = TinyCatalog();
  // Missing GROUP BY.
  EXPECT_THROW(ParseViewDef(c,
      "CREATE VIEW v AS SELECT storeID, COUNT(*) AS n FROM pos"),
      std::invalid_argument);
  // Aggregate without a name.
  EXPECT_THROW(ParseViewDef(c,
      "CREATE VIEW v AS SELECT storeID, COUNT(*) FROM pos "
      "GROUP BY storeID"),
      std::invalid_argument);
  // FROM table without a join condition.
  EXPECT_THROW(ParseViewDef(c,
      "CREATE VIEW v(storeID, n) AS SELECT storeID, COUNT(*) AS n "
      "FROM pos, items GROUP BY storeID"),
      std::invalid_argument);
  // Selected column not in GROUP BY.
  EXPECT_THROW(ParseViewDef(c,
      "CREATE VIEW v(itemID, n) AS SELECT itemID, COUNT(*) AS n "
      "FROM pos GROUP BY storeID"),
      std::invalid_argument);
  // Column-list arity mismatch.
  EXPECT_THROW(ParseViewDef(c,
      "CREATE VIEW v(a, b, c) AS SELECT storeID, COUNT(*) AS n "
      "FROM pos GROUP BY storeID"),
      std::invalid_argument);
  // Unknown table (caught by ValidateView).
  EXPECT_THROW(ParseViewDef(c,
      "CREATE VIEW v(x, n) AS SELECT x, COUNT(*) AS n FROM nope "
      "GROUP BY x"),
      std::invalid_argument);
}

TEST(QueryParserTest, BareSelectWrappedAsAnonymousView) {
  rel::Catalog c = TinyCatalog();
  ViewDef q = ParseQuery(c,
      "  SELECT storeID, SUM(qty) AS total FROM pos GROUP BY storeID");
  EXPECT_EQ(q.name, "query");
  EXPECT_EQ(q.group_by, std::vector<std::string>{"storeID"});
  ASSERT_EQ(q.aggregates.size(), 1u);
}

TEST(QueryParserTest, FullCreateViewAlsoAccepted) {
  rel::Catalog c = TinyCatalog();
  ViewDef q = ParseQuery(c,
      "CREATE VIEW named(storeID, n) AS SELECT storeID, COUNT(*) AS n "
      "FROM pos GROUP BY storeID");
  EXPECT_EQ(q.name, "named");
}

TEST(QueryParserTest, CaseInsensitiveSelectPrefix) {
  rel::Catalog c = TinyCatalog();
  EXPECT_NO_THROW(ParseQuery(c,
      "select storeID, count(*) as n from pos group by storeID"));
}

TEST(ViewParserTest, ToStringRoundTripsThroughParser) {
  // ViewDef::ToString emits the same SQL dialect the parser reads, so a
  // definition (including string-literal predicates) survives a
  // serialize/parse cycle.
  rel::Catalog c = TinyCatalog();
  ViewDef original = ParseViewDef(c,
      "CREATE VIEW rt(storeID, n, total) AS "
      "SELECT storeID, COUNT(*) AS n, SUM(qty) AS total "
      "FROM pos, items "
      "WHERE pos.itemID = items.itemID AND category <> 'toys' AND "
      "qty >= 2 GROUP BY storeID");
  ViewDef reparsed = ParseViewDef(c, original.ToString());
  EXPECT_EQ(reparsed.name, original.name);
  EXPECT_EQ(reparsed.group_by, original.group_by);
  ASSERT_EQ(reparsed.joins.size(), original.joins.size());
  ASSERT_TRUE(reparsed.where.has_value());
  ExpectBagEq(EvaluateView(c, original), EvaluateView(c, reparsed));
}

TEST(ViewParserTest, AllFourPaperViewsParseAndMatch) {
  // Parse the paper's Figure 1 definitions verbatim (modulo layout) and
  // check they evaluate identically to the hand-built RetailSummaryTables.
  warehouse::RetailConfig config;
  config.num_pos_rows = 500;
  rel::Catalog c = warehouse::MakeRetailCatalog(config);

  const char* kSql[] = {
      "CREATE VIEW SID_sales(storeID, itemID, date, TotalCount, "
      "TotalQuantity) AS SELECT storeID, itemID, date, COUNT(*) AS "
      "TotalCount, SUM(qty) AS TotalQuantity FROM pos GROUP BY storeID, "
      "itemID, date",
      "CREATE VIEW sCD_sales(city, date, TotalCount, TotalQuantity) AS "
      "SELECT city, date, COUNT(*) AS TotalCount, SUM(qty) AS "
      "TotalQuantity FROM pos, stores WHERE pos.storeID = stores.storeID "
      "GROUP BY city, date",
      "CREATE VIEW SiC_sales(storeID, category, TotalCount, EarliestSale, "
      "TotalQuantity) AS SELECT storeID, category, COUNT(*) AS TotalCount, "
      "MIN(date) AS EarliestSale, SUM(qty) AS TotalQuantity FROM pos, "
      "items WHERE pos.itemID = items.itemID GROUP BY storeID, category",
      "CREATE VIEW sR_sales(region, TotalCount, TotalQuantity) AS SELECT "
      "region, COUNT(*) AS TotalCount, SUM(qty) AS TotalQuantity FROM "
      "pos, stores WHERE pos.storeID = stores.storeID GROUP BY region",
  };
  const std::vector<ViewDef> manual = warehouse::RetailSummaryTables();
  for (size_t i = 0; i < 4; ++i) {
    SCOPED_TRACE(manual[i].name);
    ViewDef parsed = ParseViewDef(c, kSql[i]);
    EXPECT_EQ(parsed.name, manual[i].name);
    ExpectBagEq(EvaluateView(c, manual[i]), EvaluateView(c, parsed));
  }
}

}  // namespace
}  // namespace sdelta::core
