#include "core/refresh.h"

#include <gtest/gtest.h>

#include "core/maintenance.h"
#include "core/propagate.h"
#include "oracle.h"
#include "tiny_catalog.h"

namespace sdelta::core {
namespace {

using rel::Expression;
using rel::GroupKey;
using rel::Table;
using rel::Value;
using sdelta::testing::PosRow;
using sdelta::testing::TinyCatalog;

AugmentedView SidView(const rel::Catalog& c) {
  ViewDef v;
  v.name = "SID_sales";
  v.fact_table = "pos";
  v.group_by = {"storeID", "itemID", "date"};
  v.aggregates = {rel::CountStar("TotalCount"),
                  rel::Sum(Expression::Column("qty"), "TotalQuantity")};
  return AugmentForSelfMaintenance(c, v);
}

/// Runs one full cycle for a view and returns the refresh stats.
RefreshStats Cycle(rel::Catalog& c, SummaryTable& st, const ChangeSet& changes,
                   const RefreshOptions& ropts = {}) {
  Table sd = ComputeSummaryDelta(c, st.def(), changes);
  ApplyChangeSet(c, changes);
  return Refresh(c, st, sd, ropts);
}

ChangeSet EmptyChanges(const rel::Catalog& c) {
  ChangeSet changes;
  changes.fact_table = "pos";
  changes.fact = DeltaSet(c.GetTable("pos").schema());
  return changes;
}

TEST(RefreshTest, Figure2InsertUpdateDelete) {
  // One cycle exercising all three outcomes of the SID_sales refresh of
  // Figure 2: a new group (insert), a grown group (update), and a group
  // whose COUNT(*) reaches zero (delete).
  rel::Catalog c = TinyCatalog();
  AugmentedView av = SidView(c);
  SummaryTable st(av, c);
  st.MaterializeFrom(c);
  const size_t before = st.NumRows();  // 5 groups

  ChangeSet changes = EmptyChanges(c);
  changes.fact.insertions.Insert(PosRow(9, 10, 1, 4));  // new group
  changes.fact.insertions.Insert(PosRow(1, 10, 1, 2));  // existing group
  changes.fact.deletions.Insert(PosRow(1, 20, 2, 2));   // only row of group

  RefreshStats stats = Cycle(c, st, changes);
  EXPECT_EQ(stats.inserted, 1u);
  EXPECT_EQ(stats.updated, 1u);
  EXPECT_EQ(stats.deleted, 1u);
  EXPECT_EQ(stats.recomputed_groups, 0u);
  EXPECT_EQ(st.NumRows(), before);  // +1 -1

  const rel::Row* grown =
      st.Find({Value::Int64(1), Value::Int64(10), Value::Int64(1)});
  ASSERT_NE(grown, nullptr);
  EXPECT_EQ((*grown)[3].as_int64(), 3);   // count 2 -> 3
  EXPECT_EQ((*grown)[4].as_int64(), 10);  // 8 + 2
  EXPECT_EQ(st.Find({Value::Int64(1), Value::Int64(20), Value::Int64(2)}),
            nullptr);
  const rel::Row* fresh =
      st.Find({Value::Int64(9), Value::Int64(10), Value::Int64(1)});
  ASSERT_NE(fresh, nullptr);
  EXPECT_EQ((*fresh)[3].as_int64(), 1);
  EXPECT_EQ((*fresh)[4].as_int64(), 4);
}

TEST(RefreshTest, EachDeltaTupleTouchesOneSummaryTuple) {
  rel::Catalog c = TinyCatalog();
  AugmentedView av = SidView(c);
  SummaryTable st(av, c);
  st.MaterializeFrom(c);
  ChangeSet changes = EmptyChanges(c);
  // Two changes to the SAME group must collapse to one delta row and one
  // update.
  changes.fact.insertions.Insert(PosRow(1, 10, 1, 1));
  changes.fact.insertions.Insert(PosRow(1, 10, 1, 1));
  RefreshStats stats = Cycle(c, st, changes);
  EXPECT_EQ(stats.updated, 1u);
  EXPECT_EQ(stats.inserted + stats.deleted, 0u);
}

TEST(RefreshTest, InconsistentDeleteOfMissingGroupThrows) {
  rel::Catalog c = TinyCatalog();
  AugmentedView av = SidView(c);
  SummaryTable st(av, c);
  st.MaterializeFrom(c);

  // Forge a summary-delta deleting a group that does not exist.
  Table sd(st.schema(), "sd_forged");
  sd.Insert({Value::Int64(42), Value::Int64(42), Value::Int64(42),
             Value::Int64(-1), Value::Int64(-5), Value::Int64(-1)});
  EXPECT_THROW(Refresh(c, st, sd), std::runtime_error);
}

TEST(RefreshTest, CountGoingNegativeThrows) {
  rel::Catalog c = TinyCatalog();
  AugmentedView av = SidView(c);
  SummaryTable st(av, c);
  st.MaterializeFrom(c);

  Table sd(st.schema(), "sd_forged");
  // Group (1,10,1) has count 2; delta of -3 is inconsistent.
  sd.Insert({Value::Int64(1), Value::Int64(10), Value::Int64(1),
             Value::Int64(-3), Value::Int64(-20), Value::Int64(-3)});
  EXPECT_THROW(Refresh(c, st, sd), std::runtime_error);
}

TEST(RefreshTest, ArityMismatchThrows) {
  rel::Catalog c = TinyCatalog();
  AugmentedView av = SidView(c);
  SummaryTable st(av, c);
  rel::Schema bad;
  bad.AddColumn("x", rel::ValueType::kInt64);
  EXPECT_THROW(Refresh(c, st, Table(bad)), std::invalid_argument);
}

TEST(RefreshTest, MergeStrategyMatchesCursor) {
  auto make_changes = [](const rel::Catalog& cat) {
    ChangeSet changes = EmptyChanges(cat);
    changes.fact.insertions.Insert(PosRow(9, 10, 1, 4));
    changes.fact.insertions.Insert(PosRow(1, 10, 1, 2));
    changes.fact.deletions.Insert(PosRow(1, 20, 2, 2));
    changes.fact.deletions.Insert(PosRow(2, 10, 1, 7));
    return changes;
  };
  ViewDef v;
  v.name = "SID_sales";
  v.fact_table = "pos";
  v.group_by = {"storeID", "itemID", "date"};
  v.aggregates = {rel::CountStar("TotalCount"),
                  rel::Sum(Expression::Column("qty"), "TotalQuantity")};

  RefreshOptions merge;
  merge.strategy = RefreshStrategy::kMerge;
  sdelta::testing::ExpectMaintainedEqualsRecomputed(&TinyCatalog, {v},
                                                    make_changes, merge);
  sdelta::testing::ExpectMaintainedEqualsRecomputed(&TinyCatalog, {v},
                                                    make_changes,
                                                    RefreshOptions{});
}

TEST(RefreshTest, MergeStrategyStats) {
  rel::Catalog c = TinyCatalog();
  AugmentedView av = SidView(c);
  SummaryTable st(av, c);
  st.MaterializeFrom(c);
  ChangeSet changes = EmptyChanges(c);
  changes.fact.insertions.Insert(PosRow(9, 10, 1, 4));
  changes.fact.deletions.Insert(PosRow(1, 20, 2, 2));
  RefreshOptions ropts;
  ropts.strategy = RefreshStrategy::kMerge;
  RefreshStats stats = Cycle(c, st, changes, ropts);
  EXPECT_EQ(stats.inserted, 1u);
  EXPECT_EQ(stats.deleted, 1u);
  EXPECT_EQ(stats.updated, 0u);
}

TEST(RefreshTest, SummaryDeltaOfPureInsertionsOnlyInsertsOrUpdates) {
  // Paper §6: insertion-generating changes cause only inserts into views
  // grouping by date.
  rel::Catalog c = TinyCatalog();
  AugmentedView av = SidView(c);
  SummaryTable st(av, c);
  st.MaterializeFrom(c);
  ChangeSet changes = EmptyChanges(c);
  changes.fact.insertions.Insert(PosRow(1, 10, 100, 1));  // new date
  changes.fact.insertions.Insert(PosRow(2, 20, 100, 2));  // new date
  RefreshStats stats = Cycle(c, st, changes);
  EXPECT_EQ(stats.inserted, 2u);
  EXPECT_EQ(stats.deleted, 0u);
  EXPECT_EQ(stats.updated, 0u);
  EXPECT_EQ(stats.recomputed_groups, 0u);
}

}  // namespace
}  // namespace sdelta::core
