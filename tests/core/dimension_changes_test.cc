#include <gtest/gtest.h>

#include "core/maintenance.h"
#include "core/propagate.h"
#include "core/refresh.h"
#include "oracle.h"
#include "tiny_catalog.h"
#include "warehouse/retail_schema.h"
#include "warehouse/workload.h"

namespace sdelta::core {
namespace {

using rel::Expression;
using rel::Value;
using sdelta::testing::ExpectMaintainedEqualsRecomputed;
using sdelta::testing::PosRow;
using sdelta::testing::TinyCatalog;

ViewDef SicView() {
  ViewDef v;
  v.name = "SiC_sales";
  v.fact_table = "pos";
  v.joins = {DimensionJoin{"items", "itemID", "itemID"}};
  v.group_by = {"storeID", "category"};
  v.aggregates = {rel::CountStar("TotalCount"),
                  rel::Sum(Expression::Column("qty"), "TotalQuantity")};
  return v;
}

ChangeSet RecategorizeItem10(const rel::Catalog& c) {
  ChangeSet changes;
  changes.fact_table = "pos";
  changes.fact = DeltaSet(c.GetTable("pos").schema());
  DeltaSet items_delta(c.GetTable("items").schema());
  items_delta.deletions.Insert({Value::Int64(10), Value::String("food")});
  items_delta.insertions.Insert({Value::Int64(10), Value::String("fresh")});
  changes.dimensions.emplace("items", std::move(items_delta));
  return changes;
}

TEST(DimensionChangesTest, PureDimensionUpdateMatchesOracle) {
  ExpectMaintainedEqualsRecomputed(&TinyCatalog, {SicView()},
                                   &RecategorizeItem10);
}

TEST(DimensionChangesTest, MixedFactAndDimensionChangesMatchOracle) {
  ExpectMaintainedEqualsRecomputed(
      &TinyCatalog, {SicView()}, [](const rel::Catalog& c) {
        ChangeSet changes = RecategorizeItem10(c);
        changes.fact.insertions.Insert(PosRow(1, 10, 9, 2));
        changes.fact.insertions.Insert(PosRow(2, 10, 9, 1));
        changes.fact.deletions.Insert(PosRow(2, 10, 1, 7));
        return changes;
      });
}

TEST(DimensionChangesTest, DimensionInsertOnlyNewItemNoFactRows) {
  // Inserting a dimension row that joins with nothing must be a no-op.
  rel::Catalog c = TinyCatalog();
  AugmentedView av = AugmentForSelfMaintenance(c, SicView());
  SummaryTable st(av, c);
  st.MaterializeFrom(c);

  ChangeSet changes;
  changes.fact_table = "pos";
  changes.fact = DeltaSet(c.GetTable("pos").schema());
  DeltaSet items_delta(c.GetTable("items").schema());
  items_delta.insertions.Insert({Value::Int64(30), Value::String("new")});
  changes.dimensions.emplace("items", std::move(items_delta));

  rel::Table sd = ComputeSummaryDelta(c, av, changes);
  EXPECT_EQ(sd.NumRows(), 0u);
}

TEST(DimensionChangesTest, ViewNotJoiningChangedDimensionUnaffected) {
  // SID_sales does not join items; an items change yields no delta.
  rel::Catalog c = TinyCatalog();
  ViewDef v;
  v.name = "SID_sales";
  v.fact_table = "pos";
  v.group_by = {"storeID", "itemID", "date"};
  v.aggregates = {rel::CountStar("n")};
  AugmentedView av = AugmentForSelfMaintenance(c, v);

  rel::Table sd = ComputeSummaryDelta(c, av, RecategorizeItem10(c));
  EXPECT_EQ(sd.NumRows(), 0u);
}

TEST(DimensionChangesTest, MinAggregateThroughDimensionMove) {
  // MIN(date) must be carried correctly when rows move between groups.
  ViewDef v = SicView();
  v.aggregates.push_back(rel::Min(Expression::Column("date"),
                                  "EarliestSale"));
  ExpectMaintainedEqualsRecomputed(&TinyCatalog, {v}, [](const rel::Catalog&
                                                             c) {
    ChangeSet changes = RecategorizeItem10(c);
    return changes;
  });
}

TEST(DimensionChangesTest, RetailRecategorizationMatchesOracle) {
  auto make_catalog = [] {
    warehouse::RetailConfig config;
    config.num_stores = 10;
    config.num_items = 50;
    config.num_categories = 5;
    config.num_pos_rows = 1500;
    config.seed = 3;
    return warehouse::MakeRetailCatalog(config);
  };
  ExpectMaintainedEqualsRecomputed(
      make_catalog, warehouse::RetailSummaryTables(),
      [](const rel::Catalog& cat) {
        return warehouse::MakeItemRecategorization(cat, 10, 99);
      });
}

}  // namespace
}  // namespace sdelta::core
