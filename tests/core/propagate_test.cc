#include "core/propagate.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "tiny_catalog.h"

namespace sdelta::core {
namespace {

using rel::Expression;
using rel::Table;
using rel::Value;
using sdelta::testing::ExpectBagEq;
using sdelta::testing::PosRow;
using sdelta::testing::TinyCatalog;

AugmentedView SidView(const rel::Catalog& c) {
  ViewDef v;
  v.name = "SID_sales";
  v.fact_table = "pos";
  v.group_by = {"storeID", "itemID", "date"};
  v.aggregates = {rel::CountStar("TotalCount"),
                  rel::Sum(Expression::Column("qty"), "TotalQuantity")};
  return AugmentForSelfMaintenance(c, v);
}

AugmentedView ScdView(const rel::Catalog& c) {
  ViewDef v;
  v.name = "sCD_sales";
  v.fact_table = "pos";
  v.joins = {DimensionJoin{"stores", "storeID", "storeID"}};
  v.group_by = {"city", "date"};
  v.aggregates = {rel::CountStar("TotalCount"),
                  rel::Sum(Expression::Column("qty"), "TotalQuantity")};
  return AugmentForSelfMaintenance(c, v);
}

ChangeSet SmallChanges(const rel::Catalog& c) {
  ChangeSet changes;
  changes.fact_table = "pos";
  changes.fact = DeltaSet(c.GetTable("pos").schema());
  changes.fact.insertions.Insert(PosRow(1, 10, 1, 6));   // existing group
  changes.fact.insertions.Insert(PosRow(2, 10, 9, 2));   // new group
  changes.fact.deletions.Insert(PosRow(1, 10, 1, 5));    // shrink group
  changes.fact.deletions.Insert(PosRow(2, 20, 3, 4));    // empty a group
  return changes;
}

TEST(PropagateTest, NetChangesPerGroupNoJoin) {
  rel::Catalog c = TinyCatalog();
  AugmentedView v = SidView(c);
  PropagateStats stats;
  Table sd = ComputeSummaryDelta(c, v, SmallChanges(c), {}, &stats);

  EXPECT_EQ(stats.prepared_tuples, 4u);
  EXPECT_EQ(stats.delta_groups, 3u);
  ASSERT_EQ(sd.NumRows(), 3u);

  const size_t cnt = sd.schema().Resolve("TotalCount");
  const size_t qty = sd.schema().Resolve("TotalQuantity");
  for (const rel::Row& r : sd.MaterializeRows()) {
    const int64_t store = r[0].as_int64();
    const int64_t item = r[1].as_int64();
    const int64_t date = r[2].as_int64();
    if (store == 1 && item == 10 && date == 1) {
      EXPECT_EQ(r[cnt].as_int64(), 0);   // +1 -1
      EXPECT_EQ(r[qty].as_int64(), 1);   // +6 -5
    } else if (store == 2 && item == 10 && date == 9) {
      EXPECT_EQ(r[cnt].as_int64(), 1);
      EXPECT_EQ(r[qty].as_int64(), 2);
    } else if (store == 2 && item == 20 && date == 3) {
      EXPECT_EQ(r[cnt].as_int64(), -1);
      EXPECT_EQ(r[qty].as_int64(), -4);
    } else {
      FAIL() << "unexpected delta group " << rel::RowToString(r);
    }
  }
}

TEST(PropagateTest, DeltaSchemaIsSummarySchemaPlusTaint) {
  rel::Catalog c = TinyCatalog();
  AugmentedView v = ScdView(c);
  Table sd = ComputeSummaryDelta(c, v, SmallChanges(c));
  const rel::Schema summary = ViewOutputSchema(c, v.physical);
  ASSERT_EQ(sd.schema().NumColumns(), summary.NumColumns() + 1);
  for (size_t i = 0; i < summary.NumColumns(); ++i) {
    EXPECT_EQ(sd.schema().column(i).name, summary.column(i).name);
  }
  EXPECT_EQ(sd.schema().column(summary.NumColumns()).name, kTaintedColumn);
  EXPECT_EQ(sd.name(), "sd_sCD_sales");
}

TEST(PropagateTest, TaintColumnReflectsDeletions) {
  rel::Catalog c = TinyCatalog();
  AugmentedView v = SidView(c);
  Table sd = ComputeSummaryDelta(c, v, SmallChanges(c));
  const size_t taint = sd.schema().Resolve(kTaintedColumn);
  for (const rel::Row& r : sd.MaterializeRows()) {
    const bool pure_insert_group =
        r[0].as_int64() == 2 && r[1].as_int64() == 10;
    EXPECT_EQ(r[taint].as_int64(), pure_insert_group ? 0 : 1)
        << rel::RowToString(r);
  }
}

TEST(PropagateTest, EmptyChangesYieldEmptyDelta) {
  rel::Catalog c = TinyCatalog();
  ChangeSet changes;
  changes.fact_table = "pos";
  changes.fact = DeltaSet(c.GetTable("pos").schema());
  Table sd = ComputeSummaryDelta(c, SidView(c), changes);
  EXPECT_EQ(sd.NumRows(), 0u);
}

TEST(PropagateTest, PreaggregationMatchesDirect) {
  rel::Catalog c = TinyCatalog();
  AugmentedView v = ScdView(c);
  const ChangeSet changes = SmallChanges(c);

  PropagateStats direct_stats;
  Table direct = ComputeSummaryDelta(c, v, changes, {}, &direct_stats);
  EXPECT_FALSE(direct_stats.preaggregated);

  PropagateOptions popts;
  popts.preaggregate = true;
  PropagateStats pre_stats;
  Table pre = ComputeSummaryDelta(c, v, changes, popts, &pre_stats);
  EXPECT_TRUE(pre_stats.preaggregated);
  ExpectBagEq(direct, pre);
}

TEST(PropagateTest, PreaggregationSkippedWithoutJoins) {
  rel::Catalog c = TinyCatalog();
  PropagateOptions popts;
  popts.preaggregate = true;
  PropagateStats stats;
  ComputeSummaryDelta(c, SidView(c), SmallChanges(c), popts, &stats);
  EXPECT_FALSE(stats.preaggregated);  // nothing to pre-aggregate past
}

TEST(PropagateTest, PreaggregationSkippedWithDimensionChanges) {
  rel::Catalog c = TinyCatalog();
  ChangeSet changes = SmallChanges(c);
  DeltaSet items_delta(c.GetTable("items").schema());
  items_delta.insertions.Insert({Value::Int64(30), Value::String("new")});
  changes.dimensions.emplace("items", std::move(items_delta));

  PropagateOptions popts;
  popts.preaggregate = true;
  PropagateStats stats;
  ComputeSummaryDelta(c, ScdView(c), changes, popts, &stats);
  EXPECT_FALSE(stats.preaggregated);
}

TEST(PropagateTest, PreaggregationMinOverFactColumn) {
  // MIN(date) with date also a fact group-level column exercises the
  // two-level MIN-of-MIN reaggregation.
  rel::Catalog c = TinyCatalog();
  ViewDef v;
  v.name = "SiC_sales";
  v.fact_table = "pos";
  v.joins = {DimensionJoin{"items", "itemID", "itemID"}};
  v.group_by = {"storeID", "category"};
  v.aggregates = {rel::CountStar("TotalCount"),
                  rel::Min(Expression::Column("date"), "EarliestSale"),
                  rel::Sum(Expression::Column("qty"), "TotalQuantity")};
  AugmentedView av = AugmentForSelfMaintenance(c, v);
  const ChangeSet changes = SmallChanges(c);

  Table direct = ComputeSummaryDelta(c, av, changes, {});
  PropagateOptions popts;
  popts.preaggregate = true;
  Table pre = ComputeSummaryDelta(c, av, changes, popts);
  ExpectBagEq(direct, pre);
}

TEST(DeltaAggregatesTest, CountBecomesSumMinStaysMin) {
  rel::Catalog c = TinyCatalog();
  ViewDef v;
  v.name = "m";
  v.fact_table = "pos";
  v.group_by = {"storeID"};
  v.aggregates = {rel::CountStar("n"),
                  rel::Min(Expression::Column("date"), "lo"),
                  rel::Max(Expression::Column("date"), "hi")};
  AugmentedView av = AugmentForSelfMaintenance(c, v);
  const std::vector<rel::AggregateSpec> specs = DeltaAggregates(av);
  // COUNT(*) -> SUM, MIN -> MIN, MAX -> MAX, companions -> SUM.
  EXPECT_EQ(specs[0].kind, rel::AggregateKind::kSum);
  EXPECT_EQ(specs[1].kind, rel::AggregateKind::kMin);
  EXPECT_EQ(specs[2].kind, rel::AggregateKind::kMax);
  for (const rel::AggregateSpec& s : specs) {
    EXPECT_NE(s.kind, rel::AggregateKind::kCount);
    EXPECT_NE(s.kind, rel::AggregateKind::kCountStar);
  }
}

TEST(ApplyDerivationTest, RecipeAggregatesParentRows) {
  // Hand-built recipe: city totals from (storeID) totals via stores.
  rel::Catalog c = TinyCatalog();
  rel::Schema parent_schema;
  parent_schema.AddColumn("storeID", rel::ValueType::kInt64);
  parent_schema.AddColumn("n", rel::ValueType::kInt64);
  Table parent(parent_schema, "by_store");
  parent.Insert({Value::Int64(1), Value::Int64(3)});
  parent.Insert({Value::Int64(2), Value::Int64(3)});

  DerivationRecipe recipe;
  recipe.child_name = "by_region";
  recipe.parent_name = "by_store";
  recipe.joins = {DimensionJoin{"stores", "storeID", "storeID"}};
  recipe.group_by = {rel::GroupByColumn{"stores.region", "region"}};
  recipe.aggregates = {rel::Sum(Expression::Column("n"), "n")};

  Table out = ApplyDerivation(c, recipe, parent);
  ASSERT_EQ(out.NumRows(), 2u);  // west and east
  for (const rel::Row& r : out.MaterializeRows()) {
    EXPECT_EQ(r[1].as_int64(), 3);
  }
  EXPECT_EQ(out.name(), "sd_by_region");
}

}  // namespace
}  // namespace sdelta::core
