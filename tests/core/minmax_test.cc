#include <gtest/gtest.h>

#include "core/maintenance.h"
#include "core/propagate.h"
#include "core/refresh.h"
#include "oracle.h"
#include "tiny_catalog.h"

namespace sdelta::core {
namespace {

using rel::Expression;
using rel::Table;
using rel::Value;
using sdelta::testing::PosRow;
using sdelta::testing::TinyCatalog;

/// SiC_sales: group by (storeID, category), with MIN(date) — the paper's
/// non-self-maintainable aggregate.
AugmentedView SicView(const rel::Catalog& c) {
  ViewDef v;
  v.name = "SiC_sales";
  v.fact_table = "pos";
  v.joins = {DimensionJoin{"items", "itemID", "itemID"}};
  v.group_by = {"storeID", "category"};
  v.aggregates = {rel::CountStar("TotalCount"),
                  rel::Min(Expression::Column("date"), "EarliestSale"),
                  rel::Max(Expression::Column("date"), "LatestSale"),
                  rel::Sum(Expression::Column("qty"), "TotalQuantity")};
  return AugmentForSelfMaintenance(c, v);
}

RefreshStats Cycle(rel::Catalog& c, SummaryTable& st,
                   const ChangeSet& changes, const RefreshOptions& ropts = {}) {
  Table sd = ComputeSummaryDelta(c, st.def(), changes);
  ApplyChangeSet(c, changes);
  return Refresh(c, st, sd, ropts);
}

ChangeSet EmptyChanges(const rel::Catalog& c) {
  ChangeSet changes;
  changes.fact_table = "pos";
  changes.fact = DeltaSet(c.GetTable("pos").schema());
  return changes;
}

TEST(MinMaxTest, DeletingTheMinimumForcesRecompute) {
  rel::Catalog c = TinyCatalog();
  AugmentedView av = SicView(c);
  SummaryTable st(av, c);
  st.MaterializeFrom(c);

  // Group (2, toys) has dates {2, 3}; min = 2. Delete the date-2 row.
  ChangeSet changes = EmptyChanges(c);
  changes.fact.deletions.Insert(PosRow(2, 20, 2, 1));
  RefreshStats stats = Cycle(c, st, changes);
  EXPECT_EQ(stats.recomputed_groups, 1u);
  EXPECT_EQ(stats.minmax_recomputes, 1u);
  EXPECT_GT(stats.recompute_scan_rows, 0u);

  const rel::Row* row = st.Find({Value::Int64(2), Value::String("toys")});
  ASSERT_NE(row, nullptr);
  const size_t min_idx = st.schema().Resolve("EarliestSale");
  EXPECT_EQ((*row)[min_idx].as_int64(), 3);  // recomputed from base
}

TEST(MinMaxTest, DeletingTheMaximumForcesRecompute) {
  rel::Catalog c = TinyCatalog();
  AugmentedView av = SicView(c);
  SummaryTable st(av, c);
  st.MaterializeFrom(c);

  // Group (2, toys) dates {2, 3}; max = 3.
  ChangeSet changes = EmptyChanges(c);
  changes.fact.deletions.Insert(PosRow(2, 20, 3, 4));
  RefreshStats stats = Cycle(c, st, changes);
  EXPECT_EQ(stats.recomputed_groups, 1u);
  const rel::Row* row = st.Find({Value::Int64(2), Value::String("toys")});
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[st.schema().Resolve("LatestSale")].as_int64(), 2);
}

TEST(MinMaxTest, DeletingNonExtremeValueUpdatesInPlace) {
  rel::Catalog c = TinyCatalog();
  AugmentedView av = SicView(c);
  SummaryTable st(av, c);
  st.MaterializeFrom(c);

  // Group (1, food) has dates {1, 1}; deleting one of two equal-date rows
  // still leaves min=max=1... that ties the extremum and triggers the
  // paper's conservative recompute. Use group (2, toys) and delete
  // NOTHING extreme: impossible with 2 rows — so craft: insert a middle
  // row first, then delete it.
  ChangeSet add = EmptyChanges(c);
  add.fact.insertions.Insert(PosRow(2, 20, 9, 1));  // dates now {2,3,9}?
  Cycle(c, st, add);  // max becomes 9

  ChangeSet del = EmptyChanges(c);
  del.fact.deletions.Insert(PosRow(2, 20, 3, 4));  // middle value 3
  RefreshStats stats = Cycle(c, st, del);
  EXPECT_EQ(stats.recomputed_groups, 0u);
  EXPECT_EQ(stats.minmax_recomputes, 0u);
  EXPECT_EQ(stats.updated, 1u);
  const rel::Row* row = st.Find({Value::Int64(2), Value::String("toys")});
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[st.schema().Resolve("EarliestSale")].as_int64(), 2);
  EXPECT_EQ((*row)[st.schema().Resolve("LatestSale")].as_int64(), 9);
}

TEST(MinMaxTest, InsertionBelowMinCombinesByDefaultRecomputesInPaperMode) {
  // Same scenario under both modes: an insertion below the stored MIN.
  for (const bool trust : {true, false}) {
    SCOPED_TRACE(trust ? "default" : "paper-faithful");
    rel::Catalog c = TinyCatalog();
    AugmentedView av = SicView(c);
    SummaryTable st(av, c);
    st.MaterializeFrom(c);

    ChangeSet changes = EmptyChanges(c);
    changes.fact.insertions.Insert(PosRow(2, 20, 1, 1));  // below min 2
    RefreshOptions ropts;
    ropts.trust_untainted_minmax = trust;
    RefreshStats stats = Cycle(c, st, changes, ropts);
    EXPECT_EQ(stats.recomputed_groups, trust ? 0u : 1u);
    EXPECT_EQ(stats.minmax_recomputes, trust ? 0u : 1u);
    const rel::Row* row = st.Find({Value::Int64(2), Value::String("toys")});
    ASSERT_NE(row, nullptr);
    EXPECT_EQ((*row)[st.schema().Resolve("EarliestSale")].as_int64(), 1);
  }
}

TEST(MinMaxTest, InsertionAboveMaxConservativelyRecomputesPaperMode) {
  // Figure 7 cannot distinguish an inserted new maximum from a deleted
  // old one, so it recomputes; the value still comes out right. This is
  // the paper-faithful mode (trust_untainted_minmax = false).
  rel::Catalog c = TinyCatalog();
  AugmentedView av = SicView(c);
  SummaryTable st(av, c);
  st.MaterializeFrom(c);

  ChangeSet changes = EmptyChanges(c);
  changes.fact.insertions.Insert(PosRow(2, 20, 5, 1));  // above max 3
  RefreshOptions paper;
  paper.trust_untainted_minmax = false;
  RefreshStats stats = Cycle(c, st, changes, paper);
  EXPECT_EQ(stats.recomputed_groups, 1u);
  const rel::Row* row = st.Find({Value::Int64(2), Value::String("toys")});
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[st.schema().Resolve("LatestSale")].as_int64(), 5);
  EXPECT_EQ((*row)[st.schema().Resolve("EarliestSale")].as_int64(), 2);
}

TEST(MinMaxTest, UntaintedInsertionBeyondExtremumCombinesInPlace) {
  // Default mode: the delta's taint marker shows the group saw no
  // deletions, so §3.1 applies (MIN/MAX self-maintainable under
  // insertions) and no base scan happens.
  rel::Catalog c = TinyCatalog();
  AugmentedView av = SicView(c);
  SummaryTable st(av, c);
  st.MaterializeFrom(c);

  ChangeSet changes = EmptyChanges(c);
  changes.fact.insertions.Insert(PosRow(2, 20, 5, 1));   // above max 3
  changes.fact.insertions.Insert(PosRow(2, 20, 1, 2));   // below min 2
  RefreshStats stats = Cycle(c, st, changes);
  EXPECT_EQ(stats.recomputed_groups, 0u);
  EXPECT_EQ(stats.minmax_recomputes, 0u);
  EXPECT_EQ(stats.recompute_scan_rows, 0u);
  EXPECT_EQ(stats.updated, 1u);
  const rel::Row* row = st.Find({Value::Int64(2), Value::String("toys")});
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[st.schema().Resolve("LatestSale")].as_int64(), 5);
  EXPECT_EQ((*row)[st.schema().Resolve("EarliestSale")].as_int64(), 1);
}

TEST(MinMaxTest, TaintedGroupStillRecomputesInDefaultMode) {
  // A deletion in the same group taints it: the optimization must not
  // skip the base recompute.
  rel::Catalog c = TinyCatalog();
  AugmentedView av = SicView(c);
  SummaryTable st(av, c);
  st.MaterializeFrom(c);

  ChangeSet changes = EmptyChanges(c);
  changes.fact.insertions.Insert(PosRow(2, 20, 9, 1));
  changes.fact.deletions.Insert(PosRow(2, 20, 2, 1));  // delete the min
  RefreshStats stats = Cycle(c, st, changes);
  EXPECT_EQ(stats.recomputed_groups, 1u);
  EXPECT_EQ(stats.minmax_recomputes, 1u);
  const rel::Row* row = st.Find({Value::Int64(2), Value::String("toys")});
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[st.schema().Resolve("EarliestSale")].as_int64(), 3);
  EXPECT_EQ((*row)[st.schema().Resolve("LatestSale")].as_int64(), 9);
}

TEST(MinMaxTest, PerGroupRecomputeMatchesBatched) {
  auto make_changes = [](const rel::Catalog& cat) {
    ChangeSet changes = EmptyChanges(cat);
    changes.fact.deletions.Insert(PosRow(2, 20, 2, 1));
    changes.fact.deletions.Insert(PosRow(1, 10, 1, 5));
    changes.fact.insertions.Insert(PosRow(1, 20, 1, 3));
    return changes;
  };
  ViewDef v = SicView(TinyCatalog()).physical;

  RefreshOptions per_group;
  per_group.batch_minmax_recompute = false;
  sdelta::testing::ExpectMaintainedEqualsRecomputed(&TinyCatalog, {v},
                                                    make_changes, per_group);
  sdelta::testing::ExpectMaintainedEqualsRecomputed(&TinyCatalog, {v},
                                                    make_changes,
                                                    RefreshOptions{});
}

TEST(MinMaxTest, GroupVanishesEntirely) {
  rel::Catalog c = TinyCatalog();
  AugmentedView av = SicView(c);
  SummaryTable st(av, c);
  st.MaterializeFrom(c);
  const size_t before = st.NumRows();

  // Delete both rows of (2, toys): the group must disappear, no scan.
  ChangeSet changes = EmptyChanges(c);
  changes.fact.deletions.Insert(PosRow(2, 20, 2, 1));
  changes.fact.deletions.Insert(PosRow(2, 20, 3, 4));
  RefreshStats stats = Cycle(c, st, changes);
  EXPECT_EQ(stats.deleted, 1u);
  EXPECT_EQ(stats.recomputed_groups, 0u);
  EXPECT_EQ(st.NumRows(), before - 1);
  EXPECT_EQ(st.Find({Value::Int64(2), Value::String("toys")}), nullptr);
}

TEST(MinMaxTest, MergeStrategyRecomputesToo) {
  rel::Catalog c = TinyCatalog();
  AugmentedView av = SicView(c);
  SummaryTable st(av, c);
  st.MaterializeFrom(c);

  ChangeSet changes = EmptyChanges(c);
  changes.fact.deletions.Insert(PosRow(2, 20, 2, 1));
  RefreshOptions ropts;
  ropts.strategy = RefreshStrategy::kMerge;
  RefreshStats stats = Cycle(c, st, changes, ropts);
  EXPECT_EQ(stats.recomputed_groups, 1u);
  EXPECT_EQ(stats.minmax_recomputes, 1u);
  const rel::Row* row = st.Find({Value::Int64(2), Value::String("toys")});
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[st.schema().Resolve("EarliestSale")].as_int64(), 3);
}

}  // namespace
}  // namespace sdelta::core
