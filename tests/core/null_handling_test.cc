#include <gtest/gtest.h>

#include "core/maintenance.h"
#include "core/propagate.h"
#include "core/refresh.h"
#include "oracle.h"

namespace sdelta::core {
namespace {

using rel::Expression;
using rel::Table;
using rel::Value;

/// A fact table whose aggregated column x is nullable (paper §3.1: in the
/// presence of nulls, both COUNT(*) and COUNT(e) are required to make
/// SUM(e) self-maintainable).
rel::Catalog NullableCatalog() {
  rel::Catalog c;
  rel::Schema s;
  s.AddColumn("g", rel::ValueType::kInt64);
  s.AddColumn("x", rel::ValueType::kInt64);
  rel::Table f(s, "f");
  f.Insert({Value::Int64(1), Value::Int64(10)});
  f.Insert({Value::Int64(1), Value::Null()});
  f.Insert({Value::Int64(2), Value::Null()});
  f.Insert({Value::Int64(2), Value::Null()});
  f.Insert({Value::Int64(3), Value::Int64(7)});
  f.Insert({Value::Int64(3), Value::Int64(2)});
  c.AddTable(std::move(f));
  return c;
}

ViewDef NullableView() {
  ViewDef v;
  v.name = "v";
  v.fact_table = "f";
  v.group_by = {"g"};
  v.aggregates = {rel::CountStar("n"),
                  rel::Count(Expression::Column("x"), "nx"),
                  rel::Sum(Expression::Column("x"), "sx"),
                  rel::Min(Expression::Column("x"), "mn"),
                  rel::Max(Expression::Column("x"), "mx")};
  return v;
}

rel::Row FRow(int64_t g, Value x) { return {Value::Int64(g), std::move(x)}; }

ChangeSet Changes(const rel::Catalog& c) {
  ChangeSet ch;
  ch.fact_table = "f";
  ch.fact = DeltaSet(c.GetTable("f").schema());
  return ch;
}

TEST(NullHandlingTest, AllNullGroupHasNullSumAndMinMax) {
  rel::Catalog c = NullableCatalog();
  AugmentedView av = AugmentForSelfMaintenance(c, NullableView());
  SummaryTable st(av, c);
  st.MaterializeFrom(c);
  const rel::Row* g2 = st.Find({Value::Int64(2)});
  ASSERT_NE(g2, nullptr);
  const rel::Schema& s = st.schema();
  EXPECT_EQ((*g2)[s.Resolve("n")].as_int64(), 2);
  EXPECT_EQ((*g2)[s.Resolve("nx")].as_int64(), 0);
  EXPECT_TRUE((*g2)[s.Resolve("sx")].is_null());
  EXPECT_TRUE((*g2)[s.Resolve("mn")].is_null());
  EXPECT_TRUE((*g2)[s.Resolve("mx")].is_null());
}

TEST(NullHandlingTest, DeletingLastNonNullValueNullsAggregates) {
  // Group 1 has x = {10, NULL}. Deleting the 10 leaves COUNT(*)=1 but
  // COUNT(x)=0, so SUM/MIN/MAX become NULL (Figure 7's COUNT(e) rule).
  rel::Catalog c = NullableCatalog();
  AugmentedView av = AugmentForSelfMaintenance(c, NullableView());
  SummaryTable st(av, c);
  st.MaterializeFrom(c);

  ChangeSet ch = Changes(c);
  ch.fact.deletions.Insert(FRow(1, Value::Int64(10)));
  Table sd = ComputeSummaryDelta(c, av, ch);
  ApplyChangeSet(c, ch);
  RefreshStats stats = Refresh(c, st, sd);
  EXPECT_EQ(stats.recomputed_groups, 0u);  // COUNT(e) hit 0: no base scan

  const rel::Row* g1 = st.Find({Value::Int64(1)});
  ASSERT_NE(g1, nullptr);
  const rel::Schema& s = st.schema();
  EXPECT_EQ((*g1)[s.Resolve("n")].as_int64(), 1);
  EXPECT_EQ((*g1)[s.Resolve("nx")].as_int64(), 0);
  EXPECT_TRUE((*g1)[s.Resolve("sx")].is_null());
  EXPECT_TRUE((*g1)[s.Resolve("mn")].is_null());
  EXPECT_TRUE((*g1)[s.Resolve("mx")].is_null());
}

TEST(NullHandlingTest, FirstNonNullValueArrives) {
  // Group 2 is all-null; inserting x=5 must give SUM/MIN/MAX = 5.
  rel::Catalog c = NullableCatalog();
  AugmentedView av = AugmentForSelfMaintenance(c, NullableView());
  SummaryTable st(av, c);
  st.MaterializeFrom(c);

  ChangeSet ch = Changes(c);
  ch.fact.insertions.Insert(FRow(2, Value::Int64(5)));
  Table sd = ComputeSummaryDelta(c, av, ch);
  ApplyChangeSet(c, ch);
  Refresh(c, st, sd);

  const rel::Row* g2 = st.Find({Value::Int64(2)});
  const rel::Schema& s = st.schema();
  EXPECT_EQ((*g2)[s.Resolve("nx")].as_int64(), 1);
  EXPECT_EQ((*g2)[s.Resolve("sx")].as_int64(), 5);
  EXPECT_EQ((*g2)[s.Resolve("mn")].as_int64(), 5);
  EXPECT_EQ((*g2)[s.Resolve("mx")].as_int64(), 5);
}

TEST(NullHandlingTest, NullOnlyChangesLeaveAggregatesAlone) {
  rel::Catalog c = NullableCatalog();
  AugmentedView av = AugmentForSelfMaintenance(c, NullableView());
  SummaryTable st(av, c);
  st.MaterializeFrom(c);

  ChangeSet ch = Changes(c);
  ch.fact.insertions.Insert(FRow(3, Value::Null()));
  Table sd = ComputeSummaryDelta(c, av, ch);
  ApplyChangeSet(c, ch);
  Refresh(c, st, sd);

  const rel::Row* g3 = st.Find({Value::Int64(3)});
  const rel::Schema& s = st.schema();
  EXPECT_EQ((*g3)[s.Resolve("n")].as_int64(), 3);
  EXPECT_EQ((*g3)[s.Resolve("nx")].as_int64(), 2);
  EXPECT_EQ((*g3)[s.Resolve("sx")].as_int64(), 9);
  EXPECT_EQ((*g3)[s.Resolve("mn")].as_int64(), 2);
}

TEST(NullHandlingTest, MixedNullBatchesMatchOracle) {
  auto make_catalog = &NullableCatalog;
  auto make_changes = [](const rel::Catalog& cat) {
    ChangeSet ch;
    ch.fact_table = "f";
    ch.fact = DeltaSet(cat.GetTable("f").schema());
    ch.fact.insertions.Insert(FRow(1, Value::Null()));
    ch.fact.insertions.Insert(FRow(2, Value::Int64(4)));
    ch.fact.insertions.Insert(FRow(4, Value::Null()));  // brand-new group
    ch.fact.deletions.Insert(FRow(1, Value::Int64(10)));
    ch.fact.deletions.Insert(FRow(3, Value::Int64(2)));
    return ch;
  };
  sdelta::testing::ExpectMaintainedEqualsRecomputed(make_catalog,
                                                    {NullableView()},
                                                    make_changes);
  RefreshOptions merge;
  merge.strategy = RefreshStrategy::kMerge;
  sdelta::testing::ExpectMaintainedEqualsRecomputed(
      make_catalog, {NullableView()}, make_changes, merge);
}

TEST(NullHandlingTest, NewGroupWithOnlyNullValues) {
  rel::Catalog c = NullableCatalog();
  AugmentedView av = AugmentForSelfMaintenance(c, NullableView());
  SummaryTable st(av, c);
  st.MaterializeFrom(c);

  ChangeSet ch = Changes(c);
  ch.fact.insertions.Insert(FRow(9, Value::Null()));
  Table sd = ComputeSummaryDelta(c, av, ch);
  ApplyChangeSet(c, ch);
  RefreshStats stats = Refresh(c, st, sd);
  EXPECT_EQ(stats.inserted, 1u);
  const rel::Row* g9 = st.Find({Value::Int64(9)});
  ASSERT_NE(g9, nullptr);
  const rel::Schema& s = st.schema();
  EXPECT_EQ((*g9)[s.Resolve("n")].as_int64(), 1);
  EXPECT_EQ((*g9)[s.Resolve("nx")].as_int64(), 0);
  EXPECT_TRUE((*g9)[s.Resolve("sx")].is_null());
}

}  // namespace
}  // namespace sdelta::core
