#include "core/self_maintenance.h"

#include <gtest/gtest.h>

#include "core/view_def.h"
#include "tiny_catalog.h"

namespace sdelta::core {
namespace {

using rel::AggregateKind;
using rel::Expression;
using sdelta::testing::TinyCatalog;

ViewDef BaseView() {
  ViewDef v;
  v.name = "v";
  v.fact_table = "pos";
  v.group_by = {"storeID"};
  return v;
}

const rel::AggregateSpec* FindByName(const ViewDef& v, const std::string& n) {
  for (const rel::AggregateSpec& a : v.aggregates) {
    if (a.output_name == n) return &a;
  }
  return nullptr;
}

TEST(ClassifyTest, Classification) {
  EXPECT_EQ(ClassifyAggregate(AggregateKind::kCountStar),
            AggregateClass::kDistributive);
  EXPECT_EQ(ClassifyAggregate(AggregateKind::kSum),
            AggregateClass::kDistributive);
  EXPECT_EQ(ClassifyAggregate(AggregateKind::kMin),
            AggregateClass::kDistributive);
  EXPECT_EQ(ClassifyAggregate(AggregateKind::kAvg),
            AggregateClass::kAlgebraic);
}

TEST(ClassifyTest, SelfMaintainability) {
  // §3.1: all distributive functions self-maintain on insertions.
  EXPECT_TRUE(SelfMaintainableOnInsertions(AggregateKind::kSum));
  EXPECT_TRUE(SelfMaintainableOnInsertions(AggregateKind::kMin));
  // Only COUNT variants self-maintain on deletions unaided.
  EXPECT_TRUE(SelfMaintainableOnDeletions(AggregateKind::kCountStar));
  EXPECT_TRUE(SelfMaintainableOnDeletions(AggregateKind::kCount));
  EXPECT_FALSE(SelfMaintainableOnDeletions(AggregateKind::kSum));
  EXPECT_FALSE(SelfMaintainableOnDeletions(AggregateKind::kMin));
  EXPECT_FALSE(SelfMaintainableOnDeletions(AggregateKind::kMax));
}

TEST(AugmentTest, AddsCountStarWhenMissing) {
  rel::Catalog c = TinyCatalog();
  ViewDef v = BaseView();
  v.aggregates = {rel::Sum(Expression::Column("qty"), "total")};
  AugmentedView av = AugmentForSelfMaintenance(c, v);
  EXPECT_FALSE(av.count_star_column.empty());
  ASSERT_NE(FindByName(av.physical, av.count_star_column), nullptr);
  EXPECT_EQ(FindByName(av.physical, av.count_star_column)->kind,
            AggregateKind::kCountStar);
}

TEST(AugmentTest, ReusesDeclaredCountStar) {
  rel::Catalog c = TinyCatalog();
  ViewDef v = BaseView();
  v.aggregates = {rel::CountStar("TotalCount"),
                  rel::Sum(Expression::Column("qty"), "total")};
  AugmentedView av = AugmentForSelfMaintenance(c, v);
  EXPECT_EQ(av.count_star_column, "TotalCount");
  // No second COUNT(*) added.
  size_t count_stars = 0;
  for (const rel::AggregateSpec& a : av.physical.aggregates) {
    count_stars += (a.kind == AggregateKind::kCountStar) ? 1 : 0;
  }
  EXPECT_EQ(count_stars, 1u);
}

TEST(AugmentTest, AddsCompanionCountForSumMinMax) {
  rel::Catalog c = TinyCatalog();
  ViewDef v = BaseView();
  v.aggregates = {rel::Sum(Expression::Column("qty"), "total"),
                  rel::Min(Expression::Column("date"), "first")};
  AugmentedView av = AugmentForSelfMaintenance(c, v);
  const std::string& total_cnt = av.companion_count.at("total");
  const std::string& first_cnt = av.companion_count.at("first");
  ASSERT_NE(FindByName(av.physical, total_cnt), nullptr);
  EXPECT_EQ(FindByName(av.physical, total_cnt)->kind, AggregateKind::kCount);
  ASSERT_NE(FindByName(av.physical, first_cnt), nullptr);
  // COUNT(qty) and COUNT(date) are distinct companions.
  EXPECT_NE(total_cnt, first_cnt);
}

TEST(AugmentTest, SharedArgumentSharesCompanion) {
  rel::Catalog c = TinyCatalog();
  ViewDef v = BaseView();
  v.aggregates = {rel::Sum(Expression::Column("qty"), "total"),
                  rel::Max(Expression::Column("qty"), "biggest")};
  AugmentedView av = AugmentForSelfMaintenance(c, v);
  EXPECT_EQ(av.companion_count.at("total"),
            av.companion_count.at("biggest"));
}

TEST(AugmentTest, CountIsItsOwnCompanion) {
  rel::Catalog c = TinyCatalog();
  ViewDef v = BaseView();
  v.aggregates = {rel::Count(Expression::Column("qty"), "nq")};
  AugmentedView av = AugmentForSelfMaintenance(c, v);
  EXPECT_EQ(av.companion_count.at("nq"), "nq");
  EXPECT_EQ(av.companion_count.at(av.count_star_column),
            av.count_star_column);
}

TEST(AugmentTest, AvgSplitsIntoSumAndCount) {
  rel::Catalog c = TinyCatalog();
  ViewDef v = BaseView();
  v.aggregates = {rel::Avg(Expression::Column("qty"), "avg_qty")};
  AugmentedView av = AugmentForSelfMaintenance(c, v);
  // Physical view has no AVG.
  for (const rel::AggregateSpec& a : av.physical.aggregates) {
    EXPECT_NE(a.kind, AggregateKind::kAvg);
  }
  ASSERT_EQ(av.logical_columns.size(), 1u);
  const LogicalColumn& lc = av.logical_columns[0];
  EXPECT_EQ(lc.source, LogicalColumn::Source::kSumOverCount);
  ASSERT_NE(FindByName(av.physical, lc.column), nullptr);
  EXPECT_EQ(FindByName(av.physical, lc.column)->kind, AggregateKind::kSum);
  ASSERT_NE(FindByName(av.physical, lc.count_column), nullptr);
  EXPECT_EQ(FindByName(av.physical, lc.count_column)->kind,
            AggregateKind::kCount);
}

TEST(AugmentTest, AvgReusesDeclaredSum) {
  rel::Catalog c = TinyCatalog();
  ViewDef v = BaseView();
  v.aggregates = {rel::Sum(Expression::Column("qty"), "total"),
                  rel::Avg(Expression::Column("qty"), "avg_qty")};
  AugmentedView av = AugmentForSelfMaintenance(c, v);
  EXPECT_EQ(av.logical_columns[1].column, "total");  // shared SUM
}

TEST(AugmentTest, DuplicateAggregatesComputedOnce) {
  rel::Catalog c = TinyCatalog();
  ViewDef v = BaseView();
  v.aggregates = {rel::Sum(Expression::Column("qty"), "a"),
                  rel::Sum(Expression::Column("qty"), "b")};
  AugmentedView av = AugmentForSelfMaintenance(c, v);
  size_t sums = 0;
  for (const rel::AggregateSpec& a : av.physical.aggregates) {
    sums += (a.kind == AggregateKind::kSum) ? 1 : 0;
  }
  EXPECT_EQ(sums, 1u);
  EXPECT_EQ(av.logical_columns[0].column, av.logical_columns[1].column);
}

TEST(AugmentTest, FreshNamesAvoidCollisions) {
  rel::Catalog c = TinyCatalog();
  ViewDef v = BaseView();
  // A user column already named "count_star" forces a fresh name.
  v.aggregates = {rel::Sum(Expression::Column("qty"), "count_star")};
  AugmentedView av = AugmentForSelfMaintenance(c, v);
  EXPECT_NE(av.count_star_column, "count_star");
}

TEST(LogicalRowsTest, ReconstructsAvg) {
  rel::Catalog c = TinyCatalog();
  ViewDef v = BaseView();
  v.aggregates = {rel::Avg(Expression::Column("qty"), "avg_qty")};
  AugmentedView av = AugmentForSelfMaintenance(c, v);
  rel::Table physical = EvaluateView(c, av.physical);
  rel::Table logical = LogicalRows(av, physical);
  ASSERT_EQ(logical.NumRows(), 2u);
  EXPECT_EQ(logical.schema().column(1).name, "avg_qty");
  for (const rel::Row& r : logical.MaterializeRows()) {
    if (r[0].as_int64() == 1) {
      EXPECT_DOUBLE_EQ(r[1].as_double(), 10.0 / 3.0);  // qty 5,3,2
    } else {
      EXPECT_DOUBLE_EQ(r[1].as_double(), 4.0);  // qty 7,1,4
    }
  }
}

}  // namespace
}  // namespace sdelta::core
