#include "core/maintenance.h"

#include <gtest/gtest.h>

#include "oracle.h"
#include "tiny_catalog.h"
#include "warehouse/retail_schema.h"
#include "warehouse/workload.h"

namespace sdelta::core {
namespace {

using sdelta::testing::ExpectMaintainedEqualsRecomputed;
using sdelta::testing::PosRow;
using sdelta::testing::TinyCatalog;

rel::Catalog SmallRetail() {
  warehouse::RetailConfig config;
  config.num_stores = 10;
  config.num_cities = 4;
  config.num_regions = 2;
  config.num_items = 50;
  config.num_categories = 5;
  config.num_dates = 30;
  config.num_pos_rows = 2000;
  config.seed = 7;
  return warehouse::MakeRetailCatalog(config);
}

TEST(MaintenanceTest, MaintainViewReportsPhases) {
  rel::Catalog c = TinyCatalog();
  ViewDef v;
  v.name = "SID_sales";
  v.fact_table = "pos";
  v.group_by = {"storeID", "itemID", "date"};
  v.aggregates = {rel::CountStar("n"),
                  rel::Sum(rel::Expression::Column("qty"), "total")};
  AugmentedView av = AugmentForSelfMaintenance(c, v);
  SummaryTable st(av, c);
  st.MaterializeFrom(c);

  ChangeSet changes;
  changes.fact_table = "pos";
  changes.fact = DeltaSet(c.GetTable("pos").schema());
  changes.fact.insertions.Insert(PosRow(1, 10, 1, 2));
  changes.fact.deletions.Insert(PosRow(2, 20, 3, 4));

  MaintenanceReport report = MaintainView(c, st, changes);
  EXPECT_EQ(report.view, "SID_sales");
  EXPECT_GE(report.propagate_seconds, 0.0);
  EXPECT_GE(report.refresh_seconds, 0.0);
  EXPECT_EQ(report.propagate.prepared_tuples, 2u);
  EXPECT_EQ(report.propagate.delta_groups, 2u);
  EXPECT_EQ(report.refresh.updated, 1u);
  EXPECT_EQ(report.refresh.deleted, 1u);
  // Base table was updated inside the call.
  EXPECT_EQ(c.GetTable("pos").NumRows(), 6u);
}

TEST(MaintenanceTest, ApplyDeltaRejectsUnmatchedDeletion) {
  rel::Catalog c = TinyCatalog();
  DeltaSet d(c.GetTable("pos").schema());
  d.deletions.Insert(PosRow(99, 99, 99, 99));
  EXPECT_THROW(ApplyDeltaToTable(c.GetTable("pos"), d), std::runtime_error);
}

TEST(MaintenanceTest, AllFourRetailViewsUpdateGenerating) {
  ExpectMaintainedEqualsRecomputed(
      &SmallRetail, warehouse::RetailSummaryTables(),
      [](const rel::Catalog& cat) {
        return warehouse::MakeUpdateGeneratingChanges(cat, 200, 11);
      });
}

TEST(MaintenanceTest, AllFourRetailViewsInsertionGenerating) {
  ExpectMaintainedEqualsRecomputed(
      &SmallRetail, warehouse::RetailSummaryTables(),
      [](const rel::Catalog& cat) {
        return warehouse::MakeInsertionGeneratingChanges(cat, 200, 12);
      });
}

TEST(MaintenanceTest, RetailViewsMergeRefresh) {
  RefreshOptions merge;
  merge.strategy = RefreshStrategy::kMerge;
  ExpectMaintainedEqualsRecomputed(
      &SmallRetail, warehouse::RetailSummaryTables(),
      [](const rel::Catalog& cat) {
        return warehouse::MakeUpdateGeneratingChanges(cat, 200, 13);
      },
      merge);
}

TEST(MaintenanceTest, RetailViewsPreaggregatedPropagate) {
  PropagateOptions popts;
  popts.preaggregate = true;
  ExpectMaintainedEqualsRecomputed(
      &SmallRetail, warehouse::RetailSummaryTables(),
      [](const rel::Catalog& cat) {
        return warehouse::MakeUpdateGeneratingChanges(cat, 200, 14);
      },
      RefreshOptions{}, popts);
}

TEST(MaintenanceTest, ConsecutiveBatches) {
  // Three consecutive batch windows; state must track the oracle
  // throughout (deltas composed across batches).
  rel::Catalog c = SmallRetail();
  std::vector<AugmentedView> views;
  std::vector<SummaryTable> summaries;
  for (const ViewDef& v : warehouse::RetailSummaryTables()) {
    views.push_back(AugmentForSelfMaintenance(c, v));
    summaries.emplace_back(views.back(), c);
    summaries.back().MaterializeFrom(c);
  }
  for (uint64_t batch = 0; batch < 3; ++batch) {
    ChangeSet changes =
        warehouse::MakeUpdateGeneratingChanges(c, 100, 20 + batch);
    std::vector<rel::Table> deltas;
    for (const AugmentedView& av : views) {
      deltas.push_back(ComputeSummaryDelta(c, av, changes));
    }
    ApplyChangeSet(c, changes);
    for (size_t i = 0; i < summaries.size(); ++i) {
      Refresh(c, summaries[i], deltas[i]);
    }
  }
  for (size_t i = 0; i < summaries.size(); ++i) {
    SCOPED_TRACE(views[i].name());
    sdelta::testing::ExpectBagEq(EvaluateView(c, views[i].physical),
                                 summaries[i].ToTable());
  }
}

}  // namespace
}  // namespace sdelta::core
