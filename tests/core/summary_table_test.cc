#include "core/summary_table.h"

#include <gtest/gtest.h>

#include "tiny_catalog.h"

namespace sdelta::core {
namespace {

using rel::Expression;
using rel::GroupKey;
using rel::Value;
using sdelta::testing::TinyCatalog;

AugmentedView SidView(const rel::Catalog& c) {
  ViewDef v;
  v.name = "SID_sales";
  v.fact_table = "pos";
  v.group_by = {"storeID", "itemID", "date"};
  v.aggregates = {rel::CountStar("TotalCount"),
                  rel::Sum(Expression::Column("qty"), "TotalQuantity")};
  return AugmentForSelfMaintenance(c, v);
}

TEST(SummaryTableTest, MaterializeFromCatalog) {
  rel::Catalog c = TinyCatalog();
  SummaryTable st(SidView(c), c);
  EXPECT_EQ(st.NumRows(), 0u);
  st.MaterializeFrom(c);
  EXPECT_EQ(st.NumRows(), 5u);  // 6 pos rows, one duplicate group
  EXPECT_EQ(st.num_group_columns(), 3u);
}

TEST(SummaryTableTest, FindByKey) {
  rel::Catalog c = TinyCatalog();
  SummaryTable st(SidView(c), c);
  st.MaterializeFrom(c);
  GroupKey key = {Value::Int64(1), Value::Int64(10), Value::Int64(1)};
  const rel::Row* row = st.Find(key);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[3].as_int64(), 2);  // TotalCount of the duplicate group
  EXPECT_EQ((*row)[4].as_int64(), 8);  // 5 + 3
  GroupKey missing = {Value::Int64(9), Value::Int64(9), Value::Int64(9)};
  EXPECT_EQ(st.Find(missing), nullptr);
}

TEST(SummaryTableTest, InsertEraseRoundTrip) {
  rel::Catalog c = TinyCatalog();
  SummaryTable st(SidView(c), c);
  st.MaterializeFrom(c);
  const size_t before = st.NumRows();

  // Schema: group-bys + TotalCount + TotalQuantity + COUNT(qty) companion.
  ASSERT_EQ(st.schema().NumColumns(), 6u);
  rel::Row fresh = {Value::Int64(7), Value::Int64(10), Value::Int64(9),
                    Value::Int64(1), Value::Int64(4), Value::Int64(1)};
  st.Insert(fresh);
  EXPECT_EQ(st.NumRows(), before + 1);
  GroupKey key = {Value::Int64(7), Value::Int64(10), Value::Int64(9)};
  ASSERT_NE(st.Find(key), nullptr);
  EXPECT_TRUE(st.Erase(key));
  EXPECT_FALSE(st.Erase(key));
  EXPECT_EQ(st.NumRows(), before);
}

TEST(SummaryTableTest, DuplicateInsertThrows) {
  rel::Catalog c = TinyCatalog();
  SummaryTable st(SidView(c), c);
  st.MaterializeFrom(c);
  rel::Row dup = st.rows()[0];
  EXPECT_THROW(st.Insert(dup), std::logic_error);
}

TEST(SummaryTableTest, ArityMismatchThrows) {
  rel::Catalog c = TinyCatalog();
  SummaryTable st(SidView(c), c);
  EXPECT_THROW(st.Insert({Value::Int64(1)}), std::invalid_argument);
}

TEST(SummaryTableTest, EraseKeepsIndexConsistent) {
  rel::Catalog c = TinyCatalog();
  SummaryTable st(SidView(c), c);
  st.MaterializeFrom(c);
  // Erase every group one by one, always via a fresh key of row 0.
  while (st.NumRows() > 0) {
    GroupKey key = st.KeyOf(st.rows()[0]);
    EXPECT_TRUE(st.Erase(key));
    EXPECT_EQ(st.Find(key), nullptr);
  }
}

TEST(SummaryTableTest, FindMutableAllowsUpdate) {
  rel::Catalog c = TinyCatalog();
  SummaryTable st(SidView(c), c);
  st.MaterializeFrom(c);
  GroupKey key = {Value::Int64(1), Value::Int64(10), Value::Int64(1)};
  rel::Row* row = st.FindMutable(key);
  ASSERT_NE(row, nullptr);
  (*row)[4] = Value::Int64(99);
  EXPECT_EQ((*st.Find(key))[4].as_int64(), 99);
}

TEST(SummaryTableTest, ToTableMatchesEvaluate) {
  rel::Catalog c = TinyCatalog();
  AugmentedView av = SidView(c);
  SummaryTable st(av, c);
  st.MaterializeFrom(c);
  EXPECT_TRUE(rel::Table::BagEquals(EvaluateView(c, av.physical),
                                    st.ToTable()));
}

TEST(SummaryTableTest, LoadFromReplaces) {
  rel::Catalog c = TinyCatalog();
  AugmentedView av = SidView(c);
  SummaryTable st(av, c);
  st.MaterializeFrom(c);
  rel::Table empty(st.schema());
  st.LoadFrom(empty);
  EXPECT_EQ(st.NumRows(), 0u);
}

}  // namespace
}  // namespace sdelta::core
