#include "core/prepare_changes.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "tiny_catalog.h"

namespace sdelta::core {
namespace {

using rel::Expression;
using rel::Table;
using rel::Value;
using sdelta::testing::PosRow;
using sdelta::testing::TinyCatalog;

/// The SiC_sales view of the paper over the tiny catalog: group by
/// (storeID, category), COUNT(*), MIN(date), SUM(qty).
AugmentedView SiC(const rel::Catalog& c) {
  ViewDef v;
  v.name = "SiC_sales";
  v.fact_table = "pos";
  v.joins = {DimensionJoin{"items", "itemID", "itemID"}};
  v.group_by = {"storeID", "category"};
  v.aggregates = {rel::CountStar("TotalCount"),
                  rel::Min(Expression::Column("date"), "EarliestSale"),
                  rel::Sum(Expression::Column("qty"), "TotalQuantity")};
  return AugmentForSelfMaintenance(c, v);
}

size_t Col(const Table& t, const std::string& name) {
  return t.schema().Resolve(name);
}

TEST(PrepareChangesTest, Table1InsertionSources) {
  rel::Catalog c = TinyCatalog();
  AugmentedView v = SiC(c);
  Table ins(c.GetTable("pos").schema());
  ins.Insert(PosRow(1, 10, 7, 9));

  // Figure 6's pi_SiC_sales: +1 count, date passthrough, +qty.
  Table pi = PrepareFactChanges(c, v, ins, +1);
  ASSERT_EQ(pi.NumRows(), 1u);
  const rel::Row& r = pi.RowAt(0);
  EXPECT_EQ(r[Col(pi, "storeID")].as_int64(), 1);
  EXPECT_EQ(r[Col(pi, "category")].as_string(), "food");
  EXPECT_EQ(r[Col(pi, "TotalCount")].as_int64(), 1);
  EXPECT_EQ(r[Col(pi, "EarliestSale")].as_int64(), 7);
  EXPECT_EQ(r[Col(pi, "TotalQuantity")].as_int64(), 9);
}

TEST(PrepareChangesTest, Table1DeletionSources) {
  rel::Catalog c = TinyCatalog();
  AugmentedView v = SiC(c);
  Table del(c.GetTable("pos").schema());
  del.Insert(PosRow(2, 20, 3, 4));

  // Figure 6's pd_SiC_sales: -1 count, date passthrough (NOT negated),
  // -qty.
  Table pd = PrepareFactChanges(c, v, del, -1);
  ASSERT_EQ(pd.NumRows(), 1u);
  const rel::Row& r = pd.RowAt(0);
  EXPECT_EQ(r[Col(pd, "TotalCount")].as_int64(), -1);
  EXPECT_EQ(r[Col(pd, "EarliestSale")].as_int64(), 3);
  EXPECT_EQ(r[Col(pd, "TotalQuantity")].as_int64(), -4);
}

TEST(PrepareChangesTest, Table1CountExprWithNulls) {
  // COUNT(expr): CASE WHEN expr IS NULL THEN 0 ELSE ±1 END.
  rel::Catalog c;
  rel::Schema s;
  s.AddColumn("g", rel::ValueType::kInt64);
  s.AddColumn("x", rel::ValueType::kInt64);
  c.AddTable(rel::Table(s, "f"));

  ViewDef v;
  v.name = "v";
  v.fact_table = "f";
  v.group_by = {"g"};
  v.aggregates = {rel::Count(Expression::Column("x"), "nx")};
  AugmentedView av = AugmentForSelfMaintenance(c, v);

  Table rows(s);
  rows.Insert({Value::Int64(1), Value::Int64(5)});
  rows.Insert({Value::Int64(1), Value::Null()});

  Table pi = PrepareFactChanges(c, av, rows, +1);
  Table pd = PrepareFactChanges(c, av, rows, -1);
  const size_t nx_i = Col(pi, "nx");
  EXPECT_EQ(pi.RowAt(0)[nx_i].as_int64(), 1);
  EXPECT_EQ(pi.RowAt(1)[nx_i].as_int64(), 0);  // null -> 0
  EXPECT_EQ(pd.RowAt(0)[nx_i].as_int64(), -1);
  EXPECT_EQ(pd.RowAt(1)[nx_i].as_int64(), 0);  // null -> 0, not -0 trouble
}

TEST(PrepareChangesTest, SumOfExpressionNegatedOnDeletion) {
  rel::Catalog c = TinyCatalog();
  ViewDef v;
  v.name = "revenue";
  v.fact_table = "pos";
  v.group_by = {"storeID"};
  v.aggregates = {rel::Sum(
      Expression::Multiply(Expression::Column("qty"),
                           Expression::Column("qty")),
      "qty_sq")};
  AugmentedView av = AugmentForSelfMaintenance(c, v);

  Table del(c.GetTable("pos").schema());
  del.Insert(PosRow(1, 10, 1, 3));
  Table pd = PrepareFactChanges(c, av, del, -1);
  EXPECT_EQ(pd.RowAt(0)[Col(pd, "qty_sq")].as_int64(), -9);
}

TEST(PrepareChangesTest, UnionsInsertionsAndDeletions) {
  rel::Catalog c = TinyCatalog();
  AugmentedView v = SiC(c);
  ChangeSet changes;
  changes.fact_table = "pos";
  changes.fact = DeltaSet(c.GetTable("pos").schema());
  changes.fact.insertions.Insert(PosRow(1, 10, 7, 9));
  changes.fact.insertions.Insert(PosRow(2, 20, 8, 2));
  changes.fact.deletions.Insert(PosRow(2, 20, 3, 4));

  Table pc = PrepareChanges(c, v, changes);
  EXPECT_EQ(pc.NumRows(), 3u);
  // Net count by sign.
  int64_t net = 0;
  for (const rel::Row& r : pc.MaterializeRows()) {
    net += r[Col(pc, "TotalCount")].as_int64();
  }
  EXPECT_EQ(net, 1);
}

TEST(PrepareChangesTest, PredicateAppliedToChanges) {
  rel::Catalog c = TinyCatalog();
  ViewDef v;
  v.name = "big_sales";
  v.fact_table = "pos";
  v.group_by = {"storeID"};
  v.where = Expression::Ge(Expression::Column("qty"),
                           Expression::Literal(Value::Int64(5)));
  v.aggregates = {rel::CountStar("n")};
  AugmentedView av = AugmentForSelfMaintenance(c, v);

  ChangeSet changes;
  changes.fact_table = "pos";
  changes.fact = DeltaSet(c.GetTable("pos").schema());
  changes.fact.insertions.Insert(PosRow(1, 10, 7, 9));  // passes
  changes.fact.insertions.Insert(PosRow(1, 10, 7, 1));  // filtered out

  Table pc = PrepareChanges(c, av, changes);
  EXPECT_EQ(pc.NumRows(), 1u);
}

TEST(PrepareChangesTest, WrongFactTableThrows) {
  rel::Catalog c = TinyCatalog();
  AugmentedView v = SiC(c);
  ChangeSet changes;
  changes.fact_table = "stores";
  EXPECT_THROW(PrepareChanges(c, v, changes), std::invalid_argument);
}

TEST(PrepareChangesTest, DimensionInsertionsJoinOldFact) {
  // §4.1.4: pi_items_SiC_sales = pos ⋈ items_ins. Re-categorize item 10
  // by deleting its row and inserting a new category; the pc relation
  // must move 3 pos rows (store 1 x2, store 2 x1) out of "food" and into
  // "fresh".
  rel::Catalog c = TinyCatalog();
  AugmentedView v = SiC(c);

  ChangeSet changes;
  changes.fact_table = "pos";
  changes.fact = DeltaSet(c.GetTable("pos").schema());
  DeltaSet items_delta(c.GetTable("items").schema());
  items_delta.deletions.Insert({Value::Int64(10), Value::String("food")});
  items_delta.insertions.Insert({Value::Int64(10), Value::String("fresh")});
  changes.dimensions.emplace("items", std::move(items_delta));

  Table pc = PrepareChanges(c, v, changes);
  int64_t food_net = 0;
  int64_t fresh_net = 0;
  for (const rel::Row& r : pc.MaterializeRows()) {
    const std::string& cat = r[Col(pc, "category")].as_string();
    const int64_t n = r[Col(pc, "TotalCount")].as_int64();
    if (cat == "food") food_net += n;
    if (cat == "fresh") fresh_net += n;
  }
  EXPECT_EQ(food_net, -3);
  EXPECT_EQ(fresh_net, 3);
}

TEST(PrepareChangesTest, SimultaneousFactAndDimensionChanges) {
  // The cross term ΔF ⋈ ΔD must fire: a new pos row for item 10 while
  // item 10 moves category. The inserted row must land in the NEW
  // category with net +1 and not double-count.
  rel::Catalog c = TinyCatalog();
  AugmentedView v = SiC(c);

  ChangeSet changes;
  changes.fact_table = "pos";
  changes.fact = DeltaSet(c.GetTable("pos").schema());
  changes.fact.insertions.Insert(PosRow(1, 10, 9, 2));
  DeltaSet items_delta(c.GetTable("items").schema());
  items_delta.deletions.Insert({Value::Int64(10), Value::String("food")});
  items_delta.insertions.Insert({Value::Int64(10), Value::String("fresh")});
  changes.dimensions.emplace("items", std::move(items_delta));

  Table pc = PrepareChanges(c, v, changes);
  // Aggregate net counts per (storeID, category).
  int64_t store1_fresh = 0;
  int64_t store1_food = 0;
  for (const rel::Row& r : pc.MaterializeRows()) {
    if (r[Col(pc, "storeID")].as_int64() != 1) continue;
    const std::string& cat = r[Col(pc, "category")].as_string();
    const int64_t n = r[Col(pc, "TotalCount")].as_int64();
    if (cat == "fresh") store1_fresh += n;
    if (cat == "food") store1_food += n;
  }
  // Store 1 had 2 food rows; both move to fresh, plus the new row: +3.
  EXPECT_EQ(store1_fresh, 3);
  EXPECT_EQ(store1_food, -2);
}

TEST(PrepareChangesTest, SchemaMatchesSummarySchema) {
  rel::Catalog c = TinyCatalog();
  AugmentedView v = SiC(c);
  EXPECT_TRUE(PrepareChangesSchema(c, v) ==
              ViewOutputSchema(c, v.physical));
}

}  // namespace
}  // namespace sdelta::core
