#include "core/view_def.h"

#include <gtest/gtest.h>

#include "test_util.h"
#include "tiny_catalog.h"

namespace sdelta::core {
namespace {

using rel::Expression;
using rel::Value;
using sdelta::testing::ExpectBagEq;
using sdelta::testing::TinyCatalog;

ViewDef CityView() {
  ViewDef v;
  v.name = "city_sales";
  v.fact_table = "pos";
  v.joins = {DimensionJoin{"stores", "storeID", "storeID"}};
  v.group_by = {"city"};
  v.aggregates = {rel::CountStar("n"),
                  rel::Sum(Expression::Column("qty"), "total")};
  return v;
}

TEST(ViewDefTest, JoinedSchemaQualifiesAndDropsKeys) {
  rel::Catalog c = TinyCatalog();
  const rel::Schema joined = JoinedSchema(c, CityView());
  EXPECT_TRUE(joined.IndexOf("pos.storeID").has_value());
  EXPECT_TRUE(joined.IndexOf("stores.city").has_value());
  EXPECT_FALSE(joined.IndexOf("stores.storeID").has_value());  // dropped
}

TEST(ViewDefTest, EvaluateNoJoinView) {
  rel::Catalog c = TinyCatalog();
  ViewDef v;
  v.name = "sid";
  v.fact_table = "pos";
  v.group_by = {"storeID", "itemID"};
  v.aggregates = {rel::CountStar("n"),
                  rel::Sum(Expression::Column("qty"), "total")};
  rel::Table out = EvaluateView(c, v);

  rel::Schema es;
  es.AddColumn("storeID", rel::ValueType::kInt64);
  es.AddColumn("itemID", rel::ValueType::kInt64);
  es.AddColumn("n", rel::ValueType::kInt64);
  es.AddColumn("total", rel::ValueType::kInt64);
  rel::Table expected(es);
  expected.Insert({Value::Int64(1), Value::Int64(10), Value::Int64(2), Value::Int64(8)});
  expected.Insert({Value::Int64(1), Value::Int64(20), Value::Int64(1), Value::Int64(2)});
  expected.Insert({Value::Int64(2), Value::Int64(10), Value::Int64(1), Value::Int64(7)});
  expected.Insert({Value::Int64(2), Value::Int64(20), Value::Int64(2), Value::Int64(5)});
  ExpectBagEq(expected, out);
}

TEST(ViewDefTest, EvaluateJoinView) {
  rel::Catalog c = TinyCatalog();
  rel::Table out = EvaluateView(c, CityView());

  rel::Schema es;
  es.AddColumn("city", rel::ValueType::kString);
  es.AddColumn("n", rel::ValueType::kInt64);
  es.AddColumn("total", rel::ValueType::kInt64);
  rel::Table expected(es);
  expected.Insert({Value::String("sf"), Value::Int64(3), Value::Int64(10)});
  expected.Insert({Value::String("ny"), Value::Int64(3), Value::Int64(12)});
  ExpectBagEq(expected, out);
}

TEST(ViewDefTest, EvaluateWithPredicate) {
  rel::Catalog c = TinyCatalog();
  ViewDef v = CityView();
  v.where = Expression::Ge(Expression::Column("qty"),
                           Expression::Literal(Value::Int64(3)));
  rel::Table out = EvaluateView(c, v);
  rel::Schema es;
  es.AddColumn("city", rel::ValueType::kString);
  es.AddColumn("n", rel::ValueType::kInt64);
  es.AddColumn("total", rel::ValueType::kInt64);
  rel::Table expected(es);
  expected.Insert({Value::String("sf"), Value::Int64(2), Value::Int64(8)});
  expected.Insert({Value::String("ny"), Value::Int64(2), Value::Int64(11)});
  ExpectBagEq(expected, out);
}

TEST(ViewDefTest, MultiJoinMinAggregate) {
  rel::Catalog c = TinyCatalog();
  ViewDef v;
  v.name = "sic";
  v.fact_table = "pos";
  v.joins = {DimensionJoin{"items", "itemID", "itemID"}};
  v.group_by = {"storeID", "category"};
  v.aggregates = {rel::Min(Expression::Column("date"), "first")};
  rel::Table out = EvaluateView(c, v);
  ASSERT_EQ(out.NumRows(), 4u);
  for (const rel::Row& r : out.MaterializeRows()) {
    if (r[0].as_int64() == 2 && r[1].as_string() == "toys") {
      EXPECT_EQ(r[2].as_int64(), 2);
    }
  }
}

TEST(ViewDefTest, OutputSchemaTypes) {
  rel::Catalog c = TinyCatalog();
  const rel::Schema out = ViewOutputSchema(c, CityView());
  ASSERT_EQ(out.NumColumns(), 3u);
  EXPECT_EQ(out.column(0).name, "city");
  EXPECT_EQ(out.column(0).type, rel::ValueType::kString);
  EXPECT_EQ(out.column(1).type, rel::ValueType::kInt64);
}

TEST(ViewDefTest, ValidateRejectsBadViews) {
  rel::Catalog c = TinyCatalog();
  ViewDef v = CityView();
  v.name = "";
  EXPECT_THROW(ValidateView(c, v), std::invalid_argument);

  v = CityView();
  v.fact_table = "nope";
  EXPECT_THROW(ValidateView(c, v), std::invalid_argument);

  v = CityView();
  v.joins[0].dim_table = "nope";
  EXPECT_THROW(ValidateView(c, v), std::invalid_argument);

  v = CityView();
  v.joins[0].fact_column = "qty";  // not a declared FK
  EXPECT_THROW(ValidateView(c, v), std::invalid_argument);

  v = CityView();
  v.group_by = {"missing_col"};
  EXPECT_THROW(ValidateView(c, v), std::invalid_argument);

  v = CityView();
  v.where = Expression::Column("missing_col");
  EXPECT_THROW(ValidateView(c, v), std::invalid_argument);

  EXPECT_NO_THROW(ValidateView(c, CityView()));
}

TEST(ViewDefTest, ToStringMentionsEverything) {
  const std::string s = CityView().ToString();
  EXPECT_NE(s.find("city_sales"), std::string::npos);
  EXPECT_NE(s.find("pos"), std::string::npos);
  EXPECT_NE(s.find("stores"), std::string::npos);
  EXPECT_NE(s.find("GROUP BY"), std::string::npos);
}

}  // namespace
}  // namespace sdelta::core
