#ifndef SDELTA_TESTS_TEST_UTIL_H_
#define SDELTA_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "relational/table.h"
#include "relational/value.h"

namespace sdelta::testing {

/// Asserts two relations are equal as bags (schema arity + multiset of
/// rows), with a readable dump on failure.
inline void ExpectBagEq(const rel::Table& expected, const rel::Table& actual) {
  EXPECT_TRUE(rel::Table::BagEquals(expected, actual))
      << "expected:\n"
      << expected.ToString(50) << "actual:\n"
      << actual.ToString(50);
}

/// Sorts rows lexicographically (nulls first) — canonical order for
/// row-by-row comparison.
inline std::vector<rel::Row> SortedRows(const rel::Table& t) {
  std::vector<rel::Row> rows = t.MaterializeRows();
  std::sort(rows.begin(), rows.end(), [](const rel::Row& a,
                                         const rel::Row& b) {
    for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
      const int c = rel::Value::Compare(a[i], b[i]);
      if (c != 0) return c < 0;
    }
    return a.size() < b.size();
  });
  return rows;
}

/// Bag comparison tolerant of floating-point drift: rows are sorted,
/// then numeric values compared with relative tolerance.
inline void ExpectBagApproxEq(const rel::Table& expected,
                              const rel::Table& actual, double tol = 1e-9) {
  ASSERT_EQ(expected.NumRows(), actual.NumRows())
      << "expected:\n" << expected.ToString(50)
      << "actual:\n" << actual.ToString(50);
  const std::vector<rel::Row> e = SortedRows(expected);
  const std::vector<rel::Row> a = SortedRows(actual);
  for (size_t i = 0; i < e.size(); ++i) {
    ASSERT_EQ(e[i].size(), a[i].size());
    for (size_t j = 0; j < e[i].size(); ++j) {
      const rel::Value& ev = e[i][j];
      const rel::Value& av = a[i][j];
      if (ev.is_null() || av.is_null()) {
        EXPECT_EQ(ev.is_null(), av.is_null())
            << "row " << i << " col " << j << ": " << ev.ToString() << " vs "
            << av.ToString();
        continue;
      }
      if (ev.type() == rel::ValueType::kDouble ||
          av.type() == rel::ValueType::kDouble) {
        const double x = ev.ToDouble();
        const double y = av.ToDouble();
        EXPECT_LE(std::abs(x - y), tol * std::max({1.0, std::abs(x),
                                                   std::abs(y)}))
            << "row " << i << " col " << j;
      } else {
        EXPECT_TRUE(ev == av) << "row " << i << " col " << j << ": "
                              << ev.ToString() << " vs " << av.ToString();
      }
    }
  }
}

}  // namespace sdelta::testing

#endif  // SDELTA_TESTS_TEST_UTIL_H_
