// Epoch-shipping replication (DESIGN.md §15): a ReadReplica that
// replays the writer's ship stream converges to byte-identical summary
// state — asserted per epoch — and every failure path (CRC-corrupt
// record, duplicate delivery, sequence gap, replica restart, writer
// checkpoint racing a ship, bootstrap from a writer checkpoint)
// resolves to that same convergence.
#include "replica/replica.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/delta.h"
#include "relational/csv.h"
#include "replica/transport.h"
#include "service/service.h"
#include "warehouse/retail_schema.h"
#include "warehouse/workload.h"

namespace sdelta::replica {
namespace {

namespace fs = std::filesystem;

warehouse::RetailConfig SmallConfig() {
  warehouse::RetailConfig config;
  config.num_stores = 15;
  config.num_cities = 6;
  config.num_regions = 3;
  config.num_items = 80;
  config.num_categories = 8;
  config.num_dates = 30;
  config.num_pos_rows = 2500;
  config.seed = 913;
  return config;
}

/// Canonical (row-order-independent) CSV of every view in a snapshot.
std::map<std::string, std::string> CanonicalViews(
    const service::ReadSnapshot& snap) {
  std::map<std::string, std::string> out;
  for (const std::string& name : snap.ViewNames()) {
    out[name] = rel::ToCsvString(snap.view(name).ToCanonicalTable());
  }
  return out;
}

/// A writer service + mirror catalog for generating its change stream,
/// publishing ship records into `ship`.
struct Writer {
  fs::path dir;
  rel::Catalog mirror;
  std::unique_ptr<service::WarehouseService> svc;

  Writer(const std::string& tag, ShipPublisher* ship, size_t num_shards = 0)
      : dir(fs::temp_directory_path() /
            ("sdelta_replica_test_" + std::to_string(::getpid()) + "_" + tag)),
        mirror(warehouse::MakeRetailCatalog(SmallConfig())) {
    fs::remove_all(dir);
    svc = OpenService(ship, num_shards);
  }
  ~Writer() {
    svc.reset();
    fs::remove_all(dir);
  }

  std::unique_ptr<service::WarehouseService> OpenService(ShipPublisher* ship,
                                                         size_t num_shards) {
    service::WarehouseService::Options options;
    options.auto_batching = false;  // deterministic batch boundaries
    options.ship = ship;
    options.num_shards = num_shards;
    return service::WarehouseService::Open(
        dir.string(), warehouse::MakeRetailCatalog(SmallConfig()),
        warehouse::RetailSummaryTables(), options);
  }

  /// One shipped batch: append a change set and flush (= one drain, one
  /// epoch, one ship record).
  void Step(uint64_t seed, bool insertion = false) {
    core::ChangeSet changes =
        insertion
            ? warehouse::MakeInsertionGeneratingChanges(mirror, 150, seed)
            : warehouse::MakeUpdateGeneratingChanges(mirror, 200, seed);
    core::ApplyChangeSet(mirror, changes);
    svc->Append(std::move(changes));
    svc->Flush();
  }
};

std::unique_ptr<ReadReplica> OpenReplica(const std::string& tag,
                                         ShipTransport* transport,
                                         ReadReplica::Options options = {}) {
  const fs::path dir = fs::temp_directory_path() /
                       ("sdelta_replica_test_" + std::to_string(::getpid()) +
                        "_" + tag + "_replica");
  return ReadReplica::Open(dir.string(),
                           warehouse::MakeRetailCatalog(SmallConfig()),
                           warehouse::RetailSummaryTables(), transport,
                           std::move(options));
}

struct ReplicaDirGuard {
  std::string dir;
  explicit ReplicaDirGuard(std::string d) : dir(std::move(d)) {}
  ~ReplicaDirGuard() { fs::remove_all(dir); }
};

TEST(ReplicaTest, ConvergesByteIdenticalPerEpoch) {
  LoopbackShipTransport loop;
  Writer writer("converge", &loop);
  std::unique_ptr<ReadReplica> replica = OpenReplica("converge", &loop);
  ReplicaDirGuard guard(replica->data_dir());

  // Before any traffic both sides serve epoch state from the same
  // bootstrap materialization.
  EXPECT_EQ(CanonicalViews(replica->Snapshot()),
            CanonicalViews(writer.svc->Snapshot()));

  uint64_t seed = 100;
  for (int round = 0; round < 3; ++round) {
    writer.Step(++seed, /*insertion=*/round == 1);
    const ReadReplica::CatchupReport report = replica->Catchup();
    EXPECT_EQ(report.applied, 1u);
    EXPECT_EQ(report.crc_rejects, 0u);
    EXPECT_EQ(report.gap_rejects, 0u);
    EXPECT_GE(report.seconds, 0.0);  // the measured catch-up lag
    // Per-epoch assertion: the replica reached the writer's epoch and
    // serves byte-identical canonical state for it.
    EXPECT_EQ(replica->Snapshot().epoch(), writer.svc->Snapshot().epoch());
    EXPECT_EQ(replica->applied_epoch(), writer.svc->GetStats().epoch);
    EXPECT_EQ(CanonicalViews(replica->Snapshot()),
              CanonicalViews(writer.svc->Snapshot()));
  }
  EXPECT_EQ(replica->applied_seq(), writer.svc->GetStats().applied_seq);
}

TEST(ReplicaTest, ShardedWriterShipsTheSameStream) {
  // Sharding is a writer-side topology choice: a (unsharded) replica of
  // a sharded writer converges to the same bytes, because the stream
  // carries change sets, not layout.
  LoopbackShipTransport loop;
  Writer writer("shardedw", &loop, /*num_shards=*/4);
  std::unique_ptr<ReadReplica> replica = OpenReplica("shardedw", &loop);
  ReplicaDirGuard guard(replica->data_dir());

  for (uint64_t seed : {501u, 502u}) {
    writer.Step(seed);
    replica->Catchup();
    EXPECT_EQ(CanonicalViews(replica->Snapshot()),
              CanonicalViews(writer.svc->Snapshot()));
  }
}

TEST(ReplicaTest, CorruptRecordIsRejectedAndReRequested) {
  LoopbackShipTransport loop;
  Writer writer("corrupt", &loop);
  std::unique_ptr<ReadReplica> replica = OpenReplica("corrupt", &loop);
  ReplicaDirGuard guard(replica->data_dir());

  writer.Step(201);
  loop.CorruptNextFetch();
  ReadReplica::CatchupReport report = replica->Catchup();
  EXPECT_EQ(report.applied, 0u);
  EXPECT_EQ(report.crc_rejects, 1u);
  EXPECT_EQ(replica->applied_epoch(), 0u);

  // Re-request: the cursor did not advance, so the next pass gets the
  // intact bytes and applies them.
  report = replica->Catchup();
  EXPECT_EQ(report.applied, 1u);
  EXPECT_EQ(report.crc_rejects, 0u);
  EXPECT_EQ(CanonicalViews(replica->Snapshot()),
            CanonicalViews(writer.svc->Snapshot()));
  EXPECT_EQ(replica->metrics().Snapshot().counters.at("replica.crc_rejects"),
            1u);
}

TEST(ReplicaTest, DuplicateDeliveryIsSkippedBySequence) {
  LoopbackShipTransport loop;
  Writer writer("dup", &loop);
  std::unique_ptr<ReadReplica> replica = OpenReplica("dup", &loop);
  ReplicaDirGuard guard(replica->data_dir());

  writer.Step(301);
  loop.DuplicateNextFetch();
  // One pass sees the record twice (delivery without cursor advance,
  // then the regular delivery): applied once, deduped once.
  const ReadReplica::CatchupReport report = replica->Catchup();
  EXPECT_EQ(report.applied, 1u);
  EXPECT_EQ(report.duplicates, 1u);
  EXPECT_EQ(CanonicalViews(replica->Snapshot()),
            CanonicalViews(writer.svc->Snapshot()));
}

TEST(ReplicaTest, SequenceGapIsRefusedUntilHealed) {
  LoopbackShipTransport loop;
  Writer writer("gap", &loop);
  std::unique_ptr<ReadReplica> replica = OpenReplica("gap", &loop);
  ReplicaDirGuard guard(replica->data_dir());

  writer.Step(401);
  writer.Step(402);
  loop.DropNextFetch();
  // The transport skips record 1 and delivers record 2: applying it
  // would fork the state, so the replica refuses without advancing.
  ReadReplica::CatchupReport report = replica->Catchup();
  EXPECT_EQ(report.applied, 0u);
  EXPECT_EQ(report.gap_rejects, 1u);
  EXPECT_EQ(replica->applied_epoch(), 0u);

  // The fault was one-shot; the healed stream replays in order.
  report = replica->Catchup();
  EXPECT_EQ(report.applied, 2u);
  EXPECT_EQ(report.gap_rejects, 0u);
  EXPECT_EQ(CanonicalViews(replica->Snapshot()),
            CanonicalViews(writer.svc->Snapshot()));
}

TEST(ReplicaTest, RestartResumesFromLastAppliedEpoch) {
  LoopbackShipTransport loop;
  Writer writer("restart", &loop);
  std::string replica_dir;
  uint64_t epoch_at_checkpoint = 0;
  {
    std::unique_ptr<ReadReplica> replica = OpenReplica("restart", &loop);
    replica_dir = replica->data_dir();
    writer.Step(601);
    writer.Step(602);
    replica->Catchup();
    epoch_at_checkpoint = writer.svc->GetStats().epoch;
    EXPECT_EQ(replica->applied_epoch(), epoch_at_checkpoint);
    replica->Checkpoint();
  }
  ReplicaDirGuard guard(replica_dir);

  // Two more writer batches land while the replica is down.
  writer.Step(603);
  writer.Step(604);

  std::unique_ptr<ReadReplica> replica = ReadReplica::Open(
      replica_dir, warehouse::MakeRetailCatalog(SmallConfig()),
      warehouse::RetailSummaryTables(), &loop, {});
  // The checkpoint restored the applied markers — no replay of old
  // records, only the two new ones.
  EXPECT_EQ(replica->applied_epoch(), epoch_at_checkpoint);
  const ReadReplica::CatchupReport report = replica->Catchup();
  EXPECT_EQ(report.applied, 2u);
  EXPECT_EQ(report.duplicates, 0u);
  EXPECT_EQ(replica->applied_epoch(), writer.svc->GetStats().epoch);
  EXPECT_EQ(CanonicalViews(replica->Snapshot()),
            CanonicalViews(writer.svc->Snapshot()));
}

TEST(ReplicaTest, BootstrapFromWriterCheckpointDedupsHistory) {
  LoopbackShipTransport loop;
  Writer writer("bootstrap", &loop);
  writer.Step(701);
  writer.Step(702);
  // Checkpoint the writer *between* ships — the checkpointed state
  // already contains records 1..2; the stream still carries them.
  writer.svc->Checkpoint();
  const uint64_t epoch_at_checkpoint = writer.svc->GetStats().epoch;
  writer.Step(703);

  ReadReplica::Options options;
  options.bootstrap_checkpoint =
      (fs::path(writer.svc->data_dir()) / "checkpoint").string();
  std::unique_ptr<ReadReplica> replica =
      OpenReplica("bootstrap", &loop, std::move(options));
  ReplicaDirGuard guard(replica->data_dir());

  // The clone starts at the checkpoint's seq/epoch floor.
  EXPECT_EQ(replica->applied_seq(), 2u);
  EXPECT_EQ(replica->applied_epoch(), epoch_at_checkpoint);
  const ReadReplica::CatchupReport report = replica->Catchup();
  // History before the checkpoint is deduped by sequence, the one
  // post-checkpoint record applies.
  EXPECT_EQ(report.duplicates, 2u);
  EXPECT_EQ(report.applied, 1u);
  EXPECT_EQ(CanonicalViews(replica->Snapshot()),
            CanonicalViews(writer.svc->Snapshot()));
}

TEST(ReplicaTest, WriterRestartReshipsWalRecoveredBatches) {
  // A batch can be WAL-durable yet never shipped (writer ran without a
  // ship sink, or crashed between append and publish). On reopen with a
  // sink, WAL replay re-ships the recovered records under fresh epochs,
  // and new epochs number past the stream's history.
  LoopbackShipTransport loop;
  Writer writer("reship", /*ship=*/nullptr);
  writer.Step(801);
  writer.Step(802);
  const auto writer_state = CanonicalViews(writer.svc->Snapshot());
  writer.svc->Stop();
  writer.svc.reset();

  // Reopen the same data dir with the ship sink attached: the WAL tail
  // (never checkpointed) replays and re-ships.
  writer.svc = writer.OpenService(&loop, /*num_shards=*/0);
  EXPECT_EQ(loop.records(), 2u);
  EXPECT_EQ(CanonicalViews(writer.svc->Snapshot()), writer_state);

  std::unique_ptr<ReadReplica> replica = OpenReplica("reship", &loop);
  ReplicaDirGuard guard(replica->data_dir());
  const ReadReplica::CatchupReport report = replica->Catchup();
  EXPECT_EQ(report.applied, 2u);
  EXPECT_EQ(CanonicalViews(replica->Snapshot()), writer_state);

  // New writer epochs continue past everything already shipped.
  writer.Step(803);
  replica->Catchup();
  EXPECT_GT(replica->applied_epoch(), 2u);
  EXPECT_EQ(CanonicalViews(replica->Snapshot()),
            CanonicalViews(writer.svc->Snapshot()));
}

TEST(ReplicaTest, WriterCheckpointRacingShipsStaysConsistent) {
  // Interleaves checkpoints with shipped batches while a replica pulls
  // after every step: the WAL truncation a checkpoint performs must be
  // invisible to the ship stream, and a bootstrap from any of the
  // checkpoints must still converge.
  LoopbackShipTransport loop;
  Writer writer("ckptrace", &loop);
  std::unique_ptr<ReadReplica> replica = OpenReplica("ckptrace", &loop);
  ReplicaDirGuard guard(replica->data_dir());

  uint64_t seed = 900;
  for (int round = 0; round < 3; ++round) {
    writer.Step(++seed);
    writer.svc->Checkpoint();
    writer.Step(++seed);
    replica->Catchup();
    EXPECT_EQ(replica->applied_epoch(), writer.svc->GetStats().epoch);
    EXPECT_EQ(CanonicalViews(replica->Snapshot()),
              CanonicalViews(writer.svc->Snapshot()));
  }
  EXPECT_EQ(loop.records(), 6u);

  // The lag metrics observed real catch-up passes.
  const auto counters = replica->metrics().Snapshot().counters;
  EXPECT_EQ(counters.at("replica.records_applied"), 6u);
  EXPECT_EQ(counters.at("replica.crc_rejects"), 0u);
  EXPECT_EQ(counters.at("replica.gap_rejects"), 0u);
}

}  // namespace
}  // namespace sdelta::replica
