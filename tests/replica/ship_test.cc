// Ship-stream framing (DESIGN.md §15): CRC-covered frames, torn-tail
// detection, and the durable FileShipLog's scan/truncate/resume
// behavior — the wire contract replicas depend on for the CRC-reject
// and re-request failure paths.
#include "replica/ship.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "replica/transport.h"

namespace sdelta::replica {
namespace {

namespace fs = std::filesystem;

ShipRecord MakeRecord(uint64_t epoch, uint64_t first, uint64_t last,
                      const std::string& payload) {
  ShipRecord rec;
  rec.epoch = epoch;
  rec.first_seq = first;
  rec.last_seq = last;
  rec.payload.assign(payload.begin(), payload.end());
  return rec;
}

std::vector<uint8_t> StreamOf(const std::vector<ShipRecord>& records) {
  std::vector<uint8_t> bytes = ShipStreamHeader();
  for (const ShipRecord& rec : records) {
    const std::vector<uint8_t> frame = EncodeShipRecord(rec);
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  return bytes;
}

TEST(ShipTest, EncodeDecodeRoundtrip) {
  const ShipRecord rec = MakeRecord(7, 3, 5, "payload bytes");
  const std::vector<uint8_t> bytes = StreamOf({rec});
  ShipRecord out;
  size_t next = 0;
  ASSERT_EQ(DecodeShipRecord(bytes, kShipHeaderSize, &out, &next),
            ShipDecode::kOk);
  EXPECT_EQ(out.epoch, 7u);
  EXPECT_EQ(out.first_seq, 3u);
  EXPECT_EQ(out.last_seq, 5u);
  EXPECT_EQ(std::string(out.payload.begin(), out.payload.end()),
            "payload bytes");
  EXPECT_EQ(next, bytes.size());
}

TEST(ShipTest, EmptyPayloadRoundtrips) {
  const std::vector<uint8_t> bytes = StreamOf({MakeRecord(1, 1, 1, "")});
  ShipRecord out;
  size_t next = 0;
  ASSERT_EQ(DecodeShipRecord(bytes, kShipHeaderSize, &out, &next),
            ShipDecode::kOk);
  EXPECT_TRUE(out.payload.empty());
}

TEST(ShipTest, EveryFlippedByteIsCaught) {
  // The CRC covers the whole frame (epoch, seqs, length) plus the
  // payload: flipping any byte of the record must yield kCorrupt — or
  // kNeedMore for length-field flips that make the frame claim more
  // bytes than the buffer holds. No flip may decode as a different
  // valid record.
  const std::vector<uint8_t> clean = StreamOf({MakeRecord(9, 4, 6, "abc")});
  for (size_t i = kShipHeaderSize; i < clean.size(); ++i) {
    std::vector<uint8_t> bent = clean;
    bent[i] ^= 0x01;
    ShipRecord out;
    size_t next = 0;
    const ShipDecode result =
        DecodeShipRecord(bent, kShipHeaderSize, &out, &next);
    EXPECT_NE(result, ShipDecode::kOk) << "flipped byte " << i;
  }
}

TEST(ShipTest, TornTailNeedsMore) {
  const std::vector<uint8_t> clean = StreamOf({MakeRecord(2, 1, 2, "hello")});
  for (size_t cut = kShipHeaderSize; cut < clean.size(); ++cut) {
    const std::vector<uint8_t> torn(clean.begin(), clean.begin() + cut);
    ShipRecord out;
    size_t next = 0;
    EXPECT_EQ(DecodeShipRecord(torn, kShipHeaderSize, &out, &next),
              ShipDecode::kNeedMore)
        << "cut at " << cut;
  }
}

TEST(ShipTest, HeaderValidation) {
  std::vector<uint8_t> header = ShipStreamHeader();
  EXPECT_TRUE(CheckShipHeader(header));
  EXPECT_FALSE(CheckShipHeader({header.begin(), header.begin() + 4}));
  std::vector<uint8_t> bad_magic = header;
  bad_magic[0] = 'X';
  EXPECT_THROW(CheckShipHeader(bad_magic), std::runtime_error);
  std::vector<uint8_t> bad_version = header;
  bad_version.back() = 99;
  EXPECT_THROW(CheckShipHeader(bad_version), std::runtime_error);
}

TEST(ShipTest, FileShipLogResumesAndTruncatesTornTail) {
  const fs::path path =
      fs::temp_directory_path() /
      ("sdelta_ship_test_" + std::to_string(::getpid()) + ".ship");
  fs::remove(path);

  {
    FileShipLog log(path.string());
    EXPECT_EQ(log.MaxEpoch(), 0u);
    log.Publish(MakeRecord(1, 1, 1, "one"));
    log.Publish(MakeRecord(2, 2, 3, "two"));
    EXPECT_EQ(log.MaxEpoch(), 2u);
    EXPECT_EQ(log.max_seq(), 3u);
    EXPECT_EQ(log.records(), 2u);
  }
  {
    // Reopen scans the stream: epoch numbering resumes past history.
    FileShipLog log(path.string());
    EXPECT_EQ(log.MaxEpoch(), 2u);
    EXPECT_EQ(log.max_seq(), 3u);
    EXPECT_EQ(log.records(), 2u);
  }
  const uintmax_t intact_size = fs::file_size(path);
  {
    // A torn append (crash mid-write): garbage bytes after the last
    // intact record.
    std::ofstream out(path, std::ios::binary | std::ios::app);
    out << "garbage torn tail";
  }
  {
    FileShipLog log(path.string());
    EXPECT_EQ(log.records(), 2u);
    log.Publish(MakeRecord(3, 4, 4, "three"));
  }
  // The torn bytes were cut before the new record went in: the whole
  // stream decodes cleanly end to end.
  EXPECT_GT(fs::file_size(path), intact_size);
  FileShipTransport transport(path.string());
  uint64_t cursor = 0;
  size_t decoded = 0;
  while (true) {
    const ShipFetch fetch = transport.Fetch(cursor);
    EXPECT_FALSE(fetch.corrupt);
    if (!fetch.have) break;
    ++decoded;
    cursor = fetch.next_cursor;
  }
  EXPECT_EQ(decoded, 3u);
  fs::remove(path);
}

TEST(ShipTest, LoopbackFaultInjectionIsOneShot) {
  LoopbackShipTransport loop;
  loop.Publish(MakeRecord(1, 1, 1, "a"));
  loop.Publish(MakeRecord(2, 2, 2, "b"));

  // Corrupt: one delivery fails CRC at the same cursor, then heals.
  loop.CorruptNextFetch();
  ShipFetch fetch = loop.Fetch(0);
  EXPECT_TRUE(fetch.corrupt);
  EXPECT_FALSE(fetch.have);
  fetch = loop.Fetch(fetch.next_cursor);
  ASSERT_TRUE(fetch.have);
  EXPECT_EQ(fetch.record.epoch, 1u);

  // Duplicate: the record is delivered without advancing the cursor.
  loop.DuplicateNextFetch();
  const ShipFetch dup = loop.Fetch(fetch.next_cursor);
  ASSERT_TRUE(dup.have);
  EXPECT_EQ(dup.record.epoch, 2u);
  const ShipFetch again = loop.Fetch(dup.next_cursor);
  ASSERT_TRUE(again.have);
  EXPECT_EQ(again.record.epoch, 2u);

  // Drop: the *following* record is delivered instead (a sequence gap).
  loop.Publish(MakeRecord(3, 3, 3, "c"));
  loop.Publish(MakeRecord(4, 4, 4, "d"));
  loop.DropNextFetch();
  const ShipFetch skipped = loop.Fetch(again.next_cursor);
  ASSERT_TRUE(skipped.have);
  EXPECT_EQ(skipped.record.epoch, 4u);
  // One-shot: the skipped record is still in the stream.
  const ShipFetch healed = loop.Fetch(again.next_cursor);
  ASSERT_TRUE(healed.have);
  EXPECT_EQ(healed.record.epoch, 3u);
}

}  // namespace
}  // namespace sdelta::replica
