// The perf-regression gate: CompareBench semantics (key matching,
// per-metric tolerances, exact metrics, ignored fields) plus an
// end-to-end subprocess self-test of the bench_compare binary — the
// same check CI runs so a broken gate cannot silently pass everything.
#include "bench_compare_lib.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "obs/export_json.h"
#include "obs/json.h"

namespace sdelta::tools {
namespace {

using obs::Json;

Json Entry(const std::string& series, int64_t n, double ms, int64_t rows,
           int64_t host_cpus = 1) {
  Json e = Json::Object();
  e.Set("series", Json::Str(series));
  e.Set("n", Json::Int(n));
  e.Set("host_cpus", Json::Int(host_cpus));
  e.Set("ms", Json::Double(ms));
  e.Set("delta_rows", Json::Int(rows));
  return e;
}

Json BenchDoc(std::vector<Json> entries) {
  Json doc = Json::Object();
  doc.Set("schema", Json::Str("sdelta.bench.v1"));
  doc.Set("bench", Json::Str("demo"));
  Json arr = Json::Array();
  for (Json& e : entries) arr.Append(std::move(e));
  doc.Set("entries", std::move(arr));
  return doc;
}

CompareOptions DemoOptions() {
  Json tol = Json::Parse(R"({
    "schema": "sdelta.tolerances.v1",
    "ignore": ["host_cpus"],
    "metrics": {"ms": {"rel_tolerance": 0.5},
                "delta_rows": {"exact": true}}})");
  return ParseTolerances(tol);
}

TEST(BenchCompareTest, WithinToleranceIsOk) {
  const Json baseline = BenchDoc({Entry("a", 1, 100.0, 7)});
  const Json current = BenchDoc({Entry("a", 1, 149.0, 7)});
  const CompareReport report =
      CompareBench(baseline, current, DemoOptions());
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.entries_compared, 1u);
  EXPECT_EQ(report.metrics_compared, 2u);
}

TEST(BenchCompareTest, TimingRegressionFailsOneSided) {
  const Json baseline = BenchDoc({Entry("a", 1, 100.0, 7)});
  const CompareReport slow =
      CompareBench(baseline, BenchDoc({Entry("a", 1, 151.0, 7)}),
                   DemoOptions());
  ASSERT_EQ(slow.regressions.size(), 1u);
  EXPECT_EQ(slow.regressions[0].metric, "ms");
  EXPECT_EQ(slow.regressions[0].limit, 150.0);
  // Getting faster never fails.
  const CompareReport fast =
      CompareBench(baseline, BenchDoc({Entry("a", 1, 10.0, 7)}),
                   DemoOptions());
  EXPECT_TRUE(fast.ok());
}

TEST(BenchCompareTest, ExactMetricFailsOnAnyDifference) {
  const Json baseline = BenchDoc({Entry("a", 1, 100.0, 7)});
  const CompareReport more =
      CompareBench(baseline, BenchDoc({Entry("a", 1, 100.0, 8)}),
                   DemoOptions());
  ASSERT_EQ(more.regressions.size(), 1u);
  EXPECT_EQ(more.regressions[0].metric, "delta_rows");
  const CompareReport fewer =
      CompareBench(baseline, BenchDoc({Entry("a", 1, 100.0, 6)}),
                   DemoOptions());
  EXPECT_FALSE(fewer.ok());  // exact means exact, both directions
}

TEST(BenchCompareTest, IgnoredFieldsDoNotAffectMatching) {
  // Baseline recorded on a 1-cpu machine, current on 8 cpus: the entries
  // must still pair up, and host_cpus must not be compared.
  const Json baseline = BenchDoc({Entry("a", 1, 100.0, 7, /*host_cpus=*/1)});
  const Json current = BenchDoc({Entry("a", 1, 100.0, 7, /*host_cpus=*/8)});
  const CompareReport report =
      CompareBench(baseline, current, DemoOptions());
  EXPECT_TRUE(report.ok()) << report.ToString();
  EXPECT_EQ(report.entries_compared, 1u);
}

TEST(BenchCompareTest, UnmatchedEntriesAreNotesNotFailures) {
  const Json baseline = BenchDoc({Entry("a", 1, 100.0, 7),
                                  Entry("gone", 1, 50.0, 3)});
  const Json current = BenchDoc({Entry("a", 1, 100.0, 7),
                                 Entry("new", 1, 60.0, 4)});
  const CompareReport report =
      CompareBench(baseline, current, DemoOptions());
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.entries_compared, 1u);
  EXPECT_EQ(report.notes.size(), 2u) << report.ToString();
}

TEST(BenchCompareTest, HigherIsBetterFlipsTheDirection) {
  const CompareOptions options = ParseTolerances(Json::Parse(R"({
    "schema": "sdelta.tolerances.v1",
    "ignore": ["host_cpus", "ms", "delta_rows"],
    "metrics": {"speedup": {"rel_tolerance": 0.5,
                            "higher_is_better": true}}})"));
  auto with_speedup = [](double s) {
    Json e = Entry("a", 1, 100.0, 7);
    e.Set("speedup", Json::Double(s));
    return BenchDoc({std::move(e)});
  };
  const Json baseline = with_speedup(4.0);
  // Dropping below baseline * (1 - tol) = 2.0 regresses...
  const CompareReport slow =
      CompareBench(baseline, with_speedup(1.5), options);
  ASSERT_EQ(slow.regressions.size(), 1u);
  EXPECT_EQ(slow.regressions[0].metric, "speedup");
  EXPECT_EQ(slow.regressions[0].limit, 2.0);
  EXPECT_NE(slow.regressions[0].ToString().find("allowed>="),
            std::string::npos);
  // ...while getting faster never fails.
  const CompareReport fast =
      CompareBench(baseline, with_speedup(8.0), options);
  EXPECT_TRUE(fast.ok()) << fast.ToString();
}

TEST(BenchCompareTest, OnlyIfSkipsUnlessFlagTruthyOnBothSides) {
  const CompareOptions options = ParseTolerances(Json::Parse(R"({
    "schema": "sdelta.tolerances.v1",
    "ignore": ["host_cpus", "ms", "delta_rows", "meaningful"],
    "metrics": {"speedup": {"rel_tolerance": 0.5,
                            "higher_is_better": true,
                            "only_if": "meaningful"}}})"));
  auto doc = [](double speedup, bool meaningful) {
    Json e = Entry("a", 1, 100.0, 7);
    e.Set("speedup", Json::Double(speedup));
    e.Set("meaningful", Json::Bool(meaningful));
    return BenchDoc({std::move(e)});
  };
  // Flag false on the baseline (single-core recording host): the clear
  // regression is skipped with a note, not a failure.
  const CompareReport skipped =
      CompareBench(doc(4.0, false), doc(1.0, true), options);
  EXPECT_TRUE(skipped.ok()) << skipped.ToString();
  EXPECT_EQ(skipped.metrics_compared, 0u);
  ASSERT_EQ(skipped.notes.size(), 1u);
  EXPECT_NE(skipped.notes[0].find("skipped speedup"), std::string::npos);
  // Flag true on both sides: the same regression now gates.
  const CompareReport gated =
      CompareBench(doc(4.0, true), doc(1.0, true), options);
  EXPECT_EQ(gated.regressions.size(), 1u) << gated.ToString();
}

TEST(BenchCompareTest, MalformedDocumentsThrow) {
  EXPECT_THROW(CompareBench(Json::Object(), BenchDoc({}), DemoOptions()),
               std::runtime_error);
  Json tol = Json::Object();
  tol.Set("schema", Json::Str("wrong"));
  EXPECT_THROW(ParseTolerances(tol), std::runtime_error);
}

#ifdef SDELTA_BENCH_COMPARE_BIN
/// End-to-end over the real binary and the real tolerance semantics: a
/// synthetically regressed BENCH file must make bench_compare exit
/// nonzero, and the unregressed file must exit zero.
TEST(BenchCompareTest, BinarySelfTestFailsOnSyntheticRegression) {
  const std::string dir = ::testing::TempDir();
  const std::string tolerances = dir + "/sdelta_tolerances.json";
  const std::string baseline = dir + "/sdelta_baseline.json";
  const std::string good = dir + "/sdelta_good.json";
  const std::string regressed = dir + "/sdelta_regressed.json";
  obs::WriteFile(tolerances, R"({
    "schema": "sdelta.tolerances.v1",
    "ignore": ["host_cpus"],
    "metrics": {"ms": {"rel_tolerance": 0.5},
                "delta_rows": {"exact": true}}})");
  obs::WriteFile(baseline, BenchDoc({Entry("a", 1, 100.0, 7)}).Dump(1));
  obs::WriteFile(good, BenchDoc({Entry("a", 1, 120.0, 7)}).Dump(1));
  obs::WriteFile(regressed, BenchDoc({Entry("a", 1, 400.0, 7)}).Dump(1));

  const std::string bin = SDELTA_BENCH_COMPARE_BIN;
  auto run = [&](const std::string& current) {
    const std::string cmd = bin + " --tolerance-file " + tolerances + " " +
                            baseline + " " + current + " > /dev/null";
    return std::system(cmd.c_str());
  };
  EXPECT_EQ(run(good), 0);
  EXPECT_NE(run(regressed), 0);
}
#endif  // SDELTA_BENCH_COMPARE_BIN

}  // namespace
}  // namespace sdelta::tools
