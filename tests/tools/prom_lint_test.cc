#include "prom_lint_lib.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/export_prometheus.h"
#include "obs/metrics.h"

namespace sdelta::tools {
namespace {

std::string JoinProblems(const std::vector<std::string>& problems) {
  std::string out;
  for (const std::string& p : problems) out += p + "\n";
  return out;
}

TEST(PromLintTest, EmptyDocumentIsClean) {
  EXPECT_TRUE(LintPrometheusText("").empty());
}

TEST(PromLintTest, WellFormedFamiliesLintClean) {
  const char* doc =
      "# HELP sdelta_x_total Things.\n"
      "# TYPE sdelta_x_total counter\n"
      "sdelta_x_total 3\n"
      "# HELP sdelta_g A gauge.\n"
      "# TYPE sdelta_g gauge\n"
      "sdelta_g -0.5\n"
      "# HELP sdelta_h A histogram.\n"
      "# TYPE sdelta_h histogram\n"
      "sdelta_h_bucket{le=\"2\"} 1\n"
      "sdelta_h_bucket{le=\"4\"} 2\n"
      "sdelta_h_bucket{le=\"+Inf\"} 2\n"
      "sdelta_h_sum 6\n"
      "sdelta_h_count 2\n"
      "# HELP sdelta_s A summary.\n"
      "# TYPE sdelta_s summary\n"
      "sdelta_s{quantile=\"0.5\"} 2\n"
      "sdelta_s_sum 6\n"
      "sdelta_s_count 2\n";
  const auto problems = LintPrometheusText(doc);
  EXPECT_TRUE(problems.empty()) << JoinProblems(problems);
}

TEST(PromLintTest, RealExporterOutputLintsClean) {
  obs::MetricsRegistry m;
  m.Add("service.appends", 7);
  m.Set("service.epoch", 3);
  m.Observe("service.refresh_window", 0.001);
  m.Observe("service.refresh_window", 0.5);
  m.Observe("weird name-2", 1.0);
  const auto problems = LintPrometheusText(obs::ExportPrometheus(m));
  EXPECT_TRUE(problems.empty()) << JoinProblems(problems);
}

TEST(PromLintTest, SampleBeforeAnyTypeIsFlagged) {
  const auto problems = LintPrometheusText("sdelta_orphan 1\n");
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("precedes any TYPE"), std::string::npos);
}

TEST(PromLintTest, CounterWithoutTotalSuffixIsFlagged) {
  const char* doc =
      "# TYPE sdelta_x counter\n"
      "sdelta_x 3\n";
  const auto problems = LintPrometheusText(doc);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("_total"), std::string::npos);
}

TEST(PromLintTest, NegativeCounterIsFlagged) {
  const char* doc =
      "# TYPE sdelta_x_total counter\n"
      "sdelta_x_total -1\n";
  EXPECT_EQ(LintPrometheusText(doc).size(), 1u);
}

TEST(PromLintTest, DuplicateSeriesIsFlagged) {
  const char* doc =
      "# TYPE sdelta_g gauge\n"
      "sdelta_g 1\n"
      "sdelta_g 2\n";
  const auto problems = LintPrometheusText(doc);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("duplicate series"), std::string::npos);
}

TEST(PromLintTest, LabelsDistinguishSeries) {
  const char* doc =
      "# TYPE sdelta_g gauge\n"
      "sdelta_g{shard=\"a\"} 1\n"
      "sdelta_g{shard=\"b\"} 2\n";
  // Same labels in a different order ARE the same series.
  const char* dup =
      "# TYPE sdelta_g gauge\n"
      "sdelta_g{a=\"1\",b=\"2\"} 1\n"
      "sdelta_g{b=\"2\",a=\"1\"} 2\n";
  EXPECT_TRUE(LintPrometheusText(doc).empty());
  EXPECT_EQ(LintPrometheusText(dup).size(), 1u);
}

TEST(PromLintTest, HistogramBucketWithoutLeIsFlagged) {
  const char* doc =
      "# TYPE sdelta_h histogram\n"
      "sdelta_h_bucket 1\n"
      "sdelta_h_bucket{le=\"+Inf\"} 1\n"
      "sdelta_h_sum 1\n"
      "sdelta_h_count 1\n";
  const auto problems = LintPrometheusText(doc);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("le label"), std::string::npos);
}

TEST(PromLintTest, NonCumulativeBucketsAreFlagged) {
  const char* doc =
      "# TYPE sdelta_h histogram\n"
      "sdelta_h_bucket{le=\"1\"} 5\n"
      "sdelta_h_bucket{le=\"2\"} 3\n"
      "sdelta_h_bucket{le=\"+Inf\"} 5\n"
      "sdelta_h_sum 1\n"
      "sdelta_h_count 5\n";
  const auto problems = LintPrometheusText(doc);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("not cumulative"), std::string::npos);
}

TEST(PromLintTest, MissingInfBucketIsFlagged) {
  const char* doc =
      "# TYPE sdelta_h histogram\n"
      "sdelta_h_bucket{le=\"1\"} 5\n"
      "sdelta_h_sum 1\n"
      "sdelta_h_count 5\n";
  const auto problems = LintPrometheusText(doc);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("+Inf"), std::string::npos);
}

TEST(PromLintTest, InfBucketMustEqualCount) {
  const char* doc =
      "# TYPE sdelta_h histogram\n"
      "sdelta_h_bucket{le=\"+Inf\"} 4\n"
      "sdelta_h_sum 1\n"
      "sdelta_h_count 5\n";
  const auto problems = LintPrometheusText(doc);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("does not equal _count"), std::string::npos);
}

TEST(PromLintTest, MissingSumOrCountIsFlagged) {
  const char* doc =
      "# TYPE sdelta_h histogram\n"
      "sdelta_h_bucket{le=\"+Inf\"} 0\n";
  const auto problems = LintPrometheusText(doc);
  EXPECT_EQ(problems.size(), 2u) << JoinProblems(problems);
}

TEST(PromLintTest, BareSampleOnHistogramFamilyIsFlagged) {
  const char* doc =
      "# TYPE sdelta_h histogram\n"
      "sdelta_h 2\n"
      "sdelta_h_bucket{le=\"+Inf\"} 1\n"
      "sdelta_h_sum 2\n"
      "sdelta_h_count 1\n";
  const auto problems = LintPrometheusText(doc);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("_bucket/_sum/_count"), std::string::npos);
}

TEST(PromLintTest, QuantileSampleInsideHistogramFamilyIsFlagged) {
  // The legacy rider format: strict parsers reject it, and so do we.
  const char* doc =
      "# TYPE sdelta_h histogram\n"
      "sdelta_h{quantile=\"0.5\"} 2\n"
      "sdelta_h_bucket{le=\"+Inf\"} 1\n"
      "sdelta_h_sum 2\n"
      "sdelta_h_count 1\n";
  const auto problems = LintPrometheusText(doc);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("_bucket/_sum/_count"), std::string::npos);
}

TEST(PromLintTest, BareSummarySampleNeedsQuantile) {
  const char* doc =
      "# TYPE sdelta_s summary\n"
      "sdelta_s 2\n"
      "sdelta_s_sum 2\n"
      "sdelta_s_count 1\n";
  const auto problems = LintPrometheusText(doc);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("quantile"), std::string::npos);
}

TEST(PromLintTest, ForeignSampleInsideFamilyIsFlagged) {
  const char* doc =
      "# TYPE sdelta_g gauge\n"
      "sdelta_other 1\n";
  EXPECT_EQ(LintPrometheusText(doc).size(), 1u);
}

TEST(PromLintTest, FamilyDeclaredTwiceIsFlagged) {
  const char* doc =
      "# TYPE sdelta_g gauge\n"
      "sdelta_g 1\n"
      "# TYPE sdelta_g gauge\n"
      "sdelta_g{x=\"1\"} 1\n";
  const auto problems = LintPrometheusText(doc);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("declared twice"), std::string::npos);
}

TEST(PromLintTest, FamilyWithNoSamplesIsFlagged) {
  const char* doc =
      "# TYPE sdelta_a gauge\n"
      "# TYPE sdelta_b gauge\n"
      "sdelta_b 1\n";
  const auto problems = LintPrometheusText(doc);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("has no samples"), std::string::npos);
}

TEST(PromLintTest, MalformedLinesAreFlaggedWithLineNumbers) {
  const char* doc =
      "# TYPE sdelta_g gauge\n"
      "sdelta_g notanumber\n";
  const auto problems = LintPrometheusText(doc);
  // The bad sample is rejected, which also leaves its family empty —
  // both findings carry line numbers.
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("line 2"), std::string::npos);
  EXPECT_NE(problems[0].find("notanumber"), std::string::npos);
}

TEST(PromLintTest, UnterminatedLabelValueIsFlagged) {
  const char* doc =
      "# TYPE sdelta_g gauge\n"
      "sdelta_g{x=\"oops 1\n";
  EXPECT_FALSE(LintPrometheusText(doc).empty());
}

TEST(PromLintTest, MissingTrailingNewlineIsFlagged) {
  const char* doc =
      "# TYPE sdelta_g gauge\n"
      "sdelta_g 1";
  const auto problems = LintPrometheusText(doc);
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems[0].find("trailing newline"), std::string::npos);
}

TEST(PromLintTest, UnknownTypeIsFlagged) {
  EXPECT_EQ(LintPrometheusText("# TYPE sdelta_x wibble\n").size(), 1u);
}

TEST(PromLintTest, ConsistentDiagnosticFamiliesLintClean) {
  const char* doc =
      "# TYPE sdelta_events_capacity gauge\n"
      "sdelta_events_capacity 1024\n"
      "# TYPE sdelta_events_occupancy gauge\n"
      "sdelta_events_occupancy 12\n"
      "# TYPE sdelta_events_recorded gauge\n"
      "sdelta_events_recorded 12\n"
      "# TYPE sdelta_events_dropped gauge\n"
      "sdelta_events_dropped 0\n"
      "# TYPE sdelta_anomaly_checks_total counter\n"
      "sdelta_anomaly_checks_total 20\n"
      "# TYPE sdelta_anomaly_detections_total counter\n"
      "sdelta_anomaly_detections_total 2\n"
      "# TYPE sdelta_anomaly_bundles_written_total counter\n"
      "sdelta_anomaly_bundles_written_total 2\n"
      "# TYPE sdelta_anomaly_bundles_pruned_total counter\n"
      "sdelta_anomaly_bundles_pruned_total 1\n";
  EXPECT_TRUE(LintPrometheusText(doc).empty());
}

TEST(PromLintTest, EventRingDropExceedingRecordedIsFlagged) {
  const char* doc =
      "# TYPE sdelta_events_recorded gauge\n"
      "sdelta_events_recorded 5\n"
      "# TYPE sdelta_events_dropped gauge\n"
      "sdelta_events_dropped 9\n";
  const auto problems = LintPrometheusText(doc);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("sdelta_events_dropped"), std::string::npos);
  EXPECT_NE(problems[0].find("exceeds"), std::string::npos);
}

TEST(PromLintTest, OccupancyBeyondCapacityIsFlagged) {
  const char* doc =
      "# TYPE sdelta_events_capacity gauge\n"
      "sdelta_events_capacity 64\n"
      "# TYPE sdelta_events_occupancy gauge\n"
      "sdelta_events_occupancy 65\n";
  ASSERT_EQ(LintPrometheusText(doc).size(), 1u);
}

TEST(PromLintTest, NegativeDiagnosticGaugeIsFlagged) {
  // Gauges may be negative in general, but the events.*/anomaly.*
  // families are counts — a negative value is an exporter bug.
  const char* doc =
      "# TYPE sdelta_events_occupancy gauge\n"
      "sdelta_events_occupancy -1\n";
  const auto problems = LintPrometheusText(doc);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("non-negative"), std::string::npos);
}

TEST(PromLintTest, BundleCounterConsistencyIsChecked) {
  const char* doc =
      "# TYPE sdelta_anomaly_detections_total counter\n"
      "sdelta_anomaly_detections_total 1\n"
      "# TYPE sdelta_anomaly_bundles_written_total counter\n"
      "sdelta_anomaly_bundles_written_total 3\n"
      "# TYPE sdelta_anomaly_bundles_pruned_total counter\n"
      "sdelta_anomaly_bundles_pruned_total 4\n";
  const auto problems = LintPrometheusText(doc);
  // pruned > written and written > detections both fire.
  EXPECT_EQ(problems.size(), 2u);
}

TEST(PromLintTest, MqoCounterConsistencyIsChecked) {
  const char* doc =
      "# TYPE sdelta_mqo_subplans_detected_total counter\n"
      "sdelta_mqo_subplans_detected_total 2\n"
      "# TYPE sdelta_mqo_subplans_materialized_total counter\n"
      "sdelta_mqo_subplans_materialized_total 3\n"
      "# TYPE sdelta_mqo_rule_fires_total counter\n"
      "sdelta_mqo_rule_fires_total 1\n";
  const auto problems = LintPrometheusText(doc);
  // materialized > detected and materialized > rule fires both fire.
  EXPECT_EQ(problems.size(), 2u);
}

TEST(PromLintTest, ConsistentMqoCountersLintClean) {
  const char* doc =
      "# TYPE sdelta_mqo_subplans_detected_total counter\n"
      "sdelta_mqo_subplans_detected_total 3\n"
      "# TYPE sdelta_mqo_subplans_materialized_total counter\n"
      "sdelta_mqo_subplans_materialized_total 2\n"
      "# TYPE sdelta_mqo_rule_fires_total counter\n"
      "sdelta_mqo_rule_fires_total 5\n";
  EXPECT_TRUE(LintPrometheusText(doc).empty());
}

TEST(PromLintTest, ReplicaAheadOfWriterIsFlagged) {
  const char* doc =
      "# TYPE sdelta_writer_installed_epoch gauge\n"
      "sdelta_writer_installed_epoch 4\n"
      "# TYPE sdelta_replica_applied_epoch gauge\n"
      "sdelta_replica_applied_epoch 5\n";
  const auto problems = LintPrometheusText(doc);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("sdelta_replica_applied_epoch"),
            std::string::npos);
  EXPECT_NE(problems[0].find("exceeds"), std::string::npos);
}

TEST(PromLintTest, ReplicaAtOrBehindWriterLintsClean) {
  const char* doc =
      "# TYPE sdelta_writer_installed_epoch gauge\n"
      "sdelta_writer_installed_epoch 4\n"
      "# TYPE sdelta_replica_applied_epoch gauge\n"
      "sdelta_replica_applied_epoch 4\n";
  EXPECT_TRUE(LintPrometheusText(doc).empty());
}

TEST(PromLintTest, ShardDeltaRowsMustPartitionPropagateTotal) {
  const char* doc =
      "# TYPE sdelta_propagate_delta_rows_total counter\n"
      "sdelta_propagate_delta_rows_total 100\n"
      "# TYPE sdelta_shard_delta_rows_0_total counter\n"
      "sdelta_shard_delta_rows_0_total 60\n"
      "# TYPE sdelta_shard_delta_rows_1_total counter\n"
      "sdelta_shard_delta_rows_1_total 30\n";
  const auto problems = LintPrometheusText(doc);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("partition"), std::string::npos);
}

TEST(PromLintTest, ShardDeltaRowsSummingExactlyLintsClean) {
  const char* doc =
      "# TYPE sdelta_propagate_delta_rows_total counter\n"
      "sdelta_propagate_delta_rows_total 100\n"
      "# TYPE sdelta_shard_delta_rows_0_total counter\n"
      "sdelta_shard_delta_rows_0_total 60\n"
      "# TYPE sdelta_shard_delta_rows_1_total counter\n"
      "sdelta_shard_delta_rows_1_total 40\n";
  EXPECT_TRUE(LintPrometheusText(doc).empty());
}

TEST(PromLintTest, UnshardedDocumentSkipsThePartitionCheck) {
  // No shard counters at all: the propagate total stands alone.
  const char* doc =
      "# TYPE sdelta_propagate_delta_rows_total counter\n"
      "sdelta_propagate_delta_rows_total 100\n";
  EXPECT_TRUE(LintPrometheusText(doc).empty());
}

TEST(PromLintTest, AbsentDiagnosticFamiliesSkipTheCrossChecks) {
  // A service with the anomaly layer off exports neither series; the
  // cross-family checks must not demand them.
  const char* doc =
      "# TYPE sdelta_service_appends_total counter\n"
      "sdelta_service_appends_total 2\n";
  EXPECT_TRUE(LintPrometheusText(doc).empty());
}

}  // namespace
}  // namespace sdelta::tools
